// Compare the interactive responsiveness of the three OS personalities on
// the same workload -- the paper's central use case.
//
//   $ ./compare_systems

#include <cstdio>
#include <memory>

#include "src/analysis/cumulative.h"
#include "src/analysis/responsiveness.h"
#include "src/analysis/stats.h"
#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/workloads.h"
#include "src/viz/table.h"

using namespace ilat;

int main() {
  TextTable table({"system", "events", "mean (ms)", "p95 (ms)", "max (ms)",
                   "cumulative (ms)", "elapsed (s)", "responsiveness penalty"});

  for (const OsProfile& os : AllPersonalities()) {
    MeasurementSession session(os);
    session.AttachApp(std::make_unique<NotepadApp>());
    Random rng(42);  // identical input on every system
    const SessionResult r = session.Run(NotepadWorkload(&rng));

    std::vector<double> ms;
    double total = 0.0;
    double max = 0.0;
    for (const EventRecord& e : r.events) {
      ms.push_back(e.latency_ms());
      total += e.latency_ms();
      max = std::max(max, e.latency_ms());
    }
    const ResponsivenessReport rr = ScoreResponsiveness(r.events);

    table.AddRow({os.name, std::to_string(r.events.size()),
                  TextTable::Num(total / static_cast<double>(ms.size()), 2),
                  TextTable::Num(Percentile(ms, 95.0), 2), TextTable::Num(max, 1),
                  TextTable::Num(total, 0), TextTable::Num(r.elapsed_seconds(), 1),
                  TextTable::Num(rr.penalty, 1)});
  }

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nNote how the ranking depends on the metric: Windows 95 has the\n"
      "smallest cumulative latency here yet the largest elapsed time (driver\n"
      "overhead), and a throughput benchmark would have hidden all of it --\n"
      "the paper's core argument for measuring latency directly.\n");
  return 0;
}
