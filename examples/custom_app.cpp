// Measure a user-defined application: implement GuiApplication, return a
// Job from each message handler, and the whole toolkit (idle-loop
// instrument, message monitor, extractor, FSM) works unchanged.
//
// The example models a small image editor: brush strokes are cheap,
// applying a filter is compute-heavy, saving is disk-bound.
//
//   $ ./custom_app

#include <cstdio>
#include <memory>

#include "src/core/measurement.h"
#include "src/viz/table.h"

using namespace ilat;

namespace {

constexpr int kCmdBrush = 1;
constexpr int kCmdFilter = 2;
constexpr int kCmdSave = 3;

class ImageEditorApp : public GuiApplication {
 public:
  std::string_view name() const override { return "image-editor"; }

  void OnStart(AppContext* ctx) override {
    GuiApplication::OnStart(ctx);
    image_file_ = ctx_->fs->Create("picture.img", 2 * 1024 * 1024);
  }

  Job HandleMessage(const Message& m) override {
    JobBuilder b = ctx_->Build();
    if (m.type != MessageType::kCommand) {
      return b.Build();
    }
    switch (m.param) {
      case kCmdBrush:
        // Update a small region and redraw it.
        b.AppWork(120.0);
        b.GuiText(250.0, 4);
        break;
      case kCmdFilter:
        // Whole-image convolution plus full redraw.
        b.AppWork(28'000.0);
        b.GuiGraphics(3'000.0, 20);
        break;
      case kCmdSave:
        // Compress, then write the file synchronously.
        b.AppWork(9'000.0);
        b.WriteFile(image_file_, 0, 2 * 1024 * 1024);
        break;
      default:
        break;
    }
    return b.Build();
  }

 private:
  FileId image_file_ = -1;
};

Script EditingSession() {
  Script s;
  for (int stroke = 0; stroke < 25; ++stroke) {
    s.push_back(ScriptItem::Command(kCmdBrush, 180.0, "brush"));
  }
  s.push_back(ScriptItem::Command(kCmdFilter, 1'500.0, "filter"));
  for (int stroke = 0; stroke < 10; ++stroke) {
    s.push_back(ScriptItem::Command(kCmdBrush, 180.0, "brush"));
  }
  s.push_back(ScriptItem::Command(kCmdSave, 2'000.0, "save"));
  return s;
}

}  // namespace

int main() {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<ImageEditorApp>());
  const SessionResult r = session.Run(EditingSession());

  TextTable t({"operation", "count", "mean latency (ms)", "wait incl. disk (ms)"});
  for (const char* label : {"brush", "filter", "save"}) {
    double total = 0.0;
    double wall = 0.0;
    int n = 0;
    for (const EventRecord& e : r.events) {
      if (e.label == label) {
        total += e.latency_ms();
        wall += e.wall_ms();
        ++n;
      }
    }
    t.AddRow({label, std::to_string(n), TextTable::Num(total / n, 2),
              TextTable::Num(wall / n, 2)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nBrush strokes stay imperceptible, the filter is a perceptible pause,\n"
      "and the save's latency is dominated by synchronous disk I/O -- which\n"
      "the extractor counts as wait time even though the CPU is idle.\n");
  return 0;
}
