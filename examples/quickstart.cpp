// Quickstart: measure the latency of an interactive workload.
//
// Runs the Notepad model on the NT 4.0 personality under a scripted
// (MS-Test-style) driver, extracts per-event latencies with the idle-loop
// methodology, and prints a summary.
//
//   $ ./quickstart

#include <cstdio>
#include <memory>

#include "src/analysis/cumulative.h"
#include "src/analysis/histogram.h"
#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/workloads.h"
#include "src/viz/ascii_chart.h"

using namespace ilat;

int main() {
  // 1. Pick an operating-system personality and attach an application.
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<NotepadApp>());

  // 2. Build a workload (deterministic for a given seed) and run it.
  Random rng(42);
  const SessionResult result = session.Run(NotepadWorkload(&rng));

  // 3. Every user-input event now has a latency record.
  std::printf("events: %zu, elapsed: %.1f s, total latency: %.1f ms\n",
              result.events.size(), result.elapsed_seconds(),
              TotalLatencyMs(result.events));
  std::printf("latency from events under 10 ms: %.1f%%\n",
              100.0 * LatencyFractionBelow(result.events, 10.0));

  // 4. The paper's preferred representation is graphical.
  Histogram hist = Histogram::Log2(1.0, 12);
  hist.AddLatencies(result.events);
  ChartOptions opts;
  opts.title = "Notepad on NT 4.0: event latency histogram (log counts)";
  opts.log_y = true;
  std::printf("\n%s", RenderHistogram(hist, opts).c_str());

  // 5. Worst offenders, with script labels.
  std::printf("\nslowest events:\n");
  std::vector<EventRecord> sorted = result.events;
  std::sort(sorted.begin(), sorted.end(), [](const EventRecord& a, const EventRecord& b) {
    return a.latency() > b.latency();
  });
  for (std::size_t i = 0; i < 5 && i < sorted.size(); ++i) {
    std::printf("  %7.2f ms  %-12s %s\n", sorted[i].latency_ms(),
                std::string(MessageTypeName(sorted[i].type)).c_str(),
                sorted[i].label.c_str());
  }
  return 0;
}
