// Measure playback smoothness: the deadline-analysis extension.
//
// Plays 30 fps video on each OS personality while a coarse-grained batch
// job runs at the player's priority, and reports misses/drops/jitter --
// metrics a throughput benchmark cannot see.
//
//   $ ./media_smoothness

#include <cstdio>
#include <memory>

#include "src/analysis/deadlines.h"
#include "src/apps/batch_thread.h"
#include "src/apps/media_player.h"
#include "src/core/measurement.h"
#include "src/viz/table.h"

using namespace ilat;

namespace {

DeadlineReport Play(const OsProfile& base, bool with_batch) {
  OsProfile os = base;
  SessionOptions opts;
  opts.drain_after = SecondsToCycles(8.0);
  MeasurementSession session(os, opts);
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));

  std::unique_ptr<BatchThread> batch;
  if (with_batch) {
    BatchOptions bo;
    bo.duty_cycle = 0.9;
    bo.quantum = MillisecondsToCycles(20);
    batch = std::make_unique<BatchThread>("indexer", 10, WorkProfile{}, bo,
                                          &session.system().sim().queue(),
                                          &session.system().sim().scheduler());
    session.system().sim().scheduler().AddThread(batch.get());
  }

  Script s;
  s.push_back(ScriptItem::Command(kCmdMediaPlay + 150, 100.0, "play"));
  session.Run(s);
  return AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
}

}  // namespace

int main() {
  TextTable t({"system", "load", "fps", "missed", "dropped", "jitter (ms)"});
  for (const OsProfile& os : AllPersonalities()) {
    for (bool load : {false, true}) {
      const DeadlineReport r = Play(os, load);
      t.AddRow({os.name, load ? "90% batch hog" : "idle", TextTable::Num(r.achieved_fps, 1),
                std::to_string(r.missed), std::to_string(r.dropped),
                TextTable::Num(r.jitter_ms, 2)});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nNT's wake boost keeps playback smooth under load; Windows 95 (no\n"
      "boost) stutters -- the same per-event methodology, applied to frames.\n");
  return 0;
}
