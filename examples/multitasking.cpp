// Multi-window measurement: type in Notepad while a video plays.
//
// The session monitors the focused application (Notepad); the media
// player runs in a second window as part of the system's context.  Both
// sides are reported: keystroke latency and playback smoothness.
//
//   $ ./multitasking

#include <cstdio>
#include <memory>

#include "src/analysis/deadlines.h"
#include "src/analysis/stats.h"
#include "src/apps/media_player.h"
#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"
#include "src/viz/table.h"

using namespace ilat;

namespace {

struct Row {
  double key_mean = 0.0;
  double key_max = 0.0;
  DeadlineReport media;
};

Row RunOn(const OsProfile& os, bool with_media) {
  SessionOptions opts;
  opts.drain_after = SecondsToCycles(3.0);
  MeasurementSession session(os, opts);
  session.AttachApp(std::make_unique<NotepadApp>());

  MediaPlayerApp* player = nullptr;
  if (with_media) {
    auto media = std::make_unique<MediaPlayerApp>();
    player = media.get();
    GuiThread& media_thread = session.AttachBackgroundApp(std::move(media));
    Message play;
    play.type = MessageType::kCommand;
    play.param = kCmdMediaPlay + 600;  // ~20 s of video
    media_thread.PostMessageToQueue(play);
  }

  Random rng(3);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 400)));

  Row out;
  SummaryStats keys;
  for (const EventRecord& e : r.events) {
    keys.Add(e.latency_ms());
  }
  out.key_mean = keys.mean();
  out.key_max = keys.max();
  if (player != nullptr) {
    out.media = AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  }
  return out;
}

}  // namespace

int main() {
  TextTable t({"system", "video", "key mean (ms)", "key max (ms)", "fps", "missed+dropped"});
  for (const OsProfile& os : AllPersonalities()) {
    const Row alone = RunOn(os, false);
    t.AddRow({os.name, "off", TextTable::Num(alone.key_mean, 2),
              TextTable::Num(alone.key_max, 1), "-", "-"});
    const Row beside = RunOn(os, true);
    t.AddRow({os.name, "on", TextTable::Num(beside.key_mean, 2),
              TextTable::Num(beside.key_max, 1), TextTable::Num(beside.media.achieved_fps, 1),
              std::to_string(beside.media.missed + beside.media.dropped)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe same methodology measures the focused window in a multi-tasking\n"
      "context: keystrokes absorb the decoder's bursts while playback itself\n"
      "stays smooth -- per-event latency shows exactly how much each side\n"
      "pays, where a throughput benchmark would show nothing at all.\n");
  return 0;
}
