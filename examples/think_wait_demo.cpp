// The think-time / wait-time state machine of the paper's Fig. 2.
//
// Runs a short PowerPoint session and classifies every instant of the run
// into think / wait-on-CPU / wait-on-I/O / background using the three
// signals the FSM consumes: CPU state, message-queue state, and
// synchronous-I/O state.
//
//   $ ./think_wait_demo

#include <cstdio>
#include <memory>

#include "src/apps/commands.h"
#include "src/apps/powerpoint.h"
#include "src/core/measurement.h"
#include "src/viz/table.h"

using namespace ilat;

int main() {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());

  Script script;
  script.push_back(ScriptItem::Command(kCmdPptStartApp, 500.0, "start"));
  script.push_back(ScriptItem::Command(kCmdPptPageDown, 2'000.0, "page down"));
  script.push_back(ScriptItem::Command(kCmdPptPageDown, 1'500.0, "page down"));
  script.push_back(ScriptItem::Command(kCmdPptSave, 1'000.0, "save"));

  const SessionResult r = session.Run(script);

  TextTable t({"user state", "total (s)", "share (%)"});
  const double run_s = CyclesToSeconds(r.run_end);
  for (int i = 0; i < static_cast<int>(UserState::kCount); ++i) {
    const double s = CyclesToSeconds(r.user_state_totals[static_cast<std::size_t>(i)]);
    t.AddRow({std::string(UserStateName(static_cast<UserState>(i))), TextTable::Num(s, 2),
              TextTable::Num(100.0 * s / run_s, 1)});
  }
  std::printf("%s", t.ToString().c_str());

  // Show the interval structure around the save (I/O wait).
  std::printf("\nlongest wait intervals:\n");
  std::vector<ThinkWaitFsm::Interval> waits;
  for (const auto& iv : r.user_state_intervals) {
    if (iv.state == UserState::kWaitIo || iv.state == UserState::kWaitCpu) {
      waits.push_back(iv);
    }
  }
  std::sort(waits.begin(), waits.end(),
            [](const ThinkWaitFsm::Interval& a, const ThinkWaitFsm::Interval& b) {
              return (a.end - a.begin) > (b.end - b.begin);
            });
  for (std::size_t i = 0; i < 5 && i < waits.size(); ++i) {
    std::printf("  %-8s %8.1f ms starting at %.2f s\n",
                std::string(UserStateName(waits[i].state)).c_str(),
                CyclesToMilliseconds(waits[i].end - waits[i].begin),
                CyclesToSeconds(waits[i].begin));
  }
  std::printf(
      "\nSynchronous disk I/O is wait time even while the CPU idles; the\n"
      "paper's Fig. 2 FSM makes that distinction from just three signals.\n");
  return 0;
}
