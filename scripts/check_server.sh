#!/usr/bin/env bash
# Smoke-test the multi-user server scenario end to end: run the checked-in
# latency-vs-offered-load campaign (campaigns/server_load.spec), demand
# byte-identical outputs across --jobs and through shard + `ilat merge`,
# validate the aggregate JSON (every cell labeled with its param point,
# p95 non-decreasing in users at fixed pool size), check that a fault
# plan degrades cells deterministically, and vet the server CLI flags'
# usage errors.  Assumes a built tree; pass a different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi
repo_dir="$(cd "$(dirname "$0")/.." && pwd)"
spec="$repo_dir/campaigns/server_load.spec"

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

# The scenario itself lists in the catalog.
"$ilat" --list | grep -q "server"

# Determinism contract: 4 worker threads and 1 produce the same bytes.
"$ilat" --campaign="$spec" --jobs=4 --campaign-out="$out_dir/j4" >/dev/null
"$ilat" --campaign="$spec" --jobs=1 --campaign-out="$out_dir/j1" >/dev/null
cmp "$out_dir/j1/aggregate.json" "$out_dir/j4/aggregate.json"
cmp "$out_dir/j1/cells.csv" "$out_dir/j4/cells.csv"

# Sharded halves merge back into the unsharded aggregate byte for byte.
for i in 0 1; do
  "$ilat" --campaign="$spec" --shard="$i/2" \
          --campaign-partial="$out_dir/p$i.json" >/dev/null
done
"$ilat" merge "$out_dir/p0.json" "$out_dir/p1.json" \
        --campaign-out="$out_dir/merged" >/dev/null
cmp "$out_dir/j4/aggregate.json" "$out_dir/merged/aggregate.json"
cmp "$out_dir/j4/cells.csv" "$out_dir/merged/cells.csv"

# The aggregate is well-formed and the offered-load curve is monotone:
# at each pool size, p95 must not decrease as users grow.
python3 - "$out_dir/j4/aggregate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
cells = agg["cells"]
assert cells, "no cells in aggregate"
curves = {}
for c in cells:
    label = c.get("param_label", "")
    assert label, f"cell {c['index']} has no param_label"
    assert c["events"] > 0, f"cell {c['index']} measured no events"
    kv = dict(part.split("=", 1) for part in label.split("|"))
    curves.setdefault(int(kv["pool_size"]), []).append(
        (int(kv["users"]), c["p95_ms"]))
assert len(curves) >= 2, f"expected >= 2 pool sizes, got {sorted(curves)}"
for pool, points in sorted(curves.items()):
    points.sort()
    p95s = [p for _, p in points]
    assert len(points) >= 3, f"pool={pool}: too few load points"
    assert all(a <= b for a, b in zip(p95s, p95s[1:])), \
        f"pool={pool}: p95 not monotone in users: {points}"
# The per-point rollup groups exist too.
groups = agg["groups"]
param_groups = [k for k in groups if k.startswith("param:")]
assert len(param_groups) == len(cells), \
    f"{len(param_groups)} param groups for {len(cells)} cells"
print(f"server load curve ok: {len(curves)} pool sizes x "
      f"{len(next(iter(curves.values())))} load points, all monotone")
EOF

# Fault injection applies to the scenario for free: a heavy response-drop
# plan forces user retries and degrades cells -- deterministically.
plan="$out_dir/drop.plan"
cat > "$plan" <<'EOF'
mq.drop_rate = 0.6
EOF
fault_spec="$out_dir/fault_spec.txt"
cat > "$fault_spec" <<'EOF'
name = server_fault
os   = nt40
app  = server
seed = 7
params.users    = 8
params.requests = 10
EOF
"$ilat" --campaign="$fault_spec" --faults="$plan" --jobs=2 \
        --campaign-out="$out_dir/f2" > "$out_dir/fault_run.txt"
"$ilat" --campaign="$fault_spec" --faults="$plan" --jobs=1 \
        --campaign-out="$out_dir/f1" >/dev/null
cmp "$out_dir/f1/aggregate.json" "$out_dir/f2/aggregate.json"
grep -q "degraded cell" "$out_dir/fault_run.txt"
python3 - "$out_dir/f2/aggregate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
cell = agg["cells"][0]
assert cell["degraded"], "response drops should degrade the cell"
assert cell["faults"]["mq_dropped"] > 0, "no responses dropped under the plan"
assert cell["faults"]["input_retries"] > 0, "users never retried"
print("server fault run ok:", cell["faults"]["mq_dropped"], "drops,",
      cell["faults"]["input_retries"], "retries")
EOF

# Malformed server flags exit 2 with a one-line diagnostic naming the flag.
expect_exit2() {
  local what="$1" flag="$2"
  shift 2
  local output rc
  set +e
  output="$("$@" 2>&1)"
  rc=$?
  set -e
  if [[ $rc -ne 2 ]]; then
    echo "error: $what should exit 2 (got $rc)" >&2
    exit 1
  fi
  if [[ "$(printf '%s' "$output" | head -n 1)" != *"$flag"* ]]; then
    echo "error: $what should lead with a $flag diagnostic:" >&2
    printf '%s\n' "$output" >&2
    exit 1
  fi
}
expect_exit2 "--users=0" "--users" "$ilat" --app=server --users=0
expect_exit2 "--users=abc" "--users" "$ilat" --app=server --users=abc
expect_exit2 "--pool=-1" "--pool" "$ilat" --app=server --pool=-1
expect_exit2 "--queue-depth=0" "--queue-depth" "$ilat" --app=server --queue-depth=0
expect_exit2 "--cache-hit=1.5" "--cache-hit" "$ilat" --app=server --cache-hit=1.5
expect_exit2 "--requests=abc" "--requests" "$ilat" --app=server --requests=abc

# A bad sweep.params key fails the spec parse with a line number.
bad_spec="$out_dir/bad_spec.txt"
cat > "$bad_spec" <<'EOF'
app = server
sweep.params.bogus = 1, 2
EOF
set +e
output="$("$ilat" --campaign="$bad_spec" 2>&1)"
rc=$?
set -e
if [[ $rc -ne 2 ]] || [[ "$output" != *"line 2"* ]]; then
  echo "error: bad sweep.params key should exit 2 with a line number:" >&2
  printf '%s\n' "$output" >&2
  exit 1
fi

echo "check_server: all good"
