#!/usr/bin/env bash
# Tier-1 verification, as ROADMAP.md defines it, plus an opt-out ASan lane.
#
# Lane 1 (always): configure + build + full ctest in ./build.
# Lane 2 (skip with --no-asan): rebuild the fault/campaign/input suites
#   and the ilat binary with -DILAT_SANITIZE=address in ./build-asan and
#   run them directly -- the suites that exercise the fault injector, the
#   retrying human driver, and the sweep/gate machinery, where lifetime
#   bugs would hide -- plus the event-queue suite (slot recycling,
#   SmallCallback placement news, heap compaction) and the shard/merge
#   smoke against the sanitized binary.
set -euo pipefail

cd "$(dirname "$0")/.."

asan=1
if [[ "${1:-}" == "--no-asan" ]]; then
  asan=0
fi

cmake -B build -S . > /dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ $asan -eq 1 ]]; then
  cmake -B build-asan -S . -DILAT_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$(nproc)" \
    --target fault_test campaign_test input_test server_test \
    media_pipeline_test sim_event_queue_test ilat
  ./build-asan/tests/fault_test
  ./build-asan/tests/campaign_test
  ./build-asan/tests/input_test
  ./build-asan/tests/server_test
  # The media pipeline threads callbacks across three stages, two message
  # queues, and the shared jitter buffer -- lifetime territory.
  ./build-asan/tests/media_pipeline_test
  # The event core does manual placement-new callback storage and slot
  # recycling; ASan is the reviewer of record for that code.
  ./build-asan/tests/sim_event_queue_test
  # Shard/merge smoke against the sanitized binary: the partial writer and
  # merge reader juggle FILE* handles and per-cell payload buffers.
  bash scripts/check_shard.sh build-asan
  # Profiler smoke against the sanitized binary: the thread-local install/
  # merge dance in the campaign workers is where lifetime bugs would hide.
  bash scripts/check_profile.sh build-asan
  # Server smoke against the sanitized binary: workers, users, and the
  # lock/disk callbacks juggle cross-object lifetimes worth sanitizing.
  bash scripts/check_server.sh build-asan
  # Media smoke against the sanitized binary: stage teardown order (storm
  # device, fault policies on two queues, trace sink) is easy to get wrong.
  bash scripts/check_media.sh build-asan
  # Crash-safety smoke against the sanitized binary: the journal writer,
  # resume replay, watchdog cancellation, and signal-driven shutdown all
  # cross thread and object lifetimes ASan should referee.
  bash scripts/check_resume.sh build-asan
fi

echo "check_tier1: all good"
