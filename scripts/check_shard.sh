#!/usr/bin/env bash
# Smoke-test sharded campaign execution end to end: split a 36-cell sweep
# (3 os x 3 app x 4 seeds) across 3 shard processes with different --jobs
# counts, merge the partials with `ilat merge`, and demand the merged
# aggregate.json and cells.csv are byte-identical to an unsharded run.
# Then check the failure modes: missing shards, duplicate partials,
# doctored spec hashes, and corrupt session files must all exit 2 with a
# one-line error.  Assumes a built tree; pass a different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

spec="$out_dir/spec.txt"
cat > "$spec" <<'EOF'
# 3 os x 3 app x 4 seeds = 36 cells
name   = shardsmoke
os     = all
app    = notepad, word, powerpoint
seeds  = 4
seed   = 2026
EOF

# Reference: the whole campaign in one process.
"$ilat" --campaign="$spec" --jobs=2 --campaign-out="$out_dir/full" >/dev/null

# Three shard processes with deliberately different thread counts: the
# partials depend only on the spec and the shard, never on --jobs.
for i in 0 1 2; do
  "$ilat" --campaign="$spec" --shard="$i/3" --jobs="$((i + 1))" \
          --campaign-partial="$out_dir/p$i.json" >/dev/null
done

# Merge (in scrambled order -- order must not matter) and compare bytes.
"$ilat" merge "$out_dir/p2.json" "$out_dir/p0.json" "$out_dir/p1.json" \
        --campaign-out="$out_dir/merged" >/dev/null
cmp "$out_dir/full/aggregate.json" "$out_dir/merged/aggregate.json"
cmp "$out_dir/full/cells.csv" "$out_dir/merged/cells.csv"

# The merged aggregate feeds the regression gate exactly like a
# single-process one: gating the sweep against its own merge must pass.
"$ilat" --campaign="$spec" --jobs=3 \
        --campaign-baseline="$out_dir/merged/aggregate.json" | grep -q "PASS"

# Partials are well-formed JSON.
python3 -m json.tool "$out_dir/p0.json" >/dev/null

expect_exit2() {
  local what="$1"
  shift
  local output
  if output="$("$@" 2>&1)"; then
    echo "error: $what should have failed" >&2
    exit 1
  elif [[ $? -ne 2 ]]; then
    echo "error: $what should exit 2" >&2
    exit 1
  fi
  # One-line errors: a single line of diagnostic, not a stack trace.
  # ($output has trailing newlines stripped, so any newline means >1 line.)
  if [[ "$output" == *$'\n'* ]]; then
    echo "error: $what printed more than one line:" >&2
    printf '%s\n' "$output" >&2
    exit 1
  fi
}

# A missing shard means incomplete coverage.
expect_exit2 "merge of 2/3 shards" "$ilat" merge "$out_dir/p0.json" "$out_dir/p1.json"

# The same partial twice is a duplicate shard.
expect_exit2 "duplicate partial" \
  "$ilat" merge "$out_dir/p0.json" "$out_dir/p1.json" "$out_dir/p2.json" "$out_dir/p0.json"

# A doctored spec hash means the partials come from different campaigns.
sed 's/"spec_hash": "[0-9a-f]*"/"spec_hash": "deadbeefdeadbeef"/' \
  "$out_dir/p1.json" > "$out_dir/p1-doctored.json"
expect_exit2 "doctored spec hash" \
  "$ilat" merge "$out_dir/p0.json" "$out_dir/p1-doctored.json" "$out_dir/p2.json"

# Truncated partials (a crashed shard) are malformed, not merged.
head -c 200 "$out_dir/p1.json" > "$out_dir/p1-truncated.json"
expect_exit2 "truncated partial" \
  "$ilat" merge "$out_dir/p0.json" "$out_dir/p1-truncated.json" "$out_dir/p2.json"

# Corrupt session files fail cleanly too (same exit-2 contract).
echo "garbage" > "$out_dir/corrupt.ilat"
expect_exit2 "corrupt session load" "$ilat" --load="$out_dir/corrupt.ilat"

# Sharded runs refuse whole-campaign outputs until merged.  (Flag-level
# mistakes print the usage text after the error, so no one-line check.)
if "$ilat" --campaign="$spec" --shard=0/3 --campaign-partial="$out_dir/px.json" \
           --campaign-out="$out_dir/px" >/dev/null 2>&1; then
  echo "error: shard with --campaign-out should have failed" >&2
  exit 1
elif [[ $? -ne 2 ]]; then
  echo "error: shard with --campaign-out should exit 2" >&2
  exit 1
fi

echo "check_shard: all good"
