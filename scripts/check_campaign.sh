#!/usr/bin/env bash
# Smoke-test the campaign pipeline end to end: run a small 2-os x 2-app
# sweep through the CLI with 2 worker threads, check the aggregate JSON is
# well-formed and deterministic across thread counts, then run the
# regression gate against the sweep's own output (which must pass).
# Assumes a built tree (cmake -B build -S . && cmake --build build); pass a
# different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

spec="$out_dir/spec.txt"
cat > "$spec" <<'EOF'
# 2 os x 2 app x 1 seed smoke campaign
name   = smoke
os     = nt40, win95
app    = notepad, desktop
seeds  = 1
seed   = 2026
EOF

# Parallel run, then a single-threaded rerun: the aggregates must be
# byte-identical (the campaign determinism contract).
"$ilat" --campaign="$spec" --jobs=2 --campaign-out="$out_dir/j2" >/dev/null
"$ilat" --campaign="$spec" --jobs=1 --campaign-out="$out_dir/j1" >/dev/null
cmp "$out_dir/j1/aggregate.json" "$out_dir/j2/aggregate.json"

# Well-formed JSON?
python3 -m json.tool "$out_dir/j2/aggregate.json" >/dev/null

# Structural checks on the aggregate.
python3 - "$out_dir/j2/aggregate.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    agg = json.load(f)
assert agg["campaign"]["cells"] == 4, agg["campaign"]
assert len(agg["cells"]) == 4
for key in ("overall", "os:nt40", "os:win95", "app:notepad", "app:desktop",
            "os:nt40|app:notepad"):
    assert key in agg["groups"], f"missing group {key!r}"
overall = agg["groups"]["overall"]
assert overall["events"] > 0
assert overall["p95_ms"] >= overall["p50_ms"] >= 0
assert agg["metrics"], "no merged metrics"
assert any(k.startswith("sched.") for k in agg["metrics"]), "no scheduler metrics merged"
print(f"aggregate ok: {overall['events']} events across {agg['campaign']['cells']} cells")
EOF

# The regression gate against the run's own aggregate must pass...
"$ilat" --campaign="$spec" --jobs=2 \
        --campaign-baseline="$out_dir/j2/aggregate.json" | grep -q "PASS"

# ...and a doctored "everything was instant" baseline must fail (exit 1).
python3 - "$out_dir/j2/aggregate.json" "$out_dir/tiny.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
for group in agg["groups"].values():
    for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms"):
        group[key] = 1e-6
with open(sys.argv[2], "w") as f:
    json.dump(agg, f)
EOF
if "$ilat" --campaign="$spec" --jobs=2 --campaign-baseline="$out_dir/tiny.json" >/dev/null; then
  echo "error: gate passed against an impossible baseline" >&2
  exit 1
fi

echo "check_campaign: all good"
