#!/usr/bin/env bash
# Smoke-test the observability pipeline: run the CLI with trace + metrics
# export and validate both files are well-formed JSON with the expected
# structure.  Assumes a built tree (cmake -B build -S . && cmake --build
# build); pass a different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

trace="$out_dir/t.json"
metrics="$out_dir/m.json"

# Notepad exercises the scheduler, message queues, devices, and the idle
# loop; PowerPoint (below) adds disk I/O.
"$ilat" --os=nt40 --app=notepad --trace-out="$trace" --metrics-out="$metrics" >/dev/null

python3 - "$trace" "$metrics" <<'EOF'
import json, sys

trace_path, metrics_path = sys.argv[1], sys.argv[2]

with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
phases = {e["ph"] for e in events}
assert {"X", "i", "C", "M"} <= phases, f"missing phases: {phases}"
tracks = {e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
for want in ("cpu", "irq", "disk", "idle", "user-state", "dev:clock"):
    assert want in tracks, f"missing track {want!r} in {sorted(tracks)}"
assert any(t.startswith("mq:") for t in tracks), "no message-queue track"
assert any(t.startswith("app:") for t in tracks), "no app track"
cats = {e.get("cat") for e in events}
for want in ("sched", "mq", "device", "dispatch", "state", "idle"):
    assert want in cats, f"missing category {want!r} in {sorted(c for c in cats if c)}"

with open(metrics_path) as f:
    metrics = json.load(f)
named = sorted(metrics["counters"]) + sorted(metrics["gauges"]) + sorted(metrics["histograms"])
assert len(named) >= 8, f"only {len(named)} metrics: {named}"
for want in ("sched.context_switches", "sched.interrupts", "mq.posted",
             "app.messages_handled", "idle.records"):
    assert want in named, f"missing metric {want!r}"
print(f"notepad trace ok: {len(events)} events, {len(tracks)} tracks, {len(named)} metrics")
EOF

# Disk spans: PowerPoint's document open/save hit the disk model.
"$ilat" --os=nt40 --app=powerpoint --trace-out="$trace" >/dev/null
python3 - "$trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
disk = [e for e in events if e.get("cat") == "disk" and e["ph"] == "X"]
assert disk, "powerpoint trace has no disk spans"
names = {e["name"] for e in disk}
assert "read" in names or "write" in names, f"unexpected disk span names: {names}"
print(f"powerpoint trace ok: {len(disk)} disk spans")
EOF

echo "check_trace: all good"
