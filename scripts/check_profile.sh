#!/usr/bin/env bash
# Smoke-test the host-time self-profiler end to end: run a session with
# --profile=FILE and demand the report is valid JSON in which every
# declared probe fired (count > 0) and the top-level probes account for
# >= 80% of the session wall time.  Then the neutrality contract: a
# campaign run with --profile must produce byte-identical aggregate.json
# and cells.csv to one without, and shard partials carrying per-cell wall
# times must still merge into the single-process aggregate byte-for-byte.
# Assumes a built tree; pass a different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

# One session that exercises every probe: --trace-out gives the tracer a
# sink (trace.emit), --save drives the session-file writer (session.io).
"$ilat" --os=nt40 --app=word --profile="$out_dir/prof.json" \
        --trace-out="$out_dir/trace.json" --save="$out_dir/run.ilat" \
        > "$out_dir/run.txt"
grep -q "host-time profile" "$out_dir/run.txt"

# The report is well-formed JSON, every declared probe fired, and the
# disjoint top-level probes cover >= 80% of the wall-clock window.
python3 - "$out_dir/prof.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
probes = report["probes"]
# Every probe the desktop session path exercises must fire; the server
# probes are declared (they appear in every report) but stay at zero here.
desktop = [
    "session.setup", "sim.run", "queue.push", "queue.pop", "sched.dispatch",
    "idle.tick", "trace.emit", "app.message", "metrics.snapshot",
    "trace.take", "extract.events", "session.io",
]
server_only = ["server.request", "server.user"]
for name in desktop:
    assert name in probes, f"probe {name} missing from report"
    assert probes[name]["count"] > 0, f"probe {name} never fired"
declared = set(desktop) | set(server_only)
assert set(probes) == declared, f"undeclared probes: {set(probes) - declared}"
for name in server_only:
    assert probes[name]["count"] == 0, f"server probe {name} fired in a desktop run"
assert report["wall_s"] > 0, "wall_s missing or zero"
assert report["coverage"] >= 0.8, f"coverage {report['coverage']:.3f} < 0.80"
print(f"profile ok: {len(probes)} probes, coverage {report['coverage']:.1%}")
EOF

# A server-scenario run fires the server probes (and only those two of
# the per-scenario probes; no coverage assert -- the scenario's top-level
# windows differ from the desktop session's).
"$ilat" --app=server --users=4 --requests=10 \
        --profile="$out_dir/server-prof.json" > /dev/null
python3 - "$out_dir/server-prof.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    probes = json.load(f)["probes"]
for name in ("server.request", "server.user"):
    assert probes[name]["count"] > 0, f"server probe {name} never fired"
assert probes["app.message"]["count"] == 0, "desktop probe fired in a server run"
print("server profile ok")
EOF

spec="$out_dir/spec.txt"
cat > "$spec" <<'EOF'
# 2 os x 2 app x 2 seeds = 8 cells
name   = profsmoke
os     = nt40, win95
app    = notepad, word
seeds  = 2
seed   = 2026
EOF

# Neutrality: profiling a campaign must not change a byte of its outputs.
"$ilat" --campaign="$spec" --jobs=2 --campaign-out="$out_dir/plain" >/dev/null
"$ilat" --campaign="$spec" --jobs=2 --campaign-out="$out_dir/profiled" \
        --profile="$out_dir/campaign-prof.json" --progress=2 \
        >/dev/null 2>"$out_dir/progress.txt"
cmp "$out_dir/plain/aggregate.json" "$out_dir/profiled/aggregate.json"
cmp "$out_dir/plain/cells.csv" "$out_dir/profiled/cells.csv"
python3 -m json.tool "$out_dir/campaign-prof.json" >/dev/null

# The heartbeat went to stderr and counted all the way up.
grep -q "8/8 cells" "$out_dir/progress.txt"

# Campaign runs emit host-side timing artifacts next to the aggregate,
# and the per-cell wall times never leak into the deterministic outputs.
python3 -m json.tool "$out_dir/plain/timing.json" >/dev/null
test -s "$out_dir/plain/timing.csv"
if grep -q "wall_s" "$out_dir/plain/aggregate.json"; then
  echo "error: wall_s leaked into aggregate.json" >&2
  exit 1
fi

# Partials carry per-cell wall times (telemetry), yet the merged
# aggregate still reproduces the single-process run byte for byte.
for i in 0 1; do
  "$ilat" --campaign="$spec" --shard="$i/2" \
          --campaign-partial="$out_dir/p$i.json" >/dev/null
done
grep -q "wall_s" "$out_dir/p0.json"
"$ilat" merge "$out_dir/p0.json" "$out_dir/p1.json" \
        --campaign-out="$out_dir/merged" >/dev/null
cmp "$out_dir/plain/aggregate.json" "$out_dir/merged/aggregate.json"
cmp "$out_dir/plain/cells.csv" "$out_dir/merged/cells.csv"

# Flag validation: malformed telemetry flags exit 2, and the first line
# of output names the offending flag.  (Flag-level mistakes print the
# usage text after the error, so no single-line check here.)
expect_exit2() {
  local what="$1" flag="$2"
  shift 2
  local output rc
  set +e
  output="$("$@" 2>&1)"
  rc=$?
  set -e
  if [[ $rc -ne 2 ]]; then
    echo "error: $what should exit 2 (got $rc)" >&2
    exit 1
  fi
  if [[ "$(printf '%s' "$output" | head -n 1)" != *"$flag"* ]]; then
    echo "error: $what should lead with a $flag diagnostic:" >&2
    printf '%s\n' "$output" >&2
    exit 1
  fi
}
expect_exit2 "--progress=0" "--progress" "$ilat" --campaign="$spec" --progress=0
expect_exit2 "--progress=abc" "--progress" "$ilat" --campaign="$spec" --progress=abc
expect_exit2 "--profile= (empty)" "--profile" "$ilat" --app=notepad --profile=

echo "check_profile: all good"
