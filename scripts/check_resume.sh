#!/usr/bin/env bash
# Chaos-smoke the crash-safe campaign layer end to end:
#  - kill -9 a journaling campaign at several seeded points (by polling
#    the journal's record count), resume it, and demand the final
#    aggregate.json and cells.csv are byte-identical to an uninterrupted
#    --jobs=1 run,
#  - same through --shard + `ilat merge` with a killed-and-resumed shard,
#  - SIGTERM triggers the graceful shutdown path: exit 143, a one-line
#    resume hint, and a journal that resumes to identical bytes,
#  - every prefix-truncation of a journal either resumes cleanly (torn
#    tail dropped) or exits 2 with a one-line error (torn header),
#  - a hung cell (interrupt storm that starves the simulated CPU) is
#    quarantined by the --cell-timeout watchdog with a structured report;
#    the exit code honours --max-quarantined,
#  - malformed --resume/--cell-timeout flags fail with the usual exit-2
#    contract.
# Assumes a built tree; pass a different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

spec="$out_dir/spec.txt"
cat > "$spec" <<'EOF'
# 3 os x 4 seeds = 12 cells, long enough to kill mid-flight
name   = resumesmoke
os     = all
app    = notepad
seeds  = 4
seed   = 2026
EOF

# Reference: the uninterrupted single-threaded run, also journaled (the
# complete journal feeds the truncation fuzz below).
ref_journal="$out_dir/ref.jsonl"
"$ilat" --campaign="$spec" --jobs=1 --journal="$ref_journal" \
        --campaign-out="$out_dir/ref" >/dev/null

check_identical() {
  cmp "$out_dir/ref/aggregate.json" "$1/aggregate.json"
  cmp "$out_dir/ref/cells.csv" "$1/cells.csv"
}

# Wait until the journal at $1 holds >= $2 cell records (header excluded)
# or the process $3 exits.  Returns 0 if the threshold was reached.
wait_for_records() {
  local file="$1" want="$2" pid="$3" lines
  for _ in $(seq 1 3000); do
    if [[ -f "$file" ]]; then
      lines="$(wc -l < "$file")"
      if (( lines >= want + 1 )); then
        return 0
      fi
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.01
  done
  return 1
}

# ------------------------------------------------- kill -9 and resume --

for k in 1 4 8; do
  j="$out_dir/kill$k.jsonl"
  "$ilat" --campaign="$spec" --jobs=2 --journal="$j" >/dev/null 2>&1 &
  pid=$!
  if wait_for_records "$j" "$k" "$pid"; then
    kill -9 "$pid" 2>/dev/null || true
  fi
  wait "$pid" 2>/dev/null || true

  "$ilat" --campaign="$spec" --resume="$j" --campaign-out="$out_dir/res$k" \
          > "$out_dir/res$k.txt"
  grep -q "resume: replaying" "$out_dir/res$k.txt"
  check_identical "$out_dir/res$k"
done

# ------------------------------------- kill a shard, resume, and merge --

"$ilat" --campaign="$spec" --shard=1/2 --jobs=1 --journal="$out_dir/s1.jsonl" \
        >/dev/null
"$ilat" --campaign="$spec" --shard=0/2 --jobs=2 --journal="$out_dir/s0.jsonl" \
        >/dev/null 2>&1 &
pid=$!
if wait_for_records "$out_dir/s0.jsonl" 2 "$pid"; then
  kill -9 "$pid" 2>/dev/null || true
fi
wait "$pid" 2>/dev/null || true
"$ilat" --campaign="$spec" --shard=0/2 --resume="$out_dir/s0.jsonl" >/dev/null
"$ilat" merge "$out_dir/s0.jsonl" "$out_dir/s1.jsonl" \
        --campaign-out="$out_dir/shardres" >/dev/null
check_identical "$out_dir/shardres"

# ------------------------------------------ SIGTERM graceful shutdown --

j="$out_dir/term.jsonl"
"$ilat" --campaign="$spec" --jobs=2 --journal="$j" > "$out_dir/term.txt" 2>&1 &
pid=$!
if wait_for_records "$j" 2 "$pid"; then
  kill -TERM "$pid" 2>/dev/null || true
fi
rc=0
wait "$pid" || rc=$?
if [[ "$rc" -ne 143 ]]; then
  echo "error: SIGTERM shutdown should exit 143 (128+15), got $rc" >&2
  exit 1
fi
grep -q "resume with: ilat --campaign=" "$out_dir/term.txt"
"$ilat" --campaign="$spec" --resume="$j" --campaign-out="$out_dir/termres" >/dev/null
check_identical "$out_dir/termres"

# ------------------------------------------- journal truncation fuzz --

expect_exit2() {
  local what="$1"
  shift
  local output
  if output="$("$@" 2>&1)"; then
    echo "error: $what should have failed" >&2
    exit 1
  elif [[ $? -ne 2 ]]; then
    echo "error: $what should exit 2" >&2
    exit 1
  fi
  if [[ "$output" == *$'\n'* ]]; then
    echo "error: $what printed more than one line:" >&2
    printf '%s\n' "$output" >&2
    exit 1
  fi
}

total=$(wc -c < "$ref_journal")
header=$(head -1 "$ref_journal" | wc -c)
# Seeded cut points: inside the header, at its boundary, and an even
# sample through the records.
cuts="0 1 $((header - 1)) $header"
for i in 1 2 3 4 5 6 7; do
  cuts="$cuts $((header + (total - header) * i / 7))"
done
for cut in $cuts; do
  j="$out_dir/fuzz.jsonl"
  head -c "$cut" "$ref_journal" > "$j"
  if (( cut < header )); then
    # The header itself is torn: structurally unusable, one-line exit 2.
    expect_exit2 "resume from $cut-byte prefix" \
      "$ilat" --campaign="$spec" --resume="$j" --campaign-out="$out_dir/fuzzout"
  else
    # Any prefix past the header resumes cleanly: complete records
    # replay, a torn final record re-runs, and the final bytes match.
    "$ilat" --campaign="$spec" --resume="$j" --campaign-out="$out_dir/fuzzout" \
            >/dev/null
    check_identical "$out_dir/fuzzout"
  fi
done

# ------------------------------------------------- watchdog quarantine --

hang="$out_dir/hang.txt"
cat > "$hang" <<'EOF'
# One cell that can never finish: a dense interrupt storm starves the
# simulated CPU for the whole session, so only the watchdog ends it.
name  = hangsmoke
os    = nt40
app   = echo
seeds = 1
seed  = 7
timeout_cell_s = 0.05
fault.storm.start_ms    = 0
fault.storm.duration_ms = 3600000
fault.storm.period_us   = 10
fault.storm.handler_us  = 10
EOF

# Default --max-quarantined=0: one quarantined cell fails the run (exit 1)
# but the campaign still completes with a structured report.
rc=0
"$ilat" --campaign="$hang" --campaign-out="$out_dir/hangout" \
        > "$out_dir/hang-run.txt" || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "error: quarantined run should exit 1, got $rc" >&2
  exit 1
fi
grep -q "watchdog: quarantined 1 cell(s)" "$out_dir/hang-run.txt"
grep -q '"timed_out": true' "$out_dir/hangout/aggregate.json"
grep -q 'cell.timeout' "$out_dir/hangout/aggregate.json"

# Raising the tolerance turns the same run into a success.
"$ilat" --campaign="$hang" --max-quarantined=5 >/dev/null

# The flag wins over the spec key and is hashed: a journal written under
# one budget cannot be resumed under another.
"$ilat" --campaign="$hang" --max-quarantined=5 --journal="$out_dir/hang.jsonl" \
        >/dev/null
expect_exit2 "resume with a different --cell-timeout" \
  "$ilat" --campaign="$hang" --cell-timeout=1000 --resume="$out_dir/hang.jsonl"

# ------------------------------------------------------- flag hygiene --

# Runtime errors are one line; flag-level mistakes print usage after the
# error, so those check the exit code only.
expect_exit2 "resume from a missing journal" \
  "$ilat" --campaign="$spec" --resume="$out_dir/no-such.jsonl"
echo "garbage" > "$out_dir/garbage.jsonl"
expect_exit2 "resume from garbage" \
  "$ilat" --campaign="$spec" --resume="$out_dir/garbage.jsonl"

for bad in --cell-timeout=abc --cell-timeout=1e999 --cell-timeout= \
           --max-quarantined=abc --max-quarantined=-1 --resume=; do
  if "$ilat" --campaign="$spec" "$bad" >/dev/null 2>&1; then
    echo "error: $bad should have failed" >&2
    exit 1
  elif [[ $? -ne 2 ]]; then
    echo "error: $bad should exit 2" >&2
    exit 1
  fi
done

# An unwritable journal path fails before any cell runs (exit 1).
rc=0
"$ilat" --campaign="$spec" --journal=/nonexistent-dir/j.jsonl >/dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "error: unwritable journal should exit 1, got $rc" >&2
  exit 1
fi

echo "check_resume: all good"
