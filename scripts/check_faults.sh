#!/usr/bin/env bash
# Smoke-test the fault-injection subsystem end to end through the CLI:
#  - a faulted single run prints a fault report and exits 0,
#  - --fail-degraded turns a degraded run into exit 1,
#  - a faulted campaign is byte-identical across --jobs=1/4 (the
#    determinism contract extends to faults and retries),
#  - the aggregate carries the per-cell fault columns,
#  - malformed plans and malformed numeric flags exit 2 with one-line
#    usage errors.
# Assumes a built tree (cmake -B build -S . && cmake --build build); pass a
# different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

# ---------------------------------------------------------- single runs --

plan="$out_dir/faults.plan"
cat > "$plan" <<'EOF'
# light interference: drops + clock jitter
mq.drop_rate      = 0.02
clock.jitter_frac = 0.2
EOF

"$ilat" --app=notepad --faults="$plan" > "$out_dir/run.txt"
grep -q "fault injection:" "$out_dir/run.txt"

# A permanently-dead disk degrades the disk-bound app but still produces a
# structured report; --fail-degraded opts into a non-zero exit.
perm="$out_dir/perm.plan"
echo "disk.fail_after = 1" > "$perm"
"$ilat" --app=powerpoint --faults="$perm" > "$out_dir/perm.txt"
grep -q "fault injection: degraded" "$out_dir/perm.txt"
grep -q "disk_permanent" "$out_dir/perm.txt"
if "$ilat" --app=powerpoint --faults="$perm" --fail-degraded >/dev/null; then
  echo "error: --fail-degraded did not fail a degraded run" >&2
  exit 1
fi

# ------------------------------------------------------------ campaigns --

spec="$out_dir/spec.txt"
cat > "$spec" <<'EOF'
name    = faulted-smoke
os      = nt40, win95
app     = notepad, desktop
seeds   = 1
seed    = 2026
retries = 1
fault.mq.drop_rate      = 0.02
fault.clock.jitter_frac = 0.2
EOF

"$ilat" --campaign="$spec" --jobs=4 --campaign-out="$out_dir/j4" > "$out_dir/camp.txt"
"$ilat" --campaign="$spec" --jobs=1 --campaign-out="$out_dir/j1" >/dev/null
cmp "$out_dir/j1/aggregate.json" "$out_dir/j4/aggregate.json"
cmp "$out_dir/j1/cells.csv" "$out_dir/j4/cells.csv"
grep -q "fault injection:" "$out_dir/camp.txt"

# The aggregate carries fault columns and the degraded flag per cell.
python3 - "$out_dir/j4/aggregate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
assert len(agg["cells"]) == 4
for cell in agg["cells"]:
    assert "degraded" in cell, cell
    assert "attempts" in cell, cell
    assert "faults" in cell, "fault block missing from faulted cell"
    for key in ("mq_dropped", "disk_transient", "io_failed", "storm_ticks"):
        assert key in cell["faults"], f"missing fault column {key!r}"
dropped = sum(c["faults"]["mq_dropped"] for c in agg["cells"])
print(f"aggregate ok: {dropped} dropped messages across {len(agg['cells'])} cells")
EOF
head -1 "$out_dir/j4/cells.csv" | grep -q "degraded,timed_out,disk_transient"

# ---------------------------------------------------------- fault sweep --
# A latency-vs-fault-rate sweep with the retrying human driver: rate 0 is
# a clean control, user retries grow with the rate, the --jobs contract
# holds, and the fault-aware gate passes against its own aggregate but
# fails against a doctored (healthier) baseline.

sweep="$out_dir/sweep.txt"
cat > "$sweep" <<'EOF'
name   = drop-sweep
os     = nt40
app    = notepad
driver = human
seeds  = 2
seed   = 2026
threshold_ms = 100
sweep.fault.mq.drop_rate = 0, 0.05, 0.15, 0.3
EOF

"$ilat" --campaign="$sweep" --jobs=4 --campaign-out="$out_dir/s4" > "$out_dir/sweep.txt.out"
"$ilat" --campaign="$sweep" --jobs=1 --campaign-out="$out_dir/s1" >/dev/null
cmp "$out_dir/s1/aggregate.json" "$out_dir/s4/aggregate.json"
cmp "$out_dir/s1/cells.csv" "$out_dir/s4/cells.csv"
grep -q "latency by fault point" "$out_dir/sweep.txt.out"

python3 - "$out_dir/s4/aggregate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
assert len(agg["cells"]) == 8, len(agg["cells"])  # 2 seeds x 4 rates
labels = ["fault:mq.drop_rate=%s" % r for r in ("0", "0.05", "0.15", "0.3")]
groups = [agg["groups"][l] for l in labels]
assert groups[0]["degraded_cells"] == 0, "control point degraded"
assert groups[0]["input_retries"] == 0, "control point retried"
retries = [g["input_retries"] for g in groups]
assert all(a <= b for a, b in zip(retries, retries[1:])), retries
assert retries[-1] > 0, "sweep never provoked a retry"
print(f"sweep ok: input_retries across rates = {retries}")
EOF

# Gate self-check: the sweep's own aggregate is a passing baseline...
"$ilat" --campaign="$sweep" --campaign-baseline="$out_dir/s4/aggregate.json" \
  > "$out_dir/gate.txt"
grep -q "PASS" "$out_dir/gate.txt"
grep -q "fault drift" "$out_dir/gate.txt"

# ...while a doctored baseline claiming a healthier past (fewer retries,
# no degraded cells, smaller fault.* sums) must fail with exit 1.
python3 - "$out_dir/s4/aggregate.json" "$out_dir/doctored.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
for group in agg["groups"].values():
    group["input_retries"] = 0
    group["degraded_cells"] = 0
    group["mq_dropped"] = 0
for name, entry in agg.get("metrics", {}).items():
    if name.startswith("fault."):
        entry["sum"] = 0
with open(sys.argv[2], "w") as f:
    json.dump(agg, f)
EOF
rc=0
"$ilat" --campaign="$sweep" --campaign-baseline="$out_dir/doctored.json" \
  > "$out_dir/gate_fail.txt" || rc=$?
if [[ $rc -ne 1 ]]; then
  echo "error: fault-drift gate did not fail (exit $rc) against doctored baseline" >&2
  exit 1
fi
grep -q "FAIL" "$out_dir/gate_fail.txt"

# ----------------------------------------------------------- bad inputs --

expect_usage_error() {
  # Runs "$@" and asserts it exits 2 (the usage-error code).
  local rc=0
  "$@" >/dev/null 2>&1 || rc=$?
  if [[ $rc -ne 2 ]]; then
    echo "error: expected exit 2 (got $rc) from: $*" >&2
    exit 1
  fi
}

echo "mq.drop_rate = 7" > "$out_dir/bad.plan"
expect_usage_error "$ilat" --faults="$out_dir/bad.plan"
expect_usage_error "$ilat" --faults="$out_dir/missing.plan"
expect_usage_error "$ilat" --seed=abc
expect_usage_error "$ilat" --threshold-ms=1e999
expect_usage_error "$ilat" --packets=

echo "check_faults: all good"
