#!/usr/bin/env bash
# Smoke-test the fault-injection subsystem end to end through the CLI:
#  - a faulted single run prints a fault report and exits 0,
#  - --fail-degraded turns a degraded run into exit 1,
#  - a faulted campaign is byte-identical across --jobs=1/4 (the
#    determinism contract extends to faults and retries),
#  - the aggregate carries the per-cell fault columns,
#  - malformed plans and malformed numeric flags exit 2 with one-line
#    usage errors.
# Assumes a built tree (cmake -B build -S . && cmake --build build); pass a
# different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

# ---------------------------------------------------------- single runs --

plan="$out_dir/faults.plan"
cat > "$plan" <<'EOF'
# light interference: drops + clock jitter
mq.drop_rate      = 0.02
clock.jitter_frac = 0.2
EOF

"$ilat" --app=notepad --faults="$plan" > "$out_dir/run.txt"
grep -q "fault injection:" "$out_dir/run.txt"

# A permanently-dead disk degrades the disk-bound app but still produces a
# structured report; --fail-degraded opts into a non-zero exit.
perm="$out_dir/perm.plan"
echo "disk.fail_after = 1" > "$perm"
"$ilat" --app=powerpoint --faults="$perm" > "$out_dir/perm.txt"
grep -q "fault injection: degraded" "$out_dir/perm.txt"
grep -q "disk_permanent" "$out_dir/perm.txt"
if "$ilat" --app=powerpoint --faults="$perm" --fail-degraded >/dev/null; then
  echo "error: --fail-degraded did not fail a degraded run" >&2
  exit 1
fi

# ------------------------------------------------------------ campaigns --

spec="$out_dir/spec.txt"
cat > "$spec" <<'EOF'
name    = faulted-smoke
os      = nt40, win95
app     = notepad, desktop
seeds   = 1
seed    = 2026
retries = 1
fault.mq.drop_rate      = 0.02
fault.clock.jitter_frac = 0.2
EOF

"$ilat" --campaign="$spec" --jobs=4 --campaign-out="$out_dir/j4" > "$out_dir/camp.txt"
"$ilat" --campaign="$spec" --jobs=1 --campaign-out="$out_dir/j1" >/dev/null
cmp "$out_dir/j1/aggregate.json" "$out_dir/j4/aggregate.json"
cmp "$out_dir/j1/cells.csv" "$out_dir/j4/cells.csv"
grep -q "fault injection:" "$out_dir/camp.txt"

# The aggregate carries fault columns and the degraded flag per cell.
python3 - "$out_dir/j4/aggregate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
assert len(agg["cells"]) == 4
for cell in agg["cells"]:
    assert "degraded" in cell, cell
    assert "attempts" in cell, cell
    assert "faults" in cell, "fault block missing from faulted cell"
    for key in ("mq_dropped", "disk_transient", "io_failed", "storm_ticks"):
        assert key in cell["faults"], f"missing fault column {key!r}"
dropped = sum(c["faults"]["mq_dropped"] for c in agg["cells"])
print(f"aggregate ok: {dropped} dropped messages across {len(agg['cells'])} cells")
EOF
head -1 "$out_dir/j4/cells.csv" | grep -q "degraded,disk_transient"

# ----------------------------------------------------------- bad inputs --

expect_usage_error() {
  # Runs "$@" and asserts it exits 2 (the usage-error code).
  local rc=0
  "$@" >/dev/null 2>&1 || rc=$?
  if [[ $rc -ne 2 ]]; then
    echo "error: expected exit 2 (got $rc) from: $*" >&2
    exit 1
  fi
}

echo "mq.drop_rate = 7" > "$out_dir/bad.plan"
expect_usage_error "$ilat" --faults="$out_dir/bad.plan"
expect_usage_error "$ilat" --faults="$out_dir/missing.plan"
expect_usage_error "$ilat" --seed=abc
expect_usage_error "$ilat" --threshold-ms=1e999
expect_usage_error "$ilat" --packets=

echo "check_faults: all good"
