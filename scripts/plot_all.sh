#!/bin/sh
# Render every gnuplot script the benches dropped into bench_out/ to PNG.
# Usage: scripts/plot_all.sh [bench_out_dir]
set -e
dir="${1:-bench_out}"
if ! command -v gnuplot >/dev/null 2>&1; then
  echo "gnuplot not found; install it to render PNGs" >&2
  exit 1
fi
cd "$dir"
for gp in *.gp; do
  [ -f "$gp" ] || continue
  echo "rendering $gp"
  gnuplot "$gp"
done
echo "PNGs written to $dir/"
