#!/usr/bin/env bash
# Smoke-test the staged media pipeline end to end: run the checked-in
# underrun-vs-stall campaign (campaigns/media_deadlines.spec), demand
# byte-identical outputs across --jobs and through shard + `ilat merge`,
# validate the aggregate (rendered frames fall -- underruns rise -- with
# the stall rate at each frame rate, faulted cells degrade), check a
# stall-rate sweep's underrun counters are strictly monotone from the
# metrics JSON, and vet the media CLI flags' usage errors.  Assumes a
# built tree; pass a different build dir as $1.
set -euo pipefail

build_dir="${1:-build}"
ilat="$build_dir/src/tools/ilat"
if [[ ! -x "$ilat" ]]; then
  echo "error: $ilat not found -- build the project first" >&2
  exit 2
fi
repo_dir="$(cd "$(dirname "$0")/.." && pwd)"
spec="$repo_dir/campaigns/media_deadlines.spec"

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

# The pipeline app and workload list in the catalog.
"$ilat" --list | grep -q "pipeline"

# Determinism contract: 4 worker threads and 1 produce the same bytes.
"$ilat" --campaign="$spec" --jobs=4 --campaign-out="$out_dir/j4" >/dev/null
"$ilat" --campaign="$spec" --jobs=1 --campaign-out="$out_dir/j1" >/dev/null
cmp "$out_dir/j1/aggregate.json" "$out_dir/j4/aggregate.json"
cmp "$out_dir/j1/cells.csv" "$out_dir/j4/cells.csv"

# Sharded halves merge back into the unsharded aggregate byte for byte.
for i in 0 1; do
  "$ilat" --campaign="$spec" --shard="$i/2" \
          --campaign-partial="$out_dir/p$i.json" >/dev/null
done
"$ilat" merge "$out_dir/p0.json" "$out_dir/p1.json" \
        --campaign-out="$out_dir/merged" >/dev/null
cmp "$out_dir/j4/aggregate.json" "$out_dir/merged/aggregate.json"
cmp "$out_dir/j4/cells.csv" "$out_dir/merged/cells.csv"

# The aggregate is well-formed and the deadline story holds: each cell's
# events are its *rendered* slots, so at each frame rate the event count
# must fall (underruns rise) as the stall rate grows, the clean cell must
# render the full stream undegraded, and every faulted cell must degrade.
python3 - "$out_dir/j4/aggregate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
cells = agg["cells"]
assert cells, "no cells in aggregate"
curves = {}
for c in cells:
    plabel, flabel = c.get("param_label", ""), c.get("fault_label", "")
    assert plabel and flabel, f"cell {c['index']} missing labels"
    fps = float(dict(p.split("=", 1) for p in plabel.split("|"))["media_fps"])
    rate = float(flabel.split("=", 1)[1])
    curves.setdefault(fps, []).append((rate, c["events"], c["degraded"]))
assert len(curves) >= 2, f"expected >= 2 frame rates, got {sorted(curves)}"
for fps, points in sorted(curves.items()):
    points.sort()
    assert len(points) >= 3, f"fps={fps}: too few stall rates"
    (r0, clean, deg0), rest = points[0], points[1:]
    assert r0 == 0.0 and not deg0, f"fps={fps}: clean cell missing or degraded"
    prev = clean
    for rate, rendered, degraded in rest:
        assert degraded, f"fps={fps} stall={rate}: stalls did not degrade the cell"
        assert rendered < clean, f"fps={fps} stall={rate}: no underruns under stalls"
        assert rendered <= prev, \
            f"fps={fps}: rendered frames not monotone in stall rate: {points}"
        prev = rendered
print(f"media deadline curves ok: {len(curves)} frame rates x "
      f"{len(next(iter(curves.values())))} stall rates, all monotone")
EOF

# Underruns are first-class metrics: sweep the stall rate through single
# runs and require the media.underruns counter to increase strictly.
prev=-1
for rate in 0 0.05 0.15; do
  printf 'disk.stall_rate = %s\ndisk.stall_ms = 80\n' "$rate" > "$out_dir/stall.plan"
  "$ilat" --app=pipeline --frames=200 --faults="$out_dir/stall.plan" \
          --metrics-out="$out_dir/metrics.json" >/dev/null
  underruns=$(python3 -c "
import json, sys
m = json.load(open(sys.argv[1]))
c = m['counters']
assert c['media.frames.decoded'] == 200, c
assert c['media.frames.rendered'] + c['media.underruns'] == 200, c
print(c['media.underruns'])" "$out_dir/metrics.json")
  if (( underruns <= prev )); then
    echo "error: underruns not strictly increasing with stall rate:" \
         "rate=$rate gave $underruns (prev $prev)" >&2
    exit 1
  fi
  prev=$underruns
done

# Malformed media flags exit 2 with a one-line diagnostic naming the flag.
expect_exit2() {
  local what="$1" flag="$2"
  shift 2
  local output rc
  set +e
  output="$("$@" 2>&1)"
  rc=$?
  set -e
  if [[ $rc -ne 2 ]]; then
    echo "error: $what should exit 2 (got $rc)" >&2
    exit 1
  fi
  if [[ "$(printf '%s' "$output" | head -n 1)" != *"$flag"* ]]; then
    echo "error: $what should lead with a $flag diagnostic:" >&2
    printf '%s\n' "$output" >&2
    exit 1
  fi
}
expect_exit2 "--media-fps=0" "--media-fps" "$ilat" --app=pipeline --media-fps=0
expect_exit2 "--media-fps=abc" "--media-fps" "$ilat" --app=pipeline --media-fps=abc
expect_exit2 "--media-buffer=0" "--media-buffer" "$ilat" --app=pipeline --media-buffer=0
expect_exit2 "--media-buffer=4097" "--media-buffer" "$ilat" --app=pipeline --media-buffer=4097
expect_exit2 "--frames=0" "--frames" "$ilat" --app=pipeline --frames=0

# A bad media param key in a sweep fails the spec parse with a line number.
bad_spec="$out_dir/bad_spec.txt"
cat > "$bad_spec" <<'EOF'
app = pipeline
sweep.params.media_bogus = 1, 2
EOF
set +e
output="$("$ilat" --campaign="$bad_spec" 2>&1)"
rc=$?
set -e
if [[ $rc -ne 2 ]] || [[ "$output" != *"line 2"* ]]; then
  echo "error: bad sweep.params key should exit 2 with a line number:" >&2
  printf '%s\n' "$output" >&2
  exit 1
fi

echo "check_media: all good"
