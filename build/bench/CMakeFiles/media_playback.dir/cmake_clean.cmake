file(REMOVE_RECURSE
  "CMakeFiles/media_playback.dir/media_playback.cc.o"
  "CMakeFiles/media_playback.dir/media_playback.cc.o.d"
  "media_playback"
  "media_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
