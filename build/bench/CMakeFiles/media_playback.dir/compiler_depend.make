# Empty compiler generated dependencies file for media_playback.
# This may be replaced when dependencies are built.
