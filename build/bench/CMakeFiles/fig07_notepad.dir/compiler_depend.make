# Empty compiler generated dependencies file for fig07_notepad.
# This may be replaced when dependencies are built.
