file(REMOVE_RECURSE
  "CMakeFiles/fig07_notepad.dir/fig07_notepad.cc.o"
  "CMakeFiles/fig07_notepad.dir/fig07_notepad.cc.o.d"
  "fig07_notepad"
  "fig07_notepad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_notepad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
