file(REMOVE_RECURSE
  "CMakeFiles/fig04_window_maximize.dir/fig04_window_maximize.cc.o"
  "CMakeFiles/fig04_window_maximize.dir/fig04_window_maximize.cc.o.d"
  "fig04_window_maximize"
  "fig04_window_maximize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_window_maximize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
