# Empty compiler generated dependencies file for fig04_window_maximize.
# This may be replaced when dependencies are built.
