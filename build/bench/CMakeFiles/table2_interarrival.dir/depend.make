# Empty dependencies file for table2_interarrival.
# This may be replaced when dependencies are built.
