file(REMOVE_RECURSE
  "CMakeFiles/table2_interarrival.dir/table2_interarrival.cc.o"
  "CMakeFiles/table2_interarrival.dir/table2_interarrival.cc.o.d"
  "table2_interarrival"
  "table2_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
