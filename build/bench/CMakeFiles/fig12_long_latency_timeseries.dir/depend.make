# Empty dependencies file for fig12_long_latency_timeseries.
# This may be replaced when dependencies are built.
