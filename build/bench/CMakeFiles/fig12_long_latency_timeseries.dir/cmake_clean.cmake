file(REMOVE_RECURSE
  "CMakeFiles/fig12_long_latency_timeseries.dir/fig12_long_latency_timeseries.cc.o"
  "CMakeFiles/fig12_long_latency_timeseries.dir/fig12_long_latency_timeseries.cc.o.d"
  "fig12_long_latency_timeseries"
  "fig12_long_latency_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_long_latency_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
