file(REMOVE_RECURSE
  "CMakeFiles/table1_long_latency.dir/table1_long_latency.cc.o"
  "CMakeFiles/table1_long_latency.dir/table1_long_latency.cc.o.d"
  "table1_long_latency"
  "table1_long_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_long_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
