file(REMOVE_RECURSE
  "CMakeFiles/fig03_idle_profiles.dir/fig03_idle_profiles.cc.o"
  "CMakeFiles/fig03_idle_profiles.dir/fig03_idle_profiles.cc.o.d"
  "fig03_idle_profiles"
  "fig03_idle_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_idle_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
