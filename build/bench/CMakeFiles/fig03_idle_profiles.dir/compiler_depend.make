# Empty compiler generated dependencies file for fig03_idle_profiles.
# This may be replaced when dependencies are built.
