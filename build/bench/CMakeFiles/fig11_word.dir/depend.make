# Empty dependencies file for fig11_word.
# This may be replaced when dependencies are built.
