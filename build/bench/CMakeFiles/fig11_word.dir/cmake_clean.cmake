file(REMOVE_RECURSE
  "CMakeFiles/fig11_word.dir/fig11_word.cc.o"
  "CMakeFiles/fig11_word.dir/fig11_word.cc.o.d"
  "fig11_word"
  "fig11_word.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
