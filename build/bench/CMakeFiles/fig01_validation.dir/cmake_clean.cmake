file(REMOVE_RECURSE
  "CMakeFiles/fig01_validation.dir/fig01_validation.cc.o"
  "CMakeFiles/fig01_validation.dir/fig01_validation.cc.o.d"
  "fig01_validation"
  "fig01_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
