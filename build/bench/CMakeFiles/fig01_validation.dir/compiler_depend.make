# Empty compiler generated dependencies file for fig01_validation.
# This may be replaced when dependencies are built.
