# Empty compiler generated dependencies file for ablation_tlb_flush.
# This may be replaced when dependencies are built.
