file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb_flush.dir/ablation_tlb_flush.cc.o"
  "CMakeFiles/ablation_tlb_flush.dir/ablation_tlb_flush.cc.o.d"
  "ablation_tlb_flush"
  "ablation_tlb_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
