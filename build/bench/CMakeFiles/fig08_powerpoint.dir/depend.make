# Empty dependencies file for fig08_powerpoint.
# This may be replaced when dependencies are built.
