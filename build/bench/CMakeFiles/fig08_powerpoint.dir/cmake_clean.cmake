file(REMOVE_RECURSE
  "CMakeFiles/fig08_powerpoint.dir/fig08_powerpoint.cc.o"
  "CMakeFiles/fig08_powerpoint.dir/fig08_powerpoint.cc.o.d"
  "fig08_powerpoint"
  "fig08_powerpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_powerpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
