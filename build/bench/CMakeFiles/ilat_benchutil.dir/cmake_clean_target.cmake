file(REMOVE_RECURSE
  "../lib/libilat_benchutil.a"
)
