# Empty compiler generated dependencies file for ilat_benchutil.
# This may be replaced when dependencies are built.
