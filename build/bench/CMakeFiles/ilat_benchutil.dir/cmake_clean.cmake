file(REMOVE_RECURSE
  "../lib/libilat_benchutil.a"
  "../lib/libilat_benchutil.pdb"
  "CMakeFiles/ilat_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/ilat_benchutil.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
