file(REMOVE_RECURSE
  "CMakeFiles/fig05_word_trace.dir/fig05_word_trace.cc.o"
  "CMakeFiles/fig05_word_trace.dir/fig05_word_trace.cc.o.d"
  "fig05_word_trace"
  "fig05_word_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_word_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
