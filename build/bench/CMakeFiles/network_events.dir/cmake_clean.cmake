file(REMOVE_RECURSE
  "CMakeFiles/network_events.dir/network_events.cc.o"
  "CMakeFiles/network_events.dir/network_events.cc.o.d"
  "network_events"
  "network_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
