# Empty dependencies file for network_events.
# This may be replaced when dependencies are built.
