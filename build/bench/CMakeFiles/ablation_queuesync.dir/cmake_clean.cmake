file(REMOVE_RECURSE
  "CMakeFiles/ablation_queuesync.dir/ablation_queuesync.cc.o"
  "CMakeFiles/ablation_queuesync.dir/ablation_queuesync.cc.o.d"
  "ablation_queuesync"
  "ablation_queuesync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queuesync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
