# Empty compiler generated dependencies file for ablation_queuesync.
# This may be replaced when dependencies are built.
