# Empty dependencies file for ablation_background_load.
# This may be replaced when dependencies are built.
