file(REMOVE_RECURSE
  "CMakeFiles/ablation_background_load.dir/ablation_background_load.cc.o"
  "CMakeFiles/ablation_background_load.dir/ablation_background_load.cc.o.d"
  "ablation_background_load"
  "ablation_background_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_background_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
