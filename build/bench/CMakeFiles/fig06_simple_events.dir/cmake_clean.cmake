file(REMOVE_RECURSE
  "CMakeFiles/fig06_simple_events.dir/fig06_simple_events.cc.o"
  "CMakeFiles/fig06_simple_events.dir/fig06_simple_events.cc.o.d"
  "fig06_simple_events"
  "fig06_simple_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_simple_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
