# Empty compiler generated dependencies file for fig06_simple_events.
# This may be replaced when dependencies are built.
