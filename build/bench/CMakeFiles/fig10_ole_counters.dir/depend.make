# Empty dependencies file for fig10_ole_counters.
# This may be replaced when dependencies are built.
