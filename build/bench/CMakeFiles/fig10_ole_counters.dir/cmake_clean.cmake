file(REMOVE_RECURSE
  "CMakeFiles/fig10_ole_counters.dir/fig10_ole_counters.cc.o"
  "CMakeFiles/fig10_ole_counters.dir/fig10_ole_counters.cc.o.d"
  "fig10_ole_counters"
  "fig10_ole_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ole_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
