# Empty dependencies file for fig09_pagedown_counters.
# This may be replaced when dependencies are built.
