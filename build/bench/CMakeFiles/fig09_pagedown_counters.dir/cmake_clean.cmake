file(REMOVE_RECURSE
  "CMakeFiles/fig09_pagedown_counters.dir/fig09_pagedown_counters.cc.o"
  "CMakeFiles/fig09_pagedown_counters.dir/fig09_pagedown_counters.cc.o.d"
  "fig09_pagedown_counters"
  "fig09_pagedown_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pagedown_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
