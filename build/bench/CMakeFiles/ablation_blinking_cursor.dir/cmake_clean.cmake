file(REMOVE_RECURSE
  "CMakeFiles/ablation_blinking_cursor.dir/ablation_blinking_cursor.cc.o"
  "CMakeFiles/ablation_blinking_cursor.dir/ablation_blinking_cursor.cc.o.d"
  "ablation_blinking_cursor"
  "ablation_blinking_cursor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blinking_cursor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
