# Empty compiler generated dependencies file for ablation_blinking_cursor.
# This may be replaced when dependencies are built.
