# Empty dependencies file for sec54_test_vs_human.
# This may be replaced when dependencies are built.
