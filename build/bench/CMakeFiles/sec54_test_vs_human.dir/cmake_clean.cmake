file(REMOVE_RECURSE
  "CMakeFiles/sec54_test_vs_human.dir/sec54_test_vs_human.cc.o"
  "CMakeFiles/sec54_test_vs_human.dir/sec54_test_vs_human.cc.o.d"
  "sec54_test_vs_human"
  "sec54_test_vs_human.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_test_vs_human.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
