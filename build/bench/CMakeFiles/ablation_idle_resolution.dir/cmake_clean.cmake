file(REMOVE_RECURSE
  "CMakeFiles/ablation_idle_resolution.dir/ablation_idle_resolution.cc.o"
  "CMakeFiles/ablation_idle_resolution.dir/ablation_idle_resolution.cc.o.d"
  "ablation_idle_resolution"
  "ablation_idle_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idle_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
