# Empty dependencies file for ablation_idle_resolution.
# This may be replaced when dependencies are built.
