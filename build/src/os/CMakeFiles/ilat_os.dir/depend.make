# Empty dependencies file for ilat_os.
# This may be replaced when dependencies are built.
