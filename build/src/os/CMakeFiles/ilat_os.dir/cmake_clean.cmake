file(REMOVE_RECURSE
  "CMakeFiles/ilat_os.dir/filesystem.cc.o"
  "CMakeFiles/ilat_os.dir/filesystem.cc.o.d"
  "CMakeFiles/ilat_os.dir/personalities.cc.o"
  "CMakeFiles/ilat_os.dir/personalities.cc.o.d"
  "CMakeFiles/ilat_os.dir/system.cc.o"
  "CMakeFiles/ilat_os.dir/system.cc.o.d"
  "CMakeFiles/ilat_os.dir/win32.cc.o"
  "CMakeFiles/ilat_os.dir/win32.cc.o.d"
  "libilat_os.a"
  "libilat_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
