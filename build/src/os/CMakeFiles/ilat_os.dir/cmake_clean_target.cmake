file(REMOVE_RECURSE
  "libilat_os.a"
)
