
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/filesystem.cc" "src/os/CMakeFiles/ilat_os.dir/filesystem.cc.o" "gcc" "src/os/CMakeFiles/ilat_os.dir/filesystem.cc.o.d"
  "/root/repo/src/os/personalities.cc" "src/os/CMakeFiles/ilat_os.dir/personalities.cc.o" "gcc" "src/os/CMakeFiles/ilat_os.dir/personalities.cc.o.d"
  "/root/repo/src/os/system.cc" "src/os/CMakeFiles/ilat_os.dir/system.cc.o" "gcc" "src/os/CMakeFiles/ilat_os.dir/system.cc.o.d"
  "/root/repo/src/os/win32.cc" "src/os/CMakeFiles/ilat_os.dir/win32.cc.o" "gcc" "src/os/CMakeFiles/ilat_os.dir/win32.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ilat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
