# Empty dependencies file for ilat_core.
# This may be replaced when dependencies are built.
