file(REMOVE_RECURSE
  "CMakeFiles/ilat_core.dir/busy_profile.cc.o"
  "CMakeFiles/ilat_core.dir/busy_profile.cc.o.d"
  "CMakeFiles/ilat_core.dir/event_extractor.cc.o"
  "CMakeFiles/ilat_core.dir/event_extractor.cc.o.d"
  "CMakeFiles/ilat_core.dir/measurement.cc.o"
  "CMakeFiles/ilat_core.dir/measurement.cc.o.d"
  "CMakeFiles/ilat_core.dir/session_io.cc.o"
  "CMakeFiles/ilat_core.dir/session_io.cc.o.d"
  "CMakeFiles/ilat_core.dir/think_wait_fsm.cc.o"
  "CMakeFiles/ilat_core.dir/think_wait_fsm.cc.o.d"
  "libilat_core.a"
  "libilat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
