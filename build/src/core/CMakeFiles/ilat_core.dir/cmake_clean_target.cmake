file(REMOVE_RECURSE
  "libilat_core.a"
)
