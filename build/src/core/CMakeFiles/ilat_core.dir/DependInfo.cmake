
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/busy_profile.cc" "src/core/CMakeFiles/ilat_core.dir/busy_profile.cc.o" "gcc" "src/core/CMakeFiles/ilat_core.dir/busy_profile.cc.o.d"
  "/root/repo/src/core/event_extractor.cc" "src/core/CMakeFiles/ilat_core.dir/event_extractor.cc.o" "gcc" "src/core/CMakeFiles/ilat_core.dir/event_extractor.cc.o.d"
  "/root/repo/src/core/measurement.cc" "src/core/CMakeFiles/ilat_core.dir/measurement.cc.o" "gcc" "src/core/CMakeFiles/ilat_core.dir/measurement.cc.o.d"
  "/root/repo/src/core/session_io.cc" "src/core/CMakeFiles/ilat_core.dir/session_io.cc.o" "gcc" "src/core/CMakeFiles/ilat_core.dir/session_io.cc.o.d"
  "/root/repo/src/core/think_wait_fsm.cc" "src/core/CMakeFiles/ilat_core.dir/think_wait_fsm.cc.o" "gcc" "src/core/CMakeFiles/ilat_core.dir/think_wait_fsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ilat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ilat_input.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ilat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
