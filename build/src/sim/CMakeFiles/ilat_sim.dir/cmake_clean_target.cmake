file(REMOVE_RECURSE
  "libilat_sim.a"
)
