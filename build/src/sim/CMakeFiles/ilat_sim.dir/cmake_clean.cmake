file(REMOVE_RECURSE
  "CMakeFiles/ilat_sim.dir/buffer_cache.cc.o"
  "CMakeFiles/ilat_sim.dir/buffer_cache.cc.o.d"
  "CMakeFiles/ilat_sim.dir/disk.cc.o"
  "CMakeFiles/ilat_sim.dir/disk.cc.o.d"
  "CMakeFiles/ilat_sim.dir/event_queue.cc.o"
  "CMakeFiles/ilat_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ilat_sim.dir/hardware_counters.cc.o"
  "CMakeFiles/ilat_sim.dir/hardware_counters.cc.o.d"
  "CMakeFiles/ilat_sim.dir/interrupts.cc.o"
  "CMakeFiles/ilat_sim.dir/interrupts.cc.o.d"
  "CMakeFiles/ilat_sim.dir/message.cc.o"
  "CMakeFiles/ilat_sim.dir/message.cc.o.d"
  "CMakeFiles/ilat_sim.dir/message_queue.cc.o"
  "CMakeFiles/ilat_sim.dir/message_queue.cc.o.d"
  "CMakeFiles/ilat_sim.dir/random.cc.o"
  "CMakeFiles/ilat_sim.dir/random.cc.o.d"
  "CMakeFiles/ilat_sim.dir/scheduler.cc.o"
  "CMakeFiles/ilat_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/ilat_sim.dir/simulation.cc.o"
  "CMakeFiles/ilat_sim.dir/simulation.cc.o.d"
  "libilat_sim.a"
  "libilat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
