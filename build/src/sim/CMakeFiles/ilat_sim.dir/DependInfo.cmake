
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/buffer_cache.cc" "src/sim/CMakeFiles/ilat_sim.dir/buffer_cache.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/buffer_cache.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/sim/CMakeFiles/ilat_sim.dir/disk.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/disk.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/ilat_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/hardware_counters.cc" "src/sim/CMakeFiles/ilat_sim.dir/hardware_counters.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/hardware_counters.cc.o.d"
  "/root/repo/src/sim/interrupts.cc" "src/sim/CMakeFiles/ilat_sim.dir/interrupts.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/interrupts.cc.o.d"
  "/root/repo/src/sim/message.cc" "src/sim/CMakeFiles/ilat_sim.dir/message.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/message.cc.o.d"
  "/root/repo/src/sim/message_queue.cc" "src/sim/CMakeFiles/ilat_sim.dir/message_queue.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/message_queue.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/sim/CMakeFiles/ilat_sim.dir/random.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/random.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/ilat_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/sim/CMakeFiles/ilat_sim.dir/simulation.cc.o" "gcc" "src/sim/CMakeFiles/ilat_sim.dir/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
