# Empty compiler generated dependencies file for ilat_sim.
# This may be replaced when dependencies are built.
