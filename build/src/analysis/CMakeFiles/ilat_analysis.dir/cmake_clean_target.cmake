file(REMOVE_RECURSE
  "libilat_analysis.a"
)
