# Empty dependencies file for ilat_analysis.
# This may be replaced when dependencies are built.
