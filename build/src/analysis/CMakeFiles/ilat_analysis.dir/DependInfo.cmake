
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/classifier.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/classifier.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/classifier.cc.o.d"
  "/root/repo/src/analysis/cumulative.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/cumulative.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/cumulative.cc.o.d"
  "/root/repo/src/analysis/deadlines.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/deadlines.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/deadlines.cc.o.d"
  "/root/repo/src/analysis/histogram.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/histogram.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/histogram.cc.o.d"
  "/root/repo/src/analysis/interarrival.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/interarrival.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/interarrival.cc.o.d"
  "/root/repo/src/analysis/irritation.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/irritation.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/irritation.cc.o.d"
  "/root/repo/src/analysis/responsiveness.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/responsiveness.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/responsiveness.cc.o.d"
  "/root/repo/src/analysis/sliding_window.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/sliding_window.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/sliding_window.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/analysis/CMakeFiles/ilat_analysis.dir/stats.cc.o" "gcc" "src/analysis/CMakeFiles/ilat_analysis.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ilat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ilat_input.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ilat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ilat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
