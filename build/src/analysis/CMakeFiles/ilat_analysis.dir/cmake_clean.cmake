file(REMOVE_RECURSE
  "CMakeFiles/ilat_analysis.dir/classifier.cc.o"
  "CMakeFiles/ilat_analysis.dir/classifier.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/cumulative.cc.o"
  "CMakeFiles/ilat_analysis.dir/cumulative.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/deadlines.cc.o"
  "CMakeFiles/ilat_analysis.dir/deadlines.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/histogram.cc.o"
  "CMakeFiles/ilat_analysis.dir/histogram.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/interarrival.cc.o"
  "CMakeFiles/ilat_analysis.dir/interarrival.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/irritation.cc.o"
  "CMakeFiles/ilat_analysis.dir/irritation.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/responsiveness.cc.o"
  "CMakeFiles/ilat_analysis.dir/responsiveness.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/sliding_window.cc.o"
  "CMakeFiles/ilat_analysis.dir/sliding_window.cc.o.d"
  "CMakeFiles/ilat_analysis.dir/stats.cc.o"
  "CMakeFiles/ilat_analysis.dir/stats.cc.o.d"
  "libilat_analysis.a"
  "libilat_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
