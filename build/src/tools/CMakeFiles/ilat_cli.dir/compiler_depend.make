# Empty compiler generated dependencies file for ilat_cli.
# This may be replaced when dependencies are built.
