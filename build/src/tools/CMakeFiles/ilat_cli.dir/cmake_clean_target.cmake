file(REMOVE_RECURSE
  "libilat_cli.a"
)
