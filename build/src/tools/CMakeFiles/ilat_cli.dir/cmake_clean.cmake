file(REMOVE_RECURSE
  "CMakeFiles/ilat_cli.dir/cli.cc.o"
  "CMakeFiles/ilat_cli.dir/cli.cc.o.d"
  "libilat_cli.a"
  "libilat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
