# Empty compiler generated dependencies file for ilat.
# This may be replaced when dependencies are built.
