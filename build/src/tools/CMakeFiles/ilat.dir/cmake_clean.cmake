file(REMOVE_RECURSE
  "CMakeFiles/ilat.dir/ilat_main.cc.o"
  "CMakeFiles/ilat.dir/ilat_main.cc.o.d"
  "ilat"
  "ilat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
