file(REMOVE_RECURSE
  "libilat_input.a"
)
