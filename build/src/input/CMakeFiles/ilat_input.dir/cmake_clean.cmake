file(REMOVE_RECURSE
  "CMakeFiles/ilat_input.dir/driver.cc.o"
  "CMakeFiles/ilat_input.dir/driver.cc.o.d"
  "CMakeFiles/ilat_input.dir/network.cc.o"
  "CMakeFiles/ilat_input.dir/network.cc.o.d"
  "CMakeFiles/ilat_input.dir/typist.cc.o"
  "CMakeFiles/ilat_input.dir/typist.cc.o.d"
  "CMakeFiles/ilat_input.dir/workloads.cc.o"
  "CMakeFiles/ilat_input.dir/workloads.cc.o.d"
  "libilat_input.a"
  "libilat_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
