
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/input/driver.cc" "src/input/CMakeFiles/ilat_input.dir/driver.cc.o" "gcc" "src/input/CMakeFiles/ilat_input.dir/driver.cc.o.d"
  "/root/repo/src/input/network.cc" "src/input/CMakeFiles/ilat_input.dir/network.cc.o" "gcc" "src/input/CMakeFiles/ilat_input.dir/network.cc.o.d"
  "/root/repo/src/input/typist.cc" "src/input/CMakeFiles/ilat_input.dir/typist.cc.o" "gcc" "src/input/CMakeFiles/ilat_input.dir/typist.cc.o.d"
  "/root/repo/src/input/workloads.cc" "src/input/CMakeFiles/ilat_input.dir/workloads.cc.o" "gcc" "src/input/CMakeFiles/ilat_input.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ilat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ilat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
