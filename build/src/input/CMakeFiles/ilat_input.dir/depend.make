# Empty dependencies file for ilat_input.
# This may be replaced when dependencies are built.
