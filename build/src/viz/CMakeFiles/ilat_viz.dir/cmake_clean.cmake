file(REMOVE_RECURSE
  "CMakeFiles/ilat_viz.dir/ascii_chart.cc.o"
  "CMakeFiles/ilat_viz.dir/ascii_chart.cc.o.d"
  "CMakeFiles/ilat_viz.dir/csv.cc.o"
  "CMakeFiles/ilat_viz.dir/csv.cc.o.d"
  "CMakeFiles/ilat_viz.dir/gnuplot.cc.o"
  "CMakeFiles/ilat_viz.dir/gnuplot.cc.o.d"
  "CMakeFiles/ilat_viz.dir/table.cc.o"
  "CMakeFiles/ilat_viz.dir/table.cc.o.d"
  "libilat_viz.a"
  "libilat_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
