# Empty dependencies file for ilat_viz.
# This may be replaced when dependencies are built.
