file(REMOVE_RECURSE
  "libilat_viz.a"
)
