
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/application.cc" "src/apps/CMakeFiles/ilat_apps.dir/application.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/application.cc.o.d"
  "/root/repo/src/apps/desktop.cc" "src/apps/CMakeFiles/ilat_apps.dir/desktop.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/desktop.cc.o.d"
  "/root/repo/src/apps/echo_app.cc" "src/apps/CMakeFiles/ilat_apps.dir/echo_app.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/echo_app.cc.o.d"
  "/root/repo/src/apps/media_player.cc" "src/apps/CMakeFiles/ilat_apps.dir/media_player.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/media_player.cc.o.d"
  "/root/repo/src/apps/notepad.cc" "src/apps/CMakeFiles/ilat_apps.dir/notepad.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/notepad.cc.o.d"
  "/root/repo/src/apps/powerpoint.cc" "src/apps/CMakeFiles/ilat_apps.dir/powerpoint.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/powerpoint.cc.o.d"
  "/root/repo/src/apps/terminal.cc" "src/apps/CMakeFiles/ilat_apps.dir/terminal.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/terminal.cc.o.d"
  "/root/repo/src/apps/window_manager.cc" "src/apps/CMakeFiles/ilat_apps.dir/window_manager.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/window_manager.cc.o.d"
  "/root/repo/src/apps/word.cc" "src/apps/CMakeFiles/ilat_apps.dir/word.cc.o" "gcc" "src/apps/CMakeFiles/ilat_apps.dir/word.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/ilat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
