# Empty dependencies file for ilat_apps.
# This may be replaced when dependencies are built.
