file(REMOVE_RECURSE
  "CMakeFiles/ilat_apps.dir/application.cc.o"
  "CMakeFiles/ilat_apps.dir/application.cc.o.d"
  "CMakeFiles/ilat_apps.dir/desktop.cc.o"
  "CMakeFiles/ilat_apps.dir/desktop.cc.o.d"
  "CMakeFiles/ilat_apps.dir/echo_app.cc.o"
  "CMakeFiles/ilat_apps.dir/echo_app.cc.o.d"
  "CMakeFiles/ilat_apps.dir/media_player.cc.o"
  "CMakeFiles/ilat_apps.dir/media_player.cc.o.d"
  "CMakeFiles/ilat_apps.dir/notepad.cc.o"
  "CMakeFiles/ilat_apps.dir/notepad.cc.o.d"
  "CMakeFiles/ilat_apps.dir/powerpoint.cc.o"
  "CMakeFiles/ilat_apps.dir/powerpoint.cc.o.d"
  "CMakeFiles/ilat_apps.dir/terminal.cc.o"
  "CMakeFiles/ilat_apps.dir/terminal.cc.o.d"
  "CMakeFiles/ilat_apps.dir/window_manager.cc.o"
  "CMakeFiles/ilat_apps.dir/window_manager.cc.o.d"
  "CMakeFiles/ilat_apps.dir/word.cc.o"
  "CMakeFiles/ilat_apps.dir/word.cc.o.d"
  "libilat_apps.a"
  "libilat_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilat_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
