file(REMOVE_RECURSE
  "libilat_apps.a"
)
