# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_smoke_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_compare_systems "/root/repo/build/examples/compare_systems")
set_tests_properties(example_smoke_compare_systems PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_custom_app "/root/repo/build/examples/custom_app")
set_tests_properties(example_smoke_custom_app PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_think_wait_demo "/root/repo/build/examples/think_wait_demo")
set_tests_properties(example_smoke_think_wait_demo PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_media_smoothness "/root/repo/build/examples/media_smoothness")
set_tests_properties(example_smoke_media_smoothness PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_multitasking "/root/repo/build/examples/multitasking")
set_tests_properties(example_smoke_multitasking PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
