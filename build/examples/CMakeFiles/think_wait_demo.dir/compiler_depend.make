# Empty compiler generated dependencies file for think_wait_demo.
# This may be replaced when dependencies are built.
