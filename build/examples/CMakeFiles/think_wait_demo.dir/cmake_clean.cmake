file(REMOVE_RECURSE
  "CMakeFiles/think_wait_demo.dir/think_wait_demo.cpp.o"
  "CMakeFiles/think_wait_demo.dir/think_wait_demo.cpp.o.d"
  "think_wait_demo"
  "think_wait_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/think_wait_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
