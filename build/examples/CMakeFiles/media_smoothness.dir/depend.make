# Empty dependencies file for media_smoothness.
# This may be replaced when dependencies are built.
