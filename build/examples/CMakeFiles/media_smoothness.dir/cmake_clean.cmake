file(REMOVE_RECURSE
  "CMakeFiles/media_smoothness.dir/media_smoothness.cpp.o"
  "CMakeFiles/media_smoothness.dir/media_smoothness.cpp.o.d"
  "media_smoothness"
  "media_smoothness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_smoothness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
