# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_counters_test[1]_include.cmake")
include("/root/repo/build/tests/sim_message_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_disk_test[1]_include.cmake")
include("/root/repo/build/tests/sim_interrupts_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/apps_application_test[1]_include.cmake")
include("/root/repo/build/tests/apps_models_test[1]_include.cmake")
include("/root/repo/build/tests/input_test[1]_include.cmake")
include("/root/repo/build/tests/core_busy_profile_test[1]_include.cmake")
include("/root/repo/build/tests/core_fsm_test[1]_include.cmake")
include("/root/repo/build/tests/core_extractor_test[1]_include.cmake")
include("/root/repo/build/tests/core_measurement_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/batching_test[1]_include.cmake")
include("/root/repo/build/tests/batch_thread_test[1]_include.cmake")
include("/root/repo/build/tests/sim_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/sliding_window_test[1]_include.cmake")
include("/root/repo/build/tests/multitasking_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
