# Empty compiler generated dependencies file for core_fsm_test.
# This may be replaced when dependencies are built.
