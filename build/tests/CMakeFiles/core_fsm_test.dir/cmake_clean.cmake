file(REMOVE_RECURSE
  "CMakeFiles/core_fsm_test.dir/core_fsm_test.cc.o"
  "CMakeFiles/core_fsm_test.dir/core_fsm_test.cc.o.d"
  "core_fsm_test"
  "core_fsm_test.pdb"
  "core_fsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
