file(REMOVE_RECURSE
  "CMakeFiles/multitasking_test.dir/multitasking_test.cc.o"
  "CMakeFiles/multitasking_test.dir/multitasking_test.cc.o.d"
  "multitasking_test"
  "multitasking_test.pdb"
  "multitasking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitasking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
