# Empty dependencies file for multitasking_test.
# This may be replaced when dependencies are built.
