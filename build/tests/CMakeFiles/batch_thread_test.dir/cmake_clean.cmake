file(REMOVE_RECURSE
  "CMakeFiles/batch_thread_test.dir/batch_thread_test.cc.o"
  "CMakeFiles/batch_thread_test.dir/batch_thread_test.cc.o.d"
  "batch_thread_test"
  "batch_thread_test.pdb"
  "batch_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
