
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/batch_thread_test.cc" "tests/CMakeFiles/batch_thread_test.dir/batch_thread_test.cc.o" "gcc" "tests/CMakeFiles/batch_thread_test.dir/batch_thread_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/ilat_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ilat_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ilat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ilat_input.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ilat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ilat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
