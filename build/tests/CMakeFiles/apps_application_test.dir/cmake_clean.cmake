file(REMOVE_RECURSE
  "CMakeFiles/apps_application_test.dir/apps_application_test.cc.o"
  "CMakeFiles/apps_application_test.dir/apps_application_test.cc.o.d"
  "apps_application_test"
  "apps_application_test.pdb"
  "apps_application_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_application_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
