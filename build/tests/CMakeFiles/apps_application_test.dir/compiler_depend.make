# Empty compiler generated dependencies file for apps_application_test.
# This may be replaced when dependencies are built.
