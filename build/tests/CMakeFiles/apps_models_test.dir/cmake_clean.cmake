file(REMOVE_RECURSE
  "CMakeFiles/apps_models_test.dir/apps_models_test.cc.o"
  "CMakeFiles/apps_models_test.dir/apps_models_test.cc.o.d"
  "apps_models_test"
  "apps_models_test.pdb"
  "apps_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
