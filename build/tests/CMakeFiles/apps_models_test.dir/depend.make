# Empty dependencies file for apps_models_test.
# This may be replaced when dependencies are built.
