# Empty dependencies file for sim_interrupts_test.
# This may be replaced when dependencies are built.
