file(REMOVE_RECURSE
  "CMakeFiles/sim_interrupts_test.dir/sim_interrupts_test.cc.o"
  "CMakeFiles/sim_interrupts_test.dir/sim_interrupts_test.cc.o.d"
  "sim_interrupts_test"
  "sim_interrupts_test.pdb"
  "sim_interrupts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_interrupts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
