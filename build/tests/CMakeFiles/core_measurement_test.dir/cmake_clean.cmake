file(REMOVE_RECURSE
  "CMakeFiles/core_measurement_test.dir/core_measurement_test.cc.o"
  "CMakeFiles/core_measurement_test.dir/core_measurement_test.cc.o.d"
  "core_measurement_test"
  "core_measurement_test.pdb"
  "core_measurement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_measurement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
