# Empty compiler generated dependencies file for core_measurement_test.
# This may be replaced when dependencies are built.
