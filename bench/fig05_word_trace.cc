// Figure 5: raw data representation -- per-event latency profile of a
// Microsoft Word run on Windows NT 3.51 (a), with a two-second
// magnification showing the periodicity of long and short events (b).
//
// Paper: the majority of events fall below the 0.1 s perception threshold
// but a significant number fall well above it.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/sliding_window.h"
#include "src/apps/word.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 5 -- Raw latency profile (Word on NT 3.51)",
         "Each impulse: one event at its start time, height = latency");

  Random rng(1996);
  const SessionResult r = RunWorkload(MakeNt351(), std::make_unique<WordApp>(),
                                      WordWorkload(&rng), DriverKind::kTest);

  std::vector<CurvePoint> all;
  for (const EventRecord& e : r.events) {
    all.push_back(CurvePoint{CyclesToSeconds(e.start), e.latency_ms()});
  }

  ChartOptions a;
  a.title = "Fig 5a: full benchmark run (" + std::to_string(r.events.size()) + " events)";
  a.x_label = "time (s)";
  a.y_label = "latency (ms)";
  a.height = 12;
  std::printf("\n%s", RenderSeries(all, a).c_str());

  // Magnify a 2 s window in the middle of the run.
  const double mid = CyclesToSeconds(r.events[r.events.size() / 2].start);
  std::vector<CurvePoint> zoom;
  for (const CurvePoint& p : all) {
    if (p.x >= mid && p.x < mid + 2.0) {
      zoom.push_back(p);
    }
  }
  ChartOptions b;
  b.title = "Fig 5b: two-second magnification";
  b.x_label = "time (s)";
  b.y_label = "latency (ms)";
  b.height = 12;
  std::printf("\n%s", RenderSeries(zoom, b).c_str());

  int above = 0;
  for (const EventRecord& e : r.events) {
    if (e.latency_ms() > 100.0) {
      ++above;
    }
  }
  std::printf(
      "\n%d of %zu events (%.1f%%) exceed the 0.1 s perception threshold;\n"
      "the paper's trace likewise shows a majority below and a significant\n"
      "number well above the threshold.\n",
      above, r.events.size(), 100.0 * above / static_cast<double>(r.events.size()));

  // Windowed p95: degradation-over-time view of the same trace.
  const auto p95 = WindowedLatencyPercentile(r.events, SecondsToCycles(10.0),
                                             SecondsToCycles(2.0), 95.0);
  ChartOptions w;
  w.title = "p95 latency over a 10 s sliding window";
  w.x_label = "time (s)";
  w.y_label = "p95 latency (ms)";
  w.height = 8;
  std::printf("\n%s", RenderCurve(p95, w).c_str());

  WriteEventsCsv(BenchOutDir() + "/fig05-events.csv", r.events);
  WriteCurveCsv(BenchOutDir() + "/fig05-p95-window.csv", p95);
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
