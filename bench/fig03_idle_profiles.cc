// Figure 3: idle-system profiles for the three operating systems.
//
// Paper: both NT versions show bursts of CPU activity at 10 ms intervals
// (hardware clock interrupts, each burst accompanied by one interrupt in
// the Pentium counters); Windows 95 shows a higher level of background
// activity.  NT 4.0's smallest clock-interrupt overhead was ~400 cycles.

#include <cstdio>

#include "bench/bench_util.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 3 -- Idle-system profiles",
         "2 s of idle tracing per OS; per-sample CPU utilization");

  TextTable summary({"system", "mean util (%)", "busy us/s", "burst period (ms)",
                     "min cycles/burst", "interrupts/s"});

  for (const OsProfile& os : AllPersonalities()) {
    MeasurementSession session(os);
    const SessionResult r = session.RunIdle(SecondsToCycles(2.0));
    const BusyProfile busy = r.MakeBusyProfile();

    // Render the utilization samples (the paper's per-sample view).
    ChartOptions opts;
    opts.title = "Idle profile: " + os.name + " (per-1ms-sample CPU utilization)";
    opts.x_label = "time (cycles)";
    opts.y_label = "utilization";
    opts.height = 8;
    std::vector<CurvePoint> pts;
    for (const auto& p : busy.UtilizationSamples()) {
      pts.push_back(CurvePoint{static_cast<double>(p.t), p.utilization});
    }
    // Show only the first 300 ms so bursts are visible.
    std::vector<CurvePoint> window(pts.begin(),
                                   pts.begin() + std::min<std::size_t>(pts.size(), 300));
    std::printf("\n%s", RenderSeries(window, opts).c_str());

    // Detect the burst period: gaps between elongated samples.
    std::vector<double> burst_times;
    for (const auto& s : busy.samples()) {
      if (s.busy > 0) {
        burst_times.push_back(CyclesToMilliseconds(s.end));
      }
    }
    const SummaryStats burst_gap = DiffStats(burst_times);

    // Clock burst cost: correlate with the interrupt counter like the
    // paper (each burst is accompanied by a hardware interrupt).  The
    // paper quotes the *smallest* clock-interrupt handling overhead, so
    // take the minimum busy burst (larger bursts are housekeeping).
    const double seconds = 2.0;
    const double interrupts_per_s =
        static_cast<double>(r.counters[HwEvent::kInterrupts]) / seconds;
    Cycles min_burst = kNever;
    for (const auto& s2 : busy.samples()) {
      if (s2.busy > 0) {
        min_burst = std::min(min_burst, s2.busy);
      }
    }
    const double cycles_per_burst =
        min_burst == kNever ? 0.0 : static_cast<double>(min_burst);

    summary.AddRow({os.name,
                    TextTable::Num(100.0 * busy.UtilizationIn(0, SecondsToCycles(2.0)), 3),
                    TextTable::Num(CyclesToMicroseconds(busy.TotalBusy()) / seconds, 0),
                    TextTable::Num(burst_gap.mean(), 1), TextTable::Num(cycles_per_burst, 0),
                    TextTable::Num(interrupts_per_s, 0)});

    WriteUtilizationCsv(BenchOutDir() + "/fig03-" + os.name + ".csv",
                        busy.UtilizationSamples());
  }

  std::printf("\n%s", summary.ToString().c_str());
  std::printf(
      "\nPaper reference: NT bursts every 10 ms (clock interrupts); NT 4.0 clock\n"
      "burst ~400 cycles; Windows 95 shows a higher level of idle activity.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
