// Figure 4: CPU usage profile for a window-maximize operation (NT 4.0).
//
// Paper: 80 ms of 100% CPU to process the input event (100-180 ms in the
// trace), a stair pattern of animation bursts aligned on 10 ms clock
// boundaries whose steps grow with the window outline (180-400 ms), then
// ~200 ms of continuous redraw (400-600 ms).  Shown at 1 ms resolution
// (4a) and averaged over 10 ms intervals (4b).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/window_manager.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 4 -- Window maximize CPU profile (NT 4.0)",
         "One maximize gesture; animation paced by 10 ms clock ticks");

  SessionOptions opts;
  opts.merge_timer_cascades = true;
  const SessionResult r =
      RunWorkload(MakeNt40(), std::make_unique<WindowManagerApp>(), MaximizeWorkload(),
                  DriverKind::kTest, opts);
  const BusyProfile busy = r.MakeBusyProfile();

  // Fig. 4a: full 1 ms resolution.
  std::vector<CurvePoint> fine;
  for (const auto& p : busy.UtilizationSamples()) {
    const double t_ms = CyclesToMilliseconds(p.t);
    if (t_ms > 80.0 && t_ms < 460.0) {
      fine.push_back(CurvePoint{t_ms, p.utilization});
    }
  }
  ChartOptions a;
  a.title = "Fig 4a: utilization, 1 ms samples (stair pattern = animation)";
  a.x_label = "time (ms)";
  a.y_label = "CPU utilization";
  a.height = 10;
  std::printf("\n%s", RenderSeries(fine, a).c_str());

  // Fig. 4b: 10 ms buckets.
  std::vector<CurvePoint> coarse;
  for (const auto& p : busy.UtilizationBuckets(MillisecondsToCycles(10))) {
    const double t_ms = CyclesToMilliseconds(p.t);
    if (t_ms < 800.0) {
      coarse.push_back(CurvePoint{t_ms, p.utilization});
    }
  }
  ChartOptions b;
  b.title = "Fig 4b: utilization averaged over 10 ms intervals";
  b.x_label = "time (ms)";
  b.y_label = "CPU utilization";
  b.height = 10;
  std::printf("\n%s", RenderSeries(coarse, b).c_str());

  // Quantify the three phases.
  if (r.events.empty()) {
    std::printf("ERROR: no event extracted\n");
    return;
  }
  const EventRecord& ev = r.events.front();
  const Cycles start = ev.start;

  // Animation bursts: elongated samples between the initial burst and the
  // final redraw, aligned to 10 ms boundaries.
  int bursts = 0;
  int aligned = 0;
  double prev_burst_busy = 0.0;
  int growing = 0;
  const Cycles tick = MillisecondsToCycles(10);
  for (const auto& s : busy.samples()) {
    const double rel_ms = CyclesToMilliseconds(s.end - start);
    if (rel_ms > 95.0 && rel_ms < 320.0 && s.busy > MillisecondsToCycles(0.5)) {
      ++bursts;
      // The burst begins within the instrument's resolution (one period)
      // after a global 10 ms clock boundary.
      const Cycles phase = s.busy_begin % tick;
      if (phase <= MillisecondsToCycles(1.5) || phase >= tick - MillisecondsToCycles(0.2)) {
        ++aligned;
      }
      const double burst_ms = CyclesToMilliseconds(s.busy);
      if (burst_ms > prev_burst_busy) {
        ++growing;
      }
      prev_burst_busy = burst_ms;
    }
  }

  TextTable t({"quantity", "paper", "measured"});
  t.AddRow({"input-processing burst (ms)", "80", TextTable::Num(
      CyclesToMilliseconds(busy.BusyIn(start, start + MillisecondsToCycles(85))), 1)});
  t.AddRow({"animation steps", "~22", TextTable::Num(bursts, 0)});
  t.AddRow({"steps aligned to 10 ms ticks", "all", TextTable::Num(aligned, 0)});
  t.AddRow({"steps longer than predecessor", "most (outline grows)",
            TextTable::Num(growing, 0)});
  t.AddRow({"total busy for the event (ms)", "~380", TextTable::Num(ev.latency_ms(), 1)});
  t.AddRow({"event wall time (ms)", "~500 (100..600)", TextTable::Num(ev.wall_ms(), 1)});
  std::printf("\n%s", t.ToString().c_str());

  WriteUtilizationCsv(BenchOutDir() + "/fig04-samples.csv", busy.UtilizationSamples());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
