// Figure 10: hardware-counter measurements for the PowerPoint OLE-edit
// start-up with a hot buffer cache (disk effects excluded).
//
// Paper: same ordering as the page-down benchmark -- NT 4.0 fastest, then
// Windows 95, then NT 3.51.  Elevated TLB-miss rates account for at least
// 23% of the NT 3.51 / NT 4.0 gap; Windows 95 shows many segment-register
// loads and unaligned accesses (16-bit code).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/commands.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 10 -- Counter measurements: OLE edit start-up (hot cache)",
         "Cache warmed by three prior sessions; 10 reps per counter pair");

  // Warm: run the three OLE sessions so every editor page is resident and
  // the session counter saturates at the "steady" third-session cost.
  const std::vector<int> warm = {kCmdPptStartOleEdit, kCmdPptEndOleEdit, kCmdPptStartOleEdit,
                                 kCmdPptEndOleEdit, kCmdPptStartOleEdit, kCmdPptEndOleEdit};

  TextTable t({"system", "latency (ms)", "instr (k)", "data refs (k)", "TLB miss",
               "seg loads", "unaligned"});
  OpCounterResult by_os[3];
  int i = 0;
  for (const OsProfile& os : AllPersonalities()) {
    const OpCounterResult r = MeasurePowerpointOp(os, kCmdPptStartOleEdit, warm, 10);
    by_os[i++] = r;
    t.AddRow({os.name, TextTable::Num(r.mean_ms, 1), TextTable::Num(r.instructions / 1e3, 0),
              TextTable::Num(r.data_refs / 1e3, 0), TextTable::Num(r.tlb_miss, 0),
              TextTable::Num(r.seg_loads, 0), TextTable::Num(r.unaligned, 0)});
  }
  std::printf("\n%s", t.ToString().c_str());

  const OpCounterResult& nt351 = by_os[0];
  const OpCounterResult& nt40 = by_os[1];
  const OpCounterResult& w95 = by_os[2];

  std::vector<NamedValue> bars{{"nt351", nt351.mean_ms}, {"nt40", nt40.mean_ms},
                               {"win95", w95.mean_ms}};
  ChartOptions c;
  c.title = "OLE edit start-up latency, hot cache (ms)";
  std::printf("\n%s", RenderBars(bars, c).c_str());

  const double extra_tlb = nt351.tlb_miss - nt40.tlb_miss;
  const double latency_diff_cycles = (nt351.mean_ms - nt40.mean_ms) * kCyclesPerMillisecond;
  std::printf(
      "\nNT3.51 extra TLB misses: %.0f; at >=20 cycles/miss: %.0f%% of the\n"
      "NT3.51-NT4.0 latency difference (paper: at least 23%%).\n",
      extra_tlb, 100.0 * extra_tlb * 20.0 / latency_diff_cycles);
  std::printf("W95 segment loads: %.0f, unaligned: %.0f (paper: both large; 16-bit code).\n",
              w95.seg_loads, w95.unaligned);
  std::printf("ordering check (paper: NT4.0 < W95 < NT3.51): %s\n",
              (nt40.mean_ms < w95.mean_ms && w95.mean_ms < nt351.mean_ms)
                  ? "matches"
                  : "DOES NOT MATCH");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
