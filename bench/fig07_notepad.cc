// Figure 7: Notepad event-latency summary on all three systems.
//
// Paper: editing session on a 56 KB file -- 1300 characters at ~100 wpm
// plus cursor and page movement, driven by MS Test; same Notepad binary on
// all systems.  Over 80% of cumulative latency comes from <10 ms events
// (character echo); the remaining ~20% from >=28 ms page-down/newline
// refreshes.  Windows 95 has the *smallest cumulative latency* but the
// *largest elapsed time* -- an artifact of its slow WM_QUEUESYNC
// processing, which the message-API monitor identifies and excludes from
// event latencies.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/notepad.h"
#include "src/viz/explain.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 7 -- Notepad event latency summary",
         "1300-char editing session at ~100 wpm, MS-Test-style driver");

  TextTable t({"system", "events", "cum latency (ms)", "elapsed [s]", "<10ms share (%)",
               "char mean (ms)", "refresh mean (ms)"});

  for (const OsProfile& os : AllPersonalities()) {
    Random rng(42);  // identical script on every system
    SessionOptions sopts;
    sopts.collect_trace = true;  // feeds the explain-latency report below
    const SessionResult r = RunWorkload(os, std::make_unique<NotepadApp>(),
                                        NotepadWorkload(&rng), DriverKind::kTest, sopts);
    PrintLatencySummary("fig07", os.name, r);

    if (os.name == "nt40" && r.trace_data != nullptr) {
      ExplainOptions xopts;
      xopts.threshold_ms = 25.0;  // catch the >=28 ms refresh events
      xopts.top_n = 4;
      xopts.max_events = 3;
      std::printf("\nexplain (slowest nt40 events, from the structured trace):\n%s",
                  ExplainLatencyReport(r.events, *r.trace_data, xopts).c_str());
    }

    const SummaryStats chars = StatsWhere(r, [](const EventRecord& e) {
      return e.type == MessageType::kChar && e.param != '\n';
    });
    const SummaryStats refresh = StatsWhere(r, [](const EventRecord& e) {
      return (e.type == MessageType::kChar && e.param == '\n') ||
             (e.type == MessageType::kKeyDown &&
              (e.param == kVkPageDown || e.param == kVkPageUp));
    });

    t.AddRow({os.name, std::to_string(r.events.size()),
              TextTable::Num(TotalLatencyMs(r.events), 0),
              TextTable::Num(r.elapsed_seconds(), 1),
              TextTable::Num(100.0 * LatencyFractionBelow(r.events, 10.0), 1),
              TextTable::Num(chars.mean(), 2), TextTable::Num(refresh.mean(), 1)});
  }

  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nPaper reference: >80%% of cumulative latency from <10 ms keystrokes;\n"
      "refresh events >=28 ms; Windows 95 smallest cumulative latency but\n"
      "largest elapsed time (WM_QUEUESYNC processing, excluded from event\n"
      "latencies via the message-API log).\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
