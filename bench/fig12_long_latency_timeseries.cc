// Figure 12: time series of long-latency (>50 ms) events for the
// PowerPoint benchmark, NT 3.51 vs NT 4.0.
//
// Paper: both systems show similar periodicity; the better-performing
// NT 4.0 shows slightly shorter interarrival intervals (its events finish
// sooner, so the script reaches the next one earlier).  All events over
// 50 ms are major operations for which user expectation is longer -- none
// are simple keystrokes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/powerpoint.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 12 -- Time series of long-latency PowerPoint events (>50 ms)",
         "Same run as Fig. 8");

  TextTable t({"system", ">50ms events", "mean interarrival (s)", "sd (s)"});

  for (const OsProfile& os : {MakeNt351(), MakeNt40()}) {
    Random rng(7);
    const SessionResult r = RunWorkload(os, std::make_unique<PowerpointApp>(),
                                        PowerpointWorkload(&rng), DriverKind::kTest);
    const auto above = EventsAbove(r.events, 50.0);

    std::vector<CurvePoint> pts;
    for (const EventRecord& e : above) {
      pts.push_back(CurvePoint{CyclesToSeconds(e.start), e.latency_ms()});
    }
    ChartOptions c;
    c.title = "Events >50 ms over time: " + os.name;
    c.x_label = "time (s)";
    c.y_label = "latency (ms)";
    c.height = 10;
    std::printf("\n%s", RenderSeries(pts, c).c_str());

    const InterarrivalSummary s = InterarrivalAbove(r.events, 50.0);
    t.AddRow({os.name, std::to_string(s.events_above),
              TextTable::Num(s.mean_interarrival_s, 2),
              TextTable::Num(s.stddev_interarrival_s, 2)});

    // None of the >50 ms events are simple keystrokes.
    for (const EventRecord& e : above) {
      if (e.type == MessageType::kChar || e.type == MessageType::kKeyDown) {
        std::printf("WARNING: keystroke event above 50 ms: %s\n", e.label.c_str());
      }
    }

    WriteEventsCsv(BenchOutDir() + "/fig12-" + os.name + ".csv", above);
  }

  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nPaper reference: similar distributions on both systems, NT 4.0 with\n"
      "slightly shorter interarrival intervals; the distribution reflects\n"
      "when the script issues major operations, not user behaviour.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
