// Table 2: interarrival distributions of above-threshold events for the
// Word benchmark on Windows NT 3.51.
//
// Paper:
//   threshold   events above   mean interarrival   std dev
//   100 ms            101            3.1 s            3.1 s
//   110 ms             26           12.4 s           10.6 s
//   120 ms              8           41.1 s           48.8 s
//
// Note the paper's observation: a 10% increase of the threshold (100 ->
// 110 ms) cuts the number of above-threshold events by a factor of 4, and
// the standard deviations are the same order as the means (no strong
// periodicity).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/word.h"

namespace ilat {
namespace {

struct PaperRow {
  double threshold;
  int count;
  double mean_s;
  double sd_s;
};

constexpr PaperRow kPaper[] = {
    {100.0, 101, 3.1, 3.1},
    {110.0, 26, 12.4, 10.6},
    {120.0, 8, 41.1, 48.8},
};

void Run() {
  Banner("Table 2 -- Interarrival of long-latency Word events (NT 3.51)",
         "Same run as Figs. 5/11; thresholds around 100 ms");

  Random rng(11);
  const SessionResult r = RunWorkload(MakeNt351(), std::make_unique<WordApp>(),
                                      WordWorkload(&rng), DriverKind::kTest);

  TextTable t({"threshold (ms)", "paper n", "ours n", "paper mean (s)", "ours mean (s)",
               "paper sd (s)", "ours sd (s)"});
  double n100 = 0.0;
  double n110 = 0.0;
  for (const PaperRow& row : kPaper) {
    const InterarrivalSummary s = InterarrivalAbove(r.events, row.threshold);
    if (row.threshold == 100.0) {
      n100 = static_cast<double>(s.events_above);
    }
    if (row.threshold == 110.0) {
      n110 = static_cast<double>(s.events_above);
    }
    t.AddRow({TextTable::Num(row.threshold, 0), std::to_string(row.count),
              std::to_string(s.events_above), TextTable::Num(row.mean_s, 1),
              TextTable::Num(s.mean_interarrival_s, 1), TextTable::Num(row.sd_s, 1),
              TextTable::Num(s.stddev_interarrival_s, 1)});
  }
  std::printf("\n%s", t.ToString().c_str());
  std::printf("elapsed: %.0f s; events: %zu\n", r.elapsed_seconds(), r.events.size());
  std::printf(
      "\nshape: +10%% threshold cuts above-threshold events by %.1fx\n"
      "(paper: a factor of 4); std devs are the same order as the means\n"
      "(no strong periodicity), as in the paper.\n",
      n100 / std::max(1.0, n110));
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
