// Ablation (paper §2.3): the idle-loop sample period N trades measurement
// resolution against trace-buffer size.
//
// "The larger we make N, the coarser the accuracy of our measurements;
// the smaller we make N, the finer the resolution ... but the larger the
// trace buffer required for a given benchmark run."
//
// Demonstration: pairs of keystrokes 25 ms apart.  A trace-only analysis
// (no message-API log -- just busy runs separated by calm records) can
// distinguish the two events of a pair only while the sample period is
// finer than their separation; coarse periods merge them into one blob.
// Trace size falls in proportion.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/commands.h"
#include "src/apps/desktop.h"

namespace ilat {
namespace {

// Count busy episodes: maximal runs of elongated samples bounded by calm
// records (the purist idle-loop-only event detector).
int CountBusyEpisodes(const BusyProfile& busy, Cycles min_busy) {
  int episodes = 0;
  bool in_episode = false;
  for (const auto& s : busy.samples()) {
    if (s.busy > min_busy) {
      if (!in_episode) {
        ++episodes;
        in_episode = true;
      }
    } else {
      in_episode = false;
    }
  }
  return episodes;
}

void Run() {
  Banner("Ablation -- idle-loop sample period (2.3)",
         "20 keystroke pairs 25 ms apart; trace-only event detection");

  // 20 pairs: 25 ms within a pair, 600 ms between pairs.
  Script script;
  for (int i = 0; i < 20; ++i) {
    script.push_back(ScriptItem::Key(kVkDown, 600.0));
    script.push_back(ScriptItem::Key(kVkDown, 25.0));
  }

  TextTable t({"period (ms)", "trace records", "busy episodes found", "expected", "merged?"});

  for (double period_ms : {0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0}) {
    SessionOptions opts;
    opts.idle_period = MillisecondsToCycles(period_ms);
    MeasurementSession session(MakeNt40(), opts);
    session.AttachApp(std::make_unique<DesktopApp>());
    const SessionResult r = session.Run(script);
    const BusyProfile busy = r.MakeBusyProfile();
    const int episodes = CountBusyEpisodes(busy, MicrosecondsToCycles(300));
    t.AddRow({TextTable::Num(period_ms, 2), std::to_string(r.trace.size()),
              std::to_string(episodes), "40",
              episodes < 40 ? "yes -- pairs blur together" : "no"});
  }
  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nFiner periods resolve the 25 ms-separated pairs as distinct events at\n"
      "the cost of a proportionally larger trace; beyond the separation the\n"
      "events merge -- exactly the accuracy/buffer trade-off the paper\n"
      "describes for choosing N.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
