// Extension bench: interactive latency under background batch load.
//
// The methodology's selling point is measuring events *in context*.  Here
// the context is a CPU-bound batch job (50% duty-cycle indexer) sharing
// the machine with Notepad.  At lower priority the job soaks up idle time
// without touching interactive latency; at the GUI thread's priority it
// competes for every quantum and keystroke latency degrades -- a case
// where a throughput benchmark would rate both configurations the same.
//
// The last row shows an honest limitation of the idle-loop methodology:
// a *saturating* batch job leaves no idle time at all, so the instrument
// starves and extracts nothing -- the paper's technique assumes the CPU
// is mostly idle between events (2.3).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/batch_thread.h"
#include "src/apps/notepad.h"

namespace ilat {
namespace {

struct LoadResult {
  SummaryStats latency;
  double batch_done_s = 0.0;
  std::size_t trace_records = 0;
};

LoadResult RunWithBatch(int batch_priority, double duty_cycle, int wake_boost = 2) {
  OsProfile os = MakeNt40();
  os.wake_priority_boost = wake_boost;
  MeasurementSession session(os);
  session.AttachApp(std::make_unique<NotepadApp>());

  std::unique_ptr<BatchThread> batch;
  if (batch_priority >= 0) {
    WorkProfile indexer;
    indexer.ipc = 0.9;
    BatchThread::Options opts;
    opts.duty_cycle = duty_cycle;
    batch = std::make_unique<BatchThread>("indexer", batch_priority, indexer, opts,
                                          &session.system().sim().queue(),
                                          &session.system().sim().scheduler());
    session.system().sim().scheduler().AddThread(batch.get());
  }

  Random rng(5);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 400)));

  LoadResult out;
  for (const EventRecord& e : r.events) {
    out.latency.Add(e.latency_ms());
  }
  out.batch_done_s = batch ? CyclesToSeconds(batch->executed()) : 0.0;
  out.trace_records = r.trace.size();
  return out;
}

void Run() {
  Banner("Extension -- interactive latency under background batch load",
         "Notepad typing beside a 50%-duty CPU-bound indexer");

  const LoadResult none = RunWithBatch(-1, 1.0);
  const LoadResult low = RunWithBatch(1, 0.5);
  const LoadResult equal_no_boost = RunWithBatch(10, 0.5, /*wake_boost=*/0);
  const LoadResult equal_boost = RunWithBatch(10, 0.5, /*wake_boost=*/2);
  const LoadResult saturating = RunWithBatch(1, 1.0);

  TextTable t({"configuration", "mean latency (ms)", "max (ms)", "batch CPU-s",
               "trace records"});
  t.AddRow({"no batch job", TextTable::Num(none.latency.mean(), 2),
            TextTable::Num(none.latency.max(), 2), "-", std::to_string(none.trace_records)});
  t.AddRow({"50% indexer, low priority", TextTable::Num(low.latency.mean(), 2),
            TextTable::Num(low.latency.max(), 2), TextTable::Num(low.batch_done_s, 1),
            std::to_string(low.trace_records)});
  t.AddRow({"50% indexer, GUI prio, no boost", TextTable::Num(equal_no_boost.latency.mean(), 2),
            TextTable::Num(equal_no_boost.latency.max(), 2),
            TextTable::Num(equal_no_boost.batch_done_s, 1),
            std::to_string(equal_no_boost.trace_records)});
  t.AddRow({"50% indexer, GUI prio, NT boost", TextTable::Num(equal_boost.latency.mean(), 2),
            TextTable::Num(equal_boost.latency.max(), 2),
            TextTable::Num(equal_boost.batch_done_s, 1),
            std::to_string(equal_boost.trace_records)});
  t.AddRow({"saturating job (limitation)", TextTable::Num(saturating.latency.mean(), 2),
            TextTable::Num(saturating.latency.max(), 2),
            TextTable::Num(saturating.batch_done_s, 1),
            std::to_string(saturating.trace_records)});
  std::printf("\n%s", t.ToString().c_str());

  std::printf(
      "\nThe low-priority indexer got %.1f CPU-seconds through with keystroke\n"
      "latency unchanged (%.2f vs %.2f ms); at the GUI thread's priority the\n"
      "same job inflates latency %.1fx unless the OS applies NT's wake-time\n"
      "priority boost, which restores %.2f ms.  A throughput benchmark scores\n"
      "all of these configurations identically.  The saturating job leaves no\n"
      "idle time: the instrument starves (trace stops) and per-event\n"
      "extraction collapses -- the idle-loop methodology requires a mostly-\n"
      "idle CPU, as the paper's own model assumes (2.3).\n",
      low.batch_done_s, low.latency.mean(), none.latency.mean(),
      equal_no_boost.latency.mean() / none.latency.mean(), equal_boost.latency.mean());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
