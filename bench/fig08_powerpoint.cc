// Figure 8: PowerPoint event-latency summary (NT 3.51 vs NT 4.0).
//
// Paper: cold start, open a 46-page/530 KB presentation, modify three OLE
// embedded Excel graph objects, save.  Data pre-processed to exclude
// events with latency under 50 ms.  Most events are short (<1 s: page
// downs and Excel operations) but the majority of *time* is spent in the
// six >1 s events of Table 1.  NT 4.0's advantage comes from handling the
// long-latency events more efficiently.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/powerpoint.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 8 -- PowerPoint event latency summary (events >= 50 ms)",
         "Cold start, open 46-page document, edit 3 OLE objects, save");

  TextTable t({"system", "events>=50ms", "cum latency (s)", "elapsed [s]",
               ">1s events", ">1s share of latency (%)"});

  for (const OsProfile& os : {MakeNt351(), MakeNt40()}) {
    Random rng(7);
    const SessionResult r = RunWorkload(os, std::make_unique<PowerpointApp>(),
                                        PowerpointWorkload(&rng), DriverKind::kTest);
    PrintLatencySummary("fig08", os.name, r, /*min_latency_ms=*/50.0);

    const auto above50 = EventsAbove(r.events, 50.0);
    const auto above1s = EventsAbove(r.events, 1'000.0);
    t.AddRow({os.name, std::to_string(above50.size()),
              TextTable::Num(TotalLatencyMs(above50) / 1'000.0, 2),
              TextTable::Num(r.elapsed_seconds(), 1), std::to_string(above1s.size()),
              TextTable::Num(100.0 * TotalLatencyMs(above1s) / TotalLatencyMs(above50), 1)});
  }

  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nPaper reference: six events >1 s on both systems, in nearly the same\n"
      "relative order; most events are short but long events dominate time;\n"
      "NT 4.0 wins mainly on the long-latency events.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
