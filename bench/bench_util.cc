#include "bench/bench_util.h"

#include <sys/stat.h>

#include <cstdio>

#include "src/apps/powerpoint.h"

namespace ilat {

std::string BenchOutDir() {
  static const std::string dir = [] {
    ::mkdir("bench_out", 0755);
    return std::string("bench_out");
  }();
  return dir;
}

void Banner(const std::string& experiment, const std::string& description) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

SessionResult RunWorkload(const OsProfile& os, std::unique_ptr<GuiApplication> app,
                          const Script& script, DriverKind driver, SessionOptions opts) {
  opts.driver = driver;
  MeasurementSession session(os, opts);
  session.AttachApp(std::move(app));
  return session.Run(script);
}

void PrintLatencySummary(const std::string& stem, const std::string& os_name,
                         const SessionResult& result, double min_latency_ms) {
  std::vector<EventRecord> events = result.events;
  if (min_latency_ms > 0.0) {
    events = EventsAbove(events, min_latency_ms);
  }

  std::printf("\n--- %s on %s: %zu events, elapsed [%.1f s] ---\n", stem.c_str(),
              os_name.c_str(), events.size(), result.elapsed_seconds());

  Histogram hist = Histogram::Log2(1.0, 14);
  hist.AddLatencies(events);
  ChartOptions hopts;
  hopts.title = "Event latency histogram (ms bins, log counts)";
  hopts.log_y = true;
  std::printf("%s", RenderHistogram(hist, hopts).c_str());

  const auto by_latency = CumulativeLatencyByLatency(events);
  ChartOptions copts;
  copts.title = "Cumulative latency vs event latency";
  copts.x_label = "latency (ms)";
  copts.y_label = "cumulative latency (ms)";
  copts.height = 10;
  std::printf("%s", RenderCurve(by_latency, copts).c_str());

  const auto by_count = CumulativeLatencyByCount(events);
  ChartOptions kopts;
  kopts.title = "Cumulative latency vs event count (sorted by duration)";
  kopts.x_label = "events";
  kopts.y_label = "cumulative latency (ms)";
  kopts.height = 10;
  std::printf("%s", RenderCurve(by_count, kopts).c_str());

  std::printf("total latency: %.1f ms; fraction from <10 ms events: %.1f%%\n",
              TotalLatencyMs(events), 100.0 * LatencyFractionBelow(events, 10.0));

  const std::string base = BenchOutDir() + "/" + stem + "-" + os_name;
  WriteEventsCsv(base + "-events.csv", events);
  WriteCurveCsv(base + "-cumlat.csv", by_latency);
  WriteCurveCsv(base + "-cumcount.csv", by_count);
  if (!result.metrics_json.empty()) {
    std::FILE* f = std::fopen((base + "-metrics.json").c_str(), "wb");
    if (f != nullptr) {
      std::fputs(result.metrics_json.c_str(), f);
      std::fclose(f);
    }
    std::printf(
        "metrics: ctx-switches %.0f, interrupts %.0f, messages %.0f, idle gaps %.0f "
        "(snapshot -> %s-metrics.json)\n",
        result.metrics.Get("sched.context_switches"), result.metrics.Get("sched.interrupts"),
        result.metrics.Get("app.messages_handled"), result.metrics.Get("idle.gaps"),
        base.c_str());
  }
  WriteGnuplotScript(base + ".gp",
                     {{base + "-events.csv", os_name + " events", "with impulses", 1, 2}},
                     GnuplotOptions{stem + " (" + os_name + ")", "time (s)", "latency (ms)",
                                    false, base + ".png"});
}

SummaryStats StatsForLabel(const SessionResult& r, const std::string& label) {
  SummaryStats s;
  for (const EventRecord& e : r.events) {
    if (e.label == label) {
      s.Add(e.latency_ms());
    }
  }
  return s;
}

SummaryStats StatsWhere(const SessionResult& r,
                        const std::function<bool(const EventRecord&)>& pred) {
  SummaryStats s;
  for (const EventRecord& e : r.events) {
    if (pred(e)) {
      s.Add(e.latency_ms());
    }
  }
  return s;
}

namespace {

// Records the exact handling span of command messages.
class SpanObserver : public MessagePumpObserver {
 public:
  void OnHandleStart(Cycles t, const Message& m) override {
    if (m.type == MessageType::kCommand) {
      begin_ = t;
    }
  }
  void OnHandleEnd(Cycles t, const Message& m) override {
    if (m.type == MessageType::kCommand) {
      last_span = t - begin_;
    }
  }
  Cycles last_span = 0;

 private:
  Cycles begin_ = 0;
};

}  // namespace

OpCounterResult MeasurePowerpointOp(const OsProfile& os, int command,
                                    const std::vector<int>& warm_commands, int repeats) {
  SystemUnderTest sys(os, 1);
  auto app = std::make_unique<PowerpointApp>();
  GuiThread thread(&sys, app.get());
  SpanObserver span;
  thread.AddObserver(&span);
  sys.sim().scheduler().AddThread(&thread);
  sys.Boot();

  // Returns the exact handling span of the command.
  auto run_command = [&](int cmd) {
    const auto handled = thread.handled_count();
    Message m;
    m.type = MessageType::kCommand;
    m.param = cmd;
    thread.PostMessageToQueue(m);
    while (thread.handled_count() == handled) {
      sys.sim().RunFor(MillisecondsToCycles(5));
    }
    // Settle to idle so the next measurement starts clean.
    sys.sim().RunFor(MillisecondsToCycles(5));
    return span.last_span;
  };

  for (int cmd : warm_commands) {
    run_command(cmd);
  }
  // One uncounted execution of the op itself (warm cache, like the paper).
  run_command(command);

  // Three counter pairs cover the six events of interest; the cycle
  // counter is free.  `repeats` runs per pair, exactly like the paper's
  // "repeated the test 10 times for each performance counter".
  struct Pair {
    HwEvent a;
    HwEvent b;
  };
  const Pair pairs[] = {
      {HwEvent::kInstructions, HwEvent::kDataRefs},
      {HwEvent::kItlbMiss, HwEvent::kDtlbMiss},
      {HwEvent::kSegmentLoads, HwEvent::kUnalignedAccess},
  };

  OpCounterResult out;
  SummaryStats cycles;
  for (const Pair& p : pairs) {
    SummaryStats a;
    SummaryStats b;
    for (int i = 0; i < repeats; ++i) {
      CounterSession cs(&sys.sim(), p.a, p.b);
      cs.Begin();
      const Cycles op_span = run_command(command);
      cs.End();
      a.Add(static_cast<double>(cs.CountA()));
      b.Add(static_cast<double>(cs.CountB()));
      cycles.Add(static_cast<double>(op_span));
    }
    auto assign = [&](HwEvent e, double v) {
      switch (e) {
        case HwEvent::kInstructions:
          out.instructions = v;
          break;
        case HwEvent::kDataRefs:
          out.data_refs = v;
          break;
        case HwEvent::kItlbMiss:
          out.itlb_miss = v;
          break;
        case HwEvent::kDtlbMiss:
          out.dtlb_miss = v;
          break;
        case HwEvent::kSegmentLoads:
          out.seg_loads = v;
          break;
        case HwEvent::kUnalignedAccess:
          out.unaligned = v;
          break;
        default:
          break;
      }
    };
    assign(p.a, a.mean());
    assign(p.b, b.mean());
  }
  out.tlb_miss = out.itlb_miss + out.dtlb_miss;
  out.mean_ms = CyclesToMilliseconds(static_cast<Cycles>(cycles.mean()));
  return out;
}

}  // namespace ilat
