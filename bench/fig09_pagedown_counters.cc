// Figure 9: hardware-counter measurements for the PowerPoint page-down
// operation (warm cache, 10 repetitions per counter).
//
// Paper: NT 4.0 handles the request fastest, followed by Windows 95, then
// NT 3.51.  NT 3.51's extra TLB misses (protection-domain crossings into
// the user-level Win32 server; the Pentium flushes the TLB on each
// crossing) account -- at a 20 cycles/miss lower bound -- for at least 25%
// of the NT 3.51 / NT 4.0 latency difference.  Windows 95 shows large
// segment-register-load and unaligned-access counts (16-bit code) and 93%
// more TLB misses than NT 4.0.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/commands.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 9 -- Counter measurements: PowerPoint page down",
         "Warm cache; 10 repetitions per counter pair, Pentium-style");

  // Warm up: start the app and page to the measured slide (uncounted).
  const std::vector<int> warm = {kCmdPptPageDown};

  TextTable t({"system", "latency (ms)", "instr (k)", "data refs (k)", "TLB miss",
               "seg loads", "unaligned"});
  OpCounterResult by_os[3];
  int i = 0;
  for (const OsProfile& os : AllPersonalities()) {
    const OpCounterResult r = MeasurePowerpointOp(os, kCmdPptPageDown, warm, 10);
    by_os[i++] = r;
    t.AddRow({os.name, TextTable::Num(r.mean_ms, 1), TextTable::Num(r.instructions / 1e3, 0),
              TextTable::Num(r.data_refs / 1e3, 0), TextTable::Num(r.tlb_miss, 0),
              TextTable::Num(r.seg_loads, 0), TextTable::Num(r.unaligned, 0)});
  }
  std::printf("\n%s", t.ToString().c_str());

  const OpCounterResult& nt351 = by_os[0];
  const OpCounterResult& nt40 = by_os[1];
  const OpCounterResult& w95 = by_os[2];

  std::vector<NamedValue> bars{{"nt351", nt351.mean_ms}, {"nt40", nt40.mean_ms},
                               {"win95", w95.mean_ms}};
  ChartOptions c;
  c.title = "Page-down latency (ms)";
  std::printf("\n%s", RenderBars(bars, c).c_str());

  // The paper's attribution arithmetic.
  const double extra_tlb = nt351.tlb_miss - nt40.tlb_miss;
  const double latency_diff_cycles = (nt351.mean_ms - nt40.mean_ms) * kCyclesPerMillisecond;
  const double share = 100.0 * extra_tlb * 20.0 / latency_diff_cycles;
  std::printf(
      "\nNT3.51 extra TLB misses: %.0f; at >=20 cycles/miss they account for\n"
      "%.0f%% of the NT3.51-NT4.0 latency difference (paper: at least 25%%).\n",
      extra_tlb, share);
  std::printf("W95 / NT4.0 TLB miss ratio: %.2f (paper: 1.93, i.e. +93%%).\n",
              w95.tlb_miss / nt40.tlb_miss);
  std::printf("W95 segment loads vs NT4.0: %.0fx (paper: 'relatively large number').\n",
              w95.seg_loads / std::max(1.0, nt40.seg_loads));
  std::printf("ordering check (paper: NT4.0 < W95 < NT3.51): %s\n",
              (nt40.mean_ms < w95.mean_ms && w95.mean_ms < nt351.mean_ms)
                  ? "matches"
                  : "DOES NOT MATCH");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
