// Section 5.4: the Test-vs-manual discrepancy for Microsoft Word on
// Windows NT 3.51.
//
// Paper: under MS Test most events had latency between 80 and 100 ms with
// a 140 ms maximum, while hand-generated input showed ~32 ms typical
// latency, carriage returns longer than 200 ms, and a higher level of
// background activity.  The message-API log revealed Test's WM_QUEUESYNC
// after every keystroke; the paper hypothesises those messages change
// Word's behaviour (deferred work completes synchronously).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/word.h"

namespace ilat {
namespace {

struct ModeResult {
  SummaryStats chars;
  SummaryStats crs;
  double background_ms = 0.0;
  double fg_drain_ms = 0.0;
  double max_ms = 0.0;
  double elapsed_s = 0.0;
};

ModeResult RunMode(DriverKind kind) {
  SessionOptions opts;
  opts.driver = kind;
  MeasurementSession session(MakeNt351(), opts);
  auto word = std::make_unique<WordApp>();
  WordApp* word_ptr = word.get();
  session.AttachApp(std::move(word));
  Random rng(11);
  const SessionResult r = session.Run(WordWorkload(&rng));

  ModeResult out;
  for (const EventRecord& e : r.events) {
    out.max_ms = std::max(out.max_ms, e.latency_ms());
    if (e.type == MessageType::kChar && e.param != '\n') {
      out.chars.Add(e.latency_ms());
    } else if (e.type == MessageType::kChar && e.param == '\n') {
      out.crs.Add(e.latency_ms());
    }
  }
  out.background_ms = word_ptr->background_ms_executed();
  out.fg_drain_ms = word_ptr->foreground_drain_ms_executed();
  out.elapsed_s = r.elapsed_seconds();
  return out;
}

void Run() {
  Banner("Section 5.4 -- Word: Microsoft Test vs hand-generated input (NT 3.51)",
         "Identical keystroke sequence; only the driver differs");

  const ModeResult test = RunMode(DriverKind::kTest);
  const ModeResult human = RunMode(DriverKind::kHuman);

  TextTable t({"quantity", "paper Test", "ours Test", "paper manual", "ours manual"});
  t.AddRow({"typical keystroke (ms)", "80-100", TextTable::Num(test.chars.mean(), 1), "32",
            TextTable::Num(human.chars.mean(), 1)});
  t.AddRow({"longest event (ms)", "140", TextTable::Num(test.max_ms, 1), ">200 (CRs)",
            TextTable::Num(human.max_ms, 1)});
  t.AddRow({"carriage return (ms)", "<=140", TextTable::Num(test.crs.mean(), 1), ">200",
            TextTable::Num(human.crs.mean(), 1)});
  t.AddRow({"background activity (ms)", "low", TextTable::Num(test.background_ms, 0),
            "higher", TextTable::Num(human.background_ms, 0)});
  t.AddRow({"work drained in foreground (ms)", "(hypothesised)",
            TextTable::Num(test.fg_drain_ms, 0), "", TextTable::Num(human.fg_drain_ms, 0)});
  std::printf("\n%s", t.ToString().c_str());

  std::printf(
      "\nMechanism (the paper's hypothesis, implemented): when a WM_QUEUESYNC\n"
      "is pending in the queue, Word completes its deferred spell/repagination\n"
      "work synchronously inside the keystroke handler instead of in the\n"
      "background -- so Test inflates foreground latency by %.1fx while manual\n"
      "input runs %.0f ms of spell work in the background (Test: %.0f ms).\n",
      test.chars.mean() / human.chars.mean(), human.background_ms, test.background_ms);
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
