// Table 1: PowerPoint events with latency over one second.
//
// Paper (seconds):
//                                         NT 3.51   NT 4.0
//   Save document                           8.082    9.580
//   Start Powerpoint                        7.166    5.773
//   Start OLE edit session (first time)     7.050    5.844
//   Open document                           5.680    4.151
//   Start OLE edit session (second object)  2.897    2.009
//   Start OLE edit session (third object)   2.697    1.305
//
// All of these require disk accesses; the buffer cache warming across OLE
// edit sessions is clearly visible.  Note save got *slower* from NT 3.51
// to NT 4.0.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/apps/powerpoint.h"

namespace ilat {
namespace {

struct PaperRow {
  const char* label;
  double nt351;
  double nt40;
};

constexpr PaperRow kPaper[] = {
    {"Save document", 8.082, 9.580},
    {"Start Powerpoint", 7.166, 5.773},
    {"Start OLE edit session (first time)", 7.050, 5.844},
    {"Open document", 5.680, 4.151},
    {"Start OLE edit session (second object)", 2.897, 2.009},
    {"Start OLE edit session (third object)", 2.697, 1.305},
};

void Run() {
  Banner("Table 1 -- PowerPoint events with latency over one second",
         "Paper values vs measured (seconds); same run as Fig. 8");

  std::map<std::string, double> measured_351;
  std::map<std::string, double> measured_40;
  for (const OsProfile& os : {MakeNt351(), MakeNt40()}) {
    Random rng(7);
    const SessionResult r = RunWorkload(os, std::make_unique<PowerpointApp>(),
                                        PowerpointWorkload(&rng), DriverKind::kTest);
    auto& dst = (os.name == "nt351") ? measured_351 : measured_40;
    for (const EventRecord& e : r.events) {
      if (!e.label.empty()) {
        dst[e.label] = e.latency_ms() / 1'000.0;
      }
    }
  }

  TextTable t({"event", "NT3.51 paper", "NT3.51 ours", "NT4.0 paper", "NT4.0 ours"});
  for (const PaperRow& row : kPaper) {
    t.AddRow({row.label, TextTable::Num(row.nt351, 3),
              TextTable::Num(measured_351[row.label], 3), TextTable::Num(row.nt40, 3),
              TextTable::Num(measured_40[row.label], 3)});
  }
  std::printf("\n%s", t.ToString().c_str());

  // Shape checks the paper calls out.
  const bool save_slower_on_nt40 =
      measured_40["Save document"] > measured_351["Save document"];
  const bool ole_warms =
      measured_40["Start OLE edit session (first time)"] >
          measured_40["Start OLE edit session (second object)"] &&
      measured_40["Start OLE edit session (second object)"] >
          measured_40["Start OLE edit session (third object)"];
  std::printf("\nshape: save slower on NT 4.0 (NTFS write path): %s\n",
              save_slower_on_nt40 ? "yes (matches paper)" : "NO");
  std::printf("shape: OLE sessions get faster as the cache warms: %s\n",
              ole_warms ? "yes (matches paper)" : "NO");
  std::printf("shape: NT 4.0 faster on all other long events: %s\n",
              (measured_40["Start Powerpoint"] < measured_351["Start Powerpoint"] &&
               measured_40["Open document"] < measured_351["Open document"])
                  ? "yes (matches paper)"
                  : "NO");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
