// Figure 11: Microsoft Word event-latency summary (NT 3.51 vs NT 4.0,
// Test-driven).
//
// Paper: ~1000-character paragraph with arrow-key movement and backspace
// corrections, justification and interactive spell checking enabled.
// Word needs far more processing per keystroke than Notepad.  NT 4.0
// shows uniformly better response time and lower variance; both systems
// keep most latencies below the 0.1 s perception threshold.  Windows 95
// is not reported: the system does not become idle promptly after Word
// events, making every latency appear seconds long (§5.4) -- demonstrated
// at the end of this bench.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/word.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 11 -- Word event latency summary (Test-driven)",
         "~1000-char paragraph, arrows + backspaces, spell checking on");

  TextTable t({"system", "events", "char mean (ms)", "char sd (ms)", "max (ms)",
               "<100ms events (%)", "elapsed [s]"});

  for (const OsProfile& os : {MakeNt351(), MakeNt40()}) {
    Random rng(11);
    const SessionResult r = RunWorkload(os, std::make_unique<WordApp>(), WordWorkload(&rng),
                                        DriverKind::kTest);
    PrintLatencySummary("fig11", os.name, r);

    const SummaryStats chars = StatsWhere(r, [](const EventRecord& e) {
      return e.type == MessageType::kChar && e.param != '\n';
    });
    int below = 0;
    double max_ms = 0.0;
    for (const EventRecord& e : r.events) {
      below += (e.latency_ms() < 100.0) ? 1 : 0;
      max_ms = std::max(max_ms, e.latency_ms());
    }
    t.AddRow({os.name, std::to_string(r.events.size()), TextTable::Num(chars.mean(), 1),
              TextTable::Num(chars.stddev(), 1), TextTable::Num(max_ms, 1),
              TextTable::Num(100.0 * below / static_cast<double>(r.events.size()), 1),
              TextTable::Num(r.elapsed_seconds(), 1)});
  }
  std::printf("\n%s", t.ToString().c_str());

  // The Windows 95 anomaly (why the paper excludes it).
  {
    Random rng(11);
    Script s;
    TypistParams tp;
    Typist typist(tp, &rng);
    SessionOptions so;
    so.drain_after = SecondsToCycles(5.0);
    const SessionResult r = RunWorkload(MakeWin95(), std::make_unique<WordApp>(),
                                        typist.Type("short burst"), DriverKind::kTest, so);
    SummaryStats lat;
    for (const EventRecord& e : r.events) {
      lat.Add(e.latency_ms());
    }
    std::printf(
        "\nWindows 95 (excluded, as in the paper): mean apparent keystroke\n"
        "latency %.0f ms -- the system does not become idle after Word events,\n"
        "so every latency appears to be seconds long (paper 5.4).\n",
        lat.mean());
  }

  std::printf(
      "\nPaper reference: NT 4.0 uniformly better and lower variance; Test-\n"
      "driven latencies mostly 80-100 ms on NT 3.51, max ~140 ms.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
