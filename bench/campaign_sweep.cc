// Campaign sweep: the paper's whole §5 comparison as ONE declarative run.
//
// Endo et al. compare 3 OSes x 3 applications by hand, one benchmark at a
// time.  The campaign runner turns that into a single cross-product sweep
// (3 os x 3 app x 4 seeds = 36 cells here), executed by a worker pool with
// per-cell derived seeds, and aggregated into the comparison matrices the
// paper builds manually.  This bench doubles as the perf harness for the
// runner itself: it times the identical sweep at 1 worker and at 8,
// verifies the aggregates are byte-identical (the determinism contract),
// and snapshots the wall-clock speedup into bench_out/BENCH_campaign.json
// for the perf trajectory.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/campaign/gate.h"
#include "src/campaign/runner.h"

namespace ilat {
namespace {

bool RunOnce(const campaign::CampaignSpec& spec, int jobs, std::string* json,
             campaign::CampaignRunStats* stats) {
  campaign::CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunOptions options;
  options.jobs = jobs;
  std::string error;
  if (!campaign::RunCampaign(spec, options, &aggregate, stats, &error)) {
    std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
    return false;
  }
  *json = aggregate.ToJson();
  if (jobs == 1) {
    std::printf("%s\n", aggregate.RenderTables().c_str());
  }
  return true;
}

void Run() {
  Banner("Campaign sweep -- 3 os x 3 app x 4 seeds (36 cells)",
         "Declarative cross-product; 1-thread vs 8-thread determinism + speedup");

  campaign::CampaignSpec spec;
  spec.name = "paper-matrix";
  spec.oses = {};  // all personalities
  spec.apps = {"notepad", "word", "powerpoint"};
  spec.seeds_per_cell = 4;
  spec.campaign_seed = 1996;  // OSDI '96

  std::string json1;
  std::string json8;
  campaign::CampaignRunStats stats1;
  campaign::CampaignRunStats stats8;
  if (!RunOnce(spec, 1, &json1, &stats1) || !RunOnce(spec, 8, &json8, &stats8)) {
    return;
  }
  const bool identical = json1 == json8;
  const double speedup =
      stats8.wall_seconds > 0.0 ? stats1.wall_seconds / stats8.wall_seconds : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  // On a 1-core host the jobs-8 wall time measures thread-switching
  // overhead, not parallelism; reporting it as a "speedup" is noise.
  const bool parallel_untested = hw <= 1;

  TextTable t({"jobs", "cells", "wall (s)", "speedup", "aggregate"});
  t.AddRow({"1", std::to_string(stats1.cells), TextTable::Num(stats1.wall_seconds, 3), "1.00",
            "baseline"});
  t.AddRow({"8", std::to_string(stats8.cells), TextTable::Num(stats8.wall_seconds, 3),
            parallel_untested ? "n/a (1 core)" : TextTable::Num(speedup, 2),
            identical ? "byte-identical" : "MISMATCH"});
  std::printf("%s", t.ToString().c_str());
  std::printf("host cores: %u (speedup is bounded by physical parallelism)\n", hw);
  if (!identical) {
    std::printf("ERROR: aggregates differ between 1 and 8 jobs -- determinism bug\n");
  }

  // Self-gate: the aggregate must pass a regression gate against itself.
  campaign::CampaignSpec respec = spec;
  campaign::CampaignAggregate again(respec.name, respec.campaign_seed, respec.threshold_ms);
  campaign::CampaignRunOptions options;
  options.jobs = 8;
  campaign::CampaignRunStats restats;
  std::string error;
  if (campaign::RunCampaign(respec, options, &again, &restats, &error)) {
    campaign::GateReport report;
    campaign::GateOptions gate_options;
    if (campaign::RunRegressionGate(json1, again, gate_options, &report, &error)) {
      std::printf("%s", report.Render(gate_options).c_str());
    } else {
      std::printf("gate error: %s\n", error.c_str());
    }
  }

  // Perf-trajectory snapshot.  On a 1-core host the speedup key is
  // replaced by parallel_untested:true, with the note explaining why; the
  // schema stays compatible (the note key is always present).
  const std::string path = BenchOutDir() + "/BENCH_campaign.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"cells\": %zu, \"host_cores\": %u, \"wall_s_jobs1\": %.6f, "
                 "\"wall_s_jobs8\": %.6f, ",
                 stats1.cells, hw, stats1.wall_seconds, stats8.wall_seconds);
    if (parallel_untested) {
      std::fprintf(f,
                   "\"parallel_untested\": true, \"note\": \"host has 1 core; the "
                   "jobs-8 wall time measures thread overhead, not parallelism\", ");
    } else {
      std::fprintf(f, "\"speedup\": %.3f, \"parallel_untested\": false, \"note\": \"\", ",
                   speedup);
    }
    std::fprintf(f, "\"deterministic\": %s}\n", identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
