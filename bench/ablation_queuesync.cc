// Ablation (paper §5.4 / Fig. 7): the WM_QUEUESYNC message the Microsoft
// Test driver injects after every event.
//
// Three configurations of the same Word workload on NT 3.51:
//   1. Test driver with WM_QUEUESYNC (what the paper measured),
//   2. Test driver with the sync suppressed (scripted pacing only),
//   3. Human driver (wall-clock pacing).
// Only (1) shows the inflated 80-100 ms keystrokes: the artifact is the
// sync message itself, not scripted pacing.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/word.h"

namespace ilat {
namespace {

void Run() {
  Banner("Ablation -- WM_QUEUESYNC injection (5.4, Fig. 7)",
         "Word on NT 3.51: Test, Test-without-sync, human");

  TextTable t({"driver", "char mean (ms)", "char sd (ms)", "max (ms)", "elapsed [s]"});

  const struct {
    const char* name;
    DriverKind kind;
  } modes[] = {
      {"Test (WM_QUEUESYNC)", DriverKind::kTest},
      {"Test (sync suppressed)", DriverKind::kTestNoSync},
      {"human", DriverKind::kHuman},
  };

  for (const auto& mode : modes) {
    SessionOptions opts;
    opts.driver = mode.kind;
    MeasurementSession session(MakeNt351(), opts);
    session.AttachApp(std::make_unique<WordApp>());
    Random rng(11);
    const SessionResult r = session.Run(WordWorkload(&rng));
    SummaryStats chars;
    double max_ms = 0.0;
    for (const EventRecord& e : r.events) {
      max_ms = std::max(max_ms, e.latency_ms());
      if (e.type == MessageType::kChar && e.param != '\n') {
        chars.Add(e.latency_ms());
      }
    }
    t.AddRow({mode.name, TextTable::Num(chars.mean(), 1), TextTable::Num(chars.stddev(), 1),
              TextTable::Num(max_ms, 1), TextTable::Num(r.elapsed_seconds(), 1)});
  }

  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nSuppressing only the sync message recovers human-like latencies while\n"
      "keeping scripted pacing: the WM_QUEUESYNC is the behaviour-changing\n"
      "artifact, confirming the paper's hypothesis.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
