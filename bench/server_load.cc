// Server offered-load bench: the multi-user server scenario as a
// throughput lane.
//
// Runs the server app through RunSpecSession at increasing user counts on
// a fixed worker pool, reports the latency-vs-load curve (p50/p95 per
// point) plus the simulator's own cost per point (host wall time,
// simulated requests/sec), and writes bench_out/BENCH_server.json so a
// perf trajectory can gate both the *model* (does p95 still climb with
// load?) and the *simulator* (did serving 32 users get slower to
// simulate?).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/stats.h"
#include "src/core/catalog.h"
#include "src/obs/jsonout.h"
#include "src/obs/profiler.h"

namespace ilat {
namespace {

struct LoadPoint {
  int users = 0;
  std::size_t events = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double simulated_s = 0.0;   // scenario extent in simulated time
  double wall_s = 0.0;        // host time to simulate it
  double requests_per_sec = 0.0;  // simulated requests / host second
};

bool RunPoint(int users, LoadPoint* point) {
  RunSpec spec;
  spec.os = "nt40";
  spec.app = "server";
  spec.seed = 2026;
  spec.params.server.users = users;
  spec.params.server.pool_size = 2;
  spec.params.server.requests_per_user = 30;

  SessionResult r;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  if (!RunSpecSession(spec, &r, &error)) {
    std::fprintf(stderr, "server session failed: %s\n", error.c_str());
    return false;
  }
  point->wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  point->users = users;
  point->events = r.events.size();
  std::vector<double> latencies;
  latencies.reserve(r.events.size());
  for (const EventRecord& e : r.events) {
    latencies.push_back(e.latency_ms());
  }
  point->p50_ms = Percentile(latencies, 50.0);
  point->p95_ms = Percentile(latencies, 95.0);
  point->simulated_s = CyclesToSeconds(r.run_end);
  point->requests_per_sec =
      point->wall_s > 0.0 ? static_cast<double>(point->events) / point->wall_s : 0.0;
  return true;
}

void Run() {
  Banner("Server offered load -- latency vs concurrent users",
         "N users x 30 requests against a 2-worker server (nt40), "
         "under the host-time profiler");

  obs::HostProfiler profiler;
  obs::HostProfiler::Install(&profiler);
  std::vector<LoadPoint> points;
  double total_wall_s = 0.0;
  double total_simulated_ms = 0.0;
  for (int users : {4, 8, 16, 32}) {
    LoadPoint p;
    if (!RunPoint(users, &p)) {
      obs::HostProfiler::Uninstall();
      return;
    }
    total_wall_s += p.wall_s;
    total_simulated_ms += p.simulated_s * 1e3;
    points.push_back(p);
  }
  obs::HostProfiler::Uninstall();

  TextTable t({"users", "events", "p50 (ms)", "p95 (ms)", "sim (s)", "host (s)",
               "req/s (host)"});
  for (const LoadPoint& p : points) {
    t.AddRow({std::to_string(p.users), std::to_string(p.events),
              TextTable::Num(p.p50_ms, 2), TextTable::Num(p.p95_ms, 2),
              TextTable::Num(p.simulated_s, 2), TextTable::Num(p.wall_s, 3),
              TextTable::Num(p.requests_per_sec, 0)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("%s", profiler.RenderTable(total_wall_s, total_simulated_ms).c_str());

  const std::string path = BenchOutDir() + "/BENCH_server.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return;
  }
  std::string json = "{\"pool_size\": 2, \"requests_per_user\": 30";
  json += ", \"wall_s\": " + obs::NumToJson(total_wall_s);
  json += ", \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    if (i > 0) {
      json += ", ";
    }
    json += "{\"users\": " + std::to_string(p.users);
    json += ", \"events\": " + std::to_string(p.events);
    json += ", \"p50_ms\": " + obs::NumToJson(p.p50_ms);
    json += ", \"p95_ms\": " + obs::NumToJson(p.p95_ms);
    json += ", \"simulated_s\": " + obs::NumToJson(p.simulated_s);
    json += ", \"host_wall_s\": " + obs::NumToJson(p.wall_s);
    json += ", \"requests_per_sec\": " + obs::NumToJson(p.requests_per_sec);
    json += "}";
  }
  json += "]}\n";
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
