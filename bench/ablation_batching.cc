// Ablation (paper §1.1): driving the system with an "infinitely fast
// user" -- the throughput-benchmark style -- distorts latency results.
//
// The same Notepad keystroke sequence is delivered (a) at a realistic
// ~100 wpm pace and (b) back-to-back with zero pauses.  Under (b), input
// queues up behind the handler, so measured per-event latency balloons
// with queueing delay: a throughput benchmark would report only elapsed
// time and hide this entirely.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/notepad.h"

namespace ilat {
namespace {

struct ModeResult {
  SummaryStats latency;
  double elapsed_s = 0.0;
  double throughput_eps = 0.0;
};

ModeResult RunPaced(double pause_ms, bool coalesce_paint = false) {
  Random rng(5);
  TypistParams tp;
  Typist typist(tp, &rng);
  Script script = typist.Type(GenerateProse(&rng, 400));
  if (pause_ms >= 0.0) {
    for (ScriptItem& it : script) {
      it.pause_before_ms = pause_ms;
    }
  }
  NotepadParams params;
  params.coalesce_paint = coalesce_paint;
  const SessionResult r = RunWorkload(MakeNt40(), std::make_unique<NotepadApp>(params),
                                      script, DriverKind::kHuman);
  ModeResult out;
  for (const EventRecord& e : r.events) {
    out.latency.Add(e.latency_ms());
  }
  out.elapsed_s = r.elapsed_seconds();
  out.throughput_eps = static_cast<double>(r.events.size()) / std::max(1e-9, out.elapsed_s);
  return out;
}

void Run() {
  Banner("Ablation -- batching / infinitely-fast-user distortion (1.1)",
         "Identical Notepad keystrokes; realistic pacing vs zero pauses");

  const ModeResult realistic = RunPaced(-1.0);
  const ModeResult saturated = RunPaced(0.0);
  const ModeResult batched = RunPaced(0.0, /*coalesce_paint=*/true);

  TextTable t({"metric", "realistic user", "infinitely fast", "inf. fast + batching"});
  t.AddRow({"mean event latency (ms)", TextTable::Num(realistic.latency.mean(), 2),
            TextTable::Num(saturated.latency.mean(), 2),
            TextTable::Num(batched.latency.mean(), 2)});
  t.AddRow({"max event latency (ms)", TextTable::Num(realistic.latency.max(), 1),
            TextTable::Num(saturated.latency.max(), 1),
            TextTable::Num(batched.latency.max(), 1)});
  t.AddRow({"elapsed (s)", TextTable::Num(realistic.elapsed_s, 1),
            TextTable::Num(saturated.elapsed_s, 2), TextTable::Num(batched.elapsed_s, 2)});
  t.AddRow({"throughput (events/s)", TextTable::Num(realistic.throughput_eps, 1),
            TextTable::Num(saturated.throughput_eps, 1),
            TextTable::Num(batched.throughput_eps, 1)});
  std::printf("\n%s", t.ToString().c_str());

  std::printf(
      "\nThe saturated run wins on throughput while its *observed* per-event\n"
      "latency is %.0fx worse (queueing).  With paint coalescing the system\n"
      "batches aggressively under the uninterrupted stream -- throughput rises\n"
      "further while the per-event numbers describe work no user would ever\n"
      "see batched this way: 'measurement results obtained while the system\n"
      "is operating in this mode are meaningless' (paper S1.1).\n",
      saturated.latency.mean() / realistic.latency.mean());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
