// Extension bench: continuous-media playback quality (VuSystem-class
// workload, paper ref [6]).
//
// A 30 fps player decodes and renders 300 frames on each OS, idle and
// beside a heavy batch job.  The deadline metrics (misses, drops, jitter)
// are the continuous-media analogue of per-event latency: a throughput
// number ("frames decoded") cannot distinguish smooth playback from a
// stuttering mess that decodes the same frames late.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/deadlines.h"
#include "src/apps/batch_thread.h"
#include "src/apps/media_player.h"

namespace ilat {
namespace {

DeadlineReport Run(OsProfile os, double batch_duty, int wake_boost = 2) {
  os.wake_priority_boost = wake_boost;
  SessionOptions so;
  so.drain_after = SecondsToCycles(12.0);  // playback outlives the script
  MeasurementSession session(os, so);
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  std::unique_ptr<BatchThread> batch;
  if (batch_duty > 0.0) {
    BatchOptions bo;
    bo.duty_cycle = batch_duty;
    bo.quantum = MillisecondsToCycles(20);  // coarse-grained job
    batch = std::make_unique<BatchThread>("job", 10, WorkProfile{}, bo,
                                          &session.system().sim().queue(),
                                          &session.system().sim().scheduler());
    session.system().sim().scheduler().AddThread(batch.get());
  }
  Script s;
  s.push_back(ScriptItem::Command(kCmdMediaPlay + 300, 100.0, "play"));
  session.Run(s);
  return AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
}

void RunBench() {
  Banner("Extension -- 30 fps media playback (VuSystem-class workload)",
         "300 frames; deadline misses/drops/jitter, idle and under load");

  TextTable t({"configuration", "fps", "missed", "dropped", "max late (ms)", "jitter (ms)"});
  for (const OsProfile& os : AllPersonalities()) {
    const DeadlineReport r = Run(os, 0.0);
    t.AddRow({os.name + " (idle)", TextTable::Num(r.achieved_fps, 1),
              std::to_string(r.missed), std::to_string(r.dropped),
              TextTable::Num(r.max_lateness_ms, 1), TextTable::Num(r.jitter_ms, 2)});
  }
  for (int boost : {0, 2}) {
    const DeadlineReport r = Run(MakeNt40(), 0.9, boost);
    t.AddRow({std::string("nt40 + 90% batch, ") + (boost ? "NT boost" : "no boost"),
              TextTable::Num(r.achieved_fps, 1), std::to_string(r.missed),
              std::to_string(r.dropped), TextTable::Num(r.max_lateness_ms, 1),
              TextTable::Num(r.jitter_ms, 2)});
  }
  std::printf("\n%s", t.ToString().c_str());

  std::printf(
      "\nAll three systems sustain 30 fps when idle.  A coarse-quantum batch\n"
      "hog at the player's priority causes visible stutter unless the OS\n"
      "applies NT's wake boost, letting the woken player preempt it -- the\n"
      "paper's latency-vs-throughput argument extended to continuous media.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::RunBench();
  return 0;
}
