// Extension bench: latency of network-packet events.
//
// The paper's definition of event-handling latency explicitly covers
// events "that result from interactive user input or network packet
// arrival" (1); this bench applies the identical methodology to the
// packet class: a telnet-style terminal renders remote output delivered
// as WM_SOCKET messages.  The rate sweep shows the queueing knee when
// arrivals outpace rendering -- invisible to a throughput metric, which
// only improves as the pipe fills.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/irritation.h"
#include "src/apps/terminal.h"
#include "src/input/network.h"

namespace ilat {
namespace {

struct TrafficResult {
  SummaryStats latency;
  SummaryStats queue_delay;
  SummaryStats wall;
  double throughput_kbps = 0.0;
};

TrafficResult Run(const OsProfile& os, double interarrival_ms) {
  MeasurementSession session(os);
  session.AttachApp(std::make_unique<TerminalApp>());
  NetworkTrafficParams params;
  params.packets = 300;
  params.mean_interarrival_ms = interarrival_ms;
  params.seed = 3;
  NetworkTrafficDriver driver(&session.system(), &session.thread(), params);
  const SessionResult r = session.RunWithDriver(&driver);

  TrafficResult out;
  double bytes = 0.0;
  for (const EventRecord& e : r.events) {
    out.latency.Add(e.latency_ms());
    out.queue_delay.Add(e.queue_delay_ms());
    out.wall.Add(e.wall_ms());
    bytes += static_cast<double>(e.param);
  }
  out.throughput_kbps = bytes / 1024.0 / std::max(1e-9, r.elapsed_seconds());
  return out;
}

void RunBench() {
  Banner("Extension -- network packet events (terminal rendering)",
         "300 Poisson packets; per-packet latency via the same methodology");

  // Cross-OS comparison at an interactive rate.
  TextTable t({"system", "mean latency (ms)", "p-max (ms)", "mean queue delay (ms)"});
  for (const OsProfile& os : AllPersonalities()) {
    const TrafficResult r = Run(os, 40.0);
    t.AddRow({os.name, TextTable::Num(r.latency.mean(), 2),
              TextTable::Num(r.latency.max(), 1), TextTable::Num(r.queue_delay.mean(), 2)});
  }
  std::printf("\n%s", t.ToString().c_str());

  // Rate sweep on NT 4.0: the queueing knee.
  TextTable sweep({"mean interarrival (ms)", "offered (pkt/s)", "idle-loop latency (ms)",
                   "wall latency (ms)", "queue delay (ms)", "throughput (KB/s)"});
  for (double ia : {200.0, 50.0, 20.0, 10.0, 5.0, 2.0, 1.0}) {
    const TrafficResult r = Run(MakeNt40(), ia);
    sweep.AddRow({TextTable::Num(ia, 0), TextTable::Num(1'000.0 / ia, 0),
                  TextTable::Num(r.latency.mean(), 2), TextTable::Num(r.wall.mean(), 1),
                  TextTable::Num(r.queue_delay.mean(), 1),
                  TextTable::Num(r.throughput_kbps, 0)});
  }
  std::printf("\n%s", sweep.ToString().c_str());
  std::printf(
      "\nThroughput keeps rising as the pipe fills while per-packet wall\n"
      "latency explodes past the service rate -- the same throughput-vs-\n"
      "latency divergence the paper demonstrates for user input (1.1).\n"
      "Note the idle-loop column collapsing at saturation: with no idle time\n"
      "left, the instrument starves and sees nothing (its stated assumption,\n"
      "2.3) -- the message-log wall/queue columns remain trustworthy.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::RunBench();
  return 0;
}
