// Session throughput: how fast does the simulator itself run?
//
// Everything else in bench/ measures the *simulated* machine; this lane
// measures the *simulator* -- the baseline every hot-path optimization PR
// will be gated against.  It runs the paper's three applications through
// RunSpecSession under an installed HostProfiler, reports sessions/sec,
// simulated-ms/sec and events/sec, sizes a structured trace, and writes
// bench_out/BENCH_session.json with the top-3 probe costs so a perf
// trajectory can diff where the time went, not just how much there was.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/catalog.h"
#include "src/obs/jsonout.h"
#include "src/obs/profiler.h"
#include "src/obs/trace_export.h"

namespace ilat {
namespace {

struct LaneTotals {
  int sessions = 0;
  double wall_s = 0.0;
  double simulated_ms = 0.0;
  std::size_t events = 0;
};

bool RunMatrix(obs::HostProfiler* profiler, LaneTotals* totals) {
  obs::HostProfiler::Install(profiler);
  const auto start = std::chrono::steady_clock::now();
  for (const char* app : {"notepad", "word", "powerpoint"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      RunSpec spec;
      spec.os = "nt40";
      spec.app = app;
      spec.seed = seed;
      SessionResult r;
      std::string error;
      if (!RunSpecSession(spec, &r, &error)) {
        obs::HostProfiler::Uninstall();
        std::fprintf(stderr, "session failed: %s\n", error.c_str());
        return false;
      }
      ++totals->sessions;
      totals->simulated_ms += CyclesToMilliseconds(r.run_end);
      totals->events += r.events.size();
    }
  }
  totals->wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  obs::HostProfiler::Uninstall();
  return true;
}

// One traced session, to size the trace a session generates (Chrome JSON
// bytes) -- the cost the tracer's null-sink fast path avoids.
std::size_t TraceBytesPerSession() {
  RunSpec spec;
  spec.os = "nt40";
  spec.app = "word";
  spec.seed = 1;
  spec.collect_trace = true;
  SessionResult r;
  std::string error;
  if (!RunSpecSession(spec, &r, &error) || r.trace_data == nullptr) {
    return 0;
  }
  return obs::TraceToChromeJson(*r.trace_data).size();
}

void Run() {
  Banner("Session throughput -- the simulator measuring itself",
         "6 sessions (3 apps x 2 seeds) under the host-time profiler");

  obs::HostProfiler profiler;
  LaneTotals totals;
  if (!RunMatrix(&profiler, &totals)) {
    return;
  }
  const std::size_t trace_bytes = TraceBytesPerSession();

  const double sessions_per_sec =
      totals.wall_s > 0.0 ? totals.sessions / totals.wall_s : 0.0;
  const double sim_ms_per_sec =
      totals.wall_s > 0.0 ? totals.simulated_ms / totals.wall_s : 0.0;
  const double events_per_sec =
      totals.wall_s > 0.0 ? static_cast<double>(totals.events) / totals.wall_s : 0.0;

  TextTable t({"metric", "value"});
  t.AddRow({"sessions", std::to_string(totals.sessions)});
  t.AddRow({"wall (s)", TextTable::Num(totals.wall_s, 3)});
  t.AddRow({"sessions/sec", TextTable::Num(sessions_per_sec, 2)});
  t.AddRow({"simulated-ms/sec", TextTable::Num(sim_ms_per_sec, 0)});
  t.AddRow({"events/sec", TextTable::Num(events_per_sec, 1)});
  t.AddRow({"trace bytes/session", std::to_string(trace_bytes)});
  std::printf("%s", t.ToString().c_str());
  std::printf("%s", profiler.RenderTable(totals.wall_s, totals.simulated_ms).c_str());

  // Top-3 probes by total host time, for the trajectory snapshot.
  std::vector<int> order(obs::kHostProbeCount);
  for (int i = 0; i < obs::kHostProbeCount; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return profiler.stats(static_cast<obs::HostProbe>(a)).total_ns >
           profiler.stats(static_cast<obs::HostProbe>(b)).total_ns;
  });

  const std::string path = BenchOutDir() + "/BENCH_session.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return;
  }
  std::string json = "{\"sessions\": " + std::to_string(totals.sessions);
  json += ", \"wall_s\": " + obs::NumToJson(totals.wall_s);
  json += ", \"sessions_per_sec\": " + obs::NumToJson(sessions_per_sec);
  json += ", \"simulated_ms_per_sec\": " + obs::NumToJson(sim_ms_per_sec);
  json += ", \"events_per_sec\": " + obs::NumToJson(events_per_sec);
  json += ", \"events\": " + std::to_string(totals.events);
  json += ", \"trace_bytes_per_session\": " + std::to_string(trace_bytes);
  json += ", \"coverage\": " + obs::NumToJson(profiler.Coverage(totals.wall_s));
  json += ", \"top_probes\": [";
  for (int k = 0; k < 3 && k < obs::kHostProbeCount; ++k) {
    const auto probe = static_cast<obs::HostProbe>(order[static_cast<std::size_t>(k)]);
    const obs::HostProbeStats& s = profiler.stats(probe);
    if (k > 0) {
      json += ", ";
    }
    json += "{\"probe\": \"" + std::string(obs::HostProbeInfoFor(probe).name) + "\"";
    json += ", \"total_ns\": " + std::to_string(s.total_ns);
    json += ", \"count\": " + std::to_string(s.count);
    json += ", \"wall_pct\": " +
            obs::NumToJson(totals.wall_s > 0.0
                               ? 100.0 * static_cast<double>(s.total_ns) /
                                     (totals.wall_s * 1e9)
                               : 0.0);
    json += "}";
  }
  json += "]}\n";
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
