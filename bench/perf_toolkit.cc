// google-benchmark microbenchmarks of the toolkit itself: how fast the
// simulator and the analysis pipeline run on the host.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/apps/notepad.h"
#include "src/core/busy_profile.h"
#include "src/core/measurement.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1'000; ++i) {
      q.ScheduleAt(i * 100, [] {});
    }
    q.RunUntil(1'000 * 100);
    benchmark::DoNotOptimize(q.fired_count());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_IdleSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    MeasurementSession session(MakeNt40());
    const SessionResult r = session.RunIdle(SecondsToCycles(1.0));
    benchmark::DoNotOptimize(r.trace.size());
  }
}
BENCHMARK(BM_IdleSimulatedSecond);

void BM_TraceBufferAppend(benchmark::State& state) {
  TraceBuffer buf(1 << 22);
  Cycles t = 0;
  for (auto _ : state) {
    if (buf.Full()) {
      state.PauseTiming();
      buf.Clear();
      state.ResumeTiming();
    }
    buf.Append(t += 100'000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceBufferAppend);

void BM_BusyProfileConstruct(benchmark::State& state) {
  std::vector<TraceRecord> trace;
  const auto n = static_cast<std::size_t>(state.range(0));
  trace.reserve(n);
  Cycles t = 0;
  Random rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    t += kCyclesPerMillisecond + (rng.Bernoulli(0.05) ? 500'000 : 0);
    trace.push_back(TraceRecord{t});
  }
  for (auto _ : state) {
    BusyProfile p(trace, kCyclesPerMillisecond);
    benchmark::DoNotOptimize(p.TotalBusy());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BusyProfileConstruct)->Arg(10'000)->Arg(100'000);

void BM_NotepadSessionPerSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    MeasurementSession session(MakeNt40());
    session.AttachApp(std::make_unique<NotepadApp>());
    Random rng(3);
    TypistParams tp;
    Typist typist(tp, &rng);
    const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 120)));
    benchmark::DoNotOptimize(r.events.size());
  }
}
BENCHMARK(BM_NotepadSessionPerSimSecond);

void BM_FullNotepadBenchmark(benchmark::State& state) {
  for (auto _ : state) {
    MeasurementSession session(MakeNt40());
    session.AttachApp(std::make_unique<NotepadApp>());
    Random rng(42);
    const SessionResult r = session.Run(NotepadWorkload(&rng));
    benchmark::DoNotOptimize(r.events.size());
  }
}
BENCHMARK(BM_FullNotepadBenchmark)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ilat

BENCHMARK_MAIN();
