// Shared helpers for the reproduction benches.
//
// Every bench regenerates one of the paper's tables or figures: it runs
// the workload through the measurement toolkit, prints the paper's
// reference numbers next to the measured ones, renders the figure in
// ASCII, and drops CSVs (plus gnuplot scripts) into ./bench_out/.

#ifndef ILAT_BENCH_BENCH_UTIL_H_
#define ILAT_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/cumulative.h"
#include "src/analysis/histogram.h"
#include "src/analysis/interarrival.h"
#include "src/analysis/stats.h"
#include "src/core/counter_session.h"
#include "src/core/measurement.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"
#include "src/viz/ascii_chart.h"
#include "src/viz/csv.h"
#include "src/viz/gnuplot.h"
#include "src/viz/table.h"

namespace ilat {

// Directory for CSV/gnuplot artifacts; created on demand.
std::string BenchOutDir();

// Print a standard bench banner.
void Banner(const std::string& experiment, const std::string& description);

// Run `app` under `os` with the given script/driver and return the result.
SessionResult RunWorkload(const OsProfile& os, std::unique_ptr<GuiApplication> app,
                          const Script& script, DriverKind driver = DriverKind::kTest,
                          SessionOptions opts = {});

// Latency summary in the paper's Fig. 7/8/11 format: log-histogram,
// cumulative-latency curve, cumulative-by-count curve, bracketed elapsed
// time.  Optionally filter to events >= min_latency_ms (Fig. 8 drops
// <50 ms events).  Writes CSVs under BenchOutDir()/<stem>-<os>.csv.
void PrintLatencySummary(const std::string& stem, const std::string& os_name,
                         const SessionResult& result, double min_latency_ms = 0.0);

// Per-event mean/stddev for events matching a label.
SummaryStats StatsForLabel(const SessionResult& r, const std::string& label);

// Mean busy-latency (ms) of events matching a predicate.
SummaryStats StatsWhere(const SessionResult& r,
                        const std::function<bool(const EventRecord&)>& pred);

// Counter measurement of one repeated application operation, mimicking the
// paper's procedure (§5.3): configure two counters at a time, repeat the
// operation `repeats` times per pair, report totals per operation.
struct OpCounterResult {
  double mean_ms = 0.0;
  double instructions = 0.0;
  double data_refs = 0.0;
  double itlb_miss = 0.0;
  double dtlb_miss = 0.0;
  double tlb_miss = 0.0;  // i + d
  double seg_loads = 0.0;
  double unaligned = 0.0;
};

// Measure `command` on a PowerPoint-like app.  `warm` commands run first
// (uncounted) to reach the steady state the paper measures.
OpCounterResult MeasurePowerpointOp(const OsProfile& os, int command,
                                    const std::vector<int>& warm_commands, int repeats);

}  // namespace ilat

#endif  // ILAT_BENCH_BENCH_UTIL_H_
