// Staged media pipeline bench: underruns vs disk-stall severity as a
// deadline lane.
//
// Runs the pipeline app through RunSpecSession at increasing stall rates
// on a fixed stream, reports the deadline curve per point (rendered
// frames, underruns, dropped frames, deadline misses) plus the
// simulator's own cost (host wall time, simulated frames/sec), and
// writes bench_out/BENCH_media.json so a perf trajectory can gate both
// the *model* (do stalls still surface as underruns?) and the
// *simulator* (did a faulted stream get slower to simulate?).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/catalog.h"
#include "src/obs/jsonout.h"
#include "src/obs/profiler.h"

namespace ilat {
namespace {

constexpr int kFrames = 300;

struct StallPoint {
  double stall_rate = 0.0;
  std::size_t rendered = 0;   // slots that showed their frame
  std::size_t underruns = 0;  // slots that came up empty
  std::size_t misses = 0;     // rendered, but past the slot deadline
  double simulated_s = 0.0;   // stream extent in simulated time
  double wall_s = 0.0;        // host time to simulate it
  double frames_per_sec = 0.0;  // simulated slots / host second
};

bool RunPoint(double stall_rate, StallPoint* point) {
  RunSpec spec;
  spec.os = "nt40";
  spec.app = "pipeline";
  spec.seed = 2026;
  spec.params.media.frames = kFrames;
  if (stall_rate > 0.0) {
    spec.faults.disk.stall_rate = stall_rate;
    spec.faults.disk.stall_ms = 80.0;
  }

  SessionResult r;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  if (!RunSpecSession(spec, &r, &error)) {
    std::fprintf(stderr, "pipeline session failed: %s\n", error.c_str());
    return false;
  }
  point->wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  point->stall_rate = stall_rate;
  point->rendered = r.events.size();
  point->underruns = r.posted.size() - r.events.size();
  point->misses =
      static_cast<std::size_t>(r.metrics.Get("media.deadline_misses", 0.0));
  point->simulated_s = CyclesToSeconds(r.run_end);
  point->frames_per_sec =
      point->wall_s > 0.0 ? static_cast<double>(r.posted.size()) / point->wall_s : 0.0;
  return true;
}

void Run() {
  Banner("Media pipeline -- underruns vs disk-stall severity",
         "300 frames at 30 fps through decode -> buffer -> phase-adjust -> "
         "render (nt40), under the host-time profiler");

  obs::HostProfiler profiler;
  obs::HostProfiler::Install(&profiler);
  std::vector<StallPoint> points;
  double total_wall_s = 0.0;
  double total_simulated_ms = 0.0;
  for (double rate : {0.0, 0.05, 0.1, 0.15}) {
    StallPoint p;
    if (!RunPoint(rate, &p)) {
      obs::HostProfiler::Uninstall();
      return;
    }
    total_wall_s += p.wall_s;
    total_simulated_ms += p.simulated_s * 1e3;
    points.push_back(p);
  }
  obs::HostProfiler::Uninstall();

  TextTable t({"stall rate", "rendered", "underruns", "misses", "sim (s)",
               "host (s)", "frames/s (host)"});
  for (const StallPoint& p : points) {
    t.AddRow({TextTable::Num(p.stall_rate, 2), std::to_string(p.rendered),
              std::to_string(p.underruns), std::to_string(p.misses),
              TextTable::Num(p.simulated_s, 2), TextTable::Num(p.wall_s, 3),
              TextTable::Num(p.frames_per_sec, 0)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("%s", profiler.RenderTable(total_wall_s, total_simulated_ms).c_str());

  const std::string path = BenchOutDir() + "/BENCH_media.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return;
  }
  std::string json = "{\"frames\": " + std::to_string(kFrames);
  json += ", \"stall_ms\": 80";
  json += ", \"wall_s\": " + obs::NumToJson(total_wall_s);
  json += ", \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const StallPoint& p = points[i];
    if (i > 0) {
      json += ", ";
    }
    json += "{\"stall_rate\": " + obs::NumToJson(p.stall_rate);
    json += ", \"rendered\": " + std::to_string(p.rendered);
    json += ", \"underruns\": " + std::to_string(p.underruns);
    json += ", \"deadline_misses\": " + std::to_string(p.misses);
    json += ", \"simulated_s\": " + obs::NumToJson(p.simulated_s);
    json += ", \"host_wall_s\": " + obs::NumToJson(p.wall_s);
    json += ", \"frames_per_sec\": " + obs::NumToJson(p.frames_per_sec);
    json += "}";
  }
  json += "]}\n";
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
