// Figure 6: latency of simple interactive events -- unbound keystroke and
// mouse click on the screen background -- on the three systems.
//
// Paper: manual input, mean of 30-40 trials, warm cache; standard
// deviations <= 8%.  Windows 95's keystroke is substantially worse than
// NT 4.0 (16-bit code, segment-register loads).  Windows 95's mouse click
// is off the scale: the system busy-waits between mouse-down and
// mouse-up, so the "latency" is however long the user held the button.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/desktop.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 6 -- Simple interactive events",
         "Unbound keystroke & background mouse click; manual input, 36 trials");

  const double kHoldMs = 150.0;  // how long the "user" holds the button

  TextTable t({"system", "keystroke (ms)", "sd%", "mouse click (ms)", "sd%", "note"});
  std::vector<NamedValue> key_bars;
  std::vector<NamedValue> click_bars;

  for (const OsProfile& os : AllPersonalities()) {
    // Keystrokes (manual pacing, no Test driver -- the paper could not use
    // Test for these).
    const SessionResult kr = RunWorkload(os, std::make_unique<DesktopApp>(),
                                         KeystrokeTrials(36, 450.0), DriverKind::kHuman);
    SummaryStats key;
    for (const EventRecord& e : kr.events) {
      if (e.type == MessageType::kKeyDown) {
        key.Add(e.latency_ms());
      }
    }

    const SessionResult cr = RunWorkload(os, std::make_unique<DesktopApp>(),
                                         ClickTrials(36, 700.0, kHoldMs), DriverKind::kHuman);
    SummaryStats click;
    for (const EventRecord& e : cr.events) {
      if (e.type == MessageType::kMouseDown) {
        click.Add(e.latency_ms());
      }
    }

    const bool off_scale = os.mouse_busy_wait;
    t.AddRow({os.name, TextTable::Num(key.mean(), 2),
              TextTable::Num(100.0 * key.stddev() / key.mean(), 1),
              TextTable::Num(click.mean(), 2),
              TextTable::Num(100.0 * click.stddev() / std::max(click.mean(), 1e-9), 1),
              off_scale ? "busy-waits until mouse-up (user hold time)" : ""});
    key_bars.push_back(NamedValue{os.name, key.mean()});
    click_bars.push_back(NamedValue{os.name, click.mean()});
  }

  std::printf("\n%s", t.ToString().c_str());

  ChartOptions kb;
  kb.title = "Keystroke latency (ms)";
  std::printf("\n%s", RenderBars(key_bars, kb).c_str());
  ChartOptions cb;
  cb.title = "Mouse click latency (ms)  [user held the button " +
             TextTable::Num(kHoldMs, 0) + " ms]";
  std::printf("\n%s", RenderBars(click_bars, cb).c_str());

  std::printf(
      "\nPaper reference: W95 keystroke substantially worse than NT 4.0;\n"
      "W95 mouse click ~= user hold time (off the scale), not indicative of\n"
      "actual W95 processing cost.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
