// Figure 1: validation of the idle-loop methodology.
//
// Paper: samples A, B, D, E take ~1 ms; sample C takes 10.76 ms, so the
// event cost 9.76 ms.  Traditional timestamping around getchar()/echo saw
// only 7.42 ms -- a 2.34 ms discrepancy (interrupt handling, KERNEL32
// processing, rescheduling before control returns to the program).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/echo_app.h"

namespace ilat {
namespace {

void Run() {
  Banner("Figure 1 -- Validation of the idle-loop methodology",
         "Keystroke echo microbenchmark: idle-loop vs traditional timestamps");

  OsProfile os = MakeNt40();
  // The keystroke interrupt includes the KERNEL32 processing that happens
  // before the message reaches the application.
  os.keyboard_isr_cycles = MillisecondsToCycles(kEchoPreDeliveryMs);

  MeasurementSession session(os);
  session.AttachApp(std::make_unique<EchoApp>());
  const SessionResult r = session.Run(EchoTrials(30, 400.0));

  SummaryStats idle_loop;
  for (const EventRecord& e : r.events) {
    idle_loop.Add(e.latency_ms());
  }
  SummaryStats traditional;
  for (const auto& h : r.gt_handles) {
    if (h.msg.type == MessageType::kChar) {
      traditional.Add(CyclesToMilliseconds(h.end - h.begin));
    }
  }

  // Show the raw samples around one event, like the paper's Fig. 1.
  const BusyProfile busy = r.MakeBusyProfile();
  std::printf("\nIdle-loop samples around the first event (one per line):\n");
  const Cycles ev_start = r.events.front().start;
  int shown = 0;
  for (const auto& s : busy.samples()) {
    if (s.end >= ev_start - MillisecondsToCycles(2) && shown < 6) {
      std::printf("  sample at %8.3f ms  duration %6.3f ms%s\n",
                  CyclesToMilliseconds(s.end), CyclesToMilliseconds(s.gap),
                  s.busy > 0 ? "   <-- elongated by the event" : "");
      ++shown;
    }
  }

  TextTable t({"measurement", "paper (ms)", "measured (ms)"});
  t.AddRow({"idle-loop event latency", "9.76", TextTable::Num(idle_loop.mean(), 2)});
  t.AddRow({"traditional (getchar..echo)", "7.42", TextTable::Num(traditional.mean(), 2)});
  t.AddRow({"discrepancy (missed by traditional)", "2.34",
            TextTable::Num(idle_loop.mean() - traditional.mean(), 2)});
  std::printf("\n%s", t.ToString().c_str());
  std::printf("(means over %llu keystrokes; idle-loop sd %.2f ms)\n",
              static_cast<unsigned long long>(idle_loop.count()), idle_loop.stddev());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
