// Event-queue micro-lane: raw ops/sec of the simulator's event core.
//
// Unlike session_throughput (which measures whole sessions), this lane
// isolates the EventQueue itself and benchmarks the three hot operations
// -- schedule, fire, cancel -- under workload shapes the simulator
// actually produces, old implementation vs. new:
//
//   * fifo-burst:    N same-cycle events scheduled then fired (message
//                    storms, same-tick wakeups).
//   * steady-state:  a sliding window of pending timers; each fire
//                    schedules a successor (the idle loop + timer mix).
//   * cancel-heavy:  schedule a timeout, cancel 15/16 of them before they
//                    fire (server request timeouts).  Also reports final
//                    heap entries, which is where the old queue's
//                    lazy-deletion leak shows up.
//
// "old" is ReferenceEventQueue (the pre-PR-8 std::priority_queue +
// std::function + side-map queue, kept verbatim as an oracle); "new" is
// the production slot-map EventQueue.  Results go to stdout and
// bench_out/BENCH_queue.json so the perf trajectory can track the ratio.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/jsonout.h"
#include "src/sim/event_queue.h"
#include "src/sim/reference_event_queue.h"

namespace ilat {
namespace {

struct LaneResult {
  double ops_per_sec = 0.0;
  std::uint64_t ops = 0;
  std::size_t final_heap_entries = 0;
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// N same-cycle schedules, then one RunUntil that drains them in FIFO
// order.  Counts one op per schedule and one per fire.
template <typename Q>
LaneResult FifoBurst(int bursts, int burst_size) {
  Q q;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 0; b < bursts; ++b) {
    const Cycles when = q.now() + 10;
    for (int i = 0; i < burst_size; ++i) {
      q.ScheduleAt(when, [&sink] { ++sink; });
    }
    q.RunUntil(when);
  }
  LaneResult r;
  r.ops = static_cast<std::uint64_t>(bursts) * burst_size * 2;
  r.ops_per_sec = static_cast<double>(r.ops) / Seconds(t0);
  r.final_heap_entries = q.heap_size();
  return r;
}

// A self-sustaining window of `width` pending events; every fire
// schedules a successor, like the timer + idle-loop steady state.
template <typename Q>
LaneResult SteadyState(int fires, int width) {
  Q q;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < width; ++i) {
    q.ScheduleAt(q.now() + 1 + i, [&sink] { ++sink; });
  }
  std::uint64_t fired = 0;
  while (fired < static_cast<std::uint64_t>(fires)) {
    q.RunNext();
    ++fired;
    q.ScheduleAt(q.now() + width, [&sink] { ++sink; });
  }
  LaneResult r;
  r.ops = fired * 2;
  r.ops_per_sec = static_cast<double>(r.ops) / Seconds(t0);
  r.final_heap_entries = q.heap_size();
  return r;
}

// Server-timeout shape: schedule a timeout per "request", cancel most of
// them before they fire.  The old queue's heap keeps every cancelled
// entry until its due time reaches the top; the new queue compacts.
template <typename Q>
LaneResult CancelHeavy(int requests) {
  Q q;
  std::uint64_t sink = 0;
  std::vector<typename Q::EventId> window;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t cancelled = 0;
  for (int i = 0; i < requests; ++i) {
    // Long timeout, far in the future relative to the churn.
    window.push_back(q.ScheduleAt(q.now() + 1'000'000, [&sink] { ++sink; }));
    if (window.size() >= 16) {
      // The "response arrived" path: 15 of 16 timeouts are cancelled;
      // the unlucky one is left to fire eventually.
      for (std::size_t k = 1; k < window.size(); ++k) {
        if (q.Cancel(window[k])) {
          ++cancelled;
        }
      }
      window.clear();
    }
    q.RunUntil(q.now() + 10);  // fires the unlucky survivors as they come due
  }
  LaneResult r;
  r.ops = static_cast<std::uint64_t>(requests) + cancelled;
  r.ops_per_sec = static_cast<double>(r.ops) / Seconds(t0);
  r.final_heap_entries = q.heap_size();
  return r;
}

struct Shape {
  const char* name;
  LaneResult old_q;
  LaneResult new_q;
};

void Run() {
  Banner("Event-queue micro-bench -- old vs. new event core",
         "schedule/fire/cancel ops/sec; ReferenceEventQueue vs. EventQueue");

  std::vector<Shape> shapes;
  shapes.push_back({"fifo-burst", FifoBurst<ReferenceEventQueue>(2'000, 64),
                    FifoBurst<EventQueue>(2'000, 64)});
  shapes.push_back({"steady-state", SteadyState<ReferenceEventQueue>(400'000, 32),
                    SteadyState<EventQueue>(400'000, 32)});
  shapes.push_back({"cancel-heavy", CancelHeavy<ReferenceEventQueue>(200'000),
                    CancelHeavy<EventQueue>(200'000)});

  TextTable t({"shape", "old Mops/s", "new Mops/s", "ratio", "old heap", "new heap"});
  for (const Shape& s : shapes) {
    t.AddRow({s.name, TextTable::Num(s.old_q.ops_per_sec / 1e6, 2),
              TextTable::Num(s.new_q.ops_per_sec / 1e6, 2),
              TextTable::Num(s.new_q.ops_per_sec / s.old_q.ops_per_sec, 2),
              std::to_string(s.old_q.final_heap_entries),
              std::to_string(s.new_q.final_heap_entries)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\n'heap' is the implementation's final heap entry count for the lane --\n"
      "the cancel-heavy gap is the lazy-deletion growth the new queue compacts.\n");

  const std::string path = BenchOutDir() + "/BENCH_queue.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return;
  }
  std::string json = "{";
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const Shape& s = shapes[i];
    if (i > 0) {
      json += ", ";
    }
    json += "\"" + std::string(s.name) + "\": {";
    json += "\"old_ops_per_sec\": " + obs::NumToJson(s.old_q.ops_per_sec);
    json += ", \"new_ops_per_sec\": " + obs::NumToJson(s.new_q.ops_per_sec);
    json += ", \"ratio\": " + obs::NumToJson(s.new_q.ops_per_sec / s.old_q.ops_per_sec);
    json += ", \"old_final_heap\": " + std::to_string(s.old_q.final_heap_entries);
    json += ", \"new_final_heap\": " + std::to_string(s.new_q.final_heap_entries);
    json += "}";
  }
  json += "}\n";
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
