// Repeatability (paper §5): "We ran each benchmark five times using
// Microsoft Test and found that the results were consistent across runs.
// The standard deviations for the elapsed times and cumulative CPU busy
// times were 1-2%, and the event latency distributions were virtually
// identical."
//
// We replay the identical PowerPoint script on five machines that differ
// in measurement-irrelevant ways (disk seek jitter varies with the
// simulation seed) and report the same statistics.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/powerpoint.h"

namespace ilat {
namespace {

void Run() {
  Banner("Repeatability -- five runs of the PowerPoint benchmark (5)",
         "Identical script; per-run disk-seek jitter from the session seed");

  // One fixed script for all runs.
  Random script_rng(7);
  const Script script = PowerpointWorkload(&script_rng);

  SummaryStats elapsed;
  SummaryStats cumulative;
  SummaryStats mean_event;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SessionOptions opts;
    opts.seed = seed;
    MeasurementSession session(MakeNt40(), opts);
    session.AttachApp(std::make_unique<PowerpointApp>());
    const SessionResult r = session.Run(script);
    elapsed.Add(r.elapsed_seconds());
    cumulative.Add(TotalLatencyMs(r.events));
    mean_event.Add(TotalLatencyMs(r.events) / static_cast<double>(r.events.size()));
  }

  TextTable t({"statistic", "mean", "stddev", "stddev (%)", "paper"});
  t.AddRow({"elapsed (s)", TextTable::Num(elapsed.mean(), 2),
            TextTable::Num(elapsed.stddev(), 3),
            TextTable::Num(100.0 * elapsed.stddev() / elapsed.mean(), 2), "1-2%"});
  t.AddRow({"cumulative latency (ms)", TextTable::Num(cumulative.mean(), 1),
            TextTable::Num(cumulative.stddev(), 2),
            TextTable::Num(100.0 * cumulative.stddev() / cumulative.mean(), 2), "1-2%"});
  t.AddRow({"mean event latency (ms)", TextTable::Num(mean_event.mean(), 3),
            TextTable::Num(mean_event.stddev(), 4),
            TextTable::Num(100.0 * mean_event.stddev() / mean_event.mean(), 2),
            "virtually identical"});
  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nCPU work is deterministic given the script; run-to-run variation\n"
      "comes from disk-seek jitter on the long-latency events -- comfortably\n"
      "inside the paper's 1-2%% envelope.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
