// Repeatability (paper §5): "We ran each benchmark five times using
// Microsoft Test and found that the results were consistent across runs.
// The standard deviations for the elapsed times and cumulative CPU busy
// times were 1-2%, and the event latency distributions were virtually
// identical."
//
// We replay the identical PowerPoint script on five machines that differ
// in measurement-irrelevant ways (disk seek jitter varies with the
// session seed) and report the same statistics.  The five runs are one
// campaign: a 1-os x 1-app x 5-seed sweep with `workload_seed` pinned so
// every cell replays the same script while the machine seed varies --
// what used to be a hand-rolled loop here.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/campaign/runner.h"

namespace ilat {
namespace {

void Run() {
  Banner("Repeatability -- five runs of the PowerPoint benchmark (5)",
         "One campaign: 5 seed cells, identical script, per-cell disk-seek jitter");

  campaign::CampaignSpec spec;
  spec.name = "repeatability";
  spec.oses = {"nt40"};
  spec.apps = {"powerpoint"};
  spec.seeds_per_cell = 5;
  spec.campaign_seed = 5;
  spec.workload_seed = 7;  // all cells replay one identical script

  campaign::CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunOptions options;
  campaign::CampaignRunStats stats;
  std::string error;
  if (!campaign::RunCampaign(spec, options, &aggregate, &stats, &error)) {
    std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
    return;
  }

  SummaryStats elapsed;
  SummaryStats cumulative;
  SummaryStats mean_event;
  for (const campaign::CellResult& r : aggregate.cells()) {
    elapsed.Add(r.elapsed_s);
    cumulative.Add(r.cumulative_ms);
    mean_event.Add(r.mean_ms);
  }

  TextTable t({"statistic", "mean", "stddev", "stddev (%)", "paper"});
  t.AddRow({"elapsed (s)", TextTable::Num(elapsed.mean(), 2),
            TextTable::Num(elapsed.stddev(), 3),
            TextTable::Num(100.0 * elapsed.stddev() / elapsed.mean(), 2), "1-2%"});
  t.AddRow({"cumulative latency (ms)", TextTable::Num(cumulative.mean(), 1),
            TextTable::Num(cumulative.stddev(), 2),
            TextTable::Num(100.0 * cumulative.stddev() / cumulative.mean(), 2), "1-2%"});
  t.AddRow({"mean event latency (ms)", TextTable::Num(mean_event.mean(), 3),
            TextTable::Num(mean_event.stddev(), 4),
            TextTable::Num(100.0 * mean_event.stddev() / mean_event.mean(), 2),
            "virtually identical"});
  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nCPU work is deterministic given the script; run-to-run variation\n"
      "comes from disk-seek jitter on the long-latency events -- comfortably\n"
      "inside the paper's 1-2%% envelope.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
