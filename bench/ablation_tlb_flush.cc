// Ablation (DESIGN.md / paper §5.3): protection-domain crossings flush the
// Pentium TLB -- how much of the NT 3.51 vs NT 4.0 gap does that one
// mechanism explain?
//
// We sweep the per-crossing TLB refill cost from zero (an imaginary
// Pentium that preserves its TLB across crossings) to 2x the calibrated
// value and measure the PowerPoint page-down gap between the two NT
// personalities.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/commands.h"

namespace ilat {
namespace {

double PagedownMs(OsProfile os, double refill_scale) {
  os.crossing.itlb_refill_misses =
      static_cast<int>(os.crossing.itlb_refill_misses * refill_scale);
  os.crossing.dtlb_refill_misses =
      static_cast<int>(os.crossing.dtlb_refill_misses * refill_scale);
  const OpCounterResult r = MeasurePowerpointOp(os, kCmdPptPageDown, {kCmdPptPageDown}, 5);
  return r.mean_ms;
}

void Run() {
  Banner("Ablation -- TLB flush cost of protection-domain crossings (5.3)",
         "PowerPoint page-down gap NT3.51 vs NT4.0 while scaling TLB refill");

  TextTable t({"refill scale", "NT3.51 (ms)", "NT4.0 (ms)", "gap (ms)",
               "gap vs calibrated (%)"});
  double calibrated_gap = 0.0;
  for (double scale : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    const double nt351 = PagedownMs(MakeNt351(), scale);
    const double nt40 = PagedownMs(MakeNt40(), scale);
    const double gap = nt351 - nt40;
    if (scale == 1.0) {
      calibrated_gap = gap;
    }
    t.AddRow({TextTable::Num(scale, 1), TextTable::Num(nt351, 1), TextTable::Num(nt40, 1),
              TextTable::Num(gap, 1),
              calibrated_gap > 0.0 ? TextTable::Num(100.0 * gap / calibrated_gap, 0) : "-"});
  }
  std::printf("\n%s", t.ToString().c_str());
  std::printf(
      "\nWith TLB flushes removed the NT gap shrinks to the bare path-length\n"
      "difference; scaling refill up widens it: the crossings' TLB cost is\n"
      "the mechanism behind a large share of the gap, consistent with the\n"
      "paper's >=25%% lower-bound attribution.\n");
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
