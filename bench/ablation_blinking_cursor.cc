// Ablation (paper §1.1): "user interfaces tend to use features such as
// blinking cursors and interactive spelling checkers that have negligible
// impact on perceived interactive performance, yet may be responsible for
// a significant amount of the computation...  Throughput measures provide
// no way to distinguish between these features and events that are less
// frequent but have a significant impact on user-perceived performance."
//
// We run the same Notepad session with the blinking cursor on and off.
// Total CPU consumption rises measurably -- a throughput benchmark would
// punish it -- while per-event latency is untouched.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/notepad.h"

namespace ilat {
namespace {

struct ModeResult {
  double busy_ms = 0.0;
  double mean_latency_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t blinks = 0;
};

ModeResult RunMode(bool blink) {
  NotepadParams params;
  params.blink_cursor = blink;
  MeasurementSession session(MakeNt40());
  auto app = std::make_unique<NotepadApp>(params);
  NotepadApp* app_ptr = app.get();
  session.AttachApp(std::move(app));
  Random rng(42);
  const SessionResult r = session.Run(NotepadWorkload(&rng));

  ModeResult out;
  out.busy_ms = CyclesToMilliseconds(r.gt_busy_cycles);
  std::vector<double> ms;
  double total = 0.0;
  for (const EventRecord& e : r.events) {
    ms.push_back(e.latency_ms());
    total += e.latency_ms();
  }
  out.mean_latency_ms = total / static_cast<double>(ms.size());
  out.p99_ms = Percentile(ms, 99.0);
  out.blinks = app_ptr->cursor_blinks();
  return out;
}

void Run() {
  Banner("Ablation -- blinking cursor (1.1)",
         "Same Notepad session with and without a blinking text cursor");

  const ModeResult off = RunMode(false);
  const ModeResult on = RunMode(true);

  TextTable t({"metric", "cursor off", "cursor on", "change"});
  t.AddRow({"total CPU busy (ms)", TextTable::Num(off.busy_ms, 0),
            TextTable::Num(on.busy_ms, 0),
            "+" + TextTable::Num(100.0 * (on.busy_ms - off.busy_ms) / off.busy_ms, 1) + "%"});
  t.AddRow({"mean event latency (ms)", TextTable::Num(off.mean_latency_ms, 3),
            TextTable::Num(on.mean_latency_ms, 3),
            TextTable::Num(on.mean_latency_ms - off.mean_latency_ms, 3) + " ms"});
  t.AddRow({"p99 event latency (ms)", TextTable::Num(off.p99_ms, 2),
            TextTable::Num(on.p99_ms, 2), ""});
  t.AddRow({"cursor blinks", "0", std::to_string(on.blinks), ""});
  std::printf("\n%s", t.ToString().c_str());

  std::printf(
      "\nThe blinking cursor consumed real CPU (%llu blinks) that a throughput\n"
      "benchmark would count as useful work done slower, yet user-perceived\n"
      "latency is unchanged -- the latency metric correctly ignores it.\n",
      static_cast<unsigned long long>(on.blinks));
}

}  // namespace
}  // namespace ilat

int main() {
  ilat::Run();
  return 0;
}
