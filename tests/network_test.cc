// Network-packet event measurement (the paper's second event class).

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/batch_thread.h"
#include "src/apps/terminal.h"
#include "src/core/measurement.h"
#include "src/analysis/stats.h"
#include "src/input/network.h"

namespace ilat {
namespace {

SessionResult RunTraffic(MeasurementSession& session, NetworkTrafficParams params) {
  NetworkTrafficDriver driver(&session.system(), &session.thread(), params);
  return session.RunWithDriver(&driver);
}

TEST(NetworkTrafficTest, EveryPacketBecomesOneEvent) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<TerminalApp>());
  NetworkTrafficParams params;
  params.packets = 50;
  const SessionResult r = RunTraffic(session, params);
  EXPECT_EQ(r.events.size(), 50u);
  for (const EventRecord& e : r.events) {
    EXPECT_EQ(e.type, MessageType::kSocket);
    EXPECT_EQ(e.label, "packet");
    EXPECT_GT(e.latency(), 0);
  }
}

TEST(NetworkTrafficTest, PacketLatencyIsSmallAtModestRates) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<TerminalApp>());
  NetworkTrafficParams params;
  params.packets = 100;
  params.mean_interarrival_ms = 50.0;
  params.min_bytes = 64;
  params.max_bytes = 256;  // interactive output: a few lines per packet
  const SessionResult r = RunTraffic(session, params);
  SummaryStats lat;
  for (const EventRecord& e : r.events) {
    lat.Add(e.latency_ms());
    EXPECT_LT(e.latency_ms(), 40.0);
  }
  EXPECT_LT(lat.mean(), 15.0);
}

TEST(NetworkTrafficTest, HighRateTrafficQueues) {
  auto mean_queue_delay = [](double interarrival_ms) {
    MeasurementSession session(MakeNt40());
    session.AttachApp(std::make_unique<TerminalApp>());
    NetworkTrafficParams params;
    params.packets = 150;
    params.mean_interarrival_ms = interarrival_ms;
    params.min_bytes = 1'000;
    params.max_bytes = 1'460;
    NetworkTrafficDriver driver(&session.system(), &session.thread(), params);
    const SessionResult r = session.RunWithDriver(&driver);
    double total = 0.0;
    for (const EventRecord& e : r.events) {
      total += e.queue_delay_ms();
    }
    return total / static_cast<double>(r.events.size());
  };
  // A flood (packets arriving faster than rendering) queues; a trickle
  // does not.
  EXPECT_GT(mean_queue_delay(0.5), 4.0 * mean_queue_delay(50.0));
}

TEST(NetworkTrafficTest, TerminalRendersAndScrolls) {
  MeasurementSession session(MakeNt40());
  auto app = std::make_unique<TerminalApp>();
  TerminalApp* term = app.get();
  session.AttachApp(std::move(app));
  NetworkTrafficParams params;
  params.packets = 120;
  params.min_bytes = 400;
  params.max_bytes = 1'460;
  RunTraffic(session, params);
  EXPECT_GT(term->lines_rendered(), 400u);
  EXPECT_GT(term->scrolls(), 10u);
}

TEST(NetworkTrafficTest, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    MeasurementSession session(MakeNt40());
    session.AttachApp(std::make_unique<TerminalApp>());
    NetworkTrafficParams params;
    params.packets = 40;
    params.seed = seed;
    NetworkTrafficDriver driver(&session.system(), &session.thread(), params);
    return session.RunWithDriver(&driver);
  };
  const SessionResult a = run(9);
  const SessionResult b = run(9);
  const SessionResult c = run(10);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].busy, b.events[i].busy);
  }
  EXPECT_NE(a.events.front().start, c.events.front().start);
}

TEST(NetworkTrafficTest, BatchLoadInflatesPacketLatencyWithoutBoost) {
  auto mean_latency = [](int wake_boost, bool with_batch) {
    OsProfile os = MakeNt40();
    os.wake_priority_boost = wake_boost;
    MeasurementSession session(os);
    session.AttachApp(std::make_unique<TerminalApp>());
    std::unique_ptr<BatchThread> batch;
    if (with_batch) {
      BatchOptions bo;
      bo.duty_cycle = 0.5;
      batch = std::make_unique<BatchThread>("job", 10, WorkProfile{}, bo,
                                            &session.system().sim().queue(),
                                            &session.system().sim().scheduler());
      session.system().sim().scheduler().AddThread(batch.get());
    }
    NetworkTrafficParams params;
    params.packets = 80;
    NetworkTrafficDriver driver(&session.system(), &session.thread(), params);
    const SessionResult r = session.RunWithDriver(&driver);
    double total = 0.0;
    for (const EventRecord& e : r.events) {
      total += e.latency_ms();
    }
    return total / static_cast<double>(r.events.size());
  };
  const double baseline = mean_latency(0, false);
  const double loaded = mean_latency(0, true);
  const double boosted = mean_latency(2, true);
  EXPECT_GT(loaded, baseline * 1.3);
  EXPECT_LT(boosted, baseline * 1.15);
}

}  // namespace
}  // namespace ilat
