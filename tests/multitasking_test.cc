// Multi-application sessions: measure the focused app while other
// interactive applications share the machine.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/deadlines.h"
#include "src/apps/media_player.h"
#include "src/apps/notepad.h"
#include "src/apps/word.h"
#include "src/core/measurement.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

// Type in Notepad while a media player runs in another window.
struct MultiResult {
  double notepad_mean_ms = 0.0;
  DeadlineReport media;
  std::size_t events = 0;
  std::size_t posted = 0;
};

MultiResult TypeBesideMedia(bool with_media) {
  SessionOptions opts;
  opts.drain_after = SecondsToCycles(3.0);
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<NotepadApp>());

  MediaPlayerApp* player = nullptr;
  if (with_media) {
    auto media = std::make_unique<MediaPlayerApp>();
    player = media.get();
    GuiThread& media_thread = session.AttachBackgroundApp(std::move(media));
    Message play;
    play.type = MessageType::kCommand;
    play.param = kCmdMediaPlay + 400;
    media_thread.PostMessageToQueue(play);
  }

  Random rng(3);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 200)));

  MultiResult out;
  out.events = r.events.size();
  out.posted = r.posted.size();
  double total = 0.0;
  for (const EventRecord& e : r.events) {
    total += e.latency_ms();
  }
  out.notepad_mean_ms = total / static_cast<double>(r.events.size());
  if (player != nullptr) {
    out.media = AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  }
  return out;
}

TEST(MultitaskingTest, ForegroundEventsStillAllExtracted) {
  const MultiResult r = TypeBesideMedia(true);
  EXPECT_EQ(r.events, r.posted);
  EXPECT_GT(r.events, 150u);
}

TEST(MultitaskingTest, MediaKeepsPlayingWhileUserTypes) {
  const MultiResult r = TypeBesideMedia(true);
  EXPECT_GT(r.media.frames_completed, 300);
  // Both stay responsive on NT 4.0 (decode bursts are shorter than key
  // gaps, and the wake boost arbitrates).
  EXPECT_EQ(r.media.dropped, 0);
  EXPECT_LT(r.media.miss_rate, 0.05);
}

TEST(MultitaskingTest, TypingLatencyDegradesOnlyModestly) {
  const double alone = TypeBesideMedia(false).notepad_mean_ms;
  const double beside = TypeBesideMedia(true).notepad_mean_ms;
  EXPECT_GE(beside, alone - 0.01);  // cannot get faster
  EXPECT_LT(beside, alone * 4.0);   // but stays interactive
}

TEST(MultitaskingTest, MediaWorkAppearsAsBackgroundNotWait) {
  // With no input at all, the player's CPU time is background activity in
  // the think/wait classification.
  SessionOptions opts;
  opts.drain_after = SecondsToCycles(1.0);
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<NotepadApp>());
  auto media = std::make_unique<MediaPlayerApp>();
  GuiThread& media_thread = session.AttachBackgroundApp(std::move(media));
  Message play;
  play.type = MessageType::kCommand;
  play.param = kCmdMediaPlay + 60;
  media_thread.PostMessageToQueue(play);
  const SessionResult r = session.RunIdle(SecondsToCycles(3.0));
  EXPECT_GT(r.user_state_totals[static_cast<int>(UserState::kBackground)],
            SecondsToCycles(0.3));
  EXPECT_EQ(r.user_state_totals[static_cast<int>(UserState::kWaitIo)], 0);
}

TEST(MultitaskingTest, TwoInteractiveAppsCoexist) {
  // Word spell-checking in the background while the user types in
  // Notepad: both make progress.
  SessionOptions opts;
  opts.drain_after = SecondsToCycles(3.0);
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<NotepadApp>());
  auto word = std::make_unique<WordApp>();
  WordApp* word_ptr = word.get();
  GuiThread& word_thread = session.AttachBackgroundApp(std::move(word));
  // Seed Word with keystrokes so it builds a spell backlog.
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.type = MessageType::kChar;
    m.param = 'a' + i;
    word_thread.PostMessageToQueue(m);
  }

  Random rng(4);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 120)));
  EXPECT_EQ(r.events.size(), r.posted.size());
  // Word's deferred work drained in its own background time.
  EXPECT_EQ(word_ptr->backlog_ms(), 0.0);
  EXPECT_GT(word_ptr->background_ms_executed(), 0.0);
}

}  // namespace
}  // namespace ilat
