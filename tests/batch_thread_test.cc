#include "src/apps/batch_thread.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

TEST(BatchThreadTest, FiniteJobRunsToCompletion) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  BatchThread::Options opts;
  opts.total_work = MillisecondsToCycles(50);
  BatchThread batch("job", 5, WorkProfile{}, opts);
  s.AddThread(&batch);
  s.RunUntil(SecondsToCycles(1.0));
  EXPECT_TRUE(batch.finished());
  EXPECT_EQ(batch.executed(), MillisecondsToCycles(50));
  EXPECT_EQ(s.busy_thread_cycles(), MillisecondsToCycles(50));
}

TEST(BatchThreadTest, CountsAsBusyEvenAtPriorityZero) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  BatchThread::Options opts;
  opts.total_work = MillisecondsToCycles(10);
  BatchThread batch("job", 0, WorkProfile{}, opts);
  EXPECT_FALSE(batch.IsIdleThread());
  s.AddThread(&batch);
  s.RunUntil(SecondsToCycles(1.0));
  EXPECT_EQ(s.busy_thread_cycles(), MillisecondsToCycles(10));
  EXPECT_EQ(s.idle_thread_cycles(), 0);
}

TEST(BatchThreadTest, LowPriorityBatchDoesNotHurtInteractiveLatency) {
  auto mean_latency = [](bool with_batch, int priority) {
    MeasurementSession session(MakeNt40());
    session.AttachApp(std::make_unique<NotepadApp>());
    std::unique_ptr<BatchThread> batch;
    if (with_batch) {
      BatchThread::Options opts;
      opts.duty_cycle = 0.5;
      batch = std::make_unique<BatchThread>("compile", priority, WorkProfile{}, opts,
                                            &session.system().sim().queue(),
                                            &session.system().sim().scheduler());
      session.system().sim().scheduler().AddThread(batch.get());
    }
    Random rng(3);
    TypistParams tp;
    Typist typist(tp, &rng);
    const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 150)));
    double total = 0.0;
    for (const EventRecord& e : r.events) {
      total += e.latency_ms();
    }
    return total / static_cast<double>(r.events.size());
  };
  const double baseline = mean_latency(false, 0);
  const double with_low = mean_latency(true, 1);
  EXPECT_NEAR(with_low, baseline, baseline * 0.05);
}

// Helper: mean keystroke latency with an equal-priority 50%-duty batch
// job, under a configurable wake boost.
double MeanLatencyWithEqualBatch(int wake_boost) {
  OsProfile os = MakeNt40();
  os.wake_priority_boost = wake_boost;
  MeasurementSession session(os);
  session.AttachApp(std::make_unique<NotepadApp>());
  BatchThread::Options opts;
  opts.duty_cycle = 0.5;
  BatchThread batch("compile", /*priority=*/10, WorkProfile{}, opts,
                    &session.system().sim().queue(), &session.system().sim().scheduler());
  session.system().sim().scheduler().AddThread(&batch);
  Random rng(3);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 150)));
  double total = 0.0;
  for (const EventRecord& e : r.events) {
    total += e.latency_ms();
  }
  return total / static_cast<double>(r.events.size());
}

TEST(BatchThreadTest, EqualPriorityBatchDegradesLatencyWithoutWakeBoost) {
  // Round-robin with an equal-priority CPU hog roughly doubles latency
  // when the OS has no wake boost.
  EXPECT_GT(MeanLatencyWithEqualBatch(/*wake_boost=*/0), 3.2);  // baseline ~2.3 ms
}

TEST(BatchThreadTest, NtWakeBoostProtectsInteractivity) {
  // The NT foreground wake boost lets the GUI thread preempt the
  // equal-priority batch job, restoring near-baseline latency.
  EXPECT_LT(MeanLatencyWithEqualBatch(/*wake_boost=*/2), 2.6);
}

TEST(BatchThreadTest, BatchWorkShowsUpInIdleLoopTrace) {
  // The instrument attributes batch CPU as busy time -- the methodology
  // sees all stolen time, whatever its source.
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<NotepadApp>());
  BatchThread::Options opts;
  opts.total_work = SecondsToCycles(0.5);
  BatchThread batch("compile", 1, WorkProfile{}, opts);
  session.system().sim().scheduler().AddThread(&batch);
  const SessionResult r = session.RunIdle(SecondsToCycles(2.0));
  const BusyProfile busy = r.MakeBusyProfile();
  EXPECT_GT(busy.TotalBusy(), SecondsToCycles(0.45));
}

TEST(BatchThreadTest, SaturatingJobStarvesTheInstrument) {
  // An honest limitation of the idle-loop methodology: with no idle time,
  // the instrument cannot run and the trace stops growing.
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<NotepadApp>());
  BatchThread batch("hog", 1, WorkProfile{});  // infinite, duty 1.0
  session.system().sim().scheduler().AddThread(&batch);
  const SessionResult r = session.RunIdle(SecondsToCycles(2.0));
  EXPECT_LT(r.trace.size(), 10u);
  EXPECT_GT(batch.executed(), SecondsToCycles(1.9));
}

TEST(BatchThreadTest, DutyCycleHoldsItsRatio) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  BatchThread::Options opts;
  opts.duty_cycle = 0.25;
  BatchThread batch("quarter", 5, WorkProfile{}, opts, &q, &s);
  s.AddThread(&batch);
  s.RunUntil(SecondsToCycles(2.0));
  EXPECT_NEAR(CyclesToSeconds(batch.executed()), 0.5, 0.02);
}

}  // namespace
}  // namespace ilat
