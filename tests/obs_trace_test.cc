// Tracer/TraceSink/Span semantics and the Chrome-JSON / CSV exporters.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/workloads.h"
#include "src/obs/trace_export.h"

namespace ilat {
namespace {

// A hand-cranked clock for driving the tracer without a simulator.
class FakeClock : public obs::TraceClock {
 public:
  Cycles TraceNow() const override { return now; }
  Cycles now = 0;
};

TEST(Tracer, NullSinkEmitsNothing) {
  obs::Tracer tracer;
  FakeClock clock;
  tracer.SetClock(&clock);
  EXPECT_FALSE(tracer.enabled());
  // None of these may crash or allocate a sink.
  tracer.CompleteSpan(0, "work", "cat", 0, 100);
  tracer.Instant(0, "tick", "cat", 5);
  tracer.CounterValue(0, "depth", 5, 3.0);
  { obs::Span s(&tracer, 0, "scoped", "cat"); }
  obs::TraceData data = tracer.TakeData();
  EXPECT_TRUE(data.events.empty());
  EXPECT_EQ(data.tracks.size(), 1u);  // track 0 ("sim") always exists
}

TEST(Tracer, RecordsSpansInstantsAndCounters) {
  obs::Tracer tracer;
  FakeClock clock;
  tracer.SetClock(&clock);
  const std::uint32_t track = tracer.RegisterTrack("cpu");
  obs::TraceSink sink;
  tracer.AttachSink(&sink);

  tracer.CompleteSpan(track, "run", "sched", 100, 50, "tid", 7.0);
  tracer.Instant(track, "tick", "device", 160);
  tracer.CounterValue(track, "depth", 170, 2.0);
  ASSERT_EQ(sink.size(), 3u);

  obs::TraceData data = tracer.TakeData();
  ASSERT_EQ(data.events.size(), 3u);
  EXPECT_EQ(data.events[0].phase, obs::Phase::kComplete);
  EXPECT_EQ(data.events[0].name, "run");
  EXPECT_EQ(data.events[0].ts, 100);
  EXPECT_EQ(data.events[0].dur, 50);
  EXPECT_STREQ(data.events[0].arg0_key, "tid");
  EXPECT_EQ(data.events[1].phase, obs::Phase::kInstant);
  EXPECT_EQ(data.events[2].phase, obs::Phase::kCounter);
  EXPECT_EQ(data.TrackName(track), "cpu");
  // TakeData drained the sink but left it attached.
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(tracer.enabled());
}

TEST(Tracer, SpansNestAndStampSimulatedTime) {
  obs::Tracer tracer;
  FakeClock clock;
  tracer.SetClock(&clock);
  obs::TraceSink sink;
  tracer.AttachSink(&sink);

  clock.now = 1000;
  {
    obs::Span outer(&tracer, 0, "outer", "test");
    clock.now = 1200;
    {
      obs::Span inner(&tracer, 0, "inner", "test");
      inner.AddArg("n", 1.0);
      clock.now = 1300;
    }  // inner ends first
    clock.now = 1500;
  }
  obs::TraceData data = tracer.TakeData();
  ASSERT_EQ(data.events.size(), 2u);
  // Destruction order: inner, then outer.
  EXPECT_EQ(data.events[0].name, "inner");
  EXPECT_EQ(data.events[0].ts, 1200);
  EXPECT_EQ(data.events[0].dur, 100);
  EXPECT_EQ(data.events[1].name, "outer");
  EXPECT_EQ(data.events[1].ts, 1000);
  EXPECT_EQ(data.events[1].dur, 500);
  // Nesting: outer's window contains inner's.
  EXPECT_LE(data.events[1].ts, data.events[0].ts);
  EXPECT_GE(data.events[1].ts + data.events[1].dur, data.events[0].ts + data.events[0].dur);
}

TEST(TraceSink, CapacityDropsNotGrows) {
  obs::TraceSink sink(2);
  sink.Append(obs::TraceEvent{});
  sink.Append(obs::TraceEvent{});
  sink.Append(obs::TraceEvent{});
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_TRUE(sink.AtCapacity());
}

TEST(TraceExport, ChromeJsonRoundTrip) {
  obs::Tracer tracer;
  FakeClock clock;
  tracer.SetClock(&clock);
  const std::uint32_t track = tracer.RegisterTrack("disk");
  obs::TraceSink sink;
  tracer.AttachSink(&sink);
  tracer.CompleteSpan(track, "read", "disk", 200, 100, "block", 17.0);
  tracer.Instant(track, "tick \"quoted\"", "device", 400);
  tracer.CounterValue(track, "depth", 500, 1.0);

  const std::string json = obs::TraceToChromeJson(tracer.TakeData());
  // 200 cycles = 2 us at 100 MHz.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.00"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.00"), std::string::npos);
  EXPECT_NE(json.find("\"block\":17"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Track metadata rows.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"disk\""), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(json.find("tick \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("tick \"quoted\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, CsvQuoting) {
  obs::TraceData data;
  data.tracks = {"sim", "mq,comma"};
  obs::TraceEvent e;
  e.phase = obs::Phase::kComplete;
  e.track = 1;
  e.name = "has\"quote";
  e.category = "mq";
  e.ts = 100;
  e.dur = 100;
  data.events.push_back(e);
  const std::string csv = obs::TraceToCsv(data);
  EXPECT_NE(csv.find("\"mq,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 5), "ts_us");
}

// End-to-end: a traced session produces events from every instrumented
// subsystem and the same seed gives a byte-identical export.
TEST(TraceEndToEnd, SessionTraceCoversSubsystemsDeterministically) {
  auto run = [] {
    SessionOptions opts;
    opts.seed = 11;
    opts.collect_trace = true;
    MeasurementSession session(MakeNt40(), opts);
    session.AttachApp(std::make_unique<NotepadApp>());
    return session.Run(KeystrokeTrials(8));
  };
  const SessionResult a = run();
  ASSERT_NE(a.trace_data, nullptr);
  EXPECT_FALSE(a.trace_data->events.empty());

  auto has_category = [&](std::string_view cat) {
    for (const obs::TraceEvent& e : a.trace_data->events) {
      if (e.category != nullptr && cat == e.category) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_category("sched"));    // scheduler run spans
  EXPECT_TRUE(has_category("mq"));       // message queue activity
  EXPECT_TRUE(has_category("device"));   // periodic device ticks
  EXPECT_TRUE(has_category("dispatch")); // app message handling
  EXPECT_TRUE(has_category("state"));    // think/wait FSM bands

  const SessionResult b = run();
  ASSERT_NE(b.trace_data, nullptr);
  EXPECT_EQ(obs::TraceToChromeJson(*a.trace_data), obs::TraceToChromeJson(*b.trace_data));
}

// The no-sink run must not perturb the simulation: identical seeds with
// and without tracing yield identical latency results.
TEST(TraceEndToEnd, TracingDoesNotPerturbSimulation) {
  auto run = [](bool collect) {
    SessionOptions opts;
    opts.seed = 13;
    opts.collect_trace = collect;
    MeasurementSession session(MakeNt40(), opts);
    session.AttachApp(std::make_unique<NotepadApp>());
    return session.Run(KeystrokeTrials(6));
  };
  const SessionResult off = run(false);
  const SessionResult on = run(true);
  EXPECT_EQ(off.trace_data, nullptr);
  ASSERT_EQ(off.events.size(), on.events.size());
  for (std::size_t i = 0; i < off.events.size(); ++i) {
    EXPECT_EQ(off.events[i].latency(), on.events[i].latency());
    EXPECT_EQ(off.events[i].start, on.events[i].start);
    EXPECT_EQ(off.events[i].end, on.events[i].end);
  }
  EXPECT_EQ(off.run_end, on.run_end);
}

}  // namespace
}  // namespace ilat
