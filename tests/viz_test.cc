#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/viz/ascii_chart.h"
#include "src/viz/csv.h"
#include "src/viz/gnuplot.h"
#include "src/viz/table.h"

namespace ilat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// TextTable.

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(TextTableTest, MissingCellsRenderEmpty) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_NE(t.ToString().find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(5.0, 0), "5");
}

// ---------------------------------------------------------------------------
// ASCII charts.

TEST(AsciiChartTest, SeriesRendersBars) {
  std::vector<CurvePoint> pts{{0, 1}, {1, 5}, {2, 2}};
  ChartOptions opts;
  opts.title = "demo";
  opts.width = 30;
  opts.height = 5;
  const std::string out = RenderSeries(pts, opts);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("max 5"), std::string::npos);
}

TEST(AsciiChartTest, EmptySeriesSafe) {
  const std::string out = RenderSeries({}, ChartOptions{});
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChartTest, CurveCarriesAcrossGaps) {
  std::vector<CurvePoint> pts{{0, 6}, {100, 10}};
  ChartOptions opts;
  opts.width = 20;
  opts.height = 4;
  const std::string curve = RenderCurve(pts, opts);
  const std::string series = RenderSeries(pts, opts);
  // The filled curve has strictly more ink than the sparse scatter.
  auto count_hash = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_GT(count_hash(curve), count_hash(series));
}

TEST(AsciiChartTest, HistogramShowsCountsAndSkipsEmpty) {
  Histogram h = Histogram::Linear(10.0, 30.0);
  h.Add(5.0);
  h.Add(5.0);
  h.Add(25.0);
  ChartOptions opts;
  const std::string out = RenderHistogram(h, opts);
  EXPECT_NE(out.find(" 2"), std::string::npos);
  // Empty bin [10,20) not rendered.
  EXPECT_EQ(out.find("10-20"), std::string::npos);
}

TEST(AsciiChartTest, BarsScaleToMax) {
  std::vector<NamedValue> vals{{"nt351", 2.0}, {"nt40", 1.0}, {"win95", 4.0}};
  ChartOptions opts;
  const std::string out = RenderBars(vals, opts);
  EXPECT_NE(out.find("nt351"), std::string::npos);
  EXPECT_NE(out.find("win95"), std::string::npos);
  // The largest bar belongs to win95 (50 hashes).
  const auto pos = out.find("win95");
  const auto line_end = out.find('\n', pos);
  const std::string line = out.substr(pos, line_end - pos);
  EXPECT_GE(std::count(line.begin(), line.end(), '#'), 49);
}

// ---------------------------------------------------------------------------
// CSV.

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = TempPath("t.csv");
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}));
  EXPECT_EQ(Slurp(path), "a,b\n1,2\n3,4\n");
}

TEST(CsvTest, EventsCsvRoundTrip) {
  const std::string path = TempPath("events.csv");
  EventRecord e;
  e.type = MessageType::kChar;
  e.start = SecondsToCycles(1.5);
  e.busy = MillisecondsToCycles(12.5);
  e.wall = e.busy;
  e.label = "echo";
  ASSERT_TRUE(WriteEventsCsv(path, {e}));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("start_s,latency_ms"), std::string::npos);
  EXPECT_NE(content.find("1.5,12.5"), std::string::npos);
  EXPECT_NE(content.find("WM_CHAR,echo"), std::string::npos);
}

TEST(CsvTest, CurveCsv) {
  const std::string path = TempPath("curve.csv");
  ASSERT_TRUE(WriteCurveCsv(path, {{1.0, 2.0}, {3.0, 4.0}}));
  EXPECT_EQ(Slurp(path), "x,y\n1,2\n3,4\n");
}

TEST(CsvTest, FailsOnBadPath) {
  EXPECT_FALSE(WriteCsv("/nonexistent-dir/x.csv", {"a"}, {}));
}

// ---------------------------------------------------------------------------
// gnuplot.

TEST(GnuplotTest, EmitsPlotScript) {
  const std::string path = TempPath("fig.gp");
  GnuplotOptions opts;
  opts.title = "Latency";
  opts.log_y = true;
  opts.output_png = "fig.png";
  ASSERT_TRUE(WriteGnuplotScript(
      path, {{"a.csv", "nt40", "with impulses", 1, 2}, {"b.csv", "w95", "with lines", 1, 2}},
      opts));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("set logscale y"), std::string::npos);
  EXPECT_NE(content.find("'a.csv' using 1:2"), std::string::npos);
  EXPECT_NE(content.find("title 'w95'"), std::string::npos);
  EXPECT_NE(content.find("set output 'fig.png'"), std::string::npos);
}

}  // namespace
}  // namespace ilat
