// Staged media pipeline: jitter-buffer mechanics, clean-run behaviour,
// fault plans surfacing as underruns/drops, and the SessionResult
// adaptation used by campaigns.

#include <gtest/gtest.h>

#include "src/analysis/deadlines.h"
#include "src/core/catalog.h"
#include "src/media/buffer.h"
#include "src/media/pipeline.h"
#include "src/os/personalities.h"

namespace ilat {
namespace {

media::MediaParams ShortStream(int frames) {
  media::MediaParams p;
  p.frames = frames;
  return p;
}

TEST(JitterBufferTest, OverflowDropsAtCapacity) {
  media::JitterBuffer b(3);
  EXPECT_TRUE(b.Push(0));
  EXPECT_TRUE(b.Push(1));
  EXPECT_TRUE(b.Push(2));
  EXPECT_FALSE(b.Push(3));  // full: the frame is dropped, not queued
  EXPECT_EQ(b.size(), 3);
  EXPECT_EQ(b.overflow_drops(), 1u);
  EXPECT_EQ(b.high_water(), 3u);
  EXPECT_TRUE(b.Contains(2));
  EXPECT_FALSE(b.Contains(3));
}

TEST(JitterBufferTest, EraseAndEvict) {
  media::JitterBuffer b(8);
  for (int i = 0; i < 6; ++i) {
    b.Push(i);
  }
  EXPECT_TRUE(b.Erase(3));
  EXPECT_FALSE(b.Erase(3));  // already gone
  // The grid moved to frame 4: everything at or before 4 is stale except
  // the frame about to be shown.
  EXPECT_EQ(b.EvictThrough(4, 4), 3);  // 0, 1, 2 go; 4 is kept
  EXPECT_TRUE(b.Contains(4));
  EXPECT_TRUE(b.Contains(5));
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.high_water(), 6u);
}

TEST(MediaPipelineTest, CleanRunRendersEveryFrameOnTime) {
  media::MediaPipeline pipeline(MakeNt40(), ShortStream(90));
  const media::PipelineResult r = pipeline.Run();
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.counts.decoded, 90u);
  EXPECT_EQ(r.counts.rendered, 90u);
  EXPECT_EQ(r.counts.underruns, 0u);
  EXPECT_EQ(r.counts.deadline_misses, 0u);
  EXPECT_EQ(r.counts.dropped_overflow + r.counts.dropped_late, 0u);
  ASSERT_EQ(r.slots.size(), 90u);
  // Slots land exactly on the grid, in order.
  const Cycles period = media::MediaParams{}.period();
  for (std::size_t i = 0; i < r.slots.size(); ++i) {
    EXPECT_EQ(r.slots[i].frame, static_cast<int>(i));
    EXPECT_EQ(r.slots[i].slot, r.origin + static_cast<Cycles>(i) * period);
  }
  // The rendered stream satisfies the deadline analyser too.
  const DeadlineReport rep = AnalyzeDeadlines(r.RenderedFrames(), period);
  EXPECT_EQ(rep.missed, 0);
  EXPECT_EQ(rep.dropped, 0);
  EXPECT_FALSE(r.fault.enabled);
  EXPECT_FALSE(r.fault.degraded);
}

TEST(MediaPipelineTest, DiskStallsSurfaceAsUnderruns) {
  media::PipelineOptions opts;
  opts.faults.disk.stall_rate = 0.15;
  opts.faults.disk.stall_ms = 80.0;
  media::MediaPipeline pipeline(MakeNt40(), ShortStream(120), opts);
  const media::PipelineResult r = pipeline.Run();
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.counts.underruns, 0u);
  EXPECT_LT(r.counts.rendered, 120u);
  EXPECT_EQ(r.counts.rendered + r.counts.underruns, 120u);  // one outcome per slot
  EXPECT_TRUE(r.fault.enabled);
  EXPECT_TRUE(r.fault.degraded);
}

TEST(MediaPipelineTest, DroppedNotificationsSurfaceAsUnderruns) {
  media::PipelineOptions opts;
  opts.faults.mq.drop_rate = 0.3;
  media::MediaPipeline pipeline(MakeNt40(), ShortStream(120), opts);
  const media::PipelineResult r = pipeline.Run();
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.counts.decoded, 120u);  // decode is unaffected
  EXPECT_GT(r.counts.underruns, 0u);  // delivery is not
}

// With every inter-stage notification lost, render never learns of any
// frame: the buffer overflows behind the stalled consumer, the run still
// terminates (decode-done force-starts the grid), and every slot
// underruns.
TEST(MediaPipelineTest, TotalNotificationLossOverflowsBufferAndTerminates) {
  media::MediaParams p = ShortStream(60);
  p.buffer_frames = 8;
  media::PipelineOptions opts;
  opts.faults.mq.drop_rate = 1.0;
  media::MediaPipeline pipeline(MakeNt40(), p, opts);
  const media::PipelineResult r = pipeline.Run();
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.counts.rendered, 0u);
  EXPECT_EQ(r.counts.underruns, 60u);
  // Decode filled the 8-frame buffer and then had nowhere to put the
  // remaining 52.
  EXPECT_EQ(r.counts.dropped_overflow, 52u);
  EXPECT_EQ(r.counts.buffer_high_water, 8u);
  EXPECT_TRUE(r.fault.degraded);
}

TEST(MediaPipelineTest, RunSpecSessionAdaptsSlotsToEvents) {
  RunSpec spec;
  spec.app = "pipeline";
  spec.params.media.frames = 45;
  SessionResult out;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &out, &error)) << error;
  // One posted event per slot; clean runs complete them all.
  EXPECT_EQ(out.posted.size(), 45u);
  EXPECT_EQ(out.events.size(), 45u);
  EXPECT_GT(out.metrics_json.find("media.underruns"), 0u);
  EXPECT_EQ(out.events.front().label, "f0");
}

TEST(MediaPipelineTest, RejectsForeignWorkload) {
  RunSpec spec;
  spec.app = "pipeline";
  spec.workload = "keys";
  SessionResult out;
  std::string error;
  EXPECT_FALSE(RunSpecSession(spec, &out, &error));
  EXPECT_NE(error.find("pipeline"), std::string::npos);
}

TEST(MediaPipelineTest, SameSeedIsByteIdentical) {
  auto run = [](std::uint64_t seed) {
    RunSpec spec;
    spec.app = "pipeline";
    spec.seed = seed;
    spec.params.media.frames = 60;
    spec.faults.disk.stall_rate = 0.1;
    spec.faults.disk.stall_ms = 50.0;
    SessionResult out;
    std::string error;
    EXPECT_TRUE(RunSpecSession(spec, &out, &error)) << error;
    return out.metrics_json;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // the stall stream actually varies by seed
}

TEST(MediaPipelineTest, MediaParamKeysParseAndValidate) {
  WorkloadParams p;
  std::string error;
  EXPECT_TRUE(SetWorkloadParamKey("media_fps", "24", &p, &error));
  EXPECT_NEAR(p.media.fps, 24.0, 1e-9);
  EXPECT_TRUE(SetWorkloadParamKey("media_buffer_frames", "16", &p, &error));
  EXPECT_EQ(p.media.buffer_frames, 16);
  EXPECT_TRUE(SetWorkloadParamKey("media_frames", "500", &p, &error));
  EXPECT_EQ(p.media.frames, 500);
  // `frames` sizes both media apps.
  EXPECT_TRUE(SetWorkloadParamKey("frames", "77", &p, &error));
  EXPECT_EQ(p.frames, 77);
  EXPECT_EQ(p.media.frames, 77);

  EXPECT_FALSE(SetWorkloadParamKey("media_fps", "0", &p, &error));
  EXPECT_NE(error.find("media_fps"), std::string::npos);
  EXPECT_FALSE(SetWorkloadParamKey("media_buffer_frames", "4097", &p, &error));
  EXPECT_FALSE(SetWorkloadParamKey("media_frames", "abc", &p, &error));
  EXPECT_TRUE(KnownWorkloadParamKey("media_fps"));
  EXPECT_TRUE(KnownWorkloadParamKey("media_buffer_frames"));
  EXPECT_TRUE(KnownWorkloadParamKey("media_frames"));
}

}  // namespace
}  // namespace ilat
