#include "src/tools/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace ilat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Run the CLI with output captured into a string.  The capture file is
// named after the running test so concurrent ctest workers (which run
// different tests of this binary in the same temp dir) never collide.
std::pair<int, std::string> Capture(const CliOptions& options) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string path =
      TempPath(std::string("cli-out-") + info->name() + ".txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  const int rc = RunCli(options, f);
  std::fclose(f);
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return {rc, out.str()};
}

TEST(CliParseTest, DefaultsAreSane) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({}, &o, &error));
  EXPECT_EQ(o.os, "nt40");
  EXPECT_EQ(o.app, "notepad");
  EXPECT_EQ(o.driver, "test");
  EXPECT_EQ(o.seed, 42u);
}

TEST(CliParseTest, ParsesAllFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--os=win95", "--app=word", "--workload=keys", "--driver=human",
                            "--seed=7", "--threshold=50", "--save=a.ilat", "--load=b.ilat",
                            "--csv=pre", "--events", "--help"},
                           &o, &error));
  EXPECT_EQ(o.os, "win95");
  EXPECT_EQ(o.app, "word");
  EXPECT_EQ(o.workload, "keys");
  EXPECT_EQ(o.driver, "human");
  EXPECT_EQ(o.seed, 7u);
  EXPECT_DOUBLE_EQ(o.threshold_ms, 50.0);
  EXPECT_EQ(o.save_path, "a.ilat");
  EXPECT_EQ(o.load_path, "b.ilat");
  EXPECT_EQ(o.csv_prefix, "pre");
  EXPECT_TRUE(o.dump_events);
  EXPECT_TRUE(o.show_help);
}

TEST(CliParseTest, RejectsUnknownFlag) {
  CliOptions o;
  std::string error;
  EXPECT_FALSE(ParseCliArgs({"--bogus"}, &o, &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos);
}

TEST(CliRunTest, HelpPrintsUsage) {
  CliOptions o;
  o.show_help = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("usage: ilat"), std::string::npos);
}

TEST(CliRunTest, RunsDesktopKeys) {
  CliOptions o;
  o.app = "desktop";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("| system"), std::string::npos);
  EXPECT_NE(out.find("nt40"), std::string::npos);
  EXPECT_NE(out.find("| events"), std::string::npos);
}

TEST(CliRunTest, UnknownAppFails) {
  CliOptions o;
  o.app = "emacs";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("unknown app"), std::string::npos);
}

TEST(CliRunTest, UnknownOsFails) {
  CliOptions o;
  o.os = "beos";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
}

TEST(CliRunTest, AllOsRunsThreeSystems) {
  CliOptions o;
  o.os = "all";
  o.app = "desktop";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("===== nt351 ====="), std::string::npos);
  EXPECT_NE(out.find("===== nt40 ====="), std::string::npos);
  EXPECT_NE(out.find("===== win95 ====="), std::string::npos);
}

TEST(CliRunTest, SaveThenLoadRoundTrip) {
  const std::string path = TempPath("cli-session.ilat");
  CliOptions save;
  save.app = "desktop";
  save.save_path = path;
  const auto [rc1, out1] = Capture(save);
  EXPECT_EQ(rc1, 0);
  EXPECT_NE(out1.find("saved session"), std::string::npos);

  CliOptions load;
  load.load_path = path;
  const auto [rc2, out2] = Capture(load);
  EXPECT_EQ(rc2, 0);
  EXPECT_NE(out2.find("saved:"), std::string::npos);
  EXPECT_NE(out2.find("| events"), std::string::npos);
}

TEST(CliRunTest, EventsFlagDumpsLines) {
  CliOptions o;
  o.app = "desktop";
  o.dump_events = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("WM_KEYDOWN"), std::string::npos);
  EXPECT_NE(out.find("queue_ms"), std::string::npos);
}

TEST(CliRunTest, CsvExportWritesFiles) {
  CliOptions o;
  o.app = "desktop";
  o.csv_prefix = TempPath("cli-csv");
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  std::ifstream events(o.csv_prefix + "-nt40-events.csv");
  EXPECT_TRUE(events.good());
}

TEST(CliParseTest, ParsesObservabilityFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--trace-out=t.json", "--metrics-out=m.json", "--explain",
                            "--list", "--version"},
                           &o, &error));
  EXPECT_EQ(o.trace_out, "t.json");
  EXPECT_EQ(o.metrics_out, "m.json");
  EXPECT_TRUE(o.explain);
  EXPECT_TRUE(o.list_catalog);
  EXPECT_TRUE(o.show_version);
}

TEST(CliRunTest, VersionPrintsVersion) {
  CliOptions o;
  o.show_version = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find(std::string("ilat ") + kIlatVersion), std::string::npos);
}

TEST(CliRunTest, ListPrintsCatalog) {
  CliOptions o;
  o.list_catalog = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("nt351"), std::string::npos);
  EXPECT_NE(out.find("nt40"), std::string::npos);
  EXPECT_NE(out.find("win95"), std::string::npos);
  EXPECT_NE(out.find("notepad"), std::string::npos);
  EXPECT_NE(out.find("test-nosync"), std::string::npos);
  // The server scenario is a first-class app and workload.
  EXPECT_NE(out.find("server"), std::string::npos);
  EXPECT_NE(out.find("sweep.params"), std::string::npos);
}

TEST(CliParseTest, ParsesServerFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--users=16", "--pool=2", "--queue-depth=8",
                            "--cache-hit=0.25", "--requests=10"},
                           &o, &error));
  EXPECT_EQ(o.users, 16);
  EXPECT_EQ(o.pool, 2);
  EXPECT_EQ(o.queue_depth, 8);
  EXPECT_DOUBLE_EQ(o.cache_hit, 0.25);
  EXPECT_EQ(o.requests, 10);
}

TEST(CliRunTest, RunsServerScenario) {
  CliOptions o;
  o.app = "server";
  o.users = 4;
  o.requests = 5;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  // 4 users x 5 requests, all completed.
  EXPECT_NE(out.find("| events                        | 20"), std::string::npos) << out;
}

TEST(CliRunTest, ServerRejectsForeignWorkload) {
  CliOptions o;
  o.app = "server";
  o.workload = "keys";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("workload"), std::string::npos);
}

TEST(CliRunTest, TraceAndMetricsOutWriteFiles) {
  CliOptions o;
  o.app = "desktop";
  o.trace_out = TempPath("cli-trace.json");
  o.metrics_out = TempPath("cli-metrics.json");
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("wrote trace"), std::string::npos);

  std::ifstream trace(o.trace_out);
  ASSERT_TRUE(trace.good());
  std::ostringstream tbuf;
  tbuf << trace.rdbuf();
  EXPECT_NE(tbuf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"ph\":\"X\""), std::string::npos);

  std::ifstream metrics(o.metrics_out);
  ASSERT_TRUE(metrics.good());
  std::ostringstream mbuf;
  mbuf << metrics.rdbuf();
  EXPECT_NE(mbuf.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(mbuf.str().find("sched.context_switches"), std::string::npos);
}

TEST(CliParseTest, ParsesCampaignFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--campaign=sweep.txt", "--jobs=8", "--campaign-out=outdir",
                            "--campaign-baseline=base.json", "--gate-tolerance=5",
                            "--gate-percentiles=p95,p99"},
                           &o, &error));
  EXPECT_EQ(o.campaign_path, "sweep.txt");
  EXPECT_EQ(o.jobs, 8);
  EXPECT_EQ(o.campaign_out, "outdir");
  EXPECT_EQ(o.campaign_baseline, "base.json");
  EXPECT_DOUBLE_EQ(o.gate_tolerance_pct, 5.0);
  EXPECT_EQ(o.gate_percentiles, "p95,p99");
}

TEST(CliParseTest, RejectsBadJobs) {
  for (const char* bad : {"--jobs=0", "--jobs=-2", "--jobs=banana", "--jobs=", "--jobs=1.5",
                          "--jobs=9999"}) {
    CliOptions o;
    std::string error;
    EXPECT_FALSE(ParseCliArgs({bad}, &o, &error)) << bad;
    EXPECT_NE(error.find("--jobs"), std::string::npos) << bad;
  }
}

TEST(CliParseTest, RejectsBadGateTolerance) {
  CliOptions o;
  std::string error;
  EXPECT_FALSE(ParseCliArgs({"--gate-tolerance=lots"}, &o, &error));
  EXPECT_FALSE(ParseCliArgs({"--gate-tolerance=-1"}, &o, &error));
}

TEST(CliParseTest, ParsesProfileFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--profile"}, &o, &error));
  EXPECT_TRUE(o.profile);
  EXPECT_TRUE(o.profile_out.empty());

  CliOptions with_file;
  ASSERT_TRUE(ParseCliArgs({"--profile=prof.json"}, &with_file, &error));
  EXPECT_TRUE(with_file.profile);
  EXPECT_EQ(with_file.profile_out, "prof.json");
}

TEST(CliParseTest, RejectsEmptyProfilePath) {
  // `--profile=` with nothing after the '=' is a mistake, not a request
  // for a file named "": one-line error naming the flag, like every other
  // malformed flag.
  CliOptions o;
  std::string error;
  EXPECT_FALSE(ParseCliArgs({"--profile="}, &o, &error));
  EXPECT_NE(error.find("--profile"), std::string::npos) << error;
  EXPECT_EQ(error.find('\n'), std::string::npos) << error;
}

TEST(CliParseTest, ParsesProgressFlags) {
  CliOptions o;
  std::string error;
  EXPECT_EQ(o.progress_every, 0);  // off by default
  ASSERT_TRUE(ParseCliArgs({"--progress"}, &o, &error));
  EXPECT_EQ(o.progress_every, 1);

  CliOptions every;
  ASSERT_TRUE(ParseCliArgs({"--progress=25"}, &every, &error));
  EXPECT_EQ(every.progress_every, 25);
}

TEST(CliRunTest, ProfilePrintsTableAndWritesReport) {
  CliOptions o;
  o.app = "desktop";
  o.profile = true;
  o.profile_out = TempPath("cli-profile.json");
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("host-time profile"), std::string::npos);
  EXPECT_NE(out.find("sim.run"), std::string::npos);
  EXPECT_NE(out.find("wrote host-time profile"), std::string::npos);

  std::ifstream report(o.profile_out);
  ASSERT_TRUE(report.good());
  std::ostringstream buf;
  buf << report.rdbuf();
  EXPECT_NE(buf.str().find("\"coverage\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"queue.push\""), std::string::npos);
}

TEST(CliRunTest, ProfileOffPrintsNoTable) {
  CliOptions o;
  o.app = "desktop";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(out.find("host-time profile"), std::string::npos);
}

TEST(CliRunTest, UsageDocumentsTelemetryFlags) {
  CliOptions o;
  o.show_help = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("--profile"), std::string::npos);
  EXPECT_NE(out.find("--progress"), std::string::npos);
}

TEST(CliRunTest, UsageDocumentsCampaignMode) {
  CliOptions o;
  o.show_help = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("--campaign=SPEC"), std::string::npos);
  EXPECT_NE(out.find("--jobs=N"), std::string::npos);
  EXPECT_NE(out.find("--campaign-baseline=FILE"), std::string::npos);
}

TEST(CliRunTest, ListMentionsCampaigns) {
  CliOptions o;
  o.list_catalog = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("campaigns:"), std::string::npos);
}

TEST(CliRunTest, CampaignEndToEndWithGate) {
  const std::string spec_path = TempPath("cli-campaign-spec.txt");
  {
    std::ofstream spec(spec_path);
    spec << "name = cli-e2e\nos = nt40\napp = desktop\nseeds = 2\nseed = 11\n";
  }
  CliOptions run;
  run.campaign_path = spec_path;
  run.jobs = 2;
  run.campaign_out = TempPath("cli-campaign-out");
  const auto [rc, out] = Capture(run);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("campaign 'cli-e2e': 2 cells"), std::string::npos);
  EXPECT_NE(out.find("per-os summary"), std::string::npos);

  std::ifstream agg(run.campaign_out + "/aggregate.json");
  ASSERT_TRUE(agg.good());

  // Gate the same campaign against its own aggregate: must pass.
  CliOptions gate = run;
  gate.campaign_baseline = run.campaign_out + "/aggregate.json";
  const auto [rc2, out2] = Capture(gate);
  EXPECT_EQ(rc2, 0);
  EXPECT_NE(out2.find("PASS"), std::string::npos);
}

TEST(CliRunTest, CampaignMissingSpecFails) {
  CliOptions o;
  o.campaign_path = TempPath("no-such-spec.txt");
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("campaign spec"), std::string::npos);
}

TEST(CliRunTest, CampaignBadSpecNameFails) {
  const std::string spec_path = TempPath("cli-campaign-bad.txt");
  {
    std::ofstream spec(spec_path);
    spec << "os = solaris\n";
  }
  CliOptions o;
  o.campaign_path = spec_path;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("solaris"), std::string::npos);
}

TEST(CliRunTest, ExplainPrintsReport) {
  CliOptions o;
  o.app = "powerpoint";  // has disk-heavy events well above 1 ms
  o.threshold_ms = 1.0;
  o.explain = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("event #"), std::string::npos);
  EXPECT_NE(out.find("overlap_ms"), std::string::npos);
}

// Every numeric flag x every malformed shape must fail the parse with a
// one-line error naming the flag -- never throw, never silently truncate.
struct BadFlagCase {
  const char* flag;  // flag prefix including '='
  const char* value;
};

class CliBadNumberTest : public ::testing::TestWithParam<BadFlagCase> {};

TEST_P(CliBadNumberTest, RejectsWithUsageError) {
  const BadFlagCase& c = GetParam();
  CliOptions o;
  std::string error;
  EXPECT_FALSE(ParseCliArgs({std::string(c.flag) + c.value}, &o, &error))
      << c.flag << c.value;
  // The error is one line and names the offending flag.
  const std::string flag_name(c.flag, std::strlen(c.flag) - 1);  // strip '='
  EXPECT_NE(error.find(flag_name), std::string::npos) << error;
  EXPECT_EQ(error.find('\n'), std::string::npos) << error;
}

std::vector<BadFlagCase> AllBadNumberCases() {
  std::vector<BadFlagCase> cases;
  for (const char* flag :
       {"--seed=", "--threshold=", "--threshold-ms=", "--idle-period=", "--packets=",
        "--frames=", "--media-fps=", "--media-buffer=", "--jobs=",
        "--gate-tolerance=", "--progress=", "--users=", "--pool=",
        "--queue-depth=", "--cache-hit=", "--requests="}) {
    for (const char* value : {"abc", "12abc", "", "99999999999999999999999", "1e999"}) {
      cases.push_back({flag, value});
    }
  }
  for (const char* flag : {"--cell-timeout=", "--max-quarantined="}) {
    for (const char* value : {"abc", "12abc", "", "99999999999999999999999", "1e999"}) {
      cases.push_back({flag, value});
    }
  }
  // A few shapes specific to one flag family.
  cases.push_back({"--seed=", "-1"});
  cases.push_back({"--threshold=", "-5"});
  cases.push_back({"--threshold=", "nan"});
  cases.push_back({"--threshold=", "inf"});
  cases.push_back({"--packets=", "0"});
  cases.push_back({"--jobs=", "0"});
  cases.push_back({"--jobs=", "1025"});
  cases.push_back({"--progress=", "0"});
  cases.push_back({"--progress=", "-3"});
  cases.push_back({"--users=", "0"});
  cases.push_back({"--pool=", "-1"});
  cases.push_back({"--pool=", "0"});
  cases.push_back({"--queue-depth=", "0"});
  cases.push_back({"--cache-hit=", "1.5"});
  cases.push_back({"--cache-hit=", "-0.1"});
  cases.push_back({"--requests=", "0"});
  cases.push_back({"--media-fps=", "0"});
  cases.push_back({"--media-fps=", "0.5"});
  cases.push_back({"--media-fps=", "1001"});
  cases.push_back({"--media-buffer=", "0"});
  cases.push_back({"--media-buffer=", "-2"});
  cases.push_back({"--media-buffer=", "4097"});
  cases.push_back({"--cell-timeout=", "0"});
  cases.push_back({"--cell-timeout=", "-1"});
  cases.push_back({"--max-quarantined=", "-1"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllNumericFlags, CliBadNumberTest,
                         ::testing::ValuesIn(AllBadNumberCases()));

TEST(CliParseTest, ThresholdMsAliasMatchesThreshold) {
  CliOptions a;
  CliOptions b;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--threshold=55.5"}, &a, &error));
  ASSERT_TRUE(ParseCliArgs({"--threshold-ms=55.5"}, &b, &error));
  EXPECT_DOUBLE_EQ(a.threshold_ms, b.threshold_ms);
}

TEST(CliParseTest, ParsesFaultFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--faults=plan.txt", "--fail-degraded"}, &o, &error));
  EXPECT_EQ(o.faults_path, "plan.txt");
  EXPECT_TRUE(o.fail_degraded);
  EXPECT_FALSE(ParseCliArgs({"--faults="}, &o, &error));
}

TEST(CliRunTest, MissingFaultPlanExitsUsageError) {
  CliOptions o;
  o.faults_path = TempPath("does-not-exist.plan");
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("--faults"), std::string::npos);
}

TEST(CliRunTest, FaultedRunPrintsReportAndFailDegradedGates) {
  const std::string plan_path = TempPath("perm.plan");
  {
    std::ofstream plan(plan_path);
    plan << "disk.fail_after = 1\n";
  }
  CliOptions o;
  o.app = "powerpoint";  // disk-bound: the dead disk degrades the session
  o.faults_path = plan_path;
  {
    const auto [rc, out] = Capture(o);
    EXPECT_EQ(rc, 0);  // degraded-but-structured is still a success
    EXPECT_NE(out.find("fault injection: degraded"), std::string::npos);
  }
  o.fail_degraded = true;
  {
    const auto [rc, out] = Capture(o);
    EXPECT_EQ(rc, 1);
  }
}

TEST(CliRunTest, UsageDocumentsFaultsAndExitCodes) {
  CliOptions o;
  o.show_help = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("--faults"), std::string::npos);
  EXPECT_NE(out.find("--fail-degraded"), std::string::npos);
  EXPECT_NE(out.find("exit codes"), std::string::npos);
  EXPECT_NE(out.find("--shard=I/N"), std::string::npos);
  EXPECT_NE(out.find("ilat merge"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sharded campaigns and the merge subcommand.

TEST(CliParseTest, ParsesShardAndPartialFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--campaign=spec.txt", "--shard=2/8",
                            "--campaign-partial=out.json"},
                           &o, &error))
      << error;
  EXPECT_EQ(o.shard_index, 2);
  EXPECT_EQ(o.shard_count, 8);
  EXPECT_EQ(o.campaign_partial, "out.json");
  EXPECT_FALSE(o.merge_mode);
}

TEST(CliParseTest, RejectsMalformedShardValues) {
  for (const char* bad : {"--shard=3/3", "--shard=x/2", "--shard=1", "--shard=1/0",
                          "--shard=", "--shard=1/2/3", "--shard=-1/2", "--shard=1/2 "}) {
    CliOptions o;
    std::string error;
    EXPECT_FALSE(ParseCliArgs({"--campaign=spec.txt", bad, "--campaign-partial=x"}, &o,
                              &error))
        << bad;
    EXPECT_NE(error.find("--shard"), std::string::npos) << bad;
  }
}

TEST(CliParseTest, ShardRequiresCampaignAndPartial) {
  CliOptions o;
  std::string error;
  EXPECT_FALSE(ParseCliArgs({"--shard=0/2", "--campaign-partial=x"}, &o, &error));
  EXPECT_NE(error.find("--campaign"), std::string::npos);

  o = CliOptions();
  EXPECT_FALSE(ParseCliArgs({"--campaign=spec.txt", "--shard=0/2"}, &o, &error));
  EXPECT_NE(error.find("--campaign-partial"), std::string::npos);

  // A shard holds a fraction of the campaign, so whole-campaign outputs
  // and gating are refused until the partials are merged.
  o = CliOptions();
  EXPECT_FALSE(ParseCliArgs({"--campaign=spec.txt", "--shard=0/2",
                             "--campaign-partial=x", "--campaign-out=dir"},
                            &o, &error));
  EXPECT_NE(error.find("merge"), std::string::npos);

  // --shard=0/1 is the whole campaign; outputs are fine.
  o = CliOptions();
  EXPECT_TRUE(ParseCliArgs({"--campaign=spec.txt", "--shard=0/1", "--campaign-partial=x",
                            "--campaign-out=dir"},
                           &o, &error))
      << error;
}

TEST(CliParseTest, MergeSubcommandCollectsInputs) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"merge", "a.json", "b.json", "--campaign-out=dir"}, &o, &error))
      << error;
  EXPECT_TRUE(o.merge_mode);
  ASSERT_EQ(o.merge_inputs.size(), 2u);
  EXPECT_EQ(o.merge_inputs[0], "a.json");
  EXPECT_EQ(o.merge_inputs[1], "b.json");
  EXPECT_EQ(o.campaign_out, "dir");

  o = CliOptions();
  EXPECT_FALSE(ParseCliArgs({"merge"}, &o, &error));  // no inputs
  EXPECT_NE(error.find("merge"), std::string::npos);

  o = CliOptions();
  EXPECT_FALSE(ParseCliArgs({"merge", "a.json", "--campaign=spec.txt"}, &o, &error));

  // `merge` is a subcommand, not a flag value: anywhere else it is unknown.
  o = CliOptions();
  EXPECT_FALSE(ParseCliArgs({"--events", "merge"}, &o, &error));
  EXPECT_NE(error.find("unknown argument"), std::string::npos);
}

// End to end: shard a campaign into partials via the real CLI, merge
// them, and demand byte-identical artifacts vs the unsharded run.
TEST(CliRunTest, ShardedCampaignMergesByteIdenticalToUnsharded) {
  const std::string spec_path = TempPath("shard-spec.txt");
  {
    std::ofstream spec(spec_path);
    spec << "name = clishard\nos = nt40\napp = echo, desktop\nseeds = 2\nseed = 7\n";
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };

  CliOptions full;
  full.campaign_path = spec_path;
  full.campaign_out = TempPath("shard-full");
  ASSERT_EQ(Capture(full).first, 0);

  std::vector<std::string> partials;
  for (int i = 0; i < 3; ++i) {
    CliOptions shard;
    shard.campaign_path = spec_path;
    shard.shard_index = i;
    shard.shard_count = 3;
    shard.jobs = 1 + i;  // thread count must not affect the bytes
    shard.campaign_partial = TempPath("shard-p" + std::to_string(i) + ".json");
    partials.push_back(shard.campaign_partial);
    const auto [rc, out] = Capture(shard);
    ASSERT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("wrote shard"), std::string::npos);
  }

  CliOptions merge;
  merge.merge_mode = true;
  merge.merge_inputs = partials;
  merge.campaign_out = TempPath("shard-merged");
  const auto [rc, out] = Capture(merge);
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("merged 3 partial(s)"), std::string::npos);

  const std::string full_json = slurp(TempPath("shard-full") + "/aggregate.json");
  ASSERT_FALSE(full_json.empty());
  EXPECT_EQ(full_json, slurp(TempPath("shard-merged") + "/aggregate.json"));
  EXPECT_EQ(slurp(TempPath("shard-full") + "/cells.csv"),
            slurp(TempPath("shard-merged") + "/cells.csv"));
}

TEST(CliRunTest, MergeFailuresExitTwoWithOneLineErrors) {
  CliOptions o;
  o.merge_mode = true;
  o.merge_inputs = {TempPath("no-such-partial.json")};
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("merge:"), std::string::npos);
}

TEST(CliRunTest, CorruptSessionLoadExitsTwo) {
  const std::string path = TempPath("corrupt-session.ilat");
  {
    std::ofstream f(path);
    f << "this is not a session file\n";
  }
  CliOptions o;
  o.load_path = path;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("cannot load"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Crash-safe campaign flags: --journal, --resume, --cell-timeout,
// --max-quarantined.

TEST(CliParseTest, ParsesJournalAndWatchdogFlags) {
  CliOptions o;
  std::string error;
  ASSERT_TRUE(ParseCliArgs({"--campaign=spec.txt", "--journal=camp.jsonl",
                            "--cell-timeout=2.5", "--max-quarantined=3"},
                           &o, &error))
      << error;
  EXPECT_EQ(o.journal_path, "camp.jsonl");
  EXPECT_DOUBLE_EQ(o.cell_timeout_s, 2.5);
  EXPECT_EQ(o.max_quarantined, 3);

  // --resume implies journaling to the same file.
  o = CliOptions();
  ASSERT_TRUE(ParseCliArgs({"--campaign=spec.txt", "--resume=camp.jsonl"}, &o, &error))
      << error;
  EXPECT_EQ(o.resume_path, "camp.jsonl");
  EXPECT_EQ(o.journal_path, "camp.jsonl");

  // A --shard satisfied by --journal alone (no partial).
  o = CliOptions();
  ASSERT_TRUE(ParseCliArgs({"--campaign=spec.txt", "--shard=0/2", "--journal=s0.jsonl"},
                           &o, &error))
      << error;
}

TEST(CliParseTest, RejectsInconsistentJournalFlagCombinations) {
  struct BadCombo {
    std::vector<std::string> args;
    const char* needle;
  };
  const std::vector<BadCombo> combos = {
      {{"--journal=j.jsonl"}, "--campaign"},
      {{"--resume=j.jsonl"}, "--campaign"},
      {{"--cell-timeout=5"}, "--campaign"},
      {{"--max-quarantined=1"}, "--campaign"},
      {{"--campaign=s.txt", "--journal="}, "--journal"},
      {{"--campaign=s.txt", "--resume="}, "--resume"},
      {{"--campaign=s.txt", "--resume=a.jsonl", "--journal=b.jsonl"}, "same file"},
      {{"--campaign=s.txt", "--resume=a.jsonl", "--campaign-partial=p.json"},
       "--campaign-partial"},
      {{"merge", "a.jsonl", "--journal=j.jsonl"}, "merge"},
      {{"merge", "a.jsonl", "--resume=j.jsonl"}, "merge"},
      {{"merge", "a.jsonl", "--cell-timeout=5"}, "merge"},
      {{"merge", "a.jsonl", "--max-quarantined=1"}, "merge"},
  };
  for (const BadCombo& combo : combos) {
    CliOptions o;
    std::string error;
    EXPECT_FALSE(ParseCliArgs(combo.args, &o, &error)) << combo.args[0];
    EXPECT_NE(error.find(combo.needle), std::string::npos) << error;
    EXPECT_EQ(error.find('\n'), std::string::npos) << error;
  }
}

TEST(CliRunTest, MissingOrForeignResumeJournalExitsTwo) {
  const std::string spec_path = TempPath("resume-spec.txt");
  {
    std::ofstream spec(spec_path);
    spec << "name = cliresume\nos = nt40\napp = echo\nseeds = 2\nseed = 11\n";
  }
  CliOptions o;
  o.campaign_path = spec_path;
  o.resume_path = TempPath("no-such-journal.jsonl");
  o.journal_path = o.resume_path;
  {
    const auto [rc, out] = Capture(o);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(out.find("cannot read"), std::string::npos);
  }

  // A journal from a different campaign is refused by spec hash.
  const std::string other_spec = TempPath("resume-other-spec.txt");
  {
    std::ofstream spec(other_spec);
    spec << "name = cliresume\nos = nt40\napp = echo\nseeds = 2\nseed = 12\n";
  }
  CliOptions writer;
  writer.campaign_path = other_spec;
  writer.journal_path = TempPath("resume-foreign.jsonl");
  ASSERT_EQ(Capture(writer).first, 0);
  o.resume_path = writer.journal_path;
  o.journal_path = writer.journal_path;
  {
    const auto [rc, out] = Capture(o);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(out.find("different spec"), std::string::npos) << out;
  }
}

// End to end through the CLI: journal a run, then resume from the full
// journal -- every cell replays, no cell re-runs, artifacts match.
TEST(CliRunTest, ResumeFromCompleteJournalReplaysByteIdentical) {
  const std::string spec_path = TempPath("resume-e2e-spec.txt");
  {
    std::ofstream spec(spec_path);
    spec << "name = cliresume2\nos = nt40\napp = echo, desktop\nseeds = 2\nseed = 5\n";
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };

  CliOptions first;
  first.campaign_path = spec_path;
  first.journal_path = TempPath("resume-e2e.jsonl");
  first.campaign_out = TempPath("resume-e2e-first");
  {
    const auto [rc, out] = Capture(first);
    ASSERT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("journal: 4 cell(s)"), std::string::npos) << out;
  }

  CliOptions second;
  second.campaign_path = spec_path;
  second.resume_path = first.journal_path;
  second.journal_path = first.journal_path;
  second.campaign_out = TempPath("resume-e2e-second");
  {
    const auto [rc, out] = Capture(second);
    ASSERT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("resume: replaying 4 completed cell(s)"), std::string::npos)
        << out;
  }

  EXPECT_EQ(slurp(first.campaign_out + "/aggregate.json"),
            slurp(second.campaign_out + "/aggregate.json"));
  EXPECT_EQ(slurp(first.campaign_out + "/cells.csv"),
            slurp(second.campaign_out + "/cells.csv"));
}

TEST(CliRunTest, UsageDocumentsResilienceFlags) {
  CliOptions o;
  o.show_help = true;
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("--journal"), std::string::npos);
  EXPECT_NE(out.find("--resume"), std::string::npos);
  EXPECT_NE(out.find("--cell-timeout"), std::string::npos);
  EXPECT_NE(out.find("--max-quarantined"), std::string::npos);
}

}  // namespace
}  // namespace ilat
