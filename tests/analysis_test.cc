#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/classifier.h"
#include "src/analysis/cumulative.h"
#include "src/analysis/histogram.h"
#include "src/analysis/interarrival.h"
#include "src/analysis/responsiveness.h"
#include "src/analysis/stats.h"
#include "src/apps/commands.h"

namespace ilat {
namespace {

EventRecord Event(double start_s, double latency_ms, MessageType type = MessageType::kChar,
                  int param = 'a') {
  EventRecord e;
  e.type = type;
  e.param = param;
  e.start = SecondsToCycles(start_s);
  e.busy = MillisecondsToCycles(latency_ms);
  e.end = e.start + e.busy;
  e.wall = e.busy;
  return e;
}

// ---------------------------------------------------------------------------
// Stats.

TEST(StatsTest, WelfordMatchesClosedForm) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(StatsTest, EmptyAndSingle) {
  SummaryStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.Add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(StatsTest, PercentileEdgeValues) {
  // Out-of-range p clamps instead of indexing out of bounds.
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, -5), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 250), 40.0);
  // Single element: every percentile is that element.
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(Percentile(one, 0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(one, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(one, 100), 7.0);
  // Duplicates interpolate to themselves.
  std::vector<double> dup{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(dup, 25), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(dup, 99), 5.0);
  // Empty input stays a defined 0.
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, DiffStatsComputesInterarrivals) {
  const SummaryStats s = DiffStats({1.0, 3.0, 7.0, 8.0});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_NEAR(s.mean(), 7.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Histogram.

TEST(HistogramTest, LinearBinning) {
  Histogram h = Histogram::Linear(10.0, 50.0);
  h.Add(5.0);
  h.Add(15.0);
  h.Add(15.5);
  h.Add(200.0);  // overflow bin
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.bins()[0].count, 1u);
  EXPECT_EQ(h.bins()[1].count, 2u);
  EXPECT_EQ(h.bins().back().count, 1u);
}

TEST(HistogramTest, Log2Binning) {
  Histogram h = Histogram::Log2(1.0, 8);  // [0,1),[1,2),[2,4),...,[128,256),[256,inf)
  h.Add(0.5);
  h.Add(1.5);
  h.Add(3.0);
  h.Add(1'000.0);
  EXPECT_EQ(h.bins()[0].count, 1u);
  EXPECT_EQ(h.bins()[1].count, 1u);
  EXPECT_EQ(h.bins()[2].count, 1u);
  EXPECT_EQ(h.bins().back().count, 1u);
}

TEST(HistogramTest, ValueFractionBelow) {
  Histogram h = Histogram::Linear(10.0, 100.0);
  h.Add(5.0);
  h.Add(5.0);
  h.Add(90.0);
  EXPECT_NEAR(h.ValueFractionBelow(10.0), 10.0 / 100.0, 1e-12);
}

TEST(HistogramTest, AddLatenciesFromEvents) {
  Histogram h = Histogram::Linear(10.0, 100.0);
  std::vector<EventRecord> events{Event(0, 5), Event(1, 15)};
  h.AddLatencies(events);
  EXPECT_EQ(h.total_count(), 2u);
}

// ---------------------------------------------------------------------------
// Cumulative.

TEST(CumulativeTest, SortsByDurationNotTime) {
  // Paper §3.2: "events are sorted by their duration, not by their actual
  // time of occurrence".
  std::vector<EventRecord> events{Event(0, 30), Event(1, 10), Event(2, 20)};
  const auto curve = CumulativeLatencyByLatency(events);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].x, 10.0);
  EXPECT_DOUBLE_EQ(curve[0].y, 10.0);
  EXPECT_DOUBLE_EQ(curve[1].x, 20.0);
  EXPECT_DOUBLE_EQ(curve[1].y, 30.0);
  EXPECT_DOUBLE_EQ(curve[2].y, 60.0);
}

TEST(CumulativeTest, ByCountIsMonotone) {
  std::vector<EventRecord> events{Event(0, 3), Event(1, 1), Event(2, 2)};
  const auto curve = CumulativeLatencyByCount(events);
  ASSERT_EQ(curve.size(), 3u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].y, curve[i - 1].y);
    EXPECT_EQ(curve[i].x, curve[i - 1].x + 1.0);
  }
}

TEST(CumulativeTest, FractionBelowThreshold) {
  std::vector<EventRecord> events{Event(0, 5), Event(1, 5), Event(2, 90)};
  EXPECT_NEAR(LatencyFractionBelow(events, 10.0), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(TotalLatencyMs(events), 100.0);
}

TEST(CumulativeTest, EventsAboveFilters) {
  std::vector<EventRecord> events{Event(0, 5), Event(1, 50), Event(2, 500)};
  const auto above = EventsAbove(events, 50.0);
  ASSERT_EQ(above.size(), 2u);
  EXPECT_EQ(above[0].latency_ms(), 50.0);
}

// ---------------------------------------------------------------------------
// Interarrival (Table 2 machinery).

TEST(InterarrivalTest, CountsAndMoments) {
  std::vector<EventRecord> events;
  // Above-threshold events at t = 0, 2, 6 s; below-threshold noise between.
  events.push_back(Event(0.0, 150));
  events.push_back(Event(1.0, 50));
  events.push_back(Event(2.0, 150));
  events.push_back(Event(6.0, 150));
  const auto s = InterarrivalAbove(events, 100.0);
  EXPECT_EQ(s.events_above, 3u);
  EXPECT_NEAR(s.mean_interarrival_s, 3.0, 1e-9);  // gaps 2 and 4
  EXPECT_NEAR(s.stddev_interarrival_s, std::sqrt(2.0), 1e-9);
}

TEST(InterarrivalTest, SweepMonotoneCounts) {
  std::vector<EventRecord> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(Event(i, 90.0 + i));  // latencies 90..189
  }
  const auto sweep = InterarrivalSweep(events, {100.0, 110.0, 120.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_GT(sweep[0].events_above, sweep[1].events_above);
  EXPECT_GT(sweep[1].events_above, sweep[2].events_above);
}

TEST(InterarrivalTest, ZeroOrOneEventHasNoMoments) {
  std::vector<EventRecord> events{Event(0, 150)};
  const auto s = InterarrivalAbove(events, 100.0);
  EXPECT_EQ(s.events_above, 1u);
  EXPECT_EQ(s.mean_interarrival_s, 0.0);
}

// ---------------------------------------------------------------------------
// Classifier + responsiveness.

TEST(ClassifierTest, MapsTypesToClasses) {
  EXPECT_EQ(ClassifyEvent(Event(0, 1, MessageType::kChar)), EventClass::kKeystroke);
  EXPECT_EQ(ClassifyEvent(Event(0, 1, MessageType::kMouseDown)), EventClass::kMouse);
  EXPECT_EQ(ClassifyEvent(Event(0, 1, MessageType::kKeyDown, kVkPageDown)),
            EventClass::kNavigation);
  EXPECT_EQ(ClassifyEvent(Event(0, 1, MessageType::kCommand, kCmdPptSave)),
            EventClass::kCommand);
  EXPECT_EQ(ClassifyEvent(Event(0, 1, MessageType::kCommand, kCmdPptPageDown)),
            EventClass::kNavigation);
}

TEST(ClassifierTest, ThresholdsFollowShneiderman) {
  // 0.1 s imperceptible; 2-4 s invariably irritating (paper §3.1).
  EXPECT_DOUBLE_EQ(DefaultThresholdMs(EventClass::kKeystroke), 100.0);
  EXPECT_DOUBLE_EQ(DefaultThresholdMs(EventClass::kCommand), 2'000.0);
}

TEST(ResponsivenessTest, ZeroPenaltyWhenAllFast) {
  std::vector<EventRecord> events{Event(0, 10), Event(1, 20)};
  const auto r = ScoreResponsiveness(events);
  EXPECT_EQ(r.penalty, 0.0);
  EXPECT_EQ(r.events_over_threshold, 0u);
  EXPECT_EQ(r.events_total, 2u);
}

TEST(ResponsivenessTest, PenaltyGrowsAboveThreshold) {
  std::vector<EventRecord> events{Event(0, 150), Event(1, 250)};
  ResponsivenessOptions opts;
  opts.threshold_ms = 100.0;
  const auto r = ScoreResponsiveness(events, opts);
  EXPECT_EQ(r.events_over_threshold, 2u);
  EXPECT_DOUBLE_EQ(r.penalty, 50.0 + 150.0);
  EXPECT_DOUBLE_EQ(r.worst_latency_ms, 250.0);
}

TEST(ResponsivenessTest, PerClassThresholdsApply) {
  // A 1.5 s save command is acceptable; a 1.5 s keystroke is not.
  std::vector<EventRecord> events{Event(0, 1'500, MessageType::kCommand, kCmdPptSave),
                                  Event(1, 1'500, MessageType::kChar)};
  const auto r = ScoreResponsiveness(events);
  EXPECT_EQ(r.events_over_threshold, 1u);
}

TEST(ClassifierTest, SummarizeByClassAggregates) {
  std::vector<EventRecord> events{
      Event(0, 5, MessageType::kChar),
      Event(1, 15, MessageType::kChar),
      Event(2, 150, MessageType::kChar),  // over the keystroke threshold
      Event(3, 900, MessageType::kCommand, kCmdPptSave),
      Event(4, 3'000, MessageType::kCommand, kCmdPptSave),  // over command threshold
  };
  const auto summary = SummarizeByClass(events);
  ASSERT_EQ(summary.size(), 2u);  // keystroke + command; empty classes dropped
  const ClassSummary& keys = summary[0];
  EXPECT_EQ(keys.event_class, EventClass::kKeystroke);
  EXPECT_EQ(keys.count, 3u);
  EXPECT_NEAR(keys.mean_ms, (5.0 + 15.0 + 150.0) / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(keys.max_ms, 150.0);
  EXPECT_EQ(keys.over_threshold, 1u);
  const ClassSummary& cmds = summary[1];
  EXPECT_EQ(cmds.event_class, EventClass::kCommand);
  EXPECT_EQ(cmds.count, 2u);
  EXPECT_EQ(cmds.over_threshold, 1u);
}

TEST(ClassifierTest, SummarizeByClassEmptyInput) {
  EXPECT_TRUE(SummarizeByClass({}).empty());
}

TEST(ResponsivenessTest, QuadraticExponent) {
  std::vector<EventRecord> events{Event(0, 110)};
  ResponsivenessOptions opts;
  opts.threshold_ms = 100.0;
  opts.exponent = 2.0;
  const auto r = ScoreResponsiveness(events, opts);
  EXPECT_DOUBLE_EQ(r.penalty, 100.0);
}

}  // namespace
}  // namespace ilat
