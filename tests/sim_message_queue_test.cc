#include "src/sim/message_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ilat {
namespace {

TEST(MessageQueueTest, PostStampsTimeAndSequence) {
  EventQueue clock;
  MessageQueue q(&clock);
  clock.ScheduleAt(123, [] {});
  clock.RunNext();
  Message m;
  m.type = MessageType::kChar;
  const Message stamped = q.Post(m);
  EXPECT_EQ(stamped.enqueue_time, 123);
  EXPECT_EQ(stamped.seq, 1u);
  const Message second = q.Post(m);
  EXPECT_EQ(second.seq, 2u);
}

TEST(MessageQueueTest, FifoOrder) {
  EventQueue clock;
  MessageQueue q(&clock);
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.type = MessageType::kChar;
    m.param = i;
    q.Post(m);
  }
  for (int i = 0; i < 5; ++i) {
    Message out;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out.param, i);
  }
  Message out;
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(MessageQueueTest, WakeCallbackFiresOnEveryPost) {
  EventQueue clock;
  MessageQueue q(&clock);
  int wakes = 0;
  q.SetWakeCallback([&] { ++wakes; });
  Message m;
  q.Post(m);
  q.Post(m);
  EXPECT_EQ(wakes, 2);
}

TEST(MessageQueueTest, TransitionObserverSeesEdgesOnly) {
  EventQueue clock;
  MessageQueue q(&clock);
  std::vector<bool> edges;
  q.SetTransitionObserver([&](Cycles, bool non_empty) { edges.push_back(non_empty); });
  Message m;
  q.Post(m);          // empty -> non-empty
  q.Post(m);          // still non-empty: no edge
  Message out;
  q.TryPop(&out);     // still non-empty
  q.TryPop(&out);     // -> empty
  EXPECT_EQ(edges, (std::vector<bool>{true, false}));
}

TEST(MessageQueueTest, ContainsTypeScansPending) {
  EventQueue clock;
  MessageQueue q(&clock);
  Message m;
  m.type = MessageType::kChar;
  q.Post(m);
  EXPECT_TRUE(q.ContainsType(MessageType::kChar));
  EXPECT_FALSE(q.ContainsType(MessageType::kQueueSync));
  m.type = MessageType::kQueueSync;
  q.Post(m);
  EXPECT_TRUE(q.ContainsType(MessageType::kQueueSync));
}

TEST(MessageQueueTest, PeekFrontDoesNotRemove) {
  EventQueue clock;
  MessageQueue q(&clock);
  Message m;
  m.type = MessageType::kTimer;
  q.Post(m);
  Message peeked;
  ASSERT_TRUE(q.PeekFront(&peeked));
  EXPECT_EQ(peeked.type, MessageType::kTimer);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(MessageTest, UserInputClassification) {
  Message m;
  for (MessageType t : {MessageType::kKeyDown, MessageType::kChar, MessageType::kMouseDown,
                        MessageType::kMouseUp, MessageType::kCommand}) {
    m.type = t;
    EXPECT_TRUE(m.IsUserInput()) << MessageTypeName(t);
  }
  for (MessageType t : {MessageType::kTimer, MessageType::kPaint, MessageType::kQueueSync,
                        MessageType::kQuit}) {
    m.type = t;
    EXPECT_FALSE(m.IsUserInput()) << MessageTypeName(t);
  }
}

TEST(MessageTest, TypeNames) {
  EXPECT_EQ(MessageTypeName(MessageType::kQueueSync), "WM_QUEUESYNC");
  EXPECT_EQ(MessageTypeName(MessageType::kChar), "WM_CHAR");
}

}  // namespace
}  // namespace ilat
