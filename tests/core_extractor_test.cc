// Event-extractor tests on synthetic traces and logs, plus a live check on
// the real pump.

#include "src/core/event_extractor.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/notepad.h"
#include "src/core/counter_session.h"
#include "src/core/measurement.h"
#include "src/input/workloads.h"
#include "src/os/personalities.h"

namespace ilat {
namespace {

constexpr Cycles kMs = kCyclesPerMillisecond;

// Build a synthetic idle trace: records every 1 ms except a busy window
// [busy_at, busy_at+busy_len) that elongates one gap.
std::vector<TraceRecord> TraceWithBusy(double busy_at_ms, double busy_ms, double end_ms) {
  std::vector<TraceRecord> t;
  double clock = 0.0;
  double credit = 0.0;  // idle progress toward the next record
  while (clock < end_ms) {
    // advance in idle; when we reach busy_at, insert the busy time.
    double next_record = clock + (1.0 - credit);
    if (clock <= busy_at_ms && busy_at_ms < next_record) {
      next_record += busy_ms;
    }
    t.push_back(TraceRecord{MillisecondsToCycles(next_record)});
    clock = next_record;
    credit = 0.0;
  }
  return t;
}

TEST(EventExtractorTest, SingleEventLatencyFromSyntheticTrace) {
  // Keystroke posted at 5.2 ms, handled in 9.76 ms of busy time; the app
  // retrieves at 5.3 ms and is back in the pump at 15.0 ms.
  const auto trace = TraceWithBusy(5.2, 9.76, 30.0);
  BusyProfile busy(trace, kMs);

  MessageMonitor monitor;
  Message m;
  m.type = MessageType::kChar;
  m.seq = 1;
  m.enqueue_time = MillisecondsToCycles(5.2);
  monitor.OnMessageRetrieved(MillisecondsToCycles(5.3), m, 0);
  monitor.OnApiCall(MillisecondsToCycles(15.0), false, true);

  std::vector<PostedEvent> posted;
  posted.push_back(PostedEvent{1, ScriptItem::Kind::kChar, 'a', "echo",
                               MillisecondsToCycles(5.2)});

  const auto events = ExtractEvents(busy, monitor, posted, {}, ExtractorOptions{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].latency_ms(), 9.76, 0.05);
  EXPECT_EQ(events[0].label, "echo");
}

TEST(EventExtractorTest, QueueSyncWindowNotChargedToEvent) {
  // Busy: event handling 3 ms at t=5, then WM_QUEUESYNC handling 4 ms at
  // t=10.  The keystroke event must see only its 3 ms.
  auto trace = TraceWithBusy(5.0, 3.0, 9.5);
  {
    auto tail = TraceWithBusy(0.5, 4.0, 10.0);
    const Cycles base = trace.back().timestamp;
    for (auto& r : tail) {
      trace.push_back(TraceRecord{base + r.timestamp});
    }
  }
  BusyProfile busy(trace, kMs);

  MessageMonitor monitor;
  Message key;
  key.type = MessageType::kChar;
  key.seq = 1;
  monitor.OnMessageRetrieved(MillisecondsToCycles(5.1), key, 1);
  // Pump returns and immediately retrieves the sync message.
  monitor.OnApiCall(MillisecondsToCycles(8.2), false, false);
  Message sync;
  sync.type = MessageType::kQueueSync;
  sync.seq = 2;
  monitor.OnMessageRetrieved(MillisecondsToCycles(10.1), sync, 0);
  monitor.OnApiCall(MillisecondsToCycles(14.5), false, true);

  std::vector<PostedEvent> posted;
  posted.push_back(PostedEvent{1, ScriptItem::Kind::kChar, 'a', "", MillisecondsToCycles(5.0)});

  const auto events = ExtractEvents(busy, monitor, posted, {}, ExtractorOptions{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].latency_ms(), 3.0, 0.3);
}

TEST(EventExtractorTest, TimerCascadeMergedWhenRequested) {
  auto trace = TraceWithBusy(5.0, 2.0, 40.0);
  BusyProfile busy(trace, kMs);

  MessageMonitor monitor;
  Message cmd;
  cmd.type = MessageType::kCommand;
  cmd.seq = 1;
  monitor.OnMessageRetrieved(MillisecondsToCycles(5.1), cmd, 0);
  monitor.OnApiCall(MillisecondsToCycles(8.0), false, true);
  Message timer;
  timer.type = MessageType::kTimer;
  timer.seq = 2;
  monitor.OnMessageRetrieved(MillisecondsToCycles(20.0), timer, 0);
  monitor.OnApiCall(MillisecondsToCycles(25.0), false, true);

  std::vector<PostedEvent> posted;
  posted.push_back(PostedEvent{1, ScriptItem::Kind::kCommand, 7, "maximize",
                               MillisecondsToCycles(5.0)});

  ExtractorOptions merge;
  merge.merge_timer_cascades = true;
  const auto merged = ExtractEvents(busy, monitor, posted, {}, merge);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].end, MillisecondsToCycles(25.0));

  const auto unmerged = ExtractEvents(busy, monitor, posted, {}, ExtractorOptions{});
  EXPECT_EQ(unmerged[0].end, MillisecondsToCycles(8.0));
}

TEST(EventExtractorTest, IoWaitCountedWhenRequested) {
  const auto trace = TraceWithBusy(5.0, 1.0, 60.0);
  BusyProfile busy(trace, kMs);

  MessageMonitor monitor;
  Message cmd;
  cmd.type = MessageType::kCommand;
  cmd.seq = 1;
  monitor.OnMessageRetrieved(MillisecondsToCycles(5.1), cmd, 0);
  monitor.OnApiCall(MillisecondsToCycles(40.0), false, true);

  std::vector<PostedEvent> posted;
  posted.push_back(PostedEvent{1, ScriptItem::Kind::kCommand, 1, "open",
                               MillisecondsToCycles(5.0)});
  std::vector<IoPendingInterval> io;
  io.push_back(IoPendingInterval{MillisecondsToCycles(10.0), MillisecondsToCycles(30.0)});

  ExtractorOptions with_io;
  const auto events = ExtractEvents(busy, monitor, posted, io, with_io);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(CyclesToMilliseconds(events[0].io_wait), 20.0, 1e-6);
  EXPECT_GT(events[0].latency_ms(), 20.0);

  ExtractorOptions without_io;
  without_io.include_io_wait = false;
  const auto no_io = ExtractEvents(busy, monitor, posted, io, without_io);
  EXPECT_EQ(no_io[0].io_wait, 0);
}

TEST(EventExtractorTest, UnretrievedMessagesSkipped) {
  const auto trace = TraceWithBusy(5.0, 1.0, 10.0);
  BusyProfile busy(trace, kMs);
  MessageMonitor monitor;
  std::vector<PostedEvent> posted;
  posted.push_back(PostedEvent{99, ScriptItem::Kind::kChar, 'a', "", 0});
  const auto events = ExtractEvents(busy, monitor, posted, {}, ExtractorOptions{});
  EXPECT_TRUE(events.empty());
}

TEST(EventExtractorTest, EventsSortedByStartTime) {
  const auto trace = TraceWithBusy(5.0, 1.0, 100.0);
  BusyProfile busy(trace, kMs);
  MessageMonitor monitor;
  for (std::uint64_t i = 0; i < 3; ++i) {
    Message m;
    m.type = MessageType::kChar;
    m.seq = i + 1;
    monitor.OnMessageRetrieved(MillisecondsToCycles(10.0 * (i + 1)), m, 0);
    monitor.OnApiCall(MillisecondsToCycles(10.0 * (i + 1) + 2.0), false, true);
  }
  // Posted list deliberately shuffled.
  std::vector<PostedEvent> posted;
  posted.push_back(PostedEvent{3, ScriptItem::Kind::kChar, 'c', "", MillisecondsToCycles(30)});
  posted.push_back(PostedEvent{1, ScriptItem::Kind::kChar, 'a', "", MillisecondsToCycles(10)});
  posted.push_back(PostedEvent{2, ScriptItem::Kind::kChar, 'b', "", MillisecondsToCycles(20)});
  const auto events = ExtractEvents(busy, monitor, posted, {}, ExtractorOptions{});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].start, events[1].start);
  EXPECT_LT(events[1].start, events[2].start);
}

// ---------------------------------------------------------------------------
// Counter session.

TEST(CounterSessionTest, MeasuresDeltas) {
  Simulation sim(1);
  CounterSession cs(&sim, HwEvent::kItlbMiss, HwEvent::kSegmentLoads);
  sim.counters().Add(HwEvent::kItlbMiss, 100);  // before Begin: excluded
  cs.Begin();
  sim.counters().Add(HwEvent::kItlbMiss, 42);
  sim.counters().Add(HwEvent::kSegmentLoads, 7);
  sim.queue().ScheduleAt(1'000, [] {});
  sim.queue().RunNext();
  cs.End();
  EXPECT_EQ(cs.CountA(), 42u);
  EXPECT_EQ(cs.CountB(), 7u);
  EXPECT_EQ(cs.ElapsedCycles(), 1'000);
}

TEST(CounterSessionTest, FortyBitWrap) {
  Simulation sim(1);
  CounterSession cs(&sim, HwEvent::kDataRefs, HwEvent::kInstructions);
  cs.Begin();
  sim.counters().Add(HwEvent::kDataRefs, (1ull << 40) + 5);
  cs.End();
  EXPECT_EQ(cs.CountA(), 5u);  // wrapped like real 40-bit hardware
}

}  // namespace
}  // namespace ilat
