#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ilat {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextEventTime(), kNever);
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunUntil(1'000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 1'000);
}

TEST(EventQueueTest, TiesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  q.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesToEachEvent) {
  EventQueue q;
  Cycles seen = -1;
  q.ScheduleAt(42, [&] { seen = q.now(); });
  q.RunNext();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(q.now(), 42);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const auto id = q.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double-cancel
  q.RunUntil(100);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelledEventsSkippedInNextEventTime) {
  EventQueue q;
  const auto early = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextEventTime(), 20);
}

TEST(EventQueueTest, CallbackCanScheduleWithinWindow) {
  EventQueue q;
  std::vector<Cycles> times;
  q.ScheduleAt(10, [&] {
    times.push_back(q.now());
    q.ScheduleAt(15, [&] { times.push_back(q.now()); });
  });
  q.RunUntil(20);
  EXPECT_EQ(times, (std::vector<Cycles>{10, 15}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunNext();
  Cycles fired_at = 0;
  q.ScheduleAfter(50, [&] { fired_at = q.now(); });
  q.RunUntil(200);
  EXPECT_EQ(fired_at, 150);
}

TEST(EventQueueTest, AdvanceToMovesClockWithoutFiring) {
  EventQueue q;
  bool fired = false;
  q.ScheduleAt(500, [&] { fired = true; });
  q.AdvanceTo(400);
  EXPECT_EQ(q.now(), 400);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, FiredCountTracksCallbacks) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) {
    q.ScheduleAt(i, [] {});
  }
  q.RunUntil(10);
  EXPECT_EQ(q.fired_count(), 7u);
}

TEST(EventQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  const auto a = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
}

}  // namespace
}  // namespace ilat
