// Event-queue contract suite.
//
// Every behavioural test here is typed over both the production EventQueue
// (slot-map heap + SmallCallback, PR 8) and the pre-PR-8
// ReferenceEventQueue oracle, so the two implementations are pinned to the
// same observable contract -- ordering, FIFO tie-breaks, cancel semantics,
// lazy-skim interplay.  Implementation-specific sections then cover what
// only the new queue promises: always-on invariant checks that abort in
// release builds, bounded heap memory under cancel churn, stale-id safety
// across slot reuse, and the SmallCallback storage itself.  A differential
// fuzz run drives both queues with the same operation stream and demands
// identical firing order.

#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/reference_event_queue.h"
#include "src/sim/small_callback.h"

namespace ilat {
namespace {

template <typename Q>
class EventQueueContractTest : public ::testing::Test {};

using QueueImpls = ::testing::Types<EventQueue, ReferenceEventQueue>;
TYPED_TEST_SUITE(EventQueueContractTest, QueueImpls);

TYPED_TEST(EventQueueContractTest, StartsAtTimeZeroEmpty) {
  TypeParam q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextEventTime(), kNever);
  EXPECT_EQ(q.PendingCount(), 0u);
}

TYPED_TEST(EventQueueContractTest, FiresInTimeOrder) {
  TypeParam q;
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunUntil(1'000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 1'000);
}

TYPED_TEST(EventQueueContractTest, TiesFireFifo) {
  TypeParam q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  q.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TYPED_TEST(EventQueueContractTest, TiesFireFifoAcrossInterleavedCancels) {
  // Cancelling some members of a same-cycle batch must not perturb the
  // insertion order of the survivors.
  TypeParam q;
  std::vector<int> order;
  std::vector<typename TypeParam::EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(q.ScheduleAt(50, [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(q.Cancel(ids[1]));
  EXPECT_TRUE(q.Cancel(ids[3]));
  q.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 5}));
}

TYPED_TEST(EventQueueContractTest, ClockAdvancesToEachEvent) {
  TypeParam q;
  Cycles seen = -1;
  q.ScheduleAt(42, [&] { seen = q.now(); });
  q.RunNext();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(q.now(), 42);
}

TYPED_TEST(EventQueueContractTest, CancelPreventsFiring) {
  TypeParam q;
  bool fired = false;
  const auto id = q.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double-cancel
  q.RunUntil(100);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.Empty());
}

TYPED_TEST(EventQueueContractTest, CancelAfterFireReturnsFalse) {
  TypeParam q;
  const auto id = q.ScheduleAt(10, [] {});
  q.RunUntil(10);
  EXPECT_FALSE(q.Cancel(id));
}

TYPED_TEST(EventQueueContractTest, CancelNoEventSentinelReturnsFalse) {
  TypeParam q;
  q.ScheduleAt(10, [] {});
  EXPECT_FALSE(q.Cancel(TypeParam::kNoEvent));
  EXPECT_EQ(q.PendingCount(), 1u);
}

TYPED_TEST(EventQueueContractTest, CancelledEventsSkippedInNextEventTime) {
  TypeParam q;
  const auto early = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextEventTime(), 20);
}

TYPED_TEST(EventQueueContractTest, PendingCountAndNextTimeStableAfterSkim) {
  // NextEventTime() lazily skims cancelled heap tops; the counters must
  // agree before and after that internal mutation.
  TypeParam q;
  const auto a = q.ScheduleAt(10, [] {});
  const auto b = q.ScheduleAt(20, [] {});
  q.ScheduleAt(30, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextEventTime(), 20);  // forces a skim of `a`
  EXPECT_EQ(q.PendingCount(), 2u);
  EXPECT_FALSE(q.Empty());
  q.Cancel(b);
  EXPECT_EQ(q.NextEventTime(), 30);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_EQ(q.NextEventTime(), 30);  // idempotent once skimmed
}

TYPED_TEST(EventQueueContractTest, CallbackCanScheduleWithinWindow) {
  TypeParam q;
  std::vector<Cycles> times;
  q.ScheduleAt(10, [&] {
    times.push_back(q.now());
    q.ScheduleAt(15, [&] { times.push_back(q.now()); });
  });
  q.RunUntil(20);
  EXPECT_EQ(times, (std::vector<Cycles>{10, 15}));
}

TYPED_TEST(EventQueueContractTest, CallbackSchedulingExactlyAtWindowEndFires) {
  // An event scheduled by a callback due exactly at RunUntil's `t` is
  // still inside the window (RunUntil fires everything due <= t).
  TypeParam q;
  std::vector<Cycles> times;
  q.ScheduleAt(10, [&] { q.ScheduleAt(20, [&] { times.push_back(q.now()); }); });
  q.RunUntil(20);
  EXPECT_EQ(times, (std::vector<Cycles>{20}));
  EXPECT_TRUE(q.Empty());
}

TYPED_TEST(EventQueueContractTest, ScheduleAfterUsesCurrentTime) {
  TypeParam q;
  q.ScheduleAt(100, [] {});
  q.RunNext();
  Cycles fired_at = 0;
  q.ScheduleAfter(50, [&] { fired_at = q.now(); });
  q.RunUntil(200);
  EXPECT_EQ(fired_at, 150);
}

TYPED_TEST(EventQueueContractTest, AdvanceToMovesClockWithoutFiring) {
  TypeParam q;
  bool fired = false;
  q.ScheduleAt(500, [&] { fired = true; });
  q.AdvanceTo(400);
  EXPECT_EQ(q.now(), 400);
  EXPECT_FALSE(fired);
}

TYPED_TEST(EventQueueContractTest, FiredCountTracksCallbacks) {
  TypeParam q;
  for (int i = 0; i < 7; ++i) {
    q.ScheduleAt(i, [] {});
  }
  q.RunUntil(10);
  EXPECT_EQ(q.fired_count(), 7u);
}

TYPED_TEST(EventQueueContractTest, PendingCountExcludesCancelled) {
  TypeParam q;
  const auto a = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
}

// ---------------------------------------------------------------------------
// Production-queue specifics: stale ids across slot reuse.

TEST(EventQueueTest, StaleIdAfterFireNeverCancelsASuccessor) {
  // The fired event's storage slot is recycled for the next schedule; the
  // generation stamp must keep the old id from reaching the new event.
  EventQueue q;
  const auto a = q.ScheduleAt(10, [] {});
  q.RunUntil(10);
  bool fired = false;
  q.ScheduleAt(20, [&] { fired = true; });
  EXPECT_FALSE(q.Cancel(a));  // stale: must not hit the reused slot
  q.RunUntil(20);
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, IdsRemainDistinctAcrossHeavyReuse) {
  EventQueue q;
  EventQueue::EventId last = EventQueue::kNoEvent;
  for (int i = 0; i < 1'000; ++i) {
    const auto id = q.ScheduleAt(q.now() + 1, [] {});
    EXPECT_NE(id, EventQueue::kNoEvent);
    EXPECT_NE(id, last);
    last = id;
    q.RunUntil(q.now() + 1);
  }
}

// ---------------------------------------------------------------------------
// Bounded memory under cancel churn (the lazy-deletion leak PR 8 fixed).

TEST(EventQueueTest, CancelChurnKeepsHeapBounded) {
  // A server-style workload: every request schedules a timeout and nearly
  // every timeout is cancelled.  The heap must stay proportional to the
  // *live* count, not the total ever scheduled.
  EventQueue q;
  std::vector<EventQueue::EventId> pending;
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 50'000; ++i) {
    pending.push_back(q.ScheduleAt(q.now() + 1 + static_cast<Cycles>(next() % 1'000),
                                   [] {}));
    if (pending.size() > 8) {
      const std::size_t victim = next() % pending.size();
      q.Cancel(pending[victim]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_LE(q.heap_size(), 2 * q.PendingCount() + EventQueue::kCompactionFloor)
        << "at iteration " << i;
  }
  EXPECT_LE(q.PendingCount(), 9u);
}

TEST(EventQueueTest, ScheduleCancelPairsLeaveNoResidue) {
  EventQueue q;
  for (int i = 0; i < 100'000; ++i) {
    const auto id = q.ScheduleAt(q.now() + 100, [] {});
    ASSERT_TRUE(q.Cancel(id));
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_LE(q.heap_size(), EventQueue::kCompactionFloor);
}

TEST(EventQueueTest, CancelDestroysCallbackImmediately) {
  // Cancelled events must not pin their captures until compaction: the
  // callback is destroyed inside Cancel().
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const auto id = q.ScheduleAt(10, [held = std::move(token)] { (void)held; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------------
// Always-on invariant checks: these must abort in *release* builds too
// (they replaced assert()s that compiled out under NDEBUG).

using EventQueueDeathTest = ::testing::Test;

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.ScheduleAt(100, [] {});
        q.RunNext();  // now == 100
        q.ScheduleAt(50, [] {});
      },
      "event-queue invariant violated: ScheduleAt");
}

TEST(EventQueueDeathTest, AdvancingBackwardsAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.ScheduleAt(100, [] {});
        q.RunNext();
        q.AdvanceTo(50);
      },
      "event-queue invariant violated: AdvanceTo: time cannot go backwards");
}

TEST(EventQueueDeathTest, AdvancingOverADueEventAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.ScheduleAt(10, [] {});
        q.AdvanceTo(20);
      },
      "event-queue invariant violated: AdvanceTo: events due before target");
}

TEST(EventQueueDeathTest, RunNextOnEmptyQueueAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.RunNext();
      },
      "event-queue invariant violated: RunNext: no pending events");
}

// ---------------------------------------------------------------------------
// SmallCallback storage semantics.

TEST(SmallCallbackTest, InvokesInlineCapture) {
  int hits = 0;
  SmallCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(SmallCallbackTest, LargeCaptureFallsBackToHeapAndStillRuns) {
  struct Big {
    char payload[200];  // > kInlineBytes: forces the heap path
  };
  Big big{};
  big.payload[199] = 42;
  int seen = 0;
  SmallCallback cb([big, &seen] { seen = big.payload[199]; });
  static_assert(sizeof(big) > SmallCallback::kInlineBytes);
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(SmallCallbackTest, ResetDestroysHeldCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  SmallCallback cb([held = std::move(token)] { (void)held; });
  EXPECT_FALSE(watch.expired());
  cb.Reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(SmallCallbackTest, DestructorReleasesHeapFallback) {
  struct Big {
    std::shared_ptr<int> held;
    char pad[120];
    void operator()() const {}
  };
  static_assert(sizeof(Big) > SmallCallback::kInlineBytes);
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    SmallCallback cb(Big{std::move(token), {}});
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SmallCallbackTest, MoveTransfersOwnershipOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  int hits = 0;
  SmallCallback a([held = std::move(token), &hits] { ++hits; });
  SmallCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  b.Reset();
  EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------------
// Differential fuzz: one operation stream, two queues, identical history.

TEST(EventQueueDifferentialTest, RandomOpStreamMatchesReference) {
  EventQueue nq;
  ReferenceEventQueue rq;
  std::vector<int> new_log;
  std::vector<int> ref_log;
  // Outstanding ids, index-aligned between the two queues (the id values
  // themselves differ by design -- slot reuse vs. monotone counter).
  std::vector<std::pair<EventQueue::EventId, ReferenceEventQueue::EventId>> ids;

  std::uint64_t rng = 0xdeadbeefcafef00dULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t r = next();
    const int op = static_cast<int>(r % 100);
    if (op < 55) {
      const Cycles when = nq.now() + static_cast<Cycles>(next() % 500);
      const int tag = step;
      ids.emplace_back(nq.ScheduleAt(when, [&new_log, tag] { new_log.push_back(tag); }),
                       rq.ScheduleAt(when, [&ref_log, tag] { ref_log.push_back(tag); }));
    } else if (op < 75 && !ids.empty()) {
      const std::size_t victim = next() % ids.size();
      const bool a = nq.Cancel(ids[victim].first);
      const bool b = rq.Cancel(ids[victim].second);
      ASSERT_EQ(a, b) << "cancel verdicts diverged at step " << step;
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (op < 90) {
      const Cycles until = nq.now() + static_cast<Cycles>(next() % 800);
      nq.RunUntil(until);
      rq.RunUntil(until);
    } else {
      ASSERT_EQ(nq.NextEventTime(), rq.NextEventTime()) << "at step " << step;
    }
    ASSERT_EQ(nq.now(), rq.now()) << "clocks diverged at step " << step;
    ASSERT_EQ(nq.PendingCount(), rq.PendingCount()) << "at step " << step;
    ASSERT_EQ(nq.fired_count(), rq.fired_count()) << "at step " << step;
    ASSERT_EQ(new_log, ref_log) << "firing order diverged at step " << step;
    ASSERT_LE(nq.heap_size(), 2 * nq.PendingCount() + EventQueue::kCompactionFloor);
  }
  EXPECT_GT(new_log.size(), 1'000u) << "fuzz run fired suspiciously few events";
}

}  // namespace
}  // namespace ilat
