// Randomized (fuzz-style) tests: the event queue against a reference
// model, scheduler time accounting under random load, and the full
// measurement pipeline on random scripts.  All seeds fixed -- failures
// reproduce exactly.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/workloads.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace ilat {
namespace {

TEST(EventQueueFuzzTest, MatchesReferenceModelOrder) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Random rng(seed);
    EventQueue q;
    // Reference: (time, insertion order) -> id, fired in that order.
    std::multimap<std::pair<Cycles, int>, int> reference;
    std::vector<int> fired;
    std::map<int, EventQueue::EventId> live;
    int next_tag = 0;

    for (int op = 0; op < 2'000; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.55) {
        // Schedule at a random future time.
        const Cycles when = q.now() + rng.UniformInt(0, 10'000);
        const int tag = next_tag++;
        const auto id = q.ScheduleAt(when, [tag, &fired] { fired.push_back(tag); });
        reference.emplace(std::make_pair(when, tag), tag);
        live[tag] = id;
      } else if (dice < 0.7 && !live.empty()) {
        // Cancel a random live event.
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.UniformInt(
                             0, static_cast<std::int64_t>(live.size()) - 1)));
        ASSERT_TRUE(q.Cancel(it->second));
        for (auto rit = reference.begin(); rit != reference.end(); ++rit) {
          if (rit->second == it->first) {
            reference.erase(rit);
            break;
          }
        }
        live.erase(it);
      } else if (!q.Empty()) {
        // Fire the next event.
        q.RunNext();
        ASSERT_FALSE(reference.empty());
        const int expected = reference.begin()->second;
        reference.erase(reference.begin());
        live.erase(expected);
        ASSERT_FALSE(fired.empty());
        ASSERT_EQ(fired.back(), expected) << "seed " << seed << " op " << op;
      }
    }

    // Drain everything; order must match the reference exactly.
    while (!q.Empty()) {
      q.RunNext();
      ASSERT_FALSE(reference.empty());
      ASSERT_EQ(fired.back(), reference.begin()->second);
      reference.erase(reference.begin());
    }
    EXPECT_TRUE(reference.empty());
  }
}

// Thread that randomly computes and blocks; wakes are scheduled externally.
class ChaosThread : public SimThread {
 public:
  ChaosThread(std::string name, int priority, Random* rng, EventQueue* q, Scheduler* s)
      : SimThread(std::move(name), priority), rng_(rng), queue_(q), scheduler_(s) {}

  ThreadAction NextAction() override {
    const double dice = rng_->NextDouble();
    if (dice < 0.6) {
      return ThreadAction::Compute(Work{rng_->UniformInt(0, 50'000), WorkProfile{}});
    }
    if (dice < 0.9) {
      // Block with a scheduled wake.
      queue_->ScheduleAfter(rng_->UniformInt(1, 100'000),
                            [this] { scheduler_->Wake(this); });
      return ThreadAction::Block();
    }
    return ThreadAction::Compute(Work{0, WorkProfile{}});  // zero-cycle action
  }

 private:
  Random* rng_;
  EventQueue* queue_;
  Scheduler* scheduler_;
};

class IdleForever : public SimThread {
 public:
  IdleForever() : SimThread("idle", 0) {}
  ThreadAction NextAction() override {
    return ThreadAction::Compute(Work{kCyclesPerMillisecond, WorkProfile{}});
  }
};

TEST(SchedulerFuzzTest, TimeAccountingAlwaysBalances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Random rng(seed * 77);
    EventQueue q;
    HardwareCounters c;
    Scheduler s(&q, &c);

    IdleForever idle;
    s.AddThread(&idle);
    std::vector<std::unique_ptr<ChaosThread>> threads;
    const int nthreads = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < nthreads; ++i) {
      threads.push_back(std::make_unique<ChaosThread>(
          "chaos" + std::to_string(i), static_cast<int>(rng.UniformInt(1, 12)), &rng, &q, &s));
      s.AddThread(threads.back().get());
    }
    // Random interrupts.
    for (int i = 0; i < 50; ++i) {
      q.ScheduleAt(rng.UniformInt(0, SecondsToCycles(1.0)), [&s, &rng] {
        s.QueueInterrupt(Work{rng.UniformInt(100, 20'000), WorkProfile{}});
      });
    }

    const Cycles horizon = SecondsToCycles(1.0);
    s.RunUntil(horizon);

    // With an always-runnable idle thread, every cycle is accounted for.
    EXPECT_EQ(s.idle_thread_cycles() + s.busy_thread_cycles() + s.interrupt_cycles(), horizon)
        << "seed " << seed;
    EXPECT_EQ(q.now(), horizon);
    EXPECT_EQ(c.Get(HwEvent::kInterrupts), 50u);
  }
}

TEST(SessionFuzzTest, RandomScriptsNeverBreakInvariants) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    Random rng(seed);
    Script script;
    const int n = static_cast<int>(rng.UniformInt(5, 60));
    for (int i = 0; i < n; ++i) {
      const double dice = rng.NextDouble();
      const double pause = rng.Uniform(0.0, 400.0);  // including saturation
      if (dice < 0.5) {
        script.push_back(ScriptItem::Char(static_cast<char>(rng.UniformInt('a', 'z')), pause));
      } else if (dice < 0.7) {
        script.push_back(ScriptItem::Key(
            static_cast<int>(rng.UniformInt(kVkPageDown, kVkEnd)), pause));
      } else if (dice < 0.85) {
        script.push_back(ScriptItem::Char('\n', pause));
      } else {
        script.push_back(ScriptItem::Click(pause, rng.Uniform(30.0, 200.0)));
      }
    }

    const auto personalities = AllPersonalities();
    const OsProfile& os =
        personalities[static_cast<std::size_t>(rng.UniformInt(0, 2))];
    SessionOptions opts;
    opts.driver = rng.Bernoulli(0.5) ? DriverKind::kTest : DriverKind::kHuman;
    MeasurementSession session(os, opts);
    session.AttachApp(std::make_unique<NotepadApp>());
    const SessionResult r = session.Run(script);

    // Invariants.
    for (std::size_t i = 1; i < r.trace.size(); ++i) {
      ASSERT_LT(r.trace[i - 1].timestamp, r.trace[i].timestamp);
    }
    const BusyProfile busy = r.MakeBusyProfile();
    ASSERT_LE(busy.TotalBusy(), r.gt_busy_cycles + r.trace_period);
    for (const EventRecord& e : r.events) {
      ASSERT_GE(e.latency(), 0) << os.name << " seed " << seed;
      ASSERT_LE(e.start, e.retrieved);
      ASSERT_LE(e.retrieved, e.end);
      ASSERT_LE(e.busy, e.wall + r.trace_period);
    }
    Cycles fsm_total = 0;
    for (Cycles t : r.user_state_totals) {
      fsm_total += t;
    }
    ASSERT_EQ(fsm_total, r.run_end);
  }
}

}  // namespace
}  // namespace ilat
