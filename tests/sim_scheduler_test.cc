#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/hardware_counters.h"

namespace ilat {
namespace {

// Scripted thread: executes a fixed list of actions.
class ScriptedThread : public SimThread {
 public:
  ScriptedThread(std::string name, int priority) : SimThread(std::move(name), priority) {}

  void Push(ThreadAction a) { actions_.push_back(std::move(a)); }

  ThreadAction NextAction() override {
    if (next_ >= actions_.size()) {
      return ThreadAction::Finish();
    }
    return actions_[next_++];
  }

 private:
  std::vector<ThreadAction> actions_;
  std::size_t next_ = 0;
};

Work Ms(double ms) {
  WorkProfile p;
  return Work::FromMilliseconds(ms, p);
}

class RecordingObserver : public CpuObserver {
 public:
  void OnCpuBusy(Cycles t) override { transitions.push_back({t, true}); }
  void OnCpuIdle(Cycles t) override { transitions.push_back({t, false}); }
  std::vector<std::pair<Cycles, bool>> transitions;
};

TEST(SchedulerTest, RunsComputeToCompletionAndAdvancesClock) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread t("t", 5);
  bool done = false;
  t.Push(ThreadAction::Compute(Ms(2.0), [&] { done = true; }));
  s.AddThread(&t);
  s.RunUntil(MillisecondsToCycles(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(q.now(), MillisecondsToCycles(10));
  EXPECT_EQ(s.busy_thread_cycles(), MillisecondsToCycles(2.0));
}

TEST(SchedulerTest, HigherPriorityRunsFirst) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  std::vector<int> order;
  ScriptedThread lo("lo", 1);
  ScriptedThread hi("hi", 9);
  lo.Push(ThreadAction::Compute(Ms(1.0), [&] { order.push_back(1); }));
  hi.Push(ThreadAction::Compute(Ms(1.0), [&] { order.push_back(9); }));
  s.AddThread(&lo);
  s.AddThread(&hi);
  s.RunUntil(MillisecondsToCycles(5));
  EXPECT_EQ(order, (std::vector<int>{9, 1}));
}

TEST(SchedulerTest, InterruptWorkPreemptsThreads) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread t("t", 5);
  Cycles thread_done_at = 0;
  t.Push(ThreadAction::Compute(Ms(2.0), [&] { thread_done_at = q.now(); }));
  s.AddThread(&t);
  // Interrupt arrives at 1 ms and steals 0.5 ms.
  Cycles isr_done_at = 0;
  q.ScheduleAt(MillisecondsToCycles(1.0), [&] {
    s.QueueInterrupt(Ms(0.5), [&] { isr_done_at = q.now(); });
  });
  s.RunUntil(MillisecondsToCycles(10));
  EXPECT_EQ(isr_done_at, MillisecondsToCycles(1.5));
  EXPECT_EQ(thread_done_at, MillisecondsToCycles(2.5));  // +0.5 ms stolen
  EXPECT_EQ(c.Get(HwEvent::kInterrupts), 1u);
}

TEST(SchedulerTest, BlockedThreadResumesOnWake) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread t("t", 5);
  Cycles resumed_at = 0;
  t.Push(ThreadAction::Block());
  t.Push(ThreadAction::Compute(Ms(1.0), [&] { resumed_at = q.now(); }));
  s.AddThread(&t);
  q.ScheduleAt(MillisecondsToCycles(3.0), [&] { s.Wake(&t); });
  s.RunUntil(MillisecondsToCycles(10));
  EXPECT_EQ(resumed_at, MillisecondsToCycles(4.0));
}

TEST(SchedulerTest, IdleThreadTimeCountsAsIdle) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread idle("idle", 0);
  for (int i = 0; i < 100; ++i) {
    idle.Push(ThreadAction::Compute(Ms(1.0)));
  }
  s.AddThread(&idle);
  s.RunUntil(MillisecondsToCycles(10));
  EXPECT_EQ(s.idle_thread_cycles(), MillisecondsToCycles(10));
  EXPECT_EQ(s.busy_thread_cycles(), 0);
  EXPECT_FALSE(s.cpu_busy());
}

TEST(SchedulerTest, CpuObserverSeesBusyIdleTransitions) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  RecordingObserver obs;
  s.AddCpuObserver(&obs);
  ScriptedThread t("t", 5);
  t.Push(ThreadAction::Compute(Ms(1.0)));
  s.AddThread(&t);
  s.RunUntil(MillisecondsToCycles(5));
  ASSERT_GE(obs.transitions.size(), 2u);
  EXPECT_EQ(obs.transitions[0], (std::pair<Cycles, bool>{0, true}));
  EXPECT_EQ(obs.transitions[1], (std::pair<Cycles, bool>{MillisecondsToCycles(1.0), false}));
}

TEST(SchedulerTest, PreemptedIdleLoopElongates) {
  // The core phenomenon behind the paper's methodology: a higher-priority
  // thread's work elongates the idle thread's pass.
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread idle("idle", 0);
  std::vector<Cycles> stamps;
  for (int i = 0; i < 10; ++i) {
    idle.Push(ThreadAction::Compute(Ms(1.0), [&] { stamps.push_back(q.now()); }));
  }
  s.AddThread(&idle);
  ScriptedThread busy("busy", 5);
  s.AddThread(&busy);  // no actions yet: finishes immediately
  q.ScheduleAt(MillisecondsToCycles(2.5), [&] {
    s.QueueInterrupt(Ms(3.0));
  });
  s.RunUntil(MillisecondsToCycles(20));
  ASSERT_GE(stamps.size(), 6u);
  // First two records at 1, 2 ms.  The third is delayed by the 3 ms ISR.
  EXPECT_EQ(stamps[0], MillisecondsToCycles(1.0));
  EXPECT_EQ(stamps[1], MillisecondsToCycles(2.0));
  EXPECT_EQ(stamps[2], MillisecondsToCycles(6.0));  // 3 + 3 stolen
  EXPECT_EQ(stamps[3], MillisecondsToCycles(7.0));
}

TEST(SchedulerTest, StridedActionReportsExactBoundariesUnderPreemption) {
  // One 10 ms strided action must report its 1 ms boundaries at exactly
  // the times ten separate 1 ms actions would have completed, even when a
  // mid-action ISR splits the work into multiple slices.
  auto run = [](bool strided) {
    EventQueue q;
    HardwareCounters c;
    Scheduler s(&q, &c);
    ScriptedThread t("t", 5);
    std::vector<Cycles> stamps;
    if (strided) {
      t.Push(ThreadAction::ComputeStrided(
          Ms(10.0), MillisecondsToCycles(1.0),
          [&stamps](Cycles first, Cycles stride, std::uint64_t count) {
            for (std::uint64_t i = 0; i < count; ++i) {
              stamps.push_back(first + static_cast<Cycles>(i) * stride);
            }
          }));
    } else {
      for (int i = 0; i < 10; ++i) {
        t.Push(ThreadAction::Compute(Ms(1.0), [&] { stamps.push_back(q.now()); }));
      }
    }
    s.AddThread(&t);
    q.ScheduleAt(MillisecondsToCycles(4.5), [&] { s.QueueInterrupt(Ms(2.0)); });
    s.RunUntil(MillisecondsToCycles(30.0));
    return stamps;
  };
  const std::vector<Cycles> strided = run(true);
  ASSERT_EQ(strided.size(), 10u);
  EXPECT_EQ(strided, run(false));
  // Boundaries before the ISR land on the undisturbed schedule; the ISR
  // at 4.5 ms delays every later boundary by its 2 ms.
  EXPECT_EQ(strided[3], MillisecondsToCycles(4.0));
  EXPECT_EQ(strided[4], MillisecondsToCycles(7.0));
}

TEST(SchedulerTest, CountersAccrueFromWorkProfile) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread t("t", 5);
  WorkProfile p;
  p.ipc = 1.0;
  p.data_refs_per_instr = 0.5;
  t.Push(ThreadAction::Compute(Work{1'000'000, p}));
  s.AddThread(&t);
  s.RunUntil(2'000'000);
  EXPECT_EQ(c.Get(HwEvent::kInstructions), 1'000'000u);
  EXPECT_EQ(c.Get(HwEvent::kDataRefs), 500'000u);
}

TEST(SchedulerTest, EqualPriorityRoundRobinByAction) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  std::vector<char> order;
  ScriptedThread a("a", 5);
  ScriptedThread b("b", 5);
  a.Push(ThreadAction::Compute(Ms(1.0), [&] { order.push_back('a'); }));
  a.Push(ThreadAction::Compute(Ms(1.0), [&] { order.push_back('a'); }));
  b.Push(ThreadAction::Compute(Ms(1.0), [&] { order.push_back('b'); }));
  b.Push(ThreadAction::Compute(Ms(1.0), [&] { order.push_back('b'); }));
  s.AddThread(&a);
  s.AddThread(&b);
  s.RunUntil(MillisecondsToCycles(10));
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'a', 'b'}));
}

TEST(SchedulerTest, ZeroCycleComputeCompletesImmediately) {
  EventQueue q;
  HardwareCounters c;
  Scheduler s(&q, &c);
  ScriptedThread t("t", 5);
  bool done = false;
  t.Push(ThreadAction::Compute(Work{0, WorkProfile{}}, [&] { done = true; }));
  s.AddThread(&t);
  s.RunUntil(100);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace ilat
