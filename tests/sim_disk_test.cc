#include "src/sim/disk.h"

#include <gtest/gtest.h>

#include "src/sim/buffer_cache.h"

namespace ilat {
namespace {

struct DiskFixture {
  EventQueue q;
  HardwareCounters c;
  Scheduler s{&q, &c};
  Random rng{1};
  DiskParams params;
  Disk MakeDisk() {
    DiskParams p = params;
    p.seek_jitter = 0.0;  // deterministic service times for the tests
    return Disk(&q, &s, &rng, p, Work{1'000, WorkProfile{}});
  }
};

TEST(DiskTest, RandomReadCostsSeekPlusRotationPlusTransfer) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  Cycles done_at = 0;
  d.SubmitRead(1'000, 4, [&] { done_at = f.q.now(); });
  f.s.RunUntil(SecondsToCycles(1.0));
  // 0.5 ctrl + 10 seek + 5.556 rotation + 16KB/4MBps = 4.096 ms transfer.
  const double expect_ms = 0.5 + 10.0 + (60'000.0 / 5'400.0) / 2.0 + 16'384.0 / 4.0 / 1'000.0;
  EXPECT_NEAR(CyclesToMilliseconds(done_at), expect_ms, 0.1);
  EXPECT_EQ(d.completed_requests(), 1u);
  EXPECT_EQ(d.blocks_transferred(), 4u);
}

TEST(DiskTest, SequentialReadSkipsSeekAndRotation) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  Cycles first = 0;
  Cycles second = 0;
  d.SubmitRead(100, 4, [&] { first = f.q.now(); });
  d.SubmitRead(104, 4, [&] { second = f.q.now(); });  // starts where head ends
  f.s.RunUntil(SecondsToCycles(1.0));
  const double sequential_ms = CyclesToMilliseconds(second - first);
  // 0.5 ctrl + 2.0 track-to-track + 4.096 transfer.
  EXPECT_NEAR(sequential_ms, 0.5 + 2.0 + 4.096, 0.1);
  EXPECT_LT(second - first, first);  // sequential much cheaper than random
}

TEST(DiskTest, RequestsCompleteFifo) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  std::vector<int> order;
  d.SubmitRead(5'000, 1, [&] { order.push_back(1); });
  d.SubmitRead(9'000, 1, [&] { order.push_back(2); });
  d.SubmitWrite(2'000, 1, [&] { order.push_back(3); });
  f.s.RunUntil(SecondsToCycles(1.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DiskTest, CompletionRunsThroughInterrupt) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  bool done = false;
  d.SubmitRead(1'000, 1, [&] { done = true; });
  f.s.RunUntil(SecondsToCycles(1.0));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.c.Get(HwEvent::kInterrupts), 1u);
  EXPECT_EQ(f.s.interrupt_cycles(), 1'000);
}

TEST(DiskTest, JitterIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    HardwareCounters c;
    Scheduler s(&q, &c);
    Random rng(seed);
    DiskParams p;
    Disk d(&q, &s, &rng, p, Work{1'000, WorkProfile{}});
    Cycles done_at = 0;
    d.SubmitRead(1'000, 4, [&] { done_at = q.now(); });
    s.RunUntil(SecondsToCycles(1.0));
    return done_at;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// --------------------------------------------------------------------------
// Buffer cache

struct CacheFixture : DiskFixture {
  CacheFixture() : disk(MakeDisk()), cache(&disk, &s, 8, Work{500, WorkProfile{}}) {}
  Disk disk;
  BufferCache cache;
};

TEST(BufferCacheTest, MissGoesToDiskThenHits) {
  CacheFixture f;
  int done = 0;
  f.cache.Read(10, 2, [&] { ++done; });
  f.s.RunUntil(SecondsToCycles(1.0));
  EXPECT_EQ(done, 1);
  EXPECT_EQ(f.cache.misses(), 2u);
  EXPECT_EQ(f.disk.completed_requests(), 1u);

  f.cache.Read(10, 2, [&] { ++done; });
  f.s.RunUntil(SecondsToCycles(2.0));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f.cache.hits(), 2u);
  EXPECT_EQ(f.disk.completed_requests(), 1u);  // no new disk traffic
}

TEST(BufferCacheTest, FullHitCostsOnlyCopyInterrupt) {
  CacheFixture f;
  f.cache.Read(0, 4, [] {});
  f.s.RunUntil(SecondsToCycles(1.0));
  const Cycles before = f.q.now();
  Cycles done_at = 0;
  f.cache.Read(0, 4, [&] { done_at = f.q.now(); });
  f.s.RunUntil(SecondsToCycles(2.0));
  EXPECT_EQ(done_at - before, 500);  // just the copy work
}

TEST(BufferCacheTest, PartialMissCoalescesRuns) {
  CacheFixture f;
  f.cache.Read(2, 2, [] {});  // blocks 2,3 resident
  f.s.RunUntil(SecondsToCycles(1.0));
  const auto disk_before = f.disk.completed_requests();
  bool done = false;
  f.cache.Read(0, 8, [&] { done = true; });  // misses 0-1 and 4-7: two runs
  f.s.RunUntil(SecondsToCycles(2.0));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.disk.completed_requests() - disk_before, 2u);
}

TEST(BufferCacheTest, LruEvictsOldest) {
  CacheFixture f;  // capacity 8 blocks
  f.cache.Read(0, 8, [] {});
  f.s.RunUntil(SecondsToCycles(1.0));
  EXPECT_TRUE(f.cache.Contains(0));
  // Touch 0-3 so 4-7 become the LRU victims, then read 4 new blocks.
  f.cache.Read(0, 4, [] {});
  f.s.RunUntil(SecondsToCycles(2.0));
  f.cache.Read(100, 4, [] {});
  f.s.RunUntil(SecondsToCycles(3.0));
  EXPECT_TRUE(f.cache.Contains(0));
  EXPECT_TRUE(f.cache.Contains(3));
  EXPECT_FALSE(f.cache.Contains(4));
  EXPECT_FALSE(f.cache.Contains(7));
  EXPECT_TRUE(f.cache.Contains(100));
  EXPECT_EQ(f.cache.ResidentBlocks(), 8u);
}

TEST(BufferCacheTest, WriteThroughPopulatesCache) {
  CacheFixture f;
  bool done = false;
  f.cache.Write(20, 2, [&] { done = true; });
  f.s.RunUntil(SecondsToCycles(1.0));
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.cache.Contains(20));
  EXPECT_TRUE(f.cache.Contains(21));
  EXPECT_EQ(f.disk.completed_requests(), 1u);
}

TEST(BufferCacheTest, ClearDropsEverything) {
  CacheFixture f;
  f.cache.Read(0, 4, [] {});
  f.s.RunUntil(SecondsToCycles(1.0));
  f.cache.Clear();
  EXPECT_EQ(f.cache.ResidentBlocks(), 0u);
  EXPECT_FALSE(f.cache.Contains(0));
}

}  // namespace
}  // namespace ilat
