// Robustness and edge-case coverage across modules: truncated session
// files, extractor option interplay, filesystem boundaries, CLI media /
// terminal paths, and Win32 charge bookkeeping.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "src/apps/media_player.h"
#include "src/apps/powerpoint.h"
#include "src/core/measurement.h"
#include "src/core/session_io.h"
#include "src/tools/cli.h"

namespace ilat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Session I/O robustness.

TEST(SessionIoRobustnessTest, TruncatedFilesRejectedAtEveryStage) {
  // Build a valid file, then truncate it at several byte counts; every
  // prefix must be rejected cleanly (no crash, false return).
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptPageDown, 100.0, "pd"));
  const SessionResult r = session.Run(s);
  const std::string path = TempPath("full.ilat");
  ASSERT_TRUE(SaveSessionResult(path, r));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string full = buf.str();

  for (std::size_t cut : {std::size_t{5}, full.size() / 10, full.size() / 3,
                          full.size() / 2, full.size() - 3}) {
    const std::string tpath = TempPath("truncated.ilat");
    {
      std::ofstream out(tpath);
      out << full.substr(0, cut);
    }
    SessionResult loaded;
    EXPECT_FALSE(LoadSessionResult(tpath, &loaded)) << "cut at " << cut;
  }
}

TEST(SessionIoRobustnessTest, WrongVersionRejected) {
  const std::string path = TempPath("version.ilat");
  {
    std::ofstream out(path);
    out << "ilat-session 999\nmeta 1 0 0 0 0\n";
  }
  SessionResult r;
  EXPECT_FALSE(LoadSessionResult(path, &r));
}

TEST(SessionIoRobustnessTest, EmptySessionRoundTrips) {
  SessionResult empty;
  empty.trace_period = kCyclesPerMillisecond;
  const std::string path = TempPath("empty.ilat");
  ASSERT_TRUE(SaveSessionResult(path, empty));
  SessionResult loaded;
  ASSERT_TRUE(LoadSessionResult(path, &loaded));
  EXPECT_TRUE(loaded.events.empty());
  EXPECT_TRUE(loaded.trace.empty());
  EXPECT_EQ(loaded.trace_period, kCyclesPerMillisecond);
}

// ---------------------------------------------------------------------------
// Extractor option interplay.

TEST(ExtractorOptionsTest, MergeAndIoWaitCompose) {
  // PowerPoint save: sync I/O wait counted; the merge flag must not
  // disturb it (there are no timers in the save path).
  SessionOptions opts;
  opts.merge_timer_cascades = true;
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptSave, 100.0, "Save document"));
  const SessionResult r = session.Run(s);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_GT(r.events[0].io_wait, 0);
  EXPECT_GT(r.events[0].latency_ms(), 5'000.0);
}

// ---------------------------------------------------------------------------
// FileSystem boundaries.

TEST(FileSystemEdgeTest, ReadAtExactExtentEnd) {
  SystemUnderTest sys(MakeNt40(), 1);
  FileSystem& fs = sys.fs();
  const int bs = fs.block_size();
  const FileId f = fs.Create("edge", 3 * bs);
  bool done = false;
  fs.Read(f, 2 * bs, bs, [&] { done = true; });  // the last block exactly
  sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_TRUE(done);
}

TEST(FileSystemEdgeTest, NonBlockAlignedFileSizeRoundsUp) {
  SystemUnderTest sys(MakeNt40(), 1);
  FileSystem& fs = sys.fs();
  const FileId f = fs.Create("odd", 5'000);  // 1.2 blocks
  bool done = false;
  fs.ReadAll(f, [&] { done = true; });
  sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_TRUE(done);
  EXPECT_EQ(sys.sim().cache().misses(), 2u);  // two blocks
}

// ---------------------------------------------------------------------------
// CLI: the newer app paths.

std::pair<int, std::string> Capture(const CliOptions& options) {
  const std::string path = TempPath("cli-robust-out.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  const int rc = RunCli(options, f);
  std::fclose(f);
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return {rc, out.str()};
}

TEST(CliAppsTest, TerminalRunsNetworkWorkload) {
  CliOptions o;
  o.app = "terminal";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("| events"), std::string::npos);
  EXPECT_NE(out.find("200"), std::string::npos);  // default packet count
}

TEST(CliAppsTest, MediaRunsPlayback) {
  CliOptions o;
  o.app = "media";
  const auto [rc, out] = Capture(o);
  EXPECT_EQ(rc, 0);
  // Playback itself generates no user-input events; the command does.
  EXPECT_NE(out.find("| events"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Win32 charge bookkeeping.

TEST(Win32ChargeTest, GuiCallsChargeExactMissCounts) {
  const OsProfile os = MakeNt351();  // 2 crossings per call
  HardwareCounters c;
  Win32Subsystem w(&os, &c);
  w.ChargeGuiCalls(5);
  EXPECT_EQ(c.Get(HwEvent::kItlbMiss),
            static_cast<std::uint64_t>(10 * os.crossing.itlb_refill_misses));
  w.ChargeCrossings(0);
  w.ChargeCrossings(-3);  // no-ops
  EXPECT_EQ(c.Get(HwEvent::kItlbMiss),
            static_cast<std::uint64_t>(10 * os.crossing.itlb_refill_misses));
}

TEST(Win32ChargeTest, Win95GuiCallsChargeNothing) {
  const OsProfile os = MakeWin95();  // same-context 16-bit GDI: 0 crossings
  HardwareCounters c;
  Win32Subsystem w(&os, &c);
  w.ChargeGuiCalls(100);
  EXPECT_EQ(c.Get(HwEvent::kItlbMiss), 0u);
}

// ---------------------------------------------------------------------------
// Media player edge cases.

TEST(MediaPlayerEdgeTest, ZeroFramesIsANoOp) {
  SessionOptions opts;
  opts.drain_after = SecondsToCycles(1.0);
  MeasurementSession session(MakeNt40(), opts);
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Script s;
  // param == kCmdMediaPlay exactly -> default length; +1 -> one frame.
  s.push_back(ScriptItem::Command(kCmdMediaPlay + 1, 50.0, "play"));
  session.Run(s);
  EXPECT_EQ(player->frames().size(), 1u);
  EXPECT_FALSE(player->playing());
}

}  // namespace
}  // namespace ilat
