// Property-style tests: invariants that must hold across OS personalities,
// applications, drivers, and seeds (parameterized gtest sweeps).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/apps/notepad.h"
#include "src/apps/word.h"
#include "src/core/measurement.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

struct PropertyParam {
  const char* os;
  std::uint64_t seed;
  DriverKind driver;
};

OsProfile ProfileByName(const std::string& name) {
  for (OsProfile& os : AllPersonalities()) {
    if (os.name == name) {
      return os;
    }
  }
  ADD_FAILURE() << "unknown OS " << name;
  return MakeNt40();
}

class SessionInvariants : public ::testing::TestWithParam<PropertyParam> {
 protected:
  SessionResult RunNotepad() {
    SessionOptions opts;
    opts.driver = GetParam().driver;
    MeasurementSession session(ProfileByName(GetParam().os), opts);
    session.AttachApp(std::make_unique<NotepadApp>());
    Random rng(GetParam().seed);
    // Shortened Notepad-like workload for test speed.
    Script s;
    TypistParams tp;
    Typist typist(tp, &rng);
    Script typed = typist.Type(GenerateProse(&rng, 220, 2));
    s.insert(s.end(), typed.begin(), typed.end());
    s.push_back(ScriptItem::Key(kVkPageDown, 500.0, "page"));
    return session.Run(s);
  }
};

TEST_P(SessionInvariants, TraceStrictlyIncreasing) {
  const SessionResult r = RunNotepad();
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    ASSERT_LT(r.trace[i - 1].timestamp, r.trace[i].timestamp);
  }
}

TEST_P(SessionInvariants, EveryPostedInputBecomesOneEvent) {
  const SessionResult r = RunNotepad();
  EXPECT_EQ(r.events.size(), r.posted.size());
}

TEST_P(SessionInvariants, LatenciesPositiveAndBounded) {
  const SessionResult r = RunNotepad();
  for (const EventRecord& e : r.events) {
    ASSERT_GT(e.latency(), 0);
    ASSERT_LE(e.busy, e.wall + r.trace_period);
    ASSERT_LT(e.latency_ms(), 1'000.0);  // nothing pathological in Notepad
  }
}

TEST_P(SessionInvariants, EventWindowsNested) {
  const SessionResult r = RunNotepad();
  for (const EventRecord& e : r.events) {
    ASSERT_LE(e.start, e.end);
    ASSERT_EQ(e.wall, e.end - e.start);
  }
}

TEST_P(SessionInvariants, InferredBusyNeverExceedsGroundTruth) {
  const SessionResult r = RunNotepad();
  const BusyProfile busy = r.MakeBusyProfile();
  // The idle-loop instrument can only see busy time that actually
  // happened; allow one period of edge slack.
  EXPECT_LE(busy.TotalBusy(), r.gt_busy_cycles + r.trace_period);
  // And it should account for almost all of it while the trace covers the
  // run.
  EXPECT_GT(busy.TotalBusy(), r.gt_busy_cycles * 8 / 10);
}

TEST_P(SessionInvariants, UserStateTotalsPartitionTime) {
  const SessionResult r = RunNotepad();
  Cycles total = 0;
  for (Cycles c : r.user_state_totals) {
    total += c;
  }
  EXPECT_EQ(total, r.run_end);
}

TEST_P(SessionInvariants, FsmIntervalsContiguous) {
  const SessionResult r = RunNotepad();
  for (std::size_t i = 1; i < r.user_state_intervals.size(); ++i) {
    ASSERT_EQ(r.user_state_intervals[i].begin, r.user_state_intervals[i - 1].end);
    ASSERT_NE(r.user_state_intervals[i].state, r.user_state_intervals[i - 1].state);
  }
}

TEST_P(SessionInvariants, CountersMonotoneAndConsistent) {
  const SessionResult r = RunNotepad();
  EXPECT_GT(r.counters[HwEvent::kInstructions], 0u);
  EXPECT_GT(r.counters[HwEvent::kInterrupts], 0u);
  // Data refs accompany instructions.
  EXPECT_GT(r.counters[HwEvent::kDataRefs], r.counters[HwEvent::kInstructions] / 100);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SessionInvariants,
    ::testing::Values(
        PropertyParam{"nt351", 1, DriverKind::kTest},
        PropertyParam{"nt351", 2, DriverKind::kHuman},
        PropertyParam{"nt40", 1, DriverKind::kTest},
        PropertyParam{"nt40", 3, DriverKind::kHuman},
        PropertyParam{"win95", 1, DriverKind::kTest},
        PropertyParam{"win95", 4, DriverKind::kHuman},
        PropertyParam{"nt40", 5, DriverKind::kTestNoSync}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name = info.param.os;
      name += "_seed";
      name += std::to_string(info.param.seed);
      switch (info.param.driver) {
        case DriverKind::kTest:
          name += "_test";
          break;
        case DriverKind::kTestNoSync:
          name += "_nosync";
          break;
        case DriverKind::kHuman:
          name += "_human";
          break;
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Idle-period sweep: the instrument's resolution/trace-size trade-off
// (paper §2.3: larger N = coarser accuracy, smaller N = bigger buffer).

class IdlePeriodSweep : public ::testing::TestWithParam<double> {};

TEST_P(IdlePeriodSweep, BusyInferenceDegradesGracefully) {
  const double period_ms = GetParam();
  SessionOptions opts;
  opts.idle_period = MillisecondsToCycles(period_ms);
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<NotepadApp>());
  Random rng(9);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 150)));
  const BusyProfile busy = r.MakeBusyProfile();
  // Total inferred busy time is period-independent (gap arithmetic is
  // exact in aggregate) ...
  EXPECT_NEAR(static_cast<double>(busy.TotalBusy()),
              static_cast<double>(r.gt_busy_cycles),
              static_cast<double>(r.gt_busy_cycles) * 0.2 +
                  static_cast<double>(opts.idle_period));
  // ... while trace size shrinks with the period.
  EXPECT_LT(r.trace.size(), static_cast<std::size_t>(
                                CyclesToMilliseconds(r.run_end) / period_ms) +
                                2);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, IdlePeriodSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           const int us = static_cast<int>(info.param * 1'000);
                           return "period_" + std::to_string(us) + "us";
                         });

// ---------------------------------------------------------------------------
// Word driver-mode property: Test inflates keystroke latency, manual
// shifts the same work to background (paper §5.4) -- on both NT systems.

class WordDriverEffect : public ::testing::TestWithParam<const char*> {};

TEST_P(WordDriverEffect, TestDriverInflatesForegroundLatency) {
  auto run = [&](DriverKind kind) {
    SessionOptions opts;
    opts.driver = kind;
    MeasurementSession session(ProfileByName(GetParam()), opts);
    auto word = std::make_unique<WordApp>();
    WordApp* word_ptr = word.get();
    session.AttachApp(std::move(word));
    Random rng(21);
    TypistParams tp;
    Typist typist(tp, &rng);
    const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 260)));
    double mean = 0.0;
    int n = 0;
    for (const EventRecord& e : r.events) {
      if (e.type == MessageType::kChar && e.param != '\n') {
        mean += e.latency_ms();
        ++n;
      }
    }
    return std::pair<double, double>{mean / n, word_ptr->background_ms_executed()};
  };
  const auto [test_mean, test_bg] = run(DriverKind::kTest);
  const auto [human_mean, human_bg] = run(DriverKind::kHuman);
  EXPECT_GT(test_mean, 2.0 * human_mean);
  EXPECT_GT(human_bg, test_bg);
}

INSTANTIATE_TEST_SUITE_P(NtSystems, WordDriverEffect,
                         ::testing::Values("nt351", "nt40"));

}  // namespace
}  // namespace ilat
