#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/apps/desktop.h"
#include "src/apps/notepad.h"
#include "src/input/driver.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"
#include "src/os/personalities.h"
#include "src/sim/message_queue.h"

namespace ilat {
namespace {

// ---------------------------------------------------------------------------
// Typist.

TEST(TypistTest, ReproducesTextInOrder) {
  Random rng(5);
  TypistParams tp;
  tp.typo_probability = 0.0;
  Typist typist(tp, &rng);
  const Script s = typist.Type("abc d");
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0].param, 'a');
  EXPECT_EQ(s[4].param, 'd');
  for (const auto& item : s) {
    EXPECT_EQ(item.kind, ScriptItem::Kind::kChar);
  }
}

TEST(TypistTest, PausesRespectMinimumGap) {
  Random rng(5);
  TypistParams tp;
  tp.typo_probability = 0.0;
  Typist typist(tp, &rng);
  const Script s = typist.Type(GenerateProse(&rng, 400));
  for (const auto& item : s) {
    EXPECT_GE(item.pause_before_ms, tp.min_gap_ms);
  }
}

TEST(TypistTest, MeanPaceMatchesWpm) {
  Random rng(5);
  TypistParams tp;
  tp.words_per_minute = 100.0;
  tp.typo_probability = 0.0;
  tp.sentence_pause_mean_ms = 0.0;
  Typist typist(tp, &rng);
  // ~120 ms/char at 100 wpm ("even the best typists require approximately
  // 120 ms per keystroke", paper §2).
  EXPECT_NEAR(typist.MeanGapMs(), 109.0, 3.0);
  const Script s = typist.Type(GenerateProse(&rng, 2'000));
  double total = 0.0;
  for (const auto& item : s) {
    total += item.pause_before_ms;
  }
  EXPECT_NEAR(total / static_cast<double>(s.size()), typist.MeanGapMs(), 25.0);
}

TEST(TypistTest, TyposProduceBackspaceCorrections) {
  Random rng(5);
  TypistParams tp;
  tp.typo_probability = 0.3;
  Typist typist(tp, &rng);
  const Script s = typist.Type(GenerateProse(&rng, 500));
  int backspaces = 0;
  for (const auto& item : s) {
    if (item.kind == ScriptItem::Kind::kKeyDown && item.param == kVkBackspace) {
      ++backspaces;
    }
  }
  EXPECT_GT(backspaces, 20);
}

TEST(TypistTest, NewlineTypedPromptly) {
  Random rng(5);
  TypistParams tp;
  tp.typo_probability = 0.0;
  Typist typist(tp, &rng);
  const Script s = typist.Type("ab.\ncd");
  // Find the newline: pause must be small even after the sentence end.
  for (const auto& item : s) {
    if (item.param == '\n') {
      EXPECT_LE(item.pause_before_ms, 300.0);
      return;
    }
  }
  FAIL() << "no newline in script";
}

TEST(TypistTest, DeterministicForSeed) {
  TypistParams tp;
  Random r1(99), r2(99);
  Typist t1(tp, &r1), t2(tp, &r2);
  const Script a = t1.Type("hello world this is text.");
  const Script b = t2.Type("hello world this is text.");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].param, b[i].param);
    EXPECT_DOUBLE_EQ(a[i].pause_before_ms, b[i].pause_before_ms);
  }
}

// ---------------------------------------------------------------------------
// Workloads.

TEST(WorkloadsTest, ProseApproximatesLength) {
  Random rng(1);
  const std::string text = GenerateProse(&rng, 1'000);
  EXPECT_GE(text.size(), 1'000u);
  EXPECT_LT(text.size(), 1'100u);
}

TEST(WorkloadsTest, ProseNewlinesControlled) {
  Random rng(1);
  const std::string text = GenerateProse(&rng, 2'000, 2);
  int newlines = 0;
  for (char c : text) {
    newlines += (c == '\n') ? 1 : 0;
  }
  EXPECT_GT(newlines, 3);
}

TEST(WorkloadsTest, NotepadWorkloadShape) {
  Random rng(42);
  const Script s = NotepadWorkload(&rng);
  int chars = 0, pages = 0, arrows = 0;
  for (const auto& item : s) {
    if (item.kind == ScriptItem::Kind::kChar) {
      ++chars;
    } else if (item.param == kVkPageDown || item.param == kVkPageUp) {
      ++pages;
    } else {
      ++arrows;
    }
  }
  // ~1300 typed characters (paper §5.1) plus cursor/page movement.
  EXPECT_GT(chars, 1'100);
  EXPECT_LT(chars, 1'600);
  EXPECT_EQ(pages, 10);
  EXPECT_GE(arrows, 140);
}

TEST(WorkloadsTest, WordWorkloadShape) {
  Random rng(42);
  const Script s = WordWorkload(&rng);
  int chars = 0;
  for (const auto& item : s) {
    chars += (item.kind == ScriptItem::Kind::kChar) ? 1 : 0;
  }
  // ~1000-character paragraph (paper §5.4).
  EXPECT_GT(chars, 900);
  EXPECT_LT(chars, 1'300);
}

TEST(WorkloadsTest, PowerpointWorkloadHasTable1Labels) {
  Random rng(42);
  const Script s = PowerpointWorkload(&rng);
  auto has_label = [&](const std::string& label) {
    for (const auto& item : s) {
      if (item.label == label) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_label("Start Powerpoint"));
  EXPECT_TRUE(has_label("Open document"));
  EXPECT_TRUE(has_label("Start OLE edit session (first time)"));
  EXPECT_TRUE(has_label("Start OLE edit session (second object)"));
  EXPECT_TRUE(has_label("Start OLE edit session (third object)"));
  EXPECT_TRUE(has_label("Save document"));
  // Keystroke pacing "at least 150 ms" between events.
  for (const auto& item : s) {
    EXPECT_GE(item.pause_before_ms, 150.0);
  }
}

// ---------------------------------------------------------------------------
// Drivers.

struct DriverFixture {
  DriverFixture() : sys(MakeNt40(), 1) {
    app = std::make_unique<DesktopApp>();
    thread = std::make_unique<GuiThread>(&sys, app.get());
    sys.sim().scheduler().AddThread(thread.get());
    sys.Boot();
  }
  SystemUnderTest sys;
  std::unique_ptr<DesktopApp> app;
  std::unique_ptr<GuiThread> thread;
};

TEST(TestDriverTest, PostsAllEventsAndFinishes) {
  DriverFixture f;
  TestDriver driver(&f.sys, f.thread.get(), KeystrokeTrials(5, 100.0));
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.posted().size(), 5u);
  EXPECT_GT(driver.finished_at(), 0);
}

TEST(TestDriverTest, InjectsQueueSyncAfterEachEvent) {
  DriverFixture f;
  TestDriver driver(&f.sys, f.thread.get(), KeystrokeTrials(3, 100.0));
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  // 3 keystrokes + 3 syncs were posted to the queue.
  EXPECT_EQ(f.thread->queue().posted_count(), 6u);
}

TEST(TestDriverTest, NoSyncModeOmitsQueueSync) {
  DriverFixture f;
  TestDriver driver(&f.sys, f.thread.get(), KeystrokeTrials(3, 100.0),
                    /*inject_queuesync=*/false);
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(f.thread->queue().posted_count(), 3u);
}

TEST(TestDriverTest, SerializesOnSyncCompletion) {
  DriverFixture f;
  Script s = KeystrokeTrials(2, 50.0);
  TestDriver driver(&f.sys, f.thread.get(), s);
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  ASSERT_EQ(driver.posted().size(), 2u);
  // Second injection happens at least pause after the first sync retired,
  // which itself is after the first keystroke's processing.
  const Cycles gap = driver.posted()[1].posted_at - driver.posted()[0].posted_at;
  EXPECT_GT(gap, MillisecondsToCycles(50.0));
}

TEST(TestDriverTest, MouseClickPostsDownAndUp) {
  DriverFixture f;
  TestDriver driver(&f.sys, f.thread.get(), ClickTrials(1, 100.0, 80.0));
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  EXPECT_TRUE(driver.done());
  // down + up + sync.
  EXPECT_EQ(f.thread->queue().posted_count(), 3u);
}

TEST(HumanDriverTest, WallClockPacingIndependentOfSystem) {
  DriverFixture f;
  Script s;
  for (int i = 0; i < 4; ++i) {
    s.push_back(ScriptItem::Key(kVkDown, 250.0));
  }
  HumanDriver driver(&f.sys, f.thread.get(), s);
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  ASSERT_EQ(driver.posted().size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    const Cycles gap = driver.posted()[i].posted_at - driver.posted()[i - 1].posted_at;
    EXPECT_EQ(gap, MillisecondsToCycles(250.0));
  }
  EXPECT_TRUE(driver.done());
}

TEST(HumanDriverTest, NoQueueSyncEver) {
  DriverFixture f;
  HumanDriver driver(&f.sys, f.thread.get(), KeystrokeTrials(3, 100.0));
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  EXPECT_EQ(f.thread->queue().posted_count(), 3u);
}

TEST(DriverTest, EmptyScriptFinishesImmediately) {
  DriverFixture f;
  TestDriver td(&f.sys, f.thread.get(), Script{});
  td.Start();
  EXPECT_TRUE(td.done());
  HumanDriver hd(&f.sys, f.thread.get(), Script{});
  hd.Start();
  EXPECT_TRUE(hd.done());
}

// ---------------------------------------------------------------------------
// Human-driver fault recovery.

// Drops the first `remaining` fault-eligible posts, then lets everything
// through -- a deterministic stand-in for the injector's drop stream.
struct DropFirstNPolicy : MessageFaultPolicy {
  int remaining = 0;
  MessageFaultAction OnPost(const Message&) override {
    if (remaining > 0) {
      --remaining;
      return MessageFaultAction::kDrop;
    }
    return MessageFaultAction::kNone;
  }
};

TEST(HumanDriverRetryTest, RetriesDroppedKeystrokeAfterBackoff) {
  DriverFixture f;
  Script s;
  s.push_back(ScriptItem::Key(kVkDown, 200.0));
  DropFirstNPolicy policy;
  policy.remaining = 1;
  f.thread->queue().SetFaultPolicy(&policy);
  HumanDriver driver(&f.sys, f.thread.get(), s);
  EXPECT_TRUE(driver.recovers_input());
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.input_retries(), 1u);
  EXPECT_EQ(driver.input_abandons(), 0u);
  ASSERT_EQ(driver.posted().size(), 1u);
  // The landed post is the second attempt, but posted_at keeps the FIRST
  // attempt's time: the user has been waiting since then.
  EXPECT_EQ(driver.posted()[0].attempt, 1);
  EXPECT_EQ(f.thread->queue().dropped_count(), 1u);
  EXPECT_EQ(f.thread->queue().posted_count(), 1u);
}

TEST(HumanDriverRetryTest, RetryWaitObserverBracketsTheBackoff) {
  DriverFixture f;
  Script s;
  s.push_back(ScriptItem::Key(kVkDown, 200.0));
  DropFirstNPolicy policy;
  policy.remaining = 1;
  f.thread->queue().SetFaultPolicy(&policy);
  HumanDriver driver(&f.sys, f.thread.get(), s);
  std::vector<std::pair<Cycles, bool>> transitions;
  driver.SetRetryWaitObserver(
      [&](Cycles t, bool pending) { transitions.emplace_back(t, pending); });
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_TRUE(transitions[0].second);
  EXPECT_FALSE(transitions[1].second);
  // Backoff is max(floor 120 ms, half the 200 ms pause) = 120 ms; the
  // bracket additionally spans one ISR dispatch, well under a millisecond.
  const Cycles span = transitions[1].first - transitions[0].first;
  EXPECT_GE(span, MillisecondsToCycles(120.0));
  EXPECT_LT(span, MillisecondsToCycles(121.0));
}

TEST(HumanDriverRetryTest, AbandonsAfterBoundedRetriesAndStillFinishes) {
  DriverFixture f;
  DropFirstNPolicy policy;
  policy.remaining = 1'000'000;  // drop everything, forever
  f.thread->queue().SetFaultPolicy(&policy);
  HumanRetryPolicy rp;
  rp.max_retries = 2;
  HumanDriver driver(&f.sys, f.thread.get(), KeystrokeTrials(2, 100.0), rp);
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(10.0));
  // The user gives up on each item after 1 + 2 attempts and the script
  // completes -- abandonment is structured, not a hang.
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.input_retries(), 4u);   // 2 retries per item
  EXPECT_EQ(driver.input_abandons(), 2u);  // both items given up
  EXPECT_TRUE(driver.posted().empty());    // nothing ever landed
}

TEST(HumanDriverRetryTest, DisabledRetryPreservesLegacySemantics) {
  DriverFixture f;
  DropFirstNPolicy policy;
  policy.remaining = 1'000'000;
  f.thread->queue().SetFaultPolicy(&policy);
  HumanRetryPolicy rp;
  rp.enabled = false;
  HumanDriver driver(&f.sys, f.thread.get(), KeystrokeTrials(2, 100.0), rp);
  EXPECT_FALSE(driver.recovers_input());
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  // Legacy behaviour: the dropped posts are recorded anyway (the extractor
  // skips never-retrieved seqs) and nothing retries.
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.input_retries(), 0u);
  EXPECT_EQ(driver.input_abandons(), 0u);
  EXPECT_EQ(driver.posted().size(), 2u);
}

TEST(HumanDriverRetryTest, DroppedClickRepressesAndSuppressesOrphanRelease) {
  DriverFixture f;
  DropFirstNPolicy policy;
  policy.remaining = 1;  // only the first mouse-down drops
  f.thread->queue().SetFaultPolicy(&policy);
  HumanDriver driver(&f.sys, f.thread.get(), ClickTrials(1, 100.0, 80.0));
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(5.0));
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.input_retries(), 1u);
  ASSERT_EQ(driver.posted().size(), 1u);
  EXPECT_EQ(driver.posted()[0].attempt, 1);
  // Exactly one down + one up reached the queue: the release paired with
  // the dropped press was suppressed, not posted as an orphan.
  EXPECT_EQ(f.thread->queue().posted_count(), 2u);
  EXPECT_EQ(f.thread->queue().dropped_count(), 1u);
}

TEST(DriverTest, PostedLabelsSurvive) {
  DriverFixture f;
  Script s;
  s.push_back(ScriptItem::Key(kVkDown, 10.0, "my-label"));
  TestDriver driver(&f.sys, f.thread.get(), s);
  driver.Start();
  f.sys.sim().RunFor(SecondsToCycles(2.0));
  ASSERT_EQ(driver.posted().size(), 1u);
  EXPECT_EQ(driver.posted()[0].label, "my-label");
}

}  // namespace
}  // namespace ilat
