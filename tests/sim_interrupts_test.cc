#include "src/sim/interrupts.h"

#include <gtest/gtest.h>

namespace ilat {
namespace {

struct Fixture {
  EventQueue q;
  HardwareCounters c;
  Scheduler s{&q, &c};
};

TEST(PeriodicDeviceTest, TicksAtPeriod) {
  Fixture f;
  int ticks = 0;
  PeriodicDevice dev(&f.q, &f.s, MillisecondsToCycles(10), Work{400, WorkProfile{}},
                     [&] { ++ticks; });
  dev.Start();
  // Run just past the last boundary so the final tick's handler retires.
  f.s.RunUntil(MillisecondsToCycles(100) + 10'000);
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(dev.ticks(), 10u);
  EXPECT_EQ(f.c.Get(HwEvent::kInterrupts), 10u);
}

TEST(PeriodicDeviceTest, TicksAlignToPeriodBoundaries) {
  Fixture f;
  std::vector<Cycles> at;
  PeriodicDevice dev(&f.q, &f.s, MillisecondsToCycles(10), Work{0, WorkProfile{}},
                     [&] { at.push_back(f.q.now()); });
  // Start mid-period: first tick should land on the next boundary.
  f.q.ScheduleAt(MillisecondsToCycles(3), [&] { dev.Start(); });
  f.s.RunUntil(MillisecondsToCycles(35));
  ASSERT_GE(at.size(), 3u);
  EXPECT_EQ(at[0], MillisecondsToCycles(10));
  EXPECT_EQ(at[1], MillisecondsToCycles(20));
  EXPECT_EQ(at[2], MillisecondsToCycles(30));
}

TEST(PeriodicDeviceTest, HandlerWorkStealsCpuTime) {
  Fixture f;
  PeriodicDevice dev(&f.q, &f.s, MillisecondsToCycles(10), Work{400, WorkProfile{}});
  dev.Start();
  f.s.RunUntil(SecondsToCycles(1.0) + 10'000);
  // 100 ticks x 400 cycles (the paper's NT 4.0 clock ISR cost).
  EXPECT_EQ(f.s.interrupt_cycles(), 100 * 400);
}

TEST(PeriodicDeviceTest, StopCancelsFutureTicks) {
  Fixture f;
  int ticks = 0;
  PeriodicDevice dev(&f.q, &f.s, MillisecondsToCycles(10), Work{0, WorkProfile{}},
                     [&] { ++ticks; });
  dev.Start();
  f.q.ScheduleAt(MillisecondsToCycles(25), [&] { dev.Stop(); });
  f.s.RunUntil(MillisecondsToCycles(100));
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(dev.running());
}

TEST(PeriodicDeviceTest, StartIsIdempotent) {
  Fixture f;
  int ticks = 0;
  PeriodicDevice dev(&f.q, &f.s, MillisecondsToCycles(10), Work{0, WorkProfile{}},
                     [&] { ++ticks; });
  dev.Start();
  dev.Start();
  f.s.RunUntil(MillisecondsToCycles(30) + 10'000);
  EXPECT_EQ(ticks, 3);  // not doubled
}

}  // namespace
}  // namespace ilat
