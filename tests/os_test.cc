#include <gtest/gtest.h>

#include "src/os/filesystem.h"
#include "src/os/personalities.h"
#include "src/os/system.h"
#include "src/os/win32.h"

namespace ilat {
namespace {

// ---------------------------------------------------------------------------
// Personalities: structural invariants the paper attributes results to.

TEST(PersonalitiesTest, ThreePersonalitiesWithDistinctNames) {
  const auto all = AllPersonalities();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "nt351");
  EXPECT_EQ(all[1].name, "nt40");
  EXPECT_EQ(all[2].name, "win95");
}

TEST(PersonalitiesTest, Nt351CrossesMoreDomainsThanNt40) {
  const OsProfile nt351 = MakeNt351();
  const OsProfile nt40 = MakeNt40();
  EXPECT_GT(nt351.get_message_crossings, nt40.get_message_crossings);
  EXPECT_GT(nt351.gui_call_crossings, nt40.gui_call_crossings);
}

TEST(PersonalitiesTest, Win95Runs16BitGuiCode) {
  const OsProfile w95 = MakeWin95();
  const OsProfile nt40 = MakeNt40();
  EXPECT_GT(w95.gui_code.seg_loads_per_kinstr, 10 * nt40.gui_code.seg_loads_per_kinstr);
  EXPECT_GT(w95.gui_code.unaligned_per_kinstr, 10 * nt40.gui_code.unaligned_per_kinstr);
  EXPECT_TRUE(w95.mouse_busy_wait);
  EXPECT_TRUE(w95.defers_idle_after_events);
  EXPECT_FALSE(nt40.mouse_busy_wait);
}

TEST(PersonalitiesTest, Nt40ClockInterruptMatchesPaper) {
  // Paper §2.5: smallest clock interrupt handling overhead under NT 4.0
  // was about 400 cycles, every 10 ms.
  const OsProfile nt40 = MakeNt40();
  EXPECT_EQ(nt40.clock_isr_cycles, 400);
  EXPECT_EQ(nt40.clock_period, MillisecondsToCycles(10));
}

TEST(PersonalitiesTest, Win95HasMoreBackgroundActivity) {
  double W95Cps = 0, Nt40Cps = 0;
  for (const auto& t : MakeWin95().background_tasks) {
    W95Cps += static_cast<double>(t.handler_cycles) / CyclesToSeconds(t.period);
  }
  for (const auto& t : MakeNt40().background_tasks) {
    Nt40Cps += static_cast<double>(t.handler_cycles) / CyclesToSeconds(t.period);
  }
  EXPECT_GT(W95Cps, Nt40Cps);
}

TEST(PersonalitiesTest, SanityOfAllProfiles) {
  for (const OsProfile& os : AllPersonalities()) {
    EXPECT_GT(os.clock_period, 0) << os.name;
    EXPECT_GT(os.app_code.ipc, 0.0) << os.name;
    EXPECT_GT(os.gui_code.ipc, 0.0) << os.name;
    EXPECT_GT(os.kernel_code.ipc, 0.0) << os.name;
    EXPECT_GE(os.get_message_crossings, 0) << os.name;
    EXPECT_GT(os.disk.transfer_mb_per_s, 0.0) << os.name;
    EXPECT_GT(os.cache_blocks, 0) << os.name;
  }
}

// ---------------------------------------------------------------------------
// Win32 cost model.

TEST(Win32Test, CrossingWorkIncludesTlbRefill) {
  const OsProfile os = MakeNt40();
  HardwareCounters c;
  Win32Subsystem w(&os, &c);
  const Work one = w.CrossingWork(1);
  EXPECT_EQ(one.cycles, os.crossing.TotalCycles());
  const Work four = w.CrossingWork(4);
  EXPECT_EQ(four.cycles, 4 * one.cycles);
}

TEST(Win32Test, ChargeCrossingsAddsTlbMisses) {
  const OsProfile os = MakeNt40();
  HardwareCounters c;
  Win32Subsystem w(&os, &c);
  w.ChargeCrossings(3);
  EXPECT_EQ(c.Get(HwEvent::kItlbMiss),
            static_cast<std::uint64_t>(3 * os.crossing.itlb_refill_misses));
  EXPECT_EQ(c.Get(HwEvent::kDtlbMiss),
            static_cast<std::uint64_t>(3 * os.crossing.dtlb_refill_misses));
}

TEST(Win32Test, GetMessageCostReflectsArchitecture) {
  HardwareCounters c;
  const OsProfile nt351 = MakeNt351();
  const OsProfile nt40 = MakeNt40();
  Win32Subsystem w351(&nt351, &c);
  Win32Subsystem w40(&nt40, &c);
  // NT 3.51's LPC round trip through the user-level server costs more.
  EXPECT_GT(w351.GetMessageWork().cycles, w40.GetMessageWork().cycles);
}

TEST(Win32Test, TextMultipliersOrderPerOs) {
  HardwareCounters c;
  const OsProfile nt351 = MakeNt351();
  const OsProfile nt40 = MakeNt40();
  const OsProfile w95 = MakeWin95();
  Win32Subsystem s351(&nt351, &c);
  Win32Subsystem s40(&nt40, &c);
  Win32Subsystem s95(&w95, &c);
  const double kinstr = 200.0;
  // GDI text: W95 fastest (hand-tuned 16-bit), NT 3.51 slowest (server).
  EXPECT_LT(s95.GuiTextWork(kinstr, 2).cycles, s40.GuiTextWork(kinstr, 2).cycles);
  EXPECT_LT(s40.GuiTextWork(kinstr, 2).cycles, s351.GuiTextWork(kinstr, 2).cycles);
  // Complex graphics: NT 4.0 fastest, then W95, then NT 3.51 (Fig. 9).
  EXPECT_LT(s40.GuiGraphicsWork(kinstr, 2).cycles, s95.GuiGraphicsWork(kinstr, 2).cycles);
  EXPECT_LT(s95.GuiGraphicsWork(kinstr, 2).cycles, s351.GuiGraphicsWork(kinstr, 2).cycles);
}

TEST(Win32Test, AppWorkUsesAppProfile) {
  const OsProfile os = MakeNt40();
  HardwareCounters c;
  Win32Subsystem w(&os, &c);
  const Work work = w.AppWork(100.0);
  EXPECT_EQ(work.cycles, os.app_code.CyclesForInstructions(100'000.0));
  EXPECT_DOUBLE_EQ(work.profile.ipc, os.app_code.ipc);
}

// ---------------------------------------------------------------------------
// File system.

struct FsFixture {
  FsFixture() {
    sys = std::make_unique<SystemUnderTest>(MakeNt40(), 1);
  }
  std::unique_ptr<SystemUnderTest> sys;
};

TEST(FileSystemTest, CreateAndSize) {
  FsFixture f;
  const FileId id = f.sys->fs().Create("test.dat", 100'000);
  EXPECT_EQ(f.sys->fs().SizeOf(id), 100'000);
  EXPECT_EQ(f.sys->fs().NameOf(id), "test.dat");
}

TEST(FileSystemTest, FilesDoNotShareBlocks) {
  FsFixture f;
  FileSystem& fs = f.sys->fs();
  const FileId a = fs.Create("a", 8'192);
  const FileId b = fs.Create("b", 8'192);
  // Read both fully; all blocks must be distinct (4 misses).
  bool done_a = false;
  bool done_b = false;
  fs.ReadAll(a, [&] { done_a = true; });
  fs.ReadAll(b, [&] { done_b = true; });
  f.sys->sim().RunFor(SecondsToCycles(2.0));
  EXPECT_TRUE(done_a);
  EXPECT_TRUE(done_b);
  EXPECT_EQ(f.sys->sim().cache().misses(), 4u);
}

TEST(FileSystemTest, RereadHitsCache) {
  FsFixture f;
  FileSystem& fs = f.sys->fs();
  const FileId a = fs.Create("a", 64 * 1024);
  fs.ReadAll(a, [] {});
  f.sys->sim().RunFor(SecondsToCycles(2.0));
  const auto misses = f.sys->sim().cache().misses();
  bool done = false;
  fs.Read(a, 0, 64 * 1024, [&] { done = true; });
  f.sys->sim().RunFor(SecondsToCycles(2.0));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.sys->sim().cache().misses(), misses);
}

TEST(FileSystemTest, WriteCompletesAndCaches) {
  FsFixture f;
  FileSystem& fs = f.sys->fs();
  const FileId a = fs.Create("a", 64 * 1024);
  bool done = false;
  fs.Write(a, 0, 16 * 1024, [&] { done = true; });
  f.sys->sim().RunFor(SecondsToCycles(2.0));
  EXPECT_TRUE(done);
  // Re-reading the written range hits the cache.
  const auto misses = f.sys->sim().cache().misses();
  fs.Read(a, 0, 16 * 1024, [] {});
  f.sys->sim().RunFor(SecondsToCycles(2.0));
  EXPECT_EQ(f.sys->sim().cache().misses(), misses);
}

TEST(FileSystemTest, ZeroByteReadCompletesInline) {
  FsFixture f;
  const FileId a = f.sys->fs().Create("a", 4'096);
  bool done = false;
  f.sys->fs().Read(a, 0, 0, [&] { done = true; });
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// SystemUnderTest.

TEST(SystemUnderTestTest, BootStartsClock) {
  SystemUnderTest sys(MakeNt40(), 1);
  sys.Boot();
  sys.sim().RunFor(SecondsToCycles(1.0));
  // 100 clock ticks/s plus housekeeping.
  EXPECT_GE(sys.sim().counters().Get(HwEvent::kInterrupts), 100u);
}

TEST(SystemUnderTestTest, InputInterruptRunsIsrThenDelivers) {
  SystemUnderTest sys(MakeNt40(), 1);
  Cycles delivered_at = -1;
  sys.RaiseKeyboardInterrupt([&] { delivered_at = sys.sim().now(); });
  sys.sim().RunFor(MillisecondsToCycles(1));
  EXPECT_EQ(delivered_at, sys.profile().keyboard_isr_cycles);
}

}  // namespace
}  // namespace ilat
