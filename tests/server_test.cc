// Tests for the multi-user server scenario (src/server/): the bounded
// request queue, response cache, contended lock, parameter parsing, the
// end-to-end scenario (completion, determinism, load sensitivity), and
// the catalog adapter that turns a ScenarioResult into a SessionResult.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/catalog.h"
#include "src/os/personalities.h"
#include "src/server/cache.h"
#include "src/server/lock.h"
#include "src/server/params.h"
#include "src/server/queue.h"
#include "src/server/scenario.h"
#include "src/sim/event_queue.h"

namespace ilat {
namespace server {
namespace {

// ------------------------------------------------------------ params --

TEST(ServerParamsTest, DefaultsAreSane) {
  ServerParams p;
  EXPECT_GE(p.users, 1);
  EXPECT_GE(p.pool_size, 1);
  EXPECT_GE(p.queue_depth, 1);
  EXPECT_GE(p.cache_hit_rate, 0.0);
  EXPECT_LE(p.cache_hit_rate, 1.0);
  EXPECT_GT(p.requests_per_user, 0);
  EXPECT_GT(p.timeout_ms, 0.0);
}

TEST(ServerParamsTest, SetKeyAppliesAndValidates) {
  ServerParams p;
  std::string error;
  EXPECT_TRUE(SetServerParamKey("users", "32", &p, &error)) << error;
  EXPECT_EQ(p.users, 32);
  EXPECT_TRUE(SetServerParamKey("cache_hit_rate", "0.9", &p, &error)) << error;
  EXPECT_DOUBLE_EQ(p.cache_hit_rate, 0.9);
  EXPECT_TRUE(SetServerParamKey("lock_hold_ms", "0", &p, &error)) << error;

  EXPECT_FALSE(SetServerParamKey("users", "0", &p, &error));
  EXPECT_NE(error.find("users"), std::string::npos);
  EXPECT_FALSE(SetServerParamKey("users", "abc", &p, &error));
  EXPECT_FALSE(SetServerParamKey("cache_hit_rate", "1.5", &p, &error));
  EXPECT_FALSE(SetServerParamKey("pool_size", "-1", &p, &error));
  EXPECT_FALSE(SetServerParamKey("bogus", "1", &p, &error));
  EXPECT_NE(error.find("unknown"), std::string::npos);
  // Failed sets leave the params untouched.
  EXPECT_EQ(p.users, 32);
}

TEST(ServerParamsTest, KnownKeysRoundTrip) {
  for (const char* key :
       {"users", "pool_size", "queue_depth", "cache_hit_rate", "requests", "think_ms",
        "service_ms", "timeout_ms", "lock_frac", "lock_hold_ms", "invalidate_rate"}) {
    EXPECT_TRUE(KnownServerParamKey(key)) << key;
  }
  EXPECT_FALSE(KnownServerParamKey("packets"));
  EXPECT_FALSE(KnownServerParamKey(""));
}

// ------------------------------------------------------------- queue --

TEST(RequestQueueTest, BoundsAndCounts) {
  RequestQueue q(2);
  Request r;
  EXPECT_TRUE(q.TryPush(r));
  EXPECT_TRUE(q.TryPush(r));
  EXPECT_FALSE(q.TryPush(r));  // full -> admission rejection
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.high_water(), 2);

  Request out;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_EQ(q.size(), 0);
}

TEST(RequestQueueTest, FifoOrder) {
  RequestQueue q(8);
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.global_seq = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(q.TryPush(r));
  }
  Request out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out.global_seq, static_cast<std::uint64_t>(i + 1));
  }
}

// ------------------------------------------------------------- cache --

TEST(ResponseCacheTest, HitRateIsRespected) {
  ResponseCache always(1.0, 0.0, 7);
  ResponseCache never(0.0, 0.0, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(always.Lookup());
    EXPECT_FALSE(never.Lookup());
  }
  EXPECT_EQ(always.hits(), 50u);
  EXPECT_EQ(never.misses(), 50u);
}

TEST(ResponseCacheTest, InvalidationForcesAColdBurst) {
  // invalidate_rate=1 invalidates on every lookup, so even a hit_rate=1
  // cache misses: each draw re-enters the cold burst.
  ResponseCache c(1.0, 1.0, 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(c.Lookup());
  }
  EXPECT_EQ(c.invalidations(), 10u);
  EXPECT_EQ(c.misses(), 10u);
}

TEST(ResponseCacheTest, DeterministicUnderSeed) {
  ResponseCache a(0.5, 0.1, 42);
  ResponseCache b(0.5, 0.1, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Lookup(), b.Lookup()) << "lookup " << i;
  }
}

// -------------------------------------------------------------- lock --

TEST(SharedLockTest, ContentionQueuesFifoAndAccruesWaitCycles) {
  EventQueue clock;
  SharedLock lock(&clock);
  std::vector<int> order;
  EXPECT_TRUE(lock.Acquire([&] { order.push_back(0); }));  // immediate grant
  EXPECT_FALSE(lock.Acquire([&] { order.push_back(1); }));
  EXPECT_FALSE(lock.Acquire([&] { order.push_back(2); }));
  EXPECT_EQ(lock.contended(), 2u);

  // Advance simulated time so the waiters accrue wait cycles.
  clock.ScheduleAfter(1000, [] {});
  clock.RunUntil(1000);
  lock.Release();  // grants waiter 1
  lock.Release();  // grants waiter 2
  lock.Release();  // frees the lock
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(lock.acquisitions(), 3u);
  EXPECT_GE(lock.wait_cycles(), 2000);  // both waited >= 1000 cycles

  // Free again: the next Acquire is immediate.
  bool granted = lock.Acquire([] {});
  EXPECT_TRUE(granted);
  lock.Release();
}

// ---------------------------------------------------------- scenario --

OsProfile TestOs() { return AllPersonalities()[1]; }  // nt40

ScenarioResult RunSmall(int users, int pool, std::uint64_t seed = 11) {
  ServerParams p;
  p.users = users;
  p.pool_size = pool;
  p.requests_per_user = 10;
  ScenarioOptions opts;
  opts.seed = seed;
  ServerScenario scenario(TestOs(), p, opts);
  return scenario.Run();
}

TEST(ServerScenarioTest, AllRequestsCompleteCleanly) {
  const ScenarioResult r = RunSmall(4, 2);
  EXPECT_TRUE(r.all_users_done);
  EXPECT_EQ(r.counts.completed, 40u);  // 4 users x 10 requests
  EXPECT_EQ(r.counts.abandoned, 0u);
  EXPECT_EQ(r.counts.timeouts, 0u);
  EXPECT_EQ(r.records.size(), 40u);
  EXPECT_FALSE(r.fault.degraded);
  // Every record is causally ordered and charged to a real user.
  for (const RequestRecord& rec : r.records) {
    EXPECT_GE(rec.user, 0);
    EXPECT_LT(rec.user, 4);
    EXPECT_LE(rec.first_submit, rec.picked_up);
    EXPECT_LE(rec.picked_up, rec.completed);
    EXPECT_FALSE(rec.abandoned);
  }
  // The cache saw traffic and split it between hits and misses.
  EXPECT_GT(r.counts.cache_hits + r.counts.cache_misses, 0u);
}

TEST(ServerScenarioTest, DeterministicAcrossRuns) {
  const ScenarioResult a = RunSmall(6, 2, 99);
  const ScenarioResult b = RunSmall(6, 2, 99);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].global_seq, b.records[i].global_seq);
    EXPECT_EQ(a.records[i].completed, b.records[i].completed);
    EXPECT_EQ(a.records[i].io_wait, b.records[i].io_wait);
  }
  EXPECT_EQ(a.counts.cache_hits, b.counts.cache_hits);
  EXPECT_EQ(a.counts.lock_contended, b.counts.lock_contended);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(ServerScenarioTest, SeedChangesTheRun) {
  const ScenarioResult a = RunSmall(6, 2, 1);
  const ScenarioResult b = RunSmall(6, 2, 2);
  EXPECT_NE(a.metrics_json, b.metrics_json);
}

TEST(ServerScenarioTest, MoreUsersMeanMoreQueueingDelay) {
  auto mean_wall_ms = [](const ScenarioResult& r) {
    double total = 0.0;
    for (const RequestRecord& rec : r.records) {
      total += CyclesToMilliseconds(rec.completed - rec.first_submit);
    }
    return total / static_cast<double>(r.records.size());
  };
  const ScenarioResult light = RunSmall(2, 2);
  const ScenarioResult heavy = RunSmall(24, 2);
  EXPECT_GT(mean_wall_ms(heavy), mean_wall_ms(light));
}

TEST(ServerScenarioTest, TinyQueueRejectsAndUsersRetry) {
  ServerParams p;
  p.users = 24;
  p.pool_size = 1;
  p.queue_depth = 1;  // almost everything bounces
  p.requests_per_user = 5;
  p.cache_hit_rate = 0.0;  // every request eats a disk read
  ScenarioOptions opts;
  opts.seed = 5;
  ServerScenario scenario(TestOs(), p, opts);
  const ScenarioResult r = scenario.Run();
  EXPECT_GT(r.counts.rejected, 0u);
  EXPECT_GT(r.counts.retries, 0u);
  // Rejections without an injected fault plan are offered-load physics,
  // not a degraded experiment.
  EXPECT_FALSE(r.fault.enabled);
}

TEST(ServerScenarioTest, ResponseDropFaultsDegradeAndAreCounted) {
  ServerParams p;
  p.users = 8;
  p.pool_size = 2;
  p.requests_per_user = 10;
  ScenarioOptions opts;
  opts.seed = 3;
  opts.faults.mq.drop_rate = 0.5;
  ServerScenario scenario(TestOs(), p, opts);
  const ScenarioResult r = scenario.Run();
  EXPECT_TRUE(r.fault.enabled);
  EXPECT_GT(r.counts.responses_dropped, 0u);
  EXPECT_GT(r.counts.retries, 0u);
  EXPECT_GE(r.fault.mq_dropped, r.counts.responses_dropped);
}

// ----------------------------------------------------------- adapter --

TEST(ServerCatalogTest, RunSpecSessionAdaptsTheScenario) {
  RunSpec spec;
  spec.app = "server";
  spec.seed = 17;
  spec.params.server.users = 4;
  spec.params.server.requests_per_user = 5;
  SessionResult out;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &out, &error)) << error;
  EXPECT_EQ(out.events.size(), 20u);
  EXPECT_EQ(out.posted.size(), 20u);
  std::set<std::uint64_t> seqs;
  Cycles prev_start = 0;
  for (const EventRecord& e : out.events) {
    seqs.insert(e.msg_seq);
    EXPECT_GE(e.start, prev_start);  // sorted by submit time
    prev_start = e.start;
    EXPECT_EQ(e.wall, e.busy + e.io_wait + e.retry_wait);
    EXPECT_EQ(e.label.rfind("u", 0), 0u) << e.label;
  }
  EXPECT_EQ(seqs.size(), 20u);  // distinct logical requests
  // User-state totals cover think and wait time.
  EXPECT_GT(out.user_state_totals[static_cast<int>(UserState::kThink)], 0);
  EXPECT_GT(out.user_state_totals[static_cast<int>(UserState::kWaitCpu)], 0);
}

TEST(ServerCatalogTest, ServerRejectsMismatchedWorkload) {
  RunSpec spec;
  spec.app = "server";
  spec.workload = "keys";
  SessionResult out;
  std::string error;
  EXPECT_FALSE(RunSpecSession(spec, &out, &error));
  EXPECT_NE(error.find("workload"), std::string::npos);
}

TEST(ServerCatalogTest, WorkloadParamKeysCoverServerAndLegacy) {
  EXPECT_TRUE(KnownWorkloadParamKey("users"));
  EXPECT_TRUE(KnownWorkloadParamKey("packets"));
  EXPECT_FALSE(KnownWorkloadParamKey("mq.drop_rate"));
  WorkloadParams wp;
  std::string error;
  EXPECT_TRUE(SetWorkloadParamKey("users", "12", &wp, &error)) << error;
  EXPECT_EQ(wp.server.users, 12);
  EXPECT_TRUE(SetWorkloadParamKey("packets", "50", &wp, &error)) << error;
  EXPECT_EQ(wp.packets, 50);
  EXPECT_FALSE(SetWorkloadParamKey("nope", "1", &wp, &error));
  EXPECT_NE(error.find("unknown param"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace ilat
