#include "src/core/think_wait_fsm.h"

#include <gtest/gtest.h>

namespace ilat {
namespace {

TEST(ThinkWaitFsmTest, StartsThinking) {
  ThinkWaitFsm fsm(0);
  EXPECT_EQ(fsm.current(), UserState::kThink);
}

TEST(ThinkWaitFsmTest, QueueNonEmptyMeansWaiting) {
  // Paper §2.3: "when there are events queued, we can assume that the user
  // is waiting".
  ThinkWaitFsm fsm(0);
  fsm.OnQueue(100, true);
  EXPECT_EQ(fsm.current(), UserState::kWaitCpu);
  fsm.OnQueue(200, false);
  EXPECT_EQ(fsm.current(), UserState::kThink);
  fsm.Finish(300);
  EXPECT_EQ(fsm.TotalIn(UserState::kThink), 200);
  EXPECT_EQ(fsm.TotalIn(UserState::kWaitCpu), 100);
}

TEST(ThinkWaitFsmTest, SyncIoOutranksEverything) {
  // Synchronous I/O is wait time even though the CPU may be idle.
  ThinkWaitFsm fsm(0);
  fsm.OnSyncIo(50, true);
  fsm.OnCpu(60, true);
  EXPECT_EQ(fsm.current(), UserState::kWaitIo);
  fsm.OnSyncIo(100, false);
  // CPU still busy, queue empty, no foreground marker: background.
  EXPECT_EQ(fsm.current(), UserState::kBackground);
  fsm.OnCpu(120, false);
  fsm.Finish(150);
  EXPECT_EQ(fsm.TotalIn(UserState::kWaitIo), 50);
}

TEST(ThinkWaitFsmTest, BusyWithoutForegroundIsBackground) {
  ThinkWaitFsm fsm(0);
  fsm.OnCpu(10, true);
  EXPECT_EQ(fsm.current(), UserState::kBackground);
  fsm.OnForeground(20, true);
  EXPECT_EQ(fsm.current(), UserState::kWaitCpu);
  fsm.OnForeground(30, false);
  EXPECT_EQ(fsm.current(), UserState::kBackground);
  fsm.OnCpu(40, false);
  fsm.Finish(50);
  EXPECT_EQ(fsm.TotalIn(UserState::kBackground), 20);
  EXPECT_EQ(fsm.TotalIn(UserState::kWaitCpu), 10);
  EXPECT_EQ(fsm.TotalIn(UserState::kThink), 20);
}

TEST(ThinkWaitFsmTest, TotalsCoverElapsedExactly) {
  ThinkWaitFsm fsm(0);
  fsm.OnCpu(100, true);
  fsm.OnQueue(150, true);
  fsm.OnSyncIo(300, true);
  fsm.OnSyncIo(500, false);
  fsm.OnQueue(600, false);
  fsm.OnCpu(700, false);
  fsm.Finish(1'000);
  Cycles total = 0;
  for (int i = 0; i < static_cast<int>(UserState::kCount); ++i) {
    total += fsm.TotalIn(static_cast<UserState>(i));
  }
  EXPECT_EQ(total, 1'000);
}

TEST(ThinkWaitFsmTest, IntervalsAreContiguousAndTyped) {
  ThinkWaitFsm fsm(0);
  fsm.OnCpu(100, true);
  fsm.OnCpu(250, false);
  fsm.Finish(400);
  const auto& iv = fsm.intervals();
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].state, UserState::kThink);
  EXPECT_EQ(iv[1].state, UserState::kBackground);
  EXPECT_EQ(iv[2].state, UserState::kThink);
  for (std::size_t i = 1; i < iv.size(); ++i) {
    EXPECT_EQ(iv[i].begin, iv[i - 1].end);
  }
  EXPECT_EQ(iv.front().begin, 0);
  EXPECT_EQ(iv.back().end, 400);
}

TEST(ThinkWaitFsmTest, RedundantInputsDoNotSplitIntervals) {
  ThinkWaitFsm fsm(0);
  fsm.OnCpu(100, true);
  fsm.OnCpu(150, true);  // no state change
  fsm.OnCpu(200, false);
  fsm.Finish(300);
  EXPECT_EQ(fsm.intervals().size(), 3u);
  EXPECT_EQ(fsm.TotalIn(UserState::kBackground), 100);
}

TEST(ThinkWaitFsmTest, TotalWaitSumsCpuAndIo) {
  ThinkWaitFsm fsm(0);
  fsm.OnQueue(0, true);
  fsm.OnQueue(100, false);
  fsm.OnSyncIo(200, true);
  fsm.OnSyncIo(450, false);
  fsm.Finish(500);
  EXPECT_EQ(fsm.TotalWait(), 100 + 250);
}

TEST(ThinkWaitFsmTest, StateNames) {
  EXPECT_EQ(UserStateName(UserState::kThink), "think");
  EXPECT_EQ(UserStateName(UserState::kWaitCpu), "wait-cpu");
  EXPECT_EQ(UserStateName(UserState::kWaitIo), "wait-io");
  EXPECT_EQ(UserStateName(UserState::kBackground), "background");
}

}  // namespace
}  // namespace ilat
