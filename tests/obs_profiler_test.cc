// Unit tests for the host-time self-profiler: slot arithmetic, log2
// bucketing, merge/reset, the thread_local install contract, scoped-probe
// no-op behaviour without a profiler, and the JSON report shape.

#include "src/obs/profiler.h"

#include <thread>

#include "gtest/gtest.h"

namespace ilat {
namespace obs {
namespace {

// Every test installs/uninstalls on its own thread; make sure no profiler
// leaks across tests even on ASSERT failure.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override { HostProfiler::Uninstall(); }
};

TEST_F(ProfilerTest, RecordAccumulatesCountTotalMax) {
  HostProfiler p;
  p.Record(HostProbe::kQueuePush, 100);
  p.Record(HostProbe::kQueuePush, 300);
  p.Record(HostProbe::kQueuePush, 200);
  const HostProbeStats& s = p.stats(HostProbe::kQueuePush);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total_ns, 600u);
  EXPECT_EQ(s.max_ns, 300u);
  // Other slots untouched.
  EXPECT_EQ(p.stats(HostProbe::kSimLoop).count, 0u);
}

TEST_F(ProfilerTest, Log2BucketsLandWhereExpected) {
  HostProfiler p;
  p.Record(HostProbe::kIdleTick, 0);    // bucket 0
  p.Record(HostProbe::kIdleTick, 1);    // bucket 0
  p.Record(HostProbe::kIdleTick, 2);    // bucket 1
  p.Record(HostProbe::kIdleTick, 3);    // bucket 1
  p.Record(HostProbe::kIdleTick, 4);    // bucket 2
  p.Record(HostProbe::kIdleTick, 255);  // bucket 7
  p.Record(HostProbe::kIdleTick, 256);  // bucket 8
  const HostProbeStats& s = p.stats(HostProbe::kIdleTick);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[7], 1u);
  EXPECT_EQ(s.buckets[8], 1u);
}

TEST_F(ProfilerTest, HugeSampleSaturatesLastBucket) {
  HostProfiler p;
  p.Record(HostProbe::kSimLoop, ~0ULL);
  EXPECT_EQ(p.stats(HostProbe::kSimLoop).buckets[kHostProbeBuckets - 1], 1u);
}

TEST_F(ProfilerTest, MergeFoldsEverySlot) {
  HostProfiler a;
  HostProfiler b;
  a.Record(HostProbe::kQueuePop, 10);
  b.Record(HostProbe::kQueuePop, 50);
  b.Record(HostProbe::kDispatch, 7);
  a.Merge(b);
  EXPECT_EQ(a.stats(HostProbe::kQueuePop).count, 2u);
  EXPECT_EQ(a.stats(HostProbe::kQueuePop).total_ns, 60u);
  EXPECT_EQ(a.stats(HostProbe::kQueuePop).max_ns, 50u);
  EXPECT_EQ(a.stats(HostProbe::kDispatch).count, 1u);
  // b is unchanged by the merge.
  EXPECT_EQ(b.stats(HostProbe::kQueuePop).count, 1u);
}

TEST_F(ProfilerTest, ResetClearsEverySlot) {
  HostProfiler p;
  p.Record(HostProbe::kTracerEmit, 42);
  p.Reset();
  EXPECT_EQ(p.stats(HostProbe::kTracerEmit).count, 0u);
  EXPECT_EQ(p.stats(HostProbe::kTracerEmit).total_ns, 0u);
  EXPECT_EQ(p.stats(HostProbe::kTracerEmit).max_ns, 0u);
  EXPECT_EQ(p.stats(HostProbe::kTracerEmit).buckets[5], 0u);
}

TEST_F(ProfilerTest, ScopedProbeRecordsIntoInstalledProfiler) {
  HostProfiler p;
  HostProfiler::Install(&p);
  {
    ScopedHostProbe probe(HostProbe::kAppMessage);
  }
  HostProfiler::Uninstall();
  EXPECT_EQ(p.stats(HostProbe::kAppMessage).count, 1u);
}

TEST_F(ProfilerTest, ScopedProbeIsNoOpWithoutProfiler) {
  ASSERT_EQ(HostProfiler::Current(), nullptr);
  // Must not crash or record anywhere.
  {
    ScopedHostProbe probe(HostProbe::kSimLoop);
    probe.Stop();
  }
  PROF_SCOPE(kSimLoop);
}

TEST_F(ProfilerTest, StopIsIdempotent) {
  HostProfiler p;
  HostProfiler::Install(&p);
  {
    ScopedHostProbe probe(HostProbe::kMetrics);
    probe.Stop();
    probe.Stop();  // second Stop and the destructor must not double-count
  }
  HostProfiler::Uninstall();
  EXPECT_EQ(p.stats(HostProbe::kMetrics).count, 1u);
}

TEST_F(ProfilerTest, ProbeCapturesProfilerAtConstruction) {
  HostProfiler p;
  HostProfiler::Install(&p);
  ScopedHostProbe probe(HostProbe::kSessionIo);
  HostProfiler::Uninstall();
  probe.Stop();  // records into p even though it is no longer installed
  EXPECT_EQ(p.stats(HostProbe::kSessionIo).count, 1u);
}

TEST_F(ProfilerTest, InstallationIsPerThread) {
  HostProfiler p;
  HostProfiler::Install(&p);
  bool other_thread_saw_null = false;
  std::thread t([&] {
    other_thread_saw_null = HostProfiler::Current() == nullptr;
    HostProfiler mine;
    HostProfiler::Install(&mine);
    PROF_SCOPE(kQueuePush);
  });
  t.join();
  EXPECT_TRUE(other_thread_saw_null);
  EXPECT_EQ(HostProfiler::Current(), &p);
  // The other thread's records never reached this thread's profiler.
  EXPECT_EQ(p.stats(HostProbe::kQueuePush).count, 0u);
}

TEST_F(ProfilerTest, RunWindowTotalExcludesNestedAndOffWindowProbes) {
  HostProfiler p;
  p.Record(HostProbe::kSimLoop, 1000);       // top-level, in window
  p.Record(HostProbe::kSessionSetup, 500);   // top-level, in window
  p.Record(HostProbe::kQueuePush, 400);      // nested -- already inside kSimLoop
  p.Record(HostProbe::kSessionIo, 9000);     // top-level but outside the window
  EXPECT_EQ(p.RunWindowTotalNs(), 1500u);
  EXPECT_DOUBLE_EQ(p.Coverage(3e-6), 0.5);  // 1500 ns of a 3000 ns wall
}

TEST_F(ProfilerTest, ProbeInfoNamesAreUniqueAndComplete) {
  for (int i = 0; i < kHostProbeCount; ++i) {
    const HostProbeInfo& info = HostProbeInfoFor(static_cast<HostProbe>(i));
    ASSERT_NE(info.name, nullptr);
    ASSERT_NE(info.site, nullptr);
    for (int j = i + 1; j < kHostProbeCount; ++j) {
      EXPECT_STRNE(info.name, HostProbeInfoFor(static_cast<HostProbe>(j)).name);
    }
  }
}

TEST_F(ProfilerTest, JsonReportHasEveryProbeAndCoverage) {
  HostProfiler p;
  p.Record(HostProbe::kSimLoop, 123456);
  const std::string json = p.ToJson(0.001, 10.0);
  for (int i = 0; i < kHostProbeCount; ++i) {
    const HostProbeInfo& info = HostProbeInfoFor(static_cast<HostProbe>(i));
    EXPECT_NE(json.find("\"" + std::string(info.name) + "\""), std::string::npos)
        << info.name;
  }
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\""), std::string::npos);
  EXPECT_NE(json.find("\"log2_ns_buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 123456"), std::string::npos);
}

TEST_F(ProfilerTest, TableMentionsEveryProbeAndNestedMarker) {
  HostProfiler p;
  p.Record(HostProbe::kQueuePush, 10);
  const std::string table = p.RenderTable(0.001, 10.0);
  for (int i = 0; i < kHostProbeCount; ++i) {
    EXPECT_NE(table.find(HostProbeInfoFor(static_cast<HostProbe>(i)).name),
              std::string::npos);
  }
  EXPECT_NE(table.find("(nested)"), std::string::npos);
  // Single-threaded reports carry the coverage footer; multi-thread
  // reports drop it (summed probe time can exceed one thread's wall).
  EXPECT_NE(table.find("cover"), std::string::npos);
  EXPECT_EQ(p.RenderTable(0.001, 10.0, 8).find("cover"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ilat
