// MetricsRegistry: counter/gauge/histogram semantics, snapshot and JSON
// determinism.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include "src/core/measurement.h"
#include "src/apps/notepad.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

TEST(Counter, IncrementAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksHighWaterMark) {
  obs::Gauge g;
  g.Set(3.0);
  g.Set(7.0);
  g.Set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.Add(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
}

TEST(LogHistogram, BucketsByPowersOfTwo) {
  obs::LogHistogram h(1.0, 6);
  h.Record(0.5);   // bucket 0: <= 1
  h.Record(1.5);   // bucket 1: <= 2
  h.Record(3.0);   // bucket 2: <= 4
  h.Record(100.0); // overflow -> last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 1.5 + 3.0 + 100.0) / 4.0);
  // The overflow bucket reports the largest observed sample as its bound.
  EXPECT_DOUBLE_EQ(h.bucket_upper(5), 100.0);
}

TEST(LogHistogram, PercentileEstimates) {
  obs::LogHistogram h(1.0, 10);
  for (int i = 0; i < 99; ++i) {
    h.Record(0.5);
  }
  h.Record(300.0);
  EXPECT_LE(h.Percentile(0.5), 1.0);
  EXPECT_GE(h.Percentile(0.999), 300.0 - 1e-9);
}

TEST(LogHistogram, PercentileEdgeValues) {
  obs::LogHistogram h(1.0, 10);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);  // empty histogram
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);

  // Single sample far from the first bucket: p=0 must report the sample,
  // not the first bucket's upper bound, and p=1 must not overshoot into
  // the bucket's upper edge.
  h.Record(100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(h.Percentile(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 100.0);

  // Duplicates: every percentile stays within the samples' bucket.
  obs::LogHistogram dup(1.0, 10);
  for (int i = 0; i < 8; ++i) {
    dup.Record(3.0);
  }
  EXPECT_DOUBLE_EQ(dup.Percentile(0.0), 3.0);
  EXPECT_GE(dup.Percentile(0.5), 3.0);
  EXPECT_LE(dup.Percentile(0.5), 4.0);  // 3.0 lives in the (2, 4] bucket
  EXPECT_DOUBLE_EQ(dup.Percentile(1.0), 3.0);  // clamped to observed max
}

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x");
  reg.GetCounter("a");  // map insertion must not invalidate `a`
  reg.GetCounter("z");
  obs::Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, SnapshotFlattensWithSuffixes) {
  obs::MetricsRegistry reg;
  reg.GetCounter("c")->Increment(5);
  reg.GetGauge("g")->Set(2.5);
  reg.GetHistogram("h")->Record(3.0);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Get("c"), 5.0);
  EXPECT_DOUBLE_EQ(snap.Get("g"), 2.5);
  EXPECT_DOUBLE_EQ(snap.Get("h.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.Get("h.mean"), 3.0);
  EXPECT_TRUE(snap.Has("h.p95"));
  EXPECT_FALSE(snap.Has("nope"));
  EXPECT_DOUBLE_EQ(snap.Get("nope", -1.0), -1.0);
}

TEST(MetricsRegistry, JsonIsWellFormedAndReset) {
  obs::MetricsRegistry reg;
  reg.GetCounter("events")->Increment(3);
  reg.GetGauge("depth")->Set(4.0);
  reg.GetHistogram("lat_ms")->Record(12.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("events")->value(), 0u);
  EXPECT_EQ(reg.GetHistogram("lat_ms")->count(), 0u);
}

// End-to-end determinism: two sessions with the same seed must produce
// byte-identical metric snapshots (everything derives from simulated time).
TEST(MetricsRegistry, SessionSnapshotsAreDeterministic) {
  auto run = [] {
    SessionOptions opts;
    opts.seed = 7;
    MeasurementSession session(MakeNt40(), opts);
    session.AttachApp(std::make_unique<NotepadApp>());
    Random rng(7);
    return session.Run(KeystrokeTrials(10));
  };
  const SessionResult a = run();
  const SessionResult b = run();
  ASSERT_FALSE(a.metrics_json.empty());
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics.values[i].first, b.metrics.values[i].first);
    EXPECT_DOUBLE_EQ(a.metrics.values[i].second, b.metrics.values[i].second);
  }
  // The acceptance bar: a real session populates a healthy registry.
  EXPECT_GE(a.metrics.size(), 8u);
  EXPECT_GT(a.metrics.Get("sched.context_switches"), 0.0);
  EXPECT_GT(a.metrics.Get("sched.interrupts"), 0.0);
  EXPECT_GT(a.metrics.Get("mq.posted"), 0.0);
  EXPECT_GT(a.metrics.Get("app.messages_handled"), 0.0);
  EXPECT_GT(a.metrics.Get("idle.records"), 0.0);
}

TEST(LogHistogramMergeTest, MergesCountsSumsAndExtremes) {
  obs::LogHistogram a(1.0, 8);
  obs::LogHistogram b(1.0, 8);
  a.Record(0.5);
  a.Record(3.0);
  b.Record(100.0);
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 103.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  // Merging an empty histogram changes nothing.
  obs::LogHistogram empty(1.0, 8);
  ASSERT_TRUE(a.Merge(empty));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
}

TEST(LogHistogramMergeTest, RejectsMismatchedGeometry) {
  obs::LogHistogram a(1.0, 8);
  obs::LogHistogram wrong_buckets(1.0, 10);
  obs::LogHistogram wrong_base(2.0, 8);
  a.Record(1.0);
  EXPECT_FALSE(a.Merge(wrong_buckets));
  EXPECT_FALSE(a.Merge(wrong_base));
  EXPECT_EQ(a.count(), 1u);  // untouched on failure
}

TEST(SnapshotAccumulatorTest, TracksSumMinMaxPerName) {
  obs::MetricsRegistry r1;
  r1.GetCounter("mq.posted")->Increment(10);
  obs::MetricsRegistry r2;
  r2.GetCounter("mq.posted")->Increment(4);
  r2.GetCounter("disk.reads")->Increment(2);

  obs::SnapshotAccumulator acc;
  acc.Add(r1.Snapshot());
  acc.Add(r2.Snapshot());
  ASSERT_EQ(acc.entries().count("mq.posted"), 1u);
  const auto& posted = acc.entries().at("mq.posted");
  EXPECT_DOUBLE_EQ(posted.sum, 14.0);
  EXPECT_DOUBLE_EQ(posted.min, 4.0);
  EXPECT_DOUBLE_EQ(posted.max, 10.0);
  EXPECT_EQ(posted.sessions, 2u);
  EXPECT_EQ(acc.entries().at("disk.reads").sessions, 1u);

  const std::string json = acc.ToJson();
  EXPECT_NE(json.find("\"mq.posted\""), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 14"), std::string::npos);
}

}  // namespace
}  // namespace ilat
