#include <gtest/gtest.h>

#include <memory>

#include "src/apps/desktop.h"
#include "src/apps/echo_app.h"
#include "src/apps/notepad.h"
#include "src/apps/powerpoint.h"
#include "src/apps/window_manager.h"
#include "src/apps/word.h"
#include "src/os/personalities.h"

namespace ilat {
namespace {

// Shared harness: run one app on one OS, post messages, observe busy time.
template <typename App>
struct Harness {
  explicit Harness(OsProfile os = MakeNt40(), App* instance = nullptr)
      : sys(os, 1) {
    app.reset(instance != nullptr ? instance : new App());
    thread = std::make_unique<GuiThread>(&sys, app.get());
    sys.sim().scheduler().AddThread(thread.get());
    sys.Boot();
  }
  void Post(MessageType type, int param = 0) {
    Message m;
    m.type = type;
    m.param = param;
    thread->PostMessageToQueue(m);
  }
  // Thread-busy cycles attributable to `fn` (clock/housekeeping interrupt
  // noise excluded).
  Cycles BusyDelta(std::function<void()> fn, Cycles run = SecondsToCycles(30.0)) {
    const Cycles before = sys.sim().scheduler().busy_thread_cycles();
    fn();
    sys.sim().RunFor(run);
    return sys.sim().scheduler().busy_thread_cycles() - before;
  }
  SystemUnderTest sys;
  std::unique_ptr<App> app;
  std::unique_ptr<GuiThread> thread;
};

// ---------------------------------------------------------------------------
// Notepad.

TEST(NotepadModelTest, CharEchoIsShortRefreshIsLong) {
  Harness<NotepadApp> h;
  const Cycles echo = h.BusyDelta([&] { h.Post(MessageType::kChar, 'a'); });
  const Cycles refresh = h.BusyDelta([&] { h.Post(MessageType::kKeyDown, kVkPageDown); });
  EXPECT_LT(CyclesToMilliseconds(echo), 10.0);   // paper: <10 ms events
  EXPECT_GT(CyclesToMilliseconds(refresh), 20.0);  // paper: >=28 ms class
  EXPECT_GT(refresh, 5 * echo);
}

TEST(NotepadModelTest, NewlineTriggersRefresh) {
  Harness<NotepadApp> h;
  const Cycles nl = h.BusyDelta([&] { h.Post(MessageType::kChar, '\n'); });
  const Cycles ch = h.BusyDelta([&] { h.Post(MessageType::kChar, 'x'); });
  EXPECT_GT(nl, 5 * ch);
}

TEST(NotepadModelTest, CursorMovementIsCheap) {
  Harness<NotepadApp> h;
  const Cycles cur = h.BusyDelta([&] { h.Post(MessageType::kKeyDown, kVkLeft); });
  const Cycles ch = h.BusyDelta([&] { h.Post(MessageType::kChar, 'x'); });
  EXPECT_LT(cur, ch);
}

TEST(NotepadModelTest, CountsInsertedChars) {
  Harness<NotepadApp> h;
  h.Post(MessageType::kChar, 'a');
  h.Post(MessageType::kChar, 'b');
  h.Post(MessageType::kChar, '\n');  // newline not counted as insert
  h.sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_EQ(h.app->chars_inserted(), 2u);
}

TEST(NotepadModelTest, Win95EchoCheaperThanNt40) {
  // Fig. 7: Windows 95 has the smallest cumulative Notepad latency.
  Harness<NotepadApp> nt;
  Harness<NotepadApp> w95{MakeWin95()};
  const Cycles nt_echo = nt.BusyDelta([&] { nt.Post(MessageType::kChar, 'a'); });
  // Subtract W95's heavier background activity by measuring thread cycles
  // only.
  const Cycles before = w95.sys.sim().scheduler().busy_thread_cycles();
  w95.Post(MessageType::kChar, 'a');
  w95.sys.sim().RunFor(SecondsToCycles(5.0));
  const Cycles w95_echo = w95.sys.sim().scheduler().busy_thread_cycles() - before;
  EXPECT_LT(w95_echo, nt_echo);
}

// ---------------------------------------------------------------------------
// Window manager (Fig. 4).

TEST(WindowManagerTest, MaximizeRunsAnimationThenRedraw) {
  Harness<WindowManagerApp> h;
  h.Post(MessageType::kCommand, kCmdWmMaximize);
  h.sys.sim().RunFor(SecondsToCycles(2.0));
  EXPECT_TRUE(h.app->animation_done());
}

TEST(WindowManagerTest, AnimationSpansExpectedWallClock) {
  WindowManagerParams params;
  Harness<WindowManagerApp> h(MakeNt40(), new WindowManagerApp(params));
  const Cycles t0 = h.sys.sim().now();
  h.Post(MessageType::kCommand, kCmdWmMaximize);
  while (!h.app->animation_done()) {
    h.sys.sim().RunFor(MillisecondsToCycles(10));
  }
  const double span_ms = CyclesToMilliseconds(h.sys.sim().now() - t0);
  // 80 ms input + 22 steps x 10 ms + 200 ms redraw ~= 500 ms (Fig. 4 spans
  // 100-600 ms).
  EXPECT_GT(span_ms, 400.0);
  EXPECT_LT(span_ms, 650.0);
}

TEST(WindowManagerTest, AnimationStepsGrow) {
  // Steps take progressively longer as the outline grows (paper §2.6).
  WindowManagerParams params;
  EXPECT_GT(params.step_growth_ms, 0.0);
  const double last =
      params.first_step_ms + params.step_growth_ms * (params.animation_steps - 1);
  EXPECT_LT(last, 10.0);  // each step still fits in a 10 ms tick
}

// ---------------------------------------------------------------------------
// EchoApp (Fig. 1).

TEST(EchoAppTest, ComputePlusEchoNearPaperValue) {
  Harness<EchoApp> h;
  const Cycles busy = h.BusyDelta([&] { h.Post(MessageType::kChar, 'a'); });
  // Application-visible part should be ~7.4 ms (paper's "traditional"
  // measurement); allow the dispatch/pump overhead on top.
  EXPECT_GT(CyclesToMilliseconds(busy), 7.0);
  EXPECT_LT(CyclesToMilliseconds(busy), 8.2);
}

TEST(EchoAppTest, IgnoresNonCharMessages) {
  Harness<EchoApp> h;
  const Cycles busy = h.BusyDelta([&] { h.Post(MessageType::kKeyDown, kVkLeft); });
  EXPECT_LT(CyclesToMilliseconds(busy), 1.0);
}

// ---------------------------------------------------------------------------
// Desktop (Fig. 6).

TEST(DesktopTest, UnboundKeystrokeCostOrdering) {
  // W95 substantially worse than NT 4.0 (paper Fig. 6).
  Harness<DesktopApp> nt40;
  Harness<DesktopApp> nt351{MakeNt351()};
  Harness<DesktopApp> w95{MakeWin95()};
  auto key_cost = [](Harness<DesktopApp>& h) {
    const Cycles before = h.sys.sim().scheduler().busy_thread_cycles();
    h.Post(MessageType::kKeyDown, kVkDown);
    h.sys.sim().RunFor(SecondsToCycles(1.0));
    return h.sys.sim().scheduler().busy_thread_cycles() - before;
  };
  const Cycles c40 = key_cost(nt40);
  const Cycles c351 = key_cost(nt351);
  const Cycles c95 = key_cost(w95);
  EXPECT_GT(c95, c40 + c40 / 2);  // "substantially worse"
  EXPECT_GT(c351, c40);
}

// ---------------------------------------------------------------------------
// PowerPoint.

TEST(PowerpointTest, OleSessionsTracked) {
  Harness<PowerpointApp> h;
  h.Post(MessageType::kCommand, kCmdPptStartOleEdit);
  h.sys.sim().RunFor(SecondsToCycles(30.0));
  h.Post(MessageType::kCommand, kCmdPptStartOleEdit);
  h.sys.sim().RunFor(SecondsToCycles(30.0));
  EXPECT_EQ(h.app->ole_sessions_started(), 2);
}

TEST(PowerpointTest, OleSessionsGetCheaperWithWarmCache) {
  Harness<PowerpointApp> h;
  const Cycles t0 = h.sys.sim().now();
  h.Post(MessageType::kCommand, kCmdPptStartOleEdit);
  h.sys.sim().RunFor(SecondsToCycles(30.0));
  (void)t0;
  auto wall = [&](int) {
    const Cycles before = h.sys.sim().now();
    const auto handled = h.thread->handled_count();
    h.Post(MessageType::kCommand, kCmdPptStartOleEdit);
    while (h.thread->handled_count() == handled) {
      h.sys.sim().RunFor(MillisecondsToCycles(100));
    }
    return h.sys.sim().now() - before;
  };
  const Cycles second = wall(2);
  const Cycles third = wall(3);
  EXPECT_LT(third, second);
}

TEST(PowerpointTest, SaveIsDiskDominated) {
  Harness<PowerpointApp> h;
  SystemUnderTest& sys = h.sys;
  const auto disk_before = sys.sim().disk().completed_requests();
  h.Post(MessageType::kCommand, kCmdPptSave);
  sys.sim().RunFor(SecondsToCycles(60.0));
  EXPECT_GT(sys.sim().disk().completed_requests() - disk_before, 100u);
}

TEST(PowerpointTest, PageDownIsSubSecond) {
  Harness<PowerpointApp> h;
  const Cycles busy = h.BusyDelta([&] { h.Post(MessageType::kCommand, kCmdPptPageDown); });
  EXPECT_GT(CyclesToMilliseconds(busy), 20.0);
  EXPECT_LT(CyclesToMilliseconds(busy), 500.0);
}

// ---------------------------------------------------------------------------
// Word.

TEST(WordTest, KeystrokeWithoutSyncDefersBacklog) {
  Harness<WordApp> h;
  h.Post(MessageType::kChar, 'a');
  h.sys.sim().RunFor(MillisecondsToCycles(100));
  EXPECT_GT(h.app->backlog_ms(), 0.0);
  EXPECT_EQ(h.app->foreground_drain_ms_executed(), 0.0);
}

TEST(WordTest, PendingQueueSyncForcesSynchronousDrain) {
  Harness<WordApp> h;
  Message sync;
  sync.type = MessageType::kQueueSync;
  Message ch;
  ch.type = MessageType::kChar;
  ch.param = 'a';
  h.thread->PostMessageToQueue(ch);
  h.thread->PostMessageToQueue(sync);  // pending while 'a' is handled
  h.sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_EQ(h.app->backlog_ms(), 0.0);
  EXPECT_GT(h.app->foreground_drain_ms_executed(), 0.0);
}

TEST(WordTest, BacklogDrainsInBackgroundAfterGrace) {
  Harness<WordApp> h;
  h.Post(MessageType::kChar, 'a');
  h.sys.sim().RunFor(SecondsToCycles(3.0));
  EXPECT_EQ(h.app->backlog_ms(), 0.0);
  EXPECT_GT(h.app->background_ms_executed(), 0.0);
}

TEST(WordTest, CarriageReturnDrainsEverything) {
  Harness<WordApp> h;
  // Build up backlog quickly (no grace window passes).
  for (int i = 0; i < 5; ++i) {
    h.Post(MessageType::kChar, 'a' + i);
  }
  h.Post(MessageType::kChar, '\n');
  h.sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_EQ(h.app->backlog_ms(), 0.0);
  EXPECT_GT(h.app->foreground_drain_ms_executed(), 100.0);  // capped backlog
}

TEST(WordTest, Win95DefersIdleAfterEvents) {
  Harness<WordApp> h{MakeWin95()};
  const Cycles busy = h.BusyDelta([&] { h.Post(MessageType::kChar, 'a'); },
                                  SecondsToCycles(10.0));
  // The event appears seconds long (paper §5.4).
  EXPECT_GT(CyclesToSeconds(busy), 1.0);
}

}  // namespace
}  // namespace ilat
