#include "src/apps/application.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/os/personalities.h"

namespace ilat {
namespace {

// Minimal app that records what it sees and executes configurable work.
class ProbeApp : public GuiApplication {
 public:
  std::string_view name() const override { return "probe"; }

  Job HandleMessage(const Message& m) override {
    handled.push_back(m);
    JobBuilder b = ctx_->Build();
    if (work_ms > 0.0) {
      b.AppWork(work_ms * 85.0);  // ~work_ms at NT app ipc
    }
    if (arm_timer) {
      b.SetTimer(1, MillisecondsToCycles(5.0));
      arm_timer = false;
    }
    return b.Build();
  }

  bool HasBackgroundWork() const override { return background_units > 0; }

  Job NextBackgroundUnit() override {
    --background_units;
    ++background_ran;
    JobBuilder b = ctx_->Build();
    b.AppWork(50.0);
    return b.Build();
  }

  std::vector<Message> handled;
  double work_ms = 1.0;
  bool arm_timer = false;
  int background_units = 0;
  int background_ran = 0;
};

class PumpProbe : public MessagePumpObserver {
 public:
  void OnApiCall(Cycles t, bool peek, bool blocked) override {
    api.push_back({t, peek, blocked});
  }
  void OnMessageRetrieved(Cycles t, const Message& m, std::size_t) override {
    retrieved.push_back({t, m});
  }
  void OnHandleStart(Cycles t, const Message& m) override { starts.push_back({t, m}); }
  void OnHandleEnd(Cycles t, const Message& m) override { ends.push_back({t, m}); }

  struct Api {
    Cycles t;
    bool peek;
    bool blocked;
  };
  std::vector<Api> api;
  std::vector<std::pair<Cycles, Message>> retrieved;
  std::vector<std::pair<Cycles, Message>> starts;
  std::vector<std::pair<Cycles, Message>> ends;
};

struct Fixture {
  explicit Fixture(OsProfile os = MakeNt40()) : sys(os, 1) {
    app = std::make_unique<ProbeApp>();
    thread = std::make_unique<GuiThread>(&sys, app.get());
    thread->AddObserver(&probe);
    sys.sim().scheduler().AddThread(thread.get());
  }
  void Post(MessageType type, int param = 0) {
    Message m;
    m.type = type;
    m.param = param;
    thread->PostMessageToQueue(m);
  }
  SystemUnderTest sys;
  std::unique_ptr<ProbeApp> app;
  std::unique_ptr<GuiThread> thread;
  PumpProbe probe;
};

TEST(GuiThreadTest, DeliversMessagesInOrder) {
  Fixture f;
  f.Post(MessageType::kChar, 'a');
  f.Post(MessageType::kChar, 'b');
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  ASSERT_EQ(f.app->handled.size(), 2u);
  EXPECT_EQ(f.app->handled[0].param, 'a');
  EXPECT_EQ(f.app->handled[1].param, 'b');
  EXPECT_EQ(f.thread->handled_count(), 2u);
}

TEST(GuiThreadTest, BlocksWhenIdleAndWakesOnPost) {
  Fixture f;
  f.sys.sim().RunFor(MillisecondsToCycles(10));
  ASSERT_FALSE(f.probe.api.empty());
  EXPECT_TRUE(f.probe.api.back().blocked);
  const auto api_before = f.probe.api.size();
  f.Post(MessageType::kChar, 'x');
  f.sys.sim().RunFor(MillisecondsToCycles(10));
  EXPECT_EQ(f.app->handled.size(), 1u);
  EXPECT_GT(f.probe.api.size(), api_before);
}

TEST(GuiThreadTest, HandleBoundariesBracketWork) {
  Fixture f;
  f.app->work_ms = 3.0;
  f.Post(MessageType::kChar, 'x');
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  ASSERT_EQ(f.probe.starts.size(), 1u);
  ASSERT_EQ(f.probe.ends.size(), 1u);
  const double span =
      CyclesToMilliseconds(f.probe.ends[0].first - f.probe.starts[0].first);
  EXPECT_GT(span, 2.9);
  EXPECT_LT(span, 4.0);  // work + dispatch overhead
}

TEST(GuiThreadTest, GetMessageCostPrecedesRetrieval) {
  Fixture f;
  f.Post(MessageType::kChar, 'x');
  const Cycles posted_at = f.sys.sim().now();
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  ASSERT_EQ(f.probe.retrieved.size(), 1u);
  EXPECT_GE(f.probe.retrieved[0].first - posted_at,
            f.sys.win32().GetMessageWork().cycles);
}

TEST(GuiThreadTest, QueueSyncHandledBySystemNotApp) {
  Fixture f;
  f.Post(MessageType::kQueueSync);
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_TRUE(f.app->handled.empty());  // app never sees WM_QUEUESYNC
  ASSERT_EQ(f.probe.ends.size(), 1u);   // but the pump processed it
  EXPECT_EQ(f.probe.ends[0].second.type, MessageType::kQueueSync);
}

TEST(GuiThreadTest, TimerPostsTimerMessage) {
  Fixture f;
  f.app->arm_timer = true;
  f.Post(MessageType::kChar, 'x');
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  ASSERT_EQ(f.app->handled.size(), 2u);
  EXPECT_EQ(f.app->handled[1].type, MessageType::kTimer);
  EXPECT_EQ(f.app->handled[1].param, 1);
}

TEST(GuiThreadTest, BackgroundUnitsRunViaPeekMessage) {
  Fixture f;
  f.app->background_units = 3;
  f.sys.sim().scheduler().Wake(f.thread.get());
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_EQ(f.app->background_ran, 3);
  // PeekMessage calls observed.
  bool any_peek = false;
  for (const auto& a : f.probe.api) {
    any_peek |= a.peek;
  }
  EXPECT_TRUE(any_peek);
}

TEST(GuiThreadTest, InputPreemptsBackgroundDrain) {
  Fixture f;
  f.app->background_units = 50;
  f.Post(MessageType::kChar, 'x');
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  // The char must be handled before background work exhausts (input is
  // polled between units).
  ASSERT_FALSE(f.app->handled.empty());
  EXPECT_EQ(f.app->handled[0].param, 'x');
  EXPECT_EQ(f.app->background_ran, 50);
}

TEST(GuiThreadTest, MouseBusyWaitOnWin95) {
  Fixture f{MakeWin95()};
  f.Post(MessageType::kMouseDown);
  f.sys.sim().RunFor(MillisecondsToCycles(50));
  // Handler must still be spinning: CPU busy, mouse-down not complete.
  EXPECT_TRUE(f.probe.ends.empty());
  EXPECT_TRUE(f.sys.sim().scheduler().cpu_busy());
  f.Post(MessageType::kMouseUp);
  f.sys.sim().RunFor(MillisecondsToCycles(50));
  // Both events complete once the button is released.
  EXPECT_EQ(f.probe.ends.size(), 2u);
  // The busy-wait burned roughly the hold time of CPU.
  EXPECT_GT(f.sys.sim().scheduler().busy_thread_cycles(), MillisecondsToCycles(45));
}

TEST(GuiThreadTest, NoBusyWaitOnNt) {
  Fixture f;
  f.Post(MessageType::kMouseDown);
  f.sys.sim().RunFor(MillisecondsToCycles(50));
  EXPECT_EQ(f.probe.ends.size(), 1u);
  EXPECT_FALSE(f.sys.sim().scheduler().cpu_busy());
}

TEST(GuiThreadTest, QuitFinishesThread) {
  Fixture f;
  f.Post(MessageType::kChar, 'x');
  f.Post(MessageType::kQuit);
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  EXPECT_EQ(f.thread->state(), ThreadState::kFinished);
  EXPECT_EQ(f.app->handled.size(), 1u);
}

TEST(GuiThreadTest, DispatchCostChargedForUserInputOnly) {
  Fixture f;
  f.app->work_ms = 0.0;
  f.Post(MessageType::kChar, 'x');
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  const Cycles busy_after_char = f.sys.sim().scheduler().busy_thread_cycles();
  f.Post(MessageType::kTimer);
  f.sys.sim().RunFor(SecondsToCycles(1.0));
  const Cycles busy_after_timer = f.sys.sim().scheduler().busy_thread_cycles();
  // Timer handling skips the input-dispatch path, so it is cheaper.
  EXPECT_LT(busy_after_timer - busy_after_char, busy_after_char);
}

}  // namespace
}  // namespace ilat
