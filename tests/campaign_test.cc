// Campaign subsystem tests: spec parsing and its error paths, the
// cross-product expansion and seeding scheme, the determinism contract
// (N-thread aggregate byte-identical to 1-thread), the minimal JSON
// reader, and the regression gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "src/campaign/gate.h"
#include "src/campaign/journal.h"
#include "src/campaign/json.h"
#include "src/campaign/runner.h"
#include "src/campaign/shard.h"
#include "src/campaign/spec.h"
#include "src/obs/jsonout.h"
#include "src/sim/random.h"

namespace ilat {
namespace campaign {
namespace {

// A 4-cell campaign small enough to run many times in tests.
CampaignSpec SmallSpec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.oses = {"nt40"};
  spec.apps = {"echo", "desktop"};
  spec.seeds_per_cell = 2;
  spec.campaign_seed = 99;
  return spec;
}

std::string RunToJson(const CampaignSpec& spec, int jobs) {
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.jobs = jobs;
  CampaignRunStats stats;
  std::string error;
  EXPECT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  return aggregate.ToJson();
}

TEST(DeriveSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(DeriveSeed(42, i));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions among adjacent streams
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(43, 0));
  EXPECT_NE(DeriveSeed(42, 1), DeriveSeed(42, 0) + 1);  // not master+index
}

TEST(SpecParseTest, ParsesFullSpec) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("# a comment\n"
                                "name = nightly\n"
                                "os = nt351, nt40   # trailing comment\n"
                                "app = notepad, word\n"
                                "driver = test, human\n"
                                "seeds = 3\n"
                                "seed = 777\n"
                                "threshold_ms = 50\n",
                                &spec, &error))
      << error;
  EXPECT_EQ(spec.name, "nightly");
  EXPECT_EQ(spec.oses, (std::vector<std::string>{"nt351", "nt40"}));
  EXPECT_EQ(spec.apps, (std::vector<std::string>{"notepad", "word"}));
  EXPECT_EQ(spec.drivers, (std::vector<std::string>{"test", "human"}));
  EXPECT_EQ(spec.seeds_per_cell, 3u);
  EXPECT_EQ(spec.campaign_seed, 777u);
  EXPECT_DOUBLE_EQ(spec.threshold_ms, 50.0);
  // 2 os x 2 app x 1 workload x 2 driver x 3 seeds
  EXPECT_EQ(spec.ExpandCells().size(), 24u);
}

TEST(SpecParseTest, OsAllExpandsToEveryPersonality) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("os = all\napp = echo\n", &spec, &error)) << error;
  EXPECT_EQ(spec.ExpandCells().size(), 3u);
}

TEST(SpecParseTest, RejectsUnknownOsName) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("os = nt50\napp = notepad\n", &spec, &error));
  EXPECT_NE(error.find("nt50"), std::string::npos);
}

TEST(SpecParseTest, RejectsUnknownAppName) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("app = excel\n", &spec, &error));
  EXPECT_NE(error.find("excel"), std::string::npos);
}

TEST(SpecParseTest, RejectsUnknownKeyWithLineNumber) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("app = notepad\nbogus = 1\n", &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(SpecParseTest, RejectsEmptyCrossProduct) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("app = notepad\nseeds = 0\n", &spec, &error));
  EXPECT_NE(error.find("seeds"), std::string::npos);
}

TEST(SpecParseTest, RejectsMalformedNumbers) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("seeds = banana\n", &spec, &error));
  EXPECT_FALSE(ParseCampaignSpec("seed = -3\n", &spec, &error));
  EXPECT_FALSE(ParseCampaignSpec("threshold_ms = 0\n", &spec, &error));
}

TEST(SpecExpandTest, SeedsDeriveFromCampaignSeedAndIndex) {
  CampaignSpec spec = SmallSpec();
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 4u);
  for (const CampaignCell& cell : cells) {
    EXPECT_EQ(cell.seed, DeriveSeed(spec.campaign_seed, cell.index));
  }
  // Workload defaults resolved per app.
  EXPECT_EQ(cells[0].workload, "echo");
  EXPECT_EQ(cells[2].workload, "keys");
}

// ------------------------------------------------------- fault sweeps --

constexpr char kSweepSpec[] =
    "name = sweep\n"
    "os = nt40\n"
    "app = echo\n"
    "driver = human\n"
    "seeds = 2\n"
    "seed = 2026\n"
    "threshold_ms = 100\n"
    "sweep.fault.mq.drop_rate = 0, 0.05, 0.2\n";

TEST(FaultSweepTest, ParsesAndExpandsThePointMatrix) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(kSweepSpec, &spec, &error)) << error;
  ASSERT_EQ(spec.fault_sweeps.size(), 1u);
  EXPECT_EQ(spec.fault_sweeps[0].key, "mq.drop_rate");
  EXPECT_EQ(spec.FaultPointCount(), 3u);

  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 6u);  // 2 base cells x 3 fault points
  // Point f's cell k replays point 0's cell k workload exactly: same seed,
  // only the plan (and its salt) differs, so latency-vs-rate curves
  // compare identical work.
  EXPECT_EQ(cells[0].seed, cells[2].seed);
  EXPECT_EQ(cells[0].seed, cells[4].seed);
  EXPECT_EQ(cells[1].seed, cells[5].seed);
  EXPECT_NE(cells[0].seed, cells[1].seed);
  EXPECT_DOUBLE_EQ(cells[0].faults.mq.drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(cells[2].faults.mq.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(cells[4].faults.mq.drop_rate, 0.2);
  // Each point draws an independent deterministic fault stream.
  EXPECT_NE(cells[2].faults.salt, cells[4].faults.salt);
  EXPECT_EQ(cells[0].fault_point, 0u);
  EXPECT_EQ(cells[4].fault_point, 2u);
  EXPECT_EQ(cells[2].fault_label, "mq.drop_rate=0.05");
  EXPECT_NE(cells[2].Label().find("@mq.drop_rate=0.05"), std::string::npos);
}

TEST(FaultSweepTest, ExpansionIsDeterministic) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(kSweepSpec, &spec, &error)) << error;
  const std::vector<CampaignCell> a = spec.ExpandCells();
  const std::vector<CampaignCell> b = spec.ExpandCells();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].faults.salt, b[i].faults.salt);
    EXPECT_EQ(a[i].fault_label, b[i].fault_label);
    EXPECT_EQ(a[i].index, i);
  }
}

TEST(FaultSweepTest, MultipleDimensionsCrossWithFirstKeySlowest) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("os = nt40\napp = echo\n"
                                "sweep.fault.mq.drop_rate = 0, 0.1\n"
                                "sweep.fault.disk.stall_rate = 0, 0.5\n",
                                &spec, &error))
      << error;
  EXPECT_EQ(spec.FaultPointCount(), 4u);
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 4u);  // 1 base cell x 4 fault points
  EXPECT_EQ(cells[0].fault_label, "mq.drop_rate=0|disk.stall_rate=0");
  EXPECT_EQ(cells[1].fault_label, "mq.drop_rate=0|disk.stall_rate=0.5");
  EXPECT_EQ(cells[2].fault_label, "mq.drop_rate=0.1|disk.stall_rate=0");
  EXPECT_EQ(cells[3].fault_label, "mq.drop_rate=0.1|disk.stall_rate=0.5");
  EXPECT_DOUBLE_EQ(cells[3].faults.mq.drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(cells[3].faults.disk.stall_rate, 0.5);
}

TEST(FaultSweepTest, SweptValuesLayerOnTopOfFixedFaultKeys) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("os = nt40\napp = echo\n"
                                "fault.clock.jitter_frac = 0.2\n"
                                "sweep.fault.mq.drop_rate = 0, 0.1\n",
                                &spec, &error))
      << error;
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 2u);
  // The fixed key applies at every point; only the swept key varies.
  EXPECT_DOUBLE_EQ(cells[0].faults.clock.jitter_frac, 0.2);
  EXPECT_DOUBLE_EQ(cells[1].faults.clock.jitter_frac, 0.2);
  EXPECT_DOUBLE_EQ(cells[0].faults.mq.drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(cells[1].faults.mq.drop_rate, 0.1);
}

TEST(FaultSweepTest, RejectsBadSweepSpecs) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("app = echo\nsweep.fault.mq.drop_rate =\n", &spec, &error));
  EXPECT_FALSE(ParseCampaignSpec("app = echo\nsweep.fault.bogus.key = 1\n", &spec, &error));
  EXPECT_FALSE(ParseCampaignSpec("app = echo\nsweep.fault.mq.drop_rate = 0, 2\n",
                                 &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(ParseCampaignSpec("app = echo\n"
                                 "sweep.fault.mq.drop_rate = 0\n"
                                 "sweep.fault.mq.drop_rate = 0.1\n",
                                 &spec, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

// ------------------------------------------------------- param sweeps --

constexpr char kParamSweepSpec[] =
    "name = load\n"
    "os = nt40\n"
    "app = server\n"
    "seeds = 2\n"
    "seed = 2026\n"
    "params.requests = 10\n"
    "sweep.params.pool_size = 1, 2\n"
    "sweep.params.users = 4, 8\n";

TEST(ParamSweepTest, ParsesAndExpandsThePointMatrix) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(kParamSweepSpec, &spec, &error)) << error;
  ASSERT_EQ(spec.param_sweeps.size(), 2u);
  EXPECT_EQ(spec.param_sweeps[0].key, "pool_size");
  EXPECT_EQ(spec.ParamPointCount(), 4u);
  EXPECT_EQ(spec.params.server.requests_per_user, 10);

  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 8u);  // 2 base cells x 4 param points
  // Point p's cell k reuses point 0's cell k seed: curves compare matched
  // sessions where only the swept knob differs.
  EXPECT_EQ(cells[0].seed, cells[2].seed);
  EXPECT_EQ(cells[1].seed, cells[7].seed);
  EXPECT_NE(cells[0].seed, cells[1].seed);
  // First key slowest: pool_size=1 covers the first two points.
  EXPECT_EQ(cells[0].param_label, "pool_size=1|users=4");
  EXPECT_EQ(cells[2].param_label, "pool_size=1|users=8");
  EXPECT_EQ(cells[4].param_label, "pool_size=2|users=4");
  EXPECT_EQ(cells[6].param_label, "pool_size=2|users=8");
  EXPECT_EQ(cells[6].params.server.pool_size, 2);
  EXPECT_EQ(cells[6].params.server.users, 8);
  // The fixed params.* key applies at every point.
  EXPECT_EQ(cells[6].params.server.requests_per_user, 10);
  EXPECT_EQ(cells[0].param_point, 0u);
  EXPECT_EQ(cells[6].param_point, 3u);
  EXPECT_NE(cells[6].Label().find("@pool_size=2|users=8"), std::string::npos);
}

TEST(ParamSweepTest, ParamAndFaultSweepsCrossWithParamSlowest) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("os = nt40\napp = server\n"
                                "sweep.params.users = 4, 8\n"
                                "sweep.fault.mq.drop_rate = 0, 0.1\n",
                                &spec, &error))
      << error;
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].param_label, "users=4");
  EXPECT_EQ(cells[0].fault_label, "mq.drop_rate=0");
  EXPECT_EQ(cells[1].param_label, "users=4");
  EXPECT_EQ(cells[1].fault_label, "mq.drop_rate=0.1");
  EXPECT_EQ(cells[2].param_label, "users=8");
  EXPECT_EQ(cells[2].fault_label, "mq.drop_rate=0");
  // Both sweep labels appear in the cell label, param first.
  EXPECT_NE(cells[1].Label().find("@users=4@mq.drop_rate=0.1"), std::string::npos);
}

TEST(ParamSweepTest, RejectsBadParamSweepSpecs) {
  CampaignSpec spec;
  std::string error;
  // Unknown key.
  EXPECT_FALSE(ParseCampaignSpec("app = server\nsweep.params.bogus = 1\n", &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown param"), std::string::npos) << error;
  // Empty value list.
  EXPECT_FALSE(ParseCampaignSpec("app = server\nsweep.params.users =\n", &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  // Duplicate sweep key.
  EXPECT_FALSE(ParseCampaignSpec("app = server\n"
                                 "sweep.params.users = 4\n"
                                 "sweep.params.users = 8\n",
                                 &spec, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  // A fault key under the params prefix gets a pointed hint.
  EXPECT_FALSE(ParseCampaignSpec("app = server\nsweep.params.mq.drop_rate = 0, 0.1\n",
                                 &spec, &error));
  EXPECT_NE(error.find("sweep.fault.mq.drop_rate"), std::string::npos) << error;
  // Non-numeric / out-of-range values.
  EXPECT_FALSE(ParseCampaignSpec("app = server\nsweep.params.users = 4, abc\n",
                                 &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(ParseCampaignSpec("app = server\nsweep.params.cache_hit_rate = 0.5, 2\n",
                                 &spec, &error));
  // Same key swept under both prefixes is fine grammatically but the
  // params version must name a workload param -- "salt" is fault-only.
  EXPECT_FALSE(ParseCampaignSpec("app = server\nsweep.params.salt = 1\n", &spec, &error));
}

TEST(ParamSweepTest, FixedParamsKeyRejectsBadValues) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("app = server\nparams.users = abc\n", &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(ParseCampaignSpec("app = server\nparams.bogus = 1\n", &spec, &error));
  ASSERT_TRUE(ParseCampaignSpec("app = server\nparams.users = 16\n", &spec, &error))
      << error;
  EXPECT_EQ(spec.params.server.users, 16);
}

TEST(ParamSweepTest, SweepChangesCanonicalStringAndHash) {
  CampaignSpec a;
  CampaignSpec b;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("app = server\nos = nt40\n", &a, &error)) << error;
  ASSERT_TRUE(ParseCampaignSpec("app = server\nos = nt40\nsweep.params.users = 4, 8\n",
                                &b, &error))
      << error;
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
  EXPECT_NE(a.SpecHash(), b.SpecHash());
  EXPECT_NE(b.CanonicalString().find("sweep.params.users=4,8"), std::string::npos);
}

TEST(RunnerTest, JobsOneAndJobsEightAreByteIdentical) {
  const CampaignSpec spec = SmallSpec();
  const std::string json1 = RunToJson(spec, 1);
  const std::string json8 = RunToJson(spec, 8);
  EXPECT_FALSE(json1.empty());
  EXPECT_EQ(json1, json8);
}

TEST(RunnerTest, DifferentCampaignSeedChangesAggregate) {
  CampaignSpec spec = SmallSpec();
  // Include an app whose latencies depend on the machine seed (disk I/O).
  spec.apps = {"powerpoint"};
  spec.seeds_per_cell = 1;
  const std::string a = RunToJson(spec, 1);
  spec.campaign_seed = 100;
  const std::string b = RunToJson(spec, 1);
  EXPECT_NE(a, b);
}

TEST(RunnerTest, AggregateGroupsCoverOsAppAndOverall) {
  const CampaignSpec spec = SmallSpec();
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.jobs = 2;
  std::size_t progress_calls = 0;
  std::size_t last_index = 0;
  options.on_cell = [&](const CellResult& r) {
    // Progress arrives in cell-index order even with 2 workers.
    EXPECT_EQ(r.cell.index, progress_calls);
    last_index = r.cell.index;
    ++progress_calls;
  };
  CampaignRunStats stats;
  std::string error;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  EXPECT_EQ(progress_calls, 4u);
  EXPECT_EQ(last_index, 3u);
  EXPECT_EQ(stats.cells, 4u);
  EXPECT_EQ(stats.jobs, 2);
  EXPECT_EQ(aggregate.cells().size(), 4u);
  EXPECT_EQ(aggregate.overall().cells, 4u);
  EXPECT_GT(aggregate.overall().events, 0u);
  ASSERT_EQ(aggregate.groups().count("os:nt40"), 1u);
  ASSERT_EQ(aggregate.groups().count("app:echo"), 1u);
  ASSERT_EQ(aggregate.groups().count("os:nt40|app:desktop"), 1u);
  EXPECT_EQ(aggregate.groups().at("os:nt40").cells, 4u);
  EXPECT_EQ(aggregate.groups().at("app:echo").cells, 2u);
}

TEST(JsonTest, ParsesScalarsArraysObjects) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\ny"}, "e": true,
                           "f": null})",
                        &v, &error))
      << error;
  EXPECT_DOUBLE_EQ(v.NumberAt("a"), 1.5);
  ASSERT_NE(v.Find("b"), nullptr);
  EXPECT_EQ(v.Find("b")->items.size(), 3u);
  ASSERT_NE(v.Find("c"), nullptr);
  EXPECT_EQ(v.Find("c")->Find("d")->str, "x\ny");
  EXPECT_TRUE(v.Find("e")->boolean);
  EXPECT_EQ(v.Find("f")->kind, JsonValue::Kind::kNull);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &v, &error));
  EXPECT_FALSE(ParseJson("[1, 2", &v, &error));
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &v, &error));
  EXPECT_FALSE(ParseJson("", &v, &error));
}

TEST(JsonTest, DecodesUnicodeEscapesToUtf8) {
  JsonValue v;
  std::string error;
  // One byte, two bytes, three bytes -- the full BMP, not just \u00XX.
  ASSERT_TRUE(ParseJson(R"(["\u0041", "\u00e9", "\u20ac", "\u0000"])", &v, &error))
      << error;
  ASSERT_EQ(v.items.size(), 4u);
  EXPECT_EQ(v.items[0].str, "A");
  EXPECT_EQ(v.items[1].str, "\xc3\xa9");      // U+00E9 LATIN SMALL E ACUTE
  EXPECT_EQ(v.items[2].str, "\xe2\x82\xac");  // U+20AC EURO SIGN
  EXPECT_EQ(v.items[3].str, std::string(1, '\0'));
}

TEST(JsonTest, DecodesSurrogatePairs) {
  JsonValue v;
  std::string error;
  // A paired surrogate escape decodes to the supplementary-plane code
  // point (U+1F600 -> 4-byte UTF-8).
  ASSERT_TRUE(ParseJson(R"(["\ud83d\ude00"])", &v, &error)) << error;
  EXPECT_EQ(v.items[0].str, "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsBadUnicodeEscapes) {
  JsonValue v;
  std::string error;
  // Unpaired surrogate halves are not code points.
  EXPECT_FALSE(ParseJson(R"(["\ude00"])", &v, &error));  // lone low half
  EXPECT_NE(error.find("surrogate"), std::string::npos) << error;
  EXPECT_FALSE(ParseJson(R"(["\ud83dx"])", &v, &error));      // high, no \u
  EXPECT_FALSE(ParseJson(R"(["\ud83dA"])", &v, &error));  // high + non-low
  EXPECT_FALSE(ParseJson(R"(["\u12g4"])", &v, &error));   // bad hex digit
  EXPECT_FALSE(ParseJson(R"(["\u 123"])", &v, &error));   // strtol would eat this
  EXPECT_FALSE(ParseJson(R"(["\u+123"])", &v, &error));   // ...and this
  EXPECT_FALSE(ParseJson(R"(["\u12"])", &v, &error));     // truncated
}

TEST(JsonTest, RoundTripsAggregateJson) {
  const std::string json = RunToJson(SmallSpec(), 1);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  EXPECT_DOUBLE_EQ(v.Find("campaign")->NumberAt("cells"), 4.0);
  EXPECT_EQ(v.Find("cells")->items.size(), 4u);
  ASSERT_NE(v.Find("groups")->Find("overall"), nullptr);
  EXPECT_GT(v.Find("groups")->Find("overall")->NumberAt("events"), 0.0);
  EXPECT_GT(v.Find("metrics")->members.size(), 0u);
}

class GateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const CampaignSpec spec = SmallSpec();
    aggregate_ = std::make_unique<CampaignAggregate>(spec.name, spec.campaign_seed,
                                                     spec.threshold_ms);
    CampaignRunOptions options;
    CampaignRunStats stats;
    std::string error;
    ASSERT_TRUE(RunCampaign(spec, options, aggregate_.get(), &stats, &error)) << error;
  }

  std::unique_ptr<CampaignAggregate> aggregate_;
};

TEST_F(GateTest, PassesAgainstItsOwnOutput) {
  GateReport report;
  std::string error;
  ASSERT_TRUE(
      RunRegressionGate(aggregate_->ToJson(), *aggregate_, GateOptions{}, &report, &error))
      << error;
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.comparisons, 0u);
  EXPECT_NE(report.Render(GateOptions{}).find("PASS"), std::string::npos);
}

TEST_F(GateTest, FailsWhenBaselineWasFaster) {
  // A baseline claiming every group had sub-microsecond latencies: the
  // current run must trip the gate.
  const std::string baseline =
      R"({"campaign": {"cells": 4},
          "groups": {"overall": {"p50_ms": 0.0001, "p95_ms": 0.0001,
                                 "p99_ms": 0.0001, "max_ms": 0.0001}}})";
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, GateOptions{}, &report, &error))
      << error;
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Render(GateOptions{}).find("FAIL"), std::string::npos);
}

TEST_F(GateTest, ToleranceSilencesSmallRegressions) {
  // Baseline 5% below current p95: fails at 0% tolerance with no floor,
  // passes at 10%.
  const double p95 = aggregate_->overall().PercentileMs(95.0);
  const std::string baseline = "{\"groups\": {\"overall\": {\"p95_ms\": " +
                               std::to_string(p95 / 1.05) + "}}}";
  GateOptions strict;
  strict.tolerance_pct = 0.0;
  strict.abs_floor_ms = 0.0;
  strict.metrics = {"p95_ms"};
  GateOptions loose = strict;
  loose.tolerance_pct = 10.0;
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, strict, &report, &error)) << error;
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, loose, &report, &error)) << error;
  EXPECT_TRUE(report.ok());
}

TEST_F(GateTest, SkipsGroupsMissingFromCurrentRun) {
  const std::string baseline =
      R"({"groups": {"os:win95": {"p95_ms": 1.0}, "overall": {"p95_ms": 1e9}}})";
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, GateOptions{}, &report, &error))
      << error;
  EXPECT_TRUE(report.ok());  // win95 skipped; overall baseline is huge
  EXPECT_FALSE(report.notes.empty());
}

TEST_F(GateTest, RejectsUnparseableBaseline) {
  GateReport report;
  std::string error;
  EXPECT_FALSE(RunRegressionGate("not json", *aggregate_, GateOptions{}, &report, &error));
  EXPECT_FALSE(RunRegressionGate("{\"no_groups\": 1}", *aggregate_, GateOptions{}, &report,
                                 &error));
}

// ---------------------------------------------------------- fault gate --

// A 1-cell faulted campaign with a recovering human driver: enough drops
// to make the recovery counters (and their fault.* metric sums) nonzero.
class FaultGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampaignSpec spec;
    std::string error;
    ASSERT_TRUE(ParseCampaignSpec("name = fg\n"
                                  "os = nt40\n"
                                  "app = notepad\n"
                                  "driver = human\n"
                                  "seeds = 1\n"
                                  "seed = 5\n"
                                  "threshold_ms = 100\n"
                                  "fault.mq.drop_rate = 0.2\n",
                                  &spec, &error))
        << error;
    aggregate_ = std::make_unique<CampaignAggregate>(spec.name, spec.campaign_seed,
                                                     spec.threshold_ms);
    CampaignRunOptions options;
    CampaignRunStats stats;
    ASSERT_TRUE(RunCampaign(spec, options, aggregate_.get(), &stats, &error)) << error;
    ASSERT_GT(aggregate_->overall().input_retries, 4u);  // the premise below
  }

  std::unique_ptr<CampaignAggregate> aggregate_;
};

TEST_F(FaultGateTest, PassesAgainstItsOwnOutput) {
  GateReport report;
  std::string error;
  ASSERT_TRUE(
      RunRegressionGate(aggregate_->ToJson(), *aggregate_, GateOptions{}, &report, &error))
      << error;
  EXPECT_TRUE(report.ok()) << report.Render(GateOptions{});
  EXPECT_NE(report.Render(GateOptions{}).find("fault drift"), std::string::npos);
}

TEST_F(FaultGateTest, FailsOnRetryCounterDrift) {
  // A baseline from a healthier build: far fewer user retries.  The
  // current run's drift past tolerance + floor must trip the gate even
  // though no latency percentile is compared.
  const std::string baseline =
      R"({"groups": {"overall": {"input_retries": 1.0}}})";
  GateOptions options;
  options.metrics = {};  // isolate the fault comparisons
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, options, &report, &error)) << error;
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].metric, "input_retries");
  EXPECT_EQ(report.regressions[0].group, "overall");
}

TEST_F(FaultGateTest, FailsOnFaultMetricSumDrift) {
  // The campaign-wide fault.* metric sums gate too (group "metrics").
  const std::string baseline =
      R"({"groups": {"overall": {}},
          "metrics": {"fault.input.retries": {"sum": 0.5},
                      "latency.count": {"sum": 0}}})";
  GateOptions options;
  options.metrics = {};
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, options, &report, &error)) << error;
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 1u);  // latency.count is not fault.*
  EXPECT_EQ(report.regressions[0].group, "metrics");
  EXPECT_EQ(report.regressions[0].metric, "fault.input.retries");
}

TEST_F(FaultGateTest, GateFaultsOffIgnoresDrift) {
  const std::string baseline =
      R"({"groups": {"overall": {"input_retries": 1.0}},
          "metrics": {"fault.input.retries": {"sum": 0.5}}})";
  GateOptions options;
  options.metrics = {};
  options.gate_faults = false;
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, options, &report, &error)) << error;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.comparisons, 0u);
}

TEST_F(FaultGateTest, ToleranceScalesTheFaultLimit) {
  // Baseline 10% below the current retry count: trips at 0% fault
  // tolerance, passes at 25%.
  const double retries = static_cast<double>(aggregate_->overall().input_retries);
  const std::string baseline = "{\"groups\": {\"overall\": {\"input_retries\": " +
                               std::to_string(retries / 1.1) + "}}}";
  GateOptions strict;
  strict.metrics = {};
  strict.fault_tolerance_pct = 0.0;
  strict.fault_abs_floor = 0.0;
  GateOptions loose = strict;
  loose.fault_tolerance_pct = 25.0;
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, strict, &report, &error)) << error;
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, loose, &report, &error)) << error;
  EXPECT_TRUE(report.ok());
}

TEST_F(FaultGateTest, ImprovementsNeverFail) {
  const std::string baseline =
      R"({"groups": {"overall": {"input_retries": 1e9, "input_abandons": 1e9,
                                 "degraded_cells": 100, "mq_dropped": 1e9,
                                 "io_failed": 1e9}}})";
  GateOptions options;
  options.metrics = {};
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, options, &report, &error)) << error;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.comparisons, 5u);
}

TEST_F(FaultGateTest, OldBaselinesWithoutFaultKeysSkipSilently) {
  const std::string baseline = R"({"groups": {"overall": {"p95_ms": 1e9}}})";
  GateOptions options;
  options.metrics = {"p95_ms"};
  GateReport report;
  std::string error;
  ASSERT_TRUE(RunRegressionGate(baseline, *aggregate_, options, &report, &error)) << error;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.comparisons, 1u);  // only p95; no fault keys, no noise
  EXPECT_TRUE(report.notes.empty());
}

// ---------------------------------------------------------------------------
// Serialization fidelity.  The shard merge's byte-identity contract rests
// on three properties tested here: doubles survive a JSON round trip
// bit-exactly, strings survive with every control character intact, and
// 64-bit seeds survive without being squeezed through a double.

TEST(JsonOutTest, NumToJsonRoundTripsDoublesExactly) {
  const double values[] = {0.0,     1.0,   0.1,    1.0 / 3.0, 123456789.123456789,
                           9007199254740994.0, 1e-300, 5e-324, 1.7976931348623157e308,
                           1234567.891};
  for (const double v : values) {
    const std::string text = obs::NumToJson(v);
    char* end = nullptr;
    const double back = std::strtod(text.c_str(), &end);
    EXPECT_EQ(back, v) << text;
    EXPECT_EQ(end, text.c_str() + text.size()) << text;
  }
  // The old "%.6g" formatter could not carry more than six significant
  // digits: a cumulative latency of 1234567.891 ms collapsed to 1.23457e+06
  // and the merged aggregate diverged from the single-process bytes.
  EXPECT_NE(obs::NumToJson(1234567.891), "1.23457e+06");
}

TEST(JsonOutTest, EscapeJsonControlCharsRoundTripThroughParser) {
  std::string raw(1, '\0');
  for (int c = 1; c < 0x20; ++c) {
    raw += static_cast<char>(c);
  }
  raw += "plain \"quoted\" back\\slash tab\tnewline\n";
  const std::string doc = "{\"s\": \"" + obs::EscapeJson(raw) + "\"}";
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &root, &error)) << error << " in " << doc;
  EXPECT_EQ(root.StringAt("s"), raw);
}

TEST(JsonReaderTest, U64AtIsExactBeyondDoublePrecision) {
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"max": 18446744073709551615, "odd": 9007199254740993,
                            "small": 7, "neg": -1, "frac": 1.5, "exp": 1e3,
                            "over": 18446744073709551616, "text": "12"})",
                        &root, &error))
      << error;
  std::uint64_t v = 0;
  ASSERT_TRUE(root.U64At("max", &v));
  EXPECT_EQ(v, 18446744073709551615ull);  // UINT64_MAX: double would round it
  ASSERT_TRUE(root.U64At("odd", &v));
  EXPECT_EQ(v, 9007199254740993ull);  // 2^53 + 1: first integer a double drops
  ASSERT_TRUE(root.U64At("small", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(root.U64At("neg", &v));
  EXPECT_FALSE(root.U64At("frac", &v));
  EXPECT_FALSE(root.U64At("exp", &v));
  EXPECT_FALSE(root.U64At("over", &v));  // one past UINT64_MAX
  EXPECT_FALSE(root.U64At("text", &v));
  EXPECT_FALSE(root.U64At("absent", &v));
}

// ---------------------------------------------------------------------------
// Spec hashing: partials from different campaigns must never merge.

TEST(SpecHashTest, StableAcrossCallsAndSensitiveToResultAffectingFields) {
  const CampaignSpec a = SmallSpec();
  EXPECT_EQ(a.SpecHash(), SmallSpec().SpecHash());

  CampaignSpec b = SmallSpec();
  b.campaign_seed += 1;
  EXPECT_NE(a.SpecHash(), b.SpecHash());

  b = SmallSpec();
  b.threshold_ms += 0.5;
  EXPECT_NE(a.SpecHash(), b.SpecHash());

  b = SmallSpec();
  b.seeds_per_cell += 1;
  EXPECT_NE(a.SpecHash(), b.SpecHash());

  b = SmallSpec();
  b.faults.disk.fail_rate = 0.25;
  EXPECT_NE(a.SpecHash(), b.SpecHash());

  b = SmallSpec();
  b.apps = {"desktop", "echo"};  // order is part of cell indexing
  EXPECT_NE(a.SpecHash(), b.SpecHash());
}

TEST(SpecHashTest, OsAllHashesLikeTheExplicitList) {
  CampaignSpec all = SmallSpec();
  all.oses.clear();  // how the parser stores `os = all`
  CampaignSpec expanded = SmallSpec();
  expanded.oses = KnownOsNames();
  EXPECT_EQ(all.SpecHash(), expanded.SpecHash());
}

// ---------------------------------------------------------------------------
// Sharded execution and the deterministic merge.

std::string ShardTempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Run one shard of `spec` and stream it into a partial file at `path`.
void RunShardToFile(const CampaignSpec& spec, int shard_index, int shard_count, int jobs,
                    const std::string& path) {
  PartialWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, spec, spec.ExpandCells().size(), shard_index, shard_count,
                          &error))
      << error;
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.jobs = jobs;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.on_result = [&](const CellResult& r) { writer.Add(r); };
  CampaignRunStats stats;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  ASSERT_TRUE(writer.Finish(&error)) << error;
}

TEST(ShardRunnerTest, ShardsPartitionTheCellsWithGlobalSeeds) {
  const CampaignSpec spec = SmallSpec();  // 4 cells
  std::set<std::size_t> seen;
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 3; ++i) {
    CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
    CampaignRunOptions options;
    options.shard_index = i;
    options.shard_count = 3;
    options.on_result = [&](const CellResult& r) {
      EXPECT_EQ(r.cell.index % 3, static_cast<std::size_t>(i));
      EXPECT_TRUE(seen.insert(r.cell.index).second);  // no cell twice
      seeds.insert(r.cell.seed);
    };
    CampaignRunStats stats;
    std::string error;
    ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
    EXPECT_EQ(stats.total_cells, 4u);
  }
  EXPECT_EQ(seen, (std::set<std::size_t>{0, 1, 2, 3}));  // exact tiling
  // Seeds come from the *global* cell index, so the union across shards
  // equals the unsharded run's seed set.
  std::set<std::uint64_t> unsharded;
  for (const CampaignCell& cell : spec.ExpandCells()) {
    unsharded.insert(cell.seed);
  }
  EXPECT_EQ(seeds, unsharded);
}

TEST(ShardRunnerTest, RejectsInvalidShards) {
  const CampaignSpec spec = SmallSpec();
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunStats stats;
  std::string error;
  CampaignRunOptions options;
  options.shard_index = 2;
  options.shard_count = 2;  // index must be < count
  EXPECT_FALSE(RunCampaign(spec, options, &aggregate, &stats, &error));
  EXPECT_NE(error.find("shard"), std::string::npos);
}

TEST(ShardMergeTest, AnyPartitionMergesByteIdenticalToSingleProcess) {
  const CampaignSpec spec = SmallSpec();  // 4 cells
  CampaignAggregate reference(spec.name, spec.campaign_seed, spec.threshold_ms);
  {
    CampaignRunOptions options;
    CampaignRunStats stats;
    std::string error;
    ASSERT_TRUE(RunCampaign(spec, options, &reference, &stats, &error)) << error;
  }

  // 5 shards over 4 cells leaves shard 4 empty -- legal, merges cleanly.
  for (const int shard_count : {1, 2, 3, 5}) {
    std::vector<std::string> paths;
    for (int i = 0; i < shard_count; ++i) {
      const std::string path = ShardTempPath("merge-" + std::to_string(shard_count) + "-" +
                                             std::to_string(i) + ".json");
      RunShardToFile(spec, i, shard_count, 1 + i % 2, path);  // mixed --jobs
      paths.push_back(path);
    }
    std::reverse(paths.begin(), paths.end());  // merge order must not matter

    std::unique_ptr<CampaignAggregate> merged;
    MergeStats stats;
    std::string error;
    ASSERT_TRUE(MergePartials(paths, &merged, &stats, &error)) << error;
    EXPECT_EQ(stats.partials, static_cast<std::size_t>(shard_count));
    EXPECT_EQ(stats.cells, 4u);
    EXPECT_EQ(merged->ToJson(), reference.ToJson()) << shard_count << " shards";
    EXPECT_EQ(merged->ToCellsCsv(), reference.ToCellsCsv()) << shard_count << " shards";
  }
}

class ShardMergeErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = SmallSpec();
    for (int i = 0; i < 2; ++i) {
      paths_.push_back(ShardTempPath("err-" + std::to_string(i) + ".json"));
      RunShardToFile(spec_, i, 2, 1, paths_[static_cast<std::size_t>(i)]);
    }
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static void Spit(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  }

  std::string ExpectMergeFails(const std::vector<std::string>& paths) {
    std::unique_ptr<CampaignAggregate> merged;
    MergeStats stats;
    std::string error;
    EXPECT_FALSE(MergePartials(paths, &merged, &stats, &error));
    EXPECT_EQ(merged, nullptr);
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(error.find('\n'), std::string::npos);  // one-line contract
    return error;
  }

  CampaignSpec spec_;
  std::vector<std::string> paths_;
};

TEST_F(ShardMergeErrorTest, RejectsMissingShards) {
  const std::string error = ExpectMergeFails({paths_[0]});
  EXPECT_NE(error.find("missing shard"), std::string::npos) << error;
}

TEST_F(ShardMergeErrorTest, RejectsDuplicateShards) {
  const std::string error = ExpectMergeFails({paths_[0], paths_[1], paths_[0]});
  EXPECT_NE(error.find("duplicate shard"), std::string::npos) << error;
}

TEST_F(ShardMergeErrorTest, RejectsOverlappingShards) {
  // A 1/1 partial holds every cell, so it overlaps either half.
  const std::string whole = ShardTempPath("err-whole.json");
  RunShardToFile(spec_, 0, 1, 1, whole);
  const std::string error = ExpectMergeFails({paths_[0], whole});
  EXPECT_NE(error.find("overlapping"), std::string::npos) << error;
}

TEST_F(ShardMergeErrorTest, RejectsSpecHashMismatch) {
  CampaignSpec other = spec_;
  other.campaign_seed += 1;
  // Same cell geometry, different campaign: only the hash tells them apart.
  const std::string foreign = ShardTempPath("err-foreign.json");
  RunShardToFile(other, 1, 2, 1, foreign);
  const std::string error = ExpectMergeFails({paths_[0], foreign});
  EXPECT_NE(error.find("spec hash"), std::string::npos) << error;
  EXPECT_NE(error.find("err-foreign.json"), std::string::npos) << error;
}

TEST_F(ShardMergeErrorTest, RejectsWrongFormatVersion) {
  const std::string doctored = ShardTempPath("err-version.json");
  std::string text = Slurp(paths_[0]);
  const std::string marker = "\"ilat_partial\": 1";
  const auto at = text.find(marker);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, marker.size(), "\"ilat_partial\": 99");
  Spit(doctored, text);
  const std::string error = ExpectMergeFails({doctored, paths_[1]});
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
}

TEST_F(ShardMergeErrorTest, RejectsUnreadableAndMalformedFiles) {
  EXPECT_NE(ExpectMergeFails({ShardTempPath("err-nonexistent.json")}).find("cannot read"),
            std::string::npos);

  const std::string garbage = ShardTempPath("err-garbage.json");
  Spit(garbage, "not json at all {\n");
  ExpectMergeFails({garbage});

  const std::string wrong_doc = ShardTempPath("err-wrongdoc.json");
  Spit(wrong_doc, "{\"groups\": {}}");
  EXPECT_NE(ExpectMergeFails({wrong_doc}).find("ilat_partial"), std::string::npos);

  // A structurally valid partial whose cell row lies about its payload.
  const std::string truncated = ShardTempPath("err-badcell.json");
  std::string text = Slurp(paths_[0]);
  const std::string marker = "\"latencies_ms\": [";
  const auto at = text.find(marker);
  ASSERT_NE(at, std::string::npos);
  const auto close = text.find(']', at);
  ASSERT_NE(close, std::string::npos);
  text.erase(at + marker.size(), close - at - marker.size());  // empty the array
  Spit(truncated, text);
  ExpectMergeFails({truncated, paths_[1]});
}

TEST(ShardMergeTest, RejectsEmptyInputList) {
  std::unique_ptr<CampaignAggregate> merged;
  MergeStats stats;
  std::string error;
  EXPECT_FALSE(MergePartials({}, &merged, &stats, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// The crash-consistent cell journal and --resume replay.

// Run `spec` streaming every cell into a journal at `path`; returns the
// reference aggregate JSON.
std::string RunWithJournal(const CampaignSpec& spec, const std::string& path) {
  JournalWriter writer;
  writer.Open(path, spec, spec.ExpandCells().size(), 0, 1);
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  std::string error;
  options.on_result = [&](const CellResult& r) {
    ASSERT_TRUE(writer.Add(r, &error)) << error;
  };
  CampaignRunStats stats;
  EXPECT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  return aggregate.ToJson();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void Spit(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

TEST(JournalTest, RoundTripsEveryCellAndReplaysByteIdentical) {
  const CampaignSpec spec = SmallSpec();  // 4 cells
  const std::string path = ShardTempPath("journal-roundtrip.jsonl");
  const std::string reference = RunWithJournal(spec, path);

  JournalData data;
  std::string error;
  ASSERT_TRUE(LoadJournal(path, &data, &error)) << error;
  EXPECT_EQ(data.cells.size(), 4u);
  EXPECT_FALSE(data.torn_tail_dropped);
  EXPECT_EQ(data.header.name, spec.name);
  EXPECT_EQ(data.header.seed, spec.campaign_seed);
  EXPECT_EQ(data.header.total_cells, 4u);
  EXPECT_EQ(data.header.spec_hash, SpecHashHex(spec));

  // Replaying every journaled cell (running nothing) reproduces the
  // uninterrupted aggregate byte for byte.
  CampaignAggregate replayed(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.completed = &data.cells;
  CampaignRunStats stats;
  ASSERT_TRUE(RunCampaign(spec, options, &replayed, &stats, &error)) << error;
  EXPECT_EQ(stats.replayed_cells, 4u);
  EXPECT_EQ(replayed.ToJson(), reference);
}

TEST(JournalTest, PartialReplayRunsOnlyMissingCellsByteIdentical) {
  const CampaignSpec spec = SmallSpec();
  const std::string path = ShardTempPath("journal-partial.jsonl");
  const std::string reference = RunWithJournal(spec, path);

  JournalData data;
  std::string error;
  ASSERT_TRUE(LoadJournal(path, &data, &error)) << error;
  // Pretend the run died after cells 0 and 2: drop 1 and 3 from the map.
  data.cells.erase(1);
  data.cells.erase(3);

  CampaignAggregate resumed(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.completed = &data.cells;
  std::set<std::size_t> ran;
  options.on_result = [&](const CellResult& r) { ran.insert(r.cell.index); };
  CampaignRunStats stats;
  ASSERT_TRUE(RunCampaign(spec, options, &resumed, &stats, &error)) << error;
  EXPECT_EQ(ran, (std::set<std::size_t>{1, 3}));  // only the missing cells ran
  EXPECT_EQ(stats.replayed_cells, 2u);
  EXPECT_EQ(resumed.ToJson(), reference);
}

TEST(JournalTest, ResumedWriterReEmitsOriginalBytes) {
  const CampaignSpec spec = SmallSpec();
  const std::string path = ShardTempPath("journal-reemit.jsonl");
  RunWithJournal(spec, path);
  const std::string original = Slurp(path);

  JournalData data;
  std::string error;
  ASSERT_TRUE(LoadJournal(path, &data, &error)) << error;
  const std::string copy = ShardTempPath("journal-reemit-copy.jsonl");
  JournalWriter writer;
  writer.Open(copy, spec, spec.ExpandCells().size(), 0, 1);
  writer.SeedLines(data.raw_lines);
  ASSERT_TRUE(writer.Flush(&error)) << error;
  EXPECT_EQ(Slurp(copy), original);
}

TEST(JournalTest, EveryBytePrefixLoadsCleanlyOrFailsOneLine) {
  const CampaignSpec spec = SmallSpec();
  const std::string path = ShardTempPath("journal-fuzz.jsonl");
  RunWithJournal(spec, path);
  const std::string text = Slurp(path);
  const std::size_t header_end = text.find('\n');
  ASSERT_NE(header_end, std::string::npos);

  // Cut points: every byte through the header, every line boundary +/- 1,
  // and an even sample of interior offsets (the full file is too large to
  // cut at every byte).
  std::set<std::size_t> cuts;
  for (std::size_t i = 0; i <= header_end + 2 && i <= text.size(); ++i) {
    cuts.insert(i);
  }
  for (std::size_t at = text.find('\n'); at != std::string::npos;
       at = text.find('\n', at + 1)) {
    cuts.insert(at);
    cuts.insert(at + 1);
    if (at + 2 <= text.size()) {
      cuts.insert(at + 2);
    }
  }
  for (int i = 0; i < 200; ++i) {
    cuts.insert(text.size() * static_cast<std::size_t>(i) / 200);
  }
  cuts.insert(text.size());

  const std::string cut_path = ShardTempPath("journal-fuzz-cut.jsonl");
  for (const std::size_t cut : cuts) {
    Spit(cut_path, text.substr(0, cut));
    JournalData data;
    std::string error;
    const bool ok = LoadJournal(cut_path, &data, &error);
    if (cut <= header_end) {
      // The header itself is torn: structurally unusable, one-line error.
      EXPECT_FALSE(ok) << "cut at " << cut;
      EXPECT_FALSE(error.empty());
      EXPECT_EQ(error.find('\n'), std::string::npos) << error;
    } else {
      // Any prefix past the header is a valid journal: complete records
      // replay, a torn final record is dropped.
      ASSERT_TRUE(ok) << "cut at " << cut << ": " << error;
      EXPECT_LE(data.cells.size(), 4u);
      const bool cut_mid_record = cut < text.size() && text[cut - 1] != '\n';
      EXPECT_EQ(data.torn_tail_dropped, cut_mid_record) << "cut at " << cut;
    }
  }
}

TEST(JournalTest, RejectsStructuralCorruption) {
  const CampaignSpec spec = SmallSpec();
  const std::string path = ShardTempPath("journal-corrupt.jsonl");
  RunWithJournal(spec, path);
  const std::string text = Slurp(path);
  const std::string bad = ShardTempPath("journal-corrupt-bad.jsonl");

  auto expect_load_fails = [&](const std::string& contents, const char* needle) {
    Spit(bad, contents);
    JournalData data;
    std::string error;
    EXPECT_FALSE(LoadJournal(bad, &data, &error)) << needle;
    EXPECT_NE(error.find(needle), std::string::npos) << error;
    EXPECT_EQ(error.find('\n'), std::string::npos) << error;
  };

  // Duplicate cell record (complete, so not recoverable as a torn tail).
  const std::size_t header_end = text.find('\n');
  const std::size_t first_cell_end = text.find('\n', header_end + 1);
  ASSERT_NE(first_cell_end, std::string::npos);
  const std::string first_cell =
      text.substr(header_end + 1, first_cell_end - header_end);
  expect_load_fails(text + first_cell, "duplicate");

  // Bad format version.
  std::string versioned = text;
  const std::string marker = "\"ilat_journal\": 1";
  const auto at = versioned.find(marker);
  ASSERT_NE(at, std::string::npos);
  versioned.replace(at, marker.size(), "\"ilat_journal\": 99");
  expect_load_fails(versioned, "version 99");

  // Not a journal at all / empty.
  expect_load_fails("{\"groups\": {}}\n", "ilat_journal");
  expect_load_fails("", "empty");

  // Unreadable path.
  JournalData data;
  std::string error;
  EXPECT_FALSE(LoadJournal(ShardTempPath("journal-nonexistent.jsonl"), &data, &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

TEST(JournalMergeTest, MergeAcceptsJournalsAlongsidePartials) {
  const CampaignSpec spec = SmallSpec();  // 4 cells
  CampaignAggregate reference(spec.name, spec.campaign_seed, spec.threshold_ms);
  {
    CampaignRunOptions options;
    CampaignRunStats stats;
    std::string error;
    ASSERT_TRUE(RunCampaign(spec, options, &reference, &stats, &error)) << error;
  }

  // Shard 0 as a journal, shard 1 as a classic partial.
  const std::string journal_path = ShardTempPath("mixed-journal-0.jsonl");
  {
    JournalWriter writer;
    writer.Open(journal_path, spec, 4, 0, 2);
    CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
    CampaignRunOptions options;
    options.shard_index = 0;
    options.shard_count = 2;
    std::string error;
    options.on_result = [&](const CellResult& r) {
      ASSERT_TRUE(writer.Add(r, &error)) << error;
    };
    CampaignRunStats stats;
    ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  }
  const std::string partial_path = ShardTempPath("mixed-partial-1.json");
  RunShardToFile(spec, 1, 2, 1, partial_path);

  std::unique_ptr<CampaignAggregate> merged;
  MergeStats stats;
  std::string error;
  ASSERT_TRUE(MergePartials({partial_path, journal_path}, &merged, &stats, &error))
      << error;
  EXPECT_EQ(stats.cells, 4u);
  EXPECT_EQ(merged->ToJson(), reference.ToJson());
  EXPECT_EQ(merged->ToCellsCsv(), reference.ToCellsCsv());
}

TEST(JournalMergeTest, TornJournalTailSurfacesAsMissingCells) {
  const CampaignSpec spec = SmallSpec();
  const std::string path = ShardTempPath("merge-torn.jsonl");
  RunWithJournal(spec, path);
  std::string text = Slurp(path);
  text.resize(text.size() - 10);  // tear the final record
  Spit(path, text);

  std::unique_ptr<CampaignAggregate> merged;
  MergeStats stats;
  std::string error;
  EXPECT_FALSE(MergePartials({path}, &merged, &stats, &error));
  // Merge never fabricates cells: the torn cell is simply missing.
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Watchdog quarantine and graceful-stop plumbing.

// A 1-cell campaign whose session cannot finish in reasonable host time:
// a dense interrupt storm starves the simulated CPU for the session's
// whole lifetime, so only the watchdog can end the cell.
CampaignSpec HungSpec() {
  CampaignSpec spec;
  spec.name = "hung";
  spec.oses = {"nt40"};
  spec.apps = {"echo"};
  spec.seeds_per_cell = 1;
  spec.campaign_seed = 7;
  spec.faults.storm.start_ms = 0.0;
  spec.faults.storm.duration_ms = 3.6e6;  // the whole 3600-s session
  spec.faults.storm.period_us = 10.0;
  spec.faults.storm.handler_us = 10.0;
  return spec;
}

TEST(WatchdogTest, QuarantinesACellThatExceedsItsWallBudget) {
  CampaignSpec spec = HungSpec();
  spec.timeout_cell_s = 0.05;

  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  std::vector<CellResult> results;
  options.on_result = [&](const CellResult& r) { results.push_back(r); };
  CampaignRunStats stats;
  std::string error;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;

  EXPECT_EQ(stats.quarantined_cells, 1u);
  EXPECT_FALSE(stats.interrupted);
  ASSERT_EQ(results.size(), 1u);
  const CellResult& r = results[0];
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.events, 0u);
  EXPECT_TRUE(r.latencies_ms.empty());
  bool has_timeout_note = false;
  for (const std::string& note : r.fault.notes) {
    has_timeout_note = has_timeout_note || note.find("cell.timeout") == 0;
  }
  EXPECT_TRUE(has_timeout_note);

  // The quarantined skeleton survives the journal round trip, flag intact.
  const std::string path = ShardTempPath("journal-quarantined.jsonl");
  JournalWriter writer;
  writer.Open(path, spec, 1, 0, 1);
  ASSERT_TRUE(writer.Add(r, &error)) << error;
  JournalData data;
  ASSERT_TRUE(LoadJournal(path, &data, &error)) << error;
  ASSERT_EQ(data.cells.size(), 1u);
  EXPECT_TRUE(data.cells.at(0).timed_out);
  EXPECT_EQ(CellToJsonLine(data.cells.at(0)), CellToJsonLine(r));
}

TEST(WatchdogTest, CleanCampaignIgnoresAGenerousBudget) {
  CampaignSpec spec = SmallSpec();
  const std::string reference = RunToJson(spec, 1);
  spec.timeout_cell_s = 1e6;  // effectively unlimited, but arms the watchdog
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  CampaignRunStats stats;
  std::string error;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  EXPECT_EQ(stats.quarantined_cells, 0u);
  EXPECT_EQ(aggregate.ToJson(), reference);
}

TEST(StopFlagTest, PreSetStopFlagInterruptsBeforeAnyCellRuns) {
  const CampaignSpec spec = SmallSpec();
  std::atomic<bool> stop{true};
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.stop = &stop;
  std::size_t streamed = 0;
  options.on_result = [&](const CellResult&) { ++streamed; };
  CampaignRunStats stats;
  std::string error;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  EXPECT_TRUE(stats.interrupted);
  EXPECT_EQ(streamed, 0u);
}

TEST(StopFlagTest, MidRunStopStillYieldsResumableJournalLines) {
  // Stop after the first streamed cell: the runner must flush completed
  // work (in order or not) and report the interruption.  Cells must be
  // slow relative to the fold thread or the lone worker can finish the
  // whole campaign before the flag lands -- notepad cells take ~100 ms,
  // the supervisor cancels in-flight work within ~10 ms of the flag.
  CampaignSpec spec;
  spec.name = "stoppable";
  spec.oses = {"nt40"};
  spec.apps = {"notepad"};
  spec.seeds_per_cell = 4;
  spec.campaign_seed = 21;
  std::atomic<bool> stop{false};
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  options.stop = &stop;
  std::map<std::size_t, CellResult> streamed;
  options.on_result = [&](const CellResult& r) {
    streamed.emplace(r.cell.index, r);
    stop.store(true);
  };
  CampaignRunStats stats;
  std::string error;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  EXPECT_TRUE(stats.interrupted);
  ASSERT_FALSE(streamed.empty());
  EXPECT_LT(streamed.size(), 4u);

  // Resuming from exactly what was streamed completes the campaign with
  // the uninterrupted bytes.
  const std::string reference = RunToJson(spec, 1);
  CampaignAggregate resumed(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions resume_options;
  resume_options.completed = &streamed;
  CampaignRunStats resume_stats;
  ASSERT_TRUE(RunCampaign(spec, resume_options, &resumed, &resume_stats, &error))
      << error;
  EXPECT_FALSE(resume_stats.interrupted);
  EXPECT_EQ(resumed.ToJson(), reference);
}

TEST(CellWallTrackerTest, FlagsStragglersOnlyOnceTheMedianExists) {
  CellWallTracker tracker;
  tracker.Start(7);
  // No completed durations yet: nothing is stalled at any factor.
  EXPECT_TRUE(tracker.Stalled(0.0).empty());

  tracker.Start(1);
  tracker.Finish(1, 0.001, /*count_duration=*/true);
  tracker.Start(2);
  tracker.Finish(2, 0.001, /*count_duration=*/true);
  // Abandoned cells do not count toward the median population.
  tracker.Start(3);
  tracker.Finish(3, 0.001, /*count_duration=*/false);
  EXPECT_TRUE(tracker.Stalled(0.0).empty());  // still only 2 counted

  tracker.Start(4);
  tracker.Finish(4, 0.001, /*count_duration=*/true);
  // Median exists now; factor 0 flags anything in flight, a huge factor
  // flags nothing.
  const std::vector<StalledCellInfo> stalled = tracker.Stalled(0.0);
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0].index, 7u);
  EXPECT_GE(stalled[0].running_s, 0.0);
  EXPECT_TRUE(tracker.Stalled(1e9).empty());

  tracker.Finish(7, 0.002, /*count_duration=*/true);
  EXPECT_TRUE(tracker.Stalled(0.0).empty());  // nothing left in flight
}

// ---------------------------------------------------------------------------
// timeout_cell_s and params.typist_wpm spec plumbing.

TEST(SpecParseTest, ParsesTimeoutCellSAndHashesIt) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("name=t\nos=nt40\napp=echo\ntimeout_cell_s = 2.5\n",
                                    &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.timeout_cell_s, 2.5);

  CampaignSpec plain = spec;
  plain.timeout_cell_s = 0.0;
  EXPECT_NE(spec.SpecHash(), plain.SpecHash());  // result-affecting -> hashed

  for (const char* bad : {"timeout_cell_s = abc\n", "timeout_cell_s = -1\n",
                          "timeout_cell_s = 1e999\n", "timeout_cell_s =\n"}) {
    CampaignSpec rejected;
    EXPECT_FALSE(
        ParseCampaignSpec(std::string("name=t\nos=nt40\napp=echo\n") + bad,
                              &rejected, &error))
        << bad;
  }
}

TEST(ParamSweepTest, TypistWpmSweepsChangeResults) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(
      "name=wpm\nos=nt40\napp=notepad\nseeds=1\nsweep.params.typist_wpm = 40, 400\n",
      &spec, &error))
      << error;
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].params.typist_wpm, 40.0);
  EXPECT_DOUBLE_EQ(cells[1].params.typist_wpm, 400.0);

  // Pacing is result-affecting: the two cells must not measure alike.
  CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  CampaignRunOptions options;
  std::vector<CellResult> results;
  options.on_result = [&](const CellResult& r) { results.push_back(r); };
  CampaignRunStats stats;
  ASSERT_TRUE(RunCampaign(spec, options, &aggregate, &stats, &error)) << error;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].latencies_ms, results[1].latencies_ms);

  // Bad paces are rejected at parse time.
  CampaignSpec rejected;
  EXPECT_FALSE(ParseCampaignSpec(
      "name=wpm\nos=nt40\napp=notepad\nparams.typist_wpm = 0\n", &rejected, &error));
  EXPECT_FALSE(ParseCampaignSpec(
      "name=wpm\nos=nt40\napp=notepad\nparams.typist_wpm = fast\n", &rejected, &error));
}

}  // namespace
}  // namespace campaign
}  // namespace ilat
