#include "src/core/busy_profile.h"

#include <gtest/gtest.h>

namespace ilat {
namespace {

constexpr Cycles kMs = kCyclesPerMillisecond;

std::vector<TraceRecord> MakeTrace(std::initializer_list<double> stamps_ms) {
  std::vector<TraceRecord> t;
  for (double ms : stamps_ms) {
    t.push_back(TraceRecord{MillisecondsToCycles(ms)});
  }
  return t;
}

TEST(BusyProfileTest, AllIdleHasNoBusy) {
  const auto trace = MakeTrace({1, 2, 3, 4, 5});
  BusyProfile p(trace, kMs);
  EXPECT_EQ(p.TotalBusy(), 0);
  EXPECT_EQ(p.BusyIn(0, MillisecondsToCycles(5)), 0);
}

TEST(BusyProfileTest, ElongatedGapYieldsBusy) {
  // Paper Fig. 1: samples at 1,2 then one at 12.76 (10.76 ms gap) -> the
  // system performed 9.76 ms of work in that interval.
  const auto trace = MakeTrace({1, 2, 12.76, 13.76});
  BusyProfile p(trace, kMs);
  EXPECT_NEAR(CyclesToMilliseconds(p.TotalBusy()), 9.76, 1e-6);
  EXPECT_NEAR(CyclesToMilliseconds(p.BusyIn(MillisecondsToCycles(2), MillisecondsToCycles(13))),
              9.76, 1e-6);
}

TEST(BusyProfileTest, BusyInClipsToWindow) {
  const auto trace = MakeTrace({1, 2, 12, 13});
  BusyProfile p(trace, kMs);
  // Busy = 9 ms inside gap (2, 12].  A window covering only (2, 7) can
  // claim at most 5 ms of it.
  const Cycles claimed = p.BusyIn(MillisecondsToCycles(2), MillisecondsToCycles(7));
  EXPECT_EQ(claimed, MillisecondsToCycles(5));
}

TEST(BusyProfileTest, DisjointWindowSeesNothing) {
  const auto trace = MakeTrace({1, 2, 12, 13, 14, 15});
  BusyProfile p(trace, kMs);
  EXPECT_EQ(p.BusyIn(MillisecondsToCycles(13), MillisecondsToCycles(15)), 0);
}

TEST(BusyProfileTest, UtilizationMatchesPaperExample) {
  // Paper §2.5: "if the system spends 10 ms collecting a sample, and the
  // sample includes 1 ms of idle time, the CPU utilization for that time
  // interval is (10-1)/10 = 90%".
  const auto trace = MakeTrace({1, 11});
  BusyProfile p(trace, kMs);
  const auto samples = p.UtilizationSamples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_NEAR(samples[1].utilization, 0.9, 1e-9);
}

TEST(BusyProfileTest, FirstCalmRecordSkipsBusyGaps) {
  const auto trace = MakeTrace({1, 2, 12, 22, 23});
  BusyProfile p(trace, kMs);
  const Cycles calm = p.FirstCalmRecordAfter(MillisecondsToCycles(2), 1.3);
  EXPECT_EQ(calm, MillisecondsToCycles(23));
}

TEST(BusyProfileTest, FirstCalmRecordReturnsNeverPastEnd) {
  const auto trace = MakeTrace({1, 2, 12});
  BusyProfile p(trace, kMs);
  EXPECT_EQ(p.FirstCalmRecordAfter(MillisecondsToCycles(2.5), 1.3), kNever);
}

TEST(BusyProfileTest, BucketsAverageUtilization) {
  // 1 ms idle samples for 5 ms, then a 5 ms busy gap.
  const auto trace = MakeTrace({1, 2, 3, 4, 5, 11});
  BusyProfile p(trace, kMs);
  const auto buckets = p.UtilizationBuckets(MillisecondsToCycles(5.5));
  ASSERT_EQ(buckets.size(), 2u);
  // Busy placement within a gap is ambiguous at sub-period scale; the
  // first bucket may claim a sliver of the straddling gap.
  EXPECT_LT(buckets[0].utilization, 0.15);
  EXPECT_GT(buckets[1].utilization, 0.8);
}

TEST(BusyProfileTest, EmptyTraceIsSane) {
  BusyProfile p({}, kMs);
  EXPECT_EQ(p.TotalBusy(), 0);
  EXPECT_EQ(p.BusyIn(0, 1'000'000), 0);
  EXPECT_EQ(p.FirstCalmRecordAfter(0), kNever);
  EXPECT_TRUE(p.UtilizationSamples().empty());
}

TEST(BusyProfileTest, TotalBusyEqualsSumOfWindows) {
  const auto trace = MakeTrace({1, 3.5, 4.5, 9.25, 10.25});
  BusyProfile p(trace, kMs);
  const Cycles whole = p.BusyIn(0, MillisecondsToCycles(11));
  EXPECT_EQ(whole, p.TotalBusy());
  // Split at an arbitrary point: parts must sum to the whole.
  const Cycles split = MillisecondsToCycles(4.0);
  EXPECT_EQ(p.BusyIn(0, split) + p.BusyIn(split, MillisecondsToCycles(11)), whole);
}

}  // namespace
}  // namespace ilat
