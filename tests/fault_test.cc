// Tests for the deterministic fault-injection subsystem (src/fault/):
// plan parsing, the disk/message-queue fault hooks, session-level
// degradation reporting, and the campaign byte-identity + retry contract.

#include "src/fault/plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/campaign/aggregate.h"
#include "src/campaign/runner.h"
#include "src/campaign/spec.h"
#include "src/core/catalog.h"
#include "src/fault/injector.h"
#include "src/fault/report.h"
#include "src/sim/buffer_cache.h"
#include "src/sim/disk.h"
#include "src/sim/message_queue.h"

namespace ilat {
namespace {

// ---------------------------------------------------------------- plan --

TEST(FaultPlanTest, ParsesFullPlan) {
  const std::string text =
      "# hostile conditions\n"
      "disk.fail_rate   = 0.01\n"
      "disk.fail_after  = 100\n"
      "disk.stall_rate  = 0.05\n"
      "disk.stall_ms    = 20\n"
      "mq.drop_rate     = 0.02\n"
      "mq.dup_rate      = 0.01\n"
      "mq.reorder_rate  = 0.03\n"
      "storm.start_ms   = 200\n"
      "storm.duration_ms = 50\n"
      "storm.period_us  = 100\n"
      "storm.handler_us = 30\n"
      "clock.jitter_frac = 0.10\n"
      "salt = 99\n";
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan(text, &plan, &error)) << error;
  EXPECT_DOUBLE_EQ(plan.disk.fail_rate, 0.01);
  EXPECT_EQ(plan.disk.fail_after, 100u);
  EXPECT_DOUBLE_EQ(plan.disk.stall_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.disk.stall_ms, 20.0);
  EXPECT_DOUBLE_EQ(plan.mq.drop_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.mq.dup_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.mq.reorder_rate, 0.03);
  EXPECT_DOUBLE_EQ(plan.storm.start_ms, 200.0);
  EXPECT_DOUBLE_EQ(plan.storm.duration_ms, 50.0);
  EXPECT_DOUBLE_EQ(plan.storm.period_us, 100.0);
  EXPECT_DOUBLE_EQ(plan.storm.handler_us, 30.0);
  EXPECT_DOUBLE_EQ(plan.clock.jitter_frac, 0.10);
  EXPECT_EQ(plan.salt, 99u);
  EXPECT_TRUE(plan.Any());
}

TEST(FaultPlanTest, EmptyPlanIsInert) {
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan("# nothing but comments\n\n", &plan, &error));
  EXPECT_FALSE(plan.Any());
}

TEST(FaultPlanTest, RejectsUnknownKeyWithLineNumber) {
  fault::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(fault::ParseFaultPlan("disk.fail_rate = 0.1\nbogus.key = 1\n", &plan, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus.key"), std::string::npos) << error;
}

TEST(FaultPlanTest, RejectsOutOfRangeValues) {
  fault::FaultPlan plan;
  std::string error;
  // Probabilities outside [0, 1].
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.fail_rate", "7", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("mq.drop_rate", "-0.5", &plan, &error));
  // Overflow-to-inf and trailing junk.
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.stall_ms", "1e999", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.stall_ms", "5x", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.fail_after", "", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.fail_after", "99999999999999999999999", &plan,
                                      &error));
  // Nothing leaked into the plan along the way.
  EXPECT_FALSE(plan.Any());
}

// ---------------------------------------------------------------- disk --

struct AlwaysDiskPolicy : DiskFaultPolicy {
  DiskFaultDecision decision;
  int calls = 0;
  DiskFaultDecision OnDiskAttempt(std::int64_t, int, bool, int) override {
    ++calls;
    return decision;
  }
};

// Fails the first `n` attempts transiently, then lets everything through.
struct FailFirstNPolicy : DiskFaultPolicy {
  int remaining = 0;
  DiskFaultDecision OnDiskAttempt(std::int64_t, int, bool, int) override {
    if (remaining > 0) {
      --remaining;
      return {DiskFaultKind::kTransient, 0};
    }
    return {};
  }
};

struct DiskFixture {
  EventQueue q;
  HardwareCounters c;
  Scheduler s{&q, &c};
  Random rng{1};
  DiskParams params;
  Disk MakeDisk() {
    DiskParams p = params;
    p.seek_jitter = 0.0;
    return Disk(&q, &s, &rng, p, Work{1'000, WorkProfile{}});
  }
};

TEST(DiskFaultTest, TransientFailuresRetryThenSucceed) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  FailFirstNPolicy policy;
  policy.remaining = 2;
  d.set_fault_policy(&policy);
  IoStatus status = IoStatus::kFailed;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) { status = st; }));
  f.s.RunUntil(SecondsToCycles(5.0));
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ(d.completed_requests(), 1u);
  EXPECT_EQ(d.retried_attempts(), 2u);
  EXPECT_EQ(d.failed_requests(), 0u);
}

TEST(DiskFaultTest, ExhaustedRetriesFailTheRequest) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  AlwaysDiskPolicy policy;
  policy.decision = {DiskFaultKind::kTransient, 0};
  d.set_fault_policy(&policy);
  IoStatus status = IoStatus::kOk;
  bool done = false;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) {
                 status = st;
                 done = true;
               }));
  f.s.RunUntil(SecondsToCycles(5.0));
  ASSERT_TRUE(done);  // exhausted retries still complete the request
  EXPECT_EQ(status, IoStatus::kFailed);
  EXPECT_EQ(d.failed_requests(), 1u);
  EXPECT_EQ(d.retried_attempts(), static_cast<std::uint64_t>(f.params.max_retries));
  // 1 first try + max_retries retried attempts.
  EXPECT_EQ(policy.calls, 1 + f.params.max_retries);
}

TEST(DiskFaultTest, PermanentFailureFailsEveryRequestWithoutWedging) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  AlwaysDiskPolicy policy;
  policy.decision = {DiskFaultKind::kPermanent, 0};
  d.set_fault_policy(&policy);
  std::vector<IoStatus> statuses;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) { statuses.push_back(st); }));
  d.SubmitWrite(2'000, 4, IoCallback([&](IoStatus st) { statuses.push_back(st); }));
  f.s.RunUntil(SecondsToCycles(5.0));
  ASSERT_EQ(statuses.size(), 2u);  // both callbacks fired -- nothing deadlocks
  EXPECT_EQ(statuses[0], IoStatus::kFailed);
  EXPECT_EQ(statuses[1], IoStatus::kFailed);
  EXPECT_TRUE(d.permanently_failed());
  EXPECT_EQ(d.failed_requests(), 2u);
  // The policy is consulted once; after the disk dies it is bypassed.
  EXPECT_EQ(policy.calls, 1);
}

TEST(DiskFaultTest, StallDelaysCompletion) {
  Cycles clean_done = 0;
  {
    DiskFixture f;
    Disk d = f.MakeDisk();
    d.SubmitRead(1'000, 4, IoCallback([&](IoStatus) { clean_done = f.q.now(); }));
    f.s.RunUntil(SecondsToCycles(5.0));
  }
  DiskFixture f;
  Disk d = f.MakeDisk();
  AlwaysDiskPolicy policy;
  policy.decision = {DiskFaultKind::kNone, MillisecondsToCycles(50.0)};
  d.set_fault_policy(&policy);
  Cycles stalled_done = 0;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) {
                 EXPECT_EQ(st, IoStatus::kOk);
                 stalled_done = f.q.now();
               }));
  f.s.RunUntil(SecondsToCycles(5.0));
  EXPECT_NEAR(CyclesToMilliseconds(stalled_done - clean_done), 50.0, 0.1);
}

TEST(BufferCacheFaultTest, FailedFillIsNotCached) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  FailFirstNPolicy policy;
  policy.remaining = 100;  // > 1 + max_retries: the first read fails for good
  d.set_fault_policy(&policy);
  BufferCache cache(&d, &f.s, 64, Work{100, WorkProfile{}});
  IoStatus first = IoStatus::kOk;
  cache.Read(10, 1, IoCallback([&](IoStatus st) { first = st; }));
  f.s.RunUntil(SecondsToCycles(10.0));
  EXPECT_EQ(first, IoStatus::kFailed);
  EXPECT_GE(cache.failed_fills(), 1u);

  // The failed block was evicted, so a later read goes to disk again --
  // and now succeeds (the policy has given up failing).
  policy.remaining = 0;
  IoStatus second = IoStatus::kFailed;
  cache.Read(10, 1, IoCallback([&](IoStatus st) { second = st; }));
  f.s.RunUntil(SecondsToCycles(20.0));
  EXPECT_EQ(second, IoStatus::kOk);
}

// ------------------------------------------------------- message queue --

struct AlwaysMqPolicy : MessageFaultPolicy {
  MessageFaultAction action = MessageFaultAction::kNone;
  int calls = 0;
  MessageFaultAction OnPost(const Message&) override {
    ++calls;
    return action;
  }
};

Message MakeMessage(MessageType type) {
  Message m;
  m.type = type;
  return m;
}

TEST(MessageQueueFaultTest, DropStampsButNeverEnqueues) {
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDrop;
  q.SetFaultPolicy(&policy);
  int wakes = 0;
  q.SetWakeCallback([&] { ++wakes; });
  const Message stamped = q.Post(MakeMessage(MessageType::kChar));
  EXPECT_EQ(stamped.seq, 1u);  // stamped like any post...
  EXPECT_TRUE(q.Empty());      // ...but the queue never saw it
  EXPECT_EQ(q.dropped_count(), 1u);
  EXPECT_EQ(wakes, 0);  // no spurious wake for a message that is not there
}

TEST(MessageQueueFaultTest, DuplicateEnqueuesFreshSequence) {
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDuplicate;
  q.SetFaultPolicy(&policy);
  q.Post(MakeMessage(MessageType::kChar));
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.duplicated_count(), 1u);
  Message a;
  Message b;
  ASSERT_TRUE(q.TryPop(&a));
  ASSERT_TRUE(q.TryPop(&b));
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.seq, 2u);  // the copy gets its own seq (extractor-safe)
}

TEST(MessageQueueFaultTest, ReorderSwapsLastTwo) {
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kReorder;
  q.SetFaultPolicy(&policy);
  Message first = MakeMessage(MessageType::kChar);
  first.param = 1;
  Message second = MakeMessage(MessageType::kChar);
  second.param = 2;
  q.Post(first);   // alone in the queue: reorder is a no-op
  q.Post(second);  // swaps with `first`
  EXPECT_EQ(q.reordered_count(), 1u);
  Message a;
  Message b;
  ASSERT_TRUE(q.TryPop(&a));
  ASSERT_TRUE(q.TryPop(&b));
  EXPECT_EQ(a.param, 2);
  EXPECT_EQ(b.param, 1);
}

TEST(MessageQueueFaultTest, SerialisationMessagesAreExempt) {
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kQueueSync)));
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kQuit)));
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kSocket)));
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kMouseUp)));
  EXPECT_TRUE(MessageQueue::FaultEligible(MakeMessage(MessageType::kChar)));
  EXPECT_TRUE(MessageQueue::FaultEligible(MakeMessage(MessageType::kTimer)));
  EXPECT_TRUE(MessageQueue::FaultEligible(MakeMessage(MessageType::kPaint)));

  // A drop-everything policy must never see (or lose) an exempt message.
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDrop;
  q.SetFaultPolicy(&policy);
  q.Post(MakeMessage(MessageType::kQueueSync));
  q.Post(MakeMessage(MessageType::kQuit));
  q.Post(MakeMessage(MessageType::kMouseUp));
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.dropped_count(), 0u);
  EXPECT_EQ(policy.calls, 0);
}

TEST(MessageQueueFaultTest, MouseDownDuplicationIsDegradedToNoop) {
  // Duplicating a mouse-down would leave the Windows 95 busy-wait copy
  // spinning for a mouse-up that was already consumed.
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDuplicate;
  q.SetFaultPolicy(&policy);
  q.Post(MakeMessage(MessageType::kMouseDown));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.duplicated_count(), 0u);
}

// ------------------------------------------------------------- session --

fault::FaultPlan MildPlan() {
  fault::FaultPlan plan;
  plan.mq.drop_rate = 0.05;
  plan.clock.jitter_frac = 0.2;
  return plan;
}

TEST(FaultSessionTest, IdenticalSeedAndPlanReplayIdentically) {
  RunSpec spec;
  spec.app = "notepad";
  spec.seed = 7;
  spec.faults = MildPlan();
  SessionResult a;
  SessionResult b;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &a, &error)) << error;
  ASSERT_TRUE(RunSpecSession(spec, &b, &error)) << error;
  EXPECT_EQ(a.metrics_json, b.metrics_json);  // fault counters included
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.fault.mq_dropped, b.fault.mq_dropped);
  EXPECT_GT(a.fault.mq_dropped, 0u);  // the plan actually bit
  EXPECT_TRUE(a.fault.enabled);
}

TEST(FaultSessionTest, AttemptIndexSelectsADifferentFaultStream) {
  RunSpec spec;
  spec.app = "notepad";
  spec.seed = 7;
  spec.faults = MildPlan();
  SessionResult first;
  SessionResult retry;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &first, &error)) << error;
  spec.fault_attempt = 1;
  ASSERT_TRUE(RunSpecSession(spec, &retry, &error)) << error;
  // Different attempt -> different (but still deterministic) fault draws.
  EXPECT_NE(first.metrics_json, retry.metrics_json);
}

TEST(FaultSessionTest, PermanentDiskFailureDegradesStructurally) {
  RunSpec spec;
  spec.app = "powerpoint";  // the disk-bound app (Table 1 workloads)
  spec.faults.disk.fail_after = 1;
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;  // no crash, no hang
  EXPECT_TRUE(r.fault.enabled);
  EXPECT_TRUE(r.fault.degraded);
  EXPECT_TRUE(r.fault.disk_permanent);
  EXPECT_GT(r.fault.io_failed, 0u);
  EXPECT_FALSE(r.fault.notes.empty());
  EXPECT_NE(r.fault.Summary().find("degraded"), std::string::npos);
  // Partial metrics survive: the session still produced events.
  EXPECT_GT(r.events.size(), 0u);
}

TEST(FaultSessionTest, InterferenceAloneDoesNotDegrade) {
  RunSpec spec;
  spec.app = "notepad";
  spec.faults.storm.start_ms = 100.0;
  spec.faults.storm.duration_ms = 50.0;
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;
  EXPECT_TRUE(r.fault.enabled);
  EXPECT_GT(r.fault.storm_ticks, 0u);
  // Storms are interference being *measured*, not broken measurements.
  EXPECT_FALSE(r.fault.degraded);
}

TEST(FaultSessionTest, CleanRunReportsFaultsDisabled) {
  RunSpec spec;
  spec.app = "notepad";
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;
  EXPECT_FALSE(r.fault.enabled);
  EXPECT_FALSE(r.fault.degraded);
  EXPECT_FALSE(r.fault.AnyInjected());
}

// ------------------------------------------------------------ campaign --

constexpr char kFaultedSpec[] =
    "name = faulted\n"
    "os = nt40\n"
    "app = notepad\n"
    "driver = test\n"
    "seeds = 3\n"
    "seed = 77\n"
    "threshold_ms = 100\n"
    "fault.mq.drop_rate = 0.05\n"
    "fault.clock.jitter_frac = 0.2\n";

TEST(FaultCampaignTest, SpecParsesFaultKeysAndRetries) {
  campaign::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(campaign::ParseCampaignSpec(std::string(kFaultedSpec) + "retries = 2\n",
                                          &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.faults.mq.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.faults.clock.jitter_frac, 0.2);
  EXPECT_EQ(spec.cell_retries, 2);

  EXPECT_FALSE(campaign::ParseCampaignSpec("app = notepad\ndriver = test\n"
                                           "fault.disk.fail_rate = 9\n",
                                           &spec, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(FaultCampaignTest, FaultedAggregateIsByteIdenticalAcrossJobs) {
  campaign::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(campaign::ParseCampaignSpec(kFaultedSpec, &spec, &error)) << error;

  auto run = [&](int jobs) {
    campaign::CampaignRunOptions options;
    options.jobs = jobs;
    campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
    campaign::CampaignRunStats stats;
    std::string run_error;
    EXPECT_TRUE(campaign::RunCampaign(spec, options, &agg, &stats, &run_error)) << run_error;
    return agg.ToJson() + "\n---\n" + agg.ToCellsCsv();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(FaultCampaignTest, DegradedCellsRetryWithBoundedAttempts) {
  campaign::CampaignSpec spec;
  std::string error;
  // drop_rate 0.05 over hundreds of input messages: every attempt of every
  // cell drops something, so every cell stays degraded and exhausts its
  // retries -- which is exactly what the attempts column must show.
  ASSERT_TRUE(campaign::ParseCampaignSpec(std::string(kFaultedSpec) + "retries = 2\n",
                                          &spec, &error))
      << error;
  campaign::CampaignRunOptions options;
  options.jobs = 2;
  campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunStats stats;
  ASSERT_TRUE(campaign::RunCampaign(spec, options, &agg, &stats, &error)) << error;
  ASSERT_EQ(agg.cells().size(), 3u);
  for (const campaign::CellResult& cell : agg.cells()) {
    EXPECT_TRUE(cell.degraded);
    EXPECT_EQ(cell.attempts, 3);  // 1 try + 2 retries
    EXPECT_TRUE(cell.fault.enabled);
    EXPECT_GT(cell.fault.mq_dropped, 0u);
  }
  EXPECT_EQ(stats.degraded_cells, 3u);
  EXPECT_EQ(stats.retried_cells, 3u);

  // The aggregate JSON carries the per-cell fault block and flags.
  const std::string json = agg.ToJson();
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"mq_dropped\""), std::string::npos);
}

}  // namespace
}  // namespace ilat
