// Tests for the deterministic fault-injection subsystem (src/fault/):
// plan parsing, the disk/message-queue fault hooks, session-level
// degradation reporting, and the campaign byte-identity + retry contract.

#include "src/fault/plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/campaign/aggregate.h"
#include "src/campaign/gate.h"
#include "src/campaign/json.h"
#include "src/campaign/runner.h"
#include "src/campaign/spec.h"
#include "src/core/catalog.h"
#include "src/fault/injector.h"
#include "src/fault/report.h"
#include "src/sim/buffer_cache.h"
#include "src/sim/disk.h"
#include "src/sim/message_queue.h"

namespace ilat {
namespace {

// ---------------------------------------------------------------- plan --

TEST(FaultPlanTest, ParsesFullPlan) {
  const std::string text =
      "# hostile conditions\n"
      "disk.fail_rate   = 0.01\n"
      "disk.fail_after  = 100\n"
      "disk.stall_rate  = 0.05\n"
      "disk.stall_ms    = 20\n"
      "mq.drop_rate     = 0.02\n"
      "mq.dup_rate      = 0.01\n"
      "mq.reorder_rate  = 0.03\n"
      "storm.start_ms   = 200\n"
      "storm.duration_ms = 50\n"
      "storm.period_us  = 100\n"
      "storm.handler_us = 30\n"
      "clock.jitter_frac = 0.10\n"
      "salt = 99\n";
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan(text, &plan, &error)) << error;
  EXPECT_DOUBLE_EQ(plan.disk.fail_rate, 0.01);
  EXPECT_EQ(plan.disk.fail_after, 100u);
  EXPECT_DOUBLE_EQ(plan.disk.stall_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.disk.stall_ms, 20.0);
  EXPECT_DOUBLE_EQ(plan.mq.drop_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.mq.dup_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.mq.reorder_rate, 0.03);
  EXPECT_DOUBLE_EQ(plan.storm.start_ms, 200.0);
  EXPECT_DOUBLE_EQ(plan.storm.duration_ms, 50.0);
  EXPECT_DOUBLE_EQ(plan.storm.period_us, 100.0);
  EXPECT_DOUBLE_EQ(plan.storm.handler_us, 30.0);
  EXPECT_DOUBLE_EQ(plan.clock.jitter_frac, 0.10);
  EXPECT_EQ(plan.salt, 99u);
  EXPECT_TRUE(plan.Any());
}

TEST(FaultPlanTest, EmptyPlanIsInert) {
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan("# nothing but comments\n\n", &plan, &error));
  EXPECT_FALSE(plan.Any());
}

TEST(FaultPlanTest, RejectsUnknownKeyWithLineNumber) {
  fault::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(fault::ParseFaultPlan("disk.fail_rate = 0.1\nbogus.key = 1\n", &plan, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus.key"), std::string::npos) << error;
}

TEST(FaultPlanTest, RejectsOutOfRangeValues) {
  fault::FaultPlan plan;
  std::string error;
  // Probabilities outside [0, 1].
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.fail_rate", "7", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("mq.drop_rate", "-0.5", &plan, &error));
  // Overflow-to-inf and trailing junk.
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.stall_ms", "1e999", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.stall_ms", "5x", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.fail_after", "", &plan, &error));
  EXPECT_FALSE(fault::SetFaultPlanKey("disk.fail_after", "99999999999999999999999", &plan,
                                      &error));
  // Nothing leaked into the plan along the way.
  EXPECT_FALSE(plan.Any());
}

// ---------------------------------------------------------------- disk --

struct AlwaysDiskPolicy : DiskFaultPolicy {
  DiskFaultDecision decision;
  int calls = 0;
  DiskFaultDecision OnDiskAttempt(std::int64_t, int, bool, int) override {
    ++calls;
    return decision;
  }
};

// Fails the first `n` attempts transiently, then lets everything through.
struct FailFirstNPolicy : DiskFaultPolicy {
  int remaining = 0;
  DiskFaultDecision OnDiskAttempt(std::int64_t, int, bool, int) override {
    if (remaining > 0) {
      --remaining;
      return {DiskFaultKind::kTransient, 0};
    }
    return {};
  }
};

struct DiskFixture {
  EventQueue q;
  HardwareCounters c;
  Scheduler s{&q, &c};
  Random rng{1};
  DiskParams params;
  Disk MakeDisk() {
    DiskParams p = params;
    p.seek_jitter = 0.0;
    return Disk(&q, &s, &rng, p, Work{1'000, WorkProfile{}});
  }
};

TEST(DiskFaultTest, TransientFailuresRetryThenSucceed) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  FailFirstNPolicy policy;
  policy.remaining = 2;
  d.set_fault_policy(&policy);
  IoStatus status = IoStatus::kFailed;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) { status = st; }));
  f.s.RunUntil(SecondsToCycles(5.0));
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ(d.completed_requests(), 1u);
  EXPECT_EQ(d.retried_attempts(), 2u);
  EXPECT_EQ(d.failed_requests(), 0u);
}

TEST(DiskFaultTest, ExhaustedRetriesFailTheRequest) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  AlwaysDiskPolicy policy;
  policy.decision = {DiskFaultKind::kTransient, 0};
  d.set_fault_policy(&policy);
  IoStatus status = IoStatus::kOk;
  bool done = false;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) {
                 status = st;
                 done = true;
               }));
  f.s.RunUntil(SecondsToCycles(5.0));
  ASSERT_TRUE(done);  // exhausted retries still complete the request
  EXPECT_EQ(status, IoStatus::kFailed);
  EXPECT_EQ(d.failed_requests(), 1u);
  EXPECT_EQ(d.retried_attempts(), static_cast<std::uint64_t>(f.params.max_retries));
  // 1 first try + max_retries retried attempts.
  EXPECT_EQ(policy.calls, 1 + f.params.max_retries);
}

TEST(DiskFaultTest, PermanentFailureFailsEveryRequestWithoutWedging) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  AlwaysDiskPolicy policy;
  policy.decision = {DiskFaultKind::kPermanent, 0};
  d.set_fault_policy(&policy);
  std::vector<IoStatus> statuses;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) { statuses.push_back(st); }));
  d.SubmitWrite(2'000, 4, IoCallback([&](IoStatus st) { statuses.push_back(st); }));
  f.s.RunUntil(SecondsToCycles(5.0));
  ASSERT_EQ(statuses.size(), 2u);  // both callbacks fired -- nothing deadlocks
  EXPECT_EQ(statuses[0], IoStatus::kFailed);
  EXPECT_EQ(statuses[1], IoStatus::kFailed);
  EXPECT_TRUE(d.permanently_failed());
  EXPECT_EQ(d.failed_requests(), 2u);
  // The policy is consulted once; after the disk dies it is bypassed.
  EXPECT_EQ(policy.calls, 1);
}

TEST(DiskFaultTest, StallDelaysCompletion) {
  Cycles clean_done = 0;
  {
    DiskFixture f;
    Disk d = f.MakeDisk();
    d.SubmitRead(1'000, 4, IoCallback([&](IoStatus) { clean_done = f.q.now(); }));
    f.s.RunUntil(SecondsToCycles(5.0));
  }
  DiskFixture f;
  Disk d = f.MakeDisk();
  AlwaysDiskPolicy policy;
  policy.decision = {DiskFaultKind::kNone, MillisecondsToCycles(50.0)};
  d.set_fault_policy(&policy);
  Cycles stalled_done = 0;
  d.SubmitRead(1'000, 4, IoCallback([&](IoStatus st) {
                 EXPECT_EQ(st, IoStatus::kOk);
                 stalled_done = f.q.now();
               }));
  f.s.RunUntil(SecondsToCycles(5.0));
  EXPECT_NEAR(CyclesToMilliseconds(stalled_done - clean_done), 50.0, 0.1);
}

TEST(BufferCacheFaultTest, FailedFillIsNotCached) {
  DiskFixture f;
  Disk d = f.MakeDisk();
  FailFirstNPolicy policy;
  policy.remaining = 100;  // > 1 + max_retries: the first read fails for good
  d.set_fault_policy(&policy);
  BufferCache cache(&d, &f.s, 64, Work{100, WorkProfile{}});
  IoStatus first = IoStatus::kOk;
  cache.Read(10, 1, IoCallback([&](IoStatus st) { first = st; }));
  f.s.RunUntil(SecondsToCycles(10.0));
  EXPECT_EQ(first, IoStatus::kFailed);
  EXPECT_GE(cache.failed_fills(), 1u);

  // The failed block was evicted, so a later read goes to disk again --
  // and now succeeds (the policy has given up failing).
  policy.remaining = 0;
  IoStatus second = IoStatus::kFailed;
  cache.Read(10, 1, IoCallback([&](IoStatus st) { second = st; }));
  f.s.RunUntil(SecondsToCycles(20.0));
  EXPECT_EQ(second, IoStatus::kOk);
}

// ------------------------------------------------------- message queue --

struct AlwaysMqPolicy : MessageFaultPolicy {
  MessageFaultAction action = MessageFaultAction::kNone;
  int calls = 0;
  MessageFaultAction OnPost(const Message&) override {
    ++calls;
    return action;
  }
};

Message MakeMessage(MessageType type) {
  Message m;
  m.type = type;
  return m;
}

TEST(MessageQueueFaultTest, DropStampsButNeverEnqueues) {
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDrop;
  q.SetFaultPolicy(&policy);
  int wakes = 0;
  q.SetWakeCallback([&] { ++wakes; });
  const Message stamped = q.Post(MakeMessage(MessageType::kChar));
  EXPECT_EQ(stamped.seq, 1u);  // stamped like any post...
  EXPECT_TRUE(q.Empty());      // ...but the queue never saw it
  EXPECT_EQ(q.dropped_count(), 1u);
  EXPECT_EQ(wakes, 0);  // no spurious wake for a message that is not there
}

TEST(MessageQueueFaultTest, DuplicateEnqueuesFreshSequence) {
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDuplicate;
  q.SetFaultPolicy(&policy);
  q.Post(MakeMessage(MessageType::kChar));
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.duplicated_count(), 1u);
  Message a;
  Message b;
  ASSERT_TRUE(q.TryPop(&a));
  ASSERT_TRUE(q.TryPop(&b));
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.seq, 2u);  // the copy gets its own seq (extractor-safe)
}

TEST(MessageQueueFaultTest, ReorderSwapsLastTwo) {
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kReorder;
  q.SetFaultPolicy(&policy);
  Message first = MakeMessage(MessageType::kChar);
  first.param = 1;
  Message second = MakeMessage(MessageType::kChar);
  second.param = 2;
  q.Post(first);   // alone in the queue: reorder is a no-op
  q.Post(second);  // swaps with `first`
  EXPECT_EQ(q.reordered_count(), 1u);
  Message a;
  Message b;
  ASSERT_TRUE(q.TryPop(&a));
  ASSERT_TRUE(q.TryPop(&b));
  EXPECT_EQ(a.param, 2);
  EXPECT_EQ(b.param, 1);
}

TEST(MessageQueueFaultTest, SerialisationMessagesAreExempt) {
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kQueueSync)));
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kQuit)));
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kSocket)));
  EXPECT_FALSE(MessageQueue::FaultEligible(MakeMessage(MessageType::kMouseUp)));
  EXPECT_TRUE(MessageQueue::FaultEligible(MakeMessage(MessageType::kChar)));
  EXPECT_TRUE(MessageQueue::FaultEligible(MakeMessage(MessageType::kTimer)));
  EXPECT_TRUE(MessageQueue::FaultEligible(MakeMessage(MessageType::kPaint)));

  // A drop-everything policy must never see (or lose) an exempt message.
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDrop;
  q.SetFaultPolicy(&policy);
  q.Post(MakeMessage(MessageType::kQueueSync));
  q.Post(MakeMessage(MessageType::kQuit));
  q.Post(MakeMessage(MessageType::kMouseUp));
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.dropped_count(), 0u);
  EXPECT_EQ(policy.calls, 0);
}

TEST(MessageQueueFaultTest, MouseDownDuplicationSynthesizesARelease) {
  // A bare duplicate mouse-down would leave the Windows 95 busy-wait copy
  // spinning for a mouse-up that was already consumed, so the queue pairs
  // the duplicate with a synthesized release: down, up, down.
  EventQueue clock;
  MessageQueue q(&clock);
  AlwaysMqPolicy policy;
  policy.action = MessageFaultAction::kDuplicate;
  q.SetFaultPolicy(&policy);
  q.Post(MakeMessage(MessageType::kMouseDown));
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.duplicated_count(), 1u);
  Message m;
  ASSERT_TRUE(q.TryPop(&m));
  EXPECT_EQ(m.type, MessageType::kMouseDown);
  ASSERT_TRUE(q.TryPop(&m));
  EXPECT_EQ(m.type, MessageType::kMouseUp);
  ASSERT_TRUE(q.TryPop(&m));
  EXPECT_EQ(m.type, MessageType::kMouseDown);
}

// ------------------------------------------------------------- session --

fault::FaultPlan MildPlan() {
  fault::FaultPlan plan;
  plan.mq.drop_rate = 0.05;
  plan.clock.jitter_frac = 0.2;
  return plan;
}

TEST(FaultSessionTest, IdenticalSeedAndPlanReplayIdentically) {
  RunSpec spec;
  spec.app = "notepad";
  spec.seed = 7;
  spec.faults = MildPlan();
  SessionResult a;
  SessionResult b;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &a, &error)) << error;
  ASSERT_TRUE(RunSpecSession(spec, &b, &error)) << error;
  EXPECT_EQ(a.metrics_json, b.metrics_json);  // fault counters included
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.fault.mq_dropped, b.fault.mq_dropped);
  EXPECT_GT(a.fault.mq_dropped, 0u);  // the plan actually bit
  EXPECT_TRUE(a.fault.enabled);
}

TEST(FaultSessionTest, AttemptIndexSelectsADifferentFaultStream) {
  RunSpec spec;
  spec.app = "notepad";
  spec.seed = 7;
  spec.faults = MildPlan();
  SessionResult first;
  SessionResult retry;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &first, &error)) << error;
  spec.fault_attempt = 1;
  ASSERT_TRUE(RunSpecSession(spec, &retry, &error)) << error;
  // Different attempt -> different (but still deterministic) fault draws.
  EXPECT_NE(first.metrics_json, retry.metrics_json);
}

TEST(FaultSessionTest, PermanentDiskFailureDegradesStructurally) {
  RunSpec spec;
  spec.app = "powerpoint";  // the disk-bound app (Table 1 workloads)
  spec.faults.disk.fail_after = 1;
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;  // no crash, no hang
  EXPECT_TRUE(r.fault.enabled);
  EXPECT_TRUE(r.fault.degraded);
  EXPECT_TRUE(r.fault.disk_permanent);
  EXPECT_GT(r.fault.io_failed, 0u);
  EXPECT_FALSE(r.fault.notes.empty());
  EXPECT_NE(r.fault.Summary().find("degraded"), std::string::npos);
  // Partial metrics survive: the session still produced events.
  EXPECT_GT(r.events.size(), 0u);
}

TEST(FaultSessionTest, InterferenceAloneDoesNotDegrade) {
  RunSpec spec;
  spec.app = "notepad";
  spec.faults.storm.start_ms = 100.0;
  spec.faults.storm.duration_ms = 50.0;
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;
  EXPECT_TRUE(r.fault.enabled);
  EXPECT_GT(r.fault.storm_ticks, 0u);
  // Storms are interference being *measured*, not broken measurements.
  EXPECT_FALSE(r.fault.degraded);
}

TEST(FaultSessionTest, CleanRunReportsFaultsDisabled) {
  RunSpec spec;
  spec.app = "notepad";
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;
  EXPECT_FALSE(r.fault.enabled);
  EXPECT_FALSE(r.fault.degraded);
  EXPECT_FALSE(r.fault.AnyInjected());
}

// ------------------------------------------------------- user recovery --

TEST(FaultSessionTest, HumanDriverRetriesDroppedInput) {
  RunSpec spec;
  spec.app = "notepad";
  spec.driver = "human";
  spec.seed = 7;
  spec.faults.mq.drop_rate = 0.05;
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;
  // The plan bit and the user model re-issued dropped inputs.
  EXPECT_GT(r.fault.mq_dropped, 0u);
  EXPECT_GT(r.fault.input_retries, 0u);
  EXPECT_EQ(r.fault.input_abandons, 0u);  // 3 bounded retries always sufficed
  // Every driver-observed drop became exactly one retry or abandon.
  EXPECT_GE(r.fault.mq_dropped, r.fault.input_retries + r.fault.input_abandons);
  // The retry waits surfaced as user-visible latency: intervals recorded,
  // FSM time classified, and at least one event charged retry_wait.
  EXPECT_FALSE(r.retry_pending.empty());
  EXPECT_GT(r.user_state_totals[static_cast<int>(UserState::kWaitRetry)], 0);
  bool charged = false;
  for (const EventRecord& e : r.events) {
    if (e.retry_wait > 0) {
      charged = true;
      EXPECT_GE(e.latency(), e.retry_wait);
    }
  }
  EXPECT_TRUE(charged);
  // The recovery counters ride in the metrics snapshot for aggregation.
  EXPECT_NE(r.metrics_json.find("fault.input.retries"), std::string::npos);
}

TEST(FaultSessionTest, HumanDriverRetriesReplayIdentically) {
  RunSpec spec;
  spec.app = "notepad";
  spec.driver = "human";
  spec.seed = 7;
  spec.faults.mq.drop_rate = 0.05;
  SessionResult a;
  SessionResult b;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &a, &error)) << error;
  ASSERT_TRUE(RunSpecSession(spec, &b, &error)) << error;
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fault.input_retries, b.fault.input_retries);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.retry_pending.size(), b.retry_pending.size());
}

TEST(FaultSessionTest, ExhaustedRetriesAbandonStructurally) {
  RunSpec spec;
  spec.app = "notepad";
  spec.driver = "human";
  spec.seed = 7;
  spec.faults.mq.drop_rate = 1.0;  // nothing ever lands
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;  // no hang
  // Bounded patience: every input was retried max_retries times and then
  // given up on; the session still completed and reported structurally.
  EXPECT_GT(r.fault.input_abandons, 0u);
  EXPECT_GT(r.fault.input_retries, 0u);
  EXPECT_TRUE(r.fault.degraded);
  bool abandon_note = false;
  for (const std::string& note : r.fault.notes) {
    if (note.find("abandoned") != std::string::npos) {
      abandon_note = true;
    }
  }
  EXPECT_TRUE(abandon_note) << r.fault.Summary();
  EXPECT_NE(r.fault.Summary().find("input_abandons"), std::string::npos);
}

TEST(FaultSessionTest, RecoveredDropsDoNotAlwaysDegrade) {
  // A recovering driver turns "input messages dropped" from a structural
  // failure into measured (higher) latency.  With every drop recovered and
  // no abandons, the only degradation sources left are non-input drops.
  RunSpec spec;
  spec.app = "notepad";
  spec.driver = "human";
  spec.seed = 11;
  spec.faults.mq.drop_rate = 0.02;
  SessionResult r;
  std::string error;
  ASSERT_TRUE(RunSpecSession(spec, &r, &error)) << error;
  ASSERT_GT(r.fault.mq_dropped, 0u);
  if (r.fault.input_abandons == 0 &&
      r.fault.mq_dropped <= r.fault.input_retries + r.fault.input_abandons) {
    EXPECT_FALSE(r.fault.degraded) << r.fault.Summary();
  }
}

// ------------------------------------------------------------ campaign --

constexpr char kFaultedSpec[] =
    "name = faulted\n"
    "os = nt40\n"
    "app = notepad\n"
    "driver = test\n"
    "seeds = 3\n"
    "seed = 77\n"
    "threshold_ms = 100\n"
    "fault.mq.drop_rate = 0.05\n"
    "fault.clock.jitter_frac = 0.2\n";

TEST(FaultCampaignTest, SpecParsesFaultKeysAndRetries) {
  campaign::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(campaign::ParseCampaignSpec(std::string(kFaultedSpec) + "retries = 2\n",
                                          &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.faults.mq.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.faults.clock.jitter_frac, 0.2);
  EXPECT_EQ(spec.cell_retries, 2);

  EXPECT_FALSE(campaign::ParseCampaignSpec("app = notepad\ndriver = test\n"
                                           "fault.disk.fail_rate = 9\n",
                                           &spec, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(FaultCampaignTest, FaultedAggregateIsByteIdenticalAcrossJobs) {
  campaign::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(campaign::ParseCampaignSpec(kFaultedSpec, &spec, &error)) << error;

  auto run = [&](int jobs) {
    campaign::CampaignRunOptions options;
    options.jobs = jobs;
    campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
    campaign::CampaignRunStats stats;
    std::string run_error;
    EXPECT_TRUE(campaign::RunCampaign(spec, options, &agg, &stats, &run_error)) << run_error;
    return agg.ToJson() + "\n---\n" + agg.ToCellsCsv();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(FaultCampaignTest, DegradedCellsRetryWithBoundedAttempts) {
  campaign::CampaignSpec spec;
  std::string error;
  // drop_rate 0.05 over hundreds of input messages: every attempt of every
  // cell drops something, so every cell stays degraded and exhausts its
  // retries -- which is exactly what the attempts column must show.
  ASSERT_TRUE(campaign::ParseCampaignSpec(std::string(kFaultedSpec) + "retries = 2\n",
                                          &spec, &error))
      << error;
  campaign::CampaignRunOptions options;
  options.jobs = 2;
  campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunStats stats;
  ASSERT_TRUE(campaign::RunCampaign(spec, options, &agg, &stats, &error)) << error;
  ASSERT_EQ(agg.cells().size(), 3u);
  for (const campaign::CellResult& cell : agg.cells()) {
    EXPECT_TRUE(cell.degraded);
    EXPECT_EQ(cell.attempts, 3);  // 1 try + 2 retries
    EXPECT_TRUE(cell.fault.enabled);
    EXPECT_GT(cell.fault.mq_dropped, 0u);
  }
  EXPECT_EQ(stats.degraded_cells, 3u);
  EXPECT_EQ(stats.retried_cells, 3u);

  // The aggregate JSON carries the per-cell fault block and flags.
  const std::string json = agg.ToJson();
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"mq_dropped\""), std::string::npos);
}

TEST(FaultCampaignTest, GateFailsOnNewlyDegradedCells) {
  // Gate a degraded run against a clean-claiming baseline: any newly
  // degraded cell must fail, whatever the latency numbers say.
  campaign::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(campaign::ParseCampaignSpec(kFaultedSpec, &spec, &error)) << error;
  campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunStats stats;
  ASSERT_TRUE(campaign::RunCampaign(spec, {}, &agg, &stats, &error)) << error;
  ASSERT_GT(agg.overall().degraded_cells, 0u);

  const std::string baseline = R"({"groups": {"overall": {"degraded_cells": 0}}})";
  campaign::GateOptions options;
  options.metrics = {};
  campaign::GateReport report;
  ASSERT_TRUE(campaign::RunRegressionGate(baseline, agg, options, &report, &error)) << error;
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].metric, "degraded_cells");
}

// --------------------------------------------------------- fault sweep --

constexpr char kSweepSpec[] =
    "name = drop-sweep\n"
    "os = nt40\n"
    "app = notepad\n"
    "driver = human\n"
    "seeds = 2\n"
    "seed = 2026\n"
    "threshold_ms = 100\n"
    "sweep.fault.mq.drop_rate = 0, 0.05, 0.15, 0.3\n";

TEST(FaultSweepCampaignTest, LatencyVsDropRateMatrixIsSoundAndByteIdentical) {
  campaign::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(campaign::ParseCampaignSpec(kSweepSpec, &spec, &error)) << error;

  auto run = [&](int jobs) {
    campaign::CampaignRunOptions options;
    options.jobs = jobs;
    campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
    campaign::CampaignRunStats stats;
    std::string run_error;
    EXPECT_TRUE(campaign::RunCampaign(spec, options, &agg, &stats, &run_error)) << run_error;
    return agg.ToJson() + "\n---\n" + agg.ToCellsCsv();
  };
  const std::string one = run(1);
  const std::string four = run(4);
  EXPECT_EQ(one, four);  // the sweep keeps the --jobs determinism contract

  campaign::JsonValue root;
  ASSERT_TRUE(campaign::ParseJson(one.substr(0, one.find("\n---\n")), &root, &error)) << error;
  const campaign::JsonValue* groups = root.Find("groups");
  ASSERT_NE(groups, nullptr);

  // One group matrix row per fault point, keyed by its label.
  const std::vector<std::string> labels = {
      "fault:mq.drop_rate=0", "fault:mq.drop_rate=0.05", "fault:mq.drop_rate=0.15",
      "fault:mq.drop_rate=0.3"};
  std::vector<double> retries;
  for (const std::string& label : labels) {
    const campaign::JsonValue* g = groups->Find(label);
    ASSERT_NE(g, nullptr) << label;
    EXPECT_DOUBLE_EQ(g->NumberAt("cells"), 2.0);
    retries.push_back(g->NumberAt("input_retries"));
  }
  // Rate 0 is a true control: no drops, no retries, no degradation.
  EXPECT_DOUBLE_EQ(retries[0], 0.0);
  EXPECT_DOUBLE_EQ(groups->Find(labels[0])->NumberAt("degraded_cells"), 0.0);
  EXPECT_DOUBLE_EQ(groups->Find(labels[0])->NumberAt("mq_dropped"), 0.0);
  // User retries grow (weakly) with the drop rate across the sweep.
  for (std::size_t i = 1; i < retries.size(); ++i) {
    EXPECT_GE(retries[i], retries[i - 1]) << "rate step " << i;
  }
  EXPECT_GT(retries.back(), 0.0);

  // The rendered matrices include the per-fault-point table.
  campaign::CampaignAggregate agg(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunStats stats;
  ASSERT_TRUE(campaign::RunCampaign(spec, {}, &agg, &stats, &error)) << error;
  const std::string tables = agg.RenderTables();
  EXPECT_NE(tables.find("latency by fault point"), std::string::npos);
  EXPECT_NE(tables.find("mq.drop_rate=0.3"), std::string::npos);
}

}  // namespace
}  // namespace ilat
