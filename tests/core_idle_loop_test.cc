// IdleLoopInstrument semantics.
//
// Two contracts pinned here:
//
//   * Jitter blindness (IdleLoopJitterTest): stolen-time detection always
//     accounts against the *nominal* calibrated period, even when a
//     clock-jitter fault makes the actual pass length differ.  The real
//     instrument only knows its one-time calibration, so jitter biases its
//     estimate by exactly the jitter delta -- that bias is the modelled
//     measurement error, not a bug (see idle_loop.h).
//
//   * Batching equivalence (IdleLoopBatchingTest): the strided fast path
//     that folds thousands of passes into one scheduler action must
//     produce records byte-identical to the one-action-per-pass path,
//     including when interrupts steal time mid-batch.

#include "src/core/idle_loop.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace ilat {
namespace {

Cycles P() { return MillisecondsToCycles(1.0); }

TEST(IdleLoopJitterTest, JitteredPassIsReportedAsStolenTime) {
  Simulation sim;
  IdleLoopInstrument idle(&sim, P(), /*max_records=*/8);
  // Pass 3 runs twice as long as calibrated; every other pass is nominal.
  idle.SetPeriodJitter([](Cycles nominal, std::uint64_t pass) {
    return pass == 3 ? 2 * nominal : nominal;
  });
  sim.scheduler().AddThread(&idle);
  sim.RunUntil(MillisecondsToCycles(100.0));

  // Records at P, 2P, 3P, 5P, 6P, ... -- the jittered pass elongates one
  // interval to exactly the 2x detection threshold.
  const auto& recs = idle.trace().records();
  ASSERT_EQ(recs.size(), 8u);
  EXPECT_EQ(recs[2].timestamp, 3 * P());
  EXPECT_EQ(recs[3].timestamp, 5 * P());
  EXPECT_EQ(recs[4].timestamp, 6 * P());

  // The instrument is blind to the jitter: it sees a 2P gap against a
  // nominal-P calibration and books P of "stolen" time, although nothing
  // preempted it.  That spurious detection is the pinned semantics.
  EXPECT_EQ(sim.tracer().metrics().GetCounter("idle.gaps")->value(), 1u);
  const auto* stolen = sim.tracer().metrics().GetHistogram("idle.stolen_ms");
  EXPECT_EQ(stolen->count(), 1u);
  EXPECT_DOUBLE_EQ(stolen->sum(), CyclesToMilliseconds(P()));
  EXPECT_EQ(sim.tracer().metrics().GetCounter("idle.records")->value(), 8u);
}

TEST(IdleLoopJitterTest, NominalJitterDetectsNothing) {
  // An identity jitter function exercises the per-pass path but changes
  // no timing: no gaps may be detected.
  Simulation sim;
  IdleLoopInstrument idle(&sim, P(), /*max_records=*/16);
  idle.SetPeriodJitter([](Cycles nominal, std::uint64_t) { return nominal; });
  sim.scheduler().AddThread(&idle);
  sim.RunUntil(MillisecondsToCycles(100.0));
  EXPECT_EQ(sim.tracer().metrics().GetCounter("idle.gaps")->value(), 0u);
  EXPECT_EQ(idle.trace().records().size(), 16u);
}

// Runs one instrument to completion and returns its record timestamps.
// `per_pass` forces the unbatched path via an identity jitter function.
std::vector<Cycles> RunInstrument(bool per_pass, bool with_interrupts) {
  Simulation sim;
  IdleLoopInstrument idle(&sim, P(), /*max_records=*/64);
  if (per_pass) {
    idle.SetPeriodJitter([](Cycles nominal, std::uint64_t) { return nominal; });
  }
  sim.scheduler().AddThread(&idle);
  if (with_interrupts) {
    // Steal time twice, mid-batch: a 3 ms ISR at 10.5 ms and a 0.25 ms
    // ISR at 40.25 ms (sub-period, so it delays without crossing the
    // detection threshold on its own).
    WorkProfile wp;
    sim.queue().ScheduleAt(MillisecondsToCycles(10.5), [&] {
      sim.scheduler().QueueInterrupt(Work::FromMilliseconds(3.0, wp));
    });
    sim.queue().ScheduleAt(MillisecondsToCycles(40.25), [&] {
      sim.scheduler().QueueInterrupt(Work::FromMilliseconds(0.25, wp));
    });
  }
  sim.RunUntil(MillisecondsToCycles(500.0));
  std::vector<Cycles> out;
  for (const TraceRecord& r : idle.trace().records()) {
    out.push_back(r.timestamp);
  }
  EXPECT_EQ(out.size(), 64u);
  return out;
}

TEST(IdleLoopBatchingTest, BatchedRecordsMatchPerPassQuietSystem) {
  EXPECT_EQ(RunInstrument(/*per_pass=*/false, /*with_interrupts=*/false),
            RunInstrument(/*per_pass=*/true, /*with_interrupts=*/false));
}

TEST(IdleLoopBatchingTest, BatchedRecordsMatchPerPassUnderPreemption) {
  const std::vector<Cycles> batched =
      RunInstrument(/*per_pass=*/false, /*with_interrupts=*/true);
  EXPECT_EQ(batched, RunInstrument(/*per_pass=*/true, /*with_interrupts=*/true));
  // And the preemption was actually observed: the 3 ms ISR elongated one
  // interval past the 2x threshold somewhere in the stream.
  bool saw_gap = false;
  for (std::size_t i = 1; i < batched.size(); ++i) {
    if (batched[i] - batched[i - 1] >= 2 * P()) {
      saw_gap = true;
    }
  }
  EXPECT_TRUE(saw_gap);
}

}  // namespace
}  // namespace ilat
