// Media playback: frame pacing, deadline analysis, behaviour under load.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/deadlines.h"
#include "src/apps/batch_thread.h"
#include "src/apps/media_player.h"
#include "src/core/measurement.h"

namespace ilat {
namespace {

SessionResult Play(MeasurementSession& session, int frames) {
  Script s;
  s.push_back(ScriptItem::Command(kCmdMediaPlay + frames, 100.0, "play"));
  return session.Run(s);
}

SessionOptions LongDrain(double seconds) {
  SessionOptions o;
  o.drain_after = SecondsToCycles(seconds);  // playback outlives the script
  return o;
}

TEST(DeadlineAnalysisTest, CleanPlaybackHasNoMisses) {
  std::vector<FrameRecord> frames;
  const Cycles period = MillisecondsToCycles(33.3);
  for (int i = 0; i < 30; ++i) {
    const Cycles t = i * period;
    frames.push_back(FrameRecord{t, t + MillisecondsToCycles(10)});
  }
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.frames_completed, 30);
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_NEAR(r.jitter_ms, 0.0, 1e-9);
  EXPECT_NEAR(r.achieved_fps, 30.0 / CyclesToSeconds(29 * period + MillisecondsToCycles(10)),
              0.1);
}

TEST(DeadlineAnalysisTest, DetectsMissesAndDrops) {
  std::vector<FrameRecord> frames;
  const Cycles period = MillisecondsToCycles(33.3);
  // Frame 0 on time; frame at slot 1 finishes 20 ms late; slot 2 skipped
  // (next frame scheduled at slot 3).
  frames.push_back(FrameRecord{0, MillisecondsToCycles(10)});
  frames.push_back(
      FrameRecord{period, period + period + MillisecondsToCycles(20)});
  frames.push_back(FrameRecord{3 * period, 3 * period + MillisecondsToCycles(5)});
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.missed, 1);
  EXPECT_NEAR(r.max_lateness_ms, 20.0, 0.1);
  EXPECT_EQ(r.dropped, 1);
}

TEST(DeadlineAnalysisTest, EmptyInputSafe) {
  const DeadlineReport r = AnalyzeDeadlines({}, MillisecondsToCycles(33));
  EXPECT_EQ(r.frames_completed, 0);
  EXPECT_EQ(r.miss_rate, 0.0);
}

TEST(DeadlineAnalysisTest, SingleFrameOnTime) {
  const Cycles period = MillisecondsToCycles(33.3);
  const DeadlineReport r =
      AnalyzeDeadlines({FrameRecord{0, MillisecondsToCycles(10)}}, period);
  EXPECT_EQ(r.frames_completed, 1);
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.miss_rate, 0.0);
  EXPECT_NEAR(r.jitter_ms, 0.0, 1e-9);  // no gaps to measure
}

TEST(DeadlineAnalysisTest, SingleFrameLate) {
  const Cycles period = MillisecondsToCycles(33.3);
  const DeadlineReport r =
      AnalyzeDeadlines({FrameRecord{0, period + MillisecondsToCycles(7)}}, period);
  EXPECT_EQ(r.missed, 1);
  EXPECT_EQ(r.miss_rate, 1.0);
  EXPECT_NEAR(r.max_lateness_ms, 7.0, 0.1);
}

TEST(DeadlineAnalysisTest, NonPositivePeriodSafe) {
  const std::vector<FrameRecord> frames = {FrameRecord{0, 100}, FrameRecord{200, 300}};
  for (const Cycles period : {Cycles{0}, Cycles{-5}}) {
    const DeadlineReport r = AnalyzeDeadlines(frames, period);
    EXPECT_EQ(r.frames_completed, 2);
    EXPECT_EQ(r.missed, 0);
    EXPECT_EQ(r.dropped, 0);
    EXPECT_EQ(r.miss_rate, 0.0);
  }
}

TEST(DeadlineAnalysisTest, AllFramesLate) {
  std::vector<FrameRecord> frames;
  const Cycles period = MillisecondsToCycles(33.3);
  for (int i = 0; i < 10; ++i) {
    const Cycles t = i * period;
    frames.push_back(FrameRecord{t, t + 2 * period});
  }
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.missed, 10);
  EXPECT_EQ(r.miss_rate, 1.0);
  EXPECT_NEAR(r.max_lateness_ms, CyclesToMilliseconds(period), 0.1);
}

TEST(DeadlineAnalysisTest, JitterWithoutMisses) {
  // Completions wobble inside each period: jitter shows, misses do not.
  std::vector<FrameRecord> frames;
  const Cycles period = MillisecondsToCycles(40.0);
  for (int i = 0; i < 20; ++i) {
    const Cycles t = i * period;
    const Cycles wobble = MillisecondsToCycles(i % 2 == 0 ? 5.0 : 15.0);
    frames.push_back(FrameRecord{t, t + wobble});
  }
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_GT(r.jitter_ms, 5.0);
}

// Regression: drop counting truncated `gap / period`, so the timer drift
// of a real dropped slot (gap ~1.97 periods) counted as adjacent frames
// and the drop vanished.  Gaps now round to the nearest whole slot.
TEST(DeadlineAnalysisTest, DropCountRoundsGapToNearestSlot) {
  const Cycles period = MillisecondsToCycles(33.3);
  auto gap_drops = [&](double periods) {
    const Cycles second = static_cast<Cycles>(periods * static_cast<double>(period));
    const std::vector<FrameRecord> frames = {
        FrameRecord{0, MillisecondsToCycles(5)},
        FrameRecord{second, second + MillisecondsToCycles(5)}};
    return AnalyzeDeadlines(frames, period).dropped;
  };
  EXPECT_EQ(gap_drops(1.0), 0);
  EXPECT_EQ(gap_drops(1.03), 0);   // drift, not a drop
  EXPECT_EQ(gap_drops(1.97), 1);   // a dropped slot with drift (was 0)
  EXPECT_EQ(gap_drops(2.0), 1);
  EXPECT_EQ(gap_drops(3.02), 2);
}

// Regression: miss_rate divided by completed frames only, so a player
// dropping every other frame (but finishing the rest on time) scored a
// perfect 0.0.  Dropped frames are deadlines missed outright and belong
// in both the numerator and the denominator.
TEST(DeadlineAnalysisTest, MissRateCountsDroppedFrames) {
  const Cycles period = MillisecondsToCycles(33.3);
  // Frames at slots 0 and 2, both completing on time; slot 1 dropped.
  const std::vector<FrameRecord> frames = {
      FrameRecord{0, MillisecondsToCycles(5)},
      FrameRecord{2 * period, 2 * period + MillisecondsToCycles(5)}};
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 1);
  EXPECT_NEAR(r.miss_rate, 1.0 / 3.0, 1e-9);
}

TEST(MediaPlayerTest, PlaysRequestedFramesAtPace) {
  MeasurementSession session(MakeNt40(), LongDrain(5.0));
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Play(session, 90);  // 3 seconds at 30 fps
  ASSERT_EQ(player->frames().size(), 90u);
  const DeadlineReport r = AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_NEAR(r.achieved_fps, 30.0, 0.5);
  EXPECT_LT(r.jitter_ms, 5.0);
}

TEST(MediaPlayerTest, FramesAlignToPeriodBoundaries) {
  MeasurementSession session(MakeNt40(), LongDrain(3.0));
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Play(session, 30);
  const Cycles period = MediaPlayerParams{}.period();
  for (const FrameRecord& f : player->frames()) {
    // Scheduled times land within the timer-ISR delivery cost of a
    // boundary.
    const Cycles phase = f.scheduled % period;
    EXPECT_LT(phase, MillisecondsToCycles(0.5));
  }
}

// Regression: a play command landing mid-playback armed a second frame
// timer while the first chain was still live, so two interleaved chains
// fired and playback ran at double rate.  A restart must reuse the armed
// chain.
TEST(MediaPlayerTest, PlayCommandMidPlaybackDoesNotDoubleTimerRate) {
  MeasurementSession session(MakeNt40(), LongDrain(8.0));
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Script s;
  s.push_back(ScriptItem::Command(kCmdMediaPlay + 120, 100.0, "play"));
  // Restart one second into playback (~30 frames in).
  s.push_back(ScriptItem::Command(kCmdMediaPlay + 120, 1000.0, "replay"));
  session.Run(s);
  // The restart clears recorded frames and plays 120 more -- at the
  // period rate.  With the double-armed chain the same 120 frames landed
  // two per period (~60 fps) with half-period gaps.
  ASSERT_EQ(player->frames().size(), 120u);
  const DeadlineReport r =
      AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  EXPECT_EQ(r.dropped, 0);
  EXPECT_NEAR(r.achieved_fps, 30.0, 1.0);
}

// Regression: the frame count decoded from the command param went into
// frames_.reserve() unvalidated, so a corrupt or hostile param (e.g. a
// duplicated message mangled upstream) sized a multi-gigabyte vector.
// Out-of-range counts now fall back to the default length.
TEST(MediaPlayerTest, OutOfRangeFrameCountFallsBackToDefault) {
  MeasurementSession session(MakeNt40(), LongDrain(0.5));
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Script s;
  s.push_back(ScriptItem::Command(kCmdMediaPlay + 900'000'000, 50.0, "play"));
  session.Run(s);
  // The 900M request was rejected at the app boundary: capacity reflects
  // the clamped default (300), not the hostile param.
  EXPECT_LE(player->frames().capacity(), 1'000'000u);
  EXPECT_TRUE(player->playing());  // playback still started
}

TEST(MediaPlayerTest, SaturatingLoadDropsFramesBoostCannotFullyHelp) {
  auto report = [](bool with_batch, int boost) {
    OsProfile os = MakeNt40();
    os.wake_priority_boost = boost;
    MeasurementSession session(os, LongDrain(8.0));
    auto app = std::make_unique<MediaPlayerApp>();
    MediaPlayerApp* player = app.get();
    session.AttachApp(std::move(app));
    std::unique_ptr<BatchThread> batch;
    if (with_batch) {
      BatchOptions bo;
      bo.duty_cycle = 0.9;  // heavy load ...
      bo.quantum = MillisecondsToCycles(20);  // ... with coarse quanta
      batch = std::make_unique<BatchThread>("job", 10, WorkProfile{}, bo,
                                            &session.system().sim().queue(),
                                            &session.system().sim().scheduler());
      session.system().sim().scheduler().AddThread(batch.get());
    }
    Play(session, 120);
    return AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  };
  const DeadlineReport clean = report(false, 0);
  const DeadlineReport loaded = report(true, 0);
  const DeadlineReport boosted = report(true, 2);
  EXPECT_EQ(clean.missed + clean.dropped, 0);
  // A coarse-quantum equal-priority hog degrades playback visibly ...
  EXPECT_GT(loaded.missed + loaded.dropped, 10);
  // ... and the NT wake boost (which lets the woken player preempt the
  // hog mid-quantum) restores most of it.
  EXPECT_LT(boosted.missed + boosted.dropped, (loaded.missed + loaded.dropped) / 4);
}

}  // namespace
}  // namespace ilat
