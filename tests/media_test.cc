// Media playback: frame pacing, deadline analysis, behaviour under load.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/deadlines.h"
#include "src/apps/batch_thread.h"
#include "src/apps/media_player.h"
#include "src/core/measurement.h"

namespace ilat {
namespace {

SessionResult Play(MeasurementSession& session, int frames) {
  Script s;
  s.push_back(ScriptItem::Command(kCmdMediaPlay + frames, 100.0, "play"));
  return session.Run(s);
}

SessionOptions LongDrain(double seconds) {
  SessionOptions o;
  o.drain_after = SecondsToCycles(seconds);  // playback outlives the script
  return o;
}

TEST(DeadlineAnalysisTest, CleanPlaybackHasNoMisses) {
  std::vector<FrameRecord> frames;
  const Cycles period = MillisecondsToCycles(33.3);
  for (int i = 0; i < 30; ++i) {
    const Cycles t = i * period;
    frames.push_back(FrameRecord{t, t + MillisecondsToCycles(10)});
  }
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.frames_completed, 30);
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_NEAR(r.jitter_ms, 0.0, 1e-9);
  EXPECT_NEAR(r.achieved_fps, 30.0 / CyclesToSeconds(29 * period + MillisecondsToCycles(10)),
              0.1);
}

TEST(DeadlineAnalysisTest, DetectsMissesAndDrops) {
  std::vector<FrameRecord> frames;
  const Cycles period = MillisecondsToCycles(33.3);
  // Frame 0 on time; frame at slot 1 finishes 20 ms late; slot 2 skipped
  // (next frame scheduled at slot 3).
  frames.push_back(FrameRecord{0, MillisecondsToCycles(10)});
  frames.push_back(
      FrameRecord{period, period + period + MillisecondsToCycles(20)});
  frames.push_back(FrameRecord{3 * period, 3 * period + MillisecondsToCycles(5)});
  const DeadlineReport r = AnalyzeDeadlines(frames, period);
  EXPECT_EQ(r.missed, 1);
  EXPECT_NEAR(r.max_lateness_ms, 20.0, 0.1);
  EXPECT_EQ(r.dropped, 1);
}

TEST(DeadlineAnalysisTest, EmptyInputSafe) {
  const DeadlineReport r = AnalyzeDeadlines({}, MillisecondsToCycles(33));
  EXPECT_EQ(r.frames_completed, 0);
  EXPECT_EQ(r.miss_rate, 0.0);
}

TEST(MediaPlayerTest, PlaysRequestedFramesAtPace) {
  MeasurementSession session(MakeNt40(), LongDrain(5.0));
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Play(session, 90);  // 3 seconds at 30 fps
  ASSERT_EQ(player->frames().size(), 90u);
  const DeadlineReport r = AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  EXPECT_EQ(r.missed, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_NEAR(r.achieved_fps, 30.0, 0.5);
  EXPECT_LT(r.jitter_ms, 5.0);
}

TEST(MediaPlayerTest, FramesAlignToPeriodBoundaries) {
  MeasurementSession session(MakeNt40(), LongDrain(3.0));
  auto app = std::make_unique<MediaPlayerApp>();
  MediaPlayerApp* player = app.get();
  session.AttachApp(std::move(app));
  Play(session, 30);
  const Cycles period = MediaPlayerParams{}.period();
  for (const FrameRecord& f : player->frames()) {
    // Scheduled times land within the timer-ISR delivery cost of a
    // boundary.
    const Cycles phase = f.scheduled % period;
    EXPECT_LT(phase, MillisecondsToCycles(0.5));
  }
}

TEST(MediaPlayerTest, SaturatingLoadDropsFramesBoostCannotFullyHelp) {
  auto report = [](bool with_batch, int boost) {
    OsProfile os = MakeNt40();
    os.wake_priority_boost = boost;
    MeasurementSession session(os, LongDrain(8.0));
    auto app = std::make_unique<MediaPlayerApp>();
    MediaPlayerApp* player = app.get();
    session.AttachApp(std::move(app));
    std::unique_ptr<BatchThread> batch;
    if (with_batch) {
      BatchOptions bo;
      bo.duty_cycle = 0.9;  // heavy load ...
      bo.quantum = MillisecondsToCycles(20);  // ... with coarse quanta
      batch = std::make_unique<BatchThread>("job", 10, WorkProfile{}, bo,
                                            &session.system().sim().queue(),
                                            &session.system().sim().scheduler());
      session.system().sim().scheduler().AddThread(batch.get());
    }
    Play(session, 120);
    return AnalyzeDeadlines(player->frames(), MediaPlayerParams{}.period());
  };
  const DeadlineReport clean = report(false, 0);
  const DeadlineReport loaded = report(true, 0);
  const DeadlineReport boosted = report(true, 2);
  EXPECT_EQ(clean.missed + clean.dropped, 0);
  // A coarse-quantum equal-priority hog degrades playback visibly ...
  EXPECT_GT(loaded.missed + loaded.dropped, 10);
  // ... and the NT wake boost (which lets the woken player preempt the
  // hog mid-quantum) restores most of it.
  EXPECT_LT(boosted.missed + boosted.dropped, (loaded.missed + loaded.dropped) / 4);
}

}  // namespace
}  // namespace ilat
