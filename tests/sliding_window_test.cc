#include "src/analysis/sliding_window.h"

#include <gtest/gtest.h>

namespace ilat {
namespace {

EventRecord Ev(double start_s, double latency_ms) {
  EventRecord e;
  e.type = MessageType::kChar;
  e.start = SecondsToCycles(start_s);
  e.busy = MillisecondsToCycles(latency_ms);
  e.end = e.start + e.busy;
  e.wall = e.busy;
  return e;
}

TEST(SlidingWindowTest, EmptyInputsSafe) {
  EXPECT_TRUE(WindowedLatencyPercentile({}, SecondsToCycles(1), SecondsToCycles(1), 95).empty());
  EXPECT_TRUE(WindowedEventRate({}, SecondsToCycles(1), SecondsToCycles(1)).empty());
  EXPECT_TRUE(WindowedLatencyPercentile({Ev(0, 1)}, 0, SecondsToCycles(1), 95).empty());
}

TEST(SlidingWindowTest, PercentileTracksLocalRegime) {
  // 10 s of 5 ms events, then 10 s of 50 ms events.
  std::vector<EventRecord> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(Ev(0.1 * i, 5.0));
  }
  for (int i = 0; i < 100; ++i) {
    events.push_back(Ev(10.0 + 0.1 * i, 50.0));
  }
  const auto curve = WindowedLatencyPercentile(events, SecondsToCycles(2.0),
                                               SecondsToCycles(1.0), 95.0);
  ASSERT_FALSE(curve.empty());
  // Early windows see the 5 ms regime, late windows the 50 ms regime.
  EXPECT_NEAR(curve.front().y, 5.0, 0.5);
  EXPECT_NEAR(curve.back().y, 50.0, 0.5);
  // The transition is monotone in between.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].y, curve[i - 1].y - 1e-9);
  }
}

TEST(SlidingWindowTest, RateCountsEventsPerSecond) {
  std::vector<EventRecord> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(Ev(0.1 * i, 1.0));  // 10 events/s for 5 s
  }
  const auto rate = WindowedEventRate(events, SecondsToCycles(1.0), SecondsToCycles(1.0));
  ASSERT_FALSE(rate.empty());
  for (const CurvePoint& p : rate) {
    EXPECT_NEAR(p.y, 10.0, 1.1);
  }
}

TEST(SlidingWindowTest, WindowsWithoutEventsSkipped) {
  // Two bursts separated by a 20 s gap.
  std::vector<EventRecord> events{Ev(0.0, 1), Ev(0.5, 1), Ev(20.0, 1)};
  const auto rate = WindowedEventRate(events, SecondsToCycles(1.0), SecondsToCycles(1.0));
  for (const CurvePoint& p : rate) {
    EXPECT_GT(p.y, 0.0);  // no zero-event windows emitted
  }
  // The gap is visible as missing samples between ~2 s and ~20 s.
  bool has_gap = false;
  for (std::size_t i = 1; i < rate.size(); ++i) {
    has_gap |= (rate[i].x - rate[i - 1].x) > 10.0;
  }
  EXPECT_TRUE(has_gap);
}

}  // namespace
}  // namespace ilat
