// Tests for the toolkit extensions: queue-delay decomposition, session
// persistence, asynchronous I/O, the print path, and the blinking cursor.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "src/analysis/irritation.h"
#include "src/apps/commands.h"
#include "src/apps/notepad.h"
#include "src/apps/powerpoint.h"
#include "src/core/measurement.h"
#include "src/core/session_io.h"
#include "src/input/typist.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Queue-delay decomposition.

TEST(QueueDelayTest, SmallUnderRealisticPacing) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<NotepadApp>());
  Random rng(3);
  TypistParams tp;
  Typist typist(tp, &rng);
  const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 120)));
  for (const EventRecord& e : r.events) {
    EXPECT_GE(e.queue_delay(), 0);
    EXPECT_LT(e.queue_delay_ms(), 1.0);  // ISR + GetMessage only
    EXPECT_LE(e.retrieved, e.end);
  }
}

TEST(QueueDelayTest, GrowsUnderSaturatedInput) {
  SessionOptions opts;
  opts.driver = DriverKind::kHuman;
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<NotepadApp>());
  Script s;
  for (int i = 0; i < 50; ++i) {
    s.push_back(ScriptItem::Char('a', 0.0));  // infinitely fast user
  }
  const SessionResult r = session.Run(s);
  ASSERT_EQ(r.events.size(), 50u);
  // Later events queue behind earlier handling.
  double max_delay = 0.0;
  for (const EventRecord& e : r.events) {
    max_delay = std::max(max_delay, e.queue_delay_ms());
  }
  EXPECT_GT(max_delay, 50.0);
}

// ---------------------------------------------------------------------------
// Session persistence.

TEST(SessionIoTest, RoundTripPreservesEverything) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptPageDown, 200.0, "Page down"));
  s.push_back(ScriptItem::Command(kCmdPptSave, 500.0, "Save document"));
  const SessionResult original = session.Run(s);

  const std::string path = TempPath("session.ilat");
  ASSERT_TRUE(SaveSessionResult(path, original));

  SessionResult loaded;
  ASSERT_TRUE(LoadSessionResult(path, &loaded));

  EXPECT_EQ(loaded.trace_period, original.trace_period);
  EXPECT_EQ(loaded.trace_start, original.trace_start);
  EXPECT_EQ(loaded.run_end, original.run_end);
  EXPECT_EQ(loaded.elapsed(), original.elapsed());
  ASSERT_EQ(loaded.trace.size(), original.trace.size());
  EXPECT_EQ(loaded.trace.back().timestamp, original.trace.back().timestamp);

  ASSERT_EQ(loaded.events.size(), original.events.size());
  for (std::size_t i = 0; i < loaded.events.size(); ++i) {
    EXPECT_EQ(loaded.events[i].msg_seq, original.events[i].msg_seq);
    EXPECT_EQ(loaded.events[i].type, original.events[i].type);
    EXPECT_EQ(loaded.events[i].start, original.events[i].start);
    EXPECT_EQ(loaded.events[i].busy, original.events[i].busy);
    EXPECT_EQ(loaded.events[i].io_wait, original.events[i].io_wait);
    EXPECT_EQ(loaded.events[i].label, original.events[i].label);
  }

  ASSERT_EQ(loaded.io_pending.size(), original.io_pending.size());
  for (int i = 0; i < kNumHwEvents; ++i) {
    EXPECT_EQ(loaded.counters.counts[static_cast<std::size_t>(i)],
              original.counters.counts[static_cast<std::size_t>(i)]);
  }

  // Derived analyses work on the loaded copy.
  const BusyProfile busy = loaded.MakeBusyProfile();
  EXPECT_EQ(busy.TotalBusy(), original.MakeBusyProfile().TotalBusy());
}

TEST(SessionIoTest, RoundTripPreservesRetryWait) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptPageDown, 200.0, "Page down"));
  SessionResult original = session.Run(s);
  ASSERT_FALSE(original.events.empty());
  original.events[0].retry_wait = MillisecondsToCycles(120.0);

  const std::string path = TempPath("session_retry.ilat");
  ASSERT_TRUE(SaveSessionResult(path, original));
  SessionResult loaded;
  ASSERT_TRUE(LoadSessionResult(path, &loaded));
  ASSERT_EQ(loaded.events.size(), original.events.size());
  EXPECT_EQ(loaded.events[0].retry_wait, original.events[0].retry_wait);
  EXPECT_EQ(loaded.events[0].latency(), original.events[0].latency());
}

TEST(SessionIoTest, LoadsVersion1FilesWithZeroRetryWait) {
  // A pre-retry_wait file: eight numeric event fields, then the label.
  const std::string path = TempPath("session_v1.ilat");
  {
    std::ofstream out(path);
    out << "ilat-session 1\n"
           "meta 10 0 5 100 200\n"
           "counters 0\n"
           "trace 0\n"
           "events 1\n"
           "7 1 97 10 11 50 30 4 old-label\n"
           "io 0\n";
  }
  SessionResult r;
  ASSERT_TRUE(LoadSessionResult(path, &r));
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].msg_seq, 7u);
  EXPECT_EQ(r.events[0].retry_wait, 0);
  EXPECT_EQ(r.events[0].io_wait, 4);
  EXPECT_EQ(r.events[0].label, "old-label");
}

TEST(SessionIoTest, RejectsFutureFormatVersions) {
  const std::string path = TempPath("session_v9.ilat");
  {
    std::ofstream out(path);
    out << "ilat-session 9\nmeta 0 0 0 0 0\ncounters 0\ntrace 0\nevents 0\nio 0\n";
  }
  SessionResult r;
  EXPECT_FALSE(LoadSessionResult(path, &r));
}

TEST(SessionIoTest, RejectsGarbage) {
  const std::string path = TempPath("garbage.ilat");
  {
    std::ofstream out(path);
    out << "not an ilat file\n";
  }
  SessionResult r;
  EXPECT_FALSE(LoadSessionResult(path, &r));
  EXPECT_FALSE(LoadSessionResult("/nonexistent/nope", &r));
}

TEST(SessionIoTest, RejectsCorruptCounterValuesInsteadOfThrowing) {
  // The counter loader used an unguarded std::stoull, so a damaged file
  // terminated the process ("cycles=abc" -> std::invalid_argument,
  // "cycles=99999999999999999999" -> std::out_of_range) instead of
  // returning false like every other malformed section.
  for (const char* pair : {"cycles=abc", "cycles=", "cycles=-3", "cycles=1x",
                           "cycles=99999999999999999999", "cycles"}) {
    const std::string path = TempPath("corrupt_counter.ilat");
    {
      std::ofstream out(path);
      out << "ilat-session 2\nmeta 10 0 5 100 200\ncounters 1\n" << pair
          << "\ntrace 0\nevents 0\nio 0\n";
    }
    SessionResult r;
    EXPECT_FALSE(LoadSessionResult(path, &r)) << pair;
  }
}

// ---------------------------------------------------------------------------
// Asynchronous I/O (print path).

TEST(PrintTest, PrintLatencyExcludesBackgroundSpool) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptPrint, 200.0, "Print"));
  const SessionResult r = session.Run(s);
  ASSERT_EQ(r.events.size(), 1u);
  // Foreground: spooling compute only; the disk write happens after the
  // event completes.
  EXPECT_LT(r.events[0].latency_ms(), 600.0);
  EXPECT_GT(r.events[0].latency_ms(), 100.0);
  // The spool file did get written.
  EXPECT_GT(session.system().sim().disk().blocks_transferred(), 100u);
  // And no synchronous I/O wait was charged.
  EXPECT_EQ(r.events[0].io_wait, 0);
}

TEST(PrintTest, AsyncIoDoesNotCreateWaitIntervals) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptPrint, 200.0, "Print"));
  const SessionResult r = session.Run(s);
  // io_pending records only synchronous I/O; the print spool is async.
  EXPECT_TRUE(r.io_pending.empty());
  EXPECT_EQ(r.user_state_totals[static_cast<int>(UserState::kWaitIo)], 0);
}

TEST(PrintTest, SaveByContrastWaitsOnIo) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<PowerpointApp>());
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptSave, 200.0, "Save document"));
  const SessionResult r = session.Run(s);
  EXPECT_FALSE(r.io_pending.empty());
  EXPECT_GT(r.user_state_totals[static_cast<int>(UserState::kWaitIo)], 0);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_GT(r.events[0].io_wait, 0);
}

// ---------------------------------------------------------------------------
// Blinking cursor.

TEST(BlinkingCursorTest, ConsumesCpuWithoutAffectingLatency) {
  auto run = [](bool blink) {
    NotepadParams params;
    params.blink_cursor = blink;
    MeasurementSession session(MakeNt40());
    auto app = std::make_unique<NotepadApp>(params);
    NotepadApp* ptr = app.get();
    session.AttachApp(std::move(app));
    Random rng(3);
    TypistParams tp;
    Typist typist(tp, &rng);
    const SessionResult r = session.Run(typist.Type(GenerateProse(&rng, 150)));
    double mean = 0.0;
    for (const EventRecord& e : r.events) {
      mean += e.latency_ms();
    }
    mean /= static_cast<double>(r.events.size());
    return std::tuple<double, Cycles, std::uint64_t>{mean, r.gt_busy_cycles,
                                                     ptr->cursor_blinks()};
  };
  const auto [mean_off, busy_off, blinks_off] = run(false);
  const auto [mean_on, busy_on, blinks_on] = run(true);
  EXPECT_EQ(blinks_off, 0u);
  EXPECT_GT(blinks_on, 20u);
  EXPECT_GT(busy_on, busy_off);                    // real CPU consumed
  EXPECT_NEAR(mean_on, mean_off, mean_off * 0.1);  // latency unaffected
}

// ---------------------------------------------------------------------------
// Irritation report.

TEST(IrritationTest, EmptyEventsSafe) {
  const IrritationReport r = AnalyzeIrritation({}, 100.0);
  EXPECT_EQ(r.events_total, 0u);
  EXPECT_EQ(r.rate_per_minute, 0.0);
}

TEST(IrritationTest, CountsAndPercentiles) {
  std::vector<EventRecord> events;
  for (int i = 0; i < 60; ++i) {
    EventRecord e;
    e.type = MessageType::kChar;
    e.start = SecondsToCycles(static_cast<double>(i));
    e.busy = MillisecondsToCycles(i < 54 ? 50.0 : 200.0);  // 6 slow events
    e.end = e.start + e.busy;
    e.wall = e.busy;
    events.push_back(e);
  }
  const IrritationReport r = AnalyzeIrritation(events, 100.0);
  EXPECT_EQ(r.events_total, 60u);
  EXPECT_EQ(r.events_above, 6u);
  // 6 events over ~59 s of observation.
  EXPECT_NEAR(r.rate_per_minute, 6.0 / (59.0 / 60.0), 0.3);
  EXPECT_DOUBLE_EQ(r.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(r.max_ms, 200.0);
  // Slow events are events 54..59; the calm stretch before them is 54 s.
  EXPECT_NEAR(r.longest_calm_s, 54.0, 0.5);
}

TEST(IrritationTest, LiveSessionProducesSaneReport) {
  MeasurementSession session(MakeNt351());
  session.AttachApp(std::make_unique<NotepadApp>());
  Random rng(42);
  const SessionResult r = session.Run(NotepadWorkload(&rng));
  const IrritationReport rep = AnalyzeIrritation(r.events, 10.0, r.elapsed());
  EXPECT_EQ(rep.events_total, r.events.size());
  EXPECT_GT(rep.events_above, 0u);  // page refreshes exceed 10 ms
  EXPECT_GT(rep.p95_ms, rep.p50_ms - 1e-9);
  EXPECT_GE(rep.max_ms, rep.p99_ms);
  EXPECT_GT(rep.longest_calm_s, 1.0);
}

}  // namespace
}  // namespace ilat
