#include "src/sim/hardware_counters.h"

#include <gtest/gtest.h>

namespace ilat {
namespace {

TEST(HardwareCountersTest, NamesAreStable) {
  EXPECT_EQ(HwEventName(HwEvent::kInstructions), "instructions");
  EXPECT_EQ(HwEventName(HwEvent::kItlbMiss), "itlb_miss");
  EXPECT_EQ(HwEventName(HwEvent::kDtlbMiss), "dtlb_miss");
  EXPECT_EQ(HwEventName(HwEvent::kSegmentLoads), "segment_loads");
  EXPECT_EQ(HwEventName(HwEvent::kUnalignedAccess), "unaligned_access");
  EXPECT_EQ(HwEventName(HwEvent::kInterrupts), "interrupts");
}

TEST(HardwareCountersTest, AddAccumulates) {
  HardwareCounters c;
  c.Add(HwEvent::kInterrupts, 3);
  c.Add(HwEvent::kInterrupts, 4);
  EXPECT_EQ(c.Get(HwEvent::kInterrupts), 7u);
}

TEST(HardwareCountersTest, AccrueWorkMatchesRates) {
  HardwareCounters c;
  WorkProfile p;
  p.ipc = 0.5;
  p.data_refs_per_instr = 0.4;
  p.itlb_miss_per_kinstr = 2.0;
  p.dtlb_miss_per_kinstr = 4.0;
  p.seg_loads_per_kinstr = 10.0;
  p.unaligned_per_kinstr = 6.0;
  c.AccrueWork(2'000'000, p);  // 1M instructions
  EXPECT_EQ(c.Get(HwEvent::kInstructions), 1'000'000u);
  EXPECT_EQ(c.Get(HwEvent::kDataRefs), 400'000u);
  EXPECT_EQ(c.Get(HwEvent::kItlbMiss), 2'000u);
  EXPECT_EQ(c.Get(HwEvent::kDtlbMiss), 4'000u);
  EXPECT_EQ(c.Get(HwEvent::kSegmentLoads), 10'000u);
  EXPECT_EQ(c.Get(HwEvent::kUnalignedAccess), 6'000u);
}

TEST(HardwareCountersTest, ManySmallSlicesLoseNothing) {
  // Accrual must be exact across fine-grained preemption: this is what the
  // scheduler does when interrupts slice thread work.
  HardwareCounters whole;
  HardwareCounters sliced;
  WorkProfile p;
  p.ipc = 0.73;
  p.data_refs_per_instr = 0.37;
  p.itlb_miss_per_kinstr = 0.11;
  p.dtlb_miss_per_kinstr = 0.29;
  whole.AccrueWork(10'000'000, p);
  for (int i = 0; i < 10'000; ++i) {
    sliced.AccrueWork(1'000, p);
  }
  for (int e = 0; e < kNumHwEvents; ++e) {
    const auto ev = static_cast<HwEvent>(e);
    EXPECT_NEAR(static_cast<double>(whole.Get(ev)), static_cast<double>(sliced.Get(ev)), 1.0)
        << HwEventName(ev);
  }
}

TEST(HardwareCountersTest, SnapshotDeltaIsComponentwise) {
  HardwareCounters c;
  c.Add(HwEvent::kInterrupts, 5);
  const HwCounts before = c.Snapshot();
  c.Add(HwEvent::kInterrupts, 2);
  c.Add(HwEvent::kSegmentLoads, 9);
  const HwCounts delta = c.Snapshot() - before;
  EXPECT_EQ(delta[HwEvent::kInterrupts], 2u);
  EXPECT_EQ(delta[HwEvent::kSegmentLoads], 9u);
  EXPECT_EQ(delta[HwEvent::kInstructions], 0u);
}

TEST(HardwareCountersTest, ResetClearsEverything) {
  HardwareCounters c;
  c.Add(HwEvent::kDataRefs, 10);
  c.AccrueWork(1'000, WorkProfile{});
  c.Reset();
  for (int e = 0; e < kNumHwEvents; ++e) {
    EXPECT_EQ(c.Get(static_cast<HwEvent>(e)), 0u);
  }
}

TEST(WorkProfileTest, CyclesInstructionRoundTrip) {
  WorkProfile p;
  p.ipc = 0.8;
  EXPECT_EQ(p.CyclesForInstructions(800.0), 1'000);
  EXPECT_DOUBLE_EQ(p.InstructionsForCycles(1'000), 800.0);
}

TEST(WorkTest, FactoryHelpers) {
  WorkProfile p;
  p.ipc = 1.0;
  const Work w1 = Work::FromInstructions(5'000, p);
  EXPECT_EQ(w1.cycles, 5'000);
  const Work w2 = Work::FromMilliseconds(2.0, p);
  EXPECT_EQ(w2.cycles, MillisecondsToCycles(2.0));
}

}  // namespace
}  // namespace ilat
