// Batching / saturation semantics: paint coalescing and overlapping-event
// attribution.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/notepad.h"
#include "src/core/measurement.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

Script Burst(int n, double pause_ms) {
  Script s;
  for (int i = 0; i < n; ++i) {
    s.push_back(ScriptItem::Char('a', pause_ms));
  }
  return s;
}

TEST(PaintCoalescingTest, NoCoalescingUnderRealisticPacing) {
  NotepadParams params;
  params.coalesce_paint = true;
  SessionOptions opts;
  opts.driver = DriverKind::kHuman;
  MeasurementSession session(MakeNt40(), opts);
  auto app = std::make_unique<NotepadApp>(params);
  NotepadApp* ptr = app.get();
  session.AttachApp(std::move(app));
  session.Run(Burst(30, 200.0));  // realistic spacing
  // Input never queues behind handling, so nothing coalesces.
  EXPECT_EQ(ptr->coalesced_paints(), 0u);
}

TEST(PaintCoalescingTest, SaturatedInputCoalescesAggressively) {
  NotepadParams params;
  params.coalesce_paint = true;
  SessionOptions opts;
  opts.driver = DriverKind::kHuman;
  MeasurementSession session(MakeNt40(), opts);
  auto app = std::make_unique<NotepadApp>(params);
  NotepadApp* ptr = app.get();
  session.AttachApp(std::move(app));
  session.Run(Burst(30, 0.0));  // infinitely fast user
  // Nearly every echo is deferred into batch paints.
  EXPECT_GT(ptr->coalesced_paints(), 25u);
}

TEST(PaintCoalescingTest, BatchingCutsSaturatedEventLatency) {
  auto mean_latency = [](bool coalesce) {
    NotepadParams params;
    params.coalesce_paint = coalesce;
    SessionOptions opts;
    opts.driver = DriverKind::kHuman;
    MeasurementSession session(MakeNt40(), opts);
    session.AttachApp(std::make_unique<NotepadApp>(params));
    const SessionResult r = session.Run(Burst(40, 0.0));
    double total = 0.0;
    for (const EventRecord& e : r.events) {
      total += e.latency_ms();
    }
    return total / static_cast<double>(r.events.size());
  };
  // Batching makes the saturated numbers look much better -- which is the
  // distortion the paper warns about.
  EXPECT_LT(mean_latency(true), 0.5 * mean_latency(false));
}

TEST(OverlapAttributionTest, QueuedEventsCarryQueueDelay) {
  // Two keystrokes 1 ms apart: the second waits for the first's handler.
  SessionOptions opts;
  opts.driver = DriverKind::kHuman;
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<NotepadApp>());
  const SessionResult r = session.Run(Burst(2, 1.0));
  ASSERT_EQ(r.events.size(), 2u);
  const EventRecord& first = r.events[0];
  const EventRecord& second = r.events[1];
  // First event: negligible queueing.  Second: waited for the first.
  EXPECT_LT(first.queue_delay_ms(), 0.5);
  EXPECT_GT(second.queue_delay_ms(), 1.0);
  // The second event's latency covers its queueing (user-perceived).
  EXPECT_GT(second.latency_ms(), first.latency_ms());
  // Windows nest sanely.
  EXPECT_GE(second.end, first.end);
}

TEST(OverlapAttributionTest, SerializedEventsDoNotOverlapWindows) {
  // Under the Test driver, events serialise on WM_QUEUESYNC, so handling
  // windows are disjoint.
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<NotepadApp>());
  const SessionResult r = session.Run(Burst(10, 120.0));
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_GE(r.events[i].retrieved, r.events[i - 1].end);
  }
}

}  // namespace
}  // namespace ilat
