// Integration tests: full measurement sessions on real workloads, and
// validation of the faithful (trace + message log) extraction against the
// simulator's ground truth.

#include "src/core/measurement.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/desktop.h"
#include "src/apps/echo_app.h"
#include "src/apps/notepad.h"
#include "src/apps/window_manager.h"
#include "src/input/workloads.h"

namespace ilat {
namespace {

TEST(MeasurementSessionTest, IdleRunProducesCleanTrace) {
  MeasurementSession session(MakeNt40());
  const SessionResult r = session.RunIdle(SecondsToCycles(2.0));
  // ~2000 records (one per idle ms minus interrupt time).
  EXPECT_GT(r.trace.size(), 1'800u);
  EXPECT_LE(r.trace.size(), 2'001u);
  // Strictly increasing timestamps.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LT(r.trace[i - 1].timestamp, r.trace[i].timestamp);
  }
  // Idle-system utilization is tiny but non-zero (clock interrupts).
  const BusyProfile busy = r.MakeBusyProfile();
  const double util = busy.UtilizationIn(0, SecondsToCycles(2.0));
  EXPECT_GT(util, 0.0);
  EXPECT_LT(util, 0.02);
}

TEST(MeasurementSessionTest, IdleProfilesShowClockBursts) {
  MeasurementSession session(MakeNt40());
  const SessionResult r = session.RunIdle(SecondsToCycles(1.0));
  const BusyProfile busy = r.MakeBusyProfile();
  // Busy time in one second of idle is dominated by 100 clock ticks x 400
  // cycles plus housekeeping.
  const double busy_us = CyclesToMicroseconds(busy.TotalBusy());
  EXPECT_GT(busy_us, 300.0);
  EXPECT_LT(busy_us, 900.0);
}

TEST(MeasurementSessionTest, Win95IdleBusierThanNt) {
  MeasurementSession nt(MakeNt40());
  MeasurementSession w95(MakeWin95());
  const auto rn = nt.RunIdle(SecondsToCycles(2.0));
  const auto rw = w95.RunIdle(SecondsToCycles(2.0));
  EXPECT_GT(rw.MakeBusyProfile().TotalBusy(), 2 * rn.MakeBusyProfile().TotalBusy());
}

TEST(MeasurementSessionTest, EventsMatchPostedInputs) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<DesktopApp>());
  const SessionResult r = session.Run(KeystrokeTrials(8, 300.0));
  EXPECT_EQ(r.events.size(), 8u);
  EXPECT_EQ(r.posted.size(), 8u);
  for (const EventRecord& e : r.events) {
    EXPECT_GT(e.latency(), 0);
    EXPECT_GE(e.wall, e.busy);
    EXPECT_EQ(e.type, MessageType::kKeyDown);
  }
}

TEST(MeasurementSessionTest, ExtractedLatencyTracksGroundTruth) {
  // The faithful method (idle trace + message log) must agree with the
  // executor's exact handling spans to within the instrument resolution.
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<EchoApp>());
  const SessionResult r = session.Run(EchoTrials(10, 400.0));
  ASSERT_EQ(r.events.size(), 10u);
  for (const EventRecord& e : r.events) {
    // Ground truth handle covering this event.
    bool found = false;
    for (const auto& h : r.gt_handles) {
      if (h.msg.type == MessageType::kChar && h.begin >= e.start && h.begin <= e.end) {
        const double gt_ms = CyclesToMilliseconds(h.end - h.begin);
        // Extracted latency = handling + ISR + GetMessage, so it exceeds
        // the app-visible ground truth by a bounded overhead.
        EXPECT_GT(e.latency_ms(), gt_ms);
        EXPECT_LT(e.latency_ms(), gt_ms + 3.0);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(MeasurementSessionTest, Figure1ValidationNumbers) {
  // Reproduce the paper's Fig. 1 comparison: idle-loop sees the full
  // event (~9.76 ms); app-level timestamps miss the pre-delivery ~2.3 ms.
  OsProfile os = MakeNt40();
  os.keyboard_isr_cycles = MillisecondsToCycles(kEchoPreDeliveryMs);
  MeasurementSession session(os);
  session.AttachApp(std::make_unique<EchoApp>());
  const SessionResult r = session.Run(EchoTrials(10, 400.0));
  ASSERT_EQ(r.events.size(), 10u);
  double idle_sum = 0.0;
  for (const EventRecord& e : r.events) {
    idle_sum += e.latency_ms();
  }
  double trad_sum = 0.0;
  int trad_n = 0;
  for (const auto& h : r.gt_handles) {
    if (h.msg.type == MessageType::kChar) {
      trad_sum += CyclesToMilliseconds(h.end - h.begin);
      ++trad_n;
    }
  }
  const double idle_mean = idle_sum / 10.0;
  const double trad_mean = trad_sum / trad_n;
  EXPECT_NEAR(idle_mean, 9.76, 0.5);
  EXPECT_NEAR(trad_mean, 7.42, 0.4);
  EXPECT_NEAR(idle_mean - trad_mean, 2.34, 0.3);
}

TEST(MeasurementSessionTest, ElapsedBracketsInputSpan) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<DesktopApp>());
  const SessionResult r = session.Run(KeystrokeTrials(5, 200.0));
  EXPECT_GT(r.elapsed(), MillisecondsToCycles(4 * 200.0));
  EXPECT_LT(r.elapsed(), MillisecondsToCycles(6 * 200.0 + 100.0));
}

TEST(MeasurementSessionTest, UserStateTotalsCoverRun) {
  MeasurementSession session(MakeNt40());
  session.AttachApp(std::make_unique<DesktopApp>());
  const SessionResult r = session.Run(KeystrokeTrials(5, 200.0));
  Cycles total = 0;
  for (Cycles c : r.user_state_totals) {
    total += c;
  }
  EXPECT_EQ(total, r.run_end);
  // Most of an interactive run is think time.
  EXPECT_GT(r.user_state_totals[static_cast<int>(UserState::kThink)], r.run_end / 2);
  // Waiting occurred while events were handled.
  EXPECT_GT(r.user_state_totals[static_cast<int>(UserState::kWaitCpu)], 0);
}

TEST(MeasurementSessionTest, MergeTimerCascadesCapturesAnimation) {
  SessionOptions opts;
  opts.merge_timer_cascades = true;
  MeasurementSession session(MakeNt40(), opts);
  session.AttachApp(std::make_unique<WindowManagerApp>());
  const SessionResult r = session.Run(MaximizeWorkload());
  ASSERT_EQ(r.events.size(), 1u);
  // Wall time spans the full animation (~500 ms, paper Fig. 4 runs
  // 100-600 ms); busy time is the input burst + steps + redraw (~400 ms).
  EXPECT_GT(r.events[0].wall_ms(), 420.0);
  EXPECT_LT(r.events[0].wall_ms(), 650.0);
  EXPECT_GT(r.events[0].latency_ms(), 330.0);
  EXPECT_LT(r.events[0].latency_ms(), 450.0);
}

TEST(MeasurementSessionTest, TraceCapacityStopsTracing) {
  SessionOptions opts;
  opts.trace_capacity = 100;
  MeasurementSession session(MakeNt40(), opts);
  const SessionResult r = session.RunIdle(SecondsToCycles(1.0));
  EXPECT_EQ(r.trace.size(), 100u);
}

TEST(MeasurementSessionTest, DeterministicAcrossRuns) {
  auto run = [] {
    MeasurementSession session(MakeNt40());
    session.AttachApp(std::make_unique<NotepadApp>());
    Random rng(77);
    return session.Run(NotepadWorkload(&rng));
  };
  const SessionResult a = run();
  const SessionResult b = run();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].busy, b.events[i].busy);
  }
  EXPECT_EQ(a.run_end, b.run_end);
}

}  // namespace
}  // namespace ilat
