#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ilat {
namespace {

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, ZeroSeedDoesNotLockUp) {
  Random r(0);
  EXPECT_NE(r.NextU64(), 0u);
  EXPECT_NE(r.NextU64(), r.NextU64());
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Random r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.Uniform(5.0, 12.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 12.0);
  }
}

TEST(RandomTest, UniformIntInclusiveBoundsAndCoverage) {
  Random r(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = r.UniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    hit_lo |= (v == 3);
    hit_hi |= (v == 6);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RandomTest, GaussianMoments) {
  Random r(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = r.Gaussian(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RandomTest, ExponentialMean) {
  Random r(17);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = r.Exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RandomTest, BernoulliFrequency) {
  Random r(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    hits += r.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomTest, SeedResetsSequence) {
  Random r(23);
  const std::uint64_t first = r.NextU64();
  r.NextU64();
  r.Seed(23);
  EXPECT_EQ(r.NextU64(), first);
}

}  // namespace
}  // namespace ilat
