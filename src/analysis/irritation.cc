#include "src/analysis/irritation.h"

#include <algorithm>

#include "src/analysis/stats.h"

namespace ilat {

IrritationReport AnalyzeIrritation(const std::vector<EventRecord>& events,
                                   double threshold_ms, Cycles span) {
  IrritationReport out;
  out.threshold_ms = threshold_ms;
  out.events_total = events.size();
  if (events.empty()) {
    return out;
  }

  std::vector<double> latencies;
  latencies.reserve(events.size());
  Cycles first = events.front().start;
  Cycles last = events.front().start;
  std::vector<Cycles> above_starts;
  for (const EventRecord& e : events) {
    latencies.push_back(e.latency_ms());
    first = std::min(first, e.start);
    last = std::max(last, e.start);
    out.max_ms = std::max(out.max_ms, e.latency_ms());
    if (e.latency_ms() > threshold_ms) {
      ++out.events_above;
      above_starts.push_back(e.start);
    }
  }

  const Cycles window = span > 0 ? span : (last - first);
  const double minutes = CyclesToSeconds(window) / 60.0;
  out.rate_per_minute =
      minutes > 0.0 ? static_cast<double>(out.events_above) / minutes : 0.0;

  // Longest calm stretch: between consecutive irritating events, plus the
  // leading and trailing stretches of the window.
  std::sort(above_starts.begin(), above_starts.end());
  Cycles calm = 0;
  Cycles prev = first;
  for (Cycles t : above_starts) {
    calm = std::max(calm, t - prev);
    prev = t;
  }
  calm = std::max(calm, (first + window) - prev);
  out.longest_calm_s = CyclesToSeconds(calm);

  out.p50_ms = Percentile(latencies, 50.0);
  out.p95_ms = Percentile(latencies, 95.0);
  out.p99_ms = Percentile(latencies, 99.0);
  return out;
}

}  // namespace ilat
