#include "src/analysis/cumulative.h"

#include <algorithm>

namespace ilat {

namespace {

std::vector<double> SortedLatencies(const std::vector<EventRecord>& events) {
  std::vector<double> ms;
  ms.reserve(events.size());
  for (const EventRecord& e : events) {
    ms.push_back(e.latency_ms());
  }
  std::sort(ms.begin(), ms.end());
  return ms;
}

}  // namespace

std::vector<CurvePoint> CumulativeLatencyByLatency(const std::vector<EventRecord>& events) {
  std::vector<CurvePoint> out;
  double cum = 0.0;
  for (double v : SortedLatencies(events)) {
    cum += v;
    out.push_back(CurvePoint{v, cum});
  }
  return out;
}

std::vector<CurvePoint> CumulativeLatencyByCount(const std::vector<EventRecord>& events) {
  std::vector<CurvePoint> out;
  double cum = 0.0;
  std::size_t i = 0;
  for (double v : SortedLatencies(events)) {
    cum += v;
    out.push_back(CurvePoint{static_cast<double>(++i), cum});
  }
  return out;
}

double TotalLatencyMs(const std::vector<EventRecord>& events) {
  double total = 0.0;
  for (const EventRecord& e : events) {
    total += e.latency_ms();
  }
  return total;
}

double LatencyFractionBelow(const std::vector<EventRecord>& events, double threshold_ms) {
  const double total = TotalLatencyMs(events);
  if (total <= 0.0) {
    return 0.0;
  }
  double below = 0.0;
  for (const EventRecord& e : events) {
    if (e.latency_ms() < threshold_ms) {
      below += e.latency_ms();
    }
  }
  return below / total;
}

std::vector<EventRecord> EventsAbove(const std::vector<EventRecord>& events,
                                     double threshold_ms) {
  std::vector<EventRecord> out;
  for (const EventRecord& e : events) {
    if (e.latency_ms() >= threshold_ms) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace ilat
