#include "src/analysis/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ilat {

Histogram Histogram::Linear(double width, double max_value) {
  Histogram h;
  for (double lo = 0.0; lo < max_value; lo += width) {
    h.bins_.push_back(Bin{lo, lo + width, 0, 0.0});
  }
  h.bins_.push_back(Bin{max_value, std::numeric_limits<double>::infinity(), 0, 0.0});
  return h;
}

Histogram Histogram::Log2(double min_value, int num_bins) {
  Histogram h;
  h.bins_.push_back(Bin{0.0, min_value, 0, 0.0});
  double lo = min_value;
  for (int i = 0; i < num_bins; ++i) {
    h.bins_.push_back(Bin{lo, lo * 2.0, 0, 0.0});
    lo *= 2.0;
  }
  h.bins_.push_back(Bin{lo, std::numeric_limits<double>::infinity(), 0, 0.0});
  return h;
}

void Histogram::Add(double value) {
  ++total_count_;
  total_value_ += value;
  raw_.push_back(value);
  for (Bin& b : bins_) {
    if (value >= b.lo && value < b.hi) {
      ++b.count;
      b.total += value;
      return;
    }
  }
}

void Histogram::AddLatencies(const std::vector<EventRecord>& events) {
  for (const EventRecord& e : events) {
    Add(e.latency_ms());
  }
}

double Histogram::ValueFractionBelow(double threshold) const {
  if (total_value_ <= 0.0) {
    return 0.0;
  }
  double below = 0.0;
  for (double v : raw_) {
    if (v < threshold) {
      below += v;
    }
  }
  return below / total_value_;
}

}  // namespace ilat
