#include "src/analysis/deadlines.h"

#include <algorithm>

#include "src/analysis/stats.h"

namespace ilat {

DeadlineReport AnalyzeDeadlines(const std::vector<FrameRecord>& frames, Cycles period) {
  DeadlineReport out;
  out.frames_completed = static_cast<int>(frames.size());
  if (frames.empty() || period <= 0) {
    return out;
  }

  SummaryStats gaps;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const FrameRecord& f = frames[i];
    const Cycles deadline = f.scheduled + period;
    if (f.completed > deadline) {
      ++out.missed;
      out.max_lateness_ms =
          std::max(out.max_lateness_ms, CyclesToMilliseconds(f.completed - deadline));
    }
    if (i > 0) {
      gaps.Add(CyclesToMilliseconds(frames[i].completed - frames[i - 1].completed));
      // Boundaries between this frame's slot and the previous one's,
      // rounded to the nearest slot: aligned timers drift a little off
      // the exact grid, so truncation undercounts (a 1.97-period gap is
      // a dropped frame, not adjacent frames).
      const Cycles gap = frames[i].scheduled - frames[i - 1].scheduled;
      const Cycles slots = (gap + period / 2) / period;
      if (slots > 1) {
        out.dropped += static_cast<int>(slots - 1);
      }
    }
  }
  // A dropped frame is a deadline missed by a full period or more; rating
  // only the frames that completed would score a player that drops every
  // other frame as flawless.
  out.miss_rate = static_cast<double>(out.missed + out.dropped) /
                  static_cast<double>(frames.size() + static_cast<std::size_t>(out.dropped));
  out.jitter_ms = gaps.stddev();

  const Cycles span = frames.back().completed - frames.front().scheduled;
  if (span > 0) {
    out.achieved_fps = static_cast<double>(frames.size()) / CyclesToSeconds(span);
  }
  return out;
}

}  // namespace ilat
