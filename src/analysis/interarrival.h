// Interarrival analysis of above-threshold events (paper §6, Table 2).
//
// "One factor that contributes to user dissatisfaction is the frequency of
// long-latency events."  For a threshold T, collect the events with
// latency above T and summarise the distribution of gaps between their
// start times.

#ifndef ILAT_SRC_ANALYSIS_INTERARRIVAL_H_
#define ILAT_SRC_ANALYSIS_INTERARRIVAL_H_

#include <vector>

#include "src/analysis/stats.h"
#include "src/core/event_extractor.h"

namespace ilat {

struct InterarrivalSummary {
  double threshold_ms = 0.0;
  std::size_t events_above = 0;
  double mean_interarrival_s = 0.0;
  double stddev_interarrival_s = 0.0;
};

InterarrivalSummary InterarrivalAbove(const std::vector<EventRecord>& events,
                                      double threshold_ms);

// Table-2-style sweep over several thresholds.
std::vector<InterarrivalSummary> InterarrivalSweep(const std::vector<EventRecord>& events,
                                                   const std::vector<double>& thresholds_ms);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_INTERARRIVAL_H_
