// Irritation report: the questions the paper's §6 poses about long-latency
// events, answered from an event trace.
//
// "One factor that contributes to user dissatisfaction is the frequency of
// long-latency events."  The report summarises, for a threshold: how often
// irritating events occur, how they cluster, and the longest calm stretch
// a user enjoyed.

#ifndef ILAT_SRC_ANALYSIS_IRRITATION_H_
#define ILAT_SRC_ANALYSIS_IRRITATION_H_

#include <vector>

#include "src/core/event_extractor.h"

namespace ilat {

struct IrritationReport {
  double threshold_ms = 0.0;
  std::size_t events_total = 0;
  std::size_t events_above = 0;
  // Irritating events per minute of elapsed time.
  double rate_per_minute = 0.0;
  // Longest stretch without an above-threshold event, seconds.
  double longest_calm_s = 0.0;
  // Latency percentiles across all events (ms).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

// `span` is the observation window; if zero it is inferred from the first
// and last event.
IrritationReport AnalyzeIrritation(const std::vector<EventRecord>& events,
                                   double threshold_ms = 100.0, Cycles span = 0);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_IRRITATION_H_
