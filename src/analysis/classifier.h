// Event classification.
//
// The paper argues that the latency threshold a user tolerates is a
// function of event type ("users probably expect keystroke event latency
// to be imperceptible while they may expect that a print command will
// impose some delay", §3.1).  The classifier maps extracted events onto
// coarse classes with default expectation thresholds drawn from
// Shneiderman's guidance as cited by the paper: 0.1 s imperceptible,
// 2-4 s invariably irritating.

#ifndef ILAT_SRC_ANALYSIS_CLASSIFIER_H_
#define ILAT_SRC_ANALYSIS_CLASSIFIER_H_

#include <string_view>
#include <vector>

#include "src/core/event_extractor.h"

namespace ilat {

enum class EventClass : int {
  kKeystroke = 0,  // expectation: imperceptible (0.1 s)
  kMouse,          // expectation: imperceptible (0.1 s)
  kNavigation,     // page/scroll movement: short but perceptible allowed
  kCommand,        // open/save/start: seconds-scale expectation
  kCount,
};

std::string_view EventClassName(EventClass c);

EventClass ClassifyEvent(const EventRecord& e);

// Default user-expectation threshold per class, milliseconds.
double DefaultThresholdMs(EventClass c);

// Per-class latency summary (count, mean, max, and how many exceeded the
// class's own expectation threshold).
struct ClassSummary {
  EventClass event_class = EventClass::kKeystroke;
  std::size_t count = 0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  std::size_t over_threshold = 0;
};

std::vector<ClassSummary> SummarizeByClass(const std::vector<EventRecord>& events);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_CLASSIFIER_H_
