// Sliding-window latency statistics.
//
// The paper's raw profile (Fig. 5) shows *when* latency happens; a
// windowed percentile compresses that into "how bad were the worst events
// around time t" -- useful for spotting degradation over a long run
// (cache pollution, background accumulation) that whole-run histograms
// average away.

#ifndef ILAT_SRC_ANALYSIS_SLIDING_WINDOW_H_
#define ILAT_SRC_ANALYSIS_SLIDING_WINDOW_H_

#include <vector>

#include "src/analysis/cumulative.h"
#include "src/core/event_extractor.h"

namespace ilat {

// Latency percentile `p` (0..100) over a sliding window of `window`
// cycles, sampled every `step` cycles.  Each output point is
// (window-end time in seconds, percentile latency in ms); windows with no
// events are skipped.
std::vector<CurvePoint> WindowedLatencyPercentile(const std::vector<EventRecord>& events,
                                                  Cycles window, Cycles step, double p);

// Events per second over the same sliding window (event-rate profile).
std::vector<CurvePoint> WindowedEventRate(const std::vector<EventRecord>& events,
                                          Cycles window, Cycles step);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_SLIDING_WINDOW_H_
