// Summary statistics (Welford online algorithm) and percentile helpers.

#ifndef ILAT_SRC_ANALYSIS_STATS_H_
#define ILAT_SRC_ANALYSIS_STATS_H_

#include <cstdint>
#include <vector>

namespace ilat {

class SummaryStats {
 public:
  void Add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance / standard deviation (n-1 denominator).
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile by linear interpolation on a copy of `values`.  p in [0, 100].
double Percentile(std::vector<double> values, double p);

// Mean / standard deviation of adjacent differences (interarrival times).
SummaryStats DiffStats(const std::vector<double>& sorted_points);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_STATS_H_
