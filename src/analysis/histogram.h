// Latency histograms (the top panel of the paper's Figs. 7, 8, 11).

#ifndef ILAT_SRC_ANALYSIS_HISTOGRAM_H_
#define ILAT_SRC_ANALYSIS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/event_extractor.h"

namespace ilat {

class Histogram {
 public:
  struct Bin {
    double lo = 0.0;  // inclusive
    double hi = 0.0;  // exclusive
    std::uint64_t count = 0;
    double total = 0.0;  // sum of values in the bin
  };

  // Linear bins of `width` covering [0, max_value); one overflow bin.
  static Histogram Linear(double width, double max_value);
  // Log2 bins: [min_value*2^k, min_value*2^(k+1)), k = 0..num_bins-1.
  static Histogram Log2(double min_value, int num_bins);

  void Add(double value);
  void AddLatencies(const std::vector<EventRecord>& events);

  const std::vector<Bin>& bins() const { return bins_; }
  std::uint64_t total_count() const { return total_count_; }
  double total_value() const { return total_value_; }

  // Fraction of the summed value contributed by values < threshold
  // ("over 80% of the latency of Notepad is due to low-latency events").
  double ValueFractionBelow(double threshold) const;

 private:
  std::vector<Bin> bins_;
  std::uint64_t total_count_ = 0;
  double total_value_ = 0.0;
  std::vector<double> raw_;  // kept for exact fraction queries
};

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_HISTOGRAM_H_
