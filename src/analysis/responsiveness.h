// Responsiveness metric (paper §3.1).
//
// The paper sketches -- but deliberately does not finalise -- a scalar
// user-responsiveness metric: a summation over events of a penalty that is
// zero below a per-event-type threshold T and grows with latency above it,
// leaving the exact human-factors calibration to specialists.  This module
// implements that proposal with pluggable penalty shape so the metric can
// be explored (see bench/ablation benches), while the library's primary
// outputs remain the graphical representations the paper trusts.

#ifndef ILAT_SRC_ANALYSIS_RESPONSIVENESS_H_
#define ILAT_SRC_ANALYSIS_RESPONSIVENESS_H_

#include <functional>
#include <vector>

#include "src/analysis/classifier.h"
#include "src/core/event_extractor.h"

namespace ilat {

struct ResponsivenessOptions {
  // Penalty exponent: 1 = excess latency, 2 = quadratic irritation growth.
  double exponent = 1.0;
  // Threshold override; if negative, per-class defaults are used.
  double threshold_ms = -1.0;
};

struct ResponsivenessReport {
  double penalty = 0.0;          // summed penalty (ms^exponent units)
  std::size_t events_total = 0;
  std::size_t events_over_threshold = 0;
  double worst_latency_ms = 0.0;
};

ResponsivenessReport ScoreResponsiveness(const std::vector<EventRecord>& events,
                                         const ResponsivenessOptions& opts = {});

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_RESPONSIVENESS_H_
