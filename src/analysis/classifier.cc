#include "src/analysis/classifier.h"

#include <algorithm>

#include "src/apps/commands.h"

namespace ilat {

std::string_view EventClassName(EventClass c) {
  switch (c) {
    case EventClass::kKeystroke:
      return "keystroke";
    case EventClass::kMouse:
      return "mouse";
    case EventClass::kNavigation:
      return "navigation";
    case EventClass::kCommand:
      return "command";
    case EventClass::kCount:
      break;
  }
  return "unknown";
}

EventClass ClassifyEvent(const EventRecord& e) {
  switch (e.type) {
    case MessageType::kChar:
      return EventClass::kKeystroke;
    case MessageType::kKeyDown:
    case MessageType::kKeyUp:
      switch (e.param) {
        case kVkPageDown:
        case kVkPageUp:
        case kVkHome:
        case kVkEnd:
          return EventClass::kNavigation;
        default:
          return EventClass::kKeystroke;
      }
    case MessageType::kMouseDown:
    case MessageType::kMouseUp:
    case MessageType::kMouseMove:
      return EventClass::kMouse;
    case MessageType::kCommand:
      return (e.param == kCmdPptPageDown) ? EventClass::kNavigation : EventClass::kCommand;
    default:
      return EventClass::kCommand;
  }
}

double DefaultThresholdMs(EventClass c) {
  switch (c) {
    case EventClass::kKeystroke:
      return 100.0;  // below perception (paper §3.1)
    case EventClass::kMouse:
      return 100.0;
    case EventClass::kNavigation:
      return 300.0;
    case EventClass::kCommand:
      return 2'000.0;  // 2-4 s range "invariably irritates users"
    case EventClass::kCount:
      break;
  }
  return 100.0;
}

std::vector<ClassSummary> SummarizeByClass(const std::vector<EventRecord>& events) {
  std::vector<ClassSummary> out(static_cast<std::size_t>(EventClass::kCount));
  std::vector<double> totals(out.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].event_class = static_cast<EventClass>(i);
  }
  for (const EventRecord& e : events) {
    const auto c = static_cast<std::size_t>(ClassifyEvent(e));
    ClassSummary& s = out[c];
    ++s.count;
    totals[c] += e.latency_ms();
    s.max_ms = std::max(s.max_ms, e.latency_ms());
    if (e.latency_ms() > DefaultThresholdMs(s.event_class)) {
      ++s.over_threshold;
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].count > 0) {
      out[i].mean_ms = totals[i] / static_cast<double>(out[i].count);
    }
  }
  // Drop empty classes.
  std::vector<ClassSummary> filtered;
  for (const ClassSummary& s : out) {
    if (s.count > 0) {
      filtered.push_back(s);
    }
  }
  return filtered;
}

}  // namespace ilat
