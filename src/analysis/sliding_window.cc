#include "src/analysis/sliding_window.h"

#include <algorithm>

#include "src/analysis/stats.h"

namespace ilat {

namespace {

// Shared window walk: events must be start-sorted (the extractor's output
// order).  Calls `emit(window_end, first_index, last_index)` for each
// window containing at least one event.
template <typename Emit>
void WalkWindows(const std::vector<EventRecord>& events, Cycles window, Cycles step,
                 Emit emit) {
  if (events.empty() || window <= 0 || step <= 0) {
    return;
  }
  const Cycles begin = events.front().start;
  const Cycles end = events.back().start;
  std::size_t lo = 0;
  for (Cycles w_end = begin + window; w_end <= end + window; w_end += step) {
    const Cycles w_begin = w_end - window;
    while (lo < events.size() && events[lo].start < w_begin) {
      ++lo;
    }
    std::size_t hi = lo;
    while (hi < events.size() && events[hi].start < w_end) {
      ++hi;
    }
    if (hi > lo) {
      emit(w_end, lo, hi);
    }
  }
}

}  // namespace

std::vector<CurvePoint> WindowedLatencyPercentile(const std::vector<EventRecord>& events,
                                                  Cycles window, Cycles step, double p) {
  std::vector<CurvePoint> out;
  WalkWindows(events, window, step,
              [&](Cycles w_end, std::size_t lo, std::size_t hi) {
                std::vector<double> ms;
                ms.reserve(hi - lo);
                for (std::size_t i = lo; i < hi; ++i) {
                  ms.push_back(events[i].latency_ms());
                }
                out.push_back(CurvePoint{CyclesToSeconds(w_end), Percentile(ms, p)});
              });
  return out;
}

std::vector<CurvePoint> WindowedEventRate(const std::vector<EventRecord>& events,
                                          Cycles window, Cycles step) {
  std::vector<CurvePoint> out;
  const double window_s = CyclesToSeconds(window);
  WalkWindows(events, window, step,
              [&](Cycles w_end, std::size_t lo, std::size_t hi) {
                out.push_back(CurvePoint{CyclesToSeconds(w_end),
                                         static_cast<double>(hi - lo) / window_s});
              });
  return out;
}

}  // namespace ilat
