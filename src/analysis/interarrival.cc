#include "src/analysis/interarrival.h"

#include <algorithm>

namespace ilat {

InterarrivalSummary InterarrivalAbove(const std::vector<EventRecord>& events,
                                      double threshold_ms) {
  std::vector<double> starts_s;
  for (const EventRecord& e : events) {
    if (e.latency_ms() > threshold_ms) {
      starts_s.push_back(CyclesToSeconds(e.start));
    }
  }
  std::sort(starts_s.begin(), starts_s.end());

  InterarrivalSummary out;
  out.threshold_ms = threshold_ms;
  out.events_above = starts_s.size();
  const SummaryStats s = DiffStats(starts_s);
  out.mean_interarrival_s = s.mean();
  out.stddev_interarrival_s = s.stddev();
  return out;
}

std::vector<InterarrivalSummary> InterarrivalSweep(const std::vector<EventRecord>& events,
                                                   const std::vector<double>& thresholds_ms) {
  std::vector<InterarrivalSummary> out;
  out.reserve(thresholds_ms.size());
  for (double t : thresholds_ms) {
    out.push_back(InterarrivalAbove(events, t));
  }
  return out;
}

}  // namespace ilat
