#include "src/analysis/responsiveness.h"

#include <algorithm>
#include <cmath>

namespace ilat {

ResponsivenessReport ScoreResponsiveness(const std::vector<EventRecord>& events,
                                         const ResponsivenessOptions& opts) {
  ResponsivenessReport r;
  r.events_total = events.size();
  for (const EventRecord& e : events) {
    const double latency = e.latency_ms();
    r.worst_latency_ms = std::max(r.worst_latency_ms, latency);
    const double threshold = opts.threshold_ms >= 0.0
                                 ? opts.threshold_ms
                                 : DefaultThresholdMs(ClassifyEvent(e));
    if (latency > threshold) {
      ++r.events_over_threshold;
      r.penalty += std::pow(latency - threshold, opts.exponent);
    }
  }
  return r;
}

}  // namespace ilat
