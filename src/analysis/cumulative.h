// Cumulative latency curves (the middle and bottom panels of the paper's
// Figs. 7, 8, 11).
//
// Events are sorted by duration, not by time of occurrence (paper §3.2):
// the cumulative-latency-vs-latency curve shows how events of a given
// duration contribute to the total, and cumulative-latency-vs-event-count
// exposes variance in response time.

#ifndef ILAT_SRC_ANALYSIS_CUMULATIVE_H_
#define ILAT_SRC_ANALYSIS_CUMULATIVE_H_

#include <vector>

#include "src/core/event_extractor.h"

namespace ilat {

struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

// (latency_ms, cumulative latency_ms of all events with latency <= x).
std::vector<CurvePoint> CumulativeLatencyByLatency(const std::vector<EventRecord>& events);

// (event index after sorting by latency ascending, cumulative latency_ms).
std::vector<CurvePoint> CumulativeLatencyByCount(const std::vector<EventRecord>& events);

// Total latency across events, ms.
double TotalLatencyMs(const std::vector<EventRecord>& events);

// Fraction of total latency contributed by events with latency < threshold.
double LatencyFractionBelow(const std::vector<EventRecord>& events, double threshold_ms);

// Events with latency >= threshold, preserving time order.
std::vector<EventRecord> EventsAbove(const std::vector<EventRecord>& events,
                                     double threshold_ms);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_CUMULATIVE_H_
