// Deadline analysis for continuous (periodic) workloads.
//
// For media playback the per-event mean hides what matters: how many
// frames finished after their deadline, how many periods were skipped
// outright, and how uneven presentation times are.  This module computes
// those from the (scheduled, completed) pairs a periodic application
// records.

#ifndef ILAT_SRC_ANALYSIS_DEADLINES_H_
#define ILAT_SRC_ANALYSIS_DEADLINES_H_

#include <vector>

#include "src/apps/media_player.h"

namespace ilat {

struct DeadlineReport {
  int frames_completed = 0;
  // Frame finished after its period ended (scheduled + period).
  int missed = 0;
  // (missed + dropped) / (completed + dropped): a dropped frame is a
  // deadline missed outright, so it counts in both numerator and
  // denominator.
  double miss_rate = 0.0;
  // Period boundaries skipped between consecutive frames (the player
  // could not even start a frame), with gaps rounded to the nearest
  // whole number of periods to tolerate timer drift.
  int dropped = 0;
  // Worst completion lateness beyond the deadline, ms (0 if none missed).
  double max_lateness_ms = 0.0;
  // Standard deviation of inter-completion gaps, ms (presentation jitter).
  double jitter_ms = 0.0;
  // Achieved frame rate over the covered interval.
  double achieved_fps = 0.0;
};

DeadlineReport AnalyzeDeadlines(const std::vector<FrameRecord>& frames, Cycles period);

}  // namespace ilat

#endif  // ILAT_SRC_ANALYSIS_DEADLINES_H_
