#include "src/analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace ilat {

void SummaryStats::Add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  // Clamp: p outside [0, 100] would index out of bounds (p > 100) or cast
  // a negative rank to size_t (p < 0, undefined behaviour).
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

SummaryStats DiffStats(const std::vector<double>& sorted_points) {
  SummaryStats s;
  for (std::size_t i = 1; i < sorted_points.size(); ++i) {
    s.Add(sorted_points[i] - sorted_points[i - 1]);
  }
  return s;
}

}  // namespace ilat
