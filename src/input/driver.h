// Input drivers: deliver a Script to an application as hardware input.
//
// TestDriver models Microsoft Visual Test (paper §3): it injects each
// event through the input interrupt path, posts a WM_QUEUESYNC after it,
// and does not inject the next event until the sync message has been
// processed (which is why slow WM_QUEUESYNC handling inflates elapsed time
// on Windows 95 -- Fig. 7 caption -- without touching event latencies).
//
// HumanDriver models hand-generated input: events arrive at wall-clock
// times determined solely by the script's pauses, with no sync messages --
// the system's speed does not change what the "user" does.  When a fault
// drops an input before the application can see it, the human notices
// nothing happened, waits a think-time-derived backoff, and re-issues it
// (HumanRetryPolicy); after bounded attempts they abandon that action and
// carry on with the rest of the script.

#ifndef ILAT_SRC_INPUT_DRIVER_H_
#define ILAT_SRC_INPUT_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/apps/application.h"
#include "src/input/reaction_times.h"
#include "src/input/script.h"
#include "src/obs/trace.h"

namespace ilat {

// Record of an input message the driver posted, keyed by the message
// sequence number the queue assigned (used to join extracted events back
// to script labels).
struct PostedEvent {
  std::uint64_t msg_seq = 0;
  ScriptItem::Kind kind = ScriptItem::Kind::kChar;
  int param = 0;
  std::string label;
  // Time of the *first* injection attempt: a re-issued event's latency
  // window still starts when the user first acted.
  Cycles posted_at = 0;
  // How many re-issues preceded this post (0 = landed first try).
  int attempt = 0;
};

class InputDriver {
 public:
  virtual ~InputDriver() = default;
  // Begin delivering the script.  Items are injected as simulation events;
  // run the simulation to make progress.
  virtual void Start() = 0;
  virtual bool done() const = 0;
  // Time the last script action (and, for TestDriver, its sync) finished.
  virtual Cycles finished_at() const = 0;
  virtual const std::vector<PostedEvent>& posted() const = 0;

  // Fault-recovery accounting (nonzero only for drivers that re-issue
  // dropped input; see HumanDriver).
  virtual std::uint64_t input_retries() const { return 0; }
  virtual std::uint64_t input_abandons() const { return 0; }
  // True when the driver re-issues dropped input instead of silently
  // losing it (changes how a session's fault report grades drops).
  virtual bool recovers_input() const { return false; }
};

class TestDriver : public InputDriver, public MessagePumpObserver {
 public:
  // If `inject_queuesync` is false the driver still serialises on its own
  // posts but sends no WM_QUEUESYNC (the ablation in
  // bench/ablation_queuesync).
  TestDriver(SystemUnderTest* system, GuiThread* target, Script script,
             bool inject_queuesync = true);

  void Start() override;
  bool done() const override { return done_; }
  Cycles finished_at() const override { return finished_at_; }
  const std::vector<PostedEvent>& posted() const override { return posted_; }

  // MessagePumpObserver: watch for our sync message completing.
  void OnHandleEnd(Cycles t, const Message& m) override;

 private:
  void ScheduleNext(Cycles not_before);
  void InjectCurrent();

  SystemUnderTest* system_;
  GuiThread* target_;
  Script script_;
  bool inject_queuesync_;

  std::size_t next_item_ = 0;
  Cycles last_post_time_ = 0;
  std::uint64_t awaited_sync_seq_ = 0;
  bool done_ = false;
  Cycles finished_at_ = 0;
  std::vector<PostedEvent> posted_;
};

// How the simulated human reacts to an input of theirs vanishing (a fault
// dropped the message before the application could see it).  The user
// notices the lack of response, waits a think-time-derived backoff
// (max(floor, frac * item pause), doubling per attempt), and re-issues
// the input; after max_retries re-issues they give up on that action --
// a structured "user abandon", not a stuck driver.  The default constants
// are grounded in reaction-time literature; see
// src/input/reaction_times.h for the derivations and citations.
struct HumanRetryPolicy {
  bool enabled = true;
  // Bounded re-issues per script item.
  int max_retries = input::kDefaultMaxRetries;
  // Minimum noticing + reacting time (perceptual + motor cycle).
  double backoff_floor_ms = input::kRetryBackoffFloorMs;
  // Fraction of the item's think pause (deliberate users retry slower).
  double backoff_frac_of_pause = input::kRetryBackoffFracOfPause;
};

class HumanDriver : public InputDriver {
 public:
  HumanDriver(SystemUnderTest* system, GuiThread* target, Script script,
              HumanRetryPolicy retry = HumanRetryPolicy{});

  // Attach tracing: retries and abandons become instants on the shared
  // "fault" track (reused if the fault injector already registered one)
  // plus fault.input.retries / fault.input.abandons counters -- registered
  // eagerly so the metrics exist, and compare across campaign cells, even
  // at zero.
  void EnableTracing(obs::Tracer* tracer);

  // Observer of retry-wait transitions: (time, any_item_waiting).  Feeds
  // the think/wait FSM's kWaitRetry state and the extractor's retry-wait
  // latency attribution.
  using RetryWaitFn = std::function<void(Cycles, bool)>;
  void SetRetryWaitObserver(RetryWaitFn fn) { on_retry_wait_ = std::move(fn); }

  void Start() override;
  bool done() const override { return done_; }
  Cycles finished_at() const override { return finished_at_; }
  const std::vector<PostedEvent>& posted() const override { return posted_; }
  std::uint64_t input_retries() const override { return retries_; }
  std::uint64_t input_abandons() const override { return abandons_; }
  bool recovers_input() const override { return retry_.enabled; }

 private:
  void InjectItem(std::size_t index, int attempt);
  void DeliverSimple(std::size_t index, int attempt);
  // Post `m`, returning false when a fault dropped it (detected via the
  // queue's dropped counter -- drops are synchronous inside Post).
  bool PostDetectingDrop(Message m, Message* stamped);
  void RecordPosted(std::size_t index, int attempt, const Message& stamped);
  void HandleDrop(std::size_t index, int attempt);
  void FinishOne();
  void BeginRetryWait(Cycles t);
  void EndRetryWait(Cycles t);
  Cycles BackoffFor(std::size_t index, int attempt) const;

  SystemUnderTest* system_;
  GuiThread* target_;
  Script script_;
  HumanRetryPolicy retry_;
  std::size_t remaining_ = 0;
  bool done_ = false;
  Cycles finished_at_ = 0;
  std::vector<PostedEvent> posted_;
  std::vector<Cycles> first_attempt_at_;  // per script item
  std::vector<char> click_dropped_;       // per item: suppress the release?
  std::uint64_t retries_ = 0;
  std::uint64_t abandons_ = 0;
  int retry_pending_ = 0;  // items currently waiting out a backoff
  RetryWaitFn on_retry_wait_;

  obs::Tracer* tracer_ = nullptr;
  std::uint32_t fault_track_ = 0;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_abandons_ = nullptr;
};

}  // namespace ilat

#endif  // ILAT_SRC_INPUT_DRIVER_H_
