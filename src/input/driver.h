// Input drivers: deliver a Script to an application as hardware input.
//
// TestDriver models Microsoft Visual Test (paper §3): it injects each
// event through the input interrupt path, posts a WM_QUEUESYNC after it,
// and does not inject the next event until the sync message has been
// processed (which is why slow WM_QUEUESYNC handling inflates elapsed time
// on Windows 95 -- Fig. 7 caption -- without touching event latencies).
//
// HumanDriver models hand-generated input: events arrive at wall-clock
// times determined solely by the script's pauses, with no sync messages --
// the system's speed does not change what the "user" does.

#ifndef ILAT_SRC_INPUT_DRIVER_H_
#define ILAT_SRC_INPUT_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/application.h"
#include "src/input/script.h"

namespace ilat {

// Record of an input message the driver posted, keyed by the message
// sequence number the queue assigned (used to join extracted events back
// to script labels).
struct PostedEvent {
  std::uint64_t msg_seq = 0;
  ScriptItem::Kind kind = ScriptItem::Kind::kChar;
  int param = 0;
  std::string label;
  Cycles posted_at = 0;
};

class InputDriver {
 public:
  virtual ~InputDriver() = default;
  // Begin delivering the script.  Items are injected as simulation events;
  // run the simulation to make progress.
  virtual void Start() = 0;
  virtual bool done() const = 0;
  // Time the last script action (and, for TestDriver, its sync) finished.
  virtual Cycles finished_at() const = 0;
  virtual const std::vector<PostedEvent>& posted() const = 0;
};

class TestDriver : public InputDriver, public MessagePumpObserver {
 public:
  // If `inject_queuesync` is false the driver still serialises on its own
  // posts but sends no WM_QUEUESYNC (the ablation in
  // bench/ablation_queuesync).
  TestDriver(SystemUnderTest* system, GuiThread* target, Script script,
             bool inject_queuesync = true);

  void Start() override;
  bool done() const override { return done_; }
  Cycles finished_at() const override { return finished_at_; }
  const std::vector<PostedEvent>& posted() const override { return posted_; }

  // MessagePumpObserver: watch for our sync message completing.
  void OnHandleEnd(Cycles t, const Message& m) override;

 private:
  void ScheduleNext(Cycles not_before);
  void InjectCurrent();

  SystemUnderTest* system_;
  GuiThread* target_;
  Script script_;
  bool inject_queuesync_;

  std::size_t next_item_ = 0;
  Cycles last_post_time_ = 0;
  std::uint64_t awaited_sync_seq_ = 0;
  bool done_ = false;
  Cycles finished_at_ = 0;
  std::vector<PostedEvent> posted_;
};

class HumanDriver : public InputDriver {
 public:
  HumanDriver(SystemUnderTest* system, GuiThread* target, Script script);

  void Start() override;
  bool done() const override { return done_; }
  Cycles finished_at() const override { return finished_at_; }
  const std::vector<PostedEvent>& posted() const override { return posted_; }

 private:
  void InjectItem(std::size_t index);

  SystemUnderTest* system_;
  GuiThread* target_;
  Script script_;
  std::size_t remaining_ = 0;
  bool done_ = false;
  Cycles finished_at_ = 0;
  std::vector<PostedEvent> posted_;
};

}  // namespace ilat

#endif  // ILAT_SRC_INPUT_DRIVER_H_
