// Stochastic human-typist model.
//
// Converts text into a Script with realistic timing: ~N words per minute
// with per-keystroke variation, longer pauses at word boundaries, think
// pauses at sentence ends, and occasional typos corrected with backspace.
// The paper stresses that driving a system with an "infinitely fast user"
// distorts measurements (§1.1); this model is the realistic alternative,
// and the same Script can be replayed by TestDriver or HumanDriver.

#ifndef ILAT_SRC_INPUT_TYPIST_H_
#define ILAT_SRC_INPUT_TYPIST_H_

#include <string>

#include "src/input/script.h"
#include "src/sim/random.h"

namespace ilat {

struct TypistParams {
  double words_per_minute = 100.0;  // even the best typists need ~120 ms/key
  double key_jitter_fraction = 0.25;
  double min_gap_ms = 60.0;
  double word_boundary_extra_ms = 60.0;
  double sentence_pause_mean_ms = 1'800.0;
  double typo_probability = 0.01;
  double typo_notice_delay_ms = 350.0;
};

class Typist {
 public:
  Typist(TypistParams params, Random* rng) : params_(params), rng_(rng) {}

  // Produce the keystroke script for `text`.  '\n' becomes a carriage
  // return; '.' '!' '?' trigger think pauses.
  Script Type(const std::string& text) const;

  // Expected mean inter-keystroke gap, ms (ignoring sentence pauses).
  double MeanGapMs() const {
    // words/min * ~5.5 chars/word -> chars/sec.
    return 60'000.0 / (params_.words_per_minute * 5.5);
  }

 private:
  TypistParams params_;
  Random* rng_;
};

}  // namespace ilat

#endif  // ILAT_SRC_INPUT_TYPIST_H_
