// Input scripts.
//
// A Script is an ordered list of user actions with pauses, playable by
// either driver in driver.h: the TestDriver (models Microsoft Visual Test,
// §3: specified pauses, WM_QUEUESYNC after every event) or the HumanDriver
// (hand-generated input: pure wall-clock pacing, no sync messages).

#ifndef ILAT_SRC_INPUT_SCRIPT_H_
#define ILAT_SRC_INPUT_SCRIPT_H_

#include <string>
#include <vector>

namespace ilat {

struct ScriptItem {
  enum class Kind {
    kChar,        // printable character or '\n' (param = character)
    kKeyDown,     // virtual key (param = kVk*)
    kMouseClick,  // button press + release after hold_ms
    kCommand,     // application command (param = kCmd*)
  };

  Kind kind = Kind::kChar;
  int param = 0;
  // Pause before this action, relative to the previous action.
  double pause_before_ms = 150.0;
  // For kMouseClick: how long the button is held.
  double hold_ms = 150.0;
  // Optional annotation, carried through to the extracted event (used to
  // name Table 1's long-latency events).
  std::string label;

  static ScriptItem Char(char c, double pause_ms, std::string label = {}) {
    ScriptItem it;
    it.kind = Kind::kChar;
    it.param = c;
    it.pause_before_ms = pause_ms;
    it.label = std::move(label);
    return it;
  }

  static ScriptItem Key(int vk, double pause_ms, std::string label = {}) {
    ScriptItem it;
    it.kind = Kind::kKeyDown;
    it.param = vk;
    it.pause_before_ms = pause_ms;
    it.label = std::move(label);
    return it;
  }

  static ScriptItem Click(double pause_ms, double hold_ms, std::string label = {}) {
    ScriptItem it;
    it.kind = Kind::kMouseClick;
    it.pause_before_ms = pause_ms;
    it.hold_ms = hold_ms;
    it.label = std::move(label);
    return it;
  }

  static ScriptItem Command(int cmd, double pause_ms, std::string label = {}) {
    ScriptItem it;
    it.kind = Kind::kCommand;
    it.param = cmd;
    it.pause_before_ms = pause_ms;
    it.label = std::move(label);
    return it;
  }
};

using Script = std::vector<ScriptItem>;

}  // namespace ilat

#endif  // ILAT_SRC_INPUT_SCRIPT_H_
