#include "src/input/network.h"

namespace ilat {

NetworkTrafficDriver::NetworkTrafficDriver(SystemUnderTest* system, GuiThread* target,
                                           NetworkTrafficParams params)
    : system_(system), target_(target), params_(params), rng_(params.seed) {}

void NetworkTrafficDriver::Start() {
  if (params_.packets <= 0) {
    done_ = true;
    finished_at_ = system_->sim().now();
    return;
  }
  remaining_ = params_.packets;
  // Lay out the whole arrival process: packets do not care how fast the
  // receiver drains them.
  Cycles t = system_->sim().now();
  for (int i = 0; i < params_.packets; ++i) {
    t += MillisecondsToCycles(rng_.Exponential(params_.mean_interarrival_ms));
    const int bytes = static_cast<int>(rng_.UniformInt(params_.min_bytes, params_.max_bytes));
    system_->sim().queue().ScheduleAt(t, [this, t, bytes] { Deliver(t, bytes); });
  }
}

void NetworkTrafficDriver::Deliver(Cycles arrival, int bytes) {
  system_->RaiseInputInterrupt(params_.nic_isr_cycles, [this, arrival, bytes] {
    Message m;
    m.type = MessageType::kSocket;
    m.param = bytes;
    const Message stamped = target_->queue().Post(m);
    posted_.push_back(PostedEvent{stamped.seq, ScriptItem::Kind::kCommand, bytes, "packet",
                                  arrival});
    if (--remaining_ == 0) {
      done_ = true;
      finished_at_ = system_->sim().now();
    }
  });
}

}  // namespace ilat
