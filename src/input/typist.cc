#include "src/input/typist.h"

#include <algorithm>

#include "src/apps/commands.h"

namespace ilat {

Script Typist::Type(const std::string& text) const {
  Script out;
  out.reserve(text.size() + 16);

  const double mean_gap = MeanGapMs();
  // Extra pause to fold into the next keystroke (think pauses).
  double carry_ms = 0.0;

  auto gap = [this, mean_gap, &carry_ms](double scale) {
    const double jitter =
        1.0 + params_.key_jitter_fraction * (2.0 * rng_->NextDouble() - 1.0);
    const double g = std::max(params_.min_gap_ms, mean_gap * scale * jitter) + carry_ms;
    carry_ms = 0.0;
    return g;
  };

  for (char c : text) {
    if (c == '\n') {
      // Enter is struck promptly after the sentence ends; the think pause
      // (carry) lands on the first keystroke of the next paragraph.
      out.push_back(ScriptItem::Char(c, rng_->Uniform(150.0, 300.0)));
      continue;
    }
    double pause = gap(1.0);
    if (c == ' ') {
      pause += params_.word_boundary_extra_ms * rng_->NextDouble();
    }
    if (rng_->Bernoulli(params_.typo_probability) && c != '\n') {
      // Type a wrong character, notice, backspace, retype.
      const char wrong = (c == 'z') ? 'x' : static_cast<char>(c + 1);
      out.push_back(ScriptItem::Char(wrong, pause));
      out.push_back(ScriptItem::Key(
          kVkBackspace,
          params_.typo_notice_delay_ms * (0.7 + 0.6 * rng_->NextDouble())));
      out.push_back(ScriptItem::Char(c, gap(1.2)));
    } else {
      out.push_back(ScriptItem::Char(c, pause));
    }
    if (c == '.' || c == '!' || c == '?') {
      carry_ms += rng_->Exponential(params_.sentence_pause_mean_ms);
    }
  }
  return out;
}

}  // namespace ilat
