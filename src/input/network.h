// Network traffic source.
//
// The paper's opening definition of event-handling latency covers "an
// asynchronous stream of independent and diverse events that result from
// interactive user input or network packet arrival".  This driver is the
// packet half: arrivals (Poisson by default) raise a NIC interrupt whose
// handler posts a WM_SOCKET message to the target application --
// WSAAsyncSelect-style delivery, contemporary with the paper.  Each packet
// becomes a measurable latency event exactly like a keystroke.

#ifndef ILAT_SRC_INPUT_NETWORK_H_
#define ILAT_SRC_INPUT_NETWORK_H_

#include "src/input/driver.h"

namespace ilat {

struct NetworkTrafficParams {
  // Exponential interarrival mean (Poisson process).
  double mean_interarrival_ms = 40.0;
  int packets = 200;
  // Payload range; Message::param carries the byte count.
  int min_bytes = 64;
  int max_bytes = 1'460;
  // NIC interrupt handler cost.
  Cycles nic_isr_cycles = 3'000;
  std::uint64_t seed = 1;
};

class NetworkTrafficDriver : public InputDriver {
 public:
  NetworkTrafficDriver(SystemUnderTest* system, GuiThread* target,
                       NetworkTrafficParams params);

  void Start() override;
  bool done() const override { return done_; }
  Cycles finished_at() const override { return finished_at_; }
  const std::vector<PostedEvent>& posted() const override { return posted_; }

 private:
  void Deliver(Cycles arrival, int bytes);

  SystemUnderTest* system_;
  GuiThread* target_;
  NetworkTrafficParams params_;
  Random rng_;
  int remaining_ = 0;
  bool done_ = false;
  Cycles finished_at_ = 0;
  std::vector<PostedEvent> posted_;
};

}  // namespace ilat

#endif  // ILAT_SRC_INPUT_NETWORK_H_
