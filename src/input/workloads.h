// The paper's benchmark workloads as input scripts.
//
// Each function builds the Script for one of the paper's benchmarks
// (§5.1 Notepad, §5.2 PowerPoint, §5.4 Word) or microbenchmarks (Figs. 1,
// 4, 6).  Scripts are deterministic given the PRNG seed.
//
// Not every catalog workload lives here: script-shaped one-liners (the
// network burst, the seed media player's single play command) are built
// inline in src/core/catalog.cc, and the "server" and "pipeline"
// workloads are not scripts at all -- they run as self-driving scenarios
// (src/server/, src/media/) whose results are adapted into the same
// SessionResult shape.

#ifndef ILAT_SRC_INPUT_WORKLOADS_H_
#define ILAT_SRC_INPUT_WORKLOADS_H_

#include <string>

#include "src/input/script.h"
#include "src/sim/random.h"

namespace ilat {

// Deterministic filler prose: lowercase words, sentences ended with '.',
// approximately `approx_chars` characters.  `newline_every_sentences` > 0
// inserts '\n' after that many sentences.
std::string GenerateProse(Random* rng, int approx_chars, int newline_every_sentences = 0);

// §5.1: editing session on a 56 KB text file -- 1300 characters typed at
// ~100 wpm, plus cursor and page movement.  `wpm_override` > 0 replaces
// the calibrated pace (campaign `params.typist_wpm` sweeps).
Script NotepadWorkload(Random* rng, double wpm_override = 0.0);

// §5.2: start PowerPoint cold, open a 46-page/530 KB presentation, page
// through it, and find and modify three embedded OLE Excel graph objects,
// then save.  Long-latency events carry the Table 1 labels.
Script PowerpointWorkload(Random* rng);

// §5.4: ~1000-character paragraph in Word with arrow-key movement and
// backspace corrections, at realistic varied pacing.  `wpm_override` > 0
// replaces the calibrated ~80 wpm pace (campaign `params.typist_wpm`).
Script WordWorkload(Random* rng, double wpm_override = 0.0);

// Fig. 4: one maximize gesture.
Script MaximizeWorkload();

// Fig. 6: n unbound-keystroke trials / background-click trials, spaced far
// enough apart that events never overlap.
Script KeystrokeTrials(int n, double gap_ms = 500.0);
Script ClickTrials(int n, double gap_ms = 800.0, double hold_ms = 150.0);

// Fig. 1: n echo keystrokes.
Script EchoTrials(int n, double gap_ms = 400.0);

}  // namespace ilat

#endif  // ILAT_SRC_INPUT_WORKLOADS_H_
