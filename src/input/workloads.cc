#include "src/input/workloads.h"

#include <array>

#include "src/apps/commands.h"
#include "src/input/typist.h"

namespace ilat {

std::string GenerateProse(Random* rng, int approx_chars, int newline_every_sentences) {
  static constexpr std::array<const char*, 24> kLexicon = {
      "the",     "system",  "measures", "latency",  "of",      "events",
      "users",   "perceive", "response", "time",    "when",    "input",
      "arrives", "and",     "handlers", "run",      "quickly", "under",
      "load",    "idle",    "loops",    "detect",   "lost",    "cycles",
  };

  std::string out;
  out.reserve(static_cast<std::size_t>(approx_chars) + 32);
  int words_in_sentence = 0;
  int sentence_target = static_cast<int>(rng->UniformInt(7, 13));
  int sentences_since_newline = 0;

  while (static_cast<int>(out.size()) < approx_chars) {
    const char* word = kLexicon[static_cast<std::size_t>(
        rng->UniformInt(0, static_cast<std::int64_t>(kLexicon.size()) - 1))];
    out += word;
    ++words_in_sentence;
    if (words_in_sentence >= sentence_target) {
      out += '.';
      words_in_sentence = 0;
      sentence_target = static_cast<int>(rng->UniformInt(7, 13));
      ++sentences_since_newline;
      if (newline_every_sentences > 0 &&
          sentences_since_newline >= newline_every_sentences) {
        out += '\n';
        sentences_since_newline = 0;
        continue;
      }
    }
    out += ' ';
  }
  return out;
}

Script NotepadWorkload(Random* rng, double wpm_override) {
  TypistParams tp;
  tp.words_per_minute = wpm_override > 0.0 ? wpm_override : 100.0;
  tp.sentence_pause_mean_ms = 900.0;
  Typist typist(tp, rng);

  Script script;
  // Five editing rounds: type a block, move the cursor around, page
  // through the file.  ~1300 characters total.
  for (int round = 0; round < 5; ++round) {
    const std::string block = GenerateProse(rng, 252, /*newline_every_sentences=*/2);
    Script typed = typist.Type(block);
    script.insert(script.end(), typed.begin(), typed.end());

    for (int i = 0; i < 30; ++i) {
      const int vk = rng->Bernoulli(0.5) ? kVkLeft : (rng->Bernoulli(0.5) ? kVkRight : kVkUp);
      script.push_back(ScriptItem::Key(vk, rng->Uniform(90.0, 160.0)));
    }
    for (int i = 0; i < 2; ++i) {
      script.push_back(ScriptItem::Key(rng->Bernoulli(0.7) ? kVkPageDown : kVkPageUp,
                                       rng->Uniform(600.0, 1'200.0), "page-move"));
    }
  }
  return script;
}

Script PowerpointWorkload(Random* rng) {
  Script s;
  s.push_back(ScriptItem::Command(kCmdPptStartApp, 3'000.0, "Start Powerpoint"));
  s.push_back(ScriptItem::Command(kCmdPptOpenDocument, 2'500.0, "Open document"));

  auto page_downs = [&](int n) {
    for (int i = 0; i < n; ++i) {
      s.push_back(
          ScriptItem::Command(kCmdPptPageDown, rng->Uniform(1'200.0, 3'000.0), "Page down"));
    }
  };
  auto edit_cells = [&](int n) {
    for (int i = 0; i < n; ++i) {
      s.push_back(
          ScriptItem::Command(kCmdPptEditCell, rng->Uniform(800.0, 1'800.0), "Excel op"));
    }
  };

  page_downs(12);
  s.push_back(ScriptItem::Command(kCmdPptStartOleEdit, 2'000.0,
                                  "Start OLE edit session (first time)"));
  edit_cells(3);
  s.push_back(ScriptItem::Command(kCmdPptEndOleEdit, 1'200.0, "End OLE edit"));

  page_downs(9);
  s.push_back(ScriptItem::Command(kCmdPptStartOleEdit, 2'000.0,
                                  "Start OLE edit session (second object)"));
  edit_cells(3);
  s.push_back(ScriptItem::Command(kCmdPptEndOleEdit, 1'200.0, "End OLE edit"));

  page_downs(8);
  s.push_back(ScriptItem::Command(kCmdPptStartOleEdit, 2'000.0,
                                  "Start OLE edit session (third object)"));
  edit_cells(3);
  s.push_back(ScriptItem::Command(kCmdPptEndOleEdit, 1'200.0, "End OLE edit"));

  page_downs(4);
  s.push_back(ScriptItem::Command(kCmdPptSave, 2'500.0, "Save document"));
  return s;
}

Script WordWorkload(Random* rng, double wpm_override) {
  TypistParams tp;
  tp.words_per_minute = wpm_override > 0.0 ? wpm_override : 80.0;  // composing default
  tp.key_jitter_fraction = 0.35;
  tp.sentence_pause_mean_ms = 5'000.0;
  tp.typo_probability = 0.015;
  Typist typist(tp, rng);

  // ~1000 characters across a few paragraph chunks (carriage returns).
  const std::string text = GenerateProse(rng, 1'000, /*newline_every_sentences=*/3);
  Script script = typist.Type(text);

  // Cursor movement with arrow keys (re-reading / repositioning).
  Script out;
  out.reserve(script.size() + 120);
  std::size_t i = 0;
  for (const ScriptItem& item : script) {
    out.push_back(item);
    if (++i % 60 == 0) {
      const int moves = static_cast<int>(rng->UniformInt(3, 8));
      for (int k = 0; k < moves; ++k) {
        out.push_back(ScriptItem::Key(rng->Bernoulli(0.5) ? kVkLeft : kVkRight,
                                      rng->Uniform(110.0, 200.0)));
      }
    }
    if (i % 200 == 0) {
      // Re-reading pause: the user stops to read what they wrote.
      out.back().pause_before_ms += rng->Uniform(5'000.0, 9'000.0);
    }
  }
  return out;
}

Script MaximizeWorkload() {
  Script s;
  s.push_back(ScriptItem::Command(kCmdWmMaximize, 100.0, "Maximize window"));
  return s;
}

Script KeystrokeTrials(int n, double gap_ms) {
  Script s;
  for (int i = 0; i < n; ++i) {
    s.push_back(ScriptItem::Key(kVkDown, gap_ms, "key stroke"));
  }
  return s;
}

Script ClickTrials(int n, double gap_ms, double hold_ms) {
  Script s;
  for (int i = 0; i < n; ++i) {
    s.push_back(ScriptItem::Click(gap_ms, hold_ms, "mouse click"));
  }
  return s;
}

Script EchoTrials(int n, double gap_ms) {
  Script s;
  for (int i = 0; i < n; ++i) {
    s.push_back(ScriptItem::Char('a', gap_ms, "echo"));
  }
  return s;
}

}  // namespace ilat
