#include "src/input/driver.h"

#include <algorithm>
#include <cassert>

namespace ilat {

namespace {

Message InputMessage(const ScriptItem& it, bool mouse_up = false) {
  Message m;
  switch (it.kind) {
    case ScriptItem::Kind::kChar:
      m.type = MessageType::kChar;
      break;
    case ScriptItem::Kind::kKeyDown:
      m.type = MessageType::kKeyDown;
      break;
    case ScriptItem::Kind::kMouseClick:
      m.type = mouse_up ? MessageType::kMouseUp : MessageType::kMouseDown;
      break;
    case ScriptItem::Kind::kCommand:
      m.type = MessageType::kCommand;
      break;
  }
  m.param = it.param;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// TestDriver

TestDriver::TestDriver(SystemUnderTest* system, GuiThread* target, Script script,
                       bool inject_queuesync)
    : system_(system),
      target_(target),
      script_(std::move(script)),
      inject_queuesync_(inject_queuesync) {
  target_->AddObserver(this);
}

void TestDriver::Start() {
  if (script_.empty()) {
    done_ = true;
    finished_at_ = system_->sim().now();
    return;
  }
  ScheduleNext(system_->sim().now());
}

void TestDriver::ScheduleNext(Cycles base) {
  assert(next_item_ < script_.size());
  const ScriptItem& it = script_[next_item_];
  // Test paces from the completion of the previous event's processing
  // (its WM_QUEUESYNC), so slow sync handling stretches elapsed time --
  // the Fig. 7 Windows 95 artifact.
  const Cycles when = base + MillisecondsToCycles(it.pause_before_ms);
  system_->sim().queue().ScheduleAt(std::max(when, system_->sim().now()),
                                    [this] { InjectCurrent(); });
}

void TestDriver::InjectCurrent() {
  const ScriptItem it = script_[next_item_];
  ++next_item_;

  const Cycles injected_at = system_->sim().now();
  auto record = [this, it, injected_at](const Message& stamped) {
    posted_.push_back(PostedEvent{stamped.seq, it.kind, it.param, it.label, injected_at});
  };

  auto post_sync_and_continue = [this] {
    last_post_time_ = system_->sim().now();
    if (inject_queuesync_) {
      Message sync;
      sync.type = MessageType::kQueueSync;
      const Message stamped = target_->queue().Post(sync);
      awaited_sync_seq_ = stamped.seq;
      // Next item is scheduled when this sync is handled (OnHandleEnd).
    } else {
      if (next_item_ >= script_.size()) {
        done_ = true;
        finished_at_ = system_->sim().now();
      } else {
        ScheduleNext(system_->sim().now());
      }
    }
  };

  switch (it.kind) {
    case ScriptItem::Kind::kMouseClick: {
      system_->RaiseMouseInterrupt([this, record] {
        Message down;
        down.type = MessageType::kMouseDown;
        record(target_->queue().Post(down));
      });
      system_->sim().queue().ScheduleAfter(
          MillisecondsToCycles(it.hold_ms), [this, post_sync_and_continue] {
            system_->RaiseMouseInterrupt([this, post_sync_and_continue] {
              Message up;
              up.type = MessageType::kMouseUp;
              target_->queue().Post(up);
              post_sync_and_continue();
            });
          });
      break;
    }
    case ScriptItem::Kind::kCommand: {
      system_->RaiseInputInterrupt(600, [this, it, record, post_sync_and_continue] {
        record(target_->queue().Post(InputMessage(it)));
        post_sync_and_continue();
      });
      break;
    }
    default: {
      system_->RaiseKeyboardInterrupt([this, it, record, post_sync_and_continue] {
        record(target_->queue().Post(InputMessage(it)));
        post_sync_and_continue();
      });
      break;
    }
  }
}

void TestDriver::OnHandleEnd(Cycles t, const Message& m) {
  if (m.type != MessageType::kQueueSync || m.seq != awaited_sync_seq_) {
    return;
  }
  awaited_sync_seq_ = 0;
  if (next_item_ >= script_.size()) {
    done_ = true;
    finished_at_ = t;
  } else {
    ScheduleNext(t);
  }
}

// ---------------------------------------------------------------------------
// HumanDriver

HumanDriver::HumanDriver(SystemUnderTest* system, GuiThread* target, Script script)
    : system_(system), target_(target), script_(std::move(script)) {
  remaining_ = script_.size();
}

void HumanDriver::Start() {
  if (script_.empty()) {
    done_ = true;
    finished_at_ = system_->sim().now();
    return;
  }
  // Lay every item out on the wall clock up front: a human's pacing does
  // not depend on how fast the system responds.
  Cycles t = system_->sim().now();
  for (std::size_t i = 0; i < script_.size(); ++i) {
    t += MillisecondsToCycles(script_[i].pause_before_ms);
    system_->sim().queue().ScheduleAt(t, [this, i] { InjectItem(i); });
    if (script_[i].kind == ScriptItem::Kind::kMouseClick) {
      t += MillisecondsToCycles(script_[i].hold_ms);
    }
  }
}

void HumanDriver::InjectItem(std::size_t index) {
  const ScriptItem& it = script_[index];

  const Cycles injected_at = system_->sim().now();
  auto record = [this, &it, injected_at](const Message& stamped) {
    posted_.push_back(PostedEvent{stamped.seq, it.kind, it.param, it.label, injected_at});
  };

  auto finish_one = [this] {
    if (--remaining_ == 0) {
      done_ = true;
      finished_at_ = system_->sim().now();
    }
  };

  switch (it.kind) {
    case ScriptItem::Kind::kMouseClick: {
      system_->RaiseMouseInterrupt([this, record] {
        Message down;
        down.type = MessageType::kMouseDown;
        record(target_->queue().Post(down));
      });
      system_->sim().queue().ScheduleAfter(
          MillisecondsToCycles(it.hold_ms), [this, finish_one] {
            system_->RaiseMouseInterrupt([this, finish_one] {
              Message up;
              up.type = MessageType::kMouseUp;
              target_->queue().Post(up);
              finish_one();
            });
          });
      break;
    }
    case ScriptItem::Kind::kCommand: {
      ScriptItem copy = it;
      system_->RaiseInputInterrupt(600, [this, copy, record, finish_one] {
        record(target_->queue().Post(InputMessage(copy)));
        finish_one();
      });
      break;
    }
    default: {
      ScriptItem copy = it;
      system_->RaiseKeyboardInterrupt([this, copy, record, finish_one] {
        record(target_->queue().Post(InputMessage(copy)));
        finish_one();
      });
      break;
    }
  }
}

}  // namespace ilat
