#include "src/input/driver.h"

#include <algorithm>
#include <cassert>

namespace ilat {

namespace {

Message InputMessage(const ScriptItem& it, bool mouse_up = false) {
  Message m;
  switch (it.kind) {
    case ScriptItem::Kind::kChar:
      m.type = MessageType::kChar;
      break;
    case ScriptItem::Kind::kKeyDown:
      m.type = MessageType::kKeyDown;
      break;
    case ScriptItem::Kind::kMouseClick:
      m.type = mouse_up ? MessageType::kMouseUp : MessageType::kMouseDown;
      break;
    case ScriptItem::Kind::kCommand:
      m.type = MessageType::kCommand;
      break;
  }
  m.param = it.param;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// TestDriver

TestDriver::TestDriver(SystemUnderTest* system, GuiThread* target, Script script,
                       bool inject_queuesync)
    : system_(system),
      target_(target),
      script_(std::move(script)),
      inject_queuesync_(inject_queuesync) {
  target_->AddObserver(this);
}

void TestDriver::Start() {
  if (script_.empty()) {
    done_ = true;
    finished_at_ = system_->sim().now();
    return;
  }
  ScheduleNext(system_->sim().now());
}

void TestDriver::ScheduleNext(Cycles base) {
  assert(next_item_ < script_.size());
  const ScriptItem& it = script_[next_item_];
  // Test paces from the completion of the previous event's processing
  // (its WM_QUEUESYNC), so slow sync handling stretches elapsed time --
  // the Fig. 7 Windows 95 artifact.
  const Cycles when = base + MillisecondsToCycles(it.pause_before_ms);
  system_->sim().queue().ScheduleAt(std::max(when, system_->sim().now()),
                                    [this] { InjectCurrent(); });
}

void TestDriver::InjectCurrent() {
  const ScriptItem it = script_[next_item_];
  ++next_item_;

  const Cycles injected_at = system_->sim().now();
  auto record = [this, it, injected_at](const Message& stamped) {
    posted_.push_back(PostedEvent{stamped.seq, it.kind, it.param, it.label, injected_at});
  };

  auto post_sync_and_continue = [this] {
    last_post_time_ = system_->sim().now();
    if (inject_queuesync_) {
      Message sync;
      sync.type = MessageType::kQueueSync;
      const Message stamped = target_->queue().Post(sync);
      awaited_sync_seq_ = stamped.seq;
      // Next item is scheduled when this sync is handled (OnHandleEnd).
    } else {
      if (next_item_ >= script_.size()) {
        done_ = true;
        finished_at_ = system_->sim().now();
      } else {
        ScheduleNext(system_->sim().now());
      }
    }
  };

  switch (it.kind) {
    case ScriptItem::Kind::kMouseClick: {
      system_->RaiseMouseInterrupt([this, record] {
        Message down;
        down.type = MessageType::kMouseDown;
        record(target_->queue().Post(down));
      });
      system_->sim().queue().ScheduleAfter(
          MillisecondsToCycles(it.hold_ms), [this, post_sync_and_continue] {
            system_->RaiseMouseInterrupt([this, post_sync_and_continue] {
              Message up;
              up.type = MessageType::kMouseUp;
              target_->queue().Post(up);
              post_sync_and_continue();
            });
          });
      break;
    }
    case ScriptItem::Kind::kCommand: {
      system_->RaiseInputInterrupt(600, [this, it, record, post_sync_and_continue] {
        record(target_->queue().Post(InputMessage(it)));
        post_sync_and_continue();
      });
      break;
    }
    default: {
      system_->RaiseKeyboardInterrupt([this, it, record, post_sync_and_continue] {
        record(target_->queue().Post(InputMessage(it)));
        post_sync_and_continue();
      });
      break;
    }
  }
}

void TestDriver::OnHandleEnd(Cycles t, const Message& m) {
  if (m.type != MessageType::kQueueSync || m.seq != awaited_sync_seq_) {
    return;
  }
  awaited_sync_seq_ = 0;
  if (next_item_ >= script_.size()) {
    done_ = true;
    finished_at_ = t;
  } else {
    ScheduleNext(t);
  }
}

// ---------------------------------------------------------------------------
// HumanDriver

HumanDriver::HumanDriver(SystemUnderTest* system, GuiThread* target, Script script,
                         HumanRetryPolicy retry)
    : system_(system), target_(target), script_(std::move(script)), retry_(retry) {
  remaining_ = script_.size();
  first_attempt_at_.resize(script_.size(), 0);
  click_dropped_.resize(script_.size(), 0);
}

void HumanDriver::EnableTracing(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  // Reuse the fault injector's "fault" track when it registered one, so
  // drop instants and the driver's retry/abandon instants interleave on a
  // single timeline row.
  fault_track_ = 0;
  const auto& tracks = tracer_->tracks();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i] == "fault") {
      fault_track_ = static_cast<std::uint32_t>(i);
      break;
    }
  }
  if (fault_track_ == 0) {
    fault_track_ = tracer_->RegisterTrack("fault");
  }
  auto& m = tracer_->metrics();
  m_retries_ = m.GetCounter("fault.input.retries");
  m_abandons_ = m.GetCounter("fault.input.abandons");
}

void HumanDriver::Start() {
  if (script_.empty()) {
    done_ = true;
    finished_at_ = system_->sim().now();
    return;
  }
  // Lay every item out on the wall clock up front: a human's pacing does
  // not depend on how fast the system responds.  Retries are the one
  // exception -- a dropped input inserts its own backoff re-issues, but
  // the rest of the script stays on its original schedule.
  Cycles t = system_->sim().now();
  for (std::size_t i = 0; i < script_.size(); ++i) {
    t += MillisecondsToCycles(script_[i].pause_before_ms);
    system_->sim().queue().ScheduleAt(t, [this, i] { InjectItem(i, /*attempt=*/0); });
    if (script_[i].kind == ScriptItem::Kind::kMouseClick) {
      t += MillisecondsToCycles(script_[i].hold_ms);
    }
  }
}

bool HumanDriver::PostDetectingDrop(Message m, Message* stamped) {
  const std::uint64_t before = target_->queue().dropped_count();
  *stamped = target_->queue().Post(m);
  return target_->queue().dropped_count() == before;
}

void HumanDriver::RecordPosted(std::size_t index, int attempt, const Message& stamped) {
  const ScriptItem& it = script_[index];
  posted_.push_back(
      PostedEvent{stamped.seq, it.kind, it.param, it.label, first_attempt_at_[index], attempt});
}

void HumanDriver::FinishOne() {
  if (--remaining_ == 0) {
    done_ = true;
    finished_at_ = system_->sim().now();
  }
}

void HumanDriver::BeginRetryWait(Cycles t) {
  if (++retry_pending_ == 1 && on_retry_wait_) {
    on_retry_wait_(t, /*pending=*/true);
  }
}

void HumanDriver::EndRetryWait(Cycles t) {
  if (--retry_pending_ == 0 && on_retry_wait_) {
    on_retry_wait_(t, /*pending=*/false);
  }
}

Cycles HumanDriver::BackoffFor(std::size_t index, int attempt) const {
  // The user takes at least backoff_floor_ms to notice nothing happened
  // and act again; deliberate actions (long think pauses) take
  // proportionally longer to second-guess.  Doubles per failed attempt.
  double ms = std::max(retry_.backoff_floor_ms,
                       retry_.backoff_frac_of_pause * script_[index].pause_before_ms);
  ms *= static_cast<double>(std::uint64_t{1} << std::min(attempt, 20));
  return MillisecondsToCycles(ms);
}

void HumanDriver::HandleDrop(std::size_t index, int attempt) {
  const Cycles now = system_->sim().now();
  if (attempt == 0) {
    BeginRetryWait(now);
  }
  if (attempt >= retry_.max_retries) {
    // Patience exhausted: the user gives up on this action and moves on
    // with the rest of the script -- a structured abandonment the fault
    // report can grade, not a driver that never finishes.
    ++abandons_;
    if (m_abandons_ != nullptr) {
      m_abandons_->Increment();
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant(fault_track_, "user.abandon", "fault", now, "item",
                       static_cast<double>(index), "attempts", static_cast<double>(attempt + 1));
    }
    EndRetryWait(now);
    FinishOne();
    return;
  }
  ++retries_;
  if (m_retries_ != nullptr) {
    m_retries_->Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(fault_track_, "input.retry", "fault", now, "item",
                     static_cast<double>(index), "attempt", static_cast<double>(attempt + 1));
  }
  system_->sim().queue().ScheduleAfter(BackoffFor(index, attempt), [this, index, attempt] {
    InjectItem(index, attempt + 1);
  });
}

void HumanDriver::DeliverSimple(std::size_t index, int attempt) {
  Message stamped;
  const bool landed = PostDetectingDrop(InputMessage(script_[index]), &stamped);
  if (landed || !retry_.enabled) {
    // Retry disabled preserves the legacy behaviour exactly: the dropped
    // post is still recorded (the extractor skips never-retrieved seqs)
    // and the item counts as delivered.
    RecordPosted(index, attempt, stamped);
    if (attempt > 0) {
      EndRetryWait(system_->sim().now());
    }
    FinishOne();
    return;
  }
  HandleDrop(index, attempt);
}

void HumanDriver::InjectItem(std::size_t index, int attempt) {
  const ScriptItem& it = script_[index];
  if (attempt == 0) {
    first_attempt_at_[index] = system_->sim().now();
  }

  switch (it.kind) {
    case ScriptItem::Kind::kMouseClick: {
      system_->RaiseMouseInterrupt([this, index, attempt] {
        Message down;
        down.type = MessageType::kMouseDown;
        Message stamped;
        const bool landed = PostDetectingDrop(down, &stamped);
        if (!landed && retry_.enabled) {
          // The press never registered: suppress the matching release (a
          // user does not release a click the system never saw as held)
          // and re-press after the backoff.
          click_dropped_[index] = 1;
          HandleDrop(index, attempt);
          return;
        }
        click_dropped_[index] = 0;
        RecordPosted(index, attempt, stamped);
        if (attempt > 0) {
          EndRetryWait(system_->sim().now());
        }
      });
      // The release is scheduled from the press's wall-clock time (not
      // from inside the ISR) so fault-free click timing is unchanged; the
      // press ISR runs cycles, the hold lasts milliseconds, so the
      // dropped flag is always settled by the time this fires.
      system_->sim().queue().ScheduleAfter(
          MillisecondsToCycles(it.hold_ms), [this, index] {
            if (click_dropped_[index] != 0) {
              return;
            }
            system_->RaiseMouseInterrupt([this] {
              Message up;
              up.type = MessageType::kMouseUp;
              target_->queue().Post(up);
              FinishOne();
            });
          });
      break;
    }
    case ScriptItem::Kind::kCommand: {
      system_->RaiseInputInterrupt(600, [this, index, attempt] {
        DeliverSimple(index, attempt);
      });
      break;
    }
    default: {
      system_->RaiseKeyboardInterrupt([this, index, attempt] {
        DeliverSimple(index, attempt);
      });
      break;
    }
  }
}

}  // namespace ilat
