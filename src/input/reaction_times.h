// Reaction-time constants for the simulated human, grounded in the HCI
// literature rather than picked by feel (closes the ROADMAP calibration
// item; referenced from docs/FAULTS.md).
//
// The retrying human driver (src/input/driver.h) and the multi-user
// server's user model (src/server/user.h) both model the same behaviour:
// a user acts, nothing visible happens, the user notices, waits, and acts
// again.  The backoff for attempt k is
//
//   backoff(k) = max(kRetryBackoffFloorMs,
//                    kRetryBackoffFracOfPause * think_pause_ms)
//                * kRetryBackoffGrowth^k
//
// Sources for the constants:
//
//  * kRetryBackoffFloorMs = 120 ms.  Noticing that an action produced no
//    response and re-acting takes at least one perceptual-processor cycle
//    plus a motor cycle of the Model Human Processor -- tau_p ~= 100 ms
//    [50..200] and tau_m ~= 70 ms [30..100] (Card, Moran & Newell, "The
//    Psychology of Human-Computer Interaction", 1983, ch. 2).  120 ms sits
//    at the optimistic end of tau_p + tau_m, and matches the ~0.1 s bound
//    under which a response feels instantaneous (Nielsen, "Usability
//    Engineering", 1993, ch. 5; also the OSDI paper's premise that
//    sub-perceptual latencies do not register with users).  Simple visual
//    reaction-time studies cluster around 180..250 ms; the floor is a
//    *lower* bound on re-action, not a mean, so 120 ms is conservative.
//
//  * kRetryBackoffFracOfPause = 0.5.  Users who were pacing themselves
//    slowly (long think pauses = deliberate actions) take proportionally
//    longer to second-guess an unresponsive action than users hammering
//    short keystrokes.  Scaling the wait by half the action's own think
//    pause keeps the retry cadence proportional to the user's demonstrated
//    pace, consistent with the self-paced nature of think time in the
//    think/wait decomposition (paper Fig. 2).
//
//  * kRetryBackoffGrowth = 2.  Doubling per failed attempt mirrors how
//    users escalate from "did I mis-click?" to "it is stuck": each failure
//    both raises their estimate of the system's sluggishness and makes
//    them wait longer before concluding the next attempt failed too.
//    Nielsen's 10 s limit for keeping attention bounds the escalation:
//    with a 120 ms floor and 3 bounded retries the worst-case total wait
//    stays within the attention span before the user abandons the action.
//
//  * kDefaultMaxRetries = 3.  After three unanswered re-issues the user
//    gives up on the action (a structured "user abandon"), consistent with
//    abandonment being the observable outcome once response times exceed
//    the attention threshold.

#ifndef ILAT_SRC_INPUT_REACTION_TIMES_H_
#define ILAT_SRC_INPUT_REACTION_TIMES_H_

#include <algorithm>

namespace ilat {
namespace input {

// Minimum time to notice a missing response and re-act (perceptual +
// motor cycle; see header comment for citations).
inline constexpr double kRetryBackoffFloorMs = 120.0;

// Fraction of the action's own think pause added to the backoff --
// deliberate users second-guess more slowly.
inline constexpr double kRetryBackoffFracOfPause = 0.5;

// Escalation factor per failed attempt.
inline constexpr double kRetryBackoffGrowth = 2.0;

// Bounded re-issues before the user abandons the action.
inline constexpr int kDefaultMaxRetries = 3;

// backoff(attempt) in milliseconds for an action whose think pause was
// `pause_ms`.  `attempt` is 0 for the first re-issue.  The growth exponent
// is clamped so pathological attempt counts cannot overflow.
inline double RetryBackoffMs(double pause_ms, int attempt) {
  double ms = std::max(kRetryBackoffFloorMs, kRetryBackoffFracOfPause * pause_ms);
  const int clamped = std::min(attempt, 20);
  for (int i = 0; i < clamped; ++i) {
    ms *= kRetryBackoffGrowth;
  }
  return ms;
}

}  // namespace input
}  // namespace ilat

#endif  // ILAT_SRC_INPUT_REACTION_TIMES_H_
