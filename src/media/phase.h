// PhaseAdjustThread: re-aligns decoded frames with the presentation grid.
//
// Decode tells this stage a frame is ready by posting a kCommand message
// to its queue (fault-eligible: `mq.*` plans drop/duplicate/reorder these
// notifications like any user input).  The stage burns a small
// bookkeeping cost per frame, measures the frame's phase error against
// the ready-time grid, starts the render grid once pre-roll is met, and
// then decides: a frame whose slot has already passed is dropped (render
// would only show it late); an early frame is *delayed* by forwarding it
// to render, which holds it in the buffer until its slot.

#ifndef ILAT_SRC_MEDIA_PHASE_H_
#define ILAT_SRC_MEDIA_PHASE_H_

#include "src/sim/message_queue.h"
#include "src/sim/thread.h"

namespace ilat {
namespace media {

class MediaPipeline;

class PhaseAdjustThread : public SimThread {
 public:
  // Between decode (production) and render (presentation).
  static constexpr int kPriority = 6;

  PhaseAdjustThread(MediaPipeline* pipeline, EventQueue* clock);

  ThreadAction NextAction() override;

  MessageQueue& queue() { return mq_; }

 private:
  enum class Phase {
    kIdle,       // pop the next ready notification, or block
    kAdjustRun,  // per-frame bookkeeping CPU in flight
    kDecide,     // hand the drop/forward decision to the pipeline
  };

  MediaPipeline* pipeline_;
  MessageQueue mq_;
  Phase phase_ = Phase::kIdle;
  int frame_ = 0;
};

}  // namespace media
}  // namespace ilat

#endif  // ILAT_SRC_MEDIA_PHASE_H_
