#include "src/media/render.h"

#include "src/media/pipeline.h"

namespace ilat {
namespace media {

RenderThread::RenderThread(MediaPipeline* pipeline, EventQueue* clock)
    : SimThread("media-render", kPriority), pipeline_(pipeline), mq_(clock) {
  // No wake callback: render is purely slot-driven and drains the queue at
  // each tick, so an early notification never wakes it ahead of the grid.
}

void RenderThread::Start(Cycles origin) {
  origin_ = origin;
  ready_.assign(static_cast<std::size_t>(pipeline_->params().frames), 0);
  pipeline_->sim().queue().ScheduleAt(origin, [this] {
    if (phase_ == Phase::kWaitStart) {
      phase_ = Phase::kTick;
    }
    pipeline_->sim().scheduler().Wake(this);
  });
}

ThreadAction RenderThread::NextAction() {
  const MediaParams& p = pipeline_->params();
  Simulation& sim = pipeline_->sim();
  for (;;) {
    switch (phase_) {
      case Phase::kWaitStart:
        return ThreadAction::Block();
      case Phase::kTick: {
        Message m;
        while (mq_.TryPop(&m)) {
          if (m.type == MessageType::kCommand && m.param >= 0 &&
              m.param < p.frames) {
            ready_[static_cast<std::size_t>(m.param)] = 1;
          }
        }
        if (slot_ >= p.frames) {
          phase_ = Phase::kDone;
          pipeline_->OnRenderDone();
          return ThreadAction::Finish();
        }
        slot_time_ = origin_ + static_cast<Cycles>(slot_) * p.period();
        if (sim.now() < slot_time_) {
          phase_ = Phase::kAwaitSlot;
          sim.queue().ScheduleAt(slot_time_, [this] {
            if (phase_ == Phase::kAwaitSlot) {
              phase_ = Phase::kTick;
            }
            pipeline_->sim().scheduler().Wake(this);
          });
          return ThreadAction::Block();
        }
        // Slot due.  Frames the grid moved past can never be shown.
        pipeline_->EvictStale(slot_);
        const int frame = slot_;
        if (ready_[static_cast<std::size_t>(frame)] != 0 &&
            pipeline_->TakeFrame(frame)) {
          phase_ = Phase::kRenderRun;
          return ThreadAction::Compute(
              Work::FromInstructions(p.render_kinstr * 1000.0,
                                     pipeline_->profile().gui_code),
              [this, frame] {
                pipeline_->OnFrameRendered(frame, slot_time_,
                                           pipeline_->sim().now());
                ++slot_;
                phase_ = Phase::kTick;
              });
        }
        pipeline_->OnSlotUnderrun(frame, slot_time_);
        ++slot_;
        continue;
      }
      case Phase::kAwaitSlot:
        return ThreadAction::Block();
      case Phase::kRenderRun:
        return ThreadAction::Block();
      case Phase::kDone:
        return ThreadAction::Finish();
    }
  }
}

}  // namespace media
}  // namespace ilat
