#include "src/media/phase.h"

#include "src/media/pipeline.h"

namespace ilat {
namespace media {

PhaseAdjustThread::PhaseAdjustThread(MediaPipeline* pipeline, EventQueue* clock)
    : SimThread("media-phase", kPriority), pipeline_(pipeline), mq_(clock) {
  mq_.SetWakeCallback([this] {
    pipeline_->sim().scheduler().Wake(this,
                                      pipeline_->profile().wake_priority_boost);
  });
}

ThreadAction PhaseAdjustThread::NextAction() {
  const MediaParams& p = pipeline_->params();
  for (;;) {
    switch (phase_) {
      case Phase::kIdle: {
        Message m;
        if (!mq_.TryPop(&m)) {
          return ThreadAction::Block();
        }
        if (m.type != MessageType::kCommand || m.param < 0 ||
            m.param >= p.frames) {
          continue;  // duplicate-mangled or foreign message; ignore
        }
        frame_ = m.param;
        phase_ = Phase::kAdjustRun;
        return ThreadAction::Compute(
            Work::FromInstructions(p.phase_kinstr * 1000.0,
                                   pipeline_->profile().app_code),
            [this] { phase_ = Phase::kDecide; });
      }
      case Phase::kAdjustRun:
        return ThreadAction::Block();
      case Phase::kDecide:
        pipeline_->OnFrameAdjusted(frame_);
        phase_ = Phase::kIdle;
        continue;
    }
  }
}

}  // namespace media
}  // namespace ilat
