// RenderThread: the pipeline's presentation stage.
//
// Once pre-roll completes the render grid is fixed: slot k is
// origin + k * period, and frame k must be on screen before slot k+1 --
// a hard per-frame deadline.  At each slot the thread drains its
// ready-notification queue (posted by the phase-adjust stage, and subject
// to `mq.*` fault plans), shows frame k if it is ready and still
// buffered, and otherwise counts an underrun -- the display repeats the
// previous frame, which is exactly the artifact a viewer perceives.
// Frames the grid has moved past are evicted so a stalled pipeline can
// never wedge the buffer.

#ifndef ILAT_SRC_MEDIA_RENDER_H_
#define ILAT_SRC_MEDIA_RENDER_H_

#include <vector>

#include "src/sim/message_queue.h"
#include "src/sim/thread.h"

namespace ilat {
namespace media {

class MediaPipeline;

class RenderThread : public SimThread {
 public:
  // Highest of the three stages: the display never waits on production.
  static constexpr int kPriority = 7;

  RenderThread(MediaPipeline* pipeline, EventQueue* clock);

  ThreadAction NextAction() override;

  MessageQueue& queue() { return mq_; }

  // Called by the pipeline when pre-roll completes: fixes the grid anchor
  // and schedules the first slot tick.
  void Start(Cycles origin);

  bool done() const { return phase_ == Phase::kDone; }
  int next_slot() const { return slot_; }

 private:
  enum class Phase {
    kWaitStart,  // parked until Start() fixes the grid
    kTick,       // a slot boundary is due (or overdue)
    kAwaitSlot,  // parked until the next slot boundary
    kRenderRun,  // render CPU in flight
    kDone,
  };

  MediaPipeline* pipeline_;
  MessageQueue mq_;
  Phase phase_ = Phase::kWaitStart;
  Cycles origin_ = 0;
  int slot_ = 0;
  Cycles slot_time_ = 0;       // boundary of the slot being rendered
  std::vector<char> ready_;    // per-frame: notification received
};

}  // namespace media
}  // namespace ilat

#endif  // ILAT_SRC_MEDIA_RENDER_H_
