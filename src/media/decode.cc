#include "src/media/decode.h"

#include "src/media/pipeline.h"

namespace ilat {
namespace media {

DecodeThread::DecodeThread(MediaPipeline* pipeline, std::uint64_t seed)
    : SimThread("media-decode", kPriority), pipeline_(pipeline), rng_(seed) {}

ThreadAction DecodeThread::NextAction() {
  const MediaParams& p = pipeline_->params();
  Simulation& sim = pipeline_->sim();
  if (!started_) {
    started_ = true;
    origin_ = sim.now();
  }
  for (;;) {
    switch (phase_) {
      case Phase::kPace: {
        if (next_frame_ >= p.frames) {
          phase_ = Phase::kDone;
          pipeline_->OnDecodeDone();
          return ThreadAction::Finish();
        }
        // Frame i exists at origin + i*period; after a stall the grid is
        // already behind `now` and decode catches up back to back.
        const Cycles target =
            origin_ + static_cast<Cycles>(next_frame_) * p.period();
        if (sim.now() < target) {
          phase_ = Phase::kAwaitPace;
          sim.queue().ScheduleAt(target, [this] {
            phase_ = Phase::kRead;
            pipeline_->sim().scheduler().Wake(this);
          });
          return ThreadAction::Block();
        }
        phase_ = Phase::kRead;
        continue;
      }
      case Phase::kAwaitPace:
        return ThreadAction::Block();
      case Phase::kRead: {
        phase_ = Phase::kAwaitDisk;
        // Frames are scattered across the media file; a failed read still
        // completes (the decoder conceals the error with a garbage frame),
        // so fault plans degrade playback instead of wedging it.
        const auto block =
            static_cast<std::int64_t>(next_frame_) * p.frame_blocks;
        sim.disk().SubmitRead(block, p.frame_blocks, [this](IoStatus) {
          phase_ = Phase::kDecode;
          pipeline_->sim().scheduler().Wake(
              this, pipeline_->profile().wake_priority_boost);
        });
        return ThreadAction::Block();
      }
      case Phase::kAwaitDisk:
        return ThreadAction::Block();
      case Phase::kDecode: {
        const double kinstr =
            rng_.Uniform(p.decode_kinstr_min, p.decode_kinstr_max);
        phase_ = Phase::kDecodeRun;
        return ThreadAction::Compute(
            Work::FromInstructions(kinstr * 1000.0,
                                   pipeline_->profile().app_code),
            [this] { phase_ = Phase::kPush; });
      }
      case Phase::kDecodeRun:
        return ThreadAction::Block();
      case Phase::kPush:
        pipeline_->OnFrameDecoded(next_frame_);
        ++next_frame_;
        phase_ = Phase::kPace;
        continue;
      case Phase::kDone:
        return ThreadAction::Finish();
    }
  }
}

}  // namespace media
}  // namespace ilat
