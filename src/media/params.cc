#include "src/media/params.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace ilat {
namespace media {

namespace {

// Digit-only, overflow-checked integer in [lo, hi].
bool ParseIntIn(const std::string& value, long long lo, long long hi, int* out) {
  if (value.empty()) {
    return false;
  }
  long long v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + (c - '0');
    if (v > hi) {
      return false;
    }
  }
  if (v < lo) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// Finite double in [lo, hi]; rejects trailing junk and overflow-to-inf.
bool ParseDoubleIn(const std::string& value, double lo, double hi, double* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || !std::isfinite(v) || v < lo || v > hi) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int MediaParams::preroll() const {
  return std::max(1, std::min(preroll_frames, std::min(buffer_frames, frames)));
}

bool KnownMediaParamKey(const std::string& key) {
  return key == "media_fps" || key == "media_buffer_frames" || key == "media_frames";
}

bool SetMediaParamKey(const std::string& key, const std::string& value,
                      MediaParams* params, std::string* error) {
  auto bad = [&](const char* want) {
    *error = "bad value '" + value + "' for media param '" + key + "' (" + want + ")";
    return false;
  };
  if (key == "media_fps") {
    return ParseDoubleIn(value, 1.0, 1000.0, &params->fps) ? true : bad("fps 1..1000");
  }
  if (key == "media_buffer_frames") {
    return ParseIntIn(value, 1, 4096, &params->buffer_frames) ? true
                                                              : bad("integer 1..4096");
  }
  if (key == "media_frames") {
    return ParseIntIn(value, 1, 1'000'000, &params->frames) ? true
                                                            : bad("integer 1..1000000");
  }
  *error = "unknown media param '" + key + "'";
  return false;
}

}  // namespace media
}  // namespace ilat
