// JitterBuffer: the bounded frame store between decode and render.
//
// Decode pushes frame indices as they finish; render (via the phase-adjust
// stage's notifications) consumes them at the period grid.  The bound is
// the whole point: a stalled consumer backs the buffer up until decode
// output has nowhere to go and is dropped, and a stalled producer drains
// it until render slots find nothing to show (underruns).  Occupancy and
// high-water are the leading indicators of both.

#ifndef ILAT_SRC_MEDIA_BUFFER_H_
#define ILAT_SRC_MEDIA_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <deque>

namespace ilat {
namespace media {

class JitterBuffer {
 public:
  explicit JitterBuffer(int capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  // False (and the frame is lost) when the buffer is full.
  bool Push(int frame) {
    if (static_cast<int>(frames_.size()) >= capacity_) {
      ++overflow_drops_;
      return false;
    }
    frames_.push_back(frame);
    ++pushed_;
    high_water_ = std::max(high_water_, frames_.size());
    return true;
  }

  bool Contains(int frame) const {
    return std::find(frames_.begin(), frames_.end(), frame) != frames_.end();
  }

  // Remove one frame by index; false if absent.
  bool Erase(int frame) {
    auto it = std::find(frames_.begin(), frames_.end(), frame);
    if (it == frames_.end()) {
      return false;
    }
    frames_.erase(it);
    return true;
  }

  // Evict every frame with index <= `frame` that is NOT `keep`.  Returns
  // how many were evicted.  Render calls this at each slot: frames the
  // grid has moved past can never be shown and must not pin buffer space.
  int EvictThrough(int frame, int keep) {
    int evicted = 0;
    for (auto it = frames_.begin(); it != frames_.end();) {
      if (*it <= frame && *it != keep) {
        it = frames_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    return evicted;
  }

  std::size_t size() const { return frames_.size(); }
  bool Empty() const { return frames_.empty(); }
  int capacity() const { return capacity_; }
  std::size_t high_water() const { return high_water_; }
  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  int capacity_;
  std::deque<int> frames_;
  std::size_t high_water_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t overflow_drops_ = 0;
};

}  // namespace media
}  // namespace ilat

#endif  // ILAT_SRC_MEDIA_BUFFER_H_
