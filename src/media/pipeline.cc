#include "src/media/pipeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/profiler.h"

namespace ilat {
namespace media {

namespace {

// Dedicated PRNG stream index under the scenario seed (workload-side
// draws; fault draws use the injector's plan-salted derivation).
constexpr std::uint64_t kDecodeStream = 700;

}  // namespace

std::vector<FrameRecord> PipelineResult::RenderedFrames() const {
  std::vector<FrameRecord> out;
  out.reserve(slots.size());
  for (const SlotRecord& s : slots) {
    if (s.rendered) {
      out.push_back(FrameRecord{s.slot, s.completed});
    }
  }
  return out;
}

MediaPipeline::MediaPipeline(OsProfile profile, MediaParams params,
                             PipelineOptions opts)
    : params_(params),
      opts_(opts),
      system_(std::make_unique<SystemUnderTest>(std::move(profile), opts.seed)),
      buffer_(params.buffer_frames) {
  obs::Tracer& tracer = sim().tracer();
  if (opts_.collect_trace) {
    trace_sink_ = std::make_unique<obs::TraceSink>(opts_.trace_event_capacity);
    tracer.AttachSink(trace_sink_.get());
  }

  media_track_ = tracer.RegisterTrack("media");
  // Registered eagerly so the metrics exist, and compare across campaign
  // cells, even at zero.
  obs::MetricsRegistry& metrics = tracer.metrics();
  m_decoded_ = metrics.GetCounter("media.frames.decoded");
  m_rendered_ = metrics.GetCounter("media.frames.rendered");
  m_underruns_ = metrics.GetCounter("media.underruns");
  m_misses_ = metrics.GetCounter("media.deadline_misses");
  m_drop_overflow_ = metrics.GetCounter("media.dropped.overflow");
  m_drop_late_ = metrics.GetCounter("media.dropped.late");
  m_evicted_ = metrics.GetCounter("media.evicted");
  m_buffer_depth_ = metrics.GetGauge("media.buffer.depth");
  m_phase_error_ms_ = metrics.GetHistogram("media.phase_error_ms");
  m_latency_ms_ = metrics.GetHistogram("media.latency_ms");

  decode_ = std::make_unique<DecodeThread>(this, DeriveSeed(opts_.seed, kDecodeStream));
  phase_ = std::make_unique<PhaseAdjustThread>(this, &sim().queue());
  render_ = std::make_unique<RenderThread>(this, &sim().queue());
  phase_->queue().EnableTracing(&tracer, "media-phase");
  render_->queue().EnableTracing(&tracer, "media-render");

  if (opts_.faults.Any()) {
    injector_ = std::make_unique<fault::FaultInjector>(opts_.faults, opts_.seed,
                                                       opts_.fault_attempt);
    injector_->Attach(&sim().queue(), &tracer);
    sim().disk().set_fault_policy(injector_.get());
    injector_->InstallStorm(&sim().queue(), &sim().scheduler());
    // The inter-stage notifications are ordinary fault-eligible messages:
    // mq.* plans drop/duplicate/reorder them with no media-specific code.
    phase_->queue().SetFaultPolicy(injector_.get());
    render_->queue().SetFaultPolicy(injector_.get());
  }

  adjusted_seen_.assign(static_cast<std::size_t>(params_.frames), 0);
  sim().scheduler().AddThread(decode_.get());
  sim().scheduler().AddThread(phase_.get());
  sim().scheduler().AddThread(render_.get());
}

MediaPipeline::~MediaPipeline() {
  if (trace_sink_ != nullptr) {
    sim().tracer().DetachSink();
  }
}

void MediaPipeline::UpdateBufferDepth() {
  m_buffer_depth_->Set(static_cast<double>(buffer_.size()));
}

void MediaPipeline::OnFrameDecoded(int frame) {
  ++counts_.decoded;
  m_decoded_->Increment();
  if (!buffer_.Push(frame)) {
    // A live source keeps producing: with the buffer full the frame has
    // nowhere to go.  The slot it would have filled will underrun.
    m_drop_overflow_->Increment();
    sim().tracer().Instant(media_track_, "overflow-drop", "media", sim().now(),
                           "frame", static_cast<double>(frame));
    return;
  }
  UpdateBufferDepth();
  Message m;
  m.type = MessageType::kCommand;
  m.param = frame;
  phase_->queue().Post(m);
}

void MediaPipeline::OnDecodeDone() {
  decode_done_ = true;
  if (!render_started_) {
    // Every ready notification was lost before pre-roll (a pathological
    // fault plan).  Start the grid anyway so the remaining slots underrun
    // deterministically instead of wedging the run at the time cap.
    StartRender(sim().now() + params_.period());
  }
}

void MediaPipeline::OnFrameAdjusted(int frame) {
  if (adjusted_seen_[static_cast<std::size_t>(frame)] != 0) {
    return;  // duplicated notification (mq.dup_rate); already decided
  }
  adjusted_seen_[static_cast<std::size_t>(frame)] = 1;
  ++frames_adjusted_;
  const Cycles now = sim().now();

  // Phase error: drift of this frame's ready time off the period grid
  // anchored at the first ready frame.
  if (!any_ready_) {
    any_ready_ = true;
    first_ready_frame_ = frame;
    first_ready_at_ = now;
  }
  const Cycles ideal = first_ready_at_ +
                       static_cast<Cycles>(frame - first_ready_frame_) * params_.period();
  const double err_ms = std::abs(CyclesToMilliseconds(now) - CyclesToMilliseconds(ideal));
  m_phase_error_ms_->Record(err_ms);

  if (!render_started_ && frames_adjusted_ >= params_.preroll()) {
    StartRender(now);
  }
  if (render_started_) {
    const Cycles slot = render_origin_ + static_cast<Cycles>(frame) * params_.period();
    if (now > slot) {
      // The grid has already passed this frame's slot: showing it would
      // only be wrong twice.  Drop it and free its buffer space.
      ++counts_.dropped_late;
      m_drop_late_->Increment();
      if (buffer_.Erase(frame)) {
        UpdateBufferDepth();
      }
      sim().tracer().Instant(media_track_, "late-drop", "media", now, "frame",
                             static_cast<double>(frame));
      return;
    }
  }
  // Early frames are delayed, not shown early: the notification parks in
  // the render queue and the frame in the buffer until slot time.
  Message m;
  m.type = MessageType::kCommand;
  m.param = frame;
  render_->queue().Post(m);
}

void MediaPipeline::StartRender(Cycles origin) {
  render_started_ = true;
  render_origin_ = origin;
  render_->Start(origin);
  sim().tracer().Instant(media_track_, "render-start", "media", sim().now(),
                         "origin_s", CyclesToSeconds(origin));
}

void MediaPipeline::EvictStale(int before_frame) {
  const int evicted = buffer_.EvictThrough(before_frame - 1, -1);
  if (evicted > 0) {
    counts_.evicted += static_cast<std::uint64_t>(evicted);
    m_evicted_->Increment(static_cast<std::uint64_t>(evicted));
    UpdateBufferDepth();
  }
}

bool MediaPipeline::TakeFrame(int frame) {
  if (!buffer_.Erase(frame)) {
    return false;
  }
  UpdateBufferDepth();
  return true;
}

void MediaPipeline::OnSlotUnderrun(int frame, Cycles slot) {
  ++counts_.underruns;
  m_underruns_->Increment();
  slots_.push_back(SlotRecord{frame, slot, 0, false, false});
  sim().tracer().Instant(media_track_, "underrun", "media", sim().now(), "slot",
                         static_cast<double>(frame));
}

void MediaPipeline::OnFrameRendered(int frame, Cycles slot, Cycles completed) {
  ++counts_.rendered;
  m_rendered_->Increment();
  const Cycles deadline = slot + params_.period();
  const bool missed = completed > deadline;
  if (missed) {
    ++counts_.deadline_misses;
    m_misses_->Increment();
  }
  m_latency_ms_->Record(CyclesToMilliseconds(completed - slot));
  last_done_at_ = std::max(last_done_at_, completed);
  slots_.push_back(SlotRecord{frame, slot, completed, true, missed});
  sim().tracer().CompleteSpan(media_track_, "frame", "media", slot, completed - slot,
                              "frame", static_cast<double>(frame));
}

void MediaPipeline::OnRenderDone() { render_done_ = true; }

PipelineResult MediaPipeline::Run() {
  system_->Boot();
  counters_at_start_ = sim().counters().Snapshot();
  const Cycles step = MillisecondsToCycles(100.0);
  bool cancelled = false;
  while (!render_done_ && sim().now() < opts_.max_run) {
    // Watchdog / shutdown cancellation, sampled only at slice boundaries
    // (see SessionOptions::cancel for the contract).
    if (opts_.cancel != nullptr && opts_.cancel->load(std::memory_order_relaxed)) {
      cancelled = true;
      break;
    }
    sim().RunFor(step);
  }
  if (!cancelled) {
    // Short drain so in-flight stale work and trace spans settle.
    sim().RunFor(MillisecondsToCycles(200.0));
  }

  PipelineResult result;
  result.slots = std::move(slots_);
  result.origin = render_origin_;
  result.last_done_at = last_done_at_;
  result.run_end = sim().now();
  result.finished = render_done_;
  result.counters = sim().counters().Snapshot() - counters_at_start_;

  counts_.dropped_overflow = buffer_.overflow_drops();
  counts_.buffer_high_water = buffer_.high_water();
  result.counts = counts_;

  sim().scheduler().FlushTraceSpans();
  result.fault = BuildFaultReport();
  if (!result.finished) {
    result.fault.degraded = true;
    result.fault.notes.push_back("render did not reach the end of the stream");
  }

  obs::Tracer& tracer = sim().tracer();
  tracer.metrics().GetGauge("session.run_end_s")->Set(CyclesToSeconds(result.run_end));
  if (result.fault.enabled) {
    tracer.metrics().GetGauge("session.degraded")->Set(result.fault.degraded ? 1.0 : 0.0);
  }
  {
    PROF_SCOPE(kMetrics);
    result.metrics = tracer.metrics().Snapshot();
    result.metrics_json = tracer.metrics().ToJson();
  }
  if (trace_sink_ != nullptr) {
    PROF_SCOPE(kTraceTake);
    result.trace_data = std::make_shared<obs::TraceData>(tracer.TakeData());
  }
  return result;
}

fault::FaultReport MediaPipeline::BuildFaultReport() {
  fault::FaultReport rep;
  if (injector_ != nullptr) {
    rep = injector_->report();
  }
  rep.enabled = opts_.faults.Any();
  const Disk& disk = sim().disk();
  rep.io_failed = disk.failed_requests();
  rep.disk_retries = disk.retried_attempts();
  rep.disk_permanent = rep.disk_permanent || disk.permanently_failed();

  if (!rep.enabled) {
    return rep;
  }
  if (rep.disk_permanent) {
    rep.degraded = true;
    rep.notes.push_back("disk failed permanently mid-stream");
  }
  if (rep.io_failed > 0) {
    rep.degraded = true;
    rep.notes.push_back("frames decoded from failed disk reads (io_failed=" +
                        std::to_string(rep.io_failed) + ")");
  }
  if (counts_.underruns > 0) {
    rep.degraded = true;
    rep.notes.push_back(std::to_string(counts_.underruns) +
                        " render slot(s) underran");
  } else if (counts_.dropped_late + counts_.dropped_overflow > 0) {
    rep.notes.push_back("dropped frames absorbed by the jitter buffer");
  }
  return rep;
}

}  // namespace media
}  // namespace ilat
