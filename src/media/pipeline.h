// MediaPipeline: the staged decode -> buffer -> phase-adjust -> render
// media player, as a scenario on the simulated system.
//
// The seed MediaPlayerApp decodes and renders inside one timer handler, so
// the only possible failure is a late frame.  Real players are staged: a
// decode thread reads compressed frames from disk at the source rate and
// fills a bounded jitter buffer; a phase-adjust stage re-aligns decoded
// frames with the presentation grid, dropping the ones that can no longer
// make their slot; and a render thread with a hard per-frame deadline
// shows one frame per period -- or *underruns* when its slot comes up
// empty.  The stages are separate SimThreads communicating through the
// existing MessageQueue machinery, so disk stalls, interrupt storms, and
// `mq.*` fault plans surface as underruns with no media-specific fault
// code.  Latency here is *missed display updates*, the quantity the OSDI
// paper explicitly could not measure (see docs/MEDIA.md).

#ifndef ILAT_SRC_MEDIA_PIPELINE_H_
#define ILAT_SRC_MEDIA_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/media_player.h"  // FrameRecord, the deadline-analysis unit
#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/fault/report.h"
#include "src/media/buffer.h"
#include "src/media/decode.h"
#include "src/media/params.h"
#include "src/media/phase.h"
#include "src/media/render.h"
#include "src/obs/trace.h"
#include "src/os/system.h"

namespace ilat {
namespace media {

struct PipelineOptions {
  std::uint64_t seed = 1;
  bool collect_trace = false;
  std::size_t trace_event_capacity = obs::TraceSink::kDefaultCapacity;
  // Deterministic fault injection; an empty plan injects nothing.
  fault::FaultPlan faults;
  int fault_attempt = 0;
  // Safety cap on simulated time.
  Cycles max_run = SecondsToCycles(3'600.0);
  // Cooperative cancellation (campaign watchdog / graceful shutdown):
  // when non-null and set, Run stops at its next 100-sim-ms slice
  // boundary and skips the drain.  The caller discards the result.
  const std::atomic<bool>* cancel = nullptr;
};

// Pipeline-level occurrence counts (also mirrored into MetricsRegistry
// counters under the "media." prefix).
struct PipelineCounts {
  std::uint64_t decoded = 0;          // frames that finished decode
  std::uint64_t rendered = 0;         // frames shown in their slot
  std::uint64_t underruns = 0;        // render slots with nothing to show
  std::uint64_t deadline_misses = 0;  // rendered frames finishing past slot+period
  std::uint64_t dropped_overflow = 0; // decode output lost to a full buffer
  std::uint64_t dropped_late = 0;     // phase-adjust drops (missed their slot)
  std::uint64_t evicted = 0;          // buffered frames the grid moved past
  std::uint64_t buffer_high_water = 0;
};

// One render slot on the presentation grid.
struct SlotRecord {
  int frame = 0;        // frame index == slot index
  Cycles slot = 0;      // slot boundary (origin + frame * period)
  Cycles completed = 0; // render finished (0 when not rendered)
  bool rendered = false;
  bool missed = false;  // rendered, but past slot + period
};

struct PipelineResult {
  std::vector<SlotRecord> slots;  // one per slot, in grid order

  Cycles origin = 0;        // first render slot boundary
  Cycles last_done_at = 0;  // last render completion
  Cycles run_end = 0;
  bool finished = false;    // render reached the end of the stream

  PipelineCounts counts;
  HwCounts counters;
  obs::MetricsSnapshot metrics;
  std::string metrics_json;
  std::shared_ptr<const obs::TraceData> trace_data;
  fault::FaultReport fault;

  // The rendered slots as (scheduled, completed) pairs -- the shape
  // AnalyzeDeadlines consumes.
  std::vector<FrameRecord> RenderedFrames() const;
};

class MediaPipeline {
 public:
  MediaPipeline(OsProfile profile, MediaParams params, PipelineOptions opts = {});
  ~MediaPipeline();

  MediaPipeline(const MediaPipeline&) = delete;
  MediaPipeline& operator=(const MediaPipeline&) = delete;

  // Run the stream to completion (or the safety cap) and extract results.
  PipelineResult Run();

  // ---- internal API used by the stage threads ----------------------------
  Simulation& sim() { return system_->sim(); }
  SystemUnderTest& system() { return *system_; }
  const MediaParams& params() const { return params_; }
  const OsProfile& profile() const { return system_->profile(); }
  JitterBuffer& buffer() { return buffer_; }
  std::uint32_t media_track() const { return media_track_; }

  // Decode -> buffer.  Pushes the decoded frame and notifies the
  // phase-adjust stage; a full buffer drops the frame instead.
  void OnFrameDecoded(int frame);
  void OnDecodeDone();

  // Phase-adjust decision for one decoded frame: record its phase error
  // against the ready-time grid, start the render grid once pre-roll is
  // met, and either forward the frame to render or drop it as late.
  void OnFrameAdjusted(int frame);

  // Render bookkeeping (all called at slot boundaries / completions).
  void EvictStale(int before_frame);
  // Removes `frame` from the buffer for display; false if it is gone
  // (overflow-dropped, late-dropped, or evicted) -> underrun.
  bool TakeFrame(int frame);
  void OnSlotUnderrun(int frame, Cycles slot);
  void OnFrameRendered(int frame, Cycles slot, Cycles completed);
  void OnRenderDone();

 private:
  void StartRender(Cycles origin);
  void UpdateBufferDepth();
  fault::FaultReport BuildFaultReport();

  MediaParams params_;
  PipelineOptions opts_;
  std::unique_ptr<SystemUnderTest> system_;
  // Declared after system_ so it is destroyed first (its storm device
  // unschedules itself from the simulation's event queue).
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<obs::TraceSink> trace_sink_;

  JitterBuffer buffer_;
  std::unique_ptr<DecodeThread> decode_;
  std::unique_ptr<PhaseAdjustThread> phase_;
  std::unique_ptr<RenderThread> render_;

  std::vector<char> adjusted_seen_;  // dedups duplicated notifications
  int frames_adjusted_ = 0;     // toward pre-roll
  bool render_started_ = false;
  Cycles render_origin_ = 0;    // slot-0 boundary once render_started_
  bool decode_done_ = false;
  bool render_done_ = false;
  bool any_ready_ = false;
  int first_ready_frame_ = 0;
  Cycles first_ready_at_ = 0;   // anchor of the ready-time grid
  Cycles last_done_at_ = 0;
  PipelineCounts counts_;
  std::vector<SlotRecord> slots_;
  HwCounts counters_at_start_;

  std::uint32_t media_track_ = 0;
  obs::Counter* m_decoded_ = nullptr;
  obs::Counter* m_rendered_ = nullptr;
  obs::Counter* m_underruns_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_drop_overflow_ = nullptr;
  obs::Counter* m_drop_late_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Gauge* m_buffer_depth_ = nullptr;
  obs::LogHistogram* m_phase_error_ms_ = nullptr;
  obs::LogHistogram* m_latency_ms_ = nullptr;
};

}  // namespace media
}  // namespace ilat

#endif  // ILAT_SRC_MEDIA_PIPELINE_H_
