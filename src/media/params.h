// MediaParams: sizing and pacing knobs for the staged media pipeline
// (src/media/pipeline.h).
//
// Every knob is a *workload* parameter -- it shapes the system under test,
// not the fault plan -- so campaigns sweep the headline ones via
// `sweep.params.media_fps` / `media_buffer_frames` / `media_frames` and
// the CLI sets them via --media-fps/--media-buffer/--frames.

#ifndef ILAT_SRC_MEDIA_PARAMS_H_
#define ILAT_SRC_MEDIA_PARAMS_H_

#include <string>

#include "src/sim/time.h"

namespace ilat {
namespace media {

struct MediaParams {
  // Presentation rate: one render slot every 1/fps seconds.
  double fps = 30.0;
  // Jitter-buffer capacity in decoded frames.  Decode output that finds
  // the buffer full is dropped (the source keeps producing regardless).
  int buffer_frames = 8;
  // Stream length in frames.
  int frames = 300;
  // Frames buffered before the render grid starts (bounded by
  // buffer_frames and by the stream length).
  int preroll_frames = 3;
  // Disk blocks fetched per frame (compressed frame read).
  int frame_blocks = 4;
  // Decode cost varies per frame (I/P frame mix), in kilo-instructions.
  double decode_kinstr_min = 500.0;
  double decode_kinstr_max = 1'400.0;
  // Phase-adjust bookkeeping cost per frame.
  double phase_kinstr = 40.0;
  // Blit to screen.
  double render_kinstr = 450.0;

  Cycles period() const { return SecondsToCycles(1.0 / fps); }
  // Effective pre-roll: never more than the buffer holds or the stream has.
  int preroll() const;
};

// Apply one `key = value` pair (key without any prefix, e.g. "media_fps")
// to *params.  Returns false and sets *error for unknown keys or
// malformed/out-of-range values.  Shared by the campaign spec parser
// (`params.*` / `sweep.params.*` keys), the CLI, and tests.
bool SetMediaParamKey(const std::string& key, const std::string& value,
                      MediaParams* params, std::string* error);

// True if `key` names a media parameter SetMediaParamKey accepts.
bool KnownMediaParamKey(const std::string& key);

}  // namespace media
}  // namespace ilat

#endif  // ILAT_SRC_MEDIA_PARAMS_H_
