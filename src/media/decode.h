// DecodeThread: the pipeline's source stage.
//
// Paces itself on the source grid (frame i becomes available at
// origin + i * period, with catch-up after stalls), reads each compressed
// frame from the simulated disk, burns the decode CPU, and hands the
// frame to the jitter buffer.  A disk stall here shows up downstream as a
// drained buffer and render underruns; the stage itself never blocks on a
// full buffer -- like a live source, its output is simply dropped.

#ifndef ILAT_SRC_MEDIA_DECODE_H_
#define ILAT_SRC_MEDIA_DECODE_H_

#include "src/sim/random.h"
#include "src/sim/thread.h"

namespace ilat {
namespace media {

class MediaPipeline;

class DecodeThread : public SimThread {
 public:
  // Below the phase/render stages: presentation beats production.
  static constexpr int kPriority = 4;

  DecodeThread(MediaPipeline* pipeline, std::uint64_t seed);

  ThreadAction NextAction() override;

  int frames_decoded() const { return next_frame_; }

 private:
  enum class Phase {
    kPace,       // wait for the source grid slot of the next frame
    kAwaitPace,  // parked on the pacing timer
    kRead,       // issue the compressed-frame disk read
    kAwaitDisk,  // parked on the completion interrupt
    kDecode,     // read done; burn the decode CPU
    kDecodeRun,  // decode CPU in flight
    kPush,       // hand the frame to the jitter buffer
    kDone,
  };

  MediaPipeline* pipeline_;
  Random rng_;
  Phase phase_ = Phase::kPace;
  bool started_ = false;
  Cycles origin_ = 0;  // source grid anchor (first NextAction)
  int next_frame_ = 0;
};

}  // namespace media
}  // namespace ilat

#endif  // ILAT_SRC_MEDIA_DECODE_H_
