// Per-thread message queue, Win32 style.
//
// Input interrupts, timers, and the window system post messages here; the
// owning application thread drains them through its message pump.  The
// queue exposes an empty/non-empty transition observer because queue state
// is one of the three inputs to the paper's think-time/wait-time state
// machine (Fig. 2).

#ifndef ILAT_SRC_SIM_MESSAGE_QUEUE_H_
#define ILAT_SRC_SIM_MESSAGE_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/message.h"

namespace ilat {

// What the fault layer may do to one posted message.
enum class MessageFaultAction {
  kNone,
  kDrop,       // stamp the message but never enqueue it
  kDuplicate,  // enqueue a second copy with a fresh seq
  kReorder,    // swap the new message with the one queued just before it
};

// Implemented by fault::FaultInjector; declared here so the sim layer does
// not depend on src/fault/.  Consulted only for fault-eligible messages
// (see MessageQueue::FaultEligible) -- serialisation messages the drivers
// and the Windows 95 mouse busy-wait hang on are never offered.
class MessageFaultPolicy {
 public:
  virtual ~MessageFaultPolicy() = default;
  virtual MessageFaultAction OnPost(const Message& m) = 0;
};

class MessageQueue {
 public:
  using WakeFn = std::function<void()>;
  // Observer of empty <-> non-empty transitions: (time, now_non_empty).
  using TransitionFn = std::function<void(Cycles, bool)>;

  explicit MessageQueue(EventQueue* clock) : clock_(clock) {}

  // Called when a message arrives while the owner may be blocked.
  void SetWakeCallback(WakeFn fn) { wake_ = std::move(fn); }

  void SetTransitionObserver(TransitionFn fn) { on_transition_ = std::move(fn); }

  // Attach tracing: posts become instants, pops become queue-wait spans,
  // and depth is sampled on every change, all on a "mq:<owner>" track.
  void EnableTracing(obs::Tracer* tracer, std::string_view owner);

  // Append a message; stamps enqueue_time and seq, fires the wake callback.
  // Returns the stamped message (for loggers).
  Message Post(Message m);

  // Remove the front message.  Returns false if empty.
  bool TryPop(Message* out);

  // Look at the front message without removing it.
  bool PeekFront(Message* out) const;

  bool Empty() const { return messages_.empty(); }
  std::size_t Size() const { return messages_.size(); }

  // True if any pending message has the given type.
  bool ContainsType(MessageType t) const;

  // Total messages ever posted.
  std::uint64_t posted_count() const { return posted_; }

  void SetFaultPolicy(MessageFaultPolicy* policy) { fault_policy_ = policy; }

  std::uint64_t dropped_count() const { return dropped_; }
  std::uint64_t duplicated_count() const { return duplicated_; }
  std::uint64_t reordered_count() const { return reordered_; }

  // True for messages the fault layer may touch: user input plus timers
  // and paints.  WM_QUEUESYNC / WM_QUIT / socket delivery are exempt (the
  // drivers serialise on them) and so is mouse-up (the Windows 95 mouse
  // busy-wait spins until it arrives).
  static bool FaultEligible(const Message& m);

 private:
  // push_back + posted/metrics/trace bookkeeping shared by Post and the
  // duplicate path.
  void Enqueue(const Message& m);

  EventQueue* clock_;
  std::deque<Message> messages_;
  WakeFn wake_;
  TransitionFn on_transition_;
  MessageFaultPolicy* fault_policy_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t posted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;

  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Counter* m_posted_ = nullptr;
  obs::Gauge* m_depth_ = nullptr;
  obs::LogHistogram* m_wait_ms_ = nullptr;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_MESSAGE_QUEUE_H_
