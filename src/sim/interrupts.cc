#include "src/sim/interrupts.h"

#include <cstdint>
#include <utility>

namespace ilat {

PeriodicDevice::PeriodicDevice(EventQueue* queue, Scheduler* scheduler, Cycles period,
                               Work handler_work, std::function<void()> on_tick, Cycles phase)
    : queue_(queue),
      scheduler_(scheduler),
      period_(period),
      handler_work_(handler_work),
      on_tick_(std::move(on_tick)),
      phase_(phase) {}

PeriodicDevice::~PeriodicDevice() { Stop(); }

void PeriodicDevice::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  // First tick lands on the next period boundary (plus phase).
  const Cycles now = queue_->now();
  Cycles first = ((now - phase_) / period_ + 1) * period_ + phase_;
  if (first <= now) {
    first += period_;
  }
  pending_ = queue_->ScheduleAt(first, [this] { ScheduleNext(); });
}

void PeriodicDevice::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  queue_->Cancel(pending_);
  pending_ = EventQueue::kNoEvent;
}

void PeriodicDevice::RunWindow(Cycles start, Cycles duration) {
  if (duration <= 0) {
    return;
  }
  const Cycles now = queue_->now();
  const Cycles begin = start > now ? start : now;
  if (begin == now) {
    Start();
  } else {
    queue_->ScheduleAt(begin, [this] { Start(); });
  }
  queue_->ScheduleAt(begin + duration, [this] { Stop(); });
}

void PeriodicDevice::EnableTracing(obs::Tracer* tracer, std::string_view name) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  trace_name_ = std::string(name);
  track_ = tracer_->RegisterTrack("dev:" + trace_name_);
  m_ticks_ = tracer_->metrics().GetCounter("sim.device_ticks");
}

void PeriodicDevice::ScheduleNext() {
  if (!running_) {
    return;
  }
  ++ticks_;
  if (m_ticks_ != nullptr) {
    m_ticks_->Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(track_, trace_name_, "device", queue_->now());
  }
  scheduler_->QueueInterrupt(handler_work_, on_tick_);
  pending_ = queue_->ScheduleAfter(period_, [this] { ScheduleNext(); });
}

}  // namespace ilat
