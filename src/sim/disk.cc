#include "src/sim/disk.h"

#include <cmath>
#include <utility>

namespace ilat {

Disk::Disk(EventQueue* queue, Scheduler* scheduler, Random* random, DiskParams params,
           Work isr_work, obs::Tracer* tracer)
    : queue_(queue),
      scheduler_(scheduler),
      random_(random),
      params_(params),
      isr_work_(isr_work),
      tracer_(tracer) {
  if (tracer_ != nullptr) {
    disk_track_ = tracer_->RegisterTrack("disk");
    auto& m = tracer_->metrics();
    m_reads_ = m.GetCounter("disk.reads");
    m_writes_ = m.GetCounter("disk.writes");
    m_blocks_ = m.GetCounter("disk.blocks");
    m_queue_depth_ = m.GetGauge("disk.queue_depth");
    m_queue_ms_ = m.GetHistogram("disk.queue_ms");
    m_service_ms_ = m.GetHistogram("disk.service_ms");
  }
}

void Disk::TraceQueueDepth() {
  const double depth = static_cast<double>(pending_.size()) + (active_ ? 1.0 : 0.0);
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(depth);
  }
  if (tracer_ != nullptr) {
    tracer_->CounterValue(disk_track_, "disk queue", queue_->now(), depth);
  }
}

void Disk::SubmitRead(std::int64_t block, int nblocks, IoCallback done) {
  Submit(Request{block, nblocks, /*is_write=*/false, std::move(done)});
}

void Disk::SubmitWrite(std::int64_t block, int nblocks, IoCallback done) {
  Submit(Request{block, nblocks, /*is_write=*/true, std::move(done)});
}

void Disk::Submit(Request r) {
  r.submitted = queue_->now();
  if (m_reads_ != nullptr) {
    (r.is_write ? m_writes_ : m_reads_)->Increment();
  }
  pending_.push_back(std::move(r));
  TraceQueueDepth();
  if (!active_) {
    StartNext();
  }
}

Cycles Disk::ServiceTime(const Request& r) {
  // Sequential if the request starts where the head ended up.
  const bool sequential = (r.block == head_position_);
  double seek_ms = sequential ? params_.track_to_track_ms : params_.avg_seek_ms;
  seek_ms *= 1.0 + params_.seek_jitter * (2.0 * random_->NextDouble() - 1.0);

  const double rotation_ms = sequential ? 0.0 : (60'000.0 / params_.rotational_rpm) / 2.0;
  const double bytes = static_cast<double>(r.nblocks) * params_.block_size_bytes;
  const double transfer_ms = bytes / (params_.transfer_mb_per_s * 1'000'000.0) * 1000.0;
  const double total_ms = params_.controller_overhead_ms + seek_ms + rotation_ms + transfer_ms;
  return MillisecondsToCycles(total_ms);
}

void Disk::Complete(Request r, IoStatus status) {
  if (status == IoStatus::kOk) {
    ++completed_;
    blocks_ += static_cast<std::uint64_t>(r.nblocks);
    if (m_blocks_ != nullptr) {
      m_blocks_->Increment(static_cast<std::uint64_t>(r.nblocks));
    }
  } else {
    ++failed_;
  }
  // Completion interrupt: the handler runs as stolen time, then delivers
  // the completion callback.
  scheduler_->QueueInterrupt(isr_work_,
                             [done = std::move(r.done), status] { done(status); });
  active_ = false;
  TraceQueueDepth();
  StartNext();
}

void Disk::StartNext() {
  if (pending_.empty()) {
    active_ = false;
    return;
  }
  active_ = true;
  // Move the front request out; it completes after its service time.
  Request r = std::move(pending_.front());
  pending_.pop_front();

  DiskFaultDecision fault;
  if (fault_policy_ != nullptr && !permanently_failed_) {
    fault = fault_policy_->OnDiskAttempt(r.block, r.nblocks, r.is_write, r.attempt);
    if (fault.kind == DiskFaultKind::kPermanent) {
      permanently_failed_ = true;
    }
  }

  if (permanently_failed_) {
    // The dead controller rejects the request after its fixed overhead --
    // the callback still fires, so waiters unblock with kFailed.
    const Cycles service = MillisecondsToCycles(params_.controller_overhead_ms);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->CompleteSpan(disk_track_, "rejected", "disk", queue_->now(), service, "block",
                            static_cast<double>(r.block));
    }
    queue_->ScheduleAfter(service, [this, r = std::move(r)]() mutable {
      Complete(std::move(r), IoStatus::kFailed);
    });
    return;
  }

  const Cycles service = ServiceTime(r) + fault.stall;
  service_cycles_ += service;
  head_position_ = r.block + r.nblocks;

  const Cycles start = queue_->now();
  const Cycles waited = start - r.submitted;
  if (m_queue_ms_ != nullptr) {
    m_queue_ms_->Record(CyclesToMilliseconds(waited));
    m_service_ms_->Record(CyclesToMilliseconds(service));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    if (waited > 0) {
      tracer_->CompleteSpan(disk_track_, "queued", "disk", r.submitted, waited, "block",
                            static_cast<double>(r.block));
    }
    // Service time is known up front, so the span can be emitted at start.
    tracer_->CompleteSpan(disk_track_, r.is_write ? "write" : "read", "disk", start, service,
                          "block", static_cast<double>(r.block), "nblocks",
                          static_cast<double>(r.nblocks));
  }

  if (fault.kind == DiskFaultKind::kTransient && r.attempt < params_.max_retries) {
    // Failed attempt: back off (controller_overhead * 2^attempt) and retry
    // at the head of the queue, preserving request order.
    const Cycles backoff = MillisecondsToCycles(params_.controller_overhead_ms) << r.attempt;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->CompleteSpan(disk_track_, "retry_backoff", "disk", start + service, backoff,
                            "attempt", static_cast<double>(r.attempt));
    }
    queue_->ScheduleAfter(service + backoff, [this, r = std::move(r)]() mutable {
      ++retries_;
      ++r.attempt;
      pending_.push_front(std::move(r));
      active_ = false;
      TraceQueueDepth();
      StartNext();
    });
    return;
  }

  const bool attempt_failed = (fault.kind == DiskFaultKind::kTransient);
  queue_->ScheduleAfter(service, [this, r = std::move(r), attempt_failed]() mutable {
    Complete(std::move(r), attempt_failed ? IoStatus::kFailed : IoStatus::kOk);
  });
}

}  // namespace ilat
