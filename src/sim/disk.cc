#include "src/sim/disk.h"

#include <cmath>
#include <utility>

namespace ilat {

Disk::Disk(EventQueue* queue, Scheduler* scheduler, Random* random, DiskParams params,
           Work isr_work)
    : queue_(queue),
      scheduler_(scheduler),
      random_(random),
      params_(params),
      isr_work_(isr_work) {}

void Disk::SubmitRead(std::int64_t block, int nblocks, std::function<void()> done) {
  Submit(Request{block, nblocks, /*is_write=*/false, std::move(done)});
}

void Disk::SubmitWrite(std::int64_t block, int nblocks, std::function<void()> done) {
  Submit(Request{block, nblocks, /*is_write=*/true, std::move(done)});
}

void Disk::Submit(Request r) {
  pending_.push_back(std::move(r));
  if (!active_) {
    StartNext();
  }
}

Cycles Disk::ServiceTime(const Request& r) {
  // Sequential if the request starts where the head ended up.
  const bool sequential = (r.block == head_position_);
  double seek_ms = sequential ? params_.track_to_track_ms : params_.avg_seek_ms;
  seek_ms *= 1.0 + params_.seek_jitter * (2.0 * random_->NextDouble() - 1.0);

  const double rotation_ms = sequential ? 0.0 : (60'000.0 / params_.rotational_rpm) / 2.0;
  const double bytes = static_cast<double>(r.nblocks) * params_.block_size_bytes;
  const double transfer_ms = bytes / (params_.transfer_mb_per_s * 1'000'000.0) * 1000.0;
  const double total_ms = params_.controller_overhead_ms + seek_ms + rotation_ms + transfer_ms;
  return MillisecondsToCycles(total_ms);
}

void Disk::StartNext() {
  if (pending_.empty()) {
    active_ = false;
    return;
  }
  active_ = true;
  // Move the front request out; it completes after its service time.
  Request r = std::move(pending_.front());
  pending_.pop_front();
  const Cycles service = ServiceTime(r);
  service_cycles_ += service;
  head_position_ = r.block + r.nblocks;

  queue_->ScheduleAfter(service, [this, r = std::move(r)]() mutable {
    ++completed_;
    blocks_ += static_cast<std::uint64_t>(r.nblocks);
    // Completion interrupt: the handler runs as stolen time, then delivers
    // the completion callback.
    scheduler_->QueueInterrupt(isr_work_, std::move(r.done));
    StartNext();
  });
}

}  // namespace ilat
