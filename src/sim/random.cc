#include "src/sim/random.h"

#include <cmath>

namespace ilat {

Random::Random(std::uint64_t seed) { Seed(seed); }

void Random::Seed(std::uint64_t seed) {
  // Zero is a fixed point of xorshift; nudge it.
  state_ = seed != 0 ? seed : 0x9E3779B97F4A7C15ull;
  has_cached_gaussian_ = false;
  cached_gaussian_ = 0.0;
}

std::uint64_t Random::NextU64() {
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

double Random::NextDouble() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Random::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::int64_t Random::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextU64() % span);
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller.  Guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Random::Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

double Random::Exponential(double mean) {
  double u = NextDouble();
  if (u < 1e-300) {
    u = 1e-300;
  }
  return -mean * std::log(u);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

std::uint64_t DeriveSeed(std::uint64_t master_seed, std::uint64_t stream_index) {
  // SplitMix64 (Steele et al. 2014): advance by the golden-ratio increment
  // `stream_index + 1` times past the master seed, then finalise.  One
  // finalisation round is enough to decorrelate adjacent streams.
  std::uint64_t z = master_seed + (stream_index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  // Zero would collapse to Random's fallback constant; keep streams distinct.
  return z != 0 ? z : 1;
}

std::uint64_t DeriveSeed(std::uint64_t master_seed, std::uint64_t stream_index,
                         std::uint64_t sub_index) {
  return DeriveSeed(DeriveSeed(master_seed, stream_index), sub_index);
}

}  // namespace ilat
