// Win32-flavoured message types.
//
// The paper measures Windows systems, whose applications receive all user
// input through a per-thread message queue drained with GetMessage() /
// PeekMessage().  The simulator models the same structure.  WM_QUEUESYNC is
// the synchronisation message Microsoft Test injects after every simulated
// input event -- an artifact the paper has to identify and strip (Figs. 7,
// 11 and §5.4), so it is a first-class citizen here.

#ifndef ILAT_SRC_SIM_MESSAGE_H_
#define ILAT_SRC_SIM_MESSAGE_H_

#include <cstdint>
#include <string_view>

#include "src/sim/time.h"

namespace ilat {

enum class MessageType : int {
  kKeyDown = 0,
  kChar,
  kKeyUp,
  kMouseMove,
  kMouseDown,
  kMouseUp,
  kTimer,
  kPaint,
  kCommand,    // menu/toolbar command (open, save, page-down, ...)
  kSocket,     // network data ready (WSAAsyncSelect posts these as messages)
  kQueueSync,  // WM_QUEUESYNC injected by the scripted test driver
  kQuit,
};

std::string_view MessageTypeName(MessageType t);

struct Message {
  MessageType type = MessageType::kQuit;
  // Meaning depends on type: character code for kChar, command id for
  // kCommand, timer id for kTimer.
  int param = 0;
  // When the message entered the queue (stamped by MessageQueue::Post).
  // This is when the user starts waiting (paper §2.3).
  Cycles enqueue_time = 0;
  // Global sequence number, for correlating monitor logs with events.
  std::uint64_t seq = 0;

  // User-initiated input for latency purposes.  kQueueSync is driver
  // overhead, kTimer/kPaint are system-generated.
  bool IsUserInput() const {
    switch (type) {
      case MessageType::kKeyDown:
      case MessageType::kChar:
      case MessageType::kKeyUp:
      case MessageType::kMouseMove:
      case MessageType::kMouseDown:
      case MessageType::kMouseUp:
      case MessageType::kCommand:
        return true;
      default:
        return false;
    }
  }
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_MESSAGE_H_
