#include "src/sim/message_queue.h"

#include <utility>

namespace ilat {

void MessageQueue::EnableTracing(obs::Tracer* tracer, std::string_view owner) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  track_ = tracer_->RegisterTrack("mq:" + std::string(owner));
  auto& m = tracer_->metrics();
  m_posted_ = m.GetCounter("mq.posted");
  m_depth_ = m.GetGauge("mq.depth");
  m_wait_ms_ = m.GetHistogram("mq.wait_ms");
}

bool MessageQueue::FaultEligible(const Message& m) {
  switch (m.type) {
    case MessageType::kQueueSync:
    case MessageType::kQuit:
    case MessageType::kSocket:
    case MessageType::kMouseUp:
      return false;
    case MessageType::kTimer:
    case MessageType::kPaint:
      return true;
    default:
      return m.IsUserInput();
  }
}

void MessageQueue::Enqueue(const Message& m) {
  messages_.push_back(m);
  ++posted_;
  if (m_posted_ != nullptr) {
    m_posted_->Increment();
    m_depth_->Set(static_cast<double>(messages_.size()));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(track_, MessageTypeName(m.type), "mq", m.enqueue_time, "seq",
                     static_cast<double>(m.seq));
    tracer_->CounterValue(track_, "depth", m.enqueue_time, static_cast<double>(messages_.size()));
  }
}

Message MessageQueue::Post(Message m) {
  m.enqueue_time = clock_->now();
  m.seq = next_seq_++;

  MessageFaultAction action = MessageFaultAction::kNone;
  if (fault_policy_ != nullptr && FaultEligible(m)) {
    action = fault_policy_->OnPost(m);
  }
  if (action == MessageFaultAction::kDrop) {
    // Stamped but never enqueued: the owner is not woken, and the event
    // extractor simply sees a posted seq with no retrieval.
    ++dropped_;
    return m;
  }
  const bool was_empty = messages_.empty();
  Enqueue(m);
  if (action == MessageFaultAction::kDuplicate) {
    if (m.type == MessageType::kMouseDown) {
      // A redelivered mouse-down needs its own matching release: the
      // Windows 95 profile busy-waits every down until a mouse-up is
      // visible in the queue, so duplicating the down alone would leave
      // one copy spinning for an up that the other already consumed.
      // Synthesise the pairing up between the two downs; the real
      // (fault-exempt) up still arrives later and pairs with the
      // duplicate.
      Message up;
      up.type = MessageType::kMouseUp;
      up.param = m.param;
      up.enqueue_time = m.enqueue_time;
      up.seq = next_seq_++;
      Enqueue(up);
    }
    Message dup = m;
    dup.seq = next_seq_++;
    ++duplicated_;
    Enqueue(dup);
  } else if (action == MessageFaultAction::kReorder && messages_.size() >= 2) {
    std::swap(messages_[messages_.size() - 1], messages_[messages_.size() - 2]);
    ++reordered_;
  }
  if (was_empty && on_transition_) {
    on_transition_(clock_->now(), /*non_empty=*/true);
  }
  if (wake_) {
    wake_();
  }
  return m;
}

bool MessageQueue::TryPop(Message* out) {
  if (messages_.empty()) {
    return false;
  }
  *out = messages_.front();
  messages_.pop_front();
  const Cycles now = clock_->now();
  if (m_wait_ms_ != nullptr) {
    m_wait_ms_->Record(CyclesToMilliseconds(now - out->enqueue_time));
    m_depth_->Set(static_cast<double>(messages_.size()));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The span covers the message's time *in* the queue (post -> pop).
    tracer_->CompleteSpan(track_, MessageTypeName(out->type), "mq", out->enqueue_time,
                          now - out->enqueue_time, "seq", static_cast<double>(out->seq));
    tracer_->CounterValue(track_, "depth", now, static_cast<double>(messages_.size()));
  }
  if (messages_.empty() && on_transition_) {
    on_transition_(clock_->now(), /*non_empty=*/false);
  }
  return true;
}

bool MessageQueue::PeekFront(Message* out) const {
  if (messages_.empty()) {
    return false;
  }
  *out = messages_.front();
  return true;
}

bool MessageQueue::ContainsType(MessageType t) const {
  for (const Message& m : messages_) {
    if (m.type == t) {
      return true;
    }
  }
  return false;
}

}  // namespace ilat
