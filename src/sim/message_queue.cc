#include "src/sim/message_queue.h"

namespace ilat {

Message MessageQueue::Post(Message m) {
  m.enqueue_time = clock_->now();
  m.seq = next_seq_++;
  const bool was_empty = messages_.empty();
  messages_.push_back(m);
  ++posted_;
  if (was_empty && on_transition_) {
    on_transition_(clock_->now(), /*non_empty=*/true);
  }
  if (wake_) {
    wake_();
  }
  return m;
}

bool MessageQueue::TryPop(Message* out) {
  if (messages_.empty()) {
    return false;
  }
  *out = messages_.front();
  messages_.pop_front();
  if (messages_.empty() && on_transition_) {
    on_transition_(clock_->now(), /*non_empty=*/false);
  }
  return true;
}

bool MessageQueue::PeekFront(Message* out) const {
  if (messages_.empty()) {
    return false;
  }
  *out = messages_.front();
  return true;
}

bool MessageQueue::ContainsType(MessageType t) const {
  for (const Message& m : messages_) {
    if (m.type == t) {
      return true;
    }
  }
  return false;
}

}  // namespace ilat
