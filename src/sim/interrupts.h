// Periodic devices.
//
// The hardware clock fires every 10 ms on Windows NT (paper Fig. 3: "bursts
// of CPU activity at 10 ms intervals due to hardware clock interrupts");
// Windows 95 shows additional background activity.  Both are modelled as
// PeriodicDevice instances configured by the OS personality.

#ifndef ILAT_SRC_SIM_INTERRUPTS_H_
#define ILAT_SRC_SIM_INTERRUPTS_H_

#include <functional>
#include <string>
#include <string_view>

#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/scheduler.h"
#include "src/sim/work.h"

namespace ilat {

// Fires interrupt work every `period` cycles, starting at `phase`.
class PeriodicDevice {
 public:
  // `on_tick`, if set, runs after each tick's interrupt work completes
  // (e.g. the clock tick callback that drives scheduled timers).
  PeriodicDevice(EventQueue* queue, Scheduler* scheduler, Cycles period, Work handler_work,
                 std::function<void()> on_tick = nullptr, Cycles phase = 0);
  ~PeriodicDevice();

  PeriodicDevice(const PeriodicDevice&) = delete;
  PeriodicDevice& operator=(const PeriodicDevice&) = delete;

  void Start();
  void Stop();

  // Run only inside [start, start + duration): schedules a Start at
  // `start` (immediately if already past) and a Stop at the window's end.
  // Used by the fault layer's interrupt storms.
  void RunWindow(Cycles start, Cycles duration);

  bool running() const { return running_; }
  std::uint64_t ticks() const { return ticks_; }
  Cycles period() const { return period_; }

  // Attach tracing: each tick becomes an instant on a "dev:<name>" track.
  void EnableTracing(obs::Tracer* tracer, std::string_view name);

 private:
  void ScheduleNext();

  EventQueue* queue_;
  Scheduler* scheduler_;
  Cycles period_;
  Work handler_work_;
  std::function<void()> on_tick_;
  Cycles phase_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  EventQueue::EventId pending_ = EventQueue::kNoEvent;

  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  std::string trace_name_;
  obs::Counter* m_ticks_ = nullptr;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_INTERRUPTS_H_
