// The simulation clock and timed-event queue.
//
// EventQueue is the heart of the discrete-event simulator: it owns the
// current simulated time (the Pentium cycle counter) and a min-heap of
// scheduled callbacks.  The Scheduler advances time either by running
// thread work up to the next due event, or by jumping straight to the next
// event when the CPU would otherwise be idle.

#ifndef ILAT_SRC_SIM_EVENT_QUEUE_H_
#define ILAT_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/time.h"

namespace ilat {

// EventQueue doubles as the observability clock (obs::TraceClock) so the
// Tracer can stamp events without a simulator dependency.
class EventQueue : public obs::TraceClock {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  // Current simulated time (cycle-counter value).
  Cycles now() const { return now_; }
  Cycles TraceNow() const override { return now_; }

  // Schedule `fn` to run at absolute time `when` (>= now).  Returns an id
  // usable with Cancel().
  EventId ScheduleAt(Cycles when, Callback fn);

  // Schedule `fn` to run `delay` cycles from now.
  EventId ScheduleAfter(Cycles delay, Callback fn);

  // Cancel a pending event.  Returns false if it already fired or was
  // already cancelled.
  bool Cancel(EventId id);

  // Time of the next pending (non-cancelled) event, or kNever.
  Cycles NextEventTime() const;

  // True if no non-cancelled events are pending.
  bool Empty() const;

  // Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return heap_.size() - cancelled_.size(); }

  // Advance the clock to `t` without firing anything.  Requires that no
  // event is due at or before `t` (the Scheduler maintains this invariant),
  // and t >= now.
  void AdvanceTo(Cycles t);

  // Fire every event due at or before `t`, advancing the clock to each
  // event's timestamp in order, and finally to `t`.  Callbacks may schedule
  // further events, including ones due within the window; they fire too.
  void RunUntil(Cycles t);

  // Fire the single next event (advancing the clock to it).  Requires
  // !Empty().
  void RunNext();

  // Total number of callbacks ever fired (for stats/tests).
  std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    Cycles when;
    EventId id;
    // Heap orders by time, then by insertion id for FIFO among ties.
    bool operator>(const Entry& rhs) const {
      if (when != rhs.when) {
        return when > rhs.when;
      }
      return id > rhs.id;
    }
  };

  // Pop cancelled entries off the heap top.
  void SkimCancelled() const;

  Cycles now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;

  // Lazy-deletion heap: cancelled ids stay in the heap but are skipped.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_EVENT_QUEUE_H_
