// The simulation clock and timed-event queue.
//
// EventQueue is the heart of the discrete-event simulator: it owns the
// current simulated time (the Pentium cycle counter) and a min-heap of
// scheduled callbacks.  The Scheduler advances time either by running
// thread work up to the next due event, or by jumping straight to the next
// event when the CPU would otherwise be idle.
//
// Layout (PR 8): a flat binary heap of 24-byte plain-old-data entries
// {when, seq, slot, gen} over a slot array holding the callbacks in
// small-buffer storage (SmallCallback).  Compared to the original
// std::priority_queue<Entry> + std::function + two side hash maps:
//
//   * scheduling does no per-event heap allocation (callback captures up
//     to 64 bytes live inline in a pooled slot; slots are recycled),
//   * firing does no hash lookup (the heap entry indexes its slot
//     directly; a 32-bit generation stamp detects stale entries),
//   * Cancel is O(1): generation mismatch distinguishes fired/cancelled
//     ids, the callback is destroyed immediately (cancelled events hold
//     no capture memory), and the 24-byte tombstone left in the heap is
//     compacted away when tombstones outnumber live entries -- so
//     cancel-heavy workloads (server timeout timers) stay bounded.
//
// Determinism contract: events fire ordered by (when, insertion seq).
// The insertion sequence number increments on every successful
// ScheduleAt, exactly like the original implementation's EventId, so FIFO
// ordering among same-cycle events is preserved bit-for-bit.
//
// Invariants ("no past events", "time never goes backwards") are
// *always-on* checks that abort with a one-line message -- they used to
// be assert()s, which compile out under NDEBUG and would let a release
// build silently corrupt every latency measurement.

#ifndef ILAT_SRC_SIM_EVENT_QUEUE_H_
#define ILAT_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/small_callback.h"
#include "src/sim/time.h"

namespace ilat {

// EventQueue doubles as the observability clock (obs::TraceClock) so the
// Tracer can stamp events without a simulator dependency.
class EventQueue : public obs::TraceClock {
 public:
  using EventId = std::uint64_t;
  using Callback = SmallCallback;

  // Sentinel id never returned by ScheduleAt; Cancel(kNoEvent) is false.
  static constexpr EventId kNoEvent = 0;

  // Current simulated time (cycle-counter value).
  Cycles now() const { return now_; }
  Cycles TraceNow() const override { return now_; }

  // Schedule `fn` to run at absolute time `when` (>= now; checked).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(Cycles when, Callback fn);

  // Schedule `fn` to run `delay` cycles from now.
  EventId ScheduleAfter(Cycles delay, Callback fn);

  // Cancel a pending event.  Returns false if it already fired or was
  // already cancelled.  O(1); the callback is destroyed immediately.
  bool Cancel(EventId id);

  // Time of the next pending (non-cancelled) event, or kNever.
  Cycles NextEventTime() const;

  // True if no non-cancelled events are pending.
  bool Empty() const { return live_ == 0; }

  // Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return live_; }

  // Advance the clock to `t` without firing anything.  Requires that no
  // event is due at or before `t` (the Scheduler maintains this invariant),
  // and t >= now.  Both are checked, in release builds too.
  void AdvanceTo(Cycles t);

  // Fire every event due at or before `t`, advancing the clock to each
  // event's timestamp in order, and finally to `t`.  Callbacks may schedule
  // further events, including ones due within the window; they fire too.
  void RunUntil(Cycles t);

  // Fire the single next event (advancing the clock to it).  Requires
  // !Empty() (checked).
  void RunNext();

  // Total number of callbacks ever fired (for stats/tests).
  std::uint64_t fired_count() const { return fired_; }

  // Introspection for tests and benches: heap entries including cancelled
  // tombstones awaiting compaction.  The compaction policy guarantees
  // heap_size() <= 2 * PendingCount() + kCompactionFloor.
  std::size_t heap_size() const { return heap_.size(); }
  static constexpr std::size_t kCompactionFloor = 64;

 private:
  // 24 bytes, trivially copyable: heap sifts move no callbacks.
  struct HeapEntry {
    Cycles when;
    std::uint64_t seq;  // insertion order: FIFO tie-break among same-cycle
    std::uint32_t slot;
    std::uint32_t gen;

    bool Before(const HeapEntry& rhs) const {
      return when != rhs.when ? when < rhs.when : seq < rhs.seq;
    }
  };

  // Callback storage, recycled through free_slots_.  `gen` advances every
  // time the slot retires (fire or cancel), invalidating outstanding heap
  // entries and EventIds that still reference it.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;
  };

  std::uint32_t AllocSlot();
  void RetireSlot(std::uint32_t slot);

  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void PopTop();

  // Pop stale (cancelled) entries off the heap top.  O(1) when nothing is
  // cancelled -- the common case.
  void SkimCancelled() const;

  // Rebuild the heap without tombstones once they outnumber live entries.
  void MaybeCompact();

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;

  // mutable: NextEventTime()/Empty() skim tombstones lazily, as the
  // original lazy-deletion implementation did.
  mutable std::vector<HeapEntry> heap_;
  mutable std::size_t tombstones_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_EVENT_QUEUE_H_
