// Reference event queue: the pre-PR-8 implementation, kept as an oracle.
//
// This is the original std::priority_queue + std::function + side-map
// EventQueue, verbatim except for the always-on invariant checks (which
// match the production queue's) and the removal of profiler probes.  It is
// NOT used by the simulator; it exists so that
//
//   * tests/sim_event_queue_test.cc can run one shared contract suite
//     (ordering, FIFO ties, cancel semantics, skimming interplay) against
//     both implementations and differentially fuzz them against each
//     other, and
//   * bench/queue_bench can report an honest old-vs-new ops/sec ratio.
//
// If the production EventQueue's observable behaviour ever diverges from
// this file, that divergence is a bug in the new queue, not in the oracle.

#ifndef ILAT_SRC_SIM_REFERENCE_EVENT_QUEUE_H_
#define ILAT_SRC_SIM_REFERENCE_EVENT_QUEUE_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace ilat {

class ReferenceEventQueue {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  static constexpr EventId kNoEvent = 0;

  Cycles now() const { return now_; }

  EventId ScheduleAt(Cycles when, Callback fn) {
    Check(when >= now_, "ScheduleAt: cannot schedule events in the past");
    const EventId id = next_id_++;
    heap_.push(Entry{when, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  EventId ScheduleAfter(Cycles delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    auto it = callbacks_.find(id);
    if (it == callbacks_.end()) {
      return false;
    }
    callbacks_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  Cycles NextEventTime() const {
    SkimCancelled();
    return heap_.empty() ? kNever : heap_.top().when;
  }

  bool Empty() const {
    SkimCancelled();
    return heap_.empty();
  }

  std::size_t PendingCount() const { return heap_.size() - cancelled_.size(); }

  void AdvanceTo(Cycles t) {
    Check(t >= now_, "AdvanceTo: time cannot go backwards");
    Check(NextEventTime() >= t, "AdvanceTo: events due before target");
    now_ = t;
  }

  void RunUntil(Cycles t) {
    while (NextEventTime() <= t) {
      RunNext();
    }
    if (t > now_) {
      now_ = t;
    }
  }

  void RunNext() {
    SkimCancelled();
    Check(!heap_.empty(), "RunNext: no pending events");
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    Check(it != callbacks_.end(), "RunNext: missing callback");
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    Check(top.when >= now_, "RunNext: event due in the past");
    now_ = top.when;
    ++fired_;
    fn();
  }

  std::uint64_t fired_count() const { return fired_; }

  // Mirror of EventQueue::heap_size(): entries including cancelled ones
  // (this implementation never compacts -- the behaviour PR 8 fixed).
  std::size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    Cycles when;
    EventId id;
    bool operator>(const Entry& rhs) const {
      if (when != rhs.when) {
        return when > rhs.when;
      }
      return id > rhs.id;
    }
  };

  static void Check(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "ilat: event-queue invariant violated: %s\n", what);
      std::abort();
    }
  }

  void SkimCancelled() const {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) {
        break;
      }
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  Cycles now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_REFERENCE_EVENT_QUEUE_H_
