// LRU buffer cache over the disk.
//
// The file-cache warming visible in the paper's Table 1 (the second and
// third OLE edit sessions start much faster than the first, as the
// embedded-editor pages become resident) is reproduced by this cache.

#ifndef ILAT_SRC_SIM_BUFFER_CACHE_H_
#define ILAT_SRC_SIM_BUFFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/sim/disk.h"
#include "src/sim/io_status.h"

namespace ilat {

class BufferCache {
 public:
  // `capacity_blocks` resident blocks; `hit_copy_work` is the per-request
  // kernel copy cost charged (as stolen time) when a request is fully
  // satisfied from the cache.
  BufferCache(Disk* disk, Scheduler* scheduler, int capacity_blocks, Work hit_copy_work);

  // Read `nblocks` at `block` through the cache.  Missing runs are
  // coalesced into disk requests; `done` fires once everything is
  // resident (kOk) or any underlying disk request failed (kFailed --
  // the blocks of failed runs are evicted rather than left resident).
  void Read(std::int64_t block, int nblocks, IoCallback done);

  // Write-through write; blocks become resident.  `done` fires when the
  // disk write completes; on kFailed the blocks are evicted.
  void Write(std::int64_t block, int nblocks, IoCallback done);

  // Back-compat: status-blind completion callbacks.
  void Read(std::int64_t block, int nblocks, std::function<void()> done) {
    Read(block, nblocks, IgnoreIoStatus(std::move(done)));
  }
  void Write(std::int64_t block, int nblocks, std::function<void()> done) {
    Write(block, nblocks, IgnoreIoStatus(std::move(done)));
  }

  bool Contains(std::int64_t block) const;
  int block_size_bytes() const { return disk_->params().block_size_bytes; }
  std::size_t ResidentBlocks() const { return lru_.size(); }
  int capacity_blocks() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t failed_fills() const { return failed_fills_; }

  // Drop everything (models a cold boot).
  void Clear();

 private:
  void Touch(std::int64_t block);
  void Insert(std::int64_t block);
  void Evict(std::int64_t block);

  Disk* disk_;
  Scheduler* scheduler_;
  int capacity_;
  Work hit_copy_work_;

  // LRU list front = most recent.  Map block -> list iterator.
  std::list<std::int64_t> lru_;
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> index_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t failed_fills_ = 0;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_BUFFER_CACHE_H_
