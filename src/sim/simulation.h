// Simulation facade: one simulated machine.
//
// Wires the clock/event queue, hardware counters, scheduler, PRNG, disk,
// buffer cache, and I/O tracker into a single object.  OS personalities
// (src/os) configure it; applications and the measurement toolkit run on
// it.

#ifndef ILAT_SRC_SIM_SIMULATION_H_
#define ILAT_SRC_SIM_SIMULATION_H_

#include <memory>

#include "src/obs/trace.h"
#include "src/sim/buffer_cache.h"
#include "src/sim/disk.h"
#include "src/sim/event_queue.h"
#include "src/sim/hardware_counters.h"
#include "src/sim/io_tracker.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace ilat {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  // Build the disk + buffer cache.  Must be called before disk()/cache().
  void ConfigureStorage(DiskParams params, Work disk_isr_work, int cache_blocks,
                        Work cache_hit_copy_work);

  EventQueue& queue() { return queue_; }
  obs::Tracer& tracer() { return tracer_; }
  Scheduler& scheduler() { return scheduler_; }
  HardwareCounters& counters() { return counters_; }
  Random& random() { return random_; }
  IoTracker& io() { return io_; }
  Disk& disk() { return *disk_; }
  BufferCache& cache() { return *cache_; }
  bool has_storage() const { return disk_ != nullptr; }

  Cycles now() const { return queue_.now(); }

  // Run the machine forward to an absolute time.
  void RunUntil(Cycles t) { scheduler_.RunUntil(t); }
  // Run the machine forward by a delta.
  void RunFor(Cycles dt) { scheduler_.RunUntil(queue_.now() + dt); }

 private:
  EventQueue queue_;
  // Declared after queue_ (its clock) and before the components that hold a
  // pointer to it.
  obs::Tracer tracer_;
  HardwareCounters counters_;
  Scheduler scheduler_;
  Random random_;
  IoTracker io_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferCache> cache_;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_SIMULATION_H_
