#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

#include "src/obs/profiler.h"

namespace ilat {

EventQueue::EventId EventQueue::ScheduleAt(Cycles when, Callback fn) {
  PROF_SCOPE(kQueuePush);
  assert(when >= now_ && "cannot schedule events in the past");
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventQueue::EventId EventQueue::ScheduleAfter(Cycles delay, Callback fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::SkimCancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      break;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

Cycles EventQueue::NextEventTime() const {
  SkimCancelled();
  return heap_.empty() ? kNever : heap_.top().when;
}

bool EventQueue::Empty() const {
  SkimCancelled();
  return heap_.empty();
}

void EventQueue::AdvanceTo(Cycles t) {
  assert(t >= now_ && "time cannot go backwards");
  assert(NextEventTime() >= t && "events due before AdvanceTo target");
  now_ = t;
}

void EventQueue::RunNext() {
  // The pop probe covers the heap/bookkeeping mechanics only; the
  // callback runs outside it so its cost lands with whoever does the work
  // (app dispatch, tracer, ...).
  Callback fn;
  {
    PROF_SCOPE(kQueuePop);
    SkimCancelled();
    assert(!heap_.empty());
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    assert(it != callbacks_.end());
    fn = std::move(it->second);
    callbacks_.erase(it);
    assert(top.when >= now_);
    now_ = top.when;
    ++fired_;
  }
  fn();
}

void EventQueue::RunUntil(Cycles t) {
  while (NextEventTime() <= t) {
    RunNext();
  }
  if (t > now_) {
    now_ = t;
  }
}

}  // namespace ilat
