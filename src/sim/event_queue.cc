#include "src/sim/event_queue.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/obs/profiler.h"

namespace ilat {
namespace {

// Always-on invariant failure: simulated time running backwards corrupts
// every latency measurement, so a release build must die loudly rather
// than keep going.  (These were assert()s before PR 8 and vanished under
// NDEBUG.)
[[noreturn]] void QueueFatal(const char* what) {
  std::fprintf(stderr, "ilat: event-queue invariant violated: %s\n", what);
  std::abort();
}

inline void QueueCheck(bool ok, const char* what) {
  if (!ok) {
    QueueFatal(what);
  }
}

}  // namespace

std::uint32_t EventQueue::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::RetireSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.Reset();
  ++s.gen;  // invalidates every outstanding EventId / heap entry for it
  free_slots_.push_back(slot);
}

void EventQueue::SiftUp(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!e.Before(heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && heap_[child + 1].Before(heap_[child])) {
      ++child;
    }
    if (!heap_[child].Before(e)) {
      break;
    }
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void EventQueue::PopTop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

EventQueue::EventId EventQueue::ScheduleAt(Cycles when, Callback fn) {
  PROF_SCOPE(kQueuePush);
  QueueCheck(when >= now_, "ScheduleAt: cannot schedule events in the past");
  const std::uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(fn);
  heap_.push_back(HeapEntry{when, next_seq_++, slot, s.gen});
  SiftUp(heap_.size() - 1);
  ++live_;
  // Low half: slot + 1 (never zero, so no id collides with kNoEvent);
  // high half: the slot's generation at scheduling time.
  return (static_cast<EventId>(s.gen) << 32) | (slot + 1);
}

EventQueue::EventId EventQueue::ScheduleAfter(Cycles delay, Callback fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  const std::uint32_t lo = static_cast<std::uint32_t>(id);
  if (lo == 0) {
    return false;  // kNoEvent, or not an id we ever issued
  }
  const std::uint32_t slot = lo - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // already fired or already cancelled (generation moved on)
  }
  RetireSlot(slot);
  --live_;
  ++tombstones_;
  MaybeCompact();
  return true;
}

void EventQueue::SkimCancelled() const {
  if (tombstones_ == 0) {
    return;
  }
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    if (slots_[top.slot].gen == top.gen) {
      break;
    }
    const_cast<EventQueue*>(this)->PopTop();
    --tombstones_;
  }
}

void EventQueue::MaybeCompact() {
  if (tombstones_ <= live_ || heap_.size() < kCompactionFloor) {
    return;
  }
  std::size_t out = 0;
  for (const HeapEntry& e : heap_) {
    if (slots_[e.slot].gen == e.gen) {
      heap_[out++] = e;
    }
  }
  heap_.resize(out);
  tombstones_ = 0;
  // Floyd heap construction over the surviving entries.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) {
    SiftDown(i);
  }
}

Cycles EventQueue::NextEventTime() const {
  SkimCancelled();
  return heap_.empty() ? kNever : heap_[0].when;
}

void EventQueue::AdvanceTo(Cycles t) {
  QueueCheck(t >= now_, "AdvanceTo: time cannot go backwards");
  QueueCheck(NextEventTime() >= t, "AdvanceTo: events due before target");
  now_ = t;
}

void EventQueue::RunNext() {
  // The pop probe covers the heap/bookkeeping mechanics only; the
  // callback runs outside it so its cost lands with whoever does the work
  // (app dispatch, tracer, ...).
  Callback fn;
  {
    PROF_SCOPE(kQueuePop);
    SkimCancelled();
    QueueCheck(!heap_.empty(), "RunNext: no pending events");
    const HeapEntry top = heap_[0];
    PopTop();
    fn = std::move(slots_[top.slot].cb);
    RetireSlot(top.slot);
    --live_;
    QueueCheck(top.when >= now_, "RunNext: event due in the past");
    now_ = top.when;
    ++fired_;
  }
  fn();
}

void EventQueue::RunUntil(Cycles t) {
  while (NextEventTime() <= t) {
    RunNext();
  }
  if (t > now_) {
    now_ = t;
  }
}

}  // namespace ilat
