// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element of the toolkit (human typist timing, disk seek
// perturbation, application work jitter) draws from a seeded xorshift64*
// generator so that experiments replay bit-for-bit.  We intentionally avoid
// <random>'s distributions, whose outputs differ between standard library
// implementations.

#ifndef ILAT_SRC_SIM_RANDOM_H_
#define ILAT_SRC_SIM_RANDOM_H_

#include <cstdint>

namespace ilat {

// xorshift64* PRNG (Vigna 2016).  Small, fast, and statistically adequate
// for workload generation.  Not cryptographic.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (one value per call; the pair's second
  // value is cached).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Exponential with the given mean.  Useful for think-time models.
  double Exponential(double mean);

  // True with probability p.
  bool Bernoulli(double p);

  // Re-seed, resetting all cached state.
  void Seed(std::uint64_t seed);

 private:
  std::uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Derive an independent per-stream seed from a master seed and a stream
// index (SplitMix64 finalisation).  Campaign cells use this so that cell k
// of campaign seed S always gets the same RNG stream, no matter which host
// thread runs it or in what order -- the foundation of the guarantee that
// an N-thread sweep is byte-identical to a 1-thread sweep.  Stream seeds
// are decorrelated even for adjacent indices, unlike `master + index`.
std::uint64_t DeriveSeed(std::uint64_t master_seed, std::uint64_t stream_index);

// Two-level stream derivation: an independent stream per (stream, sub)
// pair, with full finalisation at each level.  Fault injection keys its
// PRNGs as DeriveSeed(session_seed, plan_salt, attempt) so every
// (cell, fault-point, attempt) triple draws from its own stream.
std::uint64_t DeriveSeed(std::uint64_t master_seed, std::uint64_t stream_index,
                         std::uint64_t sub_index);

}  // namespace ilat

#endif  // ILAT_SRC_SIM_RANDOM_H_
