#include "src/sim/buffer_cache.h"

#include <memory>
#include <utility>
#include <vector>

namespace ilat {

BufferCache::BufferCache(Disk* disk, Scheduler* scheduler, int capacity_blocks,
                         Work hit_copy_work)
    : disk_(disk), scheduler_(scheduler), capacity_(capacity_blocks),
      hit_copy_work_(hit_copy_work) {}

bool BufferCache::Contains(std::int64_t block) const { return index_.count(block) > 0; }

void BufferCache::Touch(std::int64_t block) {
  auto it = index_.find(block);
  if (it == index_.end()) {
    return;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
}

void BufferCache::Insert(std::int64_t block) {
  if (Contains(block)) {
    Touch(block);
    return;
  }
  lru_.push_front(block);
  index_[block] = lru_.begin();
  while (static_cast<int>(lru_.size()) > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void BufferCache::Evict(std::int64_t block) {
  auto it = index_.find(block);
  if (it == index_.end()) {
    return;
  }
  lru_.erase(it->second);
  index_.erase(it);
}

void BufferCache::Clear() {
  lru_.clear();
  index_.clear();
}

void BufferCache::Read(std::int64_t block, int nblocks, IoCallback done) {
  // Find maximal missing runs.
  struct Run {
    std::int64_t start;
    int len;
  };
  std::vector<Run> missing;
  for (std::int64_t b = block; b < block + nblocks; ++b) {
    if (Contains(b)) {
      ++hits_;
      Touch(b);
    } else {
      ++misses_;
      if (!missing.empty() && missing.back().start + missing.back().len == b) {
        ++missing.back().len;
      } else {
        missing.push_back(Run{b, 1});
      }
    }
  }

  if (missing.empty()) {
    // Fully cached: charge the kernel copy as stolen time, then complete.
    scheduler_->QueueInterrupt(hit_copy_work_,
                               [done = std::move(done)] { done(IoStatus::kOk); });
    return;
  }

  // Mark missing blocks resident up front (they will be by the time `done`
  // runs; no reader can observe the window because completion gates it).
  for (const Run& r : missing) {
    for (std::int64_t b = r.start; b < r.start + r.len; ++b) {
      Insert(b);
    }
  }

  // Issue one disk request per missing run; complete when the last lands.
  // A failed run evicts its blocks (they never became resident) and the
  // whole read completes kFailed.
  struct Pending {
    int remaining;
    IoStatus status = IoStatus::kOk;
    IoCallback done;
  };
  auto state = std::make_shared<Pending>();
  state->remaining = static_cast<int>(missing.size());
  state->done = std::move(done);
  for (const Run& r : missing) {
    disk_->SubmitRead(r.start, r.len, IoCallback([this, state, r](IoStatus status) {
                        if (status != IoStatus::kOk) {
                          ++failed_fills_;
                          state->status = status;
                          for (std::int64_t b = r.start; b < r.start + r.len; ++b) {
                            Evict(b);
                          }
                        }
                        if (--state->remaining == 0 && state->done) {
                          state->done(state->status);
                        }
                      }));
  }
}

void BufferCache::Write(std::int64_t block, int nblocks, IoCallback done) {
  for (std::int64_t b = block; b < block + nblocks; ++b) {
    Insert(b);
  }
  disk_->SubmitWrite(block, nblocks,
                     IoCallback([this, block, nblocks, done = std::move(done)](IoStatus status) {
                       if (status != IoStatus::kOk) {
                         for (std::int64_t b = block; b < block + nblocks; ++b) {
                           Evict(b);
                         }
                       }
                       done(status);
                     }));
}

}  // namespace ilat
