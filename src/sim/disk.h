// Disk model: seek + rotation + transfer, FIFO request queue.
//
// Models the paper's dedicated 1 GB Fujitsu M1606SAU SCSI disk.  Table 1's
// long-latency PowerPoint events (application start, document open/save,
// OLE edit start) are dominated by disk time, so the disk and the buffer
// cache above it are the substrate for those experiments.

#ifndef ILAT_SRC_SIM_DISK_H_
#define ILAT_SRC_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/work.h"

namespace ilat {

struct DiskParams {
  double avg_seek_ms = 10.0;         // random-access seek
  double track_to_track_ms = 2.0;    // sequential-ish access
  double rotational_rpm = 5400.0;    // -> avg rotational delay = half turn
  double transfer_mb_per_s = 4.0;    // media transfer rate
  double controller_overhead_ms = 0.5;
  int block_size_bytes = 4096;
  // Fractional jitter applied to seek time (deterministic PRNG).
  double seek_jitter = 0.15;
};

class Disk {
 public:
  // All pointers are non-owning and must outlive the disk.
  Disk(EventQueue* queue, Scheduler* scheduler, Random* random, DiskParams params,
       Work isr_work, obs::Tracer* tracer = nullptr);

  // Submit a read/write of `nblocks` starting at `block`.  `done` fires
  // from the completion interrupt handler.
  void SubmitRead(std::int64_t block, int nblocks, std::function<void()> done);
  void SubmitWrite(std::int64_t block, int nblocks, std::function<void()> done);

  const DiskParams& params() const { return params_; }

  std::uint64_t completed_requests() const { return completed_; }
  std::uint64_t blocks_transferred() const { return blocks_; }
  Cycles total_service_cycles() const { return service_cycles_; }

 private:
  struct Request {
    std::int64_t block;
    int nblocks;
    bool is_write;
    std::function<void()> done;
    Cycles submitted = 0;
  };

  void Submit(Request r);
  void StartNext();
  Cycles ServiceTime(const Request& r);

  // Queue-depth = pending + in-service requests; traced as a counter track.
  void TraceQueueDepth();

  EventQueue* queue_;
  Scheduler* scheduler_;
  Random* random_;
  DiskParams params_;
  Work isr_work_;

  obs::Tracer* tracer_;
  std::uint32_t disk_track_ = 0;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_blocks_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::LogHistogram* m_queue_ms_ = nullptr;
  obs::LogHistogram* m_service_ms_ = nullptr;

  std::deque<Request> pending_;
  bool active_ = false;
  std::int64_t head_position_ = 0;  // block number after the last transfer

  std::uint64_t completed_ = 0;
  std::uint64_t blocks_ = 0;
  Cycles service_cycles_ = 0;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_DISK_H_
