// Disk model: seek + rotation + transfer, FIFO request queue.
//
// Models the paper's dedicated 1 GB Fujitsu M1606SAU SCSI disk.  Table 1's
// long-latency PowerPoint events (application start, document open/save,
// OLE edit start) are dominated by disk time, so the disk and the buffer
// cache above it are the substrate for those experiments.
//
// The fault-injection layer (src/fault/) can attach a DiskFaultPolicy to
// fail or stall individual service attempts.  Transient failures are
// retried with exponential backoff up to DiskParams::max_retries; a
// permanent failure flips the disk into a state where every request
// completes immediately with IoStatus::kFailed (callbacks always fire, so
// waiting apps degrade instead of deadlocking).

#ifndef ILAT_SRC_SIM_DISK_H_
#define ILAT_SRC_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/io_status.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/work.h"

namespace ilat {

struct DiskParams {
  double avg_seek_ms = 10.0;         // random-access seek
  double track_to_track_ms = 2.0;    // sequential-ish access
  double rotational_rpm = 5400.0;    // -> avg rotational delay = half turn
  double transfer_mb_per_s = 4.0;    // media transfer rate
  double controller_overhead_ms = 0.5;
  int block_size_bytes = 4096;
  // Fractional jitter applied to seek time (deterministic PRNG).
  double seek_jitter = 0.15;
  // Service attempts per request = 1 + max_retries; attempt k backs off
  // controller_overhead_ms * 2^k before re-entering the queue.
  int max_retries = 3;
};

// Decision made by a fault policy for one disk service attempt.
enum class DiskFaultKind {
  kNone,
  kTransient,  // this attempt fails; the disk retries (bounded)
  kPermanent,  // the disk dies: this and all later requests fail at once
};

struct DiskFaultDecision {
  DiskFaultKind kind = DiskFaultKind::kNone;
  Cycles stall = 0;  // extra service time for this attempt
};

// Implemented by fault::FaultInjector; declared here so the sim layer does
// not depend on src/fault/.
class DiskFaultPolicy {
 public:
  virtual ~DiskFaultPolicy() = default;
  // Called once per service attempt; `attempt` is 0 for the first try.
  virtual DiskFaultDecision OnDiskAttempt(std::int64_t block, int nblocks, bool is_write,
                                          int attempt) = 0;
};

class Disk {
 public:
  // All pointers are non-owning and must outlive the disk.
  Disk(EventQueue* queue, Scheduler* scheduler, Random* random, DiskParams params,
       Work isr_work, obs::Tracer* tracer = nullptr);

  // Submit a read/write of `nblocks` starting at `block`.  `done` fires
  // from the completion interrupt handler with the request's status.
  void SubmitRead(std::int64_t block, int nblocks, IoCallback done);
  void SubmitWrite(std::int64_t block, int nblocks, IoCallback done);

  // Back-compat: status-blind completion callbacks.
  void SubmitRead(std::int64_t block, int nblocks, std::function<void()> done) {
    SubmitRead(block, nblocks, IgnoreIoStatus(std::move(done)));
  }
  void SubmitWrite(std::int64_t block, int nblocks, std::function<void()> done) {
    SubmitWrite(block, nblocks, IgnoreIoStatus(std::move(done)));
  }

  void set_fault_policy(DiskFaultPolicy* policy) { fault_policy_ = policy; }

  const DiskParams& params() const { return params_; }

  std::uint64_t completed_requests() const { return completed_; }
  std::uint64_t failed_requests() const { return failed_; }
  std::uint64_t retried_attempts() const { return retries_; }
  bool permanently_failed() const { return permanently_failed_; }
  std::uint64_t blocks_transferred() const { return blocks_; }
  Cycles total_service_cycles() const { return service_cycles_; }

 private:
  struct Request {
    std::int64_t block;
    int nblocks;
    bool is_write;
    IoCallback done;
    Cycles submitted = 0;
    int attempt = 0;
  };

  void Submit(Request r);
  void StartNext();
  void Complete(Request r, IoStatus status);
  Cycles ServiceTime(const Request& r);

  // Queue-depth = pending + in-service requests; traced as a counter track.
  void TraceQueueDepth();

  EventQueue* queue_;
  Scheduler* scheduler_;
  Random* random_;
  DiskParams params_;
  Work isr_work_;

  obs::Tracer* tracer_;
  std::uint32_t disk_track_ = 0;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_blocks_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::LogHistogram* m_queue_ms_ = nullptr;
  obs::LogHistogram* m_service_ms_ = nullptr;

  DiskFaultPolicy* fault_policy_ = nullptr;

  std::deque<Request> pending_;
  bool active_ = false;
  std::int64_t head_position_ = 0;  // block number after the last transfer

  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  bool permanently_failed_ = false;
  std::uint64_t blocks_ = 0;
  Cycles service_cycles_ = 0;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_DISK_H_
