// Characterisation of a block of computation.
//
// When a simulated thread executes, it executes *work* described by a
// WorkProfile: how many instructions retire per cycle and which hardware
// events (TLB misses, segment-register loads, unaligned accesses) accompany
// them.  The profiles are how the toolkit reproduces the paper's
// hardware-counter results (Figs. 9 and 10): Windows 95's 16-bit GUI code
// has a high segment-load rate, NT 3.51's user-level Win32 server forces
// protection-domain crossings that flush the TLB, and so on.

#ifndef ILAT_SRC_SIM_WORK_H_
#define ILAT_SRC_SIM_WORK_H_

#include "src/sim/time.h"

namespace ilat {

// Hardware-event rates for a class of code.  Rates are per retired
// instruction (or per thousand instructions where noted) so that profiles
// compose naturally with work expressed in instructions.
struct WorkProfile {
  // Instructions retired per cycle.  The 100 MHz Pentium is dual-issue; in
  // practice OS/GUI code achieved well under 1.0.
  double ipc = 0.8;

  // Data references per instruction.
  double data_refs_per_instr = 0.35;

  // Instruction-TLB misses per 1000 instructions.
  double itlb_miss_per_kinstr = 0.05;

  // Data-TLB misses per 1000 instructions.
  double dtlb_miss_per_kinstr = 0.15;

  // Segment-register loads per 1000 instructions.  Essentially zero for
  // 32-bit flat-model code; large for 16-bit Windows code.
  double seg_loads_per_kinstr = 0.0;

  // Unaligned data accesses per 1000 instructions.  Large for 16-bit code.
  double unaligned_per_kinstr = 0.0;

  // Convert an instruction count into the cycles needed to retire it.
  Cycles CyclesForInstructions(double instructions) const {
    return static_cast<Cycles>(instructions / ipc);
  }

  // Convert a cycle budget into the instructions retired within it.
  double InstructionsForCycles(Cycles cycles) const {
    return static_cast<double>(cycles) * ipc;
  }
};

// A quantum of work to execute: a cycle count plus the profile describing
// what the hardware sees while it runs.
struct Work {
  Cycles cycles = 0;
  WorkProfile profile;

  static Work FromInstructions(double instructions, const WorkProfile& p) {
    return Work{p.CyclesForInstructions(instructions), p};
  }

  static Work FromMilliseconds(double ms, const WorkProfile& p) {
    return Work{MillisecondsToCycles(ms), p};
  }
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_WORK_H_
