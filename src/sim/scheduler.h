// Preemptive priority scheduler with interrupt stealing.
//
// One simulated CPU.  Each scheduling step runs the highest-priority
// runnable work until the earlier of (a) the work quantum completing or
// (b) the next timed event becoming due.  Interrupt work (queued by device
// models when their events fire) always runs before any thread -- it is
// "stolen time", the phenomenon the paper's idle-loop instrument detects.
//
// CPU busy/idle transitions are observable because CPU state is one of the
// three inputs to the think/wait state machine (paper Fig. 2), and because
// ground-truth busy intervals let tests validate what the idle-loop
// instrument infers.

#ifndef ILAT_SRC_SIM_SCHEDULER_H_
#define ILAT_SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/hardware_counters.h"
#include "src/sim/thread.h"

namespace ilat {

// Observer of ground-truth CPU busy/idle transitions.  "Busy" means the
// CPU is executing interrupt work or any non-idle thread.
class CpuObserver {
 public:
  virtual ~CpuObserver() = default;
  virtual void OnCpuBusy(Cycles t) = 0;
  virtual void OnCpuIdle(Cycles t) = 0;
};

class Scheduler {
 public:
  Scheduler(EventQueue* queue, HardwareCounters* counters,
            obs::Tracer* tracer = nullptr);

  // Register a thread.  Non-owning; the thread must outlive the scheduler's
  // use of it.  Threads start Runnable.
  void AddThread(SimThread* t);

  // Move a blocked thread to runnable.  No-op if already runnable.
  // `boost` temporarily raises the thread's effective priority until it
  // next blocks (the NT wake-boost mechanism).
  void Wake(SimThread* t, int boost = 0);

  // Queue interrupt work: runs before all threads, FIFO among interrupts.
  // Counts one hardware interrupt.  `on_complete` fires when the handler
  // finishes (use it to post messages, wake threads, ...).
  void QueueInterrupt(Work w, std::function<void()> on_complete = nullptr);

  // Advance simulation to `until`, interleaving timed events, interrupt
  // work, and thread execution.
  void RunUntil(Cycles until);

  // True if the CPU is currently executing non-idle work.
  bool cpu_busy() const { return busy_; }

  void AddCpuObserver(CpuObserver* obs) { observers_.push_back(obs); }

  // Total cycles spent in interrupt work / non-idle threads / idle thread.
  Cycles interrupt_cycles() const { return interrupt_cycles_; }
  Cycles busy_thread_cycles() const { return busy_thread_cycles_; }
  Cycles idle_thread_cycles() const { return idle_thread_cycles_; }

  // Emit any run span still being coalesced.  Call before exporting a
  // trace so the tail of the timeline is not lost.
  void FlushTraceSpans();

 private:
  struct InterruptWork {
    Work work;
    Cycles remaining;
    std::function<void()> on_complete;
  };

  // Highest-priority runnable thread; ties broken by least recently
  // dispatched.  Returns nullptr if none.  Fast path: when exactly one
  // thread is runnable (the dominant state -- an idle-loop pass with
  // everything else blocked), the cached sole_runnable_ skips the scan.
  SimThread* PickThread();

  // All runnable-state transitions funnel through here so the runnable
  // count (and the single-runnable dispatch cache) stays exact.
  void NoteRunnableDelta(int delta) {
    runnable_ += delta;
    sole_runnable_ = nullptr;
  }

  // Ensure `t` has an action in flight, consuming kBlock/kFinish actions.
  // Returns true if the thread ended up with compute work to run.
  bool EnsureAction(SimThread* t);

  void SetBusy(bool busy);

  // Record that `key` (a thread, or &interrupts_ for interrupt work) ran
  // over [t0, t1) on `track`.  Contiguous slices with the same key coalesce
  // into one trace span; a change of key counts a context switch.
  void NoteRunSlice(const void* key, std::uint32_t track, std::string_view name,
                    Cycles t0, Cycles t1);
  void FlushRunSpan();

  EventQueue* queue_;
  HardwareCounters* counters_;
  obs::Tracer* tracer_;
  std::vector<SimThread*> threads_;
  std::deque<InterruptWork> interrupts_;
  std::vector<CpuObserver*> observers_;
  bool busy_ = false;
  std::uint64_t dispatch_seq_ = 0;
  int runnable_ = 0;                     // exact count of kRunnable threads
  SimThread* sole_runnable_ = nullptr;   // cached iff runnable_ == 1
  Cycles interrupt_cycles_ = 0;
  Cycles busy_thread_cycles_ = 0;
  Cycles idle_thread_cycles_ = 0;

  // Observability state.
  std::uint32_t cpu_track_ = 0;
  std::uint32_t irq_track_ = 0;
  obs::Counter* m_ctx_switches_ = nullptr;
  obs::Counter* m_interrupts_ = nullptr;
  const void* last_run_key_ = nullptr;  // context-switch detection (incl. idle)
  const void* span_key_ = nullptr;      // open coalesced span, nullptr if none
  std::uint32_t span_track_ = 0;
  std::string span_name_;
  Cycles span_start_ = 0;
  Cycles span_end_ = 0;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_SCHEDULER_H_
