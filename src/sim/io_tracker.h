// Outstanding-I/O bookkeeping.
//
// The think/wait state machine (paper Fig. 2) needs to know whether a
// synchronous I/O request is outstanding: synchronous I/O is wait time for
// the user even though the CPU is idle, while asynchronous I/O is assumed
// to be background activity.  The paper notes that real systems lacked an
// API for this; the simulator provides it as ground truth.

#ifndef ILAT_SRC_SIM_IO_TRACKER_H_
#define ILAT_SRC_SIM_IO_TRACKER_H_

#include <cassert>
#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"

namespace ilat {

class IoTracker {
 public:
  // Observer of (time, any_sync_io_pending) transitions.
  using TransitionFn = std::function<void(Cycles, bool)>;

  explicit IoTracker(EventQueue* clock) : clock_(clock) {}

  void SetTransitionObserver(TransitionFn fn) { on_transition_ = std::move(fn); }

  void BeginSync() {
    if (sync_outstanding_++ == 0 && on_transition_) {
      on_transition_(clock_->now(), true);
    }
  }

  void EndSync() {
    assert(sync_outstanding_ > 0);
    if (--sync_outstanding_ == 0 && on_transition_) {
      on_transition_(clock_->now(), false);
    }
  }

  void BeginAsync() { ++async_outstanding_; }
  void EndAsync() {
    assert(async_outstanding_ > 0);
    --async_outstanding_;
  }

  int sync_outstanding() const { return sync_outstanding_; }
  int async_outstanding() const { return async_outstanding_; }

 private:
  EventQueue* clock_;
  TransitionFn on_transition_;
  int sync_outstanding_ = 0;
  int async_outstanding_ = 0;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_IO_TRACKER_H_
