#include "src/sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/profiler.h"

namespace ilat {

Scheduler::Scheduler(EventQueue* queue, HardwareCounters* counters, obs::Tracer* tracer)
    : queue_(queue), counters_(counters), tracer_(tracer) {
  if (tracer_ != nullptr) {
    cpu_track_ = tracer_->RegisterTrack("cpu");
    irq_track_ = tracer_->RegisterTrack("irq");
    m_ctx_switches_ = tracer_->metrics().GetCounter("sched.context_switches");
    m_interrupts_ = tracer_->metrics().GetCounter("sched.interrupts");
  }
}

void Scheduler::AddThread(SimThread* t) {
  assert(t != nullptr);
  threads_.push_back(t);
  if (t->state_ == ThreadState::kRunnable) {
    NoteRunnableDelta(+1);
  }
}

void Scheduler::Wake(SimThread* t, int boost) {
  if (t->state_ == ThreadState::kBlocked) {
    t->state_ = ThreadState::kRunnable;
    NoteRunnableDelta(+1);
  }
  // Boosts do not stack; the largest pending boost wins and decays when
  // the thread next blocks.
  t->boost_ = std::max(t->boost_, boost);
}

void Scheduler::QueueInterrupt(Work w, std::function<void()> on_complete) {
  counters_->Add(HwEvent::kInterrupts, 1);
  if (m_interrupts_ != nullptr) {
    m_interrupts_->Increment();
  }
  interrupts_.push_back(InterruptWork{w, w.cycles, std::move(on_complete)});
}

void Scheduler::NoteRunSlice(const void* key, std::uint32_t track, std::string_view name,
                             Cycles t0, Cycles t1) {
  if (tracer_ == nullptr) {
    return;
  }
  if (key != last_run_key_) {
    last_run_key_ = key;
    if (m_ctx_switches_ != nullptr) {
      m_ctx_switches_->Increment();
    }
  }
  if (!tracer_->enabled()) {
    return;
  }
  // Idle-thread slices carry no span (the idle row would dominate the
  // trace); the empty name marks them.
  if (name.empty()) {
    FlushRunSpan();
    return;
  }
  if (key == span_key_ && track == span_track_ && t0 == span_end_) {
    span_end_ = t1;  // contiguous continuation: coalesce
    return;
  }
  FlushRunSpan();
  span_key_ = key;
  span_track_ = track;
  span_name_.assign(name);
  span_start_ = t0;
  span_end_ = t1;
}

void Scheduler::FlushRunSpan() {
  if (span_key_ == nullptr) {
    return;
  }
  if (tracer_ != nullptr && span_end_ > span_start_) {
    tracer_->CompleteSpan(span_track_, span_name_, "sched", span_start_,
                          span_end_ - span_start_);
  }
  span_key_ = nullptr;
  span_name_.clear();
}

void Scheduler::FlushTraceSpans() { FlushRunSpan(); }

SimThread* Scheduler::PickThread() {
  if (sole_runnable_ != nullptr) {
    return sole_runnable_;
  }
  SimThread* best = nullptr;
  for (SimThread* t : threads_) {
    if (t->state_ != ThreadState::kRunnable) {
      continue;
    }
    if (best == nullptr || t->effective_priority() > best->effective_priority()) {
      best = t;
      continue;
    }
    if (t->effective_priority() == best->effective_priority()) {
      // Prefer a thread with an action in flight (it was preempted and
      // should continue); otherwise FIFO by last dispatch.
      if (t->action_in_flight_ && !best->action_in_flight_) {
        best = t;
      } else if (t->action_in_flight_ == best->action_in_flight_ &&
                 t->last_dispatch_seq_ < best->last_dispatch_seq_) {
        best = t;
      }
    }
  }
  if (runnable_ == 1 && best != nullptr) {
    sole_runnable_ = best;  // invalidated by the next runnable transition
  }
  return best;
}

bool Scheduler::EnsureAction(SimThread* t) {
  if (t->action_in_flight_) {
    return true;
  }
  ThreadAction a = t->NextAction();
  switch (a.kind) {
    case ThreadAction::Kind::kCompute:
      t->current_ = std::move(a);
      t->remaining_ = t->current_.work.cycles;
      t->action_in_flight_ = true;
      return true;
    case ThreadAction::Kind::kBlock:
      t->state_ = ThreadState::kBlocked;
      t->boost_ = 0;  // wake boosts decay when the thread blocks again
      NoteRunnableDelta(-1);
      return false;
    case ThreadAction::Kind::kFinish:
      t->state_ = ThreadState::kFinished;
      NoteRunnableDelta(-1);
      return false;
  }
  return false;
}

void Scheduler::SetBusy(bool busy) {
  if (busy == busy_) {
    return;
  }
  busy_ = busy;
  const Cycles now = queue_->now();
  for (CpuObserver* obs : observers_) {
    if (busy) {
      obs->OnCpuBusy(now);
    } else {
      obs->OnCpuIdle(now);
    }
  }
}

void Scheduler::RunUntil(Cycles until) {
  PROF_SCOPE(kSimLoop);
  // Fire anything already due.
  while (queue_->NextEventTime() <= queue_->now()) {
    queue_->RunNext();
  }

  while (queue_->now() < until) {
    const Cycles now = queue_->now();

    if (!interrupts_.empty()) {
      const Cycles horizon = std::min(until, queue_->NextEventTime());
      SetBusy(true);
      InterruptWork& iw = interrupts_.front();
      const Cycles step = std::min(iw.remaining, horizon - now);
      if (step > 0) {
        queue_->AdvanceTo(now + step);
        counters_->AccrueWork(step, iw.work.profile);
        interrupt_cycles_ += step;
        iw.remaining -= step;
        NoteRunSlice(&interrupts_, irq_track_, "irq", now, now + step);
      }
      if (iw.remaining == 0) {
        auto done = std::move(iw.on_complete);
        interrupts_.pop_front();
        if (done) {
          done();
        }
      }
    } else {
      SimThread* t = nullptr;
      {
        // Dispatch mechanics: thread selection plus the thread code run
        // inside EnsureAction/NextAction (which may itself hit the
        // app.message probe -- nesting is fine, only top-level probes
        // feed the coverage sum).
        PROF_SCOPE(kDispatch);
        while ((t = PickThread()) != nullptr) {
          if (EnsureAction(t)) {
            break;
          }
        }
      }
      if (!interrupts_.empty()) {
        // Thread code run inside EnsureAction (NextAction) queued interrupt
        // work (e.g. a buffer-cache hit completing as it blocked); that
        // work runs before anything else.
        continue;
      }
      if (t != nullptr) {
        // Recompute the horizon: EnsureAction ran thread code (NextAction)
        // that may have scheduled earlier events (e.g. SetTimer).
        const Cycles horizon = std::min(until, queue_->NextEventTime());
        t->last_dispatch_seq_ = ++dispatch_seq_;
        const bool idle = t->IsIdleThread();
        SetBusy(!idle);
        const Cycles step = std::min(t->remaining_, horizon - now);
        if (step > 0) {
          queue_->AdvanceTo(now + step);
          counters_->AccrueWork(step, t->current_.work.profile);
          if (idle) {
            idle_thread_cycles_ += step;
          } else {
            busy_thread_cycles_ += step;
          }
          t->remaining_ -= step;
          NoteRunSlice(t, cpu_track_, idle ? std::string_view() : std::string_view(t->name()),
                       now, now + step);
          const Cycles stride = t->current_.stride;
          if (stride > 0 && t->current_.on_stride) {
            // Report stride boundaries of cumulative work crossed by this
            // slice, stamped where the work actually crossed them (work
            // advances 1:1 with time inside a slice), so strided actions
            // stay exact under preemption.
            const Cycles done_after = t->current_.work.cycles - t->remaining_;
            const Cycles done_before = done_after - step;
            const Cycles first_k = done_before / stride + 1;
            const Cycles last_k = done_after / stride;
            if (last_k >= first_k) {
              t->current_.on_stride(now + (first_k * stride - done_before), stride,
                                    static_cast<std::uint64_t>(last_k - first_k + 1));
            }
          }
        }
        if (t->remaining_ == 0) {
          t->action_in_flight_ = false;
          if (t->current_.on_complete) {
            t->current_.on_complete();
          }
        }
      } else {
        // Nothing runnable: the CPU is architecturally idle until the next
        // timed event.  Re-read the event time: blocking threads may have
        // scheduled wake-ups while we were picking.
        SetBusy(false);
        if (queue_->NextEventTime() > until) {
          queue_->AdvanceTo(until);
          break;
        }
        queue_->RunNext();
      }
    }

    // Fire everything that became due.
    while (queue_->NextEventTime() <= queue_->now()) {
      queue_->RunNext();
    }
  }
}

}  // namespace ilat
