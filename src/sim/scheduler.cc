#include "src/sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ilat {

void Scheduler::AddThread(SimThread* t) {
  assert(t != nullptr);
  threads_.push_back(t);
}

void Scheduler::Wake(SimThread* t, int boost) {
  if (t->state_ == ThreadState::kBlocked) {
    t->state_ = ThreadState::kRunnable;
  }
  // Boosts do not stack; the largest pending boost wins and decays when
  // the thread next blocks.
  t->boost_ = std::max(t->boost_, boost);
}

void Scheduler::QueueInterrupt(Work w, std::function<void()> on_complete) {
  counters_->Add(HwEvent::kInterrupts, 1);
  interrupts_.push_back(InterruptWork{w, w.cycles, std::move(on_complete)});
}

SimThread* Scheduler::PickThread() {
  SimThread* best = nullptr;
  for (SimThread* t : threads_) {
    if (t->state_ != ThreadState::kRunnable) {
      continue;
    }
    if (best == nullptr || t->effective_priority() > best->effective_priority()) {
      best = t;
      continue;
    }
    if (t->effective_priority() == best->effective_priority()) {
      // Prefer a thread with an action in flight (it was preempted and
      // should continue); otherwise FIFO by last dispatch.
      if (t->action_in_flight_ && !best->action_in_flight_) {
        best = t;
      } else if (t->action_in_flight_ == best->action_in_flight_ &&
                 t->last_dispatch_seq_ < best->last_dispatch_seq_) {
        best = t;
      }
    }
  }
  return best;
}

bool Scheduler::EnsureAction(SimThread* t) {
  if (t->action_in_flight_) {
    return true;
  }
  ThreadAction a = t->NextAction();
  switch (a.kind) {
    case ThreadAction::Kind::kCompute:
      t->current_ = std::move(a);
      t->remaining_ = t->current_.work.cycles;
      t->action_in_flight_ = true;
      return true;
    case ThreadAction::Kind::kBlock:
      t->state_ = ThreadState::kBlocked;
      t->boost_ = 0;  // wake boosts decay when the thread blocks again
      return false;
    case ThreadAction::Kind::kFinish:
      t->state_ = ThreadState::kFinished;
      return false;
  }
  return false;
}

void Scheduler::SetBusy(bool busy) {
  if (busy == busy_) {
    return;
  }
  busy_ = busy;
  const Cycles now = queue_->now();
  for (CpuObserver* obs : observers_) {
    if (busy) {
      obs->OnCpuBusy(now);
    } else {
      obs->OnCpuIdle(now);
    }
  }
}

void Scheduler::RunUntil(Cycles until) {
  // Fire anything already due.
  while (queue_->NextEventTime() <= queue_->now()) {
    queue_->RunNext();
  }

  while (queue_->now() < until) {
    const Cycles now = queue_->now();

    if (!interrupts_.empty()) {
      const Cycles horizon = std::min(until, queue_->NextEventTime());
      SetBusy(true);
      InterruptWork& iw = interrupts_.front();
      const Cycles step = std::min(iw.remaining, horizon - now);
      if (step > 0) {
        queue_->AdvanceTo(now + step);
        counters_->AccrueWork(step, iw.work.profile);
        interrupt_cycles_ += step;
        iw.remaining -= step;
      }
      if (iw.remaining == 0) {
        auto done = std::move(iw.on_complete);
        interrupts_.pop_front();
        if (done) {
          done();
        }
      }
    } else {
      SimThread* t = nullptr;
      while ((t = PickThread()) != nullptr) {
        if (EnsureAction(t)) {
          break;
        }
      }
      if (!interrupts_.empty()) {
        // Thread code run inside EnsureAction (NextAction) queued interrupt
        // work (e.g. a buffer-cache hit completing as it blocked); that
        // work runs before anything else.
        continue;
      }
      if (t != nullptr) {
        // Recompute the horizon: EnsureAction ran thread code (NextAction)
        // that may have scheduled earlier events (e.g. SetTimer).
        const Cycles horizon = std::min(until, queue_->NextEventTime());
        t->last_dispatch_seq_ = ++dispatch_seq_;
        const bool idle = t->IsIdleThread();
        SetBusy(!idle);
        const Cycles step = std::min(t->remaining_, horizon - now);
        if (step > 0) {
          queue_->AdvanceTo(now + step);
          counters_->AccrueWork(step, t->current_.work.profile);
          if (idle) {
            idle_thread_cycles_ += step;
          } else {
            busy_thread_cycles_ += step;
          }
          t->remaining_ -= step;
        }
        if (t->remaining_ == 0) {
          t->action_in_flight_ = false;
          if (t->current_.on_complete) {
            t->current_.on_complete();
          }
        }
      } else {
        // Nothing runnable: the CPU is architecturally idle until the next
        // timed event.  Re-read the event time: blocking threads may have
        // scheduled wake-ups while we were picking.
        SetBusy(false);
        if (queue_->NextEventTime() > until) {
          queue_->AdvanceTo(until);
          break;
        }
        queue_->RunNext();
      }
    }

    // Fire everything that became due.
    while (queue_->NextEventTime() <= queue_->now()) {
      queue_->RunNext();
    }
  }
}

}  // namespace ilat
