#include "src/sim/hardware_counters.h"

#include <cmath>

namespace ilat {

std::string_view HwEventName(HwEvent e) {
  switch (e) {
    case HwEvent::kInstructions:
      return "instructions";
    case HwEvent::kDataRefs:
      return "data_refs";
    case HwEvent::kItlbMiss:
      return "itlb_miss";
    case HwEvent::kDtlbMiss:
      return "dtlb_miss";
    case HwEvent::kSegmentLoads:
      return "segment_loads";
    case HwEvent::kUnalignedAccess:
      return "unaligned_access";
    case HwEvent::kInterrupts:
      return "interrupts";
    case HwEvent::kCount:
      break;
  }
  return "unknown";
}

void HardwareCounters::AccrueWork(Cycles cycles, const WorkProfile& p) {
  const double instr = p.InstructionsForCycles(cycles);
  const double kinstr = instr / 1000.0;

  const auto accrue = [this](HwEvent e, double amount) {
    const int i = static_cast<int>(e);
    residue_[i] += amount;
    const double whole = std::floor(residue_[i]);
    if (whole > 0) {
      counts_.counts[i] += static_cast<std::uint64_t>(whole);
      residue_[i] -= whole;
    }
  };

  accrue(HwEvent::kInstructions, instr);
  accrue(HwEvent::kDataRefs, instr * p.data_refs_per_instr);
  accrue(HwEvent::kItlbMiss, kinstr * p.itlb_miss_per_kinstr);
  accrue(HwEvent::kDtlbMiss, kinstr * p.dtlb_miss_per_kinstr);
  accrue(HwEvent::kSegmentLoads, kinstr * p.seg_loads_per_kinstr);
  accrue(HwEvent::kUnalignedAccess, kinstr * p.unaligned_per_kinstr);
}

std::uint64_t HardwareCounters::Get(HwEvent e) const { return counts_[e]; }

HwCounts HardwareCounters::Snapshot() const { return counts_; }

void HardwareCounters::Reset() {
  counts_ = HwCounts{};
  residue_ = {};
}

}  // namespace ilat
