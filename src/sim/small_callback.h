// A small-buffer-optimised move-only callable, for the event-queue hot
// path.
//
// std::function costs a heap allocation for any capture larger than its
// (implementation-defined, typically 16-byte) inline buffer, and the
// simulator schedules ~a million events per session whose lambdas capture
// `this` plus a few values.  SmallCallback inlines captures up to
// kInlineBytes (64) directly in the owning container -- the EventQueue's
// slot array -- so the common case does no allocation at all.  Larger or
// over-aligned callables fall back to a single heap allocation, so nothing
// is lost besides speed.
//
// Move-only by design: event callbacks are consumed exactly once, and a
// copyable wrapper would force every capture to be copyable.

#ifndef ILAT_SRC_SIM_SMALL_CALLBACK_H_
#define ILAT_SRC_SIM_SMALL_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ilat {

class SmallCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallCallback>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { MoveFrom(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // Destroy the held callable (releasing any heap fallback) and become
  // empty.  Cancelling an event calls this immediately so cancelled
  // entries hold no capture memory while they wait to be compacted.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*move)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* s) { (*reinterpret_cast<Fn*>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn(std::move(*reinterpret_cast<Fn*>(from)));
        reinterpret_cast<Fn*>(from)->~Fn();
      },
      [](unsigned char* s) { reinterpret_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  void MoveFrom(SmallCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_SMALL_CALLBACK_H_
