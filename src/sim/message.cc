#include "src/sim/message.h"

namespace ilat {

std::string_view MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kKeyDown:
      return "WM_KEYDOWN";
    case MessageType::kChar:
      return "WM_CHAR";
    case MessageType::kKeyUp:
      return "WM_KEYUP";
    case MessageType::kMouseMove:
      return "WM_MOUSEMOVE";
    case MessageType::kMouseDown:
      return "WM_LBUTTONDOWN";
    case MessageType::kMouseUp:
      return "WM_LBUTTONUP";
    case MessageType::kTimer:
      return "WM_TIMER";
    case MessageType::kPaint:
      return "WM_PAINT";
    case MessageType::kCommand:
      return "WM_COMMAND";
    case MessageType::kSocket:
      return "WM_SOCKET";
    case MessageType::kQueueSync:
      return "WM_QUEUESYNC";
    case MessageType::kQuit:
      return "WM_QUIT";
  }
  return "WM_UNKNOWN";
}

}  // namespace ilat
