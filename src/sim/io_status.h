// Completion status for asynchronous I/O in the simulated machine.
//
// Historically every I/O completion callback was a plain `void()` -- the
// disk could not fail.  The fault-injection layer (src/fault/) makes
// failure a first-class outcome, so completion callbacks now carry an
// IoStatus.  Call sites that do not care (most tests, cache fills that
// cannot fail without injection) can keep passing no-arg callables via
// the back-compat overloads on Disk / BufferCache / FileSystem.

#ifndef ILAT_SRC_SIM_IO_STATUS_H_
#define ILAT_SRC_SIM_IO_STATUS_H_

#include <functional>
#include <utility>

namespace ilat {

enum class IoStatus {
  kOk,
  kFailed,  // transient retries exhausted, or the device failed permanently
};

using IoCallback = std::function<void(IoStatus)>;

// Adapt a status-blind callback to the IoCallback signature.
inline IoCallback IgnoreIoStatus(std::function<void()> done) {
  return [done = std::move(done)](IoStatus) {
    if (done) {
      done();
    }
  };
}

}  // namespace ilat

#endif  // ILAT_SRC_SIM_IO_STATUS_H_
