// Simulated threads.
//
// A SimThread is a generator of actions: each time the scheduler needs to
// know what a thread does next, it calls NextAction().  Actions are either
// a quantum of work (which the scheduler may preempt and resume), a block
// (the thread parks until something calls Scheduler::Wake on it), or exit.
//
// This inversion -- threads describe work, the scheduler executes it --
// keeps preemption, interrupt stealing, and counter accrual in exactly one
// place, which is essential for the idle-loop methodology: elongated idle
// samples *are* the preemption bookkeeping.

#ifndef ILAT_SRC_SIM_THREAD_H_
#define ILAT_SRC_SIM_THREAD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/work.h"

namespace ilat {

enum class ThreadState {
  kRunnable,
  kBlocked,
  kFinished,
};

struct ThreadAction {
  enum class Kind {
    kCompute,  // execute `work`, then call on_complete
    kBlock,    // park until woken
    kFinish,   // thread exits
  };

  Kind kind = Kind::kBlock;
  Work work;
  // Runs when the work quantum fully completes (not on preemption).
  std::function<void()> on_complete;

  // Optional progress strides: when stride > 0, the scheduler reports
  // every crossing of a stride-cycle boundary of *cumulative executed
  // work* via on_stride(first_boundary_time, stride, boundary_count),
  // batched per executed slice.  Boundary times are exact even across
  // preemption and truncated RunUntil windows (work progresses 1:1 with
  // simulated time within a slice), so a strided action of N*stride
  // cycles is observationally identical to N back-to-back Compute
  // actions of stride cycles each -- that equivalence is what lets the
  // idle-loop instrument batch its passes (see src/core/idle_loop.h).
  // The callback runs inside the scheduler's slice bookkeeping: it must
  // not wake threads, schedule events, or otherwise mutate scheduler
  // state (appending to buffers and bumping metrics is fine).
  Cycles stride = 0;
  std::function<void(Cycles first, Cycles stride, std::uint64_t count)> on_stride;

  static ThreadAction Compute(Work w, std::function<void()> done = nullptr) {
    ThreadAction a;
    a.kind = Kind::kCompute;
    a.work = w;
    a.on_complete = std::move(done);
    return a;
  }

  static ThreadAction ComputeStrided(
      Work w, Cycles stride,
      std::function<void(Cycles, Cycles, std::uint64_t)> on_stride,
      std::function<void()> done = nullptr) {
    ThreadAction a;
    a.kind = Kind::kCompute;
    a.work = w;
    a.stride = stride;
    a.on_stride = std::move(on_stride);
    a.on_complete = std::move(done);
    return a;
  }

  static ThreadAction Block() {
    ThreadAction a;
    a.kind = Kind::kBlock;
    return a;
  }

  static ThreadAction Finish() {
    ThreadAction a;
    a.kind = Kind::kFinish;
    return a;
  }
};

class SimThread {
 public:
  // `priority`: higher runs first.  Priority 0 is reserved for the idle
  // instrument; the scheduler treats time spent there as idle time.
  SimThread(std::string name, int priority)
      : name_(std::move(name)), priority_(priority) {}
  virtual ~SimThread() = default;

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // Asked by the scheduler whenever the thread has no action in flight.
  virtual ThreadAction NextAction() = 0;

  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  // Base priority plus any wake boost (Windows NT temporarily boosts a
  // thread's priority when it wakes for window input or I/O completion,
  // which is what keeps interactive threads responsive beside
  // equal-priority batch work).
  int effective_priority() const { return priority_ + boost_; }
  int boost() const { return boost_; }
  ThreadState state() const { return state_; }

  // A thread whose execution counts as idle time (the idle-loop
  // instrument).  Defaults to priority == 0.
  virtual bool IsIdleThread() const { return priority_ == 0; }

 private:
  friend class Scheduler;

  std::string name_;
  int priority_;

  // Scheduler-managed state.
  int boost_ = 0;
  ThreadState state_ = ThreadState::kRunnable;
  bool action_in_flight_ = false;
  ThreadAction current_;
  Cycles remaining_ = 0;
  std::uint64_t last_dispatch_seq_ = 0;
};

}  // namespace ilat

#endif  // ILAT_SRC_SIM_THREAD_H_
