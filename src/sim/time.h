// Time units for the simulated machine.
//
// The simulated processor is a 100 MHz Pentium-class CPU, matching the
// testbed of Endo et al. (OSDI '96).  All simulation time is kept in CPU
// cycles (10 ns each); helpers convert to and from wall-clock units.

#ifndef ILAT_SRC_SIM_TIME_H_
#define ILAT_SRC_SIM_TIME_H_

#include <cstdint>
#include <limits>

namespace ilat {

// A point in time or a duration, in CPU cycles.
using Cycles = std::int64_t;

// Clock rate of the simulated CPU (100 MHz Pentium).
inline constexpr std::int64_t kCpuHz = 100'000'000;

// Cycles per common wall-clock units.
inline constexpr Cycles kCyclesPerSecond = kCpuHz;
inline constexpr Cycles kCyclesPerMillisecond = kCpuHz / 1'000;
inline constexpr Cycles kCyclesPerMicrosecond = kCpuHz / 1'000'000;

// Sentinel "no event scheduled" time.
inline constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

constexpr Cycles SecondsToCycles(double s) {
  return static_cast<Cycles>(s * static_cast<double>(kCyclesPerSecond));
}

constexpr Cycles MillisecondsToCycles(double ms) {
  return static_cast<Cycles>(ms * static_cast<double>(kCyclesPerMillisecond));
}

constexpr Cycles MicrosecondsToCycles(double us) {
  return static_cast<Cycles>(us * static_cast<double>(kCyclesPerMicrosecond));
}

constexpr double CyclesToSeconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerSecond);
}

constexpr double CyclesToMilliseconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerMillisecond);
}

constexpr double CyclesToMicroseconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerMicrosecond);
}

}  // namespace ilat

#endif  // ILAT_SRC_SIM_TIME_H_
