#include "src/sim/simulation.h"

namespace ilat {

Simulation::Simulation(std::uint64_t seed)
    : scheduler_(&queue_, &counters_, &tracer_), random_(seed), io_(&queue_) {
  tracer_.SetClock(&queue_);
}

void Simulation::ConfigureStorage(DiskParams params, Work disk_isr_work, int cache_blocks,
                                  Work cache_hit_copy_work) {
  disk_ = std::make_unique<Disk>(&queue_, &scheduler_, &random_, params, disk_isr_work,
                                 &tracer_);
  cache_ = std::make_unique<BufferCache>(disk_.get(), &scheduler_, cache_blocks,
                                         cache_hit_copy_work);
}

}  // namespace ilat
