// gnuplot script export: one self-contained .gp per figure, reading the
// CSVs written by csv.h.  Optional convenience -- the ASCII renderings are
// the primary output.

#ifndef ILAT_SRC_VIZ_GNUPLOT_H_
#define ILAT_SRC_VIZ_GNUPLOT_H_

#include <string>
#include <vector>

namespace ilat {

struct GnuplotSeries {
  std::string csv_path;
  std::string title;
  // gnuplot style, e.g. "with impulses", "with lines", "with boxes".
  std::string style = "with lines";
  int x_column = 1;
  int y_column = 2;
};

struct GnuplotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_y = false;
  std::string output_png;  // empty: interactive terminal
};

bool WriteGnuplotScript(const std::string& path, const std::vector<GnuplotSeries>& series,
                        const GnuplotOptions& opts);

}  // namespace ilat

#endif  // ILAT_SRC_VIZ_GNUPLOT_H_
