#include "src/viz/csv.h"

#include <cstdio>
#include <fstream>

#include "src/sim/message.h"

namespace ilat {

bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      out << cells[i];
    }
    out << '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    emit(row);
  }
  return static_cast<bool>(out);
}

namespace {

std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

bool WriteEventsCsv(const std::string& path, const std::vector<EventRecord>& events) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(events.size());
  for (const EventRecord& e : events) {
    rows.push_back({Fmt(CyclesToSeconds(e.start)), Fmt(e.latency_ms()),
                    Fmt(CyclesToMilliseconds(e.retry_wait)), Fmt(e.wall_ms()),
                    std::string(MessageTypeName(e.type)), e.label});
  }
  return WriteCsv(path, {"start_s", "latency_ms", "retry_ms", "wall_ms", "type", "label"}, rows);
}

bool WriteUtilizationCsv(const std::string& path,
                         const std::vector<BusyProfile::UtilPoint>& points) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    rows.push_back({Fmt(CyclesToSeconds(p.t)), Fmt(p.utilization)});
  }
  return WriteCsv(path, {"t_s", "utilization"}, rows);
}

bool WriteCurveCsv(const std::string& path, const std::vector<CurvePoint>& points) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    rows.push_back({Fmt(p.x), Fmt(p.y)});
  }
  return WriteCsv(path, {"x", "y"}, rows);
}

}  // namespace ilat
