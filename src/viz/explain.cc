#include "src/viz/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/viz/table.h"

namespace ilat {

namespace {

std::string Ms(Cycles c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", CyclesToMilliseconds(c));
  return buf;
}

struct Overlap {
  const obs::TraceEvent* span;
  Cycles overlap;
};

}  // namespace

std::string ExplainLatencyReport(const std::vector<EventRecord>& events,
                                 const obs::TraceData& trace, const ExplainOptions& opts) {
  std::vector<const EventRecord*> slow;
  for (const EventRecord& e : events) {
    if (e.latency_ms() >= opts.threshold_ms) {
      slow.push_back(&e);
    }
  }
  if (slow.empty()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "explain: no event at or above %.1f ms\n",
                  opts.threshold_ms);
    return buf;
  }
  std::stable_sort(slow.begin(), slow.end(), [](const EventRecord* a, const EventRecord* b) {
    return a->latency() > b->latency();
  });
  if (static_cast<int>(slow.size()) > opts.max_events) {
    slow.resize(static_cast<std::size_t>(opts.max_events));
  }

  // Injected faults are instant events on the "fault" track; collect them
  // once so each slow event can list the injections inside its window.
  std::vector<const obs::TraceEvent*> fault_instants;
  for (const obs::TraceEvent& s : trace.events) {
    if (s.phase == obs::Phase::kInstant &&
        std::string_view(trace.TrackName(s.track)) == "fault") {
      fault_instants.push_back(&s);
    }
  }

  std::string out;
  for (const EventRecord* e : slow) {
    out += "event #" + std::to_string(e->msg_seq) + " \"" + e->label +
           "\": latency " + Ms(e->latency()) + " ms (busy " + Ms(e->busy) + ", io " +
           Ms(e->io_wait) + ", retry " + Ms(e->retry_wait) + ", queue-delay " +
           Ms(e->queue_delay()) + "), window [" + Ms(e->start) + ", " + Ms(e->end) + "] ms\n";

    if (!fault_instants.empty()) {
      std::map<std::string, int> in_window;  // ordered -> deterministic output
      for (const obs::TraceEvent* f : fault_instants) {
        if (f->ts >= e->start && f->ts <= e->end) {
          ++in_window[f->name];
        }
      }
      if (!in_window.empty()) {
        out += "  injected faults in window:";
        for (const auto& [name, count] : in_window) {
          out += " " + name + " x" + std::to_string(count);
        }
        out += "\n";
      }
    }

    // Rank complete spans by time overlapped with the event window.  The
    // user-state band ("state" category) restates the event itself, so it
    // is excluded.
    std::vector<Overlap> overlaps;
    for (const obs::TraceEvent& s : trace.events) {
      if (s.phase != obs::Phase::kComplete) {
        continue;
      }
      if (s.category != nullptr && std::string_view(s.category) == "state") {
        continue;
      }
      const Cycles lo = std::max(s.ts, e->start);
      const Cycles hi = std::min(s.ts + s.dur, e->end);
      if (hi > lo) {
        overlaps.push_back(Overlap{&s, hi - lo});
      }
    }
    std::stable_sort(overlaps.begin(), overlaps.end(), [](const Overlap& a, const Overlap& b) {
      return a.overlap > b.overlap;
    });
    if (static_cast<int>(overlaps.size()) > opts.top_n) {
      overlaps.resize(static_cast<std::size_t>(opts.top_n));
    }

    if (overlaps.empty()) {
      out += "  (no overlapping trace spans -- was the session run with collect_trace?)\n";
      continue;
    }
    TextTable t({"track", "span", "overlap_ms", "span_ms", "at_ms"});
    for (const Overlap& o : overlaps) {
      t.AddRow({std::string(trace.TrackName(o.span->track)), o.span->name, Ms(o.overlap),
                Ms(o.span->dur), Ms(o.span->ts)});
    }
    out += t.ToString();
  }
  return out;
}

}  // namespace ilat
