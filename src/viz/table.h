// Aligned plain-text tables for bench/example output.

#ifndef ILAT_SRC_VIZ_TABLE_H_
#define ILAT_SRC_VIZ_TABLE_H_

#include <string>
#include <vector>

namespace ilat {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Row cells; missing cells render empty, extras are dropped.
  void AddRow(std::vector<std::string> cells);

  // Convenience: format a double with `precision` decimals.
  static std::string Num(double v, int precision = 3);

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ilat

#endif  // ILAT_SRC_VIZ_TABLE_H_
