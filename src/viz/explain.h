// "Explain this latency": join extracted events against the structured
// trace.
//
// The paper's methodology tells you *which* events were slow; the
// structured trace records what the machine was doing.  This report joins
// the two: for each above-threshold event it ranks the trace spans that
// overlap the event's wall-clock window by overlapped time, so a slow
// document-open decomposes into "disk read 48 ms, word dispatch 31 ms,
// irq 2 ms" at a glance.

#ifndef ILAT_SRC_VIZ_EXPLAIN_H_
#define ILAT_SRC_VIZ_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/core/event_extractor.h"
#include "src/obs/trace.h"

namespace ilat {

struct ExplainOptions {
  // Only events at least this slow are explained.
  double threshold_ms = 100.0;
  // Top-N overlapping spans reported per event.
  int top_n = 5;
  // Cap on explained events (slowest first).
  int max_events = 20;
};

// Render the report.  Returns a short note instead of a table when no
// event clears the threshold or the trace is empty.
std::string ExplainLatencyReport(const std::vector<EventRecord>& events,
                                 const obs::TraceData& trace, const ExplainOptions& opts = {});

}  // namespace ilat

#endif  // ILAT_SRC_VIZ_EXPLAIN_H_
