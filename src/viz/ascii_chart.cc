#include "src/viz/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ilat {

namespace {

std::string Header(const ChartOptions& opts, double ymax, double xmin, double xmax) {
  std::ostringstream out;
  if (!opts.title.empty()) {
    out << opts.title << '\n';
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "y: %s (max %.3g)%s   x: %s [%.3g .. %.3g]\n",
                opts.y_label.empty() ? "value" : opts.y_label.c_str(), ymax,
                opts.log_y ? " [log]" : "", opts.x_label.empty() ? "x" : opts.x_label.c_str(),
                xmin, xmax);
  out << buf;
  return out.str();
}

// Renders a grid where column heights are in `heights` (0..opts.height).
std::string RenderGrid(const std::vector<int>& heights, int height) {
  std::ostringstream out;
  for (int row = height; row >= 1; --row) {
    out << '|';
    for (int h : heights) {
      out << (h >= row ? '#' : ' ');
    }
    out << '\n';
  }
  out << '+' << std::string(heights.size(), '-') << '\n';
  return out.str();
}

double ScaleY(double v, double ymax, bool log_y) {
  if (ymax <= 0.0 || v <= 0.0) {
    return 0.0;
  }
  if (log_y) {
    return std::log10(1.0 + v) / std::log10(1.0 + ymax);
  }
  return v / ymax;
}

std::string RenderXY(const std::vector<CurvePoint>& points, const ChartOptions& opts,
                     bool fill_between) {
  if (points.empty()) {
    return opts.title + "\n(no data)\n";
  }
  double xmin = points.front().x, xmax = points.front().x, ymax = 0.0;
  for (const CurvePoint& p : points) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymax = std::max(ymax, p.y);
  }
  const double xspan = std::max(1e-12, xmax - xmin);

  std::vector<double> colmax(static_cast<std::size_t>(opts.width), 0.0);
  std::vector<bool> seen(static_cast<std::size_t>(opts.width), false);
  for (const CurvePoint& p : points) {
    int col = static_cast<int>((p.x - xmin) / xspan * (opts.width - 1));
    col = std::clamp(col, 0, opts.width - 1);
    colmax[static_cast<std::size_t>(col)] =
        std::max(colmax[static_cast<std::size_t>(col)], p.y);
    seen[static_cast<std::size_t>(col)] = true;
  }
  if (fill_between) {
    // Carry the last seen value across empty columns (monotone curves).
    double last = 0.0;
    for (int c = 0; c < opts.width; ++c) {
      if (seen[static_cast<std::size_t>(c)]) {
        last = colmax[static_cast<std::size_t>(c)];
      } else {
        colmax[static_cast<std::size_t>(c)] = last;
      }
    }
  }

  std::vector<int> heights;
  heights.reserve(colmax.size());
  for (double v : colmax) {
    heights.push_back(static_cast<int>(std::round(ScaleY(v, ymax, opts.log_y) * opts.height)));
  }

  std::ostringstream out;
  out << Header(opts, ymax, xmin, xmax);
  out << RenderGrid(heights, opts.height);
  return out.str();
}

}  // namespace

std::string RenderSeries(const std::vector<CurvePoint>& points, const ChartOptions& opts) {
  return RenderXY(points, opts, /*fill_between=*/false);
}

std::string RenderCurve(const std::vector<CurvePoint>& points, const ChartOptions& opts) {
  return RenderXY(points, opts, /*fill_between=*/true);
}

std::string RenderHistogram(const Histogram& h, const ChartOptions& opts) {
  std::ostringstream out;
  if (!opts.title.empty()) {
    out << opts.title << '\n';
  }
  std::uint64_t cmax = 0;
  for (const auto& b : h.bins()) {
    cmax = std::max(cmax, b.count);
  }
  const int bar_width = 50;
  for (const auto& b : h.bins()) {
    if (b.count == 0) {
      continue;
    }
    const double frac = ScaleY(static_cast<double>(b.count), static_cast<double>(cmax),
                               opts.log_y);
    char label[64];
    if (std::isinf(b.hi)) {
      std::snprintf(label, sizeof(label), ">=%-9.4g", b.lo);
    } else {
      std::snprintf(label, sizeof(label), "%8.4g-%-8.4g", b.lo, b.hi);
    }
    out << label << ' ' << std::string(static_cast<std::size_t>(frac * bar_width), '#')
        << ' ' << b.count << '\n';
  }
  return out.str();
}

std::string RenderBars(const std::vector<NamedValue>& values, const ChartOptions& opts) {
  std::ostringstream out;
  if (!opts.title.empty()) {
    out << opts.title << '\n';
  }
  double vmax = 0.0;
  std::size_t name_w = 0;
  for (const NamedValue& nv : values) {
    vmax = std::max(vmax, nv.value);
    name_w = std::max(name_w, nv.name.size());
  }
  const int bar_width = 50;
  for (const NamedValue& nv : values) {
    const double frac = vmax > 0.0 ? nv.value / vmax : 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %.4g", nv.value);
    out << nv.name << std::string(name_w - nv.name.size(), ' ') << " |"
        << std::string(static_cast<std::size_t>(frac * bar_width), '#') << buf << '\n';
  }
  return out.str();
}

}  // namespace ilat
