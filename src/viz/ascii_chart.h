// ASCII renderings of the paper's graphical representations (§3.2):
// event-latency time series (Figs. 5, 12), CPU utilization profiles
// (Figs. 3, 4), latency histograms and cumulative curves (Figs. 7, 8, 11),
// and simple labelled bar charts (Figs. 6, 9, 10).

#ifndef ILAT_SRC_VIZ_ASCII_CHART_H_
#define ILAT_SRC_VIZ_ASCII_CHART_H_

#include <string>
#include <vector>

#include "src/analysis/cumulative.h"
#include "src/analysis/histogram.h"

namespace ilat {

struct ChartOptions {
  int width = 78;
  int height = 16;
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_y = false;
};

// Scatter/impulse plot of (x, y) points: each point becomes a vertical
// bar of height proportional to y (the paper's raw-data representation).
std::string RenderSeries(const std::vector<CurvePoint>& points, const ChartOptions& opts);

// Connected monotone curve (for cumulative plots).
std::string RenderCurve(const std::vector<CurvePoint>& points, const ChartOptions& opts);

// Histogram bins as labelled bars; log-scale counts if opts.log_y.
std::string RenderHistogram(const Histogram& h, const ChartOptions& opts);

// Horizontal bar chart of named values.
struct NamedValue {
  std::string name;
  double value = 0.0;
};
std::string RenderBars(const std::vector<NamedValue>& values, const ChartOptions& opts);

}  // namespace ilat

#endif  // ILAT_SRC_VIZ_ASCII_CHART_H_
