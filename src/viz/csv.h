// CSV export for offline plotting.

#ifndef ILAT_SRC_VIZ_CSV_H_
#define ILAT_SRC_VIZ_CSV_H_

#include <string>
#include <vector>

#include "src/analysis/cumulative.h"
#include "src/core/busy_profile.h"
#include "src/core/event_extractor.h"

namespace ilat {

// Write rows of comma-joined cells (first row = header).  Returns false on
// I/O failure.
bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

// Event records: start_s, latency_ms, wall_ms, type, label.
bool WriteEventsCsv(const std::string& path, const std::vector<EventRecord>& events);

// Utilization samples: t_s, utilization.
bool WriteUtilizationCsv(const std::string& path,
                         const std::vector<BusyProfile::UtilPoint>& points);

// Generic curve: x, y.
bool WriteCurveCsv(const std::string& path, const std::vector<CurvePoint>& points);

}  // namespace ilat

#endif  // ILAT_SRC_VIZ_CSV_H_
