// SystemUnderTest: a booted simulated machine running one OS personality.
//
// Owns the Simulation, the Win32 cost model, the file system, the clock
// device, and the personality's background tasks.  Applications and the
// measurement toolkit attach to this.

#ifndef ILAT_SRC_OS_SYSTEM_H_
#define ILAT_SRC_OS_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/os/filesystem.h"
#include "src/os/os_profile.h"
#include "src/os/win32.h"
#include "src/sim/interrupts.h"
#include "src/sim/simulation.h"

namespace ilat {

class SystemUnderTest {
 public:
  explicit SystemUnderTest(OsProfile profile, std::uint64_t seed = 1);

  // Start the clock device and background tasks.  Idempotent.
  void Boot();

  const OsProfile& profile() const { return profile_; }
  Simulation& sim() { return sim_; }
  Win32Subsystem& win32() { return win32_; }
  FileSystem& fs() { return *fs_; }

  // Deliver a hardware input interrupt whose handler runs `isr_cycles` of
  // kernel work and then invokes `deliver` (typically: post a message).
  void RaiseInputInterrupt(Cycles isr_cycles, std::function<void()> deliver);

  void RaiseKeyboardInterrupt(std::function<void()> deliver) {
    RaiseInputInterrupt(profile_.keyboard_isr_cycles, std::move(deliver));
  }
  void RaiseMouseInterrupt(std::function<void()> deliver) {
    RaiseInputInterrupt(profile_.mouse_isr_cycles, std::move(deliver));
  }

 private:
  OsProfile profile_;
  Simulation sim_;
  Win32Subsystem win32_;
  std::unique_ptr<FileSystem> fs_;
  std::vector<std::unique_ptr<PeriodicDevice>> devices_;
  bool booted_ = false;
};

}  // namespace ilat

#endif  // ILAT_SRC_OS_SYSTEM_H_
