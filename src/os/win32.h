// Win32 subsystem cost model.
//
// Translates OsProfile parameters into concrete Work quanta and hardware
// counter side effects for the operations applications perform: message
// retrieval and dispatch, GUI calls, application computation, and the
// scripted driver's WM_QUEUESYNC handling.
//
// GUI work comes in two classes with separate per-OS path multipliers:
//   * text work  -- 2D text/bitblt drawing.  Windows 95's 16-bit GDI is
//     hand-tuned and *shorter* than NT's path (the paper's Fig. 7 shows
//     Windows 95 with the smallest cumulative Notepad latency), while
//     NT 3.51's user-level server inflates it.
//   * graphics work -- complex rendering (PowerPoint slides, embedded
//     charts), where 16-bit arithmetic and thunking make Windows 95 slower
//     than NT 4.0 but still faster than NT 3.51 (paper Fig. 9 ordering).

#ifndef ILAT_SRC_OS_WIN32_H_
#define ILAT_SRC_OS_WIN32_H_

#include "src/os/os_profile.h"
#include "src/sim/hardware_counters.h"
#include "src/sim/work.h"

namespace ilat {

class Win32Subsystem {
 public:
  Win32Subsystem(const OsProfile* profile, HardwareCounters* counters)
      : profile_(profile), counters_(counters) {}

  const OsProfile& profile() const { return *profile_; }

  // ---- Work quanta ----------------------------------------------------------

  // CPU cost of one GetMessage()/PeekMessage() call (base path plus domain
  // crossings).
  Work GetMessageWork() const;
  Work PeekMessageWork() const;

  // TranslateMessage/DispatchMessage path for one user-input message
  // (includes the 16-bit USER thunk on Windows 95).
  Work InputDispatchWork() const;

  // System-side handling of WM_QUEUESYNC.
  Work QueueSyncWork() const;

  // `kinstr` thousand nominal instructions of GUI work issued as `calls`
  // batched window-system calls.  Crossing and per-call costs included.
  Work GuiTextWork(double kinstr, int calls = 1) const;
  Work GuiGraphicsWork(double kinstr, int calls = 1) const;

  // Plain 32-bit application computation.
  Work AppWork(double kinstr) const;

  // Kernel-mode computation.
  Work KernelWork(double kinstr) const;

  // Work representing `n` bare domain crossings.
  Work CrossingWork(int n) const;

  // ---- Counter side effects ---------------------------------------------------
  // The TLB-refill misses caused by crossings are architectural events, not
  // rate-derived ones, so they are charged explicitly when the
  // corresponding work retires.

  void ChargeCrossings(int n) const;
  void ChargeGetMessage() const { ChargeCrossings(profile_->get_message_crossings); }
  void ChargePeekMessage() const { ChargeCrossings(profile_->peek_message_crossings); }
  void ChargeGuiCalls(int calls) const { ChargeCrossings(calls * profile_->gui_call_crossings); }

 private:
  Work GuiWorkInternal(double kinstr, double multiplier, int calls) const;

  const OsProfile* profile_;
  HardwareCounters* counters_;
};

}  // namespace ilat

#endif  // ILAT_SRC_OS_WIN32_H_
