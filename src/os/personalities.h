// The three operating-system personalities the paper compares.
//
// Calibration constants live in personalities.cc; they are chosen so that
// the reproduction benches match the *shape* of the paper's results (who
// wins, by roughly what factor, which hardware events explain the gap) on
// the simulated 100 MHz Pentium.  EXPERIMENTS.md records paper-vs-measured
// for every table and figure.

#ifndef ILAT_SRC_OS_PERSONALITIES_H_
#define ILAT_SRC_OS_PERSONALITIES_H_

#include <vector>

#include "src/os/os_profile.h"

namespace ilat {

// Windows NT 3.51: Win32 API implemented by a user-level server; GUI calls
// and message retrieval pay protection-domain crossings (TLB flushes).
OsProfile MakeNt351();

// Windows NT 4.0: Win32 server components moved into the kernel; fewer
// crossings, better locality, the new (Windows 95-style) GUI.
OsProfile MakeNt40();

// Windows 95: large 16-bit components (segment-register loads, unaligned
// accesses), fast 16-bit GDI text path, busy-wait between mouse down/up,
// more idle-time background activity, FAT file system.
OsProfile MakeWin95();

// All three, in the paper's presentation order (NT 3.51, NT 4.0, W95).
std::vector<OsProfile> AllPersonalities();

}  // namespace ilat

#endif  // ILAT_SRC_OS_PERSONALITIES_H_
