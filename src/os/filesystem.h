// Minimal extent-based file system over the buffer cache.
//
// Files are contiguous block extents separated by gaps, so reads of
// different files pay seeks while sequential reads within a file stream at
// media rate.  This is all the structure the paper's workloads need: the
// PowerPoint/Word/Notepad models read and write whole files or page-sized
// chunks.

#ifndef ILAT_SRC_OS_FILESYSTEM_H_
#define ILAT_SRC_OS_FILESYSTEM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/buffer_cache.h"

namespace ilat {

using FileId = int;

class FileSystem {
 public:
  // `cache` non-owning.  `inter_file_gap_blocks` forces a seek between
  // files laid out consecutively.
  explicit FileSystem(BufferCache* cache, std::int64_t inter_file_gap_blocks = 5'000);

  // Create a file of the given size.  Returns its id.
  FileId Create(std::string name, std::int64_t bytes);

  // Read `bytes` starting at byte `offset`; `done` fires when all blocks
  // are resident (kOk) or the underlying I/O failed (kFailed).
  void Read(FileId id, std::int64_t offset, std::int64_t bytes, IoCallback done);

  // Read the whole file.
  void ReadAll(FileId id, IoCallback done);

  // Write-through write of `bytes` at `offset`.
  void Write(FileId id, std::int64_t offset, std::int64_t bytes, IoCallback done);

  void WriteAll(FileId id, IoCallback done);

  // Back-compat: status-blind completion callbacks.
  void Read(FileId id, std::int64_t offset, std::int64_t bytes, std::function<void()> done) {
    Read(id, offset, bytes, IgnoreIoStatus(std::move(done)));
  }
  void ReadAll(FileId id, std::function<void()> done) {
    ReadAll(id, IgnoreIoStatus(std::move(done)));
  }
  void Write(FileId id, std::int64_t offset, std::int64_t bytes, std::function<void()> done) {
    Write(id, offset, bytes, IgnoreIoStatus(std::move(done)));
  }
  void WriteAll(FileId id, std::function<void()> done) {
    WriteAll(id, IgnoreIoStatus(std::move(done)));
  }

  std::int64_t SizeOf(FileId id) const;
  const std::string& NameOf(FileId id) const;
  int block_size() const { return cache_->block_size_bytes(); }

 private:
  struct Extent {
    std::string name;
    std::int64_t start_block;
    std::int64_t bytes;
  };

  std::pair<std::int64_t, int> BlockRange(FileId id, std::int64_t offset,
                                          std::int64_t bytes) const;

  BufferCache* cache_;
  std::int64_t gap_blocks_;
  std::int64_t next_block_ = 100;
  std::vector<Extent> files_;
};

}  // namespace ilat

#endif  // ILAT_SRC_OS_FILESYSTEM_H_
