#include "src/os/filesystem.h"

#include <cassert>
#include <utility>

namespace ilat {

FileSystem::FileSystem(BufferCache* cache, std::int64_t inter_file_gap_blocks)
    : cache_(cache), gap_blocks_(inter_file_gap_blocks) {}

FileId FileSystem::Create(std::string name, std::int64_t bytes) {
  const std::int64_t nblocks = (bytes + block_size() - 1) / block_size();
  Extent e{std::move(name), next_block_, bytes};
  next_block_ += nblocks + gap_blocks_;
  files_.push_back(std::move(e));
  return static_cast<FileId>(files_.size() - 1);
}

std::pair<std::int64_t, int> FileSystem::BlockRange(FileId id, std::int64_t offset,
                                                    std::int64_t bytes) const {
  assert(id >= 0 && id < static_cast<FileId>(files_.size()));
  const Extent& e = files_[id];
  assert(offset >= 0 && offset + bytes <= ((e.bytes + block_size() - 1) / block_size()) *
                                              static_cast<std::int64_t>(block_size()));
  const std::int64_t first = e.start_block + offset / block_size();
  const std::int64_t last = e.start_block + (offset + bytes - 1) / block_size();
  return {first, static_cast<int>(last - first + 1)};
}

void FileSystem::Read(FileId id, std::int64_t offset, std::int64_t bytes, IoCallback done) {
  if (bytes <= 0) {
    done(IoStatus::kOk);
    return;
  }
  const auto [first, nblocks] = BlockRange(id, offset, bytes);
  cache_->Read(first, nblocks, std::move(done));
}

void FileSystem::ReadAll(FileId id, IoCallback done) {
  Read(id, 0, files_[id].bytes, std::move(done));
}

void FileSystem::Write(FileId id, std::int64_t offset, std::int64_t bytes, IoCallback done) {
  if (bytes <= 0) {
    done(IoStatus::kOk);
    return;
  }
  const auto [first, nblocks] = BlockRange(id, offset, bytes);
  cache_->Write(first, nblocks, std::move(done));
}

void FileSystem::WriteAll(FileId id, IoCallback done) {
  Write(id, 0, files_[id].bytes, std::move(done));
}

std::int64_t FileSystem::SizeOf(FileId id) const { return files_[id].bytes; }

const std::string& FileSystem::NameOf(FileId id) const { return files_[id].name; }

}  // namespace ilat
