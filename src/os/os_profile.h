// OsProfile: every structural parameter that distinguishes the three
// operating systems the paper compares.
//
// The paper attributes its cross-OS results to specific structural
// differences (§2.1, §4, §5.3):
//   * NT 3.51 implements the Win32 API in a user-level server, so GUI
//     calls and message retrieval cross protection domains; each crossing
//     flushes the Pentium TLB.
//   * NT 4.0 moved those components into the kernel: fewer crossings,
//     fewer TLB misses, shorter paths.
//   * Windows 95 executes large 16-bit components (the graphics API), with
//     heavy segment-register loads and unaligned accesses, busy-waits
//     between mouse-down and mouse-up, and shows more idle-time background
//     activity.
// Every such difference is a field here, so the mapping from paper
// observation to model constant is auditable.

#ifndef ILAT_SRC_OS_OS_PROFILE_H_
#define ILAT_SRC_OS_OS_PROFILE_H_

#include <string>
#include <vector>

#include "src/sim/disk.h"
#include "src/sim/time.h"
#include "src/sim/work.h"

namespace ilat {

// Cost of one protection-domain crossing.  The Pentium flushes its TLB on
// every crossing (paper §5.3), so the cost has a direct component plus a
// refill component that also shows up in the TLB-miss counters.
struct CrossingCosts {
  Cycles direct_cycles = 200;
  int itlb_refill_misses = 10;
  int dtlb_refill_misses = 20;
  Cycles cycles_per_tlb_miss = 22;

  Cycles TotalCycles() const {
    return direct_cycles +
           static_cast<Cycles>(itlb_refill_misses + dtlb_refill_misses) * cycles_per_tlb_miss;
  }
};

// A periodic background activity (system housekeeping).  Windows 95 runs
// noticeably more of this than NT (paper Fig. 3).
struct BackgroundTask {
  std::string name;
  Cycles period = 0;
  Cycles handler_cycles = 0;
};

struct OsProfile {
  std::string name;

  // -- Clock ---------------------------------------------------------------
  Cycles clock_period = MillisecondsToCycles(10);
  Cycles clock_isr_cycles = 400;  // NT 4.0 measured ~400 cycles (paper §2.5)

  // -- Input interrupt handlers ---------------------------------------------
  Cycles keyboard_isr_cycles = 1'500;
  Cycles mouse_isr_cycles = 1'200;
  Cycles disk_isr_cycles = 2'500;

  // -- Message API (GetMessage / PeekMessage) -------------------------------
  // Number of protection-domain crossings per call (client->server->client
  // on NT 3.51, kernel entry/exit on NT 4.0 and Windows 95).
  int get_message_crossings = 2;
  Cycles get_message_base_cycles = 2'000;
  int peek_message_crossings = 2;
  Cycles peek_message_base_cycles = 1'200;

  // TranslateMessage/DispatchMessage path per user-input message (runs
  // through the 16-bit USER thunk on Windows 95).
  Cycles input_dispatch_cycles = 3'000;

  // Nominal kinstr of window-system processing for an unbound keystroke
  // (hotkey search, DefWindowProc) and a background mouse click, executed
  // as gui_code.  Windows 95's 16-bit USER path is both longer and slower,
  // which is what makes its unbound keystroke "substantially worse" than
  // NT 4.0 in Fig. 6 even though its GDI *text* path is fast.
  double unbound_key_kinstr = 30.0;
  double mouse_click_kinstr = 12.0;

  // System-side handling of the WM_QUEUESYNC message that Microsoft Test
  // injects after each event.  Windows 95 takes much longer here, which is
  // why its Notepad run has the largest elapsed time despite the smallest
  // cumulative event latency (paper Fig. 7 caption).
  Cycles queuesync_cycles = 15'000;

  // -- Code profiles ---------------------------------------------------------
  WorkProfile app_code;     // 32-bit application code
  WorkProfile kernel_code;  // kernel / interrupt-handler code
  WorkProfile gui_code;     // window-system code (16-bit on Windows 95)

  // -- GUI call model ---------------------------------------------------------
  // Rendering work is issued in batches ("GUI calls"); each batch costs
  // `gui_call_crossings` domain crossings plus a fixed per-call overhead,
  // and the batch's nominal instruction count is scaled by a per-class
  // path multiplier (longer code paths on some systems -- the paper
  // concludes warm-cache differences are code-path-length differences,
  // §4).  Text (2D GDI) and graphics (complex rendering) are scaled
  // separately; see src/os/win32.h for why.
  int gui_call_crossings = 1;
  Cycles gui_call_overhead_cycles = 0;
  double gui_text_multiplier = 1.0;
  double gui_graphics_multiplier = 1.0;

  CrossingCosts crossing;

  // -- Storage ---------------------------------------------------------------
  DiskParams disk;
  int cache_blocks = 2'048;  // 8 MB file cache
  Cycles cache_hit_copy_cycles = 3'000;
  // Extra per-write-path overhead multiplier (NTFS journalling on NT; the
  // paper's Table 1 shows document save got *slower* from NT 3.51 to 4.0).
  double write_path_multiplier = 1.0;

  // Scales the number of scattered demand-load reads applications issue
  // while starting up / loading documents (NT 3.51 also pages in
  // user-level-server resources).
  double app_load_read_multiplier = 1.0;
  // Extra KB re-read at the start of OLE edit sessions after the first
  // (NT 3.51's server-side resources are not retained as effectively; see
  // Table 1's flatter NT 3.51 curve across sessions).
  double ole_resession_extra_kb = 0.0;

  // Temporary priority boost applied when a GUI thread wakes for window
  // input (the NT foreground boost); keeps interactive threads responsive
  // beside equal-priority batch work.  Windows 95 lacks it.
  int wake_priority_boost = 0;

  // -- Quirks ------------------------------------------------------------------
  // Windows 95 busy-waits between mouse-down and mouse-up (paper Fig. 6).
  bool mouse_busy_wait = false;
  // Windows 95 does not return to idle promptly after Word events (§5.4),
  // which made Word unmeasurable there.
  bool defers_idle_after_events = false;
  Cycles defer_idle_cycles = 0;

  // -- Idle-time background activity -------------------------------------------
  std::vector<BackgroundTask> background_tasks;
};

}  // namespace ilat

#endif  // ILAT_SRC_OS_OS_PROFILE_H_
