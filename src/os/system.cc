#include "src/os/system.h"

#include <utility>

namespace ilat {

SystemUnderTest::SystemUnderTest(OsProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      sim_(seed),
      win32_(&profile_, &sim_.counters()) {
  sim_.ConfigureStorage(profile_.disk, Work{profile_.disk_isr_cycles, profile_.kernel_code},
                        profile_.cache_blocks,
                        Work{profile_.cache_hit_copy_cycles, profile_.kernel_code});
  fs_ = std::make_unique<FileSystem>(&sim_.cache());
}

void SystemUnderTest::Boot() {
  if (booted_) {
    return;
  }
  booted_ = true;

  // Hardware clock.
  devices_.push_back(std::make_unique<PeriodicDevice>(
      &sim_.queue(), &sim_.scheduler(), profile_.clock_period,
      Work{profile_.clock_isr_cycles, profile_.kernel_code}));
  devices_.back()->EnableTracing(&sim_.tracer(), "clock");
  // Personality background tasks.
  for (const BackgroundTask& task : profile_.background_tasks) {
    devices_.push_back(std::make_unique<PeriodicDevice>(
        &sim_.queue(), &sim_.scheduler(), task.period,
        Work{task.handler_cycles, profile_.kernel_code}));
    devices_.back()->EnableTracing(&sim_.tracer(), task.name);
  }
  for (auto& dev : devices_) {
    dev->Start();
  }
}

void SystemUnderTest::RaiseInputInterrupt(Cycles isr_cycles, std::function<void()> deliver) {
  sim_.scheduler().QueueInterrupt(Work{isr_cycles, profile_.kernel_code}, std::move(deliver));
}

}  // namespace ilat
