#include "src/os/win32.h"

namespace ilat {

Work Win32Subsystem::CrossingWork(int n) const {
  const CrossingCosts& c = profile_->crossing;
  return Work{static_cast<Cycles>(n) * c.TotalCycles(), profile_->kernel_code};
}

Work Win32Subsystem::GetMessageWork() const {
  Work w = CrossingWork(profile_->get_message_crossings);
  w.cycles += profile_->get_message_base_cycles;
  return w;
}

Work Win32Subsystem::PeekMessageWork() const {
  Work w = CrossingWork(profile_->peek_message_crossings);
  w.cycles += profile_->peek_message_base_cycles;
  return w;
}

Work Win32Subsystem::InputDispatchWork() const {
  return Work{profile_->input_dispatch_cycles, profile_->gui_code};
}

Work Win32Subsystem::QueueSyncWork() const {
  return Work{profile_->queuesync_cycles, profile_->kernel_code};
}

Work Win32Subsystem::GuiWorkInternal(double kinstr, double multiplier, int calls) const {
  const double scaled_kinstr = kinstr * multiplier;
  Work w = Work::FromInstructions(scaled_kinstr * 1000.0, profile_->gui_code);
  w.cycles += CrossingWork(calls * profile_->gui_call_crossings).cycles;
  w.cycles += static_cast<Cycles>(calls) * profile_->gui_call_overhead_cycles;
  return w;
}

Work Win32Subsystem::GuiTextWork(double kinstr, int calls) const {
  return GuiWorkInternal(kinstr, profile_->gui_text_multiplier, calls);
}

Work Win32Subsystem::GuiGraphicsWork(double kinstr, int calls) const {
  return GuiWorkInternal(kinstr, profile_->gui_graphics_multiplier, calls);
}

Work Win32Subsystem::AppWork(double kinstr) const {
  return Work::FromInstructions(kinstr * 1000.0, profile_->app_code);
}

Work Win32Subsystem::KernelWork(double kinstr) const {
  return Work::FromInstructions(kinstr * 1000.0, profile_->kernel_code);
}

void Win32Subsystem::ChargeCrossings(int n) const {
  if (n <= 0) {
    return;
  }
  const CrossingCosts& c = profile_->crossing;
  counters_->Add(HwEvent::kItlbMiss, static_cast<std::uint64_t>(n) * c.itlb_refill_misses);
  counters_->Add(HwEvent::kDtlbMiss, static_cast<std::uint64_t>(n) * c.dtlb_refill_misses);
}

}  // namespace ilat
