#include "src/os/personalities.h"

namespace ilat {

namespace {

// Work profiles shared across the NT systems (32-bit flat-model code).
WorkProfile Nt32BitAppCode() {
  WorkProfile p;
  p.ipc = 0.85;
  p.data_refs_per_instr = 0.35;
  p.itlb_miss_per_kinstr = 0.05;
  p.dtlb_miss_per_kinstr = 0.15;
  p.seg_loads_per_kinstr = 0.02;
  p.unaligned_per_kinstr = 0.10;
  return p;
}

WorkProfile NtKernelCode() {
  WorkProfile p;
  p.ipc = 0.70;
  p.data_refs_per_instr = 0.40;
  p.itlb_miss_per_kinstr = 0.08;
  p.dtlb_miss_per_kinstr = 0.20;
  p.seg_loads_per_kinstr = 0.02;
  p.unaligned_per_kinstr = 0.05;
  return p;
}

WorkProfile NtGuiCode() {
  WorkProfile p;
  p.ipc = 0.75;
  p.data_refs_per_instr = 0.40;
  p.itlb_miss_per_kinstr = 0.10;
  p.dtlb_miss_per_kinstr = 0.25;
  p.seg_loads_per_kinstr = 0.05;
  p.unaligned_per_kinstr = 0.30;
  return p;
}

// 16-bit Windows code: heavy segment-register traffic, unaligned accesses,
// and poor TLB locality (the paper measured 93% more TLB misses on W95
// than NT 4.0 for the page-down operation without being able to attribute
// them to a single architectural feature).
WorkProfile W9516BitGuiCode() {
  WorkProfile p;
  p.ipc = 0.62;
  p.data_refs_per_instr = 0.45;
  p.itlb_miss_per_kinstr = 1.2;
  p.dtlb_miss_per_kinstr = 3.8;
  p.seg_loads_per_kinstr = 30.0;
  p.unaligned_per_kinstr = 15.0;
  return p;
}

// The Pentium flushes both TLBs on a protection-domain crossing; refilling
// the working set costs on the order of a hundred misses at ~20+ cycles
// each (the paper uses 20 cycles/miss as a lower bound, §5.3).
CrossingCosts PentiumCrossing() {
  CrossingCosts c;
  c.direct_cycles = 200;
  c.itlb_refill_misses = 40;
  c.dtlb_refill_misses = 80;
  c.cycles_per_tlb_miss = 22;
  return c;
}

DiskParams FujitsuM1606() {
  DiskParams d;
  d.avg_seek_ms = 10.0;
  d.track_to_track_ms = 2.0;
  d.rotational_rpm = 5400.0;
  d.transfer_mb_per_s = 4.0;
  d.controller_overhead_ms = 0.5;
  d.block_size_bytes = 4096;
  d.seek_jitter = 0.15;
  return d;
}

}  // namespace

OsProfile MakeNt40() {
  OsProfile os;
  os.name = "nt40";

  os.clock_period = MillisecondsToCycles(10);
  os.clock_isr_cycles = 400;  // paper §2.5: ~400 cycles on NT 4.0

  os.keyboard_isr_cycles = 1'500;
  os.mouse_isr_cycles = 1'200;
  os.disk_isr_cycles = 2'500;

  os.get_message_crossings = 2;  // user -> kernel -> user
  os.get_message_base_cycles = 2'000;
  os.peek_message_crossings = 2;
  os.peek_message_base_cycles = 1'200;
  os.input_dispatch_cycles = 3'000;
  os.queuesync_cycles = 15'000;
  os.unbound_key_kinstr = 30.0;
  os.mouse_click_kinstr = 12.0;

  os.app_code = Nt32BitAppCode();
  os.kernel_code = NtKernelCode();
  os.gui_code = NtGuiCode();

  os.gui_call_crossings = 1;  // kernel-mode window system: one light crossing
  os.gui_call_overhead_cycles = 300;
  os.gui_text_multiplier = 1.0;
  os.gui_graphics_multiplier = 1.0;

  os.crossing = PentiumCrossing();

  os.disk = FujitsuM1606();
  os.cache_blocks = 2'048;  // 8 MB file cache
  os.cache_hit_copy_cycles = 3'000;
  // NTFS in NT 4.0: document save measurably *slower* than NT 3.51
  // (paper Table 1: 9.580 s vs 8.082 s); modelled as a longer write path.
  os.write_path_multiplier = 1.30;
  os.app_load_read_multiplier = 1.0;
  os.ole_resession_extra_kb = 0.0;

  os.wake_priority_boost = 2;  // NT foreground wake boost

  os.mouse_busy_wait = false;
  os.defers_idle_after_events = false;

  // Light periodic housekeeping beyond the clock tick.
  os.background_tasks = {
      BackgroundTask{"housekeeping", SecondsToCycles(1.0), 20'000},
  };
  return os;
}

OsProfile MakeNt351() {
  OsProfile os = MakeNt40();
  os.name = "nt351";

  os.clock_isr_cycles = 500;

  // GetMessage is an LPC round trip through the user-level Win32 server:
  // client -> kernel -> server -> kernel -> client.
  os.get_message_crossings = 4;
  os.get_message_base_cycles = 2'500;
  os.peek_message_crossings = 4;
  os.peek_message_base_cycles = 1'500;
  os.input_dispatch_cycles = 4'000;
  os.queuesync_cycles = 18'000;
  os.unbound_key_kinstr = 52.0;
  os.mouse_click_kinstr = 20.0;

  // Every GUI call batch crosses into the server and back, and the
  // traditional GUI's code paths are longer (the paper attributes the
  // warm-cache NT 3.51 / NT 4.0 gap to code path length, §4).
  os.gui_call_crossings = 2;
  os.gui_call_overhead_cycles = 400;
  os.gui_text_multiplier = 1.30;
  os.gui_graphics_multiplier = 1.08;

  os.write_path_multiplier = 1.10;
  os.app_load_read_multiplier = 1.35;
  os.ole_resession_extra_kb = 400.0;
  return os;
}

OsProfile MakeWin95() {
  OsProfile os;
  os.name = "win95";

  // Windows 95 keeps the 54.9 ms DOS-heritage timer tick and runs more
  // background housekeeping than NT (paper Fig. 3 shows a higher idle
  // activity level it could not attribute).
  os.clock_period = MillisecondsToCycles(55);
  os.clock_isr_cycles = 3'000;

  os.keyboard_isr_cycles = 2'500;  // 16-bit keyboard driver path
  os.mouse_isr_cycles = 2'000;
  os.disk_isr_cycles = 3'500;

  os.get_message_crossings = 2;
  os.get_message_base_cycles = 3'500;
  os.peek_message_crossings = 2;
  os.peek_message_base_cycles = 2'000;
  // Input dispatch runs through 16-bit USER: the dominant reason the
  // unbound keystroke is much slower than NT 4.0 (Fig. 6).
  os.input_dispatch_cycles = 15'000;
  // WM_QUEUESYNC processing is much longer under Windows 95 (Fig. 7
  // caption): inflates elapsed time without touching event latencies.
  os.queuesync_cycles = 400'000;
  os.unbound_key_kinstr = 55.0;  // 16-bit USER hotkey/DefWindowProc path
  os.mouse_click_kinstr = 18.0;

  os.app_code = Nt32BitAppCode();  // Win32 applications are 32-bit code
  os.app_code.seg_loads_per_kinstr = 0.5;  // thunk boundaries
  os.kernel_code = NtKernelCode();
  os.kernel_code.seg_loads_per_kinstr = 5.0;
  os.gui_code = W9516BitGuiCode();

  // 16-bit GDI runs in the caller's context: no protection-domain
  // crossing, tiny per-call thunk.  Text paths are hand-tuned assembly and
  // *shorter* than NT's; complex graphics paths are longer.
  os.gui_call_crossings = 0;
  os.gui_call_overhead_cycles = 800;
  os.gui_text_multiplier = 0.65;
  os.gui_graphics_multiplier = 0.92;

  os.crossing = PentiumCrossing();

  os.disk = FujitsuM1606();
  os.cache_blocks = 2'048;
  os.cache_hit_copy_cycles = 3'500;
  os.write_path_multiplier = 0.95;  // FAT: no journalling
  os.app_load_read_multiplier = 0.95;
  os.ole_resession_extra_kb = 150.0;

  os.wake_priority_boost = 0;  // no NT-style boost

  // The system busy-waits between mouse-down and mouse-up (Fig. 6).
  os.mouse_busy_wait = true;
  // §5.4: the system does not become idle promptly after Word events.
  os.defers_idle_after_events = true;
  os.defer_idle_cycles = SecondsToCycles(2.5);

  os.background_tasks = {
      BackgroundTask{"vmm-housekeeping", MillisecondsToCycles(250), 60'000},
      BackgroundTask{"shell-poll", SecondsToCycles(1.0), 100'000},
  };
  return os;
}

std::vector<OsProfile> AllPersonalities() {
  return {MakeNt351(), MakeNt40(), MakeWin95()};
}

}  // namespace ilat
