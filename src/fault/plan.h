// FaultPlan: a declarative description of the faults to inject into one
// measurement session.
//
// The paper's methodology had to survive hostile conditions -- driver
// artifacts, clock noise, background interference -- before its latency
// numbers could be trusted.  A FaultPlan makes those hostile conditions a
// first-class, *deterministic* input: every fault decision draws from a
// PRNG stream derived from {session seed, plan salt, attempt}, so the same
// seed and plan replay the exact same faults, no matter the host thread
// count (the campaign byte-identity contract extends to faulted sweeps).
//
// Plan files use the same INI-ish format as campaign specs:
//
//   # lose 1% of disk reads, stall 5% of them by ~20 ms
//   disk.fail_rate   = 0.01
//   disk.stall_rate  = 0.05
//   disk.stall_ms    = 20
//   # drop / duplicate / reorder user-input messages
//   mq.drop_rate     = 0.02
//   mq.dup_rate      = 0.01
//   mq.reorder_rate  = 0.01
//   # 50 ms interrupt storm starting 200 ms in, one IRQ every 100 us
//   storm.start_ms    = 200
//   storm.duration_ms = 50
//   storm.period_us   = 100
//   storm.handler_us  = 30
//   # +-10% jitter on the idle-loop sampling period (clock noise)
//   clock.jitter_frac = 0.10
//
// Campaign specs may embed the same keys with a `fault.` prefix
// (`fault.disk.fail_rate = 0.01`), applying the plan to every cell.

#ifndef ILAT_SRC_FAULT_PLAN_H_
#define ILAT_SRC_FAULT_PLAN_H_

#include <cstdint>
#include <string>

namespace ilat {
namespace fault {

// Disk-path faults (src/sim/disk.*, felt through the buffer cache and
// file system above it).
struct DiskFaultSpec {
  // Probability that a request's service attempt fails transiently.  The
  // disk retries (bounded, with backoff); exhausted retries fail the
  // request with IoStatus::kFailed.
  double fail_rate = 0.0;
  // After this many requests the disk fails permanently: every further
  // request completes immediately with IoStatus::kFailed.  0 = never.
  std::uint64_t fail_after = 0;
  // Probability of an extra service-time stall, and its mean (stall is
  // drawn ~Exponential(stall_ms), so tails exist but replay exactly).
  double stall_rate = 0.0;
  double stall_ms = 0.0;

  bool Any() const {
    return fail_rate > 0.0 || fail_after > 0 || (stall_rate > 0.0 && stall_ms > 0.0);
  }
};

// Message-queue faults (src/sim/message_queue.*).  Only fault-eligible
// messages are touched: user input plus timers/paints.  WM_QUEUESYNC,
// WM_QUIT, socket-delivery, and mouse-up messages are exempt -- the
// drivers and the Windows 95 mouse busy-wait serialise on them, and a
// dropped serialisation message would hang the session rather than
// degrade it.
struct MessageFaultSpec {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;

  bool Any() const { return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0; }
};

// A window of high-frequency interrupts (src/sim/interrupts.*): one extra
// PeriodicDevice firing every period_us for duration_ms, each tick
// stealing handler_us of kernel time.
struct InterruptStormSpec {
  double start_ms = 0.0;
  double duration_ms = 0.0;
  double period_us = 100.0;
  double handler_us = 20.0;

  bool Any() const { return duration_ms > 0.0 && period_us > 0.0; }
};

// Clock jitter on the idle-loop sampler (src/core/idle_loop.h): each
// busy-loop pass is elongated or shortened by up to jitter_frac of the
// nominal period, modelling the counter/clock noise the paper had to
// tolerate.
struct ClockJitterSpec {
  double jitter_frac = 0.0;

  bool Any() const { return jitter_frac > 0.0; }
};

struct FaultPlan {
  DiskFaultSpec disk;
  MessageFaultSpec mq;
  InterruptStormSpec storm;
  ClockJitterSpec clock;
  // Salt mixed into the fault PRNG stream so fault draws never collide
  // with workload/machine draws from the same session seed.
  std::uint64_t salt = 0xFA017;

  bool Any() const { return disk.Any() || mq.Any() || storm.Any() || clock.Any(); }
};

// Apply one `key = value` pair to *plan.  Returns false (setting *error)
// for unknown keys or malformed/out-of-range values.  Shared by the plan
// parser and the campaign spec parser (which strips its `fault.` prefix
// first).
bool SetFaultPlanKey(const std::string& key, const std::string& value, FaultPlan* plan,
                     std::string* error);

// Parse the INI-ish plan text (comments with '#', blank lines ignored).
bool ParseFaultPlan(const std::string& text, FaultPlan* out, std::string* error);

// Read `path` and parse it.
bool LoadFaultPlan(const std::string& path, FaultPlan* out, std::string* error);

}  // namespace fault
}  // namespace ilat

#endif  // ILAT_SRC_FAULT_PLAN_H_
