#include "src/fault/plan.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ilat {
namespace fault {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// Finite double with full-string consumption; [lo, hi] inclusive.
bool ParseDoubleIn(const std::string& value, double lo, double hi, double* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || !std::isfinite(v) || v < lo || v > hi) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseU64(const std::string& value, std::uint64_t* out) {
  if (value.empty()) {
    return false;
  }
  std::uint64_t v = 0;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return false;  // overflow
    }
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

bool SetFaultPlanKey(const std::string& key, const std::string& value, FaultPlan* plan,
                     std::string* error) {
  auto bad_value = [&](const char* expect) {
    *error = "fault key '" + key + "': expected " + expect + ", got '" + value + "'";
    return false;
  };

  // Rates are probabilities; times must be non-negative and finite.
  if (key == "disk.fail_rate") {
    return ParseDoubleIn(value, 0.0, 1.0, &plan->disk.fail_rate) ||
           bad_value("a probability in [0, 1]");
  }
  if (key == "disk.fail_after") {
    return ParseU64(value, &plan->disk.fail_after) || bad_value("an unsigned integer");
  }
  if (key == "disk.stall_rate") {
    return ParseDoubleIn(value, 0.0, 1.0, &plan->disk.stall_rate) ||
           bad_value("a probability in [0, 1]");
  }
  if (key == "disk.stall_ms") {
    return ParseDoubleIn(value, 0.0, 60'000.0, &plan->disk.stall_ms) ||
           bad_value("milliseconds in [0, 60000]");
  }
  if (key == "mq.drop_rate") {
    return ParseDoubleIn(value, 0.0, 1.0, &plan->mq.drop_rate) ||
           bad_value("a probability in [0, 1]");
  }
  if (key == "mq.dup_rate") {
    return ParseDoubleIn(value, 0.0, 1.0, &plan->mq.dup_rate) ||
           bad_value("a probability in [0, 1]");
  }
  if (key == "mq.reorder_rate") {
    return ParseDoubleIn(value, 0.0, 1.0, &plan->mq.reorder_rate) ||
           bad_value("a probability in [0, 1]");
  }
  if (key == "storm.start_ms") {
    return ParseDoubleIn(value, 0.0, 3'600'000.0, &plan->storm.start_ms) ||
           bad_value("milliseconds in [0, 3600000]");
  }
  if (key == "storm.duration_ms") {
    return ParseDoubleIn(value, 0.0, 3'600'000.0, &plan->storm.duration_ms) ||
           bad_value("milliseconds in [0, 3600000]");
  }
  if (key == "storm.period_us") {
    // Floor of 10 us: a denser storm than one IRQ per thousand cycles
    // would stop the simulated machine (and the host) outright.
    return ParseDoubleIn(value, 10.0, 1'000'000.0, &plan->storm.period_us) ||
           bad_value("microseconds in [10, 1000000]");
  }
  if (key == "storm.handler_us") {
    return ParseDoubleIn(value, 0.0, 10'000.0, &plan->storm.handler_us) ||
           bad_value("microseconds in [0, 10000]");
  }
  if (key == "clock.jitter_frac") {
    // Above ~0.9 the sampler period can collapse toward zero.
    return ParseDoubleIn(value, 0.0, 0.9, &plan->clock.jitter_frac) ||
           bad_value("a fraction in [0, 0.9]");
  }
  if (key == "salt") {
    return ParseU64(value, &plan->salt) || bad_value("an unsigned integer");
  }
  *error = "unknown fault key '" + key + "'";
  return false;
}

bool ParseFaultPlan(const std::string& text, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::string line = Trim(raw);
    if (line.empty()) {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = "line " + std::to_string(lineno) + ": expected 'key = value'";
      return false;
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    std::string key_error;
    if (!SetFaultPlanKey(key, value, &plan, &key_error)) {
      *error = "line " + std::to_string(lineno) + ": " + key_error;
      return false;
    }
  }
  *out = plan;
  return true;
}

bool LoadFaultPlan(const std::string& path, FaultPlan* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open fault plan '" + path + "'";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseFaultPlan(text, out, error);
}

}  // namespace fault
}  // namespace ilat
