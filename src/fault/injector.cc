#include "src/fault/injector.h"

#include <utility>

namespace ilat {
namespace fault {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t session_seed, int attempt)
    : plan_(plan) {
  // Independent stream per (session seed, plan salt, attempt): campaign
  // sweeps vary the salt per fault point, retries vary the attempt, and
  // neither collides with workload draws from the same session seed.
  const std::uint64_t base =
      DeriveSeed(session_seed, plan_.salt, static_cast<std::uint64_t>(attempt));
  disk_rng_.Seed(DeriveSeed(base, 1));
  mq_rng_.Seed(DeriveSeed(base, 2));
  clock_rng_.Seed(DeriveSeed(base, 3));
  report_.enabled = plan_.Any();
}

void FaultInjector::Attach(EventQueue* clock, obs::Tracer* tracer) {
  clock_ = clock;
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  fault_track_ = tracer_->RegisterTrack("fault");
  auto& m = tracer_->metrics();
  m_disk_transient_ = m.GetCounter("fault.disk.transient");
  m_disk_stalls_ = m.GetCounter("fault.disk.stalls");
  m_disk_permanent_ = m.GetCounter("fault.disk.permanent");
  m_mq_dropped_ = m.GetCounter("fault.mq.dropped");
  m_mq_duplicated_ = m.GetCounter("fault.mq.duplicated");
  m_mq_reordered_ = m.GetCounter("fault.mq.reordered");
  m_storm_ticks_ = m.GetCounter("fault.storm.ticks");
  m_clock_jitter_ = m.GetCounter("fault.clock.jitter_passes");
}

void FaultInjector::RecordInjection(const char* name, double value) {
  if (tracer_ != nullptr && tracer_->enabled() && clock_ != nullptr) {
    tracer_->Instant(fault_track_, name, "fault", clock_->now(), "value", value);
  }
}

DiskFaultDecision FaultInjector::OnDiskAttempt(std::int64_t block, int nblocks, bool is_write,
                                               int attempt) {
  (void)nblocks;
  (void)is_write;
  DiskFaultDecision d;
  if (attempt == 0) {
    ++disk_requests_seen_;
  }

  if (plan_.disk.fail_after > 0 && disk_requests_seen_ > plan_.disk.fail_after) {
    d.kind = DiskFaultKind::kPermanent;
    report_.disk_permanent = true;
    if (m_disk_permanent_ != nullptr) {
      m_disk_permanent_->Increment();
    }
    RecordInjection("disk.permanent", static_cast<double>(block));
    return d;
  }

  if (plan_.disk.fail_rate > 0.0 && disk_rng_.Bernoulli(plan_.disk.fail_rate)) {
    d.kind = DiskFaultKind::kTransient;
    ++report_.disk_transient;
    if (m_disk_transient_ != nullptr) {
      m_disk_transient_->Increment();
    }
    RecordInjection("disk.transient", static_cast<double>(block));
  }

  if (plan_.disk.stall_rate > 0.0 && plan_.disk.stall_ms > 0.0 &&
      disk_rng_.Bernoulli(plan_.disk.stall_rate)) {
    const double stall_ms = disk_rng_.Exponential(plan_.disk.stall_ms);
    d.stall = MillisecondsToCycles(stall_ms);
    ++report_.disk_stalls;
    report_.disk_stall_ms += stall_ms;
    if (m_disk_stalls_ != nullptr) {
      m_disk_stalls_->Increment();
    }
    RecordInjection("disk.stall", stall_ms);
  }
  return d;
}

MessageFaultAction FaultInjector::OnPost(const Message& m) {
  const double drop = plan_.mq.drop_rate;
  const double dup = plan_.mq.dup_rate;
  const double reorder = plan_.mq.reorder_rate;
  if (drop <= 0.0 && dup <= 0.0 && reorder <= 0.0) {
    return MessageFaultAction::kNone;
  }
  // One draw decides among the mutually exclusive actions.
  const double u = mq_rng_.NextDouble();
  if (u < drop) {
    ++report_.mq_dropped;
    if (m_mq_dropped_ != nullptr) {
      m_mq_dropped_->Increment();
    }
    RecordInjection("mq.drop", static_cast<double>(m.seq));
    return MessageFaultAction::kDrop;
  }
  if (u < drop + dup) {
    ++report_.mq_duplicated;
    if (m_mq_duplicated_ != nullptr) {
      m_mq_duplicated_->Increment();
    }
    RecordInjection("mq.duplicate", static_cast<double>(m.seq));
    return MessageFaultAction::kDuplicate;
  }
  if (u < drop + dup + reorder) {
    ++report_.mq_reordered;
    if (m_mq_reordered_ != nullptr) {
      m_mq_reordered_->Increment();
    }
    RecordInjection("mq.reorder", static_cast<double>(m.seq));
    return MessageFaultAction::kReorder;
  }
  return MessageFaultAction::kNone;
}

std::function<Cycles(Cycles, std::uint64_t)> FaultInjector::MakePeriodJitter() {
  if (!plan_.clock.Any()) {
    return {};
  }
  return [this](Cycles nominal, std::uint64_t pass) {
    (void)pass;
    const double frac = plan_.clock.jitter_frac * (2.0 * clock_rng_.NextDouble() - 1.0);
    ++report_.clock_jitter_passes;
    if (m_clock_jitter_ != nullptr) {
      m_clock_jitter_->Increment();
    }
    const Cycles perturbed = static_cast<Cycles>(static_cast<double>(nominal) * (1.0 + frac));
    return perturbed < 1 ? Cycles{1} : perturbed;
  };
}

void FaultInjector::InstallStorm(EventQueue* queue, Scheduler* scheduler) {
  if (!plan_.storm.Any()) {
    return;
  }
  // Storm handlers are kernel-ish interrupt code; the default profile is
  // close enough (the cost is dominated by the stolen cycles themselves).
  const Work handler{MicrosecondsToCycles(plan_.storm.handler_us), WorkProfile{}};
  storm_ = std::make_unique<PeriodicDevice>(
      queue, scheduler, MicrosecondsToCycles(plan_.storm.period_us), handler, [this] {
        ++report_.storm_ticks;
        if (m_storm_ticks_ != nullptr) {
          m_storm_ticks_->Increment();
        }
      });
  if (tracer_ != nullptr) {
    storm_->EnableTracing(tracer_, "fault-storm");
  }
  storm_->RunWindow(MillisecondsToCycles(plan_.storm.start_ms),
                    MillisecondsToCycles(plan_.storm.duration_ms));
}

}  // namespace fault
}  // namespace ilat
