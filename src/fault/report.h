// FaultReport: the structured outcome of a (possibly) faulted session.
//
// Instead of crashing or silently corrupting metrics, a session that hit
// component faults finishes with partial results plus this report: what
// was injected, what failed, and whether the session should be treated as
// degraded.  Header-only and dependency-free so every layer (core,
// campaign, CLI, viz) can carry it around.

#ifndef ILAT_SRC_FAULT_REPORT_H_
#define ILAT_SRC_FAULT_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ilat {
namespace fault {

struct FaultReport {
  // True when a fault plan was active for the session.
  bool enabled = false;
  // True when the invariant checker decided the session's numbers are not
  // trustworthy as a clean measurement (disk died, I/O failed, driver
  // timed out, input was lost).  Degraded sessions still carry partial
  // metrics; `notes` says why.
  bool degraded = false;

  // Injection counts (what the fault layer did).
  std::uint64_t disk_transient = 0;   // failed service attempts (retried)
  std::uint64_t disk_stalls = 0;      // stalled service attempts
  double disk_stall_ms = 0.0;         // total injected stall time
  bool disk_permanent = false;        // the disk died mid-session
  std::uint64_t mq_dropped = 0;
  std::uint64_t mq_duplicated = 0;
  std::uint64_t mq_reordered = 0;
  std::uint64_t storm_ticks = 0;      // interrupt-storm IRQs delivered
  std::uint64_t clock_jitter_passes = 0;

  // Observed damage (what the system under test experienced).
  std::uint64_t io_failed = 0;        // I/O requests completing kFailed
  std::uint64_t disk_retries = 0;     // retry attempts the disk made

  // User-model recovery (what the human driver did about dropped input).
  std::uint64_t input_retries = 0;    // re-issued inputs after a drop
  std::uint64_t input_abandons = 0;   // inputs given up after max retries

  // Human-readable invariant-checker findings, one per line.
  std::vector<std::string> notes;

  bool AnyInjected() const {
    return disk_transient > 0 || disk_stalls > 0 || disk_permanent || mq_dropped > 0 ||
           mq_duplicated > 0 || mq_reordered > 0 || storm_ticks > 0 ||
           clock_jitter_passes > 0;
  }

  // One line, e.g. "degraded: disk_transient=3 io_failed=1 (disk died)".
  std::string Summary() const;
};

}  // namespace fault
}  // namespace ilat

#endif  // ILAT_SRC_FAULT_REPORT_H_
