#include "src/fault/report.h"

#include <sstream>

namespace ilat {
namespace fault {

std::string FaultReport::Summary() const {
  if (!enabled) {
    return "no faults";
  }
  std::ostringstream out;
  out << (degraded ? "degraded" : "ok");
  if (disk_transient > 0) {
    out << " disk_transient=" << disk_transient;
  }
  if (disk_stalls > 0) {
    out << " disk_stalls=" << disk_stalls;
  }
  if (disk_permanent) {
    out << " disk_permanent";
  }
  if (disk_retries > 0) {
    out << " disk_retries=" << disk_retries;
  }
  if (io_failed > 0) {
    out << " io_failed=" << io_failed;
  }
  if (mq_dropped > 0) {
    out << " mq_dropped=" << mq_dropped;
  }
  if (input_retries > 0) {
    out << " input_retries=" << input_retries;
  }
  if (input_abandons > 0) {
    out << " input_abandons=" << input_abandons;
  }
  if (mq_duplicated > 0) {
    out << " mq_duplicated=" << mq_duplicated;
  }
  if (mq_reordered > 0) {
    out << " mq_reordered=" << mq_reordered;
  }
  if (storm_ticks > 0) {
    out << " storm_ticks=" << storm_ticks;
  }
  if (clock_jitter_passes > 0) {
    out << " clock_jitter_passes=" << clock_jitter_passes;
  }
  if (!notes.empty()) {
    out << " (" << notes.front();
    if (notes.size() > 1) {
      out << "; +" << notes.size() - 1 << " more";
    }
    out << ")";
  }
  return out.str();
}

}  // namespace fault
}  // namespace ilat
