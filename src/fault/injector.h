// FaultInjector: executes a FaultPlan against one simulated session.
//
// The injector implements the fault-policy hooks the sim layer declares
// (DiskFaultPolicy, MessageFaultPolicy), provides the idle-loop clock
// jitter function, and owns the interrupt-storm device.  Every decision
// draws from PRNG streams derived as
//
//   base  = DeriveSeed(DeriveSeed(session_seed, plan.salt), attempt)
//   disk  = DeriveSeed(base, 1)   mq = DeriveSeed(base, 2)   ...
//
// so fault behaviour is a pure function of {seed, plan, attempt}: replays
// are exact, campaign output stays byte-identical across --jobs, and a
// retried cell (attempt+1) sees a fresh but still deterministic fault
// stream.  Every injection is recorded on a "fault" trace track and in
// MetricsRegistry counters, and accumulated into the FaultReport.

#ifndef ILAT_SRC_FAULT_INJECTOR_H_
#define ILAT_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/fault/plan.h"
#include "src/fault/report.h"
#include "src/obs/trace.h"
#include "src/sim/disk.h"
#include "src/sim/event_queue.h"
#include "src/sim/interrupts.h"
#include "src/sim/message_queue.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace ilat {
namespace fault {

class FaultInjector : public DiskFaultPolicy, public MessageFaultPolicy {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t session_seed, int attempt = 0);

  // Hook up observability: registers the "fault" trace track and metrics.
  // `clock` supplies timestamps for injection trace events.  Must be
  // called before the session runs; both pointers are non-owning.
  void Attach(EventQueue* clock, obs::Tracer* tracer);

  // DiskFaultPolicy.
  DiskFaultDecision OnDiskAttempt(std::int64_t block, int nblocks, bool is_write,
                                  int attempt) override;

  // MessageFaultPolicy.
  MessageFaultAction OnPost(const Message& m) override;

  // Idle-loop clock jitter: returns an empty function when the plan has no
  // jitter configured.
  std::function<Cycles(Cycles, std::uint64_t)> MakePeriodJitter();

  // Create and arm the interrupt-storm device for its window.  No-op when
  // the plan has no storm.  The device lives in the injector and must not
  // outlive `queue`/`scheduler`.
  void InstallStorm(EventQueue* queue, Scheduler* scheduler);

  const FaultPlan& plan() const { return plan_; }
  const FaultReport& report() const { return report_; }
  FaultReport& mutable_report() { return report_; }

 private:
  void RecordInjection(const char* name, double value);

  FaultPlan plan_;
  FaultReport report_;
  Random disk_rng_;
  Random mq_rng_;
  Random clock_rng_;

  EventQueue* clock_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t fault_track_ = 0;
  obs::Counter* m_disk_transient_ = nullptr;
  obs::Counter* m_disk_stalls_ = nullptr;
  obs::Counter* m_disk_permanent_ = nullptr;
  obs::Counter* m_mq_dropped_ = nullptr;
  obs::Counter* m_mq_duplicated_ = nullptr;
  obs::Counter* m_mq_reordered_ = nullptr;
  obs::Counter* m_storm_ticks_ = nullptr;
  obs::Counter* m_clock_jitter_ = nullptr;

  std::uint64_t disk_requests_seen_ = 0;
  std::unique_ptr<PeriodicDevice> storm_;
};

}  // namespace fault
}  // namespace ilat

#endif  // ILAT_SRC_FAULT_INJECTOR_H_
