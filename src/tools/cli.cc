#include "src/tools/cli.h"

#include <memory>

#include "src/analysis/classifier.h"
#include "src/analysis/cumulative.h"
#include "src/analysis/histogram.h"
#include "src/analysis/irritation.h"
#include "src/apps/desktop.h"
#include "src/apps/echo_app.h"
#include "src/apps/media_player.h"
#include "src/apps/notepad.h"
#include "src/apps/powerpoint.h"
#include "src/apps/terminal.h"
#include "src/apps/word.h"
#include "src/core/measurement.h"
#include "src/core/session_io.h"
#include "src/input/network.h"
#include "src/input/workloads.h"
#include "src/obs/trace_export.h"
#include "src/viz/ascii_chart.h"
#include "src/viz/csv.h"
#include "src/viz/explain.h"
#include "src/viz/table.h"

namespace ilat {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::unique_ptr<GuiApplication> MakeApp(const std::string& name) {
  if (name == "notepad") {
    return std::make_unique<NotepadApp>();
  }
  if (name == "word") {
    return std::make_unique<WordApp>();
  }
  if (name == "powerpoint") {
    return std::make_unique<PowerpointApp>();
  }
  if (name == "desktop") {
    return std::make_unique<DesktopApp>();
  }
  if (name == "echo") {
    return std::make_unique<EchoApp>();
  }
  if (name == "terminal") {
    return std::make_unique<TerminalApp>();
  }
  if (name == "media") {
    return std::make_unique<MediaPlayerApp>();
  }
  return nullptr;
}

Script MakeWorkload(const std::string& name, Random* rng, const CliOptions& options) {
  if (name == "notepad") {
    return NotepadWorkload(rng);
  }
  if (name == "word") {
    return WordWorkload(rng);
  }
  if (name == "powerpoint") {
    return PowerpointWorkload(rng);
  }
  if (name == "keys") {
    return KeystrokeTrials(30);
  }
  if (name == "clicks") {
    return ClickTrials(30);
  }
  if (name == "echo") {
    return EchoTrials(30);
  }
  if (name == "media") {
    Script s;
    s.push_back(ScriptItem::Command(kCmdMediaPlay + options.frames, 100.0, "play"));
    return s;
  }
  return {};
}

std::string DefaultWorkloadFor(const std::string& app) {
  if (app == "desktop") {
    return "keys";
  }
  if (app == "echo") {
    return "echo";
  }
  if (app == "terminal") {
    return "network";
  }
  if (app == "media") {
    return "media";
  }
  return app;  // notepad/word/powerpoint have same-named workloads
}

bool ParseDriver(const std::string& name, DriverKind* out) {
  if (name == "test") {
    *out = DriverKind::kTest;
  } else if (name == "test-nosync") {
    *out = DriverKind::kTestNoSync;
  } else if (name == "human") {
    *out = DriverKind::kHuman;
  } else {
    return false;
  }
  return true;
}

void PrintSummary(std::FILE* out, const std::string& os_name, const SessionResult& r,
                  const CliOptions& options) {
  const IrritationReport rep = AnalyzeIrritation(r.events, options.threshold_ms,
                                                 r.elapsed() > 0 ? r.elapsed() : 0);
  TextTable t({"metric", "value"});
  t.AddRow({"system", os_name});
  t.AddRow({"events", std::to_string(r.events.size())});
  t.AddRow({"elapsed (s)", TextTable::Num(r.elapsed_seconds(), 2)});
  t.AddRow({"cumulative latency (ms)", TextTable::Num(TotalLatencyMs(r.events), 1)});
  t.AddRow({"p50 / p95 / p99 (ms)", TextTable::Num(rep.p50_ms, 2) + " / " +
                                        TextTable::Num(rep.p95_ms, 2) + " / " +
                                        TextTable::Num(rep.p99_ms, 2)});
  t.AddRow({"max latency (ms)", TextTable::Num(rep.max_ms, 1)});
  t.AddRow({"events > " + TextTable::Num(options.threshold_ms, 0) + " ms",
            std::to_string(rep.events_above) + " (" + TextTable::Num(rep.rate_per_minute, 2) +
                "/min)"});
  t.AddRow({"longest calm stretch (s)", TextTable::Num(rep.longest_calm_s, 1)});
  t.AddRow({"latency share of <10ms events",
            TextTable::Num(100.0 * LatencyFractionBelow(r.events, 10.0), 1) + "%"});
  std::fputs(t.ToString().c_str(), out);

  if (!r.events.empty()) {
    TextTable classes({"event class", "count", "mean (ms)", "max (ms)", "over expectation"});
    for (const ClassSummary& c : SummarizeByClass(r.events)) {
      classes.AddRow({std::string(EventClassName(c.event_class)), std::to_string(c.count),
                      TextTable::Num(c.mean_ms, 2), TextTable::Num(c.max_ms, 1),
                      std::to_string(c.over_threshold)});
    }
    std::fputs(classes.ToString().c_str(), out);
  }

  if (!r.events.empty()) {
    Histogram hist = Histogram::Log2(1.0, 14);
    hist.AddLatencies(r.events);
    ChartOptions copts;
    copts.title = "latency histogram (ms bins, log counts)";
    copts.log_y = true;
    std::fputs(RenderHistogram(hist, copts).c_str(), out);
  }

  if (options.dump_events) {
    std::fprintf(out, "\n%-10s %-14s %-10s %-10s %s\n", "start_s", "type", "latency_ms",
                 "queue_ms", "label");
    for (const EventRecord& e : r.events) {
      std::fprintf(out, "%-10.3f %-14s %-10.3f %-10.3f %s\n", CyclesToSeconds(e.start),
                   std::string(MessageTypeName(e.type)).c_str(), e.latency_ms(),
                   e.queue_delay_ms(), e.label.c_str());
    }
  }

  if (!options.csv_prefix.empty()) {
    WriteEventsCsv(options.csv_prefix + "-" + os_name + "-events.csv", r.events);
    WriteCurveCsv(options.csv_prefix + "-" + os_name + "-cumlat.csv",
                  CumulativeLatencyByLatency(r.events));
    std::fprintf(out, "wrote %s-%s-{events,cumlat}.csv\n", options.csv_prefix.c_str(),
                 os_name.c_str());
  }
}

int RunOne(const OsProfile& os, const CliOptions& options, std::FILE* out) {
  std::unique_ptr<GuiApplication> app = MakeApp(options.app);
  if (app == nullptr) {
    std::fprintf(out, "unknown app '%s'\n", options.app.c_str());
    return 2;
  }
  const std::string workload_name =
      options.workload.empty() ? DefaultWorkloadFor(options.app) : options.workload;

  DriverKind driver = DriverKind::kTest;
  if (!ParseDriver(options.driver, &driver)) {
    std::fprintf(out, "unknown driver '%s'\n", options.driver.c_str());
    return 2;
  }

  SessionOptions sopts;
  sopts.driver = driver;
  sopts.seed = options.seed;
  sopts.idle_period = MillisecondsToCycles(options.idle_period_ms);
  sopts.collect_trace =
      !options.trace_out.empty() || options.explain;
  if (workload_name == "media") {
    sopts.drain_after = SecondsToCycles(12.0);  // playback outlives the script
  }
  MeasurementSession session(os, sopts);
  session.AttachApp(std::move(app));

  SessionResult r;
  if (workload_name == "network") {
    NetworkTrafficParams nparams;
    nparams.seed = options.seed;
    nparams.packets = options.packets;
    NetworkTrafficDriver ndriver(&session.system(), &session.thread(), nparams);
    r = session.RunWithDriver(&ndriver);
  } else {
    Random rng(options.seed);
    const Script script = MakeWorkload(workload_name, &rng, options);
    if (script.empty()) {
      std::fprintf(out, "unknown workload '%s'\n", workload_name.c_str());
      return 2;
    }
    r = session.Run(script);
  }

  PrintSummary(out, os.name, r, options);

  // Under --os=all, per-file outputs get a personality suffix so three
  // runs do not clobber each other.
  auto per_os_path = [&](const std::string& base) {
    return options.os == "all" ? base + "." + os.name : base;
  };

  if (options.explain && r.trace_data != nullptr) {
    ExplainOptions xopts;
    xopts.threshold_ms = options.threshold_ms;
    std::fputs(ExplainLatencyReport(r.events, *r.trace_data, xopts).c_str(), out);
  }
  if (!options.trace_out.empty()) {
    const std::string path = per_os_path(options.trace_out);
    if (r.trace_data == nullptr || !obs::WriteChromeTraceJson(path, *r.trace_data)) {
      std::fprintf(out, "failed to write trace to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "wrote trace (%zu events) to %s\n", r.trace_data->events.size(),
                 path.c_str());
  }
  if (!options.metrics_out.empty()) {
    const std::string path = per_os_path(options.metrics_out);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(out, "failed to write metrics to %s\n", path.c_str());
      return 1;
    }
    std::fputs(r.metrics_json.c_str(), f);
    std::fclose(f);
    std::fprintf(out, "wrote %zu metrics to %s\n", r.metrics.size(), path.c_str());
  }

  if (!options.save_path.empty()) {
    const std::string path = options.os == "all"
                                 ? options.save_path + "." + os.name
                                 : options.save_path;
    if (!SaveSessionResult(path, r)) {
      std::fprintf(out, "failed to save session to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "saved session to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

bool ParseCliArgs(const std::vector<std::string>& args, CliOptions* out, std::string* error) {
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out->show_help = true;
    } else if (StartsWith(arg, "--os=")) {
      out->os = arg.substr(5);
    } else if (StartsWith(arg, "--app=")) {
      out->app = arg.substr(6);
    } else if (StartsWith(arg, "--workload=")) {
      out->workload = arg.substr(11);
    } else if (StartsWith(arg, "--driver=")) {
      out->driver = arg.substr(9);
    } else if (StartsWith(arg, "--seed=")) {
      out->seed = std::stoull(arg.substr(7));
    } else if (StartsWith(arg, "--threshold=")) {
      out->threshold_ms = std::stod(arg.substr(12));
    } else if (StartsWith(arg, "--idle-period=")) {
      out->idle_period_ms = std::stod(arg.substr(14));
    } else if (StartsWith(arg, "--packets=")) {
      out->packets = std::stoi(arg.substr(10));
    } else if (StartsWith(arg, "--frames=")) {
      out->frames = std::stoi(arg.substr(9));
    } else if (StartsWith(arg, "--save=")) {
      out->save_path = arg.substr(7);
    } else if (StartsWith(arg, "--load=")) {
      out->load_path = arg.substr(7);
    } else if (StartsWith(arg, "--csv=")) {
      out->csv_prefix = arg.substr(6);
    } else if (StartsWith(arg, "--trace-out=")) {
      out->trace_out = arg.substr(12);
    } else if (StartsWith(arg, "--metrics-out=")) {
      out->metrics_out = arg.substr(14);
    } else if (arg == "--explain") {
      out->explain = true;
    } else if (arg == "--events") {
      out->dump_events = true;
    } else if (arg == "--list") {
      out->list_catalog = true;
    } else if (arg == "--version") {
      out->show_version = true;
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  return true;
}

std::string CliUsage() {
  return
      "ilat -- interactive latency measurement (Endo et al., OSDI '96)\n"
      "\n"
      "usage: ilat [options]\n"
      "  --os=nt351|nt40|win95|all   operating-system personality (nt40)\n"
      "  --app=notepad|word|powerpoint|desktop|echo|terminal|media   app model\n"
      "  --workload=NAME             input script or 'network' (defaults per app)\n"
      "  --driver=test|test-nosync|human   input driver (test)\n"
      "  --seed=N                    workload/machine seed (42)\n"
      "  --threshold=MS              irritation threshold (100)\n"
      "  --idle-period=MS            idle-loop instrument period (1.0)\n"
      "  --packets=N --frames=N      sizes for network/media workloads\n"
      "  --events                    dump one line per event\n"
      "  --csv=PREFIX                export events + cumulative curve CSVs\n"
      "  --trace-out=PATH            write a Chrome trace_event JSON timeline\n"
      "  --metrics-out=PATH          write the metrics-registry JSON snapshot\n"
      "  --explain                   explain events above the threshold from the trace\n"
      "  --save=PATH                 archive the session for offline analysis\n"
      "  --load=PATH                 analyse a saved session instead of running\n"
      "  --list                      list oses, apps, workloads, and drivers\n"
      "  --version                   print the ilat version\n";
}

int RunCli(const CliOptions& options, std::FILE* out) {
  if (options.show_help) {
    std::fputs(CliUsage().c_str(), out);
    return 0;
  }
  if (options.show_version) {
    std::fprintf(out, "ilat %s\n", kIlatVersion);
    return 0;
  }
  if (options.list_catalog) {
    std::fputs("oses:      ", out);
    for (const OsProfile& os : AllPersonalities()) {
      std::fprintf(out, "%s ", os.name.c_str());
    }
    std::fputs(
        "\n"
        "apps:      notepad word powerpoint desktop echo terminal media\n"
        "workloads: notepad word powerpoint keys clicks echo media network\n"
        "drivers:   test test-nosync human\n",
        out);
    return 0;
  }

  if (!options.load_path.empty()) {
    SessionResult r;
    if (!LoadSessionResult(options.load_path, &r)) {
      std::fprintf(out, "failed to load %s\n", options.load_path.c_str());
      return 1;
    }
    PrintSummary(out, "saved:" + options.load_path, r, options);
    return 0;
  }

  if (options.os == "all") {
    for (const OsProfile& os : AllPersonalities()) {
      std::fprintf(out, "\n===== %s =====\n", os.name.c_str());
      const int rc = RunOne(os, options, out);
      if (rc != 0) {
        return rc;
      }
    }
    return 0;
  }

  for (const OsProfile& os : AllPersonalities()) {
    if (os.name == options.os) {
      return RunOne(os, options, out);
    }
  }
  std::fprintf(out, "unknown os '%s'\n", options.os.c_str());
  return 2;
}

}  // namespace ilat
