#include "src/tools/cli.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "src/analysis/classifier.h"
#include "src/analysis/cumulative.h"
#include "src/analysis/histogram.h"
#include "src/analysis/irritation.h"
#include "src/campaign/gate.h"
#include "src/campaign/journal.h"
#include "src/campaign/runner.h"
#include "src/campaign/shard.h"
#include "src/core/catalog.h"
#include "src/core/measurement.h"
#include "src/core/session_io.h"
#include "src/fault/plan.h"
#include "src/obs/jsonout.h"
#include "src/obs/profiler.h"
#include "src/obs/trace_export.h"
#include "src/viz/ascii_chart.h"
#include "src/viz/csv.h"
#include "src/viz/explain.h"
#include "src/viz/table.h"

namespace ilat {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Checked flag parsers: the whole value must parse, fit, and be in range.
// On failure they set *error to a one-line usage message and ParseCliArgs
// returns false, so the binary prints it and exits 2 -- no std::sto*
// exceptions, no silent truncation, no accepting "1e999" as infinity.

bool ParseFlagU64(const std::string& flag, const std::string& value, std::uint64_t* out,
                  std::string* error) {
  std::uint64_t v = 0;
  bool ok = !value.empty();
  for (std::size_t i = 0; ok && i < value.size(); ++i) {
    const char c = value[i];
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      ok = false;
      break;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      ok = false;  // overflow
      break;
    }
    v = v * 10 + digit;
  }
  if (!ok) {
    *error = flag + " needs an unsigned integer, got '" + value + "'";
    return false;
  }
  *out = v;
  return true;
}

// Strict small-integer parse for flags like --jobs: digits only, bounded.
bool ParseFlagInt(const std::string& flag, const std::string& value, int lo, int hi,
                  int* out, std::string* error) {
  std::uint64_t v = 0;
  std::string ignored;
  if (!ParseFlagU64(flag, value, &v, &ignored) || v < static_cast<std::uint64_t>(lo) ||
      v > static_cast<std::uint64_t>(hi)) {
    *error = flag + " needs an integer in [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "], got '" + value + "'";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// "--shard=I/N": a shard index and count with 0 <= I < N.
bool ParseFlagShard(const std::string& value, int* index, int* count, std::string* error) {
  const std::size_t slash = value.find('/');
  std::string ignored;
  std::uint64_t i = 0;
  std::uint64_t n = 0;
  if (slash == std::string::npos ||
      !ParseFlagU64("--shard", value.substr(0, slash), &i, &ignored) ||
      !ParseFlagU64("--shard", value.substr(slash + 1), &n, &ignored) || n == 0 ||
      n > 1'000'000 || i >= n) {
    *error = "--shard needs I/N with 0 <= I < N (e.g. --shard=2/8), got '" + value + "'";
    return false;
  }
  *index = static_cast<int>(i);
  *count = static_cast<int>(n);
  return true;
}

// Finite double in [lo, hi]; rejects trailing junk and overflow-to-inf.
bool ParseFlagDouble(const std::string& flag, const std::string& value, double lo,
                     double hi, double* out, std::string* error) {
  char* end = nullptr;
  const double v = value.empty() ? 0.0 : std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || !std::isfinite(v) ||
      v < lo || v > hi) {
    *error = flag + " needs a number in [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "], got '" + value + "'";
    return false;
  }
  *out = v;
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

void PrintSummary(std::FILE* out, const std::string& os_name, const SessionResult& r,
                  const CliOptions& options) {
  const IrritationReport rep = AnalyzeIrritation(r.events, options.threshold_ms,
                                                 r.elapsed() > 0 ? r.elapsed() : 0);
  TextTable t({"metric", "value"});
  t.AddRow({"system", os_name});
  t.AddRow({"events", std::to_string(r.events.size())});
  t.AddRow({"elapsed (s)", TextTable::Num(r.elapsed_seconds(), 2)});
  t.AddRow({"cumulative latency (ms)", TextTable::Num(TotalLatencyMs(r.events), 1)});
  t.AddRow({"p50 / p95 / p99 (ms)", TextTable::Num(rep.p50_ms, 2) + " / " +
                                        TextTable::Num(rep.p95_ms, 2) + " / " +
                                        TextTable::Num(rep.p99_ms, 2)});
  t.AddRow({"max latency (ms)", TextTable::Num(rep.max_ms, 1)});
  t.AddRow({"events > " + TextTable::Num(options.threshold_ms, 0) + " ms",
            std::to_string(rep.events_above) + " (" + TextTable::Num(rep.rate_per_minute, 2) +
                "/min)"});
  t.AddRow({"longest calm stretch (s)", TextTable::Num(rep.longest_calm_s, 1)});
  t.AddRow({"latency share of <10ms events",
            TextTable::Num(100.0 * LatencyFractionBelow(r.events, 10.0), 1) + "%"});
  std::fputs(t.ToString().c_str(), out);

  if (!r.events.empty()) {
    TextTable classes({"event class", "count", "mean (ms)", "max (ms)", "over expectation"});
    for (const ClassSummary& c : SummarizeByClass(r.events)) {
      classes.AddRow({std::string(EventClassName(c.event_class)), std::to_string(c.count),
                      TextTable::Num(c.mean_ms, 2), TextTable::Num(c.max_ms, 1),
                      std::to_string(c.over_threshold)});
    }
    std::fputs(classes.ToString().c_str(), out);
  }

  if (!r.events.empty()) {
    Histogram hist = Histogram::Log2(1.0, 14);
    hist.AddLatencies(r.events);
    ChartOptions copts;
    copts.title = "latency histogram (ms bins, log counts)";
    copts.log_y = true;
    std::fputs(RenderHistogram(hist, copts).c_str(), out);
  }

  if (options.dump_events) {
    std::fprintf(out, "\n%-10s %-14s %-10s %-10s %s\n", "start_s", "type", "latency_ms",
                 "queue_ms", "label");
    for (const EventRecord& e : r.events) {
      std::fprintf(out, "%-10.3f %-14s %-10.3f %-10.3f %s\n", CyclesToSeconds(e.start),
                   std::string(MessageTypeName(e.type)).c_str(), e.latency_ms(),
                   e.queue_delay_ms(), e.label.c_str());
    }
  }

  if (!options.csv_prefix.empty()) {
    WriteEventsCsv(options.csv_prefix + "-" + os_name + "-events.csv", r.events);
    WriteCurveCsv(options.csv_prefix + "-" + os_name + "-cumlat.csv",
                  CumulativeLatencyByLatency(r.events));
    std::fprintf(out, "wrote %s-%s-{events,cumlat}.csv\n", options.csv_prefix.c_str(),
                 os_name.c_str());
  }
}

// The measured run window for --profile: RunSpecSession wall time and the
// session's simulated extent (for the ns/simulated-ms column).
struct RunWindow {
  double wall_s = 0.0;
  double simulated_ms = 0.0;
};

int RunOneInner(const std::string& os_name, const CliOptions& options,
                const fault::FaultPlan& faults, std::FILE* out, RunWindow* window) {
  RunSpec spec;
  spec.os = os_name;
  spec.app = options.app;
  spec.workload = options.workload;
  spec.driver = options.driver;
  spec.seed = options.seed;
  spec.idle_period_ms = options.idle_period_ms;
  spec.collect_trace = !options.trace_out.empty() || options.explain;
  spec.params.packets = options.packets;
  spec.params.frames = options.frames;
  spec.params.media.fps = options.media_fps;
  spec.params.media.buffer_frames = options.media_buffer;
  spec.params.media.frames = options.frames;
  spec.params.server.users = options.users;
  spec.params.server.pool_size = options.pool;
  spec.params.server.queue_depth = options.queue_depth;
  spec.params.server.cache_hit_rate = options.cache_hit;
  spec.params.server.requests_per_user = options.requests;
  spec.faults = faults;

  SessionResult r;
  std::string error;
  const auto run_start = std::chrono::steady_clock::now();
  const bool ran = RunSpecSession(spec, &r, &error);
  if (window != nullptr) {
    window->wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
            .count();
    window->simulated_ms = CyclesToMilliseconds(r.run_end);
  }
  if (!ran) {
    std::fprintf(out, "%s\n", error.c_str());
    return 2;
  }

  PrintSummary(out, os_name, r, options);
  if (r.fault.enabled) {
    std::fprintf(out, "fault injection: %s\n", r.fault.Summary().c_str());
  }

  // Under --os=all, per-file outputs get a personality suffix so three
  // runs do not clobber each other.
  auto per_os_path = [&](const std::string& base) {
    return options.os == "all" ? base + "." + os_name : base;
  };

  if (options.explain && r.trace_data != nullptr) {
    ExplainOptions xopts;
    xopts.threshold_ms = options.threshold_ms;
    std::fputs(ExplainLatencyReport(r.events, *r.trace_data, xopts).c_str(), out);
  }
  if (!options.trace_out.empty()) {
    const std::string path = per_os_path(options.trace_out);
    if (r.trace_data == nullptr || !obs::WriteChromeTraceJson(path, *r.trace_data)) {
      std::fprintf(out, "failed to write trace to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "wrote trace (%zu events) to %s\n", r.trace_data->events.size(),
                 path.c_str());
  }
  if (!options.metrics_out.empty()) {
    const std::string path = per_os_path(options.metrics_out);
    if (!WriteTextFile(path, r.metrics_json)) {
      std::fprintf(out, "failed to write metrics to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "wrote %zu metrics to %s\n", r.metrics.size(), path.c_str());
  }

  if (!options.save_path.empty()) {
    const std::string path = options.os == "all"
                                 ? options.save_path + "." + os_name
                                 : options.save_path;
    if (!SaveSessionResult(path, r)) {
      std::fprintf(out, "failed to save session to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "saved session to %s\n", path.c_str());
  }
  // A degraded faulted run is still a successful *experiment* (the faults
  // were requested), so it exits 0 unless --fail-degraded asks otherwise.
  if (r.fault.degraded && options.fail_degraded) {
    return 1;
  }
  return 0;
}

int RunOne(const std::string& os_name, const CliOptions& options,
           const fault::FaultPlan& faults, std::FILE* out) {
  if (!options.profile) {
    return RunOneInner(os_name, options, faults, out, nullptr);
  }
  // The profiler observes the host only (clock reads into its own slots),
  // so profiled runs produce byte-identical simulated artifacts --
  // scripts/check_profile.sh cmp-enforces this.
  obs::HostProfiler profiler;
  obs::HostProfiler::Install(&profiler);
  RunWindow window;
  const int rc = RunOneInner(os_name, options, faults, out, &window);
  obs::HostProfiler::Uninstall();
  if (rc == 2) {
    return rc;  // the session never ran; there is nothing to report
  }
  std::fputs(profiler.RenderTable(window.wall_s, window.simulated_ms).c_str(), out);
  if (!options.profile_out.empty()) {
    const std::string path = options.os == "all" ? options.profile_out + "." + os_name
                                                 : options.profile_out;
    if (!WriteTextFile(path, profiler.ToJson(window.wall_s, window.simulated_ms))) {
      std::fprintf(out, "failed to write profile to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(out, "wrote host-time profile to %s\n", path.c_str());
  }
  return rc;
}

// Map a --gate-percentiles token onto an aggregate group key.
bool NormalizeGateMetric(std::string token, std::string* out) {
  if (token.size() > 3 && token.substr(token.size() - 3) == "_ms") {
    token = token.substr(0, token.size() - 3);
  }
  for (const char* known : {"p50", "p95", "p99", "max", "mean", "cumulative"}) {
    if (token == known) {
      *out = token + "_ms";
      return true;
    }
  }
  if (token == "above") {
    *out = "above";
    return true;
  }
  return false;
}

// Translate the --gate-* flags into GateOptions.  Returns false (after
// printing a one-line message; caller exits 2) on an unknown metric name.
bool BuildGateOptions(const CliOptions& options, campaign::GateOptions* gate_options,
                      std::FILE* out) {
  gate_options->tolerance_pct = options.gate_tolerance_pct;
  gate_options->fault_tolerance_pct = options.gate_fault_tolerance_pct;
  if (options.gate_percentiles.empty()) {
    return true;
  }
  gate_options->metrics.clear();
  std::string token;
  std::string normalized;
  for (std::size_t i = 0; i <= options.gate_percentiles.size(); ++i) {
    if (i < options.gate_percentiles.size() && options.gate_percentiles[i] != ',') {
      token += options.gate_percentiles[i];
      continue;
    }
    if (token.empty()) {
      continue;
    }
    if (!NormalizeGateMetric(token, &normalized)) {
      std::fprintf(out, "unknown gate percentile '%s'\n", token.c_str());
      return false;
    }
    gate_options->metrics.push_back(normalized);
    token.clear();
  }
  if (gate_options->metrics.empty()) {
    std::fprintf(out, "--gate-percentiles lists no metrics\n");
    return false;
  }
  return true;
}

// Host-side timing telemetry: the slowest-cells table for the campaign
// summary, and the timing.json/timing.csv artifacts.  Cell wall times are
// host-dependent, so they live in *separate* artifacts -- aggregate.json
// and cells.csv stay byte-identical across hosts, jobs counts, and
// with/without --profile.
void PrintSlowestCells(const campaign::CampaignAggregate& aggregate, std::FILE* out) {
  std::vector<const campaign::CellResult*> cells;
  for (const campaign::CellResult& r : aggregate.cells()) {
    if (r.wall_s > 0.0) {
      cells.push_back(&r);
    }
  }
  if (cells.empty()) {
    return;  // e.g. a merge of partials that predate wall-time telemetry
  }
  std::stable_sort(cells.begin(), cells.end(),
                   [](const campaign::CellResult* a, const campaign::CellResult* b) {
                     return a->wall_s > b->wall_s;
                   });
  double total = 0.0;
  for (const campaign::CellResult* r : cells) {
    total += r->wall_s;
  }
  const std::size_t top = std::min<std::size_t>(5, cells.size());
  std::fprintf(out, "slowest cells (host wall time; %.2f s total across %zu cells):\n",
               total, cells.size());
  for (std::size_t i = 0; i < top; ++i) {
    const campaign::CellResult* r = cells[i];
    std::fprintf(out, "  [%4zu] %-44s %8.3f s  (%.1f%%)%s\n", r->cell.index,
                 r->cell.Label().c_str(), r->wall_s, 100.0 * r->wall_s / total,
                 r->degraded ? "  degraded" : "");
  }
}

bool WriteTimingArtifacts(const std::string& dir,
                          const campaign::CampaignAggregate& aggregate) {
  std::string json = "{\"cells\": [";
  std::string csv = "index,label,wall_s,attempts,degraded\n";
  double total = 0.0;
  bool first = true;
  for (const campaign::CellResult& r : aggregate.cells()) {
    total += r.wall_s;
    if (!first) {
      json += ", ";
    }
    first = false;
    json += "{\"index\": " + std::to_string(r.cell.index) + ", \"label\": \"" +
            obs::EscapeJson(r.cell.Label()) + "\", \"wall_s\": " + obs::NumToJson(r.wall_s) +
            ", \"attempts\": " + std::to_string(r.attempts) +
            ", \"degraded\": " + (r.degraded ? "true" : "false") + "}";
    csv += std::to_string(r.cell.index) + "," + r.cell.Label() + "," +
           obs::NumToJson(r.wall_s) + "," + std::to_string(r.attempts) + "," +
           (r.degraded ? "1" : "0") + "\n";
  }
  json += "], \"total_cell_wall_s\": " + obs::NumToJson(total) + "}\n";
  return WriteTextFile(dir + "/timing.json", json) &&
         WriteTextFile(dir + "/timing.csv", csv);
}

// Shared tail of campaign and merge mode: render tables, write
// --campaign-out artifacts, gate against --campaign-baseline.
int FinishAggregate(const CliOptions& options, const campaign::CampaignAggregate& aggregate,
                    const campaign::GateOptions& gate_options, std::FILE* out) {
  std::fputs(aggregate.RenderTables().c_str(), out);
  PrintSlowestCells(aggregate, out);

  if (!options.campaign_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.campaign_out, ec);
    const std::string agg_path = options.campaign_out + "/aggregate.json";
    const std::string csv_path = options.campaign_out + "/cells.csv";
    if (ec || !WriteTextFile(agg_path, aggregate.ToJson()) ||
        !WriteTextFile(csv_path, aggregate.ToCellsCsv()) ||
        !WriteTimingArtifacts(options.campaign_out, aggregate)) {
      std::fprintf(out, "failed to write campaign outputs under %s\n",
                   options.campaign_out.c_str());
      return 1;
    }
    std::fprintf(out, "wrote %s and %s (+ timing.{json,csv})\n", agg_path.c_str(),
                 csv_path.c_str());
  }

  if (!options.campaign_baseline.empty()) {
    std::string baseline;
    std::string error;
    if (!ReadTextFile(options.campaign_baseline, &baseline)) {
      std::fprintf(out, "cannot read baseline %s\n", options.campaign_baseline.c_str());
      return 2;
    }
    campaign::GateReport report;
    if (!campaign::RunRegressionGate(baseline, aggregate, gate_options, &report, &error)) {
      std::fprintf(out, "%s\n", error.c_str());
      return 2;
    }
    std::fputs(report.Render(gate_options).c_str(), out);
    if (!report.ok()) {
      return 1;
    }
  }
  return 0;
}

// Graceful shutdown: SIGINT/SIGTERM flip the stop flag the campaign
// runner polls.  File-static so the (async-signal-safe, lock-free) handler
// can reach it; RunCampaignCli resets the state on entry, so in-process
// callers (cli_test) can run campaigns back to back.
std::atomic<bool> g_stop{false};
std::atomic<int> g_stop_signal{0};

void HandleStopSignal(int signo) {
  g_stop_signal.store(signo, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_release);
}

int RunCampaignCli(const CliOptions& options, const fault::FaultPlan* cli_faults,
                   std::FILE* out) {
  std::string error;
  campaign::CampaignSpec spec;
  if (!campaign::LoadCampaignSpec(options.campaign_path, &spec, &error)) {
    std::fprintf(out, "campaign spec: %s\n", error.c_str());
    return 2;
  }
  if (cli_faults != nullptr) {
    spec.faults = *cli_faults;  // --faults= overrides any spec-embedded plan
  }
  if (options.cell_timeout_s > 0.0) {
    // Like --faults: the flag overrides the spec key *before* the spec
    // hash is taken, so a journal records the budget the cells ran under.
    spec.timeout_cell_s = options.cell_timeout_s;
  }

  campaign::GateOptions gate_options;
  if (!BuildGateOptions(options, &gate_options, out)) {
    return 2;
  }

  const std::size_t total = spec.ExpandCells().size();

  // Resume: load and validate the journal before anything runs.  All the
  // identity checks are against the spec *after* command-line overrides,
  // so resuming under different --faults or --cell-timeout is caught.
  campaign::JournalData journal_data;
  bool resuming = false;
  if (!options.resume_path.empty()) {
    if (!campaign::LoadJournal(options.resume_path, &journal_data, &error)) {
      std::fprintf(out, "%s\n", error.c_str());
      return 2;
    }
    const campaign::CampaignFileHeader& h = journal_data.header;
    const std::string spec_hash = campaign::SpecHashHex(spec);
    if (h.spec_hash != spec_hash) {
      std::fprintf(out,
                   "%s: journal was written by a different spec (journal hash %s, this "
                   "spec %s; check --faults/--cell-timeout overrides too)\n",
                   options.resume_path.c_str(), h.spec_hash.c_str(), spec_hash.c_str());
      return 2;
    }
    if (h.name != spec.name || h.seed != spec.campaign_seed ||
        h.threshold_ms != spec.threshold_ms || h.total_cells != total) {
      std::fprintf(out, "%s: journal campaign identity does not match spec '%s'\n",
                   options.resume_path.c_str(), spec.name.c_str());
      return 2;
    }
    if (h.shard_index != static_cast<std::uint64_t>(options.shard_index) ||
        h.shard_count != static_cast<std::uint64_t>(options.shard_count)) {
      std::fprintf(out, "%s: journal is for shard %llu/%llu, this run is shard %d/%d\n",
                   options.resume_path.c_str(),
                   static_cast<unsigned long long>(h.shard_index),
                   static_cast<unsigned long long>(h.shard_count), options.shard_index,
                   options.shard_count);
      return 2;
    }
    resuming = true;
  }
  if (options.shard_count > 1) {
    std::fprintf(out, "campaign '%s': shard %d/%d of %zu cells, %d job(s), threshold %.3g ms\n",
                 spec.name.c_str(), options.shard_index, options.shard_count, total,
                 options.jobs, spec.threshold_ms);
  } else {
    std::fprintf(out, "campaign '%s': %zu cells, %d job(s), threshold %.3g ms\n",
                 spec.name.c_str(), total, options.jobs, spec.threshold_ms);
  }

  // This process's share of the expansion (== total unless sharded), for
  // the --progress denominator and ETA.
  std::size_t my_cells = 0;
  for (std::size_t index = 0; index < total; ++index) {
    if (index % static_cast<std::size_t>(options.shard_count) ==
        static_cast<std::size_t>(options.shard_index)) {
      ++my_cells;
    }
  }

  if (resuming) {
    std::fprintf(out, "resume: replaying %zu completed cell(s) from %s%s\n",
                 journal_data.cells.size(), options.resume_path.c_str(),
                 journal_data.torn_tail_dropped
                     ? " (dropped a torn final record; that cell re-runs)"
                     : "");
  }

  campaign::CampaignRunOptions run_options;
  run_options.jobs = options.jobs;
  run_options.shard_index = options.shard_index;
  run_options.shard_count = options.shard_count;
  if (resuming) {
    run_options.completed = &journal_data.cells;
  }
  campaign::CellWallTracker tracker;
  run_options.tracker = &tracker;
  obs::HostProfiler profiler;
  if (options.profile) {
    run_options.profiler = &profiler;
  }
  const auto campaign_start = std::chrono::steady_clock::now();
  std::size_t cells_done = 0;
  std::size_t cells_degraded = 0;
  double simulated_ms = 0.0;
  run_options.on_cell = [&](const campaign::CellResult& r) {
    std::fprintf(out, "  [%3zu/%zu] %-40s events=%-5zu p95=%-8.2f above=%zu\n",
                 r.cell.index + 1, total, r.cell.Label().c_str(), r.events, r.p95_ms,
                 r.above);
    ++cells_done;
    if (r.degraded) {
      ++cells_degraded;
    }
    simulated_ms += r.elapsed_s * 1e3;
    if (options.progress_every > 0 &&
        (cells_done % static_cast<std::size_t>(options.progress_every) == 0 ||
         cells_done == my_cells)) {
      // The heartbeat goes to stderr so stdout (and anything parsing it)
      // stays exactly as without --progress.
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_start)
              .count();
      const double rate = elapsed > 0.0 ? static_cast<double>(cells_done) / elapsed : 0.0;
      const double eta =
          rate > 0.0 ? static_cast<double>(my_cells - cells_done) / rate : 0.0;
      // Cells running far beyond the median get a suffix; the line is
      // otherwise byte-identical to a run without stragglers, so scripts
      // parsing the prefix keep working.
      std::string stalled;
      for (const campaign::StalledCellInfo& s : tracker.Stalled(3.0)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s #%zu(%.1fs)",
                      stalled.empty() ? " | stalled" : ",", s.index, s.running_s);
        stalled += buf;
      }
      std::fprintf(stderr,
                   "progress: %zu/%zu cells (%.0f%%) | %.2f cells/s | eta %.1f s | "
                   "degraded %zu%s\n",
                   cells_done, my_cells,
                   100.0 * static_cast<double>(cells_done) / static_cast<double>(my_cells),
                   rate, eta, cells_degraded, stalled.c_str());
    }
  };

  campaign::PartialWriter partial;
  if (!options.campaign_partial.empty()) {
    if (!partial.Open(options.campaign_partial, spec, total, options.shard_index,
                      options.shard_count, &error)) {
      std::fprintf(out, "%s\n", error.c_str());
      return 1;
    }
  }

  campaign::JournalWriter journal;
  bool journal_failed = false;
  std::string journal_error;
  if (!options.journal_path.empty()) {
    journal.Open(options.journal_path, spec, total, options.shard_index,
                 options.shard_count);
    if (resuming) {
      journal.SeedLines(journal_data.raw_lines);
    }
    // Flush the header now so an unwritable path fails before any cell runs.
    if (!journal.Flush(&error)) {
      std::fprintf(out, "%s\n", error.c_str());
      return 1;
    }
  }
  if (!options.campaign_partial.empty() || journal.open()) {
    run_options.on_result = [&](const campaign::CellResult& r) {
      if (!options.campaign_partial.empty()) {
        partial.Add(r);
      }
      if (journal.open() && !journal_failed && !journal.Add(r, &journal_error)) {
        journal_failed = true;  // reported once, after the run
      }
    };
  }

  // Route SIGINT/SIGTERM to the stop flag for the duration of the run.
  g_stop.store(false, std::memory_order_relaxed);
  g_stop_signal.store(0, std::memory_order_relaxed);
  run_options.stop = &g_stop;
  using SignalHandler = void (*)(int);
  const SignalHandler prev_int = std::signal(SIGINT, HandleStopSignal);
  const SignalHandler prev_term = std::signal(SIGTERM, HandleStopSignal);

  campaign::CampaignAggregate aggregate(spec.name, spec.campaign_seed, spec.threshold_ms);
  campaign::CampaignRunStats stats;
  const bool run_ok = campaign::RunCampaign(spec, run_options, &aggregate, &stats, &error);

  std::signal(SIGINT, prev_int == SIG_ERR ? SIG_DFL : prev_int);
  std::signal(SIGTERM, prev_term == SIG_ERR ? SIG_DFL : prev_term);

  if (!run_ok) {
    std::fprintf(out, "campaign failed: %s\n", error.c_str());
    return 1;
  }
  if (journal_failed) {
    std::fprintf(out, "%s\n", journal_error.c_str());
    return 1;
  }
  if (stats.interrupted) {
    // The in-order fold stopped early: the aggregate is partial, but every
    // finished cell is in the journal.  Point the user at --resume and
    // exit with the conventional 128+signo code.
    const int raw_signal = g_stop_signal.load(std::memory_order_relaxed);
    const int signo = raw_signal != 0 ? raw_signal : SIGINT;
    if (journal.open()) {
      std::fprintf(out,
                   "interrupted: %zu cell(s) journaled; resume with: ilat --campaign=%s "
                   "--resume=%s\n",
                   journal.cell_count(), options.campaign_path.c_str(),
                   journal.path().c_str());
    } else {
      std::fprintf(out,
                   "interrupted: completed cells were not journaled (run with "
                   "--journal=FILE to make campaigns resumable)\n");
    }
    return 128 + signo;
  }
  if (!options.campaign_partial.empty()) {
    if (!partial.Finish(&error)) {
      std::fprintf(out, "%s\n", error.c_str());
      return 1;
    }
    std::fprintf(out, "wrote shard %d/%d partial (%zu of %zu cells) to %s\n",
                 options.shard_index, options.shard_count, stats.cells, stats.total_cells,
                 options.campaign_partial.c_str());
  }
  std::fprintf(out, "ran %zu cells with %d job(s) in %.2f s (wall)\n", stats.cells,
               stats.jobs, stats.wall_seconds);
  if (spec.faults.Any() || !spec.fault_sweeps.empty()) {
    std::fprintf(out, "fault injection: %zu degraded cell(s), %zu retried cell(s)\n",
                 stats.degraded_cells, stats.retried_cells);
  }
  if (journal.open()) {
    std::fprintf(out, "journal: %zu cell(s) in %s\n", journal.cell_count(),
                 journal.path().c_str());
  }
  if (stats.quarantined_cells > 0) {
    std::fprintf(out,
                 "watchdog: quarantined %zu cell(s) that exceeded the %.3g s wall "
                 "budget (tolerating %d)\n",
                 stats.quarantined_cells, spec.timeout_cell_s, options.max_quarantined);
  }
  if (options.profile) {
    std::fputs(profiler.RenderTable(stats.wall_seconds, simulated_ms, stats.jobs).c_str(),
               out);
    if (!options.profile_out.empty()) {
      if (!WriteTextFile(options.profile_out,
                         profiler.ToJson(stats.wall_seconds, simulated_ms, stats.jobs))) {
        std::fprintf(out, "failed to write profile to %s\n", options.profile_out.c_str());
        return 1;
      }
      std::fprintf(out, "wrote host-time profile to %s\n", options.profile_out.c_str());
    }
  }
  std::fputs("\n", out);

  // A shard holds a fraction of the campaign: its tables and any gate
  // verdict would be misleading, so sharded runs stop at the partial
  // (ParseCliArgs already rejects --campaign-out/--campaign-baseline).
  if (options.shard_count > 1) {
    if (stats.quarantined_cells > static_cast<std::size_t>(options.max_quarantined)) {
      return 1;
    }
    if (options.fail_degraded && stats.degraded_cells > 0) {
      return 1;
    }
    return 0;
  }

  const int rc = FinishAggregate(options, aggregate, gate_options, out);
  if (rc != 0) {
    return rc;
  }
  if (stats.quarantined_cells > static_cast<std::size_t>(options.max_quarantined)) {
    return 1;
  }
  if (options.fail_degraded && stats.degraded_cells > 0) {
    return 1;
  }
  return 0;
}

// `ilat merge PARTIAL...`: recombine shard partials into the aggregate
// the unsharded run would have produced, then reuse the normal artifact
// and gating tail.
int RunMergeCli(const CliOptions& options, std::FILE* out) {
  campaign::GateOptions gate_options;
  if (!BuildGateOptions(options, &gate_options, out)) {
    return 2;
  }

  std::string error;
  std::unique_ptr<campaign::CampaignAggregate> aggregate;
  campaign::MergeStats stats;
  if (!campaign::MergePartials(options.merge_inputs, &aggregate, &stats, &error)) {
    std::fprintf(out, "merge: %s\n", error.c_str());
    return 2;
  }
  std::fprintf(out, "merged %zu partial(s) covering %zu cell(s)\n\n", stats.partials,
               stats.cells);
  return FinishAggregate(options, *aggregate, gate_options, out);
}

}  // namespace

bool ParseCliArgs(const std::vector<std::string>& args, CliOptions* out, std::string* error) {
  bool shard_set = false;
  for (std::size_t argi = 0; argi < args.size(); ++argi) {
    const std::string& arg = args[argi];
    if (argi == 0 && arg == "merge") {
      out->merge_mode = true;
    } else if (out->merge_mode && !StartsWith(arg, "-")) {
      out->merge_inputs.push_back(arg);
    } else if (arg == "--help" || arg == "-h") {
      out->show_help = true;
    } else if (StartsWith(arg, "--os=")) {
      out->os = arg.substr(5);
    } else if (StartsWith(arg, "--app=")) {
      out->app = arg.substr(6);
    } else if (StartsWith(arg, "--workload=")) {
      out->workload = arg.substr(11);
    } else if (StartsWith(arg, "--driver=")) {
      out->driver = arg.substr(9);
    } else if (StartsWith(arg, "--seed=")) {
      if (!ParseFlagU64("--seed", arg.substr(7), &out->seed, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--threshold=")) {
      if (!ParseFlagDouble("--threshold", arg.substr(12), 0.001, 1e6, &out->threshold_ms,
                           error)) {
        return false;
      }
    } else if (StartsWith(arg, "--threshold-ms=")) {
      if (!ParseFlagDouble("--threshold-ms", arg.substr(15), 0.001, 1e6,
                           &out->threshold_ms, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--idle-period=")) {
      if (!ParseFlagDouble("--idle-period", arg.substr(14), 0.001, 1e6,
                           &out->idle_period_ms, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--packets=")) {
      if (!ParseFlagInt("--packets", arg.substr(10), 1, 1'000'000, &out->packets, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--frames=")) {
      if (!ParseFlagInt("--frames", arg.substr(9), 1, 1'000'000, &out->frames, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--media-fps=")) {
      if (!ParseFlagDouble("--media-fps", arg.substr(12), 1.0, 1000.0, &out->media_fps,
                           error)) {
        return false;
      }
    } else if (StartsWith(arg, "--media-buffer=")) {
      if (!ParseFlagInt("--media-buffer", arg.substr(15), 1, 4096, &out->media_buffer,
                        error)) {
        return false;
      }
    } else if (StartsWith(arg, "--users=")) {
      if (!ParseFlagInt("--users", arg.substr(8), 1, 100'000, &out->users, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--pool=")) {
      if (!ParseFlagInt("--pool", arg.substr(7), 1, 4096, &out->pool, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--queue-depth=")) {
      if (!ParseFlagInt("--queue-depth", arg.substr(14), 1, 1'000'000, &out->queue_depth,
                        error)) {
        return false;
      }
    } else if (StartsWith(arg, "--cache-hit=")) {
      if (!ParseFlagDouble("--cache-hit", arg.substr(12), 0.0, 1.0, &out->cache_hit,
                           error)) {
        return false;
      }
    } else if (StartsWith(arg, "--requests=")) {
      if (!ParseFlagInt("--requests", arg.substr(11), 1, 1'000'000, &out->requests,
                        error)) {
        return false;
      }
    } else if (StartsWith(arg, "--faults=")) {
      out->faults_path = arg.substr(9);
      if (out->faults_path.empty()) {
        *error = "--faults needs a fault-plan file path";
        return false;
      }
    } else if (arg == "--fail-degraded") {
      out->fail_degraded = true;
    } else if (StartsWith(arg, "--save=")) {
      out->save_path = arg.substr(7);
    } else if (StartsWith(arg, "--load=")) {
      out->load_path = arg.substr(7);
    } else if (StartsWith(arg, "--csv=")) {
      out->csv_prefix = arg.substr(6);
    } else if (StartsWith(arg, "--trace-out=")) {
      out->trace_out = arg.substr(12);
    } else if (StartsWith(arg, "--metrics-out=")) {
      out->metrics_out = arg.substr(14);
    } else if (StartsWith(arg, "--campaign=")) {
      out->campaign_path = arg.substr(11);
    } else if (StartsWith(arg, "--campaign-out=")) {
      out->campaign_out = arg.substr(15);
    } else if (StartsWith(arg, "--campaign-baseline=")) {
      out->campaign_baseline = arg.substr(20);
    } else if (StartsWith(arg, "--campaign-partial=")) {
      out->campaign_partial = arg.substr(19);
      if (out->campaign_partial.empty()) {
        *error = "--campaign-partial needs an output file path";
        return false;
      }
    } else if (StartsWith(arg, "--journal=")) {
      out->journal_path = arg.substr(10);
      if (out->journal_path.empty()) {
        *error = "--journal needs an output file path";
        return false;
      }
    } else if (StartsWith(arg, "--resume=")) {
      out->resume_path = arg.substr(9);
      if (out->resume_path.empty()) {
        *error = "--resume needs a journal file path";
        return false;
      }
    } else if (StartsWith(arg, "--cell-timeout=")) {
      if (!ParseFlagDouble("--cell-timeout", arg.substr(15), 0.001, 1e6,
                           &out->cell_timeout_s, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--max-quarantined=")) {
      if (!ParseFlagInt("--max-quarantined", arg.substr(18), 0, 1'000'000,
                        &out->max_quarantined, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--shard=")) {
      if (!ParseFlagShard(arg.substr(8), &out->shard_index, &out->shard_count, error)) {
        return false;
      }
      shard_set = true;
    } else if (StartsWith(arg, "--jobs=")) {
      if (!ParseFlagInt("--jobs", arg.substr(7), 1, 1024, &out->jobs, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--gate-tolerance=")) {
      if (!ParseFlagDouble("--gate-tolerance", arg.substr(17), 0.0, 1e6,
                           &out->gate_tolerance_pct, error)) {
        return false;
      }
    } else if (StartsWith(arg, "--gate-percentiles=")) {
      out->gate_percentiles = arg.substr(19);
    } else if (StartsWith(arg, "--gate-fault-tolerance=")) {
      if (!ParseFlagDouble("--gate-fault-tolerance", arg.substr(23), 0.0, 1e6,
                           &out->gate_fault_tolerance_pct, error)) {
        return false;
      }
    } else if (arg == "--profile") {
      out->profile = true;
    } else if (StartsWith(arg, "--profile=")) {
      out->profile = true;
      out->profile_out = arg.substr(10);
      if (out->profile_out.empty()) {
        *error = "--profile= needs an output file path (bare --profile prints the table)";
        return false;
      }
    } else if (arg == "--progress") {
      out->progress_every = 1;
    } else if (StartsWith(arg, "--progress=")) {
      if (!ParseFlagInt("--progress", arg.substr(11), 1, 1'000'000, &out->progress_every,
                        error)) {
        return false;
      }
    } else if (arg == "--explain") {
      out->explain = true;
    } else if (arg == "--events") {
      out->dump_events = true;
    } else if (arg == "--list") {
      out->list_catalog = true;
    } else if (arg == "--version") {
      out->show_version = true;
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  if (out->merge_mode) {
    if (out->merge_inputs.empty()) {
      *error = "merge needs at least one partial file: ilat merge PARTIAL...";
      return false;
    }
    if (!out->campaign_path.empty() || shard_set || !out->campaign_partial.empty()) {
      *error = "merge takes partial files, not --campaign/--shard/--campaign-partial";
      return false;
    }
    if (!out->journal_path.empty() || !out->resume_path.empty() ||
        out->cell_timeout_s > 0.0 || out->max_quarantined != 0) {
      *error =
          "merge takes finished journals/partials as inputs, not "
          "--journal/--resume/--cell-timeout/--max-quarantined";
      return false;
    }
  }
  if (out->campaign_path.empty() &&
      (!out->journal_path.empty() || !out->resume_path.empty() ||
       out->cell_timeout_s > 0.0 || out->max_quarantined != 0)) {
    *error = "--journal/--resume/--cell-timeout/--max-quarantined need --campaign=SPEC";
    return false;
  }
  if (!out->resume_path.empty()) {
    if (!out->campaign_partial.empty()) {
      *error =
          "--resume continues a journal; pair it with --journal, not --campaign-partial "
          "(`ilat merge` accepts journals directly)";
      return false;
    }
    if (out->journal_path.empty()) {
      out->journal_path = out->resume_path;  // keep appending to the same journal
    } else if (out->journal_path != out->resume_path) {
      *error = "--journal and --resume must name the same file (resume appends to it)";
      return false;
    }
  }
  if (shard_set) {
    if (out->campaign_path.empty()) {
      *error = "--shard only makes sense with --campaign=SPEC";
      return false;
    }
    if (out->campaign_partial.empty() && out->journal_path.empty()) {
      *error =
          "--shard needs --campaign-partial=OUT or --journal=OUT (recombine with "
          "`ilat merge`)";
      return false;
    }
    if (out->shard_count > 1 &&
        (!out->campaign_out.empty() || !out->campaign_baseline.empty())) {
      *error =
          "--campaign-out/--campaign-baseline need the whole campaign; run "
          "`ilat merge` on the shard partials instead";
      return false;
    }
  }
  return true;
}

std::string CliUsage() {
  return
      "ilat -- interactive latency measurement (Endo et al., OSDI '96)\n"
      "\n"
      "usage: ilat [options]\n"
      "       ilat merge PARTIAL... [output/gate options]\n"
      "  --os=nt351|nt40|win95|all   operating-system personality (nt40)\n"
      "  --app=notepad|word|powerpoint|desktop|echo|terminal|media|pipeline|server\n"
      "                              app model (pipeline = staged media player,\n"
      "                              docs/MEDIA.md)\n"
      "  --workload=NAME             input script or 'network' (defaults per app)\n"
      "  --driver=test|test-nosync|human   input driver (test)\n"
      "  --seed=N                    workload/machine seed (42)\n"
      "  --threshold=MS              irritation threshold (100); --threshold-ms= works too\n"
      "  --idle-period=MS            idle-loop instrument period (1.0)\n"
      "  --packets=N --frames=N      sizes for network/media/pipeline workloads\n"
      "  --media-fps=F --media-buffer=N   pipeline frame rate and jitter-buffer\n"
      "                              capacity in frames (docs/MEDIA.md)\n"
      "  --users=N --pool=N          server scenario: concurrent users, worker pool\n"
      "  --queue-depth=N --cache-hit=P --requests=N   server queue bound, response-\n"
      "                              cache hit rate, requests per user (docs/SERVER.md)\n"
      "  --faults=PLAN               inject deterministic faults per a plan file\n"
      "                              (see docs/FAULTS.md); overrides spec plans\n"
      "  --fail-degraded             exit 1 when faults degrade the session\n"
      "  --events                    dump one line per event\n"
      "  --csv=PREFIX                export events + cumulative curve CSVs\n"
      "  --trace-out=PATH            write a Chrome trace_event JSON timeline\n"
      "  --metrics-out=PATH          write the metrics-registry JSON snapshot\n"
      "  --explain                   explain events above the threshold from the trace\n"
      "  --save=PATH                 archive the session for offline analysis\n"
      "  --load=PATH                 analyse a saved session instead of running\n"
      "  --profile[=FILE]            print the host-time self-profile (where the\n"
      "                              simulator's own wall time went); =FILE also\n"
      "                              writes the report JSON.  Simulated results\n"
      "                              are byte-identical with and without it\n"
      "  --list                      list oses, apps, workloads, and drivers\n"
      "  --version                   print the ilat version\n"
      "\n"
      "campaign mode (multi-session sweeps; see docs/CAMPAIGN.md):\n"
      "  --campaign=SPEC             run the sweep described by a spec file\n"
      "  --jobs=N                    worker threads for campaign cells (1)\n"
      "  --progress[=N]              heartbeat line to stderr every N cells (1):\n"
      "                              done/total, cells/s, ETA, degraded count\n"
      "  --campaign-out=DIR          write aggregate.json + cells.csv under DIR\n"
      "                              (plus timing.{json,csv} with per-cell host\n"
      "                              wall times; the aggregate itself stays\n"
      "                              host-independent)\n"
      "  --campaign-baseline=FILE    gate against a saved aggregate; exit 1 on\n"
      "                              regression\n"
      "  --gate-tolerance=PCT        allowed percentile growth vs baseline (10)\n"
      "  --gate-percentiles=LIST     metrics to gate, e.g. p95,p99 (p50,p95,p99,max)\n"
      "  --gate-fault-tolerance=PCT  allowed fault-counter drift vs baseline (25)\n"
      "\n"
      "sharded campaigns (split a sweep across processes or hosts):\n"
      "  --shard=I/N                 run only cells with index %% N == I; seeds\n"
      "                              still derive from global indices, so any\n"
      "                              partition replays identical sessions\n"
      "  --campaign-partial=OUT      write this shard's cells to a partial file\n"
      "                              (--shard needs this or --journal)\n"
      "  ilat merge FILE...          recombine partials and/or journals into the\n"
      "                              aggregate the unsharded run would produce\n"
      "                              (byte-identical); accepts --campaign-out and\n"
      "                              --campaign-baseline\n"
      "\n"
      "crash-safe campaigns (see docs/CAMPAIGN.md, \"Resilience\"):\n"
      "  --journal=FILE              stream every finished cell to a crash-\n"
      "                              consistent journal (atomic rename per cell;\n"
      "                              valid on disk at every instant)\n"
      "  --resume=FILE               replay a journal's completed cells and run\n"
      "                              only the missing ones; the final aggregate\n"
      "                              is byte-identical to an uninterrupted run\n"
      "  --cell-timeout=S            per-cell wall budget (spec key timeout_cell_s\n"
      "                              works too); the watchdog cancels overrunning\n"
      "                              attempts and quarantines the cell with a\n"
      "                              cell.timeout fault note\n"
      "  --max-quarantined=N         tolerated quarantined cells before exit 1 (0)\n"
      "  SIGINT/SIGTERM              finish or abandon in-flight cells at the next\n"
      "                              slice boundary, flush the journal, print a\n"
      "                              resume hint, exit 128+signal\n"
      "\n"
      "exit codes: 0 success (degraded faulted runs included unless\n"
      "--fail-degraded), 1 runtime/gate/degradation failure, 2 usage errors\n"
      "(bad flags, malformed numbers, unreadable or corrupt spec/plan/session/\n"
      "partial files)\n";
}

int RunCli(const CliOptions& options, std::FILE* out) {
  if (options.show_help) {
    std::fputs(CliUsage().c_str(), out);
    return 0;
  }
  if (options.show_version) {
    std::fprintf(out, "ilat %s\n", kIlatVersion);
    return 0;
  }
  if (options.list_catalog) {
    auto print_names = [&](const char* label, const std::vector<std::string>& names) {
      std::fputs(label, out);
      for (const std::string& name : names) {
        std::fprintf(out, "%s ", name.c_str());
      }
      std::fputs("\n", out);
    };
    print_names("oses:      ", KnownOsNames());
    print_names("apps:      ", KnownAppNames());
    print_names("workloads: ", KnownWorkloadNames());
    print_names("drivers:   ", KnownDriverNames());
    std::fputs(
        "campaigns: cross-products of the above via --campaign=SPEC "
        "(spec keys: name, os, app, workload, driver, seeds, seed, "
        "workload_seed, threshold_ms, packets, frames, retries, timeout_cell_s, "
        "params.*, fault.*, sweep.fault.*, sweep.params.*)\n",
        out);
    return 0;
  }

  if (options.merge_mode) {
    return RunMergeCli(options, out);
  }

  fault::FaultPlan cli_faults;
  bool have_cli_faults = false;
  if (!options.faults_path.empty()) {
    std::string fault_error;
    if (!fault::LoadFaultPlan(options.faults_path, &cli_faults, &fault_error)) {
      std::fprintf(out, "--faults: %s\n", fault_error.c_str());
      return 2;
    }
    have_cli_faults = true;
  }

  if (!options.campaign_path.empty()) {
    return RunCampaignCli(options, have_cli_faults ? &cli_faults : nullptr, out);
  }

  if (!options.load_path.empty()) {
    SessionResult r;
    if (!LoadSessionResult(options.load_path, &r)) {
      std::fprintf(out, "cannot load %s: missing, truncated, or corrupt session file\n",
                   options.load_path.c_str());
      return 2;
    }
    PrintSummary(out, "saved:" + options.load_path, r, options);
    return 0;
  }

  if (options.os == "all") {
    for (const std::string& os_name : KnownOsNames()) {
      std::fprintf(out, "\n===== %s =====\n", os_name.c_str());
      const int rc = RunOne(os_name, options, cli_faults, out);
      if (rc != 0) {
        return rc;
      }
    }
    return 0;
  }

  if (!KnownOsName(options.os)) {
    std::fprintf(out, "unknown os '%s'\n", options.os.c_str());
    return 2;
  }
  return RunOne(options.os, options, cli_faults, out);
}

}  // namespace ilat
