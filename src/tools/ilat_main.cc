// The `ilat` binary: see src/tools/cli.h.

#include <cstdio>
#include <string>
#include <vector>

#include "src/tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  ilat::CliOptions options;
  std::string error;
  if (!ilat::ParseCliArgs(args, &options, &error)) {
    std::fprintf(stderr, "%s\n\n%s", error.c_str(), ilat::CliUsage().c_str());
    return 2;
  }
  return ilat::RunCli(options, stdout);
}
