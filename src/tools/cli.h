// The `ilat` command-line tool: run any OS/application/driver combination
// from the shell, print a latency summary, and export artifacts.
//
//   ilat --os=nt40 --app=notepad                     # summary
//   ilat --os=all --app=word --driver=human          # compare systems
//   ilat --app=powerpoint --save=run.ilat            # archive the session
//   ilat --load=run.ilat --threshold=50              # re-analyse offline
//   ilat --app=notepad --events                      # dump per-event lines
//   ilat --campaign=spec.txt --jobs=8 --campaign-out=out/   # parallel sweep
//   ilat --campaign=spec.txt --campaign-baseline=out/aggregate.json   # gate
//
// The parsing/execution logic lives in this library so it can be tested;
// the binary is a thin main().

#ifndef ILAT_SRC_TOOLS_CLI_H_
#define ILAT_SRC_TOOLS_CLI_H_

#include <cstdio>
#include <string>
#include <vector>

namespace ilat {

// Reported by `ilat --version`.
inline constexpr const char* kIlatVersion = "0.9.0";

struct CliOptions {
  std::string os = "nt40";          // nt351 | nt40 | win95 | all
  std::string app = "notepad";      // notepad | word | powerpoint | desktop | echo
  std::string workload;             // defaults to the app's canonical workload
  std::string driver = "test";      // test | test-nosync | human
  std::uint64_t seed = 42;
  double threshold_ms = 100.0;      // irritation threshold
  double idle_period_ms = 1.0;      // idle-loop instrument period
  int packets = 200;                // for --workload=network
  int frames = 300;                 // for --workload=media / --app=pipeline

  // Staged media pipeline knobs (--app=pipeline; see docs/MEDIA.md).
  double media_fps = 30.0;          // source/presentation frame rate
  int media_buffer = 8;             // jitter-buffer capacity, frames

  // Multi-user server scenario knobs (--app=server; see docs/SERVER.md).
  int users = 8;                    // concurrent simulated users
  int pool = 4;                     // server worker threads
  int queue_depth = 64;             // bounded request-queue depth
  double cache_hit = 0.6;           // response-cache hit probability
  int requests = 50;                // requests issued per user
  std::string save_path;            // write the session to this file
  std::string load_path;            // analyse a saved session instead of running
  std::string csv_prefix;           // export events/curves as CSV
  std::string trace_out;            // write Chrome trace_event JSON here
  std::string metrics_out;          // write metrics-registry JSON here
  bool explain = false;             // print the explain-latency report
  bool dump_events = false;         // print one line per event
  bool list_catalog = false;        // print oses/apps/workloads/drivers
  bool show_version = false;
  bool show_help = false;

  // Self-profiling and live telemetry (see docs/OBSERVABILITY.md).
  bool profile = false;             // print the host-time profile table
  std::string profile_out;          // also write the profile report JSON here
  int progress_every = 0;           // campaign heartbeat to stderr every N cells (0=off)

  // Fault injection (see docs/FAULTS.md).
  std::string faults_path;          // fault-plan file; overrides spec-embedded plans
  bool fail_degraded = false;       // exit 1 when a faulted session ends degraded

  // Campaign mode (--campaign=SPEC switches the tool into sweep mode).
  std::string campaign_path;        // spec file
  std::string campaign_out;         // directory for aggregate.json + cells.csv
  std::string campaign_baseline;    // baseline aggregate JSON to gate against
  int jobs = 1;                     // worker threads for campaign cells
  double gate_tolerance_pct = 10.0;
  std::string gate_percentiles;     // e.g. "p95,p99"; empty -> gate defaults
  double gate_fault_tolerance_pct = 25.0;  // fault-counter drift tolerance

  // Sharded campaign execution (--shard=I/N runs cells with index%N==I and
  // requires --campaign-partial or --journal; `ilat merge` recombines the
  // partials and/or journals -- see docs/CAMPAIGN.md).
  int shard_index = 0;
  int shard_count = 1;              // 1 = unsharded
  std::string campaign_partial;     // partial-aggregate output file
  bool merge_mode = false;          // `ilat merge PARTIAL...`
  std::vector<std::string> merge_inputs;  // partial/journal files to merge

  // Crash-safe campaigns (see docs/CAMPAIGN.md "Resilience").
  std::string journal_path;         // stream completed cells to this journal
  std::string resume_path;          // replay this journal, run only missing cells
  double cell_timeout_s = 0.0;      // per-cell wall budget (0 = spec key / none)
  int max_quarantined = 0;          // tolerated watchdog-quarantined cells
};

// Parse argv.  On failure returns false and sets *error.
bool ParseCliArgs(const std::vector<std::string>& args, CliOptions* out, std::string* error);

// Usage text.
std::string CliUsage();

// Execute.  Output goes to `out` (stdout in the binary).  Returns the
// process exit code: 0 ok, 1 runtime/gate failure, 2 usage errors.
int RunCli(const CliOptions& options, std::FILE* out);

}  // namespace ilat

#endif  // ILAT_SRC_TOOLS_CLI_H_
