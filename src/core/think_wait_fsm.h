// Think-time / wait-time state machine (paper Fig. 2).
//
// Classifies time using three inputs -- CPU state (busy/idle), message
// queue state (empty/non-empty), synchronous-I/O state (pending/none) --
// plus the assumption the paper makes explicit: the user waits for every
// event to complete.  A fourth input, foreground-handling, distinguishes
// post-event background computation from handling the user is waiting on;
// the paper notes real systems lacked the APIs for a full implementation,
// while the simulator provides the signals as ground truth.
//
// State priority (highest first): synchronous I/O pending -> kWaitIo;
// user retry-wait in progress (a dropped input awaiting re-issue, see
// src/input/driver.h) -> kWaitRetry; queue non-empty or foreground
// handling in progress -> kWaitCpu; CPU busy otherwise -> kBackground;
// else kThink.

#ifndef ILAT_SRC_CORE_THINK_WAIT_FSM_H_
#define ILAT_SRC_CORE_THINK_WAIT_FSM_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/time.h"

namespace ilat {

enum class UserState : int {
  kThink = 0,       // CPU idle, queue empty, no sync I/O: user is thinking
  kWaitCpu,         // user waiting on computation
  kWaitIo,          // user waiting on synchronous I/O
  kBackground,      // CPU busy but user not (known to be) waiting
  kWaitRetry,       // user waiting out a retry backoff for dropped input
  kCount,
};

std::string_view UserStateName(UserState s);

class ThinkWaitFsm {
 public:
  struct Interval {
    Cycles begin = 0;
    Cycles end = 0;
    UserState state = UserState::kThink;
  };

  explicit ThinkWaitFsm(Cycles start_time = 0) : last_change_(start_time) {}

  // Attach tracing: every classified interval becomes a span on a
  // "user-state" track, giving the trace viewer the paper's Fig. 2 bands.
  void SetTracer(obs::Tracer* tracer);

  // Input transitions (times must be non-decreasing).
  void OnCpu(Cycles t, bool busy);
  void OnQueue(Cycles t, bool non_empty);
  void OnSyncIo(Cycles t, bool pending);
  void OnForeground(Cycles t, bool handling);
  // A dropped input is awaiting the user's re-issue (human-driver fault
  // recovery): the event is lost but the user is very much still waiting.
  void OnRetryPending(Cycles t, bool pending);

  // Close the open interval at `t`.
  void Finish(Cycles t);

  UserState current() const { return Classify(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  Cycles TotalIn(UserState s) const { return totals_[static_cast<int>(s)]; }
  // Total wait time (CPU + I/O + retry backoff).
  Cycles TotalWait() const {
    return TotalIn(UserState::kWaitCpu) + TotalIn(UserState::kWaitIo) +
           TotalIn(UserState::kWaitRetry);
  }

 private:
  UserState Classify() const;
  void Advance(Cycles t);
  void PushInterval(Cycles begin, Cycles end, UserState state);

  bool cpu_busy_ = false;
  bool queue_non_empty_ = false;
  bool io_pending_ = false;
  bool foreground_ = false;
  bool retry_pending_ = false;

  Cycles last_change_ = 0;
  UserState open_state_ = UserState::kThink;
  std::vector<Interval> intervals_;
  std::array<Cycles, static_cast<int>(UserState::kCount)> totals_{};

  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Counter* m_intervals_ = nullptr;
};

}  // namespace ilat

#endif  // ILAT_SRC_CORE_THINK_WAIT_FSM_H_
