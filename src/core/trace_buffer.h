// Idle-loop trace records and their buffer.
//
// The instrument generates one record per `period` of idle time (paper
// §2.3: "one trace record per millisecond of idle time").  Records are a
// single timestamp; all derived quantities (gaps, busy time, utilization)
// are computed by BusyProfile.  The buffer is preallocated -- the paper's
// pseudo-code loops "while (space_left_in_the_buffer)" -- so tracing stops
// rather than perturbing the system when full.

#ifndef ILAT_SRC_CORE_TRACE_BUFFER_H_
#define ILAT_SRC_CORE_TRACE_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/sim/time.h"

namespace ilat {

struct TraceRecord {
  // Completion time of one idle-loop pass.
  Cycles timestamp = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 4'000'000) : capacity_(capacity) {
    records_.reserve(std::min<std::size_t>(capacity, 1 << 20));
  }

  bool Full() const { return records_.size() >= capacity_; }

  // Records that still fit -- the idle instrument sizes its batched
  // passes by this so a batch can never overrun the buffer.
  std::size_t Remaining() const {
    return records_.size() >= capacity_ ? 0 : capacity_ - records_.size();
  }

  // Returns false (and drops the record) when full.
  bool Append(Cycles timestamp) {
    if (Full()) {
      return false;
    }
    records_.push_back(TraceRecord{timestamp});
    return true;
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return records_.empty(); }

  void Clear() { records_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
};

}  // namespace ilat

#endif  // ILAT_SRC_CORE_TRACE_BUFFER_H_
