#include "src/core/catalog.h"

#include <algorithm>

#include "src/apps/commands.h"
#include "src/apps/desktop.h"
#include "src/apps/echo_app.h"
#include "src/apps/media_player.h"
#include "src/apps/notepad.h"
#include "src/apps/powerpoint.h"
#include "src/apps/terminal.h"
#include "src/apps/word.h"
#include "src/input/network.h"
#include "src/input/workloads.h"
#include "src/obs/profiler.h"
#include "src/os/personalities.h"

namespace ilat {

namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

const std::vector<std::string>& KnownAppNames() {
  static const std::vector<std::string> names = {
      "notepad", "word", "powerpoint", "desktop", "echo", "terminal", "media"};
  return names;
}

const std::vector<std::string>& KnownWorkloadNames() {
  static const std::vector<std::string> names = {
      "notepad", "word", "powerpoint", "keys", "clicks", "echo", "media", "network"};
  return names;
}

const std::vector<std::string>& KnownDriverNames() {
  static const std::vector<std::string> names = {"test", "test-nosync", "human"};
  return names;
}

const std::vector<std::string>& KnownOsNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const OsProfile& os : AllPersonalities()) {
      out.push_back(os.name);
    }
    return out;
  }();
  return names;
}

bool KnownOsName(const std::string& name) { return Contains(KnownOsNames(), name); }
bool KnownAppName(const std::string& name) { return Contains(KnownAppNames(), name); }
bool KnownWorkloadName(const std::string& name) {
  return Contains(KnownWorkloadNames(), name);
}
bool KnownDriverName(const std::string& name) { return Contains(KnownDriverNames(), name); }

std::unique_ptr<GuiApplication> MakeAppByName(const std::string& name) {
  if (name == "notepad") {
    return std::make_unique<NotepadApp>();
  }
  if (name == "word") {
    return std::make_unique<WordApp>();
  }
  if (name == "powerpoint") {
    return std::make_unique<PowerpointApp>();
  }
  if (name == "desktop") {
    return std::make_unique<DesktopApp>();
  }
  if (name == "echo") {
    return std::make_unique<EchoApp>();
  }
  if (name == "terminal") {
    return std::make_unique<TerminalApp>();
  }
  if (name == "media") {
    return std::make_unique<MediaPlayerApp>();
  }
  return nullptr;
}

std::string DefaultWorkloadFor(const std::string& app) {
  if (app == "desktop") {
    return "keys";
  }
  if (app == "echo") {
    return "echo";
  }
  if (app == "terminal") {
    return "network";
  }
  if (app == "media") {
    return "media";
  }
  return app;  // notepad/word/powerpoint have same-named workloads
}

bool ParseDriverName(const std::string& name, DriverKind* out) {
  if (name == "test") {
    *out = DriverKind::kTest;
  } else if (name == "test-nosync") {
    *out = DriverKind::kTestNoSync;
  } else if (name == "human") {
    *out = DriverKind::kHuman;
  } else {
    return false;
  }
  return true;
}

Script MakeWorkloadByName(const std::string& name, Random* rng, const WorkloadParams& params) {
  if (name == "notepad") {
    return NotepadWorkload(rng);
  }
  if (name == "word") {
    return WordWorkload(rng);
  }
  if (name == "powerpoint") {
    return PowerpointWorkload(rng);
  }
  if (name == "keys") {
    return KeystrokeTrials(30);
  }
  if (name == "clicks") {
    return ClickTrials(30);
  }
  if (name == "echo") {
    return EchoTrials(30);
  }
  if (name == "media") {
    Script s;
    s.push_back(ScriptItem::Command(kCmdMediaPlay + params.frames, 100.0, "play"));
    return s;
  }
  return {};
}

bool RunSpecSession(const RunSpec& spec, SessionResult* out, std::string* error) {
  obs::ScopedHostProbe setup(obs::HostProbe::kSessionSetup);
  const OsProfile* os = nullptr;
  static const std::vector<OsProfile> all = AllPersonalities();
  for (const OsProfile& p : all) {
    if (p.name == spec.os) {
      os = &p;
      break;
    }
  }
  if (os == nullptr) {
    *error = "unknown os '" + spec.os + "'";
    return false;
  }

  std::unique_ptr<GuiApplication> app = MakeAppByName(spec.app);
  if (app == nullptr) {
    *error = "unknown app '" + spec.app + "'";
    return false;
  }

  const std::string workload =
      spec.workload.empty() ? DefaultWorkloadFor(spec.app) : spec.workload;

  DriverKind driver = DriverKind::kTest;
  if (!ParseDriverName(spec.driver, &driver)) {
    *error = "unknown driver '" + spec.driver + "'";
    return false;
  }

  SessionOptions sopts;
  sopts.driver = driver;
  sopts.seed = spec.seed;
  sopts.idle_period = MillisecondsToCycles(spec.idle_period_ms);
  sopts.collect_trace = spec.collect_trace;
  sopts.faults = spec.faults;
  sopts.fault_attempt = spec.fault_attempt;
  if (workload == "media") {
    sopts.drain_after = SecondsToCycles(12.0);  // playback outlives the script
  }
  MeasurementSession session(*os, sopts);
  session.AttachApp(std::move(app));

  if (workload == "network") {
    NetworkTrafficParams nparams;
    nparams.seed = spec.workload_seed != 0 ? spec.workload_seed : spec.seed;
    nparams.packets = spec.params.packets;
    NetworkTrafficDriver ndriver(&session.system(), &session.thread(), nparams);
    setup.Stop();
    *out = session.RunWithDriver(&ndriver);
    return true;
  }

  Random rng(spec.workload_seed != 0 ? spec.workload_seed : spec.seed);
  const Script script = MakeWorkloadByName(workload, &rng, spec.params);
  if (script.empty()) {
    *error = "unknown workload '" + workload + "'";
    return false;
  }
  setup.Stop();
  *out = session.Run(script);
  return true;
}

}  // namespace ilat
