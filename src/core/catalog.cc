#include "src/core/catalog.h"

#include <algorithm>
#include <cstdlib>

#include "src/apps/commands.h"
#include "src/apps/desktop.h"
#include "src/apps/echo_app.h"
#include "src/apps/media_player.h"
#include "src/apps/notepad.h"
#include "src/apps/powerpoint.h"
#include "src/apps/terminal.h"
#include "src/apps/word.h"
#include "src/input/network.h"
#include "src/input/workloads.h"
#include "src/media/pipeline.h"
#include "src/obs/profiler.h"
#include "src/os/personalities.h"
#include "src/server/scenario.h"

namespace ilat {

namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

const std::vector<std::string>& KnownAppNames() {
  static const std::vector<std::string> names = {
      "notepad", "word",  "powerpoint", "desktop", "echo",
      "terminal", "media", "pipeline",   "server"};
  return names;
}

const std::vector<std::string>& KnownWorkloadNames() {
  static const std::vector<std::string> names = {
      "notepad", "word",    "powerpoint", "keys",   "clicks",
      "echo",    "media",   "pipeline",   "network", "server"};
  return names;
}

const std::vector<std::string>& KnownDriverNames() {
  static const std::vector<std::string> names = {"test", "test-nosync", "human"};
  return names;
}

const std::vector<std::string>& KnownOsNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const OsProfile& os : AllPersonalities()) {
      out.push_back(os.name);
    }
    return out;
  }();
  return names;
}

bool KnownOsName(const std::string& name) { return Contains(KnownOsNames(), name); }
bool KnownAppName(const std::string& name) { return Contains(KnownAppNames(), name); }
bool KnownWorkloadName(const std::string& name) {
  return Contains(KnownWorkloadNames(), name);
}
bool KnownDriverName(const std::string& name) { return Contains(KnownDriverNames(), name); }

std::unique_ptr<GuiApplication> MakeAppByName(const std::string& name) {
  if (name == "notepad") {
    return std::make_unique<NotepadApp>();
  }
  if (name == "word") {
    return std::make_unique<WordApp>();
  }
  if (name == "powerpoint") {
    return std::make_unique<PowerpointApp>();
  }
  if (name == "desktop") {
    return std::make_unique<DesktopApp>();
  }
  if (name == "echo") {
    return std::make_unique<EchoApp>();
  }
  if (name == "terminal") {
    return std::make_unique<TerminalApp>();
  }
  if (name == "media") {
    return std::make_unique<MediaPlayerApp>();
  }
  return nullptr;
}

std::string DefaultWorkloadFor(const std::string& app) {
  if (app == "desktop") {
    return "keys";
  }
  if (app == "echo") {
    return "echo";
  }
  if (app == "terminal") {
    return "network";
  }
  if (app == "media") {
    return "media";
  }
  return app;  // notepad/word/powerpoint/pipeline/server: same-named workloads
}

bool KnownWorkloadParamKey(const std::string& key) {
  return key == "packets" || key == "frames" || key == "typist_wpm" ||
         media::KnownMediaParamKey(key) || server::KnownServerParamKey(key);
}

bool SetWorkloadParamKey(const std::string& key, const std::string& value,
                         WorkloadParams* params, std::string* error) {
  if (key == "packets" || key == "frames") {
    long long v = 0;
    bool ok = !value.empty();
    for (char c : value) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      v = v * 10 + (c - '0');
      if (v > 1'000'000) {
        ok = false;
        break;
      }
    }
    if (!ok || v < 1) {
      *error = "bad value '" + value + "' for param '" + key + "' (integer 1..1000000)";
      return false;
    }
    if (key == "packets") {
      params->packets = static_cast<int>(v);
    } else {
      params->frames = static_cast<int>(v);
      // The staged pipeline streams the same number of frames, so one
      // `frames` sweep covers both media apps.
      params->media.frames = static_cast<int>(v);
    }
    return true;
  }
  if (key == "typist_wpm") {
    char* end = nullptr;
    const double v = value.empty() ? 0.0 : std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || !(v >= 1.0) ||
        !(v <= 1200.0)) {
      *error = "bad value '" + value + "' for param '" + key + "' (wpm 1..1200)";
      return false;
    }
    params->typist_wpm = v;
    return true;
  }
  if (media::KnownMediaParamKey(key)) {
    return media::SetMediaParamKey(key, value, &params->media, error);
  }
  // Everything else is a server-scenario knob.
  if (!server::KnownServerParamKey(key)) {
    *error = "unknown param '" + key + "'";
    return false;
  }
  return server::SetServerParamKey(key, value, &params->server, error);
}

bool ParseDriverName(const std::string& name, DriverKind* out) {
  if (name == "test") {
    *out = DriverKind::kTest;
  } else if (name == "test-nosync") {
    *out = DriverKind::kTestNoSync;
  } else if (name == "human") {
    *out = DriverKind::kHuman;
  } else {
    return false;
  }
  return true;
}

Script MakeWorkloadByName(const std::string& name, Random* rng, const WorkloadParams& params) {
  if (name == "notepad") {
    return NotepadWorkload(rng, params.typist_wpm);
  }
  if (name == "word") {
    return WordWorkload(rng, params.typist_wpm);
  }
  if (name == "powerpoint") {
    return PowerpointWorkload(rng);
  }
  if (name == "keys") {
    return KeystrokeTrials(30);
  }
  if (name == "clicks") {
    return ClickTrials(30);
  }
  if (name == "echo") {
    return EchoTrials(30);
  }
  if (name == "media") {
    Script s;
    s.push_back(ScriptItem::Command(kCmdMediaPlay + params.frames, 100.0, "play"));
    return s;
  }
  return {};
}

namespace {

// Turn a server ScenarioResult into the SessionResult shape the rest of
// the pipeline (aggregation, gating, session I/O, viz) consumes: one
// EventRecord per completed logical request, user-perceived.
SessionResult AdaptServerResult(server::ScenarioResult&& r) {
  SessionResult out;
  out.first_input_at = r.first_submit_at;
  out.last_input_done_at = r.last_done_at;
  out.run_end = r.run_end;
  out.counters = r.counters;
  out.metrics = std::move(r.metrics);
  out.metrics_json = std::move(r.metrics_json);
  out.trace_data = std::move(r.trace_data);
  out.fault = std::move(r.fault);

  auto& totals = out.user_state_totals;
  totals[static_cast<int>(UserState::kThink)] = r.think_cycles;
  totals[static_cast<int>(UserState::kWaitCpu)] =
      r.wait_cycles > r.wait_io_cycles ? r.wait_cycles - r.wait_io_cycles : 0;
  totals[static_cast<int>(UserState::kWaitIo)] = r.wait_io_cycles;
  totals[static_cast<int>(UserState::kWaitRetry)] = r.retry_wait_cycles;

  std::sort(r.records.begin(), r.records.end(),
            [](const server::RequestRecord& a, const server::RequestRecord& b) {
              if (a.first_submit != b.first_submit) {
                return a.first_submit < b.first_submit;
              }
              return a.global_seq < b.global_seq;
            });
  out.events.reserve(r.records.size());
  out.posted.reserve(r.records.size());
  for (const server::RequestRecord& rec : r.records) {
    const std::string label =
        "u" + std::to_string(rec.user) + ".r" + std::to_string(rec.user_req);
    PostedEvent p;
    p.msg_seq = rec.global_seq;
    p.kind = ScriptItem::Kind::kCommand;
    p.param = rec.user;
    p.label = label;
    p.posted_at = rec.first_submit;
    p.attempt = rec.attempts;
    out.posted.push_back(std::move(p));
    if (rec.abandoned) {
      continue;  // abandons are counted in the fault report, not as events
    }
    EventRecord e;
    e.msg_seq = rec.global_seq;
    e.type = MessageType::kCommand;
    e.param = rec.user;
    e.label = label;
    e.start = rec.first_submit;
    e.retrieved = rec.picked_up;
    e.end = rec.completed;
    e.wall = e.end - e.start;
    e.io_wait = rec.io_wait;
    e.retry_wait = rec.retry_wait;
    // The user perceives the whole wall time: whatever was not disk wait
    // or retry backoff was computation + queueing on the server.
    e.busy = e.wall > e.io_wait + e.retry_wait ? e.wall - e.io_wait - e.retry_wait : 0;
    out.events.push_back(std::move(e));
  }
  return out;
}

// Turn a media PipelineResult into the SessionResult shape: one logical
// event per render slot (the display "request"), completed only when a
// frame was actually shown -- underrun slots stay posted-but-unfinished,
// the same shape as abandoned server requests.
SessionResult AdaptMediaResult(media::PipelineResult&& r) {
  SessionResult out;
  out.first_input_at = r.origin;
  out.last_input_done_at = r.last_done_at;
  out.run_end = r.run_end;
  out.counters = r.counters;
  out.metrics = std::move(r.metrics);
  out.metrics_json = std::move(r.metrics_json);
  out.trace_data = std::move(r.trace_data);
  out.fault = std::move(r.fault);

  out.events.reserve(r.slots.size());
  out.posted.reserve(r.slots.size());
  for (const media::SlotRecord& s : r.slots) {
    const std::string label = "f" + std::to_string(s.frame);
    PostedEvent p;
    p.msg_seq = static_cast<std::uint64_t>(s.frame);
    p.kind = ScriptItem::Kind::kCommand;
    p.param = s.frame;
    p.label = label;
    p.posted_at = s.slot;
    out.posted.push_back(std::move(p));
    if (!s.rendered) {
      continue;  // underrun: the slot's update never happened
    }
    EventRecord e;
    e.msg_seq = static_cast<std::uint64_t>(s.frame);
    e.type = MessageType::kCommand;
    e.param = s.frame;
    e.label = label;
    e.start = s.slot;
    e.retrieved = s.slot;
    e.end = s.completed;
    e.wall = e.end - e.start;
    // The viewer perceives the whole slot-to-paint interval as the
    // system's doing; decode I/O happened off this critical path.
    e.busy = e.wall;
    e.io_wait = 0;
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace

bool RunSpecSession(const RunSpec& spec, SessionResult* out, std::string* error) {
  obs::ScopedHostProbe setup(obs::HostProbe::kSessionSetup);
  const OsProfile* os = nullptr;
  static const std::vector<OsProfile> all = AllPersonalities();
  for (const OsProfile& p : all) {
    if (p.name == spec.os) {
      os = &p;
      break;
    }
  }
  if (os == nullptr) {
    *error = "unknown os '" + spec.os + "'";
    return false;
  }

  std::unique_ptr<GuiApplication> app;
  if (spec.app != "server" && spec.app != "pipeline") {
    app = MakeAppByName(spec.app);
    if (app == nullptr) {
      *error = "unknown app '" + spec.app + "'";
      return false;
    }
  }

  const std::string workload =
      spec.workload.empty() ? DefaultWorkloadFor(spec.app) : spec.workload;

  DriverKind driver = DriverKind::kTest;
  if (!ParseDriverName(spec.driver, &driver)) {
    *error = "unknown driver '" + spec.driver + "'";
    return false;
  }

  if (spec.app == "pipeline") {
    // The staged media pipeline drives itself off the decode pacing grid;
    // like the server scenario it is not script-shaped, so the driver name
    // is accepted but unused.
    if (workload != "pipeline") {
      *error = "app 'pipeline' uses workload 'pipeline' (got '" + workload + "')";
      return false;
    }
    media::PipelineOptions popts;
    popts.seed = spec.seed;
    popts.collect_trace = spec.collect_trace;
    popts.faults = spec.faults;
    popts.fault_attempt = spec.fault_attempt;
    popts.cancel = spec.cancel;
    media::MediaPipeline pipeline(*os, spec.params.media, popts);
    setup.Stop();
    *out = AdaptMediaResult(pipeline.Run());
    return true;
  }

  if (spec.app == "server") {
    // The server scenario is not script-shaped: its N users *are* the
    // driver, so the driver name is accepted but unused.
    if (workload != "server") {
      *error = "app 'server' uses workload 'server' (got '" + workload + "')";
      return false;
    }
    server::ScenarioOptions sopts;
    sopts.seed = spec.seed;
    sopts.collect_trace = spec.collect_trace;
    sopts.faults = spec.faults;
    sopts.fault_attempt = spec.fault_attempt;
    sopts.cancel = spec.cancel;
    server::ServerScenario scenario(*os, spec.params.server, sopts);
    setup.Stop();
    *out = AdaptServerResult(scenario.Run());
    return true;
  }

  SessionOptions sopts;
  sopts.driver = driver;
  sopts.seed = spec.seed;
  sopts.idle_period = MillisecondsToCycles(spec.idle_period_ms);
  sopts.collect_trace = spec.collect_trace;
  sopts.faults = spec.faults;
  sopts.fault_attempt = spec.fault_attempt;
  sopts.cancel = spec.cancel;
  if (workload == "media") {
    sopts.drain_after = SecondsToCycles(12.0);  // playback outlives the script
  }
  MeasurementSession session(*os, sopts);
  session.AttachApp(std::move(app));

  if (workload == "network") {
    NetworkTrafficParams nparams;
    nparams.seed = spec.workload_seed != 0 ? spec.workload_seed : spec.seed;
    nparams.packets = spec.params.packets;
    NetworkTrafficDriver ndriver(&session.system(), &session.thread(), nparams);
    setup.Stop();
    *out = session.RunWithDriver(&ndriver);
    return true;
  }

  Random rng(spec.workload_seed != 0 ? spec.workload_seed : spec.seed);
  const Script script = MakeWorkloadByName(workload, &rng, spec.params);
  if (script.empty()) {
    *error = "unknown workload '" + workload + "'";
    return false;
  }
  setup.Stop();
  *out = session.Run(script);
  return true;
}

}  // namespace ilat
