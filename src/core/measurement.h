// MeasurementSession: the toolkit's top-level public API.
//
// Wires together everything the paper's methodology needs -- a booted
// simulated system with an OS personality, the application under test, an
// input driver (scripted Test-style or human-style), the idle-loop
// instrument, the message-API monitor, the I/O tracker, and the think/wait
// FSM -- runs the workload, and returns per-event latency records plus the
// raw traces.
//
// Quickstart:
//
//   MeasurementSession session(MakeNt40());
//   session.AttachApp(std::make_unique<NotepadApp>());
//   Random rng(42);
//   SessionResult result = session.Run(NotepadWorkload(&rng));
//   for (const EventRecord& e : result.events) { ... }

#ifndef ILAT_SRC_CORE_MEASUREMENT_H_
#define ILAT_SRC_CORE_MEASUREMENT_H_

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/busy_profile.h"
#include "src/core/event_extractor.h"
#include "src/core/idle_loop.h"
#include "src/core/message_monitor.h"
#include "src/core/think_wait_fsm.h"
#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/fault/report.h"
#include "src/input/driver.h"
#include "src/os/personalities.h"
#include "src/os/system.h"

namespace ilat {

enum class DriverKind {
  kTest,          // Microsoft-Test-like: pauses + WM_QUEUESYNC serialisation
  kTestNoSync,    // scripted but without WM_QUEUESYNC (ablation)
  kHuman,         // wall-clock pacing, no sync messages
};

struct SessionOptions {
  Cycles idle_period = kCyclesPerMillisecond;
  std::size_t trace_capacity = 4'000'000;
  // Buffer structured trace events (scheduler spans, message instants,
  // disk I/O, ...) for export; off by default -- with no sink attached
  // every instrumentation point is a null check.
  bool collect_trace = false;
  std::size_t trace_event_capacity = obs::TraceSink::kDefaultCapacity;
  double calm_factor = 1.3;
  bool merge_timer_cascades = false;
  bool include_io_wait = true;
  DriverKind driver = DriverKind::kTest;
  // Keep simulating after the driver finishes so trailing work drains.
  Cycles drain_after = SecondsToCycles(2.0);
  // Safety cap on simulated time.
  Cycles max_run = SecondsToCycles(3'600.0);
  std::uint64_t seed = 1;
  // Deterministic fault injection (src/fault/).  An empty plan (the
  // default) injects nothing and adds no per-message/per-request overhead
  // beyond a null pointer check.
  fault::FaultPlan faults;
  // Retry attempt index for fault derivation: retrying a degraded session
  // with attempt+1 replays the workload against a fresh (but still
  // deterministic) fault stream.
  int fault_attempt = 0;
  // How the human driver reacts to input dropped by a fault (re-issue
  // with backoff, bounded, then abandon).  Only used for DriverKind::kHuman.
  HumanRetryPolicy human_retry;
  // Cooperative cancellation (campaign watchdog / graceful shutdown):
  // when non-null and set, the run loop stops at its next 100-sim-ms
  // slice boundary and skips the drain.  The caller discards the result
  // -- a cancelled session's outputs are not meaningful measurements.
  const std::atomic<bool>* cancel = nullptr;
};

struct SessionResult {
  // Extracted per-event latency records (user-input events only).
  std::vector<EventRecord> events;

  // Raw idle-loop trace + its period (build a BusyProfile to analyse).
  std::vector<TraceRecord> trace;
  Cycles trace_period = 0;
  Cycles trace_start = 0;  // when the instrument began tracing

  // Wall-clock bookkeeping.
  Cycles first_input_at = 0;
  Cycles last_input_done_at = 0;  // driver finished (incl. final sync)
  Cycles run_end = 0;

  // Elapsed time of the benchmark run, as the paper brackets it in
  // Figs. 7/8/11: first input to driver completion.
  Cycles elapsed() const { return last_input_done_at - first_input_at; }
  double elapsed_seconds() const { return CyclesToSeconds(elapsed()); }

  // Hardware counters over the whole run.
  HwCounts counters;

  // Think/wait classification totals (ground-truth-driven FSM).
  std::array<Cycles, static_cast<int>(UserState::kCount)> user_state_totals{};
  std::vector<ThinkWaitFsm::Interval> user_state_intervals;

  // Synchronous-I/O pending intervals (also fed to the extractor).
  std::vector<IoPendingInterval> io_pending;

  // Retry-wait intervals: periods where at least one dropped input was
  // awaiting the human driver's re-issue (also fed to the extractor).
  std::vector<IoPendingInterval> retry_pending;

  // Ground truth for validation: scheduler-measured busy cycles and the
  // executor's exact handling boundaries.
  Cycles gt_busy_cycles = 0;
  std::vector<MessageMonitor::HandleRecord> gt_handles;

  // The input events as posted (labels, sequence numbers).
  std::vector<PostedEvent> posted;

  // Metrics registry snapshot (always populated) and its JSON rendering.
  obs::MetricsSnapshot metrics;
  std::string metrics_json;

  // Structured trace (only when SessionOptions::collect_trace was set).
  // shared_ptr keeps SessionResult cheaply copyable.
  std::shared_ptr<const obs::TraceData> trace_data;

  // Fault-injection outcome (invariant-checker verdict + injection
  // counts).  fault.enabled is false for clean sessions; fault.degraded
  // marks results whose metrics are partial/untrustworthy.
  fault::FaultReport fault;

  BusyProfile MakeBusyProfile() const {
    return BusyProfile(trace, trace_period, trace_start);
  }
};

class MeasurementSession {
 public:
  explicit MeasurementSession(OsProfile profile, SessionOptions opts = {});
  ~MeasurementSession();

  MeasurementSession(const MeasurementSession&) = delete;
  MeasurementSession& operator=(const MeasurementSession&) = delete;

  SystemUnderTest& system() { return *system_; }
  const SessionOptions& options() const { return opts_; }

  // Attach the application under test.  Must be called before Run.
  // Returns the created GUI thread (for custom wiring).
  GuiThread& AttachApp(std::unique_ptr<GuiApplication> app);

  // Attach an additional application in another "window": it shares the
  // CPU and gets its own message queue/thread, but is not monitored --
  // its activity is simply part of the measured system's context
  // (multi-tasking measurement).  Post to its queue via the returned
  // thread.
  GuiThread& AttachBackgroundApp(std::unique_ptr<GuiApplication> app, int priority = 10);

  GuiThread& thread() { return *thread_; }
  GuiApplication& app() { return *app_; }
  MessageMonitor& monitor() { return monitor_; }

  // Run a script to completion (plus drain) and extract all results.
  SessionResult Run(const Script& script);

  // Run with a caller-supplied driver (e.g. a network-traffic source).
  // The driver must target this session's thread.
  SessionResult RunWithDriver(InputDriver* driver);

  // Run an idle system for `duration` (no app input) -- Fig. 3.
  SessionResult RunIdle(Cycles duration);

 private:
  class Wiring;  // FSM + I/O interval recording

  void InstallInstrument();
  SessionResult Finalize(InputDriver* driver);
  // Invariant checker: folds component fault state into a FaultReport and
  // decides whether the session is degraded.
  fault::FaultReport BuildFaultReport(InputDriver* driver) const;

  OsProfile profile_;
  SessionOptions opts_;
  std::unique_ptr<SystemUnderTest> system_;
  // Declared after system_ so it is destroyed first (its storm device
  // unschedules itself from the simulation's event queue).
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<GuiApplication> app_;
  std::unique_ptr<GuiThread> thread_;
  std::vector<std::unique_ptr<GuiApplication>> background_apps_;
  std::vector<std::unique_ptr<GuiThread>> background_threads_;
  std::unique_ptr<IdleLoopInstrument> instrument_;
  std::unique_ptr<obs::TraceSink> trace_sink_;
  Cycles instrument_start_ = 0;
  MessageMonitor monitor_;
  std::unique_ptr<Wiring> wiring_;
  HwCounts counters_at_start_;
  bool counters_started_ = false;
};

}  // namespace ilat

#endif  // ILAT_SRC_CORE_MEASUREMENT_H_
