#include "src/core/session_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "src/obs/profiler.h"

namespace ilat {

namespace {

// v2 added per-event retry_wait (ninth event field); v1 files still load
// with retry_wait = 0.
constexpr int kFormatVersion = 2;

// Checked digits-only parse (same contract as the CLI flag parsers): the
// whole string must be decimal digits and fit in 64 bits.  A corrupt or
// truncated counter value makes the load fail cleanly instead of letting
// std::stoull throw out of LoadSessionResult.
bool ParseU64(const std::string& value, std::uint64_t* out) {
  if (value.empty()) {
    return false;
  }
  std::uint64_t v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return false;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return false;  // overflow
    }
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

MessageType TypeFromInt(int v) {
  if (v < 0 || v > static_cast<int>(MessageType::kQuit)) {
    return MessageType::kQuit;
  }
  return static_cast<MessageType>(v);
}

}  // namespace

bool SaveSessionResult(const std::string& path, const SessionResult& result) {
  PROF_SCOPE(kSessionIo);
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "ilat-session " << kFormatVersion << '\n';
  out << "meta " << result.trace_period << ' ' << result.trace_start << ' '
      << result.first_input_at << ' ' << result.last_input_done_at << ' ' << result.run_end
      << '\n';

  out << "counters " << kNumHwEvents;
  for (int i = 0; i < kNumHwEvents; ++i) {
    out << ' ' << HwEventName(static_cast<HwEvent>(i)) << '='
        << result.counters.counts[static_cast<std::size_t>(i)];
  }
  out << '\n';

  out << "trace " << result.trace.size() << '\n';
  for (const TraceRecord& r : result.trace) {
    out << r.timestamp << '\n';
  }

  out << "events " << result.events.size() << '\n';
  for (const EventRecord& e : result.events) {
    out << e.msg_seq << ' ' << static_cast<int>(e.type) << ' ' << e.param << ' ' << e.start
        << ' ' << e.retrieved << ' ' << e.end << ' ' << e.busy << ' ' << e.io_wait << ' '
        << e.retry_wait << ' ' << e.label << '\n';
  }

  out << "io " << result.io_pending.size() << '\n';
  for (const IoPendingInterval& iv : result.io_pending) {
    out << iv.begin << ' ' << iv.end << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadSessionResult(const std::string& path, SessionResult* out_result) {
  PROF_SCOPE(kSessionIo);
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "ilat-session" || version < 1 ||
      version > kFormatVersion) {
    return false;
  }

  SessionResult r;
  if (!(in >> tag) || tag != "meta") {
    return false;
  }
  if (!(in >> r.trace_period >> r.trace_start >> r.first_input_at >> r.last_input_done_at >>
        r.run_end)) {
    return false;
  }

  int ncounters = 0;
  if (!(in >> tag >> ncounters) || tag != "counters") {
    return false;
  }
  for (int i = 0; i < ncounters; ++i) {
    std::string pair;
    if (!(in >> pair)) {
      return false;
    }
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    const std::string name = pair.substr(0, eq);
    std::uint64_t value = 0;
    if (!ParseU64(pair.substr(eq + 1), &value)) {
      return false;
    }
    for (int e = 0; e < kNumHwEvents; ++e) {
      if (HwEventName(static_cast<HwEvent>(e)) == name) {
        r.counters.counts[static_cast<std::size_t>(e)] = value;
        break;
      }
    }
  }

  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != "trace") {
    return false;
  }
  r.trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec;
    if (!(in >> rec.timestamp)) {
      return false;
    }
    r.trace.push_back(rec);
  }

  if (!(in >> tag >> n) || tag != "events") {
    return false;
  }
  r.events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    EventRecord e;
    int type = 0;
    if (!(in >> e.msg_seq >> type >> e.param >> e.start >> e.retrieved >> e.end >> e.busy >>
          e.io_wait)) {
      return false;
    }
    if (version >= 2 && !(in >> e.retry_wait)) {
      return false;
    }
    e.type = TypeFromInt(type);
    std::getline(in, e.label);
    if (!e.label.empty() && e.label.front() == ' ') {
      e.label.erase(0, 1);
    }
    e.wall = e.end - e.start;
    r.events.push_back(std::move(e));
  }

  if (!(in >> tag >> n) || tag != "io") {
    return false;
  }
  r.io_pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    IoPendingInterval iv;
    if (!(in >> iv.begin >> iv.end)) {
      return false;
    }
    r.io_pending.push_back(iv);
  }

  *out_result = std::move(r);
  return true;
}

}  // namespace ilat
