#include "src/core/think_wait_fsm.h"

#include <cassert>

namespace ilat {

std::string_view UserStateName(UserState s) {
  switch (s) {
    case UserState::kThink:
      return "think";
    case UserState::kWaitCpu:
      return "wait-cpu";
    case UserState::kWaitIo:
      return "wait-io";
    case UserState::kBackground:
      return "background";
    case UserState::kWaitRetry:
      return "wait-retry";
    case UserState::kCount:
      break;
  }
  return "unknown";
}

UserState ThinkWaitFsm::Classify() const {
  if (io_pending_) {
    return UserState::kWaitIo;
  }
  if (retry_pending_) {
    return UserState::kWaitRetry;
  }
  if (queue_non_empty_ || foreground_) {
    return UserState::kWaitCpu;
  }
  if (cpu_busy_) {
    return UserState::kBackground;
  }
  return UserState::kThink;
}

void ThinkWaitFsm::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  track_ = tracer_->RegisterTrack("user-state");
  m_intervals_ = tracer_->metrics().GetCounter("fsm.intervals");
}

void ThinkWaitFsm::PushInterval(Cycles begin, Cycles end, UserState state) {
  totals_[static_cast<int>(state)] += end - begin;
  if (m_intervals_ != nullptr) {
    m_intervals_->Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->CompleteSpan(track_, UserStateName(state), "state", begin, end - begin);
  }
  // Merge with the previous interval when a zero-length flicker collapsed
  // and left two adjacent intervals of the same state.
  if (!intervals_.empty() && intervals_.back().end == begin &&
      intervals_.back().state == state) {
    intervals_.back().end = end;
    return;
  }
  intervals_.push_back(Interval{begin, end, state});
}

void ThinkWaitFsm::Advance(Cycles t) {
  assert(t >= last_change_ && "FSM inputs must arrive in time order");
  const UserState s = Classify();
  if (s == open_state_) {
    return;
  }
  if (t > last_change_) {
    PushInterval(last_change_, t, open_state_);
  }
  last_change_ = t;
  open_state_ = s;
}

void ThinkWaitFsm::OnCpu(Cycles t, bool busy) {
  cpu_busy_ = busy;
  Advance(t);
}

void ThinkWaitFsm::OnQueue(Cycles t, bool non_empty) {
  queue_non_empty_ = non_empty;
  Advance(t);
}

void ThinkWaitFsm::OnSyncIo(Cycles t, bool pending) {
  io_pending_ = pending;
  Advance(t);
}

void ThinkWaitFsm::OnForeground(Cycles t, bool handling) {
  foreground_ = handling;
  Advance(t);
}

void ThinkWaitFsm::OnRetryPending(Cycles t, bool pending) {
  retry_pending_ = pending;
  Advance(t);
}

void ThinkWaitFsm::Finish(Cycles t) {
  if (t > last_change_) {
    PushInterval(last_change_, t, open_state_);
    last_change_ = t;
  }
}

}  // namespace ilat
