#include "src/core/event_extractor.h"

#include <algorithm>
#include <unordered_map>

namespace ilat {

namespace {

// First API call strictly after `t`, or `fallback`.
Cycles NextApiCallAfter(const std::vector<MessageMonitor::ApiCall>& api, Cycles t,
                        Cycles fallback) {
  auto it = std::upper_bound(api.begin(), api.end(), t,
                             [](Cycles v, const MessageMonitor::ApiCall& c) { return v < c.t; });
  return it == api.end() ? fallback : it->t;
}

Cycles IoOverlap(const std::vector<IoPendingInterval>& io, Cycles a, Cycles b) {
  Cycles sum = 0;
  for (const IoPendingInterval& iv : io) {
    if (iv.begin >= b) {
      break;
    }
    const Cycles s0 = std::max(iv.begin, a);
    const Cycles s1 = std::min(iv.end, b);
    if (s1 > s0) {
      sum += s1 - s0;
    }
  }
  return sum;
}

}  // namespace

std::vector<EventRecord> ExtractEvents(const BusyProfile& busy, const MessageMonitor& monitor,
                                       const std::vector<PostedEvent>& posted,
                                       const std::vector<IoPendingInterval>& io_pending,
                                       const ExtractorOptions& opts) {
  return ExtractEvents(busy, monitor, posted, io_pending, /*retry_pending=*/{}, opts);
}

std::vector<EventRecord> ExtractEvents(const BusyProfile& busy, const MessageMonitor& monitor,
                                       const std::vector<PostedEvent>& posted,
                                       const std::vector<IoPendingInterval>& io_pending,
                                       const std::vector<IoPendingInterval>& retry_pending,
                                       const ExtractorOptions& opts) {
  const auto& api = monitor.api_calls();
  const auto& ret = monitor.retrievals();

  std::unordered_map<std::uint64_t, std::size_t> seq_to_retrieval;
  seq_to_retrieval.reserve(ret.size());
  for (std::size_t i = 0; i < ret.size(); ++i) {
    seq_to_retrieval.emplace(ret[i].msg.seq, i);
  }

  const Cycles trace_end = busy.trace_end();

  std::vector<EventRecord> events;
  events.reserve(posted.size());

  for (const PostedEvent& p : posted) {
    auto it = seq_to_retrieval.find(p.msg_seq);
    if (it == seq_to_retrieval.end()) {
      continue;  // message never retrieved (e.g. trace ended first)
    }
    const std::size_t idx = it->second;
    const MessageMonitor::Retrieval& r = ret[idx];

    Cycles window_end = NextApiCallAfter(api, r.t, trace_end);
    // If the trace ended before the pump returned (buffer capacity), clamp
    // the window so records stay well-formed.
    window_end = std::max(window_end, r.t);

    if (opts.merge_timer_cascades) {
      // Extend the window through WM_TIMER retrievals that follow
      // immediately (no intervening user input) -- animation continuations
      // of this event (paper §2.6).
      std::size_t j = idx + 1;
      while (j < ret.size() && (ret[j].msg.type == MessageType::kTimer ||
                                ret[j].msg.type == MessageType::kQueueSync)) {
        if (ret[j].msg.type == MessageType::kTimer) {
          window_end = NextApiCallAfter(api, ret[j].t, trace_end);
        }
        ++j;
      }
    }

    EventRecord e;
    e.msg_seq = p.msg_seq;
    e.type = r.msg.type;
    e.param = p.param;
    e.label = p.label;
    e.start = p.posted_at;  // physical input time: includes ISR + delivery
    e.retrieved = r.t;
    e.end = window_end;
    e.busy = busy.BusyIn(e.start, window_end);
    if (opts.include_io_wait) {
      e.io_wait = IoOverlap(io_pending, e.start, window_end);
    }
    if (opts.include_retry_wait && !retry_pending.empty()) {
      e.retry_wait = IoOverlap(retry_pending, e.start, window_end);
    }
    e.wall = e.end - e.start;
    events.push_back(std::move(e));
  }

  std::sort(events.begin(), events.end(),
            [](const EventRecord& a, const EventRecord& b) { return a.start < b.start; });
  return events;
}

}  // namespace ilat
