#include "src/core/event_extractor.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ilat {

namespace {

// First API call strictly after `t`, or `fallback`.
Cycles NextApiCallAfter(const std::vector<MessageMonitor::ApiCall>& api, Cycles t,
                        Cycles fallback) {
  auto it = std::upper_bound(api.begin(), api.end(), t,
                             [](Cycles v, const MessageMonitor::ApiCall& c) { return v < c.t; });
  return it == api.end() ? fallback : it->t;
}

// Answers sum-of-overlap queries against a fixed set of intervals in
// O(log n) instead of rescanning the whole set per event.  The summed
// per-interval overlap with [a, b) equals the integral over [a, b) of the
// number of intervals active at each instant, so we precompute that step
// function's breakpoints and exact integer prefix integral once.
class OverlapIndex {
 public:
  explicit OverlapIndex(const std::vector<IoPendingInterval>& io) {
    std::vector<std::pair<Cycles, int>> deltas;
    deltas.reserve(io.size() * 2);
    for (const IoPendingInterval& iv : io) {
      if (iv.end > iv.begin) {
        deltas.emplace_back(iv.begin, 1);
        deltas.emplace_back(iv.end, -1);
      }
    }
    std::sort(deltas.begin(), deltas.end());
    ts_.reserve(deltas.size());
    integral_.reserve(deltas.size());
    active_.reserve(deltas.size());
    Cycles integral = 0;
    std::int64_t active = 0;
    Cycles prev = 0;
    for (std::size_t i = 0; i < deltas.size();) {
      const Cycles t = deltas[i].first;
      integral += active * (t - prev);
      while (i < deltas.size() && deltas[i].first == t) {
        active += deltas[i].second;
        ++i;
      }
      ts_.push_back(t);
      integral_.push_back(integral);
      active_.push_back(active);
      prev = t;
    }
  }

  Cycles Overlap(Cycles a, Cycles b) const {
    if (b <= a) {
      return 0;
    }
    return PrefixIntegral(b) - PrefixIntegral(a);
  }

 private:
  // Integral of the active count over (-inf, t).
  Cycles PrefixIntegral(Cycles t) const {
    auto it = std::upper_bound(ts_.begin(), ts_.end(), t);
    if (it == ts_.begin()) {
      return 0;
    }
    const std::size_t i = static_cast<std::size_t>(it - ts_.begin()) - 1;
    return integral_[i] + active_[i] * (t - ts_[i]);
  }

  std::vector<Cycles> ts_;
  std::vector<Cycles> integral_;      // prefix integral up to ts_[i]
  std::vector<std::int64_t> active_;  // active count on [ts_[i], ts_[i+1])
};

}  // namespace

std::vector<EventRecord> ExtractEvents(const BusyProfile& busy, const MessageMonitor& monitor,
                                       const std::vector<PostedEvent>& posted,
                                       const std::vector<IoPendingInterval>& io_pending,
                                       const ExtractorOptions& opts) {
  return ExtractEvents(busy, monitor, posted, io_pending, /*retry_pending=*/{}, opts);
}

std::vector<EventRecord> ExtractEvents(const BusyProfile& busy, const MessageMonitor& monitor,
                                       const std::vector<PostedEvent>& posted,
                                       const std::vector<IoPendingInterval>& io_pending,
                                       const std::vector<IoPendingInterval>& retry_pending,
                                       const ExtractorOptions& opts) {
  const auto& api = monitor.api_calls();
  const auto& ret = monitor.retrievals();

  std::unordered_map<std::uint64_t, std::size_t> seq_to_retrieval;
  seq_to_retrieval.reserve(ret.size());
  for (std::size_t i = 0; i < ret.size(); ++i) {
    seq_to_retrieval.emplace(ret[i].msg.seq, i);
  }

  const Cycles trace_end = busy.trace_end();

  const OverlapIndex io_index(io_pending);
  const OverlapIndex retry_index(retry_pending);

  std::vector<EventRecord> events;
  events.reserve(posted.size());

  for (const PostedEvent& p : posted) {
    auto it = seq_to_retrieval.find(p.msg_seq);
    if (it == seq_to_retrieval.end()) {
      continue;  // message never retrieved (e.g. trace ended first)
    }
    const std::size_t idx = it->second;
    const MessageMonitor::Retrieval& r = ret[idx];

    Cycles window_end = NextApiCallAfter(api, r.t, trace_end);
    // If the trace ended before the pump returned (buffer capacity), clamp
    // the window so records stay well-formed.
    window_end = std::max(window_end, r.t);

    if (opts.merge_timer_cascades) {
      // Extend the window through WM_TIMER retrievals that follow
      // immediately (no intervening user input) -- animation continuations
      // of this event (paper §2.6).
      std::size_t j = idx + 1;
      while (j < ret.size() && (ret[j].msg.type == MessageType::kTimer ||
                                ret[j].msg.type == MessageType::kQueueSync)) {
        if (ret[j].msg.type == MessageType::kTimer) {
          window_end = NextApiCallAfter(api, ret[j].t, trace_end);
        }
        ++j;
      }
    }

    EventRecord e;
    e.msg_seq = p.msg_seq;
    e.type = r.msg.type;
    e.param = p.param;
    e.label = p.label;
    e.start = p.posted_at;  // physical input time: includes ISR + delivery
    e.retrieved = r.t;
    e.end = window_end;
    e.busy = busy.BusyIn(e.start, window_end);
    if (opts.include_io_wait) {
      e.io_wait = io_index.Overlap(e.start, window_end);
    }
    if (opts.include_retry_wait && !retry_pending.empty()) {
      e.retry_wait = retry_index.Overlap(e.start, window_end);
    }
    e.wall = e.end - e.start;
    events.push_back(std::move(e));
  }

  std::sort(events.begin(), events.end(),
            [](const EventRecord& a, const EventRecord& b) { return a.start < b.start; });
  return events;
}

}  // namespace ilat
