// EventExtractor: turn (idle-loop trace x message-API log) into per-event
// latency records -- the heart of the paper's methodology.
//
// For each user-input message the driver posted:
//   * the event begins when the message is enqueued ("when there are
//     events queued, we can assume that the user is waiting", §2.3);
//   * its handling window runs from the GetMessage/PeekMessage call that
//     retrieved it to the next message-API call (the application is back
//     in its pump);
//   * its latency is the CPU busy time the idle-loop trace attributes to
//     [begin, window end] ("our idle loop methodology uses CPU busy time
//     to represent event latency", §2.3), plus any synchronous-I/O wait.
//
// WM_QUEUESYNC messages injected by the test driver get their own windows
// and are therefore *not* charged to user events -- this is how the paper
// removed Test overhead from the Notepad data (Fig. 7).
//
// Events whose handling continues through WM_TIMER cascades (window
// maximize animation, §2.6) can be merged with merge_timer_cascades.

#ifndef ILAT_SRC_CORE_EVENT_EXTRACTOR_H_
#define ILAT_SRC_CORE_EVENT_EXTRACTOR_H_

#include <string>
#include <vector>

#include "src/core/busy_profile.h"
#include "src/core/message_monitor.h"
#include "src/input/driver.h"

namespace ilat {

struct EventRecord {
  std::uint64_t msg_seq = 0;
  MessageType type = MessageType::kQuit;
  int param = 0;
  std::string label;

  Cycles start = 0;  // physical input time (user starts waiting)
  Cycles retrieved = 0;  // GetMessage/PeekMessage returned the message
  Cycles end = 0;    // application back in its message pump
  Cycles busy = 0;   // CPU busy attributed to the event
  Cycles io_wait = 0;  // synchronous-I/O wait within the window
  Cycles retry_wait = 0;  // user retry backoff (dropped input) in the window
  Cycles wall = 0;   // end - start

  // Decomposition: how long the event sat in the queue before the
  // application accepted it (delivery + queueing delay) vs the handling
  // window itself.  Queue delay explodes under saturated input -- the
  // distortion the paper's S1.1 warns throughput benchmarks hide.
  Cycles queue_delay() const { return retrieved - start; }
  double queue_delay_ms() const { return CyclesToMilliseconds(queue_delay()); }

  // Primary latency metric: busy time plus synchronous I/O wait plus any
  // user retry wait -- for an event the driver had to re-issue (its first
  // delivery was dropped by a fault), the whole think-time backoff is
  // user-visible latency just like I/O wait (the user is stuck either way).
  Cycles latency() const { return busy + io_wait + retry_wait; }
  double latency_ms() const { return CyclesToMilliseconds(latency()); }
  double wall_ms() const { return CyclesToMilliseconds(wall); }
};

struct ExtractorOptions {
  double calm_factor = 1.3;
  bool merge_timer_cascades = false;
  // Count synchronous-I/O wait (CPU-idle time while the handling thread
  // blocks on the disk) into latency.  Requires io_idle below.
  bool include_io_wait = true;
  // Count user retry backoff (dropped input awaiting re-issue, see
  // src/input/driver.h) into latency.
  bool include_retry_wait = true;
};

// Synchronous-I/O pending intervals recorded by the I/O tracker (ground
// truth the paper asked OS vendors to expose; the simulator provides it).
struct IoPendingInterval {
  Cycles begin = 0;
  Cycles end = 0;
};

std::vector<EventRecord> ExtractEvents(const BusyProfile& busy, const MessageMonitor& monitor,
                                       const std::vector<PostedEvent>& posted,
                                       const std::vector<IoPendingInterval>& io_pending,
                                       const ExtractorOptions& opts);

// As above, plus retry-wait intervals (periods with at least one dropped
// input awaiting the human driver's re-issue; same interval-overlap
// attribution as io_pending).
std::vector<EventRecord> ExtractEvents(const BusyProfile& busy, const MessageMonitor& monitor,
                                       const std::vector<PostedEvent>& posted,
                                       const std::vector<IoPendingInterval>& io_pending,
                                       const std::vector<IoPendingInterval>& retry_pending,
                                       const ExtractorOptions& opts);

}  // namespace ilat

#endif  // ILAT_SRC_CORE_EVENT_EXTRACTOR_H_
